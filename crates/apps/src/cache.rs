//! The two-level stage cache: built tensors (level 1) and compiled
//! programs (level 2), shared across iterations, jobs, and tenants.
//!
//! Level 1 memoizes synthetic tensor builds (generator output and
//! derived matrices such as CG's SPD system) keyed by their structural
//! recipe. Level 2 memoizes compiled [`tmu::Program`]s keyed by stage
//! kind and structural signature — sound because `AddressMap` layout is
//! a deterministic function of the input sizes, so two builds with the
//! same signature produce bit-identical programs (only the memory image,
//! which carries the values, differs between iterations).
//!
//! Both levels share one LRU capacity knob (0 = unbounded); eviction is
//! least-recently-used per level. Per-tenant hit/miss counters feed the
//! serving layer's hit-rate report, and every level-1 hit emits a
//! [`tmu_trace::EventKind::TensorCacheHit`] trace event.

use std::collections::BTreeMap;
use std::sync::Arc;

use tmu::Program;
use tmu_tensor::CsrMatrix;
use tmu_trace::EventKind;

/// Per-tenant cache counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TenantCacheStats {
    /// Level-1 (tensor) hits.
    pub tensor_hits: u64,
    /// Level-1 (tensor) misses (builds).
    pub tensor_misses: u64,
    /// Level-2 (program) hits.
    pub program_hits: u64,
    /// Level-2 (program) misses (compiles).
    pub program_misses: u64,
}

impl TenantCacheStats {
    /// Overall hit rate across both levels (0.0 when the tenant never
    /// touched the cache).
    pub fn hit_rate(&self) -> f64 {
        let hits = self.tensor_hits + self.program_hits;
        let total = hits + self.tensor_misses + self.program_misses;
        if total == 0 {
            0.0
        } else {
            hits as f64 / total as f64
        }
    }
}

/// A deterministic LRU store: entries move to the back on hit, evict
/// from the front when over capacity. Linear scans are fine at serving
/// scale (tens of entries) and keep the eviction order fully specified.
#[derive(Debug)]
struct Lru<V> {
    entries: Vec<(String, V)>,
    cap: usize,
    evictions: u64,
}

impl<V> Lru<V> {
    fn new(cap: usize) -> Self {
        Self {
            entries: Vec::new(),
            cap,
            evictions: 0,
        }
    }

    fn get(&mut self, key: &str) -> Option<&V> {
        let i = self.entries.iter().position(|(k, _)| k == key)?;
        let e = self.entries.remove(i);
        self.entries.push(e);
        self.entries.last().map(|(_, v)| v)
    }

    fn insert(&mut self, key: String, val: V) {
        self.entries.push((key, val));
        while self.cap > 0 && self.entries.len() > self.cap {
            self.entries.remove(0);
            self.evictions += 1;
        }
    }

    fn len(&self) -> usize {
        self.entries.len()
    }
}

/// The two-level cache handed to the DAG executor.
#[derive(Debug)]
pub struct StageCaches {
    tensors: Lru<Arc<CsrMatrix>>,
    programs: Lru<Arc<Program>>,
    per_tenant: BTreeMap<u32, TenantCacheStats>,
}

impl StageCaches {
    /// A cache holding at most `cap` entries **per level** (0 =
    /// unbounded).
    pub fn new(cap: usize) -> Self {
        Self {
            tensors: Lru::new(cap),
            programs: Lru::new(cap),
            per_tenant: BTreeMap::new(),
        }
    }

    /// Level-1 lookup: the tensor under `key`, building it on a miss.
    ///
    /// # Errors
    ///
    /// Propagates the builder's error on a miss.
    pub fn tensor(
        &mut self,
        key: &str,
        tenant: u32,
        build: impl FnOnce() -> Result<CsrMatrix, String>,
    ) -> Result<Arc<CsrMatrix>, String> {
        let stats = self.per_tenant.entry(tenant).or_default();
        if let Some(m) = self.tensors.get(key) {
            stats.tensor_hits += 1;
            tmu_trace::with(|t| {
                let c = t.component("apps.cache");
                t.event(c, 0, EventKind::TensorCacheHit, u64::from(tenant));
            });
            return Ok(Arc::clone(m));
        }
        stats.tensor_misses += 1;
        let m = Arc::new(build()?);
        self.tensors.insert(key.to_string(), Arc::clone(&m));
        Ok(m)
    }

    /// Level-2 lookup: the compiled program under `key`, compiling it on
    /// a miss.
    ///
    /// # Errors
    ///
    /// Propagates the builder's error on a miss.
    pub fn program(
        &mut self,
        key: &str,
        tenant: u32,
        build: impl FnOnce() -> Result<Program, String>,
    ) -> Result<Arc<Program>, String> {
        let stats = self.per_tenant.entry(tenant).or_default();
        if let Some(p) = self.programs.get(key) {
            stats.program_hits += 1;
            return Ok(Arc::clone(p));
        }
        stats.program_misses += 1;
        let p = Arc::new(build()?);
        self.programs.insert(key.to_string(), Arc::clone(&p));
        Ok(p)
    }

    /// Per-tenant counters (ordered by tenant id).
    pub fn tenant_stats(&self) -> &BTreeMap<u32, TenantCacheStats> {
        &self.per_tenant
    }

    /// Total evictions `(tensors, programs)`.
    pub fn evictions(&self) -> (u64, u64) {
        (self.tensors.evictions, self.programs.evictions)
    }

    /// Resident entry counts `(tensors, programs)`.
    pub fn len(&self) -> (usize, usize) {
        (self.tensors.len(), self.programs.len())
    }

    /// True when both levels are empty.
    pub fn is_empty(&self) -> bool {
        self.tensors.len() == 0 && self.programs.len() == 0
    }

    /// Aggregate counters `(hits, misses)` across tenants and levels.
    pub fn totals(&self) -> (u64, u64) {
        self.per_tenant.values().fold((0, 0), |(h, m), s| {
            (
                h + s.tensor_hits + s.program_hits,
                m + s.tensor_misses + s.program_misses,
            )
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tmu_tensor::gen;

    fn mat(seed: u64) -> Result<CsrMatrix, String> {
        Ok(gen::uniform(8, 8, 2, seed))
    }

    #[test]
    fn hits_and_misses_are_counted_per_tenant() {
        let mut c = StageCaches::new(0);
        c.tensor("a", 0, || mat(1)).expect("builds");
        c.tensor("a", 1, || mat(1)).expect("hits");
        c.tensor("a", 0, || mat(1)).expect("hits");
        let s0 = c.tenant_stats()[&0];
        let s1 = c.tenant_stats()[&1];
        assert_eq!((s0.tensor_hits, s0.tensor_misses), (1, 1));
        assert_eq!((s1.tensor_hits, s1.tensor_misses), (1, 0));
        assert!((s1.hit_rate() - 1.0).abs() < 1e-12);
        assert_eq!(c.totals(), (2, 1));
    }

    #[test]
    fn lru_evicts_the_least_recently_used_entry() {
        let mut c = StageCaches::new(2);
        c.tensor("a", 0, || mat(1)).expect("a");
        c.tensor("b", 0, || mat(2)).expect("b");
        c.tensor("a", 0, || mat(1)).expect("a hit; a is now newest");
        c.tensor("c", 0, || mat(3)).expect("c evicts b");
        assert_eq!(c.evictions(), (1, 0));
        assert_eq!(c.len().0, 2);
        // b is gone (rebuild = miss), a survived (hit).
        c.tensor("a", 0, || mat(1)).expect("a still resident");
        c.tensor("b", 0, || mat(2)).expect("b rebuilt");
        let s = c.tenant_stats()[&0];
        assert_eq!((s.tensor_hits, s.tensor_misses), (2, 4));
    }

    #[test]
    fn zero_cap_never_evicts() {
        let mut c = StageCaches::new(0);
        for k in 0..64u64 {
            c.tensor(&format!("k{k}"), 0, || mat(k)).expect("builds");
        }
        assert_eq!(c.evictions(), (0, 0));
        assert_eq!(c.len().0, 64);
    }
}
