//! The pipeline DAG model: named tensor edges between compiled stages.
//!
//! A [`PipelineDag`] describes **one round** of an application: each
//! [`StageSpec`] names its input tensors, its output tensor, and the
//! operation ([`StageOp`]) that maps one to the other. The executor
//! (`exec`) walks the DAG in deterministic ready order — lowest-index
//! stage whose inputs are all materialized — so two runs of the same
//! spec dispatch the same stage sequence regardless of scheduling.
//! Iterative applications (CG, PageRank) re-run the same DAG every
//! round with host logic rewriting the seed edges in between.

use std::collections::BTreeMap;
use std::collections::BTreeSet;
use std::sync::Arc;

use tmu_tensor::CsrMatrix;

/// A materialized tensor travelling along a DAG edge.
#[derive(Debug, Clone)]
pub enum TensorVal {
    /// A sparse matrix (CSR).
    Csr(Arc<CsrMatrix>),
    /// A dense vector or row-major dense matrix.
    Dense(Arc<Vec<f64>>),
    /// A sparse coordinate map (the `tmu-front` functional result shape).
    Coords(Arc<BTreeMap<Vec<u32>, f64>>),
}

impl TensorVal {
    /// The CSR payload, or an error naming the edge.
    pub fn as_csr(&self, edge: &str) -> Result<&Arc<CsrMatrix>, String> {
        match self {
            TensorVal::Csr(m) => Ok(m),
            _ => Err(format!("edge '{edge}' is not a sparse matrix")),
        }
    }

    /// The dense payload, or an error naming the edge.
    pub fn as_dense(&self, edge: &str) -> Result<&Arc<Vec<f64>>, String> {
        match self {
            TensorVal::Dense(v) => Ok(v),
            _ => Err(format!("edge '{edge}' is not dense")),
        }
    }
}

/// The operation a stage runs on the engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StageOp {
    /// `S = A .* (U · Vᵀ)`: sampled dense-dense product over the sparse
    /// pattern of input 0. Output is CSR with input 0's pattern.
    Sddmm,
    /// `Z = S · B`: sparse × dense-RANK product of input 0. Output is a
    /// dense row-major `rows × RANK` matrix.
    SpmmDense,
    /// `q = M · p`: input 0 (CSR) times input 1 (dense vector).
    SpmvVec,
    /// One PageRank gather iteration: input 0 is the in-adjacency CSR,
    /// input 1 the current rank vector; output the next rank vector.
    PrGather,
    /// A `tmu-front` einsum expression compiled over input 0 as the base
    /// matrix. Output is the functional coordinate map.
    Expr {
        /// Expression source, e.g. `"y(i) = A(i,j:csr) * x(j)"`.
        src: String,
    },
}

impl StageOp {
    /// Stable display name, used in records and bench rows.
    pub fn name(&self) -> &'static str {
        match self {
            StageOp::Sddmm => "sddmm",
            StageOp::SpmmDense => "spmm",
            StageOp::SpmvVec => "spmv",
            StageOp::PrGather => "gather",
            StageOp::Expr { .. } => "expr",
        }
    }
}

/// One stage of a pipeline round.
#[derive(Debug, Clone)]
pub struct StageSpec {
    /// Stage name (unique within the DAG; used in trace and bench rows).
    pub name: String,
    /// Names of the input tensor edges, in operand order.
    pub inputs: Vec<String>,
    /// Name of the output tensor edge.
    pub output: String,
    /// What the stage computes.
    pub op: StageOp,
}

/// A DAG of stages connected by named tensor edges.
#[derive(Debug, Clone)]
pub struct PipelineDag {
    /// The stages, in declaration order (ready-order tie-break).
    pub stages: Vec<StageSpec>,
}

impl PipelineDag {
    /// Validates the DAG against the set of seed edges the application
    /// materializes before round 1: stage names and outputs must be
    /// unique, no output may shadow a seed, and simulating ready-order
    /// execution from the seeds must fire every stage (i.e. the graph is
    /// acyclic and fully connected to its inputs).
    ///
    /// # Errors
    ///
    /// A human-readable description of the first violation.
    pub fn validate(&self, seeds: &BTreeSet<String>) -> Result<(), String> {
        let mut names = BTreeSet::new();
        let mut avail = seeds.clone();
        for s in &self.stages {
            if !names.insert(s.name.clone()) {
                return Err(format!("duplicate stage name '{}'", s.name));
            }
            if seeds.contains(&s.output) {
                return Err(format!(
                    "stage '{}' output '{}' shadows a seed edge",
                    s.name, s.output
                ));
            }
        }
        let mut outputs = BTreeSet::new();
        for s in &self.stages {
            if !outputs.insert(s.output.clone()) {
                return Err(format!("duplicate output edge '{}'", s.output));
            }
        }
        let mut done = vec![false; self.stages.len()];
        for _ in 0..self.stages.len() {
            let Some(i) = self.next_ready_inner(&done, &avail) else {
                break;
            };
            avail.insert(self.stages[i].output.clone());
            done[i] = true;
        }
        if let Some(i) = done.iter().position(|d| !d) {
            return Err(format!(
                "stage '{}' can never run: an input is neither a seed nor \
                 another stage's output (cycle or missing edge)",
                self.stages[i].name
            ));
        }
        Ok(())
    }

    /// The lowest-index stage that has not run this round and whose
    /// inputs are all materialized, if any.
    pub fn next_ready(&self, done: &[bool], env: &BTreeMap<String, TensorVal>) -> Option<usize> {
        let avail: BTreeSet<String> = env.keys().cloned().collect();
        self.next_ready_inner(done, &avail)
    }

    fn next_ready_inner(&self, done: &[bool], avail: &BTreeSet<String>) -> Option<usize> {
        self.stages
            .iter()
            .enumerate()
            .position(|(i, s)| !done[i] && s.inputs.iter().all(|e| avail.contains(e)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stage(name: &str, inputs: &[&str], output: &str) -> StageSpec {
        StageSpec {
            name: name.into(),
            inputs: inputs.iter().map(|s| s.to_string()).collect(),
            output: output.into(),
            op: StageOp::Sddmm,
        }
    }

    fn seeds(names: &[&str]) -> BTreeSet<String> {
        names.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn a_chain_validates_and_orders_deterministically() {
        let dag = PipelineDag {
            stages: vec![stage("a", &["A"], "S"), stage("b", &["S"], "Z")],
        };
        dag.validate(&seeds(&["A"])).expect("valid");
        let mut env = BTreeMap::new();
        env.insert(
            "A".to_string(),
            TensorVal::Dense(std::sync::Arc::new(vec![])),
        );
        let done = vec![false, false];
        assert_eq!(dag.next_ready(&done, &env), Some(0));
        // Stage b is not ready until a's output lands.
        assert_eq!(dag.next_ready(&[true, false], &env), None);
        env.insert(
            "S".to_string(),
            TensorVal::Dense(std::sync::Arc::new(vec![])),
        );
        assert_eq!(dag.next_ready(&[true, false], &env), Some(1));
    }

    #[test]
    fn a_cycle_is_rejected() {
        let dag = PipelineDag {
            stages: vec![stage("a", &["Z"], "S"), stage("b", &["S"], "Z")],
        };
        let err = dag.validate(&seeds(&["A"])).expect_err("cyclic");
        assert!(err.contains("can never run"), "got: {err}");
    }

    #[test]
    fn duplicate_outputs_and_seed_shadowing_are_rejected() {
        let dag = PipelineDag {
            stages: vec![stage("a", &["A"], "S"), stage("b", &["A"], "S")],
        };
        assert!(dag
            .validate(&seeds(&["A"]))
            .expect_err("dup")
            .contains("duplicate output"));
        let dag = PipelineDag {
            stages: vec![stage("a", &["A"], "A")],
        };
        assert!(dag
            .validate(&seeds(&["A"]))
            .expect_err("shadow")
            .contains("shadows a seed"));
    }
}
