//! The deterministic DAG executor and the three built-in applications.
//!
//! [`AppExec`] owns one application job: its [`PipelineDag`], the tensor
//! environment carrying intermediates between stages, and the host-side
//! round logic (CG's axpy/dot updates, PageRank's dense contribution
//! phase). The serving layer drives it through a narrow two-call
//! protocol:
//!
//! 1. [`AppExec::next_stage`] — compile (or cache-hit) the next ready
//!    stage and hand back a [`StageBuild`] the caller runs on the engine
//!    (any variant, preemptible mid-stage via the §5.6 snapshot path);
//! 2. [`AppExec::complete_stage`] — once the engine run drains,
//!    materialize the stage's output tensor with a functional pass,
//!    advance the DAG, and run end-of-round host logic (convergence
//!    predicates, iterate updates) when the round closes.
//!
//! The functional pass is a pure re-walk of the program over the memory
//! image, so the output tensors — and therefore every downstream stage's
//! program and image — are independent of how the engine run was
//! scheduled, preempted, or faulted. That is what makes served DAG
//! digests bit-identical to a solo unpreempted run.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use tmu::{MemImage, Program};
use tmu_front::ExprWorkload;
use tmu_kernels::pagerank::PageRank;
use tmu_kernels::sddmm::Sddmm;
use tmu_kernels::spmm::Spmm;
use tmu_kernels::spmv::Spmv;
use tmu_tensor::{gen, CooMatrix, CsrMatrix};

use crate::cache::StageCaches;
use crate::dag::{PipelineDag, StageOp, StageSpec, TensorVal};

/// Which built-in application a job runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum AppKind {
    /// One GNN layer: SDDMM attention scores, then SpMM aggregation.
    Gnn,
    /// Conjugate-gradient solve: SpMV per iteration plus host axpy/dot,
    /// to a relative-residual tolerance or the iteration cap.
    Cg,
    /// PageRank to convergence: one gather iteration per round plus the
    /// dense contribution update, to an L1 tolerance or the cap.
    PageRank,
}

impl AppKind {
    /// Stable display name, used in reports and bench rows.
    pub fn name(self) -> &'static str {
        match self {
            AppKind::Gnn => "gnn",
            AppKind::Cg => "cg",
            AppKind::PageRank => "pagerank",
        }
    }
}

/// The full recipe for one application job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct AppSpec {
    /// Which application.
    pub app: AppKind,
    /// Rows (= cols) of the synthetic square input.
    pub rows: usize,
    /// Nonzeros per row of the synthetic input.
    pub nnz_per_row: usize,
    /// Generator seed.
    pub seed: u64,
    /// Iteration cap for the iterative apps (GNN always runs 1 round).
    pub max_iters: u32,
    /// Lockstep lanes for every stage program.
    pub lanes: usize,
}

impl AppSpec {
    /// Short label for reports, e.g. `"gnn-r64"`.
    pub fn label(&self) -> String {
        format!("{}-r{}", self.app.name(), self.rows)
    }
}

/// A compiled stage, ready to run on any engine variant.
#[derive(Debug, Clone)]
pub struct StageBuild {
    /// Stage name (from the DAG).
    pub name: String,
    /// Round this build belongs to (0-based).
    pub round: u32,
    /// The compiled TMU program (possibly shared via the level-2 cache).
    pub program: Arc<Program>,
    /// The memory image carrying this round's values.
    pub image: Arc<MemImage>,
    /// outQ base address for core 0 (callers add their own job offset).
    pub outq_base: u64,
}

/// What one stage execution cost, for the per-app breakdown.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageRecord {
    /// Stage name.
    pub stage: String,
    /// Round the stage ran in (0-based).
    pub round: u32,
    /// Engine cycles the caller attributed to the stage.
    pub engine_cycles: u64,
    /// Host cycles charged at the stage boundary (functional
    /// materialization plus any end-of-round dense phase).
    pub host_cycles: u64,
}

/// The workload object backing a pending stage (kept alive so
/// [`AppExec::complete_stage`] can run its functional pass).
enum BuiltStage {
    Sddmm(Box<Sddmm>),
    Spmm(Box<Spmm>),
    Spmv(Box<Spmv>),
    Pr(Box<PageRank>),
    Expr(Box<ExprWorkload>),
}

impl std::fmt::Debug for BuiltStage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let tag = match self {
            BuiltStage::Sddmm(_) => "Sddmm",
            BuiltStage::Spmm(_) => "Spmm",
            BuiltStage::Spmv(_) => "Spmv",
            BuiltStage::Pr(_) => "Pr",
            BuiltStage::Expr(_) => "Expr",
        };
        f.write_str(tag)
    }
}

/// Host-side per-app state advanced at each round boundary.
#[derive(Debug)]
enum Logic {
    Gnn,
    Cg {
        x: Vec<f64>,
        r: Vec<f64>,
        p: Vec<f64>,
        rz: f64,
        rz0: f64,
    },
    Pr,
}

/// One application job in flight.
#[derive(Debug)]
pub struct AppExec {
    spec: AppSpec,
    dag: PipelineDag,
    env: BTreeMap<String, TensorVal>,
    done: Vec<bool>,
    round: u32,
    rounds_done: u32,
    logic: Logic,
    pending: Option<(usize, BuiltStage)>,
    records: Vec<StageRecord>,
    finished: bool,
}

impl AppExec {
    /// Builds the job's input tensors (through the level-1 cache, charged
    /// to `tenant`) and its validated DAG.
    ///
    /// # Errors
    ///
    /// Tensor-build or DAG-validation failures, as human-readable text.
    pub fn new(spec: AppSpec, caches: &mut StageCaches, tenant: u32) -> Result<Self, String> {
        let n = spec.rows;
        if n == 0 {
            return Err("application input must have at least one row".into());
        }
        let base_key = format!("uniform:{}:{}:{}", n, spec.nnz_per_row, spec.seed);
        let base = caches.tensor(&base_key, tenant, || {
            Ok(gen::uniform(n, n, spec.nnz_per_row, spec.seed))
        })?;
        let mut env = BTreeMap::new();
        let (dag, logic) = match spec.app {
            AppKind::Gnn => {
                env.insert("A".to_string(), TensorVal::Csr(base));
                let dag = PipelineDag {
                    stages: vec![
                        StageSpec {
                            name: "sddmm".into(),
                            inputs: vec!["A".into()],
                            output: "S".into(),
                            op: StageOp::Sddmm,
                        },
                        StageSpec {
                            name: "spmm".into(),
                            inputs: vec!["S".into()],
                            output: "Z".into(),
                            op: StageOp::SpmmDense,
                        },
                    ],
                };
                (dag, Logic::Gnn)
            }
            AppKind::Cg => {
                let spd_key = format!("cg-spd:{}:{}:{}", n, spec.nnz_per_row, spec.seed);
                let m = caches.tensor(&spd_key, tenant, || spd_from(&base))?;
                let b: Vec<f64> = (0..n).map(|i| 1.0 + (i % 13) as f64 / 13.0).collect();
                let r = b.clone();
                let p = r.clone();
                let rz: f64 = r.iter().map(|v| v * v).sum();
                env.insert("M".to_string(), TensorVal::Csr(m));
                env.insert("p".to_string(), TensorVal::Dense(Arc::new(p.clone())));
                let dag = PipelineDag {
                    stages: vec![StageSpec {
                        name: "spmv".into(),
                        inputs: vec!["M".into(), "p".into()],
                        output: "q".into(),
                        op: StageOp::SpmvVec,
                    }],
                };
                (
                    dag,
                    Logic::Cg {
                        x: vec![0.0; n],
                        r,
                        p,
                        rz,
                        rz0: rz,
                    },
                )
            }
            AppKind::PageRank => {
                env.insert("adj".to_string(), TensorVal::Csr(base));
                env.insert(
                    "rank".to_string(),
                    TensorVal::Dense(Arc::new(vec![1.0 / n as f64; n])),
                );
                let dag = PipelineDag {
                    stages: vec![StageSpec {
                        name: "gather".into(),
                        inputs: vec!["adj".into(), "rank".into()],
                        output: "rank_next".into(),
                        op: StageOp::PrGather,
                    }],
                };
                (dag, Logic::Pr)
            }
        };
        let seeds: BTreeSet<String> = env.keys().cloned().collect();
        dag.validate(&seeds)?;
        let done = vec![false; dag.stages.len()];
        Ok(Self {
            spec,
            dag,
            env,
            done,
            round: 0,
            rounds_done: 0,
            logic,
            pending: None,
            records: Vec::new(),
            finished: false,
        })
    }

    /// A generic executor over a caller-supplied DAG (used by tests and
    /// by custom pipelines that are not one of the built-in apps). The
    /// DAG runs for exactly one round; `env` seeds the tensor edges.
    ///
    /// # Errors
    ///
    /// DAG-validation failures, as human-readable text.
    pub fn custom(
        spec: AppSpec,
        dag: PipelineDag,
        env: BTreeMap<String, TensorVal>,
    ) -> Result<Self, String> {
        let seeds: BTreeSet<String> = env.keys().cloned().collect();
        dag.validate(&seeds)?;
        let done = vec![false; dag.stages.len()];
        Ok(Self {
            spec,
            dag,
            env,
            done,
            round: 0,
            rounds_done: 0,
            logic: Logic::Gnn,
            pending: None,
            records: Vec::new(),
            finished: false,
        })
    }

    /// The job's spec.
    pub fn spec(&self) -> &AppSpec {
        &self.spec
    }

    /// Short label for reports.
    pub fn label(&self) -> String {
        self.spec.label()
    }

    /// True once the convergence predicate fired or the cap was reached.
    pub fn finished(&self) -> bool {
        self.finished
    }

    /// Completed rounds (CG/PR iterations; 1 for GNN once finished).
    pub fn iterations(&self) -> u32 {
        self.rounds_done
    }

    /// Per-stage execution records, in completion order.
    pub fn records(&self) -> &[StageRecord] {
        &self.records
    }

    /// A tensor edge's current value, if materialized.
    pub fn tensor(&self, edge: &str) -> Option<&TensorVal> {
        self.env.get(edge)
    }

    /// Compiles the next ready stage, or returns `None` when the job is
    /// finished. At most one stage may be pending at a time.
    ///
    /// # Errors
    ///
    /// A stage is already pending, no stage is ready (malformed DAG), or
    /// the stage build failed.
    pub fn next_stage(
        &mut self,
        caches: &mut StageCaches,
        tenant: u32,
    ) -> Result<Option<StageBuild>, String> {
        if self.finished {
            return Ok(None);
        }
        if self.pending.is_some() {
            return Err("a stage is already pending".into());
        }
        let Some(i) = self.dag.next_ready(&self.done, &self.env) else {
            return Err("no stage is ready (malformed DAG)".into());
        };
        let stage = self.dag.stages[i].clone();
        let lanes = self.spec.lanes;
        let (built, program, image, outq_base) = match &stage.op {
            StageOp::Sddmm => {
                let a = self.input_csr(&stage, 0)?;
                let w = Sddmm::new(&a);
                let key = sig("sddmm", &a, lanes);
                let prog =
                    caches.program(&key, tenant, || Ok(w.build_program((0, a.rows()), lanes)))?;
                let (img, oq) = (w.image_handle(), w.outq_base(0));
                (BuiltStage::Sddmm(Box::new(w)), prog, img, oq)
            }
            StageOp::SpmmDense => {
                let s = self.input_csr(&stage, 0)?;
                let w = Spmm::new(&s);
                let key = sig("spmm", &s, lanes);
                let prog =
                    caches.program(&key, tenant, || Ok(w.build_program((0, s.rows()), lanes)))?;
                let (img, oq) = (w.image_handle(), w.outq_base(0));
                (BuiltStage::Spmm(Box::new(w)), prog, img, oq)
            }
            StageOp::SpmvVec => {
                let m = self.input_csr(&stage, 0)?;
                let p = self.input_dense(&stage, 1)?;
                let w = Spmv::with_vector(&m, p.as_ref().clone());
                let key = sig("spmv", &m, lanes);
                let prog =
                    caches.program(&key, tenant, || Ok(w.build_program((0, m.rows()), lanes)))?;
                let (img, oq) = (w.image_handle(), w.outq_base(0));
                (BuiltStage::Spmv(Box::new(w)), prog, img, oq)
            }
            StageOp::PrGather => {
                let adj = self.input_csr(&stage, 0)?;
                let rank = self.input_dense(&stage, 1)?;
                let w = PageRank::with_ranks(&adj, rank.as_ref().clone());
                let key = sig("pr", &adj, lanes);
                let prog =
                    caches.program(&key, tenant, || Ok(w.build_program((0, adj.rows()), lanes)))?;
                let (img, oq) = (w.image_handle(), w.outq_base(0));
                (BuiltStage::Pr(Box::new(w)), prog, img, oq)
            }
            StageOp::Expr { src } => {
                let base = self.input_csr(&stage, 0)?;
                let w = ExprWorkload::new(src, &base)
                    .map_err(|e| format!("expr stage '{}': {e}", stage.name))?;
                let key = format!(
                    "expr:{src}:{}x{}:{}:{}",
                    base.rows(),
                    base.cols(),
                    base.nnz(),
                    lanes
                );
                let prog = caches.program(&key, tenant, || {
                    w.lowered(lanes)
                        .map(|l| l.program)
                        .map_err(|e| format!("expr stage '{}': {e}", stage.name))
                })?;
                let (img, oq) = (w.image_handle(), w.outq_base());
                (BuiltStage::Expr(Box::new(w)), prog, img, oq)
            }
        };
        self.pending = Some((i, built));
        Ok(Some(StageBuild {
            name: stage.name,
            round: self.round,
            program,
            image,
            outq_base,
        }))
    }

    /// Materializes the pending stage's output (a pure functional pass,
    /// independent of how the engine run was scheduled), advances the
    /// DAG, and — when the round closes — runs the end-of-round host
    /// logic. Returns the host cycles to charge at this stage boundary.
    ///
    /// # Errors
    ///
    /// No stage is pending, or output assembly failed.
    pub fn complete_stage(&mut self, engine_cycles: u64) -> Result<u64, String> {
        let (i, built) = self
            .pending
            .take()
            .ok_or_else(|| "no stage is pending".to_string())?;
        let lanes = self.spec.lanes;
        let round = self.round;
        let out_edge = self.dag.stages[i].output.clone();
        let stage_name = self.dag.stages[i].name.clone();
        let (val, out_elems) = match built {
            BuiltStage::Sddmm(w) => {
                let vals = w.functional(lanes);
                let n = vals.len();
                let s = w.output_matrix(vals)?;
                (TensorVal::Csr(Arc::new(s)), n)
            }
            BuiltStage::Spmm(w) => {
                let z = w.functional(lanes);
                let n = z.len();
                (TensorVal::Dense(Arc::new(z)), n)
            }
            BuiltStage::Spmv(w) => {
                let q = w.functional();
                let n = q.len();
                (TensorVal::Dense(Arc::new(q)), n)
            }
            BuiltStage::Pr(w) => {
                let r = w.functional(lanes);
                let n = r.len();
                (TensorVal::Dense(Arc::new(r)), n)
            }
            BuiltStage::Expr(w) => {
                let m = w
                    .run_functional(lanes)
                    .map_err(|e| format!("expr stage '{stage_name}': {e}"))?;
                let n = m.len();
                (TensorVal::Coords(Arc::new(m)), n)
            }
        };
        self.env.insert(out_edge, val);
        self.done[i] = true;
        // Nominal host charge: two core ops per materialized element.
        let mut host = 2 * out_elems as u64;
        if self.done.iter().all(|d| *d) {
            host += self.end_round()?;
        }
        self.records.push(StageRecord {
            stage: stage_name,
            round,
            engine_cycles,
            host_cycles: host,
        });
        Ok(host)
    }

    /// End-of-round host logic; returns its nominal cycle charge.
    fn end_round(&mut self) -> Result<u64, String> {
        let n = self.spec.rows;
        self.rounds_done += 1;
        let extra = match &mut self.logic {
            Logic::Gnn => {
                self.finished = true;
                0
            }
            Logic::Cg { x, r, p, rz, rz0 } => {
                let q = self
                    .env
                    .get("q")
                    .ok_or("CG round closed without q")?
                    .as_dense("q")?
                    .clone();
                let pq: f64 = p.iter().zip(q.iter()).map(|(a, b)| a * b).sum();
                if pq == 0.0 {
                    self.finished = true;
                } else {
                    let alpha = *rz / pq;
                    for ((xi, pi), (ri, qi)) in
                        x.iter_mut().zip(p.iter()).zip(r.iter_mut().zip(q.iter()))
                    {
                        *xi += alpha * pi;
                        *ri -= alpha * qi;
                    }
                    let rz_new: f64 = r.iter().map(|v| v * v).sum();
                    if rz_new.sqrt() <= 1e-6 * rz0.sqrt() || self.rounds_done >= self.spec.max_iters
                    {
                        self.finished = true;
                    } else {
                        let beta = rz_new / *rz;
                        for (pi, ri) in p.iter_mut().zip(r.iter()) {
                            *pi = ri + beta * *pi;
                        }
                        self.env
                            .insert("p".to_string(), TensorVal::Dense(Arc::new(p.clone())));
                    }
                    *rz = rz_new;
                }
                self.env.remove("q");
                // Two dots and two axpys plus the direction update.
                6 * n as u64
            }
            Logic::Pr => {
                let next = self
                    .env
                    .remove("rank_next")
                    .ok_or("PR round closed without rank_next")?;
                let next = next.as_dense("rank_next")?.clone();
                let prev = self.env.get("rank").ok_or("PR lost rank")?;
                let prev = prev.as_dense("rank")?;
                let delta: f64 = prev
                    .iter()
                    .zip(next.iter())
                    .map(|(a, b)| (a - b).abs())
                    .sum();
                if delta <= 1e-7 * n as f64 || self.rounds_done >= self.spec.max_iters {
                    self.finished = true;
                }
                self.env.insert("rank".to_string(), TensorVal::Dense(next));
                // The dense contribution update phase.
                4 * n as u64
            }
        };
        if !self.finished {
            for d in &mut self.done {
                *d = false;
            }
            self.round += 1;
        }
        Ok(extra)
    }

    fn input_csr(&self, stage: &StageSpec, i: usize) -> Result<Arc<CsrMatrix>, String> {
        let edge = stage
            .inputs
            .get(i)
            .ok_or_else(|| format!("stage '{}' is missing input {i}", stage.name))?;
        let val = self
            .env
            .get(edge)
            .ok_or_else(|| format!("edge '{edge}' is not materialized"))?;
        Ok(Arc::clone(val.as_csr(edge)?))
    }

    fn input_dense(&self, stage: &StageSpec, i: usize) -> Result<Arc<Vec<f64>>, String> {
        let edge = stage
            .inputs
            .get(i)
            .ok_or_else(|| format!("stage '{}' is missing input {i}", stage.name))?;
        let val = self
            .env
            .get(edge)
            .ok_or_else(|| format!("edge '{edge}' is not materialized"))?;
        Ok(Arc::clone(val.as_dense(edge)?))
    }
}

/// Level-2 cache key: stage kind + structural signature. Sound because
/// the compiled program is a function of the input *sizes* only — the
/// sparsity pattern and values live in the memory image.
fn sig(tag: &str, m: &CsrMatrix, lanes: usize) -> String {
    format!("{tag}:{}x{}:{}:{}", m.rows(), m.cols(), m.nnz(), lanes)
}

/// Builds CG's symmetric positive-definite system from a base matrix:
/// `M = (A + Aᵀ)/2` plus a strictly dominant diagonal.
fn spd_from(a: &CsrMatrix) -> Result<CsrMatrix, String> {
    let n = a.rows();
    let mut coo: BTreeMap<(u32, u32), f64> = BTreeMap::new();
    for i in 0..n {
        for (j, v) in a.row(i) {
            *coo.entry((i as u32, j)).or_insert(0.0) += 0.5 * v;
            *coo.entry((j, i as u32)).or_insert(0.0) += 0.5 * v;
        }
    }
    let mut rowsum = vec![0.0f64; n];
    for (&(i, j), &v) in &coo {
        if i != j {
            rowsum[i as usize] += v.abs();
        }
    }
    for (i, sum) in rowsum.iter().enumerate().take(n) {
        *coo.entry((i as u32, i as u32)).or_insert(0.0) += 1.0 + sum;
    }
    let trips: Vec<(u32, u32, f64)> = coo.into_iter().map(|((i, j), v)| (i, j, v)).collect();
    let coo = CooMatrix::from_triplets(n, n, trips).map_err(|e| format!("CG system: {e:?}"))?;
    Ok(CsrMatrix::from_coo(&coo))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_to_completion(spec: AppSpec) -> AppExec {
        let mut caches = StageCaches::new(0);
        let mut exec = AppExec::new(spec, &mut caches, 0).expect("builds");
        let mut guard = 0;
        while !exec.finished() {
            let b = exec
                .next_stage(&mut caches, 0)
                .expect("stage")
                .expect("not finished");
            assert!(!b.name.is_empty());
            exec.complete_stage(1_000).expect("completes");
            guard += 1;
            assert!(guard < 10_000, "runaway app loop");
        }
        exec
    }

    fn spec(app: AppKind) -> AppSpec {
        AppSpec {
            app,
            rows: 48,
            nnz_per_row: 4,
            seed: 7,
            max_iters: 20,
            lanes: 8,
        }
    }

    #[test]
    fn gnn_runs_one_round_of_two_stages() {
        let exec = run_to_completion(spec(AppKind::Gnn));
        assert_eq!(exec.iterations(), 1);
        let stages: Vec<&str> = exec.records().iter().map(|r| r.stage.as_str()).collect();
        assert_eq!(stages, ["sddmm", "spmm"]);
        // Z is a dense rows × RANK aggregation.
        let z = exec.tensor("Z").expect("Z materialized");
        assert_eq!(
            z.as_dense("Z").expect("dense").len(),
            48 * tmu_kernels::spmm::RANK
        );
    }

    #[test]
    fn cg_converges_within_the_cap_on_an_spd_system() {
        let exec = run_to_completion(spec(AppKind::Cg));
        assert!(exec.iterations() >= 2, "should take several iterations");
        assert!(exec.iterations() <= 20, "respects the cap");
        // The solve actually converged: residual predicate fired early.
        let Logic::Cg { rz, rz0, .. } = &exec.logic else {
            panic!("CG logic")
        };
        assert!(rz.sqrt() <= 1e-6 * rz0.sqrt(), "converged");
    }

    #[test]
    fn cg_respects_the_iteration_cap() {
        let mut s = spec(AppKind::Cg);
        s.max_iters = 2;
        let exec = run_to_completion(s);
        assert_eq!(exec.iterations(), 2);
    }

    #[test]
    fn pagerank_iterates_and_ranks_sum_to_one_ish() {
        let mut s = spec(AppKind::PageRank);
        s.max_iters = 8;
        let exec = run_to_completion(s);
        assert!(exec.iterations() >= 2);
        let rank = exec.tensor("rank").expect("rank");
        let sum: f64 = rank.as_dense("rank").expect("dense").iter().sum();
        // Pull-style PR with degree-1 fix on isolated vertices keeps the
        // mass near 1 (not exact — dangling mass leaks).
        assert!(sum > 0.5 && sum < 1.5, "mass {sum}");
    }

    #[test]
    fn two_executions_are_bit_identical() {
        for app in [AppKind::Gnn, AppKind::Cg, AppKind::PageRank] {
            let a = run_to_completion(spec(app));
            let b = run_to_completion(spec(app));
            assert_eq!(a.iterations(), b.iterations());
            assert_eq!(a.records(), b.records());
        }
    }

    #[test]
    fn program_cache_hits_across_iterations() {
        let mut caches = StageCaches::new(0);
        let mut s = spec(AppKind::PageRank);
        s.max_iters = 4;
        let mut exec = AppExec::new(s, &mut caches, 3).expect("builds");
        while !exec.finished() {
            exec.next_stage(&mut caches, 3).expect("stage").expect("s");
            exec.complete_stage(0).expect("completes");
        }
        let st = caches.tenant_stats()[&3];
        assert_eq!(st.program_misses, 1, "one compile");
        assert_eq!(
            st.program_hits as u32,
            exec.iterations() - 1,
            "every later round reuses it"
        );
    }

    #[test]
    fn an_expr_stage_runs_through_the_dag() {
        let mut caches = StageCaches::new(0);
        let base = gen::uniform(24, 24, 3, 11);
        let mut env = BTreeMap::new();
        env.insert("A".to_string(), TensorVal::Csr(Arc::new(base)));
        let dag = PipelineDag {
            stages: vec![StageSpec {
                name: "expr".into(),
                inputs: vec!["A".into()],
                output: "y".into(),
                op: StageOp::Expr {
                    src: "y(i) = A(i,j:csr) * x(j)".into(),
                },
            }],
        };
        let mut exec = AppExec::custom(spec(AppKind::Gnn), dag, env).expect("valid");
        let b = exec
            .next_stage(&mut caches, 0)
            .expect("stage")
            .expect("ready");
        assert_eq!(b.name, "expr");
        exec.complete_stage(500).expect("completes");
        assert!(exec.finished());
        let y = exec.tensor("y").expect("y");
        let TensorVal::Coords(c) = y else {
            panic!("coords")
        };
        assert!(!c.is_empty());
    }

    #[test]
    fn stage_protocol_misuse_is_reported() {
        let mut caches = StageCaches::new(0);
        let mut exec = AppExec::new(spec(AppKind::Gnn), &mut caches, 0).expect("builds");
        assert!(exec.complete_stage(0).is_err(), "nothing pending");
        exec.next_stage(&mut caches, 0).expect("ok").expect("some");
        assert!(
            exec.next_stage(&mut caches, 0).is_err(),
            "double dispatch rejected"
        );
    }
}
