//! Application DAG pipelines over the TMU engine.
//!
//! The paper evaluates single kernels; real traffic is multi-kernel.
//! This crate models whole *applications* as DAGs of dependent TMU
//! programs with named tensor edges carrying intermediates:
//!
//! - [`AppKind::Gnn`] — one GNN layer: an SDDMM attention-score stage
//!   feeding an SpMM aggregation stage;
//! - [`AppKind::Cg`] — conjugate-gradient solve: an SpMV stage per
//!   iteration plus host axpy/dot updates, with a convergence predicate
//!   and an iteration cap;
//! - [`AppKind::PageRank`] — the `tmu-kernels` PageRank loop refolded
//!   onto the DAG: one gather stage per iteration plus the dense
//!   contribution update, to an L1 tolerance or the cap.
//!
//! [`AppExec`] drives a job stage-by-stage through a two-call protocol
//! ([`AppExec::next_stage`] / [`AppExec::complete_stage`]) that leaves
//! *how* each stage's engine run is scheduled entirely to the caller —
//! the serving layer preempts mid-stage via the §5.6 snapshot path and
//! restarts faulted stages from the last stage boundary, and the result
//! tensors are bit-identical either way because stage outputs come from
//! a pure functional pass over the program and image.
//!
//! [`StageCaches`] is the two-level cache behind every build: built
//! tensors (level 1) and compiled programs (level 2), shared across
//! iterations, jobs, and tenants, with LRU eviction and per-tenant
//! hit-rate counters.

#![warn(missing_docs)]
#![warn(clippy::unwrap_used)]

pub mod cache;
pub mod dag;
pub mod exec;

pub use cache::{StageCaches, TenantCacheStats};
pub use dag::{PipelineDag, StageOp, StageSpec, TensorVal};
pub use exec::{AppExec, AppKind, AppSpec, StageBuild, StageRecord};
