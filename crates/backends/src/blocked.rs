//! BlockedSve: a register-tiled BCSR software path.
//!
//! The SparseTIR / tensor-core style of sparse execution: extract dense
//! `4×8` tiles from the CSR fibers into a [`BcsrMatrix`], then run dense
//! micro-kernels over the stored tiles — one 512-bit SVE vector row per
//! tile row, no per-element gathers, no data-dependent inner branches.
//! The price is padding: the cost model charges every tile as if full
//! (loads, stores, and FLOPs over all `4×8` slots), while the functional
//! result honours the occupancy masks so stored entries — and only stored
//! entries — contribute, in ascending column order. That makes the
//! blocked path bit-identical to the reference results (the CSR fold
//! order is preserved exactly) while its *performance* degrades with tile
//! occupancy, which is the trade-off the four-way comparison measures.
//!
//! Two entry points: [`run_kernel`] for the Table 4 kernels it supports
//! (`SpMV`, `SpMM`), and [`run_expr`] for compiled einsum expressions
//! whose iteration graph is SpMV-shaped (a dense output loop over a
//! single compressed walk against a dense vector).

use std::collections::BTreeMap;
use std::sync::Arc;

use tmu_front::bindings::LevelData;
use tmu_front::{ExprWorkload, LoopKind};
use tmu_kernels::data::partition_rows;
use tmu_kernels::spmm::RANK;
use tmu_kernels::util::fold_deps;
use tmu_sim::{
    AddressMap, ChannelMachine, Deps, Machine, Region, RunStats, Site, System, SystemConfig,
};
use tmu_tensor::{BcsrMatrix, CsrMatrix};

/// Tile rows (one tile spans `BR` matrix rows).
pub const BR: usize = 4;
/// Tile columns (one 512-bit SVE vector of f64 per tile row).
pub const BC: usize = 8;

const S_PTR: u16 = 500;
const S_IDX: u16 = 501;
const S_VAL: u16 = 502;
const S_TSTORE: u16 = 503;
const S_BPTR: u16 = 504;
const S_BIDX: u16 = 505;
const S_TILE: u16 = 506;
const S_X: u16 = 507;
const S_STORE: u16 = 508;
const S_BR_T: u16 = 509;
const S_BR_G: u16 = 510;

/// One blocked-backend run: simulated stats plus the tiling telemetry
/// surfaced as the schema-v3 `tile_occupancy` column.
#[derive(Debug, Clone)]
pub struct BlockedRun {
    /// Cycle-level stats from replaying the extraction + compute op
    /// streams through the simulated cores.
    pub stats: RunStats,
    /// Mean occupied fraction of the materialized tiles.
    pub tile_occupancy: f64,
    /// Number of materialized tiles.
    pub tiles: u64,
}

/// Whether [`run_kernel`] supports `kernel`.
pub fn supports(kernel: &str) -> bool {
    matches!(kernel, "SpMV" | "SpMM")
}

/// The deterministic SpMV dense vector (the formula shared by
/// `tmu_kernels::spmv::Spmv` and `tmu_front::bindings::auto_bind`).
fn spmv_x(cols: usize) -> Vec<f64> {
    (0..cols).map(|j| 0.5 + (j % 97) as f64 / 97.0).collect()
}

/// The deterministic SpMM dense right-hand side (the
/// `tmu_kernels::spmm::Spmm` formula).
fn spmm_b(cols: usize) -> Vec<f64> {
    (0..cols * RANK)
        .map(|x| 0.5 + (x % 73) as f64 / 73.0)
        .collect()
}

/// Iterates row `i`'s stored entries in ascending column order through
/// the blocked layout — the same order as the CSR fiber, so folds over
/// this iterator reproduce the reference results bit-for-bit.
fn for_each_entry(b: &BcsrMatrix, gr: usize, r_in: usize, mut f: impl FnMut(usize, f64)) {
    let (b0, b1) = b.block_row_range(gr);
    for blk in b0..b1 {
        let gc = b.block_col(blk) as usize;
        let mask = b.mask(blk);
        let vals = b.block_vals(blk);
        for c_in in 0..BC {
            let slot = r_in * BC + c_in;
            if mask & (1u64 << slot) != 0 {
                f(gc * BC + c_in, vals[slot]);
            }
        }
    }
}

/// Functional blocked SpMV: `y = A·x` with the kernel's deterministic
/// vector, folded in ascending column order (bit-identical to
/// `Spmv::reference`). The fold starts at `-0.0` — the additive identity
/// `f64::sum()` uses — so rows with no stored entries match the
/// reference's `-0.0` exactly.
pub fn spmv_values(a: &CsrMatrix) -> Vec<f64> {
    let b = BcsrMatrix::from_csr(a, BR, BC);
    let x = spmv_x(a.cols());
    let mut y = vec![-0.0f64; a.rows()];
    for (i, yi) in y.iter_mut().enumerate() {
        for_each_entry(&b, i / BR, i % BR, |c, v| *yi += v * x[c]);
    }
    y
}

/// Functional blocked SpMM: `Z = A·B` (row-major `rows × RANK`) with the
/// kernel's deterministic `B`, accumulated in ascending-`k` order
/// (bit-identical to `Spmm::reference`).
pub fn spmm_values(a: &CsrMatrix) -> Vec<f64> {
    let b = BcsrMatrix::from_csr(a, BR, BC);
    let bv = spmm_b(a.cols());
    let mut z = vec![0.0f64; a.rows() * RANK];
    for i in 0..a.rows() {
        for_each_entry(&b, i / BR, i % BR, |k, v| {
            for r in 0..RANK {
                z[i * RANK + r] += v * bv[k * RANK + r];
            }
        });
    }
    z
}

/// The SpMV-shaped expression pattern [`run_expr`] recognizes: the CSR
/// operand rebuilt from the workload's bound storage, plus the bound
/// dense vector.
fn expr_operands(w: &ExprWorkload) -> Option<(CsrMatrix, Vec<f64>)> {
    let g = w.graph();
    if g.loops.len() != 2
        || w.expr().terms.len() != 1
        || g.loops[0].kind != LoopKind::Dense
        || g.loops[0].output_pos != Some(0)
        || !matches!(g.loops[1].kind, LoopKind::Walk | LoopKind::WalkVec)
        || g.loops[1].output_pos.is_some()
        || g.loops[1].drivers.len() != 1
    {
        return None;
    }
    let term = &w.expr().terms[0];
    if term.len() != 2 {
        return None;
    }
    let d = g.loops[1].drivers[0];
    if d.level != 1 {
        return None;
    }
    let a = w
        .bindings()
        .get(&term[d.factor].tensor, term[d.factor].span)
        .ok()?;
    let other = &term[1 - d.factor];
    let x = w.bindings().get(&other.tensor, other.span).ok()?;
    // A must be CSR-shaped (dense rows over compressed columns), the
    // other factor a rank-1 dense vector indexed by the walked variable.
    let (ptrs, idxs) = match (&a.levels[..], &x.levels[..]) {
        (
            [LevelData::Dense { .. }, LevelData::Compressed {
                ptrs: Some((p, _)),
                idxs: (ix, _),
            }],
            [LevelData::Dense { .. }],
        ) if other.indices[0].name == g.loops[1].var => (Arc::clone(p), Arc::clone(ix)),
        _ => return None,
    };
    let m = CsrMatrix::from_parts(
        a.dims[0],
        a.dims[1],
        ptrs.as_ref().clone(),
        idxs.as_ref().clone(),
        a.vals.0.as_ref().clone(),
    )
    .ok()?;
    Some((m, x.vals.0.as_ref().clone()))
}

/// Whether [`run_expr`] supports the expression's iteration graph.
pub fn supports_expr(w: &ExprWorkload) -> bool {
    expr_operands(w).is_some()
}

/// Functional blocked evaluation of an SpMV-shaped expression, keyed like
/// the interpreter's oracle (first product assigns, later products
/// accumulate; untouched rows stay absent). `None` when the expression
/// does not match the blocked pattern.
pub fn expr_values(w: &ExprWorkload) -> Option<BTreeMap<Vec<u32>, f64>> {
    let (m, x) = expr_operands(w)?;
    let b = BcsrMatrix::from_csr(&m, BR, BC);
    let mut out = BTreeMap::new();
    for i in 0..m.rows() {
        let mut acc: Option<f64> = None;
        for_each_entry(&b, i / BR, i % BR, |c, v| {
            let p = v * x[c];
            acc = Some(match acc {
                None => p,
                Some(a) => a + p,
            });
        });
        if let Some(v) = acc {
            out.insert(vec![i as u32], v);
        }
    }
    Some(out)
}

/// The shard context captured by the emit closures: the CSR source, the
/// blocked layout, and every simulated region they live in.
struct Ctx {
    bcsr: Arc<BcsrMatrix>,
    csr_ptrs: Arc<Vec<u32>>,
    ptrs_r: Region,
    idxs_r: Region,
    vals_r: Region,
    bptrs_r: Region,
    bidx_r: Region,
    bmask_r: Region,
    bvals_r: Region,
    x_r: Region,
    y_r: Region,
    rank: usize,
}

/// Emits the tile-extraction pass for one block-row range: stream the
/// CSR fibers once (pointer loads + chunked index/value vector loads) and
/// scatter them into the tile store.
fn emit_extract<M: Machine + ?Sized>(m: &mut M, ctx: &Ctx, grs: (usize, usize), vl: usize) {
    let b = &ctx.bcsr;
    let rows = b.rows();
    for gr in grs.0..grs.1 {
        for i in gr * BR..((gr + 1) * BR).min(rows) {
            let p0 = m.load(Site(S_PTR), ctx.ptrs_r.u32_at(i), 4, Deps::NONE);
            let p1 = m.load(Site(S_PTR), ctx.ptrs_r.u32_at(i + 1), 4, Deps::NONE);
            let bounds = Deps::on(&[p0, p1]);
            let (beg, end) = (ctx.csr_ptrs[i] as usize, ctx.csr_ptrs[i + 1] as usize);
            let mut p = beg;
            while p < end {
                let n = (end - p).min(vl);
                let iv = m.vec_load(Site(S_IDX), ctx.idxs_r.u32_at(p), (n * 4) as u32, bounds);
                let vv = m.vec_load(Site(S_VAL), ctx.vals_r.f64_at(p), (n * 8) as u32, bounds);
                // Slot addressing: block column + in-tile offset per chunk.
                m.int_op(Deps::on(&[iv, vv]));
                p += n;
                m.branch(Site(S_BR_T), p < end, bounds);
            }
        }
        // Write out the block row's materialized tiles.
        let (b0, b1) = b.block_row_range(gr);
        for blk in b0..b1 {
            let mut s = 0;
            while s < BR * BC {
                let n = (BR * BC - s).min(vl);
                m.store(
                    Site(S_TSTORE),
                    ctx.bvals_r.f64_at(blk * BR * BC + s),
                    (n * 8) as u32,
                    Deps::NONE,
                );
                s += n;
            }
            m.store(Site(S_TSTORE), ctx.bidx_r.u32_at(blk), 4, Deps::NONE);
            m.store(Site(S_TSTORE), ctx.bmask_r.at(blk, 8), 8, Deps::NONE);
        }
        m.branch(Site(S_BR_G), gr + 1 < grs.1, Deps::NONE);
    }
}

/// Emits the dense micro-kernel pass for one block-row range. Every tile
/// is charged in full — `2·BR·BC·rank` FLOPs and whole-tile loads — with
/// no per-element gathers and no data-dependent branches inside a tile.
fn emit_compute<M: Machine + ?Sized>(m: &mut M, ctx: &Ctx, grs: (usize, usize), vl: usize) {
    let b = &ctx.bcsr;
    let rows = b.rows();
    for gr in grs.0..grs.1 {
        let q0 = m.load(Site(S_BPTR), ctx.bptrs_r.u32_at(gr), 4, Deps::NONE);
        let q1 = m.load(Site(S_BPTR), ctx.bptrs_r.u32_at(gr + 1), 4, Deps::NONE);
        let bounds = Deps::on(&[q0, q1]);
        let (b0, b1) = b.block_row_range(gr);
        for blk in b0..b1 {
            let gc = b.block_col(blk) as usize;
            let bi = m.load(Site(S_BIDX), ctx.bidx_r.u32_at(blk), 4, bounds);
            let mut tile_loads = vec![bi];
            let mut s = 0;
            while s < BR * BC {
                let n = (BR * BC - s).min(vl);
                tile_loads.push(m.vec_load(
                    Site(S_TILE),
                    ctx.bvals_r.f64_at(blk * BR * BC + s),
                    (n * 8) as u32,
                    bounds,
                ));
                s += n;
            }
            // Operand stripe: x[gc·BC ..][..BC] for SpMV, the BC rows of B
            // for SpMM — then the full-tile FMA.
            let mut o = 0;
            while o < BC * ctx.rank {
                let n = (BC * ctx.rank - o).min(vl);
                tile_loads.push(m.vec_load(
                    Site(S_X),
                    ctx.x_r.f64_at(gc * BC * ctx.rank + o),
                    (n * 8) as u32,
                    Deps::from(bi),
                ));
                o += n;
            }
            let deps = fold_deps(m, &tile_loads);
            m.vec_op((2 * BR * BC * ctx.rank) as u32, deps);
            m.branch(Site(S_BR_T), blk + 1 < b1, bounds);
        }
        // Store the finished output block rows.
        let lo = gr * BR;
        let hi = ((gr + 1) * BR).min(rows);
        let mut s = 0;
        while s < (hi - lo) * ctx.rank {
            let n = ((hi - lo) * ctx.rank - s).min(vl);
            m.store(
                Site(S_STORE),
                ctx.y_r.f64_at(lo * ctx.rank + s),
                (n * 8) as u32,
                Deps::NONE,
            );
            s += n;
        }
        m.branch(Site(S_BR_G), gr + 1 < grs.1, Deps::NONE);
    }
}

#[cfg(feature = "trace")]
fn trace_tiles(b: &BcsrMatrix) {
    tmu_trace::with(|tr| {
        let c = tr.component("backends.blocked");
        // The tile extraction *is* a csr→bcsr format conversion; announce
        // it with the formats-crate kind indexes (csr = 0, bcsr = 2) so
        // trace consumers see one conversion event per re-marshaling.
        tr.event(c, 0, tmu_trace::EventKind::FormatConvert, 2);
        let mut seq = 1u64;
        let (grid_rows, _) = b.grid();
        for gr in 0..grid_rows {
            let (b0, b1) = b.block_row_range(gr);
            for blk in b0..b1 {
                let payload = ((gr as u64) << 32) | u64::from(b.block_col(blk));
                tr.event(c, seq, tmu_trace::EventKind::TileExtract, payload);
                seq += 1;
            }
        }
    });
}

/// Runs the blocked cost model for `a` against `cfg`'s cores: extraction
/// plus dense micro-kernels, block rows sharded across cores by stored
/// tile count. `rank` is 1 for SpMV and `RANK` for SpMM.
fn run_csr(a: &CsrMatrix, cfg: SystemConfig, rank: usize) -> BlockedRun {
    let bcsr = Arc::new(BcsrMatrix::from_csr(a, BR, BC));
    #[cfg(feature = "trace")]
    trace_tiles(&bcsr);
    let (grid_rows, grid_cols) = bcsr.grid();
    let mut map = AddressMap::new();
    let ptrs_r = map.alloc_elems("a.ptrs", a.rows() + 1, 4);
    let idxs_r = map.alloc_elems("a.idxs", a.nnz().max(1), 4);
    let vals_r = map.alloc_elems("a.vals", a.nnz().max(1), 8);
    let bptrs_r = map.alloc_elems("blk.ptrs", grid_rows + 1, 4);
    let bidx_r = map.alloc_elems("blk.cols", bcsr.num_blocks().max(1), 4);
    let bmask_r = map.alloc_elems("blk.masks", bcsr.num_blocks().max(1), 8);
    let bvals_r = map.alloc_elems("blk.vals", (bcsr.num_blocks() * BR * BC).max(1), 8);
    let x_r = map.alloc_elems("x", (grid_cols * BC * rank).max(1), 8);
    let y_r = map.alloc_elems("y", (a.rows() * rank).max(1), 8);
    let csr_ptrs = Arc::new(a.row_ptrs().to_vec());

    let shards = partition_rows(bcsr.ptrs(), cfg.cores());
    let vl = cfg.core.sve_lanes();
    let mut sys = System::new(cfg);
    let stats = sys.run(
        shards
            .into_iter()
            .map(|grs| {
                let ctx = Ctx {
                    bcsr: Arc::clone(&bcsr),
                    csr_ptrs: Arc::clone(&csr_ptrs),
                    ptrs_r,
                    idxs_r,
                    vals_r,
                    bptrs_r,
                    bidx_r,
                    bmask_r,
                    bvals_r,
                    x_r,
                    y_r,
                    rank,
                };
                move |m: &mut ChannelMachine| {
                    emit_extract(m, &ctx, grs, vl);
                    emit_compute(m, &ctx, grs, vl);
                }
            })
            .collect(),
    );
    BlockedRun {
        stats,
        tile_occupancy: bcsr.occupancy(),
        tiles: bcsr.num_blocks() as u64,
    }
}

/// Runs a supported Table 4 kernel through the blocked backend.
///
/// # Panics
///
/// Panics when `kernel` is not one of [`supports`]' kernels.
pub fn run_kernel(kernel: &str, a: &CsrMatrix, cfg: SystemConfig) -> BlockedRun {
    match kernel {
        "SpMV" => run_csr(a, cfg, 1),
        "SpMM" => run_csr(a, cfg, RANK),
        other => panic!("{other} has no blocked-sve variant"),
    }
}

/// Runs an SpMV-shaped compiled expression through the blocked backend.
///
/// # Panics
///
/// Panics when the expression's iteration graph does not match the
/// blocked pattern (check [`supports_expr`] first).
pub fn run_expr(w: &ExprWorkload, cfg: SystemConfig) -> BlockedRun {
    let (m, _) = expr_operands(w)
        .unwrap_or_else(|| panic!("{:?} has no blocked-sve lowering", w.expr().text));
    run_csr(&m, cfg, 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tmu_sim::{CoreConfig, MemSysConfig};
    use tmu_tensor::gen;

    fn small_cfg(cores: usize) -> SystemConfig {
        SystemConfig {
            core: CoreConfig::neoverse_n1_like(),
            mem: MemSysConfig::table5(cores),
        }
    }

    #[test]
    fn spmv_values_match_reference_bitwise() {
        let a = gen::uniform(257, 192, 6, 17);
        let w = tmu_kernels::spmv::Spmv::new(&a);
        let got = spmv_values(&a);
        assert_eq!(got.len(), w.reference().len());
        for (i, (g, r)) in got.iter().zip(w.reference()).enumerate() {
            assert_eq!(g.to_bits(), r.to_bits(), "row {i}: {g} vs {r}");
        }
    }

    #[test]
    fn spmm_values_match_reference_bitwise() {
        let a = gen::uniform(123, 96, 5, 29);
        let w = tmu_kernels::spmm::Spmm::new(&a);
        let got = spmm_values(&a);
        for (i, (g, r)) in got.iter().zip(w.reference()).enumerate() {
            assert_eq!(g.to_bits(), r.to_bits(), "slot {i}");
        }
    }

    #[test]
    fn kernel_run_reports_stats_and_occupancy() {
        let a = gen::uniform(256, 256, 6, 3);
        let run = run_kernel("SpMV", &a, small_cfg(2));
        assert!(run.stats.cycles > 0);
        assert!(run.tiles > 0);
        assert!(run.tile_occupancy > 0.0 && run.tile_occupancy <= 1.0);
        // The cost model charges full tiles: flops = 2 · tiles · BR · BC.
        assert_eq!(run.stats.total().flops, 2 * run.tiles * (BR * BC) as u64,);
    }

    #[test]
    fn spmm_run_charges_rank_flops() {
        let a = gen::uniform(64, 64, 4, 5);
        let run = run_kernel("SpMM", &a, small_cfg(1));
        assert_eq!(
            run.stats.total().flops,
            2 * run.tiles * (BR * BC * RANK) as u64,
        );
    }

    #[test]
    #[should_panic(expected = "no blocked-sve variant")]
    fn unsupported_kernel_panics() {
        let a = gen::uniform(8, 8, 2, 1);
        let _ = run_kernel("PR", &a, small_cfg(1));
    }

    #[test]
    fn expression_support_is_shape_sensitive() {
        let base = gen::uniform(96, 64, 4, 7);
        let spmv = ExprWorkload::new("y(i) = A(i,j:csr) * x(j)", &base).expect("compiles");
        assert!(supports_expr(&spmv));
        let sum = ExprWorkload::new("Z(i,j) = A(i,j:dcsr) + B(i,j:dcsr)", &base).expect("compiles");
        assert!(!supports_expr(&sum));
    }

    #[test]
    fn expr_values_match_oracle_bitwise() {
        let base = gen::uniform(96, 64, 4, 13);
        let w = ExprWorkload::new("y(i) = A(i,j:csr) * x(j)", &base).expect("compiles");
        let got = expr_values(&w).expect("supported");
        let keys: std::collections::BTreeSet<_> =
            got.keys().chain(w.oracle().keys()).cloned().collect();
        for k in keys {
            let g = got.get(&k).copied().unwrap_or(0.0);
            let o = w.oracle().get(&k).copied().unwrap_or(0.0);
            assert_eq!(g.to_bits(), o.to_bits(), "key {k:?}");
        }
    }
}
