//! Alternative execution engines for the TMU reproduction.
//!
//! The benchmark harness (`tmu-bench`) dispatches every job through an
//! `EngineVariant` seam. This crate adds two engines that are neither the
//! TMU nor the IMP-style software baselines:
//!
//! * [`blocked`] — **BlockedSve**: a register-tiled BCSR software path.
//!   CSR fibers are re-marshaled into 4×8 tiles (one 512-bit SVE vector
//!   of f64 per tile row), then the kernel streams whole tiles through
//!   dense micro-kernels. The cost model charges full tiles — occupancy
//!   is the measured trade-off — while the functional result honours the
//!   per-tile occupancy masks and stays bit-identical to the reference.
//!
//! * [`sam`] — **SamStream**: a cycle-approximate SAM-style streaming
//!   dataflow model (level scanners, intersection/union mergers, repeat
//!   and reduce nodes connected by bounded token queues), compiled from
//!   the same `tmu-front` iteration graph the TMU path lowers from. The
//!   functional result is produced *through* the token machine in FIFO
//!   order, which reproduces the reference interpreter's accumulation
//!   order exactly — so bit-identity holds by construction.
//!
//! Both engines expose `run_kernel` / `run_expr` entry points returning
//! their `RunStats` plus engine-specific observables (tile occupancy,
//! stream token counts) that `tmu-bench` surfaces as schema-v3 columns.

#![warn(missing_docs)]

pub mod blocked;
pub mod sam;
