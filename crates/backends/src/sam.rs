//! SamStream: a cycle-approximate SAM-style streaming dataflow model.
//!
//! The Sparse Abstract Machine (SAM) expresses sparse tensor algebra as a
//! graph of streaming primitives — level scanners that emit coordinate
//! streams, mergers that intersect or union them, repeaters, and reducers
//! — connected by bounded token queues with backpressure. This module
//! compiles the same `tmu-front` iteration graph the TMU path lowers from
//! into such a fabric and ticks it one token per node per cycle.
//!
//! # Construction
//!
//! Each term of the expression becomes a chain of stream nodes, one per
//! iteration-graph loop the term binds:
//!
//! * no sparse participant → [`NodeKind::Counter`] (dense coordinate
//!   generator),
//! * one sparse participant → [`NodeKind::Scanner`] (compressed-fiber
//!   walker: pointer-pair load, then one coordinate token per stored
//!   entry),
//! * `k ≥ 2` sparse participants → `k` side [`NodeKind::Scanner`]s
//!   feeding a two-pointer [`NodeKind::Intersect`] merger.
//!
//! Below the loops sit a [`NodeKind::ValLoad`] (one value load per
//! factor), a [`NodeKind::Mul`] (the factor product), and a
//! [`NodeKind::Reduce`] writer that scatter-accumulates into the output.
//!
//! # Execution and bit-identity
//!
//! The fabric is *recorded*: a walk that mirrors the reference
//! interpreter (`tmu_front::interp`) appends one `Step` per token to
//! each node's script, then a tick loop replays the scripts through
//! capacity-bounded FIFO queues. Terms run sequentially as separate
//! fabric configurations, and each term's products reach the reduce
//! writer in FIFO order — exactly the order the interpreter accumulates
//! in — so the functional result produced *through* the machine is
//! bit-identical to [`ExprWorkload::oracle`] by construction.
//!
//! Multi-term expressions with no reduced loops whose output keys ascend
//! in loop order (the SpKAdd shape) instead run all term chains
//! concurrently into a K-way [`NodeKind::Union`] merger that folds
//! equal-key tokens in term order — the same per-key sums, with the
//! merger's stall behaviour made visible.

use std::collections::btree_map::Entry;
use std::collections::BTreeMap;

use tmu_front::bindings::{Bindings, LevelData, TensorData};
use tmu_front::{Expr, ExprWorkload, IterationGraph};
use tmu_sim::{CoreStats, MemStats, RunStats, SystemConfig};
use tmu_tensor::CsrMatrix;

/// Capacity of every inter-node token queue. Small on purpose: the
/// interesting SAM behaviour is backpressure, not buffering.
pub const QUEUE_CAPACITY: usize = 8;

/// Assumed DRAM row-buffer hit fraction for the synthesized stats.
/// Scanner and value streams are sequential, so open-row hits dominate.
const ROW_HIT_RATE: f64 = 0.9;

/// Modeled load-to-use latency of a streaming (prefetch-friendly) load.
const STREAM_LOAD_LATENCY: u64 = 4;

/// What a stream node is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeKind {
    /// Dense coordinate generator (one token per coordinate).
    Counter,
    /// Compressed-fiber walker (pointer-pair load, then coordinates).
    Scanner,
    /// Two-pointer conjunctive merger over its scanner inputs.
    Intersect,
    /// K-way disjunctive merger over per-term product streams.
    Union,
    /// Loads each factor's leaf value at the merged position.
    ValLoad,
    /// Multiplies the factor values into one product token.
    Mul,
    /// Scatter-accumulates product tokens into the output.
    Reduce,
}

/// One scripted firing of a node: pop a token from every input edge in
/// `consume` (a bitmask over the node's local inputs), optionally push
/// one token onto every output edge, and account the listed traffic.
#[derive(Debug, Clone, Copy)]
struct Step {
    consume: u32,
    produce: bool,
    bytes: u32,
    loads: u8,
    flops: u8,
}

#[derive(Debug)]
struct Node {
    kind: NodeKind,
    inputs: Vec<usize>,
    outputs: Vec<usize>,
    steps: Vec<Step>,
}

/// A fabric under construction: nodes in topological (creation) order
/// plus the token edges between them.
#[derive(Debug, Default)]
struct Fabric {
    nodes: Vec<Node>,
    edges: usize,
}

impl Fabric {
    fn node(&mut self, kind: NodeKind) -> usize {
        self.nodes.push(Node {
            kind,
            inputs: Vec::new(),
            outputs: Vec::new(),
            steps: Vec::new(),
        });
        self.nodes.len() - 1
    }

    fn connect(&mut self, from: usize, to: usize) {
        let e = self.edges;
        self.edges += 1;
        self.nodes[from].outputs.push(e);
        self.nodes[to].inputs.push(e);
    }

    fn step(&mut self, node: usize, consume: u32, produce: bool, bytes: u32, loads: u8, flops: u8) {
        self.nodes[node].steps.push(Step {
            consume,
            produce,
            bytes,
            loads,
            flops,
        });
    }
}

/// One factor's participation in a loop (mirrors the interpreter).
#[derive(Debug, Clone, Copy)]
struct Part {
    factor: usize,
    level: usize,
    sparse: bool,
}

struct TermEval<'a> {
    datas: Vec<&'a TensorData>,
    parts: Vec<Vec<Part>>,
    out_pos: Vec<Option<usize>>,
}

fn term_eval<'a>(
    term: &[tmu_front::Access],
    graph: &IterationGraph,
    binds: &'a Bindings,
) -> TermEval<'a> {
    let datas: Vec<&TensorData> = term
        .iter()
        .map(|a| binds.get(&a.tensor, a.span).expect("bindings validated"))
        .collect();
    let parts = graph
        .loops
        .iter()
        .map(|l| {
            term.iter()
                .enumerate()
                .filter_map(|(f, a)| {
                    a.level_of(&l.var).map(|lv| Part {
                        factor: f,
                        level: lv,
                        sparse: a.level_is_sparse(lv),
                    })
                })
                .collect()
        })
        .collect();
    TermEval {
        datas,
        parts,
        out_pos: graph.loops.iter().map(|l| l.output_pos).collect(),
    }
}

/// The stream nodes materialized for one loop depth of one term.
struct DepthSlot {
    /// Counter, scanner, or intersect — whichever carries the merged
    /// coordinate stream downstream.
    main: usize,
    /// Side scanners feeding `main` when it is an intersect.
    scanners: Vec<usize>,
    /// Whether this depth consumes a parent token from the chain above.
    has_input: bool,
}

struct Chain {
    slots: Vec<Option<DepthSlot>>,
    valload: usize,
    mul: usize,
    /// Consume mask of the valload (0 when the chain has no loop nodes).
    vl_consume: u32,
}

fn build_chain(fabric: &mut Fabric, ev: &TermEval<'_>) -> Chain {
    let mut prev: Option<usize> = None;
    let mut slots = Vec::with_capacity(ev.parts.len());
    for ps in &ev.parts {
        if ps.is_empty() {
            slots.push(None);
            continue;
        }
        let drivers = ps.iter().filter(|p| p.sparse).count();
        let has_input = prev.is_some();
        let slot = match drivers {
            0 | 1 => {
                let kind = if drivers == 0 {
                    NodeKind::Counter
                } else {
                    NodeKind::Scanner
                };
                let n = fabric.node(kind);
                if let Some(p) = prev {
                    fabric.connect(p, n);
                }
                prev = Some(n);
                DepthSlot {
                    main: n,
                    scanners: Vec::new(),
                    has_input,
                }
            }
            k => {
                let scanners: Vec<usize> = (0..k)
                    .map(|_| {
                        let s = fabric.node(NodeKind::Scanner);
                        if let Some(p) = prev {
                            fabric.connect(p, s);
                        }
                        s
                    })
                    .collect();
                let x = fabric.node(NodeKind::Intersect);
                for &s in &scanners {
                    fabric.connect(s, x);
                }
                prev = Some(x);
                DepthSlot {
                    main: x,
                    scanners,
                    has_input,
                }
            }
        };
        slots.push(Some(slot));
    }
    let valload = fabric.node(NodeKind::ValLoad);
    let vl_consume = match prev {
        Some(p) => {
            fabric.connect(p, valload);
            1
        }
        None => 0,
    };
    let mul = fabric.node(NodeKind::Mul);
    fabric.connect(valload, mul);
    Chain {
        slots,
        valload,
        mul,
        vl_consume,
    }
}

/// Records one term's token scripts by mirroring the interpreter's walk.
struct Rec<'a, 'f> {
    ev: &'a TermEval<'a>,
    chain: &'a Chain,
    fabric: &'f mut Fabric,
    /// The reduce writer, when this term scatter-accumulates directly
    /// (sequential configuration). `None` under a union merger.
    reduce: Option<usize>,
    /// Output map mirrored at record time (decides store vs read-modify-
    /// write bytes at the reduce writer). Shared across terms.
    out: &'f mut BTreeMap<Vec<u32>, f64>,
    /// Product tokens in emission order, replayed functionally at sim time.
    products: Vec<(Vec<u32>, f64)>,
}

impl Rec<'_, '_> {
    fn walk(&mut self, depth: usize, pos: &mut Vec<usize>, key: &mut Vec<u32>) {
        let ev = self.ev;
        if depth == ev.parts.len() {
            let nf = ev.datas.len();
            let v = ev
                .datas
                .iter()
                .zip(pos.iter())
                .fold(1.0f64, |acc, (d, &p)| acc * d.value(p));
            let c = self.chain;
            self.fabric
                .step(c.valload, c.vl_consume, true, (nf * 8) as u32, nf as u8, 0);
            self.fabric.step(c.mul, 1, true, 0, 0, nf as u8);
            if let Some(rn) = self.reduce {
                match self.out.entry(key.clone()) {
                    Entry::Vacant(e) => {
                        e.insert(v);
                        self.fabric.step(rn, 1, false, 8, 0, 0);
                    }
                    Entry::Occupied(mut e) => {
                        *e.get_mut() += v;
                        self.fabric.step(rn, 1, false, 16, 1, 0);
                    }
                }
            }
            self.products.push((key.clone(), v));
            return;
        }
        let ps = &ev.parts[depth];
        if ps.is_empty() {
            self.walk(depth + 1, pos, key);
            return;
        }
        let slot = self.chain.slots[depth].as_ref().expect("slot present");
        let parent = u32::from(slot.has_input);
        let saved: Vec<usize> = ps.iter().map(|p| pos[p.factor]).collect();
        let drivers: Vec<Part> = ps.iter().filter(|p| p.sparse).copied().collect();
        let parent_of = |d: &Part| {
            saved[ps
                .iter()
                .position(|q| q.factor == d.factor)
                .expect("present")]
        };

        match drivers.len() {
            0 => {
                let size = match &ev.datas[ps[0].factor].levels[ps[0].level] {
                    LevelData::Dense { size } => *size,
                    LevelData::Compressed { .. } => unreachable!("no drivers"),
                };
                if size == 0 && parent != 0 {
                    self.fabric.step(slot.main, parent, false, 0, 0, 0);
                }
                for c in 0..size {
                    let consume = if c == 0 { parent } else { 0 };
                    self.fabric.step(slot.main, consume, true, 0, 0, 0);
                    self.emit(depth, c as u32, &[], &saved, pos, key);
                }
            }
            1 => {
                let d = drivers[0];
                let data = ev.datas[d.factor];
                let (b, e) = data.fiber(d.level, parent_of(&d));
                if b == e {
                    // Empty fiber: the pointer pair is still read.
                    self.fabric.step(slot.main, parent, false, 8, 1, 0);
                }
                for p in b..e {
                    let first = p == b;
                    let consume = if first { parent } else { 0 };
                    // The first token carries the pointer-pair load (8B)
                    // plus its coordinate (4B); the rest stream 4B each.
                    let bytes = if first { 12 } else { 4 };
                    self.fabric.step(slot.main, consume, true, bytes, 1, 0);
                    self.emit(
                        depth,
                        data.coord(d.level, p),
                        &[(d.factor, p)],
                        &saved,
                        pos,
                        key,
                    );
                }
            }
            _ => {
                let fibers: Vec<(usize, usize)> = drivers
                    .iter()
                    .map(|d| ev.datas[d.factor].fiber(d.level, parent_of(d)))
                    .collect();
                // Side scanners emit their whole fibers; the intersect
                // pops them in two-pointer order and drains leftovers.
                for (i, _) in drivers.iter().enumerate() {
                    let sc = slot.scanners[i];
                    let (b, e) = fibers[i];
                    if b == e {
                        self.fabric.step(sc, parent, false, 8, 1, 0);
                    }
                    for p in b..e {
                        let first = p == b;
                        let consume = if first { parent } else { 0 };
                        let bytes = if first { 12 } else { 4 };
                        self.fabric.step(sc, consume, true, bytes, 1, 0);
                    }
                }
                let mut heads: Vec<usize> = fibers.iter().map(|&(b, _)| b).collect();
                'merge: loop {
                    let mut target = 0u32;
                    for (i, d) in drivers.iter().enumerate() {
                        if heads[i] >= fibers[i].1 {
                            break 'merge;
                        }
                        target = target.max(ev.datas[d.factor].coord(d.level, heads[i]));
                    }
                    let mut matched = true;
                    for (i, d) in drivers.iter().enumerate() {
                        let data = ev.datas[d.factor];
                        while heads[i] < fibers[i].1 && data.coord(d.level, heads[i]) < target {
                            heads[i] += 1;
                            // Head advance: pop one token from input i.
                            self.fabric.step(slot.main, 1 << i, false, 0, 0, 0);
                        }
                        if heads[i] >= fibers[i].1 {
                            break 'merge;
                        }
                        if data.coord(d.level, heads[i]) != target {
                            matched = false;
                        }
                    }
                    if matched {
                        let dp: Vec<(usize, usize)> = drivers
                            .iter()
                            .enumerate()
                            .map(|(i, d)| (d.factor, heads[i]))
                            .collect();
                        let all = (1u32 << drivers.len()) - 1;
                        self.fabric.step(slot.main, all, true, 0, 0, 0);
                        self.emit(depth, target, &dp, &saved, pos, key);
                        for h in heads.iter_mut() {
                            *h += 1;
                        }
                    }
                }
                // Drain tokens the merge never reached (an input ran out).
                for (i, _) in drivers.iter().enumerate() {
                    for _ in heads[i]..fibers[i].1 {
                        self.fabric.step(slot.main, 1 << i, false, 0, 0, 0);
                    }
                }
            }
        }
        for (p, &s) in ps.iter().zip(&saved) {
            pos[p.factor] = s;
        }
    }

    fn emit(
        &mut self,
        depth: usize,
        c: u32,
        driver_pos: &[(usize, usize)],
        saved: &[usize],
        pos: &mut Vec<usize>,
        key: &mut Vec<u32>,
    ) {
        let ev = self.ev;
        let ps = &ev.parts[depth];
        for &(f, p) in driver_pos {
            pos[f] = p;
        }
        for part in ps.iter().filter(|p| !p.sparse) {
            let size = match &ev.datas[part.factor].levels[part.level] {
                LevelData::Dense { size } => *size,
                LevelData::Compressed { .. } => unreachable!("dense participant"),
            };
            pos[part.factor] = saved[ps
                .iter()
                .position(|q| q.factor == part.factor)
                .expect("present")]
                * size
                + c as usize;
        }
        if let Some(op) = ev.out_pos[depth] {
            key[op] = c;
        }
        self.walk(depth + 1, pos, key);
    }
}

/// Aggregate counters of one ticked fabric configuration.
#[derive(Debug, Default, Clone, Copy)]
struct SimOut {
    ticks: u64,
    busy: u64,
    steps: u64,
    loads: u64,
    flops: u64,
    bytes: u64,
    tokens: u64,
    merger_stalls: u64,
}

/// Replays a recorded fabric one step per node per cycle through
/// capacity-[`QUEUE_CAPACITY`] FIFO queues. `apply` fires once per
/// [`NodeKind::Reduce`] step, in FIFO token order.
fn tick_sim(fabric: &Fabric, cycle0: u64, apply: &mut dyn FnMut(usize)) -> SimOut {
    let mut q = vec![0usize; fabric.edges];
    let mut ptr = vec![0usize; fabric.nodes.len()];
    let mut produced = vec![0u64; fabric.nodes.len()];
    let mut out = SimOut::default();
    loop {
        let mut done = true;
        let mut fired = false;
        for (n, node) in fabric.nodes.iter().enumerate() {
            if ptr[n] >= node.steps.len() {
                continue;
            }
            done = false;
            let st = node.steps[ptr[n]];
            let can_consume = (0..node.inputs.len())
                .all(|b| st.consume & (1 << b) == 0 || q[node.inputs[b]] >= 1);
            let can_produce = !st.produce || node.outputs.iter().all(|&e| q[e] < QUEUE_CAPACITY);
            if can_consume && can_produce {
                for (b, &e) in node.inputs.iter().enumerate() {
                    if st.consume & (1 << b) != 0 {
                        q[e] -= 1;
                    }
                }
                if st.produce {
                    for &e in &node.outputs {
                        q[e] += 1;
                    }
                    produced[n] += 1;
                    out.tokens += 1;
                    #[cfg(feature = "trace")]
                    tmu_trace::with(|tr| {
                        let c = tr.component("backends.sam");
                        tr.event(
                            c,
                            cycle0 + out.ticks,
                            tmu_trace::EventKind::StreamToken,
                            (n as u64) << 32 | (produced[n] & 0xFFFF_FFFF),
                        );
                    });
                }
                if node.kind == NodeKind::Reduce {
                    apply(n);
                }
                ptr[n] += 1;
                out.steps += 1;
                out.loads += u64::from(st.loads);
                out.flops += u64::from(st.flops);
                out.bytes += u64::from(st.bytes);
                fired = true;
            } else if matches!(node.kind, NodeKind::Intersect | NodeKind::Union) {
                out.merger_stalls += 1;
                #[cfg(feature = "trace")]
                tmu_trace::with(|tr| {
                    let c = tr.component("backends.sam");
                    tr.event(
                        c,
                        cycle0 + out.ticks,
                        tmu_trace::EventKind::MergerStall,
                        n as u64,
                    );
                });
            }
        }
        if done {
            break;
        }
        assert!(
            fired,
            "sam fabric deadlocked at cycle {} (inconsistent scripts)",
            out.ticks
        );
        out.ticks += 1;
        out.busy += 1;
    }
    #[cfg(not(feature = "trace"))]
    let _ = (cycle0, &produced);
    out
}

/// Whether the whole expression can run as one concurrent union fabric:
/// several terms, no reduced loops, and output keys that ascend in loop
/// order (so each term's product stream is key-sorted and a K-way merge
/// is well-defined). The SpKAdd shape.
fn union_eligible(expr: &Expr, graph: &IterationGraph) -> bool {
    expr.terms.len() > 1
        && expr.terms.len() <= 32
        && graph.loops.iter().all(|l| l.output_pos.is_some())
        && graph
            .loops
            .windows(2)
            .all(|w| w[0].output_pos < w[1].output_pos)
        && expr.output.rank() == graph.loops.len()
}

/// The result of one SamStream execution.
#[derive(Debug)]
pub struct SamRun {
    /// Synthesized run statistics (cycles, traffic, flops).
    pub stats: RunStats,
    /// Total tokens that crossed the stream fabric.
    pub tokens: u64,
    /// Cycles any merger spent unable to fire (input dry or output full).
    pub merger_stalls: u64,
    /// Stream nodes materialized across all configurations.
    pub nodes: usize,
    /// The output produced through the token machine, keyed like the
    /// interpreter's result. Bit-identical to [`ExprWorkload::oracle`].
    pub result: BTreeMap<Vec<u32>, f64>,
}

/// The einsum SamStream runs for a Table 4 kernel name, when it has one.
pub fn einsum_for(kernel: &str) -> Option<&'static str> {
    match kernel {
        "SpMV" => Some("y(i) = A(i,j:csr) * x(j)"),
        "SpMSpM" => Some("Z(i,j) = A(i,k:csr) * B(k,j:csr)"),
        "SpKAdd" => Some("Z(i,j) = A(i,j:dcsr) + B(i,j:dcsr)"),
        _ => None,
    }
}

/// Whether SamStream has a lowering for this kernel.
pub fn supports(kernel: &str) -> bool {
    einsum_for(kernel).is_some()
}

/// Runs a Table 4 kernel (via its einsum form, see [`einsum_for`]) on
/// matrix `a`.
///
/// # Panics
///
/// Panics when the kernel has no SamStream variant.
pub fn run_kernel(kernel: &str, a: &CsrMatrix, cfg: SystemConfig) -> SamRun {
    let src = einsum_for(kernel).unwrap_or_else(|| panic!("{kernel} has no sam-stream variant"));
    let w = ExprWorkload::new(src, a).expect("kernel einsum compiles");
    run_expr(&w, cfg)
}

/// Compiles `w`'s iteration graph into a streaming fabric, ticks it, and
/// returns the synthesized stats plus the functional result.
pub fn run_expr(w: &ExprWorkload, cfg: SystemConfig) -> SamRun {
    let expr = w.expr();
    let graph = w.graph();
    let binds = w.bindings();
    let out_rank = expr.output.rank();

    let mut rec_out: BTreeMap<Vec<u32>, f64> = BTreeMap::new();
    let mut sim_out: BTreeMap<Vec<u32>, f64> = BTreeMap::new();
    let mut agg = SimOut::default();
    let mut total_nodes = 0usize;

    if union_eligible(expr, graph) {
        // One concurrent fabric: every term's chain feeds a K-way union.
        let mut fabric = Fabric::default();
        let evs: Vec<TermEval<'_>> = expr
            .terms
            .iter()
            .map(|t| term_eval(t, graph, binds))
            .collect();
        let chains: Vec<Chain> = evs.iter().map(|ev| build_chain(&mut fabric, ev)).collect();
        let mut prods: Vec<Vec<(Vec<u32>, f64)>> = Vec::with_capacity(evs.len());
        for (ev, chain) in evs.iter().zip(&chains) {
            let mut rec = Rec {
                ev,
                chain,
                fabric: &mut fabric,
                reduce: None,
                out: &mut rec_out,
                products: Vec::new(),
            };
            let mut pos = vec![0usize; ev.datas.len()];
            let mut key = vec![0u32; out_rank];
            rec.walk(0, &mut pos, &mut key);
            prods.push(rec.products);
        }
        let union = fabric.node(NodeKind::Union);
        for chain in &chains {
            fabric.connect(chain.mul, union);
        }
        let writer = fabric.node(NodeKind::Reduce);
        fabric.connect(union, writer);
        // K-way merge over the per-term product streams, folding equal
        // keys in term order (the interpreter's accumulation order).
        let mut heads = vec![0usize; prods.len()];
        let mut folded: Vec<(Vec<u32>, f64)> = Vec::new();
        loop {
            let mut min: Option<&Vec<u32>> = None;
            for (t, p) in prods.iter().enumerate() {
                if let Some((k, _)) = p.get(heads[t]) {
                    if min.is_none_or(|m| k < m) {
                        min = Some(k);
                    }
                }
            }
            let Some(min) = min.cloned() else { break };
            let mut mask = 0u32;
            let mut acc: Option<f64> = None;
            for (t, p) in prods.iter().enumerate() {
                if let Some((k, v)) = p.get(heads[t]) {
                    if *k == min {
                        mask |= 1 << t;
                        acc = Some(match acc {
                            None => *v,
                            Some(a) => a + *v,
                        });
                        heads[t] += 1;
                    }
                }
            }
            let v = acc.expect("at least one way matched");
            let ways = mask.count_ones() as u8;
            fabric.step(union, mask, true, 0, 0, ways - 1);
            rec_out.insert(min.clone(), v);
            folded.push((min, v));
        }
        for _ in &folded {
            fabric.step(writer, 1, false, 8, 0, 0);
        }
        let mut cursor = 0usize;
        agg = tick_sim(&fabric, 0, &mut |_| {
            let (k, v) = &folded[cursor];
            cursor += 1;
            sim_out.insert(k.clone(), *v);
        });
        assert_eq!(cursor, folded.len(), "writer replayed every token");
        total_nodes = fabric.nodes.len();
    } else {
        // Sequential configurations: one fabric per term, in term order,
        // scatter-accumulating into a shared output.
        for term in &expr.terms {
            let ev = term_eval(term, graph, binds);
            let mut fabric = Fabric::default();
            let chain = build_chain(&mut fabric, &ev);
            let reduce = fabric.node(NodeKind::Reduce);
            fabric.connect(chain.mul, reduce);
            let mut rec = Rec {
                ev: &ev,
                chain: &chain,
                fabric: &mut fabric,
                reduce: Some(reduce),
                out: &mut rec_out,
                products: Vec::new(),
            };
            let mut pos = vec![0usize; ev.datas.len()];
            let mut key = vec![0u32; out_rank];
            rec.walk(0, &mut pos, &mut key);
            let products = rec.products;
            let mut cursor = 0usize;
            let so = tick_sim(&fabric, agg.ticks, &mut |_| {
                let (k, v) = &products[cursor];
                cursor += 1;
                match sim_out.entry(k.clone()) {
                    Entry::Vacant(e) => {
                        e.insert(*v);
                    }
                    Entry::Occupied(mut e) => {
                        *e.get_mut() += *v;
                    }
                }
            });
            assert_eq!(cursor, products.len(), "reducer replayed every token");
            agg.ticks += so.ticks;
            agg.busy += so.busy;
            agg.steps += so.steps;
            agg.loads += so.loads;
            agg.flops += so.flops;
            agg.bytes += so.bytes;
            agg.tokens += so.tokens;
            agg.merger_stalls += so.merger_stalls;
            total_nodes += fabric.nodes.len();
        }
    }
    debug_assert_eq!(
        rec_out, sim_out,
        "record-time and machine-replayed outputs must agree"
    );

    // Wall clock: the fabric throughput, floored by what the DRAM
    // channels can stream (64B lines at cycles_per_line per channel).
    let dram = &cfg.mem.dram;
    let bw_cycles =
        (agg.bytes as f64 * dram.cycles_per_line / 64.0 / dram.channels as f64).ceil() as u64;
    let cycles = agg.ticks.max(bw_cycles);
    let core = CoreStats {
        committing: agg.busy,
        frontend: 0,
        backend: (agg.ticks - agg.busy) + (cycles - agg.ticks),
        cycles,
        committed: agg.steps,
        loads: agg.loads,
        load_latency_sum: agg.loads * STREAM_LOAD_LATENCY,
        flops: agg.flops,
        branches: 0,
        mispredicts: 0,
    };
    let stats = RunStats {
        cycles,
        cores: vec![core],
        dram_bytes: agg.bytes,
        dram_row_hit_rate: ROW_HIT_RATE,
        freq_ghz: cfg.core.freq_ghz,
        mem: MemStats::default(),
    };
    SamRun {
        stats,
        tokens: agg.tokens,
        merger_stalls: agg.merger_stalls,
        nodes: total_nodes,
        result: sim_out,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tmu_sim::{CoreConfig, MemSysConfig};
    use tmu_tensor::gen;

    fn cfg() -> SystemConfig {
        SystemConfig {
            core: CoreConfig::neoverse_n1_like(),
            mem: MemSysConfig::table5(1),
        }
    }

    fn assert_bit_identical(run: &SamRun, oracle: &BTreeMap<Vec<u32>, f64>) {
        assert_eq!(run.result.len(), oracle.len(), "key sets differ");
        for (k, v) in oracle {
            let got = run.result.get(k).expect("key present");
            assert_eq!(
                got.to_bits(),
                v.to_bits(),
                "value at {k:?}: got {got}, want {v}"
            );
        }
    }

    #[test]
    fn spmv_is_bit_identical_to_the_interpreter() {
        let a = gen::uniform(96, 80, 5, 11);
        let w = ExprWorkload::new("y(i) = A(i,j:csr) * x(j)", &a).expect("compiles");
        let run = run_expr(&w, cfg());
        assert_bit_identical(&run, w.oracle());
        assert!(run.stats.cycles > 0);
        assert!(run.tokens as usize > a.nnz());
    }

    #[test]
    fn conjunctive_merge_is_bit_identical() {
        let a = gen::uniform(64, 120, 6, 13);
        let w = ExprWorkload::new("y(i) = A(i,j:csr) * x(j:sparse)", &a).expect("compiles");
        let run = run_expr(&w, cfg());
        assert_bit_identical(&run, w.oracle());
    }

    #[test]
    fn spkadd_uses_the_union_fabric() {
        let base = gen::uniform(80, 48, 4, 17);
        let w = ExprWorkload::new("Z(i,j) = A(i,j:dcsr) + B(i,j:dcsr)", &base).expect("compiles");
        assert!(union_eligible(w.expr(), w.graph()));
        let run = run_expr(&w, cfg());
        assert_bit_identical(&run, w.oracle());
    }

    #[test]
    fn contraction_with_reduction_runs_sequentially() {
        let base = gen::uniform(48, 40, 4, 19);
        let w = ExprWorkload::new("Z(i,j) = A(i,k:csr) * B(k,j:csr)", &base).expect("compiles");
        assert!(!union_eligible(w.expr(), w.graph()));
        let run = run_expr(&w, cfg());
        assert_bit_identical(&run, w.oracle());
    }

    #[test]
    fn kernel_entry_points_cover_the_streaming_kernels() {
        let a = gen::uniform(56, 56, 4, 23);
        for k in ["SpMV", "SpMSpM", "SpKAdd"] {
            assert!(supports(k));
            let run = run_kernel(k, &a, cfg());
            assert!(run.stats.cycles > 0, "{k} ran");
            assert!(!run.result.is_empty(), "{k} produced output");
        }
        assert!(!supports("PR"));
    }

    #[test]
    fn throughput_is_about_one_token_per_node_per_cycle() {
        let a = gen::uniform(64, 64, 4, 29);
        let w = ExprWorkload::new("y(i) = A(i,j:csr) * x(j)", &a).expect("compiles");
        let run = run_expr(&w, cfg());
        // The busiest node fires once per cycle, so the tick count is at
        // least nnz (the per-entry nodes) and far below total steps.
        assert!(run.stats.cycles as usize >= a.nnz());
        assert!(run.stats.total().committed > run.stats.cycles);
    }

    #[test]
    #[should_panic(expected = "no sam-stream variant")]
    fn unsupported_kernels_panic() {
        let a = gen::uniform(8, 8, 2, 3);
        run_kernel("PR", &a, cfg());
    }
}
