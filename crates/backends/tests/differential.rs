//! Differential suite: both alternative engines must be *bit-identical*
//! to their references — the hand-written kernel oracles for the kernel
//! entry points, the `tmu-front` interpreter for compiled expressions —
//! across a spread of shapes (ragged tile edges, empty rows, tall/wide,
//! conjunctive and disjunctive merges).

use std::collections::BTreeMap;

use tmu_backends::{blocked, sam};
use tmu_front::ExprWorkload;
use tmu_kernels::spmm::{Spmm, RANK};
use tmu_kernels::spmv::Spmv;
use tmu_sim::{CoreConfig, MemSysConfig, SystemConfig};
use tmu_tensor::{gen, CsrMatrix};

fn cfg(cores: usize) -> SystemConfig {
    SystemConfig {
        core: CoreConfig::neoverse_n1_like(),
        mem: MemSysConfig::table5(cores),
    }
}

/// Shapes chosen to exercise ragged remainder tiles (neither dimension a
/// multiple of 4x8), empty rows (road/rmat skew), and tiny inputs.
fn matrices() -> Vec<(&'static str, CsrMatrix)> {
    vec![
        ("uniform", gen::uniform(130, 99, 5, 7)),
        ("banded", gen::banded(77, 6, 4, 11)),
        ("skewed", gen::rmat(7, 500, 13)),
        ("sparse-rows", gen::road(101, 2, 17)),
        ("tiny", gen::uniform(3, 5, 2, 19)),
        ("single-row", gen::uniform(1, 40, 20, 23)),
    ]
}

fn assert_bits(what: &str, got: &[f64], want: &[f64]) {
    assert_eq!(got.len(), want.len(), "{what}: length");
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        assert_eq!(
            g.to_bits(),
            w.to_bits(),
            "{what}: slot {i}: got {g}, want {w}"
        );
    }
}

fn assert_map_bits(what: &str, got: &BTreeMap<Vec<u32>, f64>, want: &BTreeMap<Vec<u32>, f64>) {
    assert_eq!(got.len(), want.len(), "{what}: key sets differ");
    for (k, w) in want {
        let g = got
            .get(k)
            .unwrap_or_else(|| panic!("{what}: {k:?} missing"));
        assert_eq!(g.to_bits(), w.to_bits(), "{what}: value at {k:?}");
    }
}

#[test]
fn blocked_spmv_is_bit_identical_across_shapes() {
    for (name, a) in matrices() {
        let want = Spmv::new(&a);
        assert_bits(
            &format!("blocked spmv on {name}"),
            &blocked::spmv_values(&a),
            want.reference(),
        );
    }
}

#[test]
fn blocked_spmm_is_bit_identical_across_shapes() {
    for (name, a) in matrices() {
        let want = Spmm::new(&a);
        let got = blocked::spmm_values(&a);
        assert_eq!(got.len(), a.rows() * RANK);
        assert_bits(&format!("blocked spmm on {name}"), &got, want.reference());
    }
}

#[test]
fn blocked_expr_path_is_bit_identical_to_the_interpreter() {
    for (name, a) in matrices() {
        let w = ExprWorkload::new("y(i) = A(i,j:csr) * x(j)", &a).expect("compiles");
        assert!(blocked::supports_expr(&w), "{name}: spmv shape supported");
        let got = blocked::expr_values(&w).expect("supported");
        assert_map_bits(&format!("blocked expr on {name}"), &got, w.oracle());
    }
}

#[test]
fn blocked_rejects_expressions_it_cannot_tile() {
    let a = gen::uniform(48, 48, 4, 3);
    for src in [
        "Z(i,j) = A(i,k:csr) * B(k,j:csr)",
        "Z(i,j) = A(i,j:dcsr) + B(i,j:dcsr)",
    ] {
        let w = ExprWorkload::new(src, &a).expect("compiles");
        assert!(!blocked::supports_expr(&w), "{src} has no blocked lowering");
        assert!(blocked::expr_values(&w).is_none());
    }
}

#[test]
fn sam_kernels_are_bit_identical_across_shapes() {
    for (name, a) in matrices() {
        for kernel in ["SpMV", "SpMSpM", "SpKAdd"] {
            let src = sam::einsum_for(kernel).expect("supported");
            // SpKAdd's auto-binding splits the base matrix into K row
            // groups, which a 1-row input legitimately cannot support.
            let w = match ExprWorkload::new(src, &a) {
                Ok(w) => w,
                Err(e) if a.rows() < 2 => {
                    assert!(e.to_string().contains("fewer than 2 rows"), "{name}: {e}");
                    continue;
                }
                Err(e) => panic!("{kernel} on {name}: {e}"),
            };
            let run = sam::run_expr(&w, cfg(1));
            assert_map_bits(&format!("sam {kernel} on {name}"), &run.result, w.oracle());
        }
    }
}

#[test]
fn sam_expressions_are_bit_identical_across_merges() {
    let a = gen::uniform(60, 72, 5, 31);
    for src in [
        "y(i) = A(i,j:csr) * x(j)",
        "y(i) = A(i,j:csr) * x(j:sparse)",
        "Z(i,j) = A(i,k:csr) * B(k,j:csr)",
        "Z(i,j) = A(i,j:dcsr) + B(i,j:dcsr)",
        "y(i) = A(i,j:csr) * T(j,k,l:csf) * x(l:dense)",
    ] {
        let w = ExprWorkload::new(src, &a).expect("compiles");
        let run = sam::run_expr(&w, cfg(1));
        assert_map_bits(src, &run.result, w.oracle());
    }
}

#[test]
fn both_engines_agree_on_the_shared_spmv_shape() {
    // BlockedSve folds rows from 0.0 (the kernel reference order) while
    // its expression path and SamStream reproduce the interpreter. On
    // SpMV all three coincide: one product per (row, col), accumulated
    // in ascending column order.
    for (name, a) in matrices() {
        let w = ExprWorkload::new("y(i) = A(i,j:csr) * x(j)", &a).expect("compiles");
        let b = blocked::expr_values(&w).expect("supported");
        let s = sam::run_expr(&w, cfg(1)).result;
        assert_map_bits(&format!("blocked vs sam on {name}"), &b, &s);
    }
}

#[test]
fn engine_costs_stay_plausible() {
    let a = gen::uniform(96, 96, 6, 41);
    let br = blocked::run_kernel("SpMV", &a, cfg(1));
    assert!(br.stats.cycles > 0);
    assert!(br.tiles > 0);
    assert!(br.tile_occupancy > 0.0 && br.tile_occupancy <= 1.0);
    let sr = sam::run_kernel("SpMV", &a, cfg(1));
    assert!(sr.stats.cycles > 0);
    assert!(sr.tokens > a.nnz() as u64);
    // The streaming model commits roughly one token per node per cycle;
    // the blocked path amortizes whole tiles per vector op. Both must
    // stay within sane bounds of the input size.
    assert!(sr.stats.cycles < 64 * a.nnz() as u64);
    assert!(br.stats.cycles < 64 * 8 * a.nnz() as u64);
}
