//! Criterion microbenches of the TMU engine and simulator internals:
//! functional interpretation throughput, merge stepping, and the
//! memory-hierarchy request path.

use std::sync::Arc;

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};

use tmu::{Event, LayerMode, MemImage, ProgramBuilder, StreamTy};
use tmu_sim::{AddressMap, Deps, Machine, MemSys, MemSysConfig, Site, VecMachine};
use tmu_tensor::gen;
use tmu_tensor::merge::{DisjunctiveMerge, FiberSlice};

/// Functional interpreter throughput on an SpMV-shaped program.
fn interp_spmv(c: &mut Criterion) {
    let m = gen::uniform(512, 512, 8, 1);
    let mut map = AddressMap::new();
    let ptrs_r = map.alloc_elems("p", m.row_ptrs().len(), 4);
    let idxs_r = map.alloc_elems("i", m.nnz(), 4);
    let vals_r = map.alloc_elems("v", m.nnz(), 8);
    let mut image = MemImage::new();
    image.bind_u32(ptrs_r, Arc::new(m.row_ptrs().to_vec()));
    image.bind_u32(idxs_r, Arc::new(m.col_idxs().to_vec()));
    image.bind_f64(vals_r, Arc::new(m.vals().to_vec()));
    let mut b = ProgramBuilder::new();
    let l0 = b.layer(LayerMode::Single);
    let row = b.dns_fbrt(l0, 0, 512, 1);
    let pb = b.mem_stream(row, ptrs_r.base, 4, StreamTy::Index);
    let pe = b.mem_stream(row, ptrs_r.base + 4, 4, StreamTy::Index);
    let l1 = b.layer(LayerMode::LockStep);
    let mut ops = Vec::new();
    for lane in 0..8 {
        let col = b.rng_fbrt(l1, pb, pe, lane, 8);
        ops.push(b.mem_stream(col, vals_r.base, 8, StreamTy::Value));
    }
    let op = b.vec_operand(l1, &ops);
    b.callback(l1, Event::Ite, 0, &[op]);
    let prog = Arc::new(b.build().expect("ok"));
    let image = Arc::new(image);
    c.bench_function("engine/interp_spmv_4k_nnz", |bch| {
        bch.iter(|| tmu::run_functional(&prog, &image).len())
    });
}

/// Reference k-way disjunctive merge throughput.
fn reference_merge(c: &mut Criterion) {
    let fibers: Vec<(Vec<u32>, Vec<f64>)> = (0..8)
        .map(|s| {
            let idxs: Vec<u32> = (0..512u32).map(|i| i * 8 + s).collect();
            let vals: Vec<f64> = idxs.iter().map(|&i| i as f64).collect();
            (idxs, vals)
        })
        .collect();
    c.bench_function("engine/reference_8way_merge", |bch| {
        bch.iter(|| {
            let slices: Vec<FiberSlice> =
                fibers.iter().map(|(i, v)| FiberSlice::new(i, v)).collect();
            DisjunctiveMerge::new(slices).count()
        })
    });
}

/// Memory-hierarchy request path (miss storm through L1→L2→LLC→DRAM).
fn memsys_requests(c: &mut Criterion) {
    c.bench_function("sim/memsys_10k_misses", |bch| {
        bch.iter(|| {
            let mut m = MemSys::new(MemSysConfig::table5(1));
            let mut done = 0u64;
            for i in 0..10_000u64 {
                done = done.max(m.read(0, Site(1), 0x100_0000 + i * 4096, 8, i));
            }
            done
        })
    });
}

/// Op-emission overhead of the machine abstraction.
fn machine_emit(c: &mut Criterion) {
    c.bench_function("sim/vec_machine_emit_100k", |bch| {
        bch.iter(|| {
            let mut m = VecMachine::new();
            let mut last = m.int_op(Deps::NONE);
            for i in 0..100_000u64 {
                last = m.load(Site(2), 0x1000 + i * 8, 8, Deps::from(last));
            }
            m.take().len()
        })
    });
}

criterion_group! {
    name = engine;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(3));
    targets = interp_spmv, reference_merge, memsys_requests, machine_emit
}
criterion_main!(engine);
