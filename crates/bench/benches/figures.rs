//! Criterion benches: one per paper table/figure, on scaled-down inputs
//! so `cargo bench` completes quickly. Each bench measures the wall time
//! of regenerating the artifact's core measurement (a simulator run);
//! the full-scale artifacts are produced by the `tmu-bench` binaries
//! (`cargo run --release -p tmu-bench --bin all_figures`).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};

use tmu::TmuConfig;
use tmu_kernels::mttkrp::{Mttkrp, MttkrpVariant};
use tmu_kernels::pagerank::PageRank;
use tmu_kernels::spkadd::Spkadd;
use tmu_kernels::spmspm::Spmspm;
use tmu_kernels::spmv::Spmv;
use tmu_kernels::trianglecount::TriangleCount;
use tmu_kernels::workload::Workload;
use tmu_sim::{configs, CoreConfig, MemSysConfig, SystemConfig};
use tmu_tensor::gen;

fn small_sys() -> SystemConfig {
    SystemConfig {
        core: CoreConfig::neoverse_n1_like(),
        mem: MemSysConfig::table5(2),
    }
}

/// Figure 3: baseline stall profile on the A64FX-like machine.
fn fig03_stall_profile(c: &mut Criterion) {
    let w = Spmv::new(&gen::uniform(1024, 4096, 8, 1));
    c.bench_function("fig03/spmv_baseline_a64fx_like", |b| {
        b.iter(|| w.run_baseline(configs::a64fx_like()))
    });
}

/// Figure 10 (left): SpMV baseline vs TMU.
fn fig10_spmv(c: &mut Criterion) {
    let w = Spmv::new(&gen::uniform(1024, 8192, 8, 2));
    c.bench_function("fig10/spmv_baseline", |b| {
        b.iter(|| w.run_baseline(small_sys()))
    });
    c.bench_function("fig10/spmv_tmu", |b| {
        b.iter(|| w.run_tmu(small_sys(), TmuConfig::paper()))
    });
}

/// Figure 10: the compute-intensive proxy.
fn fig10_spmspm(c: &mut Criterion) {
    let w = Spmspm::new(&gen::circuit(1024, 5, 3));
    c.bench_function("fig10/spmspm_tmu", |b| {
        b.iter(|| w.run_tmu(small_sys(), TmuConfig::paper()))
    });
}

/// Figure 10: the merge-intensive proxy.
fn fig10_spkadd(c: &mut Criterion) {
    let w = Spkadd::new(&gen::uniform(2048, 512, 4, 4));
    c.bench_function("fig10/spkadd_baseline", |b| {
        b.iter(|| w.run_baseline(small_sys()))
    });
    c.bench_function("fig10/spkadd_tmu", |b| {
        b.iter(|| w.run_tmu(small_sys(), TmuConfig::paper()))
    });
}

/// Figure 10 (right): a tensor workload.
fn fig10_mttkrp(c: &mut Criterion) {
    let w = Mttkrp::new(
        &gen::random_tensor(&[256, 64, 48], 4000, 5),
        MttkrpVariant::Mp,
    );
    c.bench_function("fig10/mttkrp_tmu", |b| {
        b.iter(|| w.run_tmu(small_sys(), TmuConfig::paper()))
    });
}

/// Figure 11: breakdown measurement (PageRank, both phases).
fn fig11_breakdown(c: &mut Criterion) {
    let w = PageRank::new(&gen::rmat(9, 4096, 6));
    c.bench_function("fig11/pagerank_tmu", |b| {
        b.iter(|| w.run_tmu(small_sys(), TmuConfig::paper()))
    });
}

/// Figure 13: read-to-write instrumentation (TC).
fn fig13_read_to_write(c: &mut Criterion) {
    let w = TriangleCount::new(&gen::rmat(9, 4096, 7));
    c.bench_function("fig13/tc_tmu_outq", |b| {
        b.iter(|| {
            let run = w.run_tmu(small_sys(), TmuConfig::paper());
            run.read_to_write_ratio()
        })
    });
}

/// Figure 14: one sensitivity point (4 KB, 256-bit SVE).
fn fig14_sensitivity(c: &mut Criterion) {
    let w = Spmv::new(&gen::uniform(1024, 8192, 8, 8));
    let tmu = TmuConfig::paper()
        .for_sve_bits(256)
        .with_total_storage(4 << 10);
    c.bench_function("fig14/spmv_4kb_256b", |b| {
        b.iter(|| w.run_tmu(configs::neoverse_n1_with_sve(256), tmu))
    });
}

/// Figure 15: IMP and single-lane comparators.
fn fig15_comparators(c: &mut Criterion) {
    let w = Spmv::new(&gen::uniform(1024, 8192, 8, 9));
    c.bench_function("fig15/spmv_imp", |b| {
        b.iter(|| w.run_baseline_imp(small_sys()))
    });
    c.bench_function("fig15/spmv_single_lane", |b| {
        b.iter(|| w.run_tmu(small_sys(), TmuConfig::paper().single_lane()))
    });
}

/// §6 area table.
fn area_model(c: &mut Criterion) {
    c.bench_function("area/paper_config", |b| {
        b.iter(|| tmu::area::area(&TmuConfig::paper()))
    });
}

criterion_group! {
    name = figures;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(3));
    targets = fig03_stall_profile, fig10_spmv, fig10_spmspm, fig10_spkadd,
        fig10_mttkrp, fig11_breakdown, fig13_read_to_write, fig14_sensitivity,
        fig15_comparators, area_model
}
criterion_main!(figures);
