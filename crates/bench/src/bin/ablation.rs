//! Ablations of the TMU design choices called out in DESIGN.md:
//!
//! 1. **Queue sizing (§5.5)** — the analytical per-layer allocation versus
//!    a uniform split of the per-lane storage.
//! 2. **outQ chunk granularity (§5.3)** — entries per double-buffered
//!    chunk (smaller chunks = lower marshaling latency, more signaling).
//!
//! Engine-side measurements use a standalone accelerator with an
//! infinitely fast core (chunks acknowledged instantly), isolating the
//! engine from core effects; the chunk sweep uses the full system where
//! the core/engine coupling matters.

use std::sync::Arc;

use tmu::{TmuAccelerator, TmuConfig};
use tmu_bench::runner::{bench_row, EngineVariant, InputSpec, Job, Runner};
use tmu_bench::Report;
use tmu_kernels::spmv::{Spmv, SpmvHandler};
use tmu_sim::{MemSys, MemSysConfig, OpKind};
use tmu_tensor::gen;

use tmu_sim::Accelerator;

fn engine_cycles(w: &Spmv, prog: Arc<tmu::Program>, cfg: TmuConfig) -> u64 {
    let handler = SpmvHandler::new(w.x_region(), 0);
    let mut accel = TmuAccelerator::new(cfg, prog, w.image_handle(), handler, w.outq_base(0));
    let mut mem = MemSys::new(MemSysConfig::table5(1));
    let mut now = 0u64;
    let mut sink = Vec::new();
    while !accel.done() {
        accel.tick(now, 0, &mut mem);
        accel.drain_ops(&mut sink);
        for op in &sink {
            if let OpKind::ChunkEnd { chunk } = op.kind {
                accel.ack_chunk(chunk, now);
            }
        }
        sink.clear();
        now += 1;
        assert!(now < 100_000_000, "engine must terminate");
    }
    now
}

fn main() -> std::process::ExitCode {
    tmu_bench::run_main(run)
}

fn run() {
    let mut report = Report::new(
        "ablation",
        "design-choice ablations (engine-side unless noted)",
    );
    let w = Spmv::new(&gen::uniform(8192, 65_536, 8, 77));
    let rows = (0usize, 8192usize);

    // ---- 1. Queue sizing: analytical (§5.5) vs uniform split. ----
    let prog = Arc::new(w.build_program(rows, 8));
    let uniform = Arc::new(prog.with_uniform_weights());
    let analytical_cycles = engine_cycles(&w, Arc::clone(&prog), TmuConfig::paper());
    let uniform_cycles = engine_cycles(&w, uniform, TmuConfig::paper());
    report.line("queue sizing (SpMV, 524k nnz, standalone engine):");
    report.line(format!("  analytical model: {analytical_cycles:>9} cycles"));
    report.line(format!(
        "  uniform split:    {uniform_cycles:>9} cycles ({:+.1}%)",
        (uniform_cycles as f64 / analytical_cycles as f64 - 1.0) * 100.0
    ));
    report.line("");

    // ---- 2. outQ chunk granularity (full system: coupling matters). ----
    report.line("outQ chunk granularity (SpMV, full 8-core system):");
    // Same matrix as the engine probes above, rebuilt by the runner from
    // its generator spec so the sweep can go through the worker pool.
    let input = InputSpec::Uniform {
        rows: 8192,
        cols: 65_536,
        nnz_per_row: 8,
        seed: 77,
    };
    let chunk_sizes = [8usize, 16, 32, 64, 128, 256];
    let jobs: Vec<Job> = chunk_sizes
        .iter()
        .map(|&entries| {
            Job::new("SpMV", input, EngineVariant::Tmu).with_tmu(TmuConfig {
                chunk_entries: entries,
                ..TmuConfig::paper()
            })
        })
        .collect();
    let runner = Runner::new();
    let runs = runner.run_all(&jobs);
    let base = runs[0].stats.cycles;
    for ((&entries, job), run) in chunk_sizes.iter().zip(&jobs).zip(&runs) {
        report.line(format!(
            "  {entries:>4} entries/chunk: {:>9} cycles ({:+.1}%)  r2w {:.2}",
            run.stats.cycles,
            (run.stats.cycles as f64 / base as f64 - 1.0) * 100.0,
            run.read_to_write_ratio()
        ));
        report.push_row(bench_row("ablation", &format!("chunk{entries}"), job, run));
    }
    report.line("");

    // ---- 3. Engine storage scaling (the Figure 14 x-axis, isolated). ----
    report.line("engine storage (SpMV, standalone engine):");
    let mut first = None;
    for kb in [2usize, 4, 8, 16, 32] {
        let cycles = engine_cycles(
            &w,
            Arc::clone(&prog),
            TmuConfig::paper().with_total_storage(kb << 10),
        );
        let base = *first.get_or_insert(cycles);
        report.line(format!(
            "  {kb:>2} KB: {cycles:>9} cycles (speedup over 2 KB: {:.2}x)",
            base as f64 / cycles as f64
        ));
    }
    report.save();
}
