//! Regenerates every table and figure of the paper's evaluation in one
//! run. Figures share one [`tmu_bench::runner::Runner`], whose memo cache
//! coalesces the (baseline, TMU) pairs figures 10–13 and 15 have in
//! common while the worker pool keeps every distinct job in flight.
//! Reports land under `results/`, structured rows in `results/bench.json`,
//! and a per-figure timing log in `results/all_figures.log`.

use std::fmt::Write as _;

fn main() -> std::process::ExitCode {
    tmu_bench::run_main(run)
}

fn run() {
    let t0 = std::time::Instant::now();
    let runner = tmu_bench::runner::Runner::new();
    let mut log = String::new();
    let _ = writeln!(
        log,
        "# all_figures run log (workers = {})",
        runner.workers()
    );
    type FigureFn = fn(&tmu_bench::runner::Runner);
    let figures: &[(&str, FigureFn)] = &[
        ("table06", |_| tmu_bench::figs::table06()),
        ("area", |_| tmu_bench::figs::area_report()),
        ("verify", |_| tmu_bench::figs::verify_all()),
        ("fig03", tmu_bench::figs::fig03),
        ("fig10", tmu_bench::figs::fig10),
        ("fig11", tmu_bench::figs::fig11),
        ("fig12", tmu_bench::figs::fig12),
        ("fig13", tmu_bench::figs::fig13),
        ("fig15", tmu_bench::figs::fig15),
        ("fig14", tmu_bench::figs::fig14),
    ];
    for (name, run) in figures {
        let t = std::time::Instant::now();
        run(&runner);
        let _ = writeln!(
            log,
            "{name}: {:.1}s ({} simulations so far)",
            t.elapsed().as_secs_f64(),
            runner.simulations()
        );
    }
    let summary = format!(
        "all figures regenerated in {:.0}s ({} simulations on {} workers)",
        t0.elapsed().as_secs_f64(),
        runner.simulations(),
        runner.workers()
    );
    println!("{summary}");
    log.push_str(&summary);
    log.push('\n');
    let path = std::path::Path::new("results").join("all_figures.log");
    match tmu_bench::json::create_dir(path.parent().expect("has parent"))
        .and_then(|()| tmu_bench::json::write_text(&path, &log))
    {
        Ok(()) => println!("→ wrote {}", path.display()),
        Err(e) => eprintln!("all_figures: could not write run log: {e}"),
    }
}
