//! Regenerates every table and figure of the paper's evaluation in one
//! run, sharing measured run pairs across figures. Reports land under
//! `results/`.

fn main() {
    let t0 = std::time::Instant::now();
    tmu_bench::figs::table06();
    tmu_bench::figs::area_report();
    tmu_bench::figs::verify_all();
    tmu_bench::figs::fig03();
    let mut cache = tmu_bench::figs::RunCache::new();
    tmu_bench::figs::fig10(&mut cache);
    tmu_bench::figs::fig11(&mut cache);
    tmu_bench::figs::fig12(&mut cache);
    tmu_bench::figs::fig13(&mut cache);
    tmu_bench::figs::fig15(&mut cache);
    tmu_bench::figs::fig14();
    println!("all figures regenerated in {:.0}s", t0.elapsed().as_secs_f64());
}
