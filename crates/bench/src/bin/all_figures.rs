//! Regenerates every table and figure of the paper's evaluation in one
//! run. Figures share one [`tmu_bench::runner::Runner`], whose memo cache
//! coalesces the (baseline, TMU) pairs figures 10–13 and 15 have in
//! common while the worker pool keeps every distinct job in flight.
//! Reports land under `results/`, structured rows in `results/bench.json`.

fn main() {
    let t0 = std::time::Instant::now();
    let runner = tmu_bench::runner::Runner::new();
    tmu_bench::figs::table06();
    tmu_bench::figs::area_report();
    tmu_bench::figs::verify_all();
    tmu_bench::figs::fig03(&runner);
    tmu_bench::figs::fig10(&runner);
    tmu_bench::figs::fig11(&runner);
    tmu_bench::figs::fig12(&runner);
    tmu_bench::figs::fig13(&runner);
    tmu_bench::figs::fig15(&runner);
    tmu_bench::figs::fig14(&runner);
    println!(
        "all figures regenerated in {:.0}s ({} simulations on {} workers)",
        t0.elapsed().as_secs_f64(),
        runner.simulations(),
        runner.workers()
    );
}
