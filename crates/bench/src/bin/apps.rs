//! `apps` — application DAG pipelines benchmark (DESIGN.md §14).
//!
//! Runs the three built-in `tmu-apps` applications (GNN layer, CG solve,
//! PageRank) two ways and writes `results/apps.txt` plus schema-v6 rows
//! into `results/bench.json`:
//!
//! 1. **Solo breakdown** — each app alone on a fresh slot, unpreempted:
//!    per-stage engine/host cycle split and end-to-end cycles, one
//!    `stage` row per DAG stage and one end-to-end row per app.
//! 2. **Served mix** — two copies of every app across two tenants on a
//!    two-slot pool with preemptive virtualization. The binary verifies
//!    every served completion digest against the solo reference (the
//!    differential guarantee, enforced at bench time too) and reports
//!    the two-level stage cache's per-tenant hit rates.
//!
//! Environment knobs, each read once at startup:
//! * `TMU_SCALE` — below 1.0 shrinks the grid to a smoke: GNN + CG only,
//!   smaller inputs, fewer iterations (CI runs `TMU_SCALE=0.05`).
//! * `TMU_QUANTUM` — serving quantum in cycles (default 1000).
//! * `TMU_SLOTS` — serving slots in the mix (default 2).
//!
//! Single-threaded and seed-fixed throughout: the report is
//! deterministic for a fixed knob set.

use tmu_apps::{AppKind, AppSpec, StageRecord};
use tmu_bench::json::BenchRow;
use tmu_bench::runner::parse_pos_int;
use tmu_bench::Report;
use tmu_serve::{serve, solo_app, AppSoloRun, JobKind, JobSpec, Policy, ServeConfig, SERVE_LANES};

fn knob(name: &str, default: u64) -> u64 {
    let raw = std::env::var(name).ok();
    match parse_pos_int(name, raw.as_deref()) {
        Ok(Some(n)) => n,
        Ok(None) => default,
        Err(msg) => {
            eprintln!("warning: {msg}; using default {default}");
            default
        }
    }
}

/// The app grid at the given scale. Below 1.0 the grid shrinks to the
/// GNN + CG smoke with smaller inputs and tighter iteration caps.
fn app_specs(scale: f64) -> Vec<AppSpec> {
    let shrink = |rows: usize| ((rows as f64 * scale) as usize).max(16);
    let mut specs = vec![
        AppSpec {
            app: AppKind::Gnn,
            rows: shrink(48),
            nnz_per_row: 3,
            seed: 23,
            max_iters: 1,
            lanes: SERVE_LANES,
        },
        AppSpec {
            app: AppKind::Cg,
            rows: shrink(64),
            nnz_per_row: 4,
            seed: 23,
            max_iters: if scale < 1.0 { 3 } else { 6 },
            lanes: SERVE_LANES,
        },
    ];
    if scale >= 1.0 {
        specs.push(AppSpec {
            app: AppKind::PageRank,
            rows: 64,
            nnz_per_row: 4,
            seed: 23,
            max_iters: 5,
            lanes: SERVE_LANES,
        });
    }
    specs
}

fn job_kind(spec: &AppSpec) -> JobKind {
    JobKind::App {
        app: spec.app,
        rows: spec.rows as u32,
        nnz_per_row: spec.nnz_per_row as u32,
        seed: spec.seed,
        max_iters: spec.max_iters,
    }
}

/// Sums per-stage records in first-appearance order:
/// `(stage, runs, engine_cycles, host_cycles)`.
fn stage_breakdown(records: &[StageRecord]) -> Vec<(String, u32, u64, u64)> {
    let mut agg: Vec<(String, u32, u64, u64)> = Vec::new();
    for r in records {
        match agg.iter_mut().find(|(s, ..)| *s == r.stage) {
            Some(row) => {
                row.1 += 1;
                row.2 += r.engine_cycles;
                row.3 += r.host_cycles;
            }
            None => agg.push((r.stage.clone(), 1, r.engine_cycles, r.host_cycles)),
        }
    }
    agg
}

fn main() -> std::process::ExitCode {
    tmu_bench::run_main(run)
}

fn run() -> std::process::ExitCode {
    let scale = tmu_bench::scale();
    let quantum = knob("TMU_QUANTUM", 1_000);
    let slots = knob("TMU_SLOTS", 2) as usize;
    let specs = app_specs(scale);

    let mut report = Report::new("apps", "application DAG pipelines: GNN / CG / PageRank");
    report.line(format!(
        "{} app(s) at scale {scale}; served mix: {slots} slot(s), quantum {quantum} cycles",
        specs.len()
    ));

    // Solo unpreempted references: the per-app stage breakdown and the
    // digests every served completion must reproduce.
    let mut solos: Vec<AppSoloRun> = Vec::new();
    for spec in &specs {
        let solo = match solo_app(*spec) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("apps: solo {} failed: {e}", spec.label());
                return std::process::ExitCode::FAILURE;
            }
        };
        report.line("");
        report.line(format!(
            "{}: {} iteration(s), {} cycles end-to-end",
            spec.label(),
            solo.iterations,
            solo.cycles
        ));
        report.line(format!(
            "  {:<10} {:>5} {:>12} {:>12}",
            "stage", "runs", "engine-cyc", "host-cyc"
        ));
        for (stage, runs, engine, host) in stage_breakdown(&solo.records) {
            report.line(format!("  {stage:<10} {runs:>5} {engine:>12} {host:>12}"));
            report.push_row(BenchRow {
                figure: "apps".into(),
                kernel: spec.app.name().into(),
                input: format!("r{}x{}s{}", spec.rows, spec.nnz_per_row, spec.seed),
                engine: "tmu".into(),
                machine: "table5".into(),
                scale: (scale != 1.0).then_some(scale),
                cycles: engine + host,
                app: Some(spec.app.name().into()),
                stage: Some(stage),
                iterations: u64::from(solo.iterations),
                ..BenchRow::default()
            });
        }
        solos.push(solo);
    }

    // Served mix: two copies of every app, two tenants, staggered
    // arrivals — the differential guarantee checked at bench time.
    let trace: Vec<JobSpec> = specs
        .iter()
        .enumerate()
        .flat_map(|(i, spec)| {
            (0..2u32).map(move |copy| {
                let id = (i as u32) * 2 + copy;
                JobSpec {
                    id,
                    tenant: copy,
                    arrival: u64::from(id) * 1_000,
                    weight: if copy == 0 { 3 } else { 1 },
                    deadline: None,
                    kind: job_kind(spec),
                }
            })
        })
        .collect();
    let out = match serve(
        ServeConfig {
            slots,
            quantum,
            policy: Policy::WeightedFair,
            ..ServeConfig::default()
        },
        trace.clone(),
    ) {
        Ok(out) => out,
        Err(e) => {
            eprintln!("apps: served mix failed: {e}");
            return std::process::ExitCode::FAILURE;
        }
    };
    if out.outcomes.len() != trace.len() {
        eprintln!(
            "apps: served mix completed {}/{} jobs",
            out.outcomes.len(),
            trace.len()
        );
        return std::process::ExitCode::FAILURE;
    }
    for o in &out.outcomes {
        let spec_ix = (o.id / 2) as usize;
        if o.digest != solos[spec_ix].digest {
            eprintln!(
                "apps: served job {} ({}) diverged from its solo digest",
                o.id, o.label
            );
            return std::process::ExitCode::FAILURE;
        }
    }

    report.line("");
    report.line(format!(
        "served mix: {} jobs, makespan {} cycles, {} preemption(s), all digests solo-identical",
        out.outcomes.len(),
        out.makespan,
        out.preemptions
    ));
    let (tensor_ev, program_ev) = out.stage_evictions;
    report.line(format!(
        "stage cache: {tensor_ev} tensor / {program_ev} program eviction(s)"
    ));
    for (&tenant, stats) in &out.tenant_cache {
        report.line(format!(
            "  tenant{tenant}: cache hit rate {:.3} ({} tensor + {} program hits, \
             {} tensor + {} program misses)",
            out.cache_hit_rate(tenant),
            stats.tensor_hits,
            stats.program_hits,
            stats.tensor_misses,
            stats.program_misses
        ));
    }

    // End-to-end rows: solo cycles and iterations, tagged with the served
    // mix's combined cache hit rate (the stage cache is shared across
    // tenants, so the combined rate is the figure-level number).
    let (hits, misses) = out.tenant_cache.values().fold((0u64, 0u64), |(h, m), s| {
        (
            h + s.tensor_hits + s.program_hits,
            m + s.tensor_misses + s.program_misses,
        )
    });
    let combined_rate = if hits + misses == 0 {
        0.0
    } else {
        hits as f64 / (hits + misses) as f64
    };
    for (spec, solo) in specs.iter().zip(&solos) {
        report.push_row(BenchRow {
            figure: "apps".into(),
            kernel: spec.app.name().into(),
            input: format!("r{}x{}s{}", spec.rows, spec.nnz_per_row, spec.seed),
            engine: "tmu".into(),
            machine: "table5".into(),
            scale: (scale != 1.0).then_some(scale),
            cycles: solo.cycles,
            app: Some(spec.app.name().into()),
            iterations: u64::from(solo.iterations),
            cache_hit_rate: combined_rate,
            ..BenchRow::default()
        });
    }

    report.save();
    std::process::ExitCode::SUCCESS
}
