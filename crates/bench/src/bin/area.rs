//! Regenerates the paper artifact `area` (see DESIGN.md §4).

fn main() {
    tmu_bench::figs::area_report();
    tmu_bench::runner::exit_if_failed();
}
