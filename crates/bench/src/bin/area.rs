//! Regenerates the paper artifact `area` (see DESIGN.md §4).

fn main() -> std::process::ExitCode {
    tmu_bench::run_main(tmu_bench::figs::area_report)
}
