//! Scale-sensitivity probe: how baseline/TMU cycles and speedups move with
//! the input scale multiplier (bring-up tool, not a paper figure).
//!
//! The scale is threaded explicitly through the `*_workload_at` builders —
//! mutating `TMU_SCALE` per iteration would race against the process-wide
//! value, which is read exactly once (see `tmu_bench::scale`).

use tmu::TmuConfig;
use tmu_bench::{matrix_workload_at, tensor_workload_at};
use tmu_sim::configs;
use tmu_tensor::gen::InputId;

fn main() -> std::process::ExitCode {
    tmu_bench::run_main(run)
}

fn run() {
    let cfg = configs::neoverse_n1_system();
    let tmu = TmuConfig::paper();
    for s in [0.25f64, 0.5, 1.0] {
        for (kind, id, name) in [
            ("m", InputId::M3, "SpMV"),
            ("m", InputId::M3, "SpMSpM"),
            ("t", InputId::T2, "MTTKRP_MP"),
        ] {
            let w = if kind == "m" {
                matrix_workload_at(name, id, s)
            } else {
                tensor_workload_at(name, id, s)
            };
            let t0 = std::time::Instant::now();
            let base = w.run_baseline(cfg);
            let run = w.run_tmu(cfg, tmu);
            println!(
                "scale={s} {name:<10} base={:>9} tmu={:>9} speedup={:.2}x base_l2u={:.0} wall={:.1}s",
                base.cycles,
                run.stats.cycles,
                base.cycles as f64 / run.stats.cycles as f64,
                base.avg_load_to_use(),
                t0.elapsed().as_secs_f64()
            );
        }
    }
}
