//! `chaos` — the resilience differential grid (DESIGN.md §13).
//!
//! Serves a fixed two-tenant trace under seeded slot-fault injection
//! across a grid of fault kinds × slot counts × scheduling policies, and
//! verifies the two invariants the resilience layer promises:
//!
//! 1. **Conservation** — every admitted job is accounted for exactly
//!    once: completed, shed at admission, or terminally failed.
//! 2. **Digest identity** — every *completed* job's marshaled outQ
//!    entry stream is bit-identical to a solo fault-free run of the
//!    same shape, however many crashes, hangs, degrades, checkpoints,
//!    and retries it survived.
//!
//! Any violation prints the offending cell and the process exits
//! nonzero, so CI can gate on it directly. Results land in
//! `results/chaos.txt` plus per-tenant `"chaos"` rows (schema v5) in
//! `results/bench.json`.
//!
//! `TMU_SCALE < 1` shrinks the grid to a four-cell smoke (one combined
//! fault spec, both slot counts, two policies) for fast CI runs.

use std::collections::HashMap;

use tmu_bench::json::BenchRow;
use tmu_bench::Report;
use tmu_serve::{
    serve, solo_digest, BuildCache, EntryDigest, JobKind, JobSpec, KernelKind, Policy,
    ResilienceConfig, ServeConfig, SlotFaultKind, SlotFaultSpec,
};

fn shapes() -> Vec<JobKind> {
    vec![
        JobKind::Kernel {
            kind: KernelKind::Spmv,
            rows: 96,
            nnz_per_row: 4,
            seed: 21,
        },
        JobKind::Kernel {
            kind: KernelKind::Spmspm,
            rows: 48,
            nnz_per_row: 3,
            seed: 23,
        },
        JobKind::Expr {
            src: "y(i) = A(i,j:csr) * x(j)".into(),
            rows: 48,
            nnz_per_row: 3,
            seed: 22,
        },
    ]
}

/// Two copies of every shape across two tenants, arrivals tight enough
/// to contend, a deadline on every job.
fn grid_trace(shapes: &[JobKind]) -> Vec<JobSpec> {
    let mut jobs = Vec::new();
    for (i, kind) in shapes.iter().enumerate() {
        for copy in 0..2u32 {
            let id = (i as u32) * 2 + copy;
            jobs.push(JobSpec {
                id,
                tenant: copy,
                arrival: u64::from(id) * 1_000,
                weight: if copy == 0 { 3 } else { 1 },
                deadline: Some(u64::from(id) * 1_000 + 30_000),
                kind: kind.clone(),
            });
        }
    }
    jobs
}

/// The fault specs the grid sweeps: one per kind at full scale, one
/// all-kinds spec in the scaled-down smoke.
fn fault_specs(full: bool) -> Vec<(&'static str, SlotFaultSpec)> {
    let spec = |kinds: u8, seed: u64| SlotFaultSpec {
        seed,
        rate_per_1k: 150,
        kinds,
        reboot_cycles: 1_000,
    };
    if full {
        SlotFaultKind::ALL
            .iter()
            .map(|k| (k.name(), spec(k.bit(), 0xC4A05 ^ k.bit() as u64)))
            .collect()
    } else {
        let all = SlotFaultKind::ALL.iter().fold(0u8, |m, k| m | k.bit());
        vec![("all", spec(all, 0xC4A05))]
    }
}

fn main() -> std::process::ExitCode {
    tmu_bench::run_main(run)
}

fn run() -> std::process::ExitCode {
    let full = tmu_bench::scale() >= 1.0;
    let shapes = shapes();
    let mut cache = BuildCache::new();
    let reference: HashMap<JobKind, EntryDigest> = shapes
        .iter()
        .map(|kind| {
            let built = cache.get(kind).expect("shape builds");
            let digest = solo_digest(&built, 0).expect("solo run drains");
            (kind.clone(), digest)
        })
        .collect();
    let trace = grid_trace(&shapes);

    let policies: &[Policy] = if full {
        &[Policy::RoundRobin, Policy::WeightedFair, Policy::Edf]
    } else {
        &[Policy::RoundRobin, Policy::Edf]
    };

    let mut report = Report::new("chaos", "resilience differential grid");
    report.line(format!(
        "{} jobs/cell, retry budget 6, checkpoint every 600 cycles, \
         slot-fault rate 150/1k quanta",
        trace.len()
    ));
    report.line(format!(
        "  {:<8} {:>5} {:>6} {:>5} {:>6} {:>7} {:>5} {:>6} {:>5} {:>7}",
        "faults", "slots", "policy", "done", "failed", "shed", "retry", "ckpt", "inj", "verdict"
    ));

    let mut ok = true;
    let mut injected_total = 0u64;
    for (fault_label, slot_faults) in fault_specs(full) {
        for slots in [1usize, 2] {
            for &policy in policies {
                let cfg = ServeConfig {
                    slots,
                    quantum: 400,
                    policy,
                    ctx_switch_cycles: 250,
                    resilience: ResilienceConfig {
                        slot_faults,
                        retry_budget: 6,
                        backoff_base: 500,
                        backoff_cap: 4_000,
                        checkpoint_every: 600,
                        ..ResilienceConfig::default()
                    },
                    ..ServeConfig::default()
                };
                let out = match serve(cfg, trace.clone()) {
                    Ok(out) => out,
                    Err(e) => {
                        report.line(format!(
                            "  {fault_label}/{slots}/{}: run error: {e}",
                            policy.label()
                        ));
                        ok = false;
                        continue;
                    }
                };
                injected_total += out.slot_faults.injected;
                let conserved = out.conserves(trace.len());
                let diverged: Vec<u32> = out
                    .outcomes
                    .iter()
                    .filter(|o| {
                        let spec = trace.iter().find(|j| j.id == o.id).expect("job in trace");
                        o.digest != reference[&spec.kind]
                    })
                    .map(|o| o.id)
                    .collect();
                let verdict = if !conserved {
                    ok = false;
                    "LOST"
                } else if !diverged.is_empty() {
                    ok = false;
                    "DIVERGED"
                } else {
                    "ok"
                };
                report.line(format!(
                    "  {:<8} {:>5} {:>6} {:>5} {:>6} {:>7} {:>5} {:>6} {:>5} {:>7}",
                    fault_label,
                    slots,
                    match policy {
                        Policy::RoundRobin => "rr",
                        Policy::WeightedFair => "wf",
                        Policy::Edf => "edf",
                    },
                    out.outcomes.len(),
                    out.failed.len(),
                    out.shed_total(),
                    out.retries_total(),
                    out.checkpoints,
                    out.slot_faults.injected,
                    verdict
                ));
                if !diverged.is_empty() {
                    report.line(format!("    diverged jobs: {diverged:?}"));
                }
                for t in tmu_serve::tenant_reports(
                    &out.outcomes,
                    &out.failed,
                    &out.rejected,
                    &out.retries,
                    out.makespan,
                ) {
                    report.push_row(BenchRow {
                        figure: "chaos".into(),
                        kernel: "mix".into(),
                        input: format!("{fault_label}-s{slots}"),
                        engine: format!("chaos-{}", policy.label()),
                        machine: "table5".into(),
                        cycles: out.makespan,
                        fault_injected: out.slot_faults.injected,
                        tenant: Some(format!("tenant{}", t.tenant)),
                        service_cycles: t.service_cycles,
                        lat_p50: t.sojourn.p50,
                        lat_p95: t.sojourn.p95,
                        lat_p99: t.sojourn.p99,
                        retries: t.retries,
                        deadline_miss: t.deadline_misses,
                        shed: t.rejected,
                        checkpoint_cycles: out
                            .checkpoint_cycles
                            .get(&t.tenant)
                            .copied()
                            .unwrap_or(0),
                        ..BenchRow::default()
                    });
                }
            }
        }
    }
    if injected_total == 0 {
        report.line("no slot faults injected anywhere — the grid proved nothing");
        ok = false;
    }
    report.line(format!(
        "chaos grid {}: {} slot fault(s) injected across the grid",
        if ok { "OK" } else { "FAILED" },
        injected_total
    ));
    report.save();
    if ok {
        std::process::ExitCode::SUCCESS
    } else {
        std::process::ExitCode::FAILURE
    }
}
