//! Engine diagnostics: runs the TMU standalone against an infinitely fast
//! core (every chunk acknowledged immediately) and reports cycles/nnz plus
//! the internal stall counters — the tool used to tune the §5.4 arbiter
//! and §5.5 queue-sizing models during bring-up.
//!
//! Environment: `ST=<bytes>` overrides total engine storage.

use std::sync::Arc;

use tmu::{TmuAccelerator, TmuConfig};
use tmu_kernels::spmv::{Spmv, SpmvHandler};
use tmu_kernels::workload::Workload;
use tmu_sim::{configs, CoreConfig};
use tmu_sim::{Accelerator, MemSys, MemSysConfig, OpKind, SystemConfig};
use tmu_tensor::gen;

fn main() -> std::process::ExitCode {
    tmu_bench::run_main(run)
}

fn run() {
    let a = gen::banded(8192, 512, 16, 13);
    let w = Spmv::new(&a);
    let prog = Arc::new(w.build_program((0, 8192), 8));
    let storage: usize = std::env::var("ST")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(16 << 10);
    let cfg = TmuConfig::paper().with_total_storage(storage);
    let handler = SpmvHandler::new(w.x_region(), 0);
    let mut accel = TmuAccelerator::new(cfg, prog, w.image_handle(), handler, w.outq_base(0));
    eprintln!("queue depths: {:?}", accel.queue_depths());
    let mut mem = MemSys::new(MemSysConfig::table5(1));
    let mut now = 0u64;
    let mut sink = Vec::new();
    while !accel.done() {
        accel.tick(now, 0, &mut mem);
        accel.drain_ops(&mut sink);
        for op in &sink {
            if let OpKind::ChunkEnd { chunk } = op.kind {
                accel.ack_chunk(chunk, now);
            }
        }
        sink.clear();
        now += 1;
        if now > 100_000_000 {
            println!("engine probe: TIMEOUT");
            return;
        }
    }
    println!(
        "engine probe: cycles={} nnz={} cyc/nnz={:.2} counters(idle,cap,dep,gate)={:?} entries={}",
        now,
        a.nnz(),
        now as f64 / a.nnz() as f64,
        accel.debug_counters,
        accel.stats().entries
    );

    // Full-system sanity comparison on a scattered input.
    let cfg2 = SystemConfig {
        core: CoreConfig::neoverse_n1_like(),
        mem: MemSysConfig::table5(2),
    };
    let _ = configs::neoverse_n1_system();
    let w2 = Spmv::new(&gen::uniform(2048, 65_536, 8, 7));
    let base = w2.run_baseline(cfg2);
    let run = w2.run_tmu(cfg2, TmuConfig::paper());
    let (c, f, b) = base.breakdown();
    println!(
        "baseline: cycles={} commit={c:.2} fe={f:.2} be={b:.2} l2u={:.1} bw={:.1}GB/s",
        base.cycles,
        base.avg_load_to_use(),
        base.bandwidth_gbs()
    );
    let (c, f, b) = run.stats.breakdown();
    println!(
        "tmu:      cycles={} commit={c:.2} fe={f:.2} be={b:.2} l2u={:.1} bw={:.1}GB/s  r2w={:.2}",
        run.stats.cycles,
        run.stats.avg_load_to_use(),
        run.stats.bandwidth_gbs(),
        run.read_to_write_ratio()
    );
}
