//! Fault-injection demo harness.
//!
//! Runs a small SpMV/SpMSpM grid twice — fault-free and with seeded
//! rate-based injection (`TMU_FAULT_RATE` faults per 100k loads,
//! default 20) — and checks that the marshaled outQ totals are
//! identical: traps, retries, stalls, and preemptions may change *when*
//! the engine makes progress, never *what* it produces. A deliberately
//! broken job demonstrates the caught-panic path: the batch survives,
//! the failure is a typed row, and this process still exits 0 because
//! the failure was expected.
//!
//! Writes nothing to `results/` — this is a resilience smoke test, not
//! a figure.

use tmu::{FaultSpec, TmuConfig};
use tmu_bench::runner::{
    clear_failed_jobs, failed_jobs, parse_pos_int, EngineVariant, InputSpec, Job, Runner,
};

fn main() -> std::process::ExitCode {
    tmu_bench::run_main(run)
}

fn run() -> std::process::ExitCode {
    let raw = std::env::var("TMU_FAULT_RATE").ok();
    let rate: u32 = match parse_pos_int("TMU_FAULT_RATE", raw.as_deref()) {
        Ok(Some(n)) => u32::try_from(n).unwrap_or(u32::MAX),
        Ok(None) => 20,
        Err(msg) => {
            eprintln!("warning: {msg}; using default rate 20");
            20
        }
    };
    let input = InputSpec::Uniform {
        rows: 1024,
        cols: 4096,
        nnz_per_row: 6,
        seed: 11,
    };
    let runner = Runner::new();
    println!("fault injection smoke: rate={rate}/100k loads, seeds 1-3");
    let mut ok = true;
    for kernel in ["SpMV", "SpMSpM"] {
        let clean = runner.run(&Job::new(kernel, input, EngineVariant::Tmu));
        let clean_entries: u64 = clean.outq.iter().map(|o| o.entries).sum();
        for seed in 1..=3u64 {
            let job = Job::new(kernel, input, EngineVariant::Tmu)
                .with_tmu(TmuConfig::paper().with_faults(FaultSpec::with_rate(seed, rate)));
            let res = runner.run(&job);
            let entries: u64 = res.outq.iter().map(|o| o.entries).sum();
            let injected: u64 = res.outq.iter().map(|o| o.faults_injected).sum();
            let traps: u64 = res.outq.iter().map(|o| o.fault_traps).sum();
            let restores: u64 = res.outq.iter().map(|o| o.fault_restores).sum();
            let verdict = if res.error.is_some() {
                ok = false;
                "CRASH"
            } else if res.fallback.is_some() {
                // Graceful degradation is a legal outcome at high rates.
                "fallback"
            } else if entries == clean_entries {
                "identical"
            } else {
                ok = false;
                "MISMATCH"
            };
            println!(
                "  {kernel:<7} seed={seed} injected={injected:<4} traps={traps:<4} \
                 restores={restores:<4} outq={entries} (clean {clean_entries}) → {verdict}"
            );
        }
    }
    // The caught-panic path: an unknown kernel panics inside the job; the
    // runner must contain it and type it instead of dying.
    println!("deliberate failure (caught-panic path):");
    let before = failed_jobs();
    let bad = runner.run(&Job::new("NoSuchKernel", input, EngineVariant::Tmu));
    let caught = failed_jobs() == before + 1 && bad.error.is_some();
    match &bad.error {
        Some(e) => println!("  caught: {e}"),
        None => println!("  NOT caught — runner let a panic through"),
    }
    if caught {
        // The failure above was deliberate; clear the counter so the
        // shared `run_main` epilogue doesn't turn an expected failure
        // into a nonzero exit.
        clear_failed_jobs();
    }
    if ok && caught {
        println!("fault smoke OK ({} simulations)", runner.simulations());
        std::process::ExitCode::SUCCESS
    } else {
        eprintln!("fault smoke FAILED (ok={ok} caught={caught})");
        std::process::ExitCode::FAILURE
    }
}
