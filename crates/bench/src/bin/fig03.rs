//! Regenerates the paper artifact `fig03` (see DESIGN.md §4).

fn main() {
    tmu_bench::figs::fig03();
}
