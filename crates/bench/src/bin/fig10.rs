//! Figure 10: TMU speedups for linear and tensor algebra workloads.

fn main() {
    let mut cache = tmu_bench::figs::RunCache::new();
    tmu_bench::figs::fig10(&mut cache);
}
