//! Regenerates the paper artifact `fig10` (see DESIGN.md §4).

fn main() {
    let runner = tmu_bench::runner::Runner::new();
    tmu_bench::figs::fig10(&runner);
    tmu_bench::runner::exit_if_failed();
}
