//! Regenerates the paper artifact `fig11` (see DESIGN.md §4).

fn main() -> std::process::ExitCode {
    tmu_bench::run_main(|| {
        let runner = tmu_bench::runner::Runner::new();
        tmu_bench::figs::fig11(&runner);
    })
}
