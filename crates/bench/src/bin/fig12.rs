//! Regenerates the paper artifact `fig12` (see DESIGN.md §4).

fn main() {
    let mut c = tmu_bench::figs::RunCache::new();
    tmu_bench::figs::fig12(&mut c);
}
