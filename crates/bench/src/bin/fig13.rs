//! Regenerates the paper artifact `fig13` (see DESIGN.md §4).

fn main() -> std::process::ExitCode {
    tmu_bench::run_main(|| {
        let runner = tmu_bench::runner::Runner::new();
        tmu_bench::figs::fig13(&runner);
    })
}
