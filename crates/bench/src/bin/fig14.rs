//! Regenerates the paper artifact `fig14` (see DESIGN.md §4).

fn main() -> std::process::ExitCode {
    tmu_bench::run_main(|| {
        let runner = tmu_bench::runner::Runner::new();
        tmu_bench::figs::fig14(&runner);
    })
}
