//! Regenerates the paper artifact `fig14` (see DESIGN.md §4).

fn main() {
    tmu_bench::figs::fig14();
}
