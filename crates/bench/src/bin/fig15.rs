//! Regenerates the paper artifact `fig15` (see DESIGN.md §4).

fn main() {
    let mut c = tmu_bench::figs::RunCache::new();
    tmu_bench::figs::fig15(&mut c);
}
