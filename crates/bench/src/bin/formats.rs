//! Format-autotuner ablation: best layout vs CSR-always over the Table 6
//! matrix grid (tentpole layer 3).
//!
//! ```text
//! usage: formats
//! ```
//!
//! For each synthetic Table 6 matrix the binary measures fiber statistics,
//! lets the autotuner pick a layout, and models SpMV under every
//! streamable layout plus the csr→layout conversion each would charge.
//! The report compares two policies end to end:
//!
//! * **csr-always** — stream canonical CSR, no conversion;
//! * **autotuned** — convert once to the picked layout, then stream it.
//!
//! Every modeled run lands in `results/bench.json` as a schema-v4 row
//! under figure `"formats"`, tagged with the `format` and `conv_cycles`
//! columns; rows of every other figure are untouched (and byte-identical
//! to schema v3).

use std::process::ExitCode;

use tmu_bench::json::BenchRow;
use tmu_bench::{geomean, Report};
use tmu_formats::spmv::run_spmv;
use tmu_formats::{conversion_cycles, pick, FormatKind};
use tmu_sim::configs;
use tmu_tensor::gen::{InputId, ScaledInput};

fn body() -> ExitCode {
    let scale = tmu_bench::scale();
    let mut report = Report::new(
        "formats",
        "format autotuner ablation: best layout vs CSR-always (modeled SpMV)",
    );
    report.line(format!(
        "{:<8}{:<8}{:>12}{:>12}{:>12}{:>9}  reason",
        "input", "pick", "csr(cyc)", "best(cyc)", "conv(cyc)", "speedup"
    ));

    let mut kernel_speedups = Vec::new();
    let mut e2e_speedups = Vec::new();
    for id in InputId::MATRICES {
        let a = ScaledInput::new(id).with_scale(scale).matrix();
        let choice = pick(&a);

        let mut cycles = [None; FormatKind::ALL.len()];
        for (slot, kind) in cycles.iter_mut().zip(FormatKind::ALL) {
            let Some(stats) = run_spmv(kind, &a, configs::neoverse_n1_system()) else {
                continue; // hashed admits no row-streamed SpMV
            };
            let conv = conversion_cycles(&a, kind, configs::neoverse_n1_system());
            *slot = Some(stats.cycles);
            report.push_row(BenchRow {
                figure: "formats".into(),
                kernel: "SpMV".into(),
                input: id.label().into(),
                engine: "baseline-sve".into(),
                machine: "table5".into(),
                scale: Some(scale),
                cycles: stats.cycles,
                flops: stats.flops(),
                dram_bytes: stats.dram_bytes,
                gflops: stats.gflops(),
                bandwidth_gbs: stats.bandwidth_gbs(),
                arithmetic_intensity: stats.arithmetic_intensity(),
                dram_row_hit_rate: stats.dram_row_hit_rate,
                l1: (stats.mem.l1.hits, stats.mem.l1.misses, stats.mem.l1.merged),
                l2: (stats.mem.l2.hits, stats.mem.l2.misses, stats.mem.l2.merged),
                llc: (
                    stats.mem.llc.hits,
                    stats.mem.llc.misses,
                    stats.mem.llc.merged,
                ),
                dram_lines_read: stats.mem.dram_lines_read,
                dram_lines_written: stats.mem.dram_lines_written,
                dram_row_hits: stats.mem.dram_row_hits,
                dram_row_misses: stats.mem.dram_row_misses,
                format: Some(kind.label().into()),
                conv_cycles: Some(conv.cycles),
                ..BenchRow::default()
            });
        }

        let csr_idx = FormatKind::ALL
            .iter()
            .position(|&k| k == FormatKind::Csr)
            .expect("csr is a kind");
        let pick_idx = FormatKind::ALL
            .iter()
            .position(|&k| k == choice.pick)
            .expect("the pick is a kind");
        let csr_cycles = cycles[csr_idx].expect("csr always streams");
        let best_cycles = cycles[pick_idx].expect("the autotuner never picks an unstreamable kind");
        let conv_cycles = conversion_cycles(&a, choice.pick, configs::neoverse_n1_system()).cycles;
        kernel_speedups.push(csr_cycles as f64 / best_cycles as f64);
        e2e_speedups.push(csr_cycles as f64 / (best_cycles + conv_cycles) as f64);
        report.line(format!(
            "{:<8}{:<8}{:>12}{:>12}{:>12}{:>8.2}x  {}",
            id.label(),
            choice.pick.label(),
            csr_cycles,
            best_cycles,
            conv_cycles,
            csr_cycles as f64 / best_cycles as f64,
            choice.reason,
        ));
    }

    report.line("");
    report.line(format!(
        "geomean speedup of the autotuned layout over csr-always: {:.2}x (kernel only), \
         {:.2}x (including one conversion)",
        geomean(&kernel_speedups),
        geomean(&e2e_speedups),
    ));
    report.line("conversion cost amortizes across reuses; the kernel-only column is the limit.");
    report.save();
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    tmu_bench::run_main(body)
}
