//! `lang` — compile an einsum expression to a TMU program and run it.
//!
//! ```text
//! cargo run --release --bin lang -- "y(i) = A(i,j:csr) * x(j)" [input]
//! ```
//!
//! `input` picks the base matrix every operand is auto-bound from:
//! `rmat` (default), `uniform`, or `fixed_row`. The tool prints the
//! iteration graph and merge-lattice decision per loop, the lowered
//! program layer by layer, then cross-checks the compiled program against
//! the reference interpreter and simulates both engines.

use std::process::ExitCode;

use tmu_bench::runner::{EngineVariant, InputSpec, Job, Runner};
use tmu_front::ExprWorkload;
use tmu_kernels::mapping::features;
use tmu_kernels::Workload;

fn input_spec(name: &str) -> Option<InputSpec> {
    match name {
        "rmat" => Some(InputSpec::Rmat {
            scale: 9,
            edges: 4096,
            seed: 7,
        }),
        "uniform" => Some(InputSpec::Uniform {
            rows: 512,
            cols: 256,
            nnz_per_row: 6,
            seed: 21,
        }),
        "fixed_row" => Some(InputSpec::FixedRow {
            rows: 256,
            n: 8,
            seed: 9,
        }),
        _ => None,
    }
}

fn main() -> ExitCode {
    tmu_bench::run_main(run)
}

fn run() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(src) = args.first() else {
        eprintln!("usage: lang \"<expression>\" [rmat|uniform|fixed_row]");
        return ExitCode::FAILURE;
    };
    let input_name = args.get(1).map(String::as_str).unwrap_or("rmat");
    let Some(input) = input_spec(input_name) else {
        eprintln!("unknown input {input_name:?} (rmat, uniform, fixed_row)");
        return ExitCode::FAILURE;
    };

    // Compile once outside the runner so errors render with their span
    // and the graph/program can be printed.
    let base = match input {
        InputSpec::Rmat { scale, edges, seed } => tmu_tensor::gen::rmat(scale, edges, seed),
        InputSpec::Uniform {
            rows,
            cols,
            nnz_per_row,
            seed,
        } => tmu_tensor::gen::uniform(rows, cols, nnz_per_row, seed),
        InputSpec::FixedRow { rows, n, seed } => tmu_tensor::gen::fixed_row(rows, n, seed),
        InputSpec::Table6 { .. } => unreachable!("input_spec never yields Table6"),
    };
    let w = match ExprWorkload::new(src, &base) {
        Ok(w) => w,
        Err(e) => {
            eprintln!("{}", e.render(src));
            return ExitCode::FAILURE;
        }
    };

    println!("expression   {src}");
    println!(
        "base input   {} ({}x{}, {} nnz)",
        input.label(),
        base.rows(),
        base.cols(),
        base.nnz()
    );
    println!("\niteration graph (outermost first):");
    for l in &w.graph().loops {
        let out = match l.output_pos {
            Some(p) => format!("output[{p}]"),
            None => "reduced".to_owned(),
        };
        println!(
            "  {:<4} {:?}  drivers={}  {}",
            l.var,
            l.kind,
            l.drivers.len(),
            out
        );
    }

    let lowered = w
        .lowered(8)
        .expect("workload construction validated lowering");
    println!("\nlowered program:");
    for (i, layer) in lowered.program.layers().iter().enumerate() {
        println!(
            "  layer {i}: {:?}  lanes={}  operands={}  callbacks={}",
            layer.mode,
            layer.tus.len(),
            layer.operands.len(),
            layer.callbacks.len()
        );
    }
    println!("  features: {:?}", features(&lowered.program));

    print!("\ncross-check  ");
    match w.verify() {
        Ok(()) => println!(
            "compiled program == interpreter ({} output entries)",
            w.oracle().len()
        ),
        Err(e) => {
            println!("FAILED: {e}");
            return ExitCode::FAILURE;
        }
    }

    println!("\nsimulating (baseline-sve vs tmu)...");
    let runner = Runner::new();
    let jobs = [
        Job::expression(src, input, EngineVariant::BaselineSve),
        Job::expression(src, input, EngineVariant::Tmu),
    ];
    let res = runner.run_all(&jobs);
    let (base_cy, tmu_cy) = (res[0].stats.cycles, res[1].stats.cycles);
    println!("  baseline-sve  {base_cy:>12} cycles");
    println!(
        "  tmu           {tmu_cy:>12} cycles  ({:.2}x)",
        base_cy as f64 / tmu_cy.max(1) as f64
    );
    ExitCode::SUCCESS
}
