//! Four-way "who wins where" comparison: the TMU against the IMP-style
//! prefetching baseline, the register-tiled BCSR software path
//! (`blocked-sve`) and the SAM-style streaming dataflow model
//! (`sam-stream`), across the Table 4 kernel shapes and compiled einsum
//! expressions (DESIGN.md §11).
//!
//! ```text
//! usage: matrix [spmv|spmm|spmspm|spkadd|pr|tc|expr ...]
//! ```
//!
//! With no arguments every shape runs; arguments select a subset (the CI
//! smoke runs `matrix spmv expr` at reduced `TMU_SCALE`). Cells a backend
//! cannot execute print `—`; every executed cell also lands in
//! `results/bench.json` as a schema-v3 row under figure `"matrix"`.

use std::process::ExitCode;

use tmu_bench::runner::{bench_row, EngineVariant, InputSpec, Job, Runner};
use tmu_bench::{geomean, Report};
use tmu_tensor::gen::InputId;

/// Column order of the comparison (and of the speedup summary).
const ENGINES: [EngineVariant; 4] = [
    EngineVariant::Tmu,
    EngineVariant::Imp,
    EngineVariant::BlockedSve,
    EngineVariant::SamStream,
];

const SPMV_EXPR: &str = "y(i) = A(i,j:csr) * x(j)";

/// One comparison row: a hand-written Table 4 kernel or a compiled einsum.
#[derive(Debug, Clone, Copy)]
enum Shape {
    Kernel(&'static str),
    Expr {
        label: &'static str,
        src: &'static str,
    },
}

const SHAPES: [Shape; 9] = [
    Shape::Kernel("SpMV"),
    Shape::Kernel("SpMM"),
    Shape::Kernel("SpMSpM"),
    Shape::Kernel("SpKAdd"),
    Shape::Kernel("PR"),
    Shape::Kernel("TC"),
    Shape::Expr {
        label: "spmv-expr",
        src: SPMV_EXPR,
    },
    Shape::Expr {
        label: "spmspm-expr",
        src: "Z(i,j) = A(i,k:csr) * B(k,j:csr)",
    },
    Shape::Expr {
        label: "spkadd-expr",
        src: "Z(i,j) = A(i,j:dcsr) + B(i,j:dcsr)",
    },
];

impl Shape {
    fn label(&self) -> &'static str {
        match self {
            Shape::Kernel(k) => k,
            Shape::Expr { label, .. } => label,
        }
    }

    fn job(&self, input: InputSpec, engine: EngineVariant) -> Job {
        match self {
            Shape::Kernel(k) => Job::new(k, input, engine),
            Shape::Expr { src, .. } => Job::expression(src, input, engine),
        }
    }

    /// Static support map. Submitting an unsupported combination would
    /// panic inside the runner and fail the whole report, so those cells
    /// print `—` instead of running.
    fn supports(&self, engine: EngineVariant) -> bool {
        match (engine, self) {
            (EngineVariant::Tmu, _) => true,
            (EngineVariant::Imp, Shape::Kernel(k)) => matches!(*k, "SpMV" | "SpMSpM"),
            (EngineVariant::Imp, Shape::Expr { .. }) => false,
            (EngineVariant::BlockedSve, Shape::Kernel(k)) => tmu_backends::blocked::supports(k),
            // The blocked path tiles exactly the SpMV gather shape.
            (EngineVariant::BlockedSve, Shape::Expr { src, .. }) => *src == SPMV_EXPR,
            (EngineVariant::SamStream, Shape::Kernel(k)) => tmu_backends::sam::supports(k),
            (EngineVariant::SamStream, Shape::Expr { .. }) => true,
            _ => false,
        }
    }
}

/// Maps CLI arguments to the shapes they select (`None` on a bad name).
fn select(args: &[String]) -> Option<Vec<Shape>> {
    if args.is_empty() {
        return Some(SHAPES.to_vec());
    }
    let mut out = Vec::new();
    for a in args {
        let a = a.to_ascii_lowercase();
        if a == "expr" {
            out.extend(
                SHAPES
                    .iter()
                    .filter(|s| matches!(s, Shape::Expr { .. }))
                    .copied(),
            );
            continue;
        }
        let kernel = SHAPES
            .iter()
            .find(|s| matches!(s, Shape::Kernel(k) if k.to_ascii_lowercase() == a))?;
        out.push(*kernel);
    }
    Some(out)
}

fn cell(c: Option<u64>) -> String {
    c.map_or_else(|| "—".to_owned(), |v| v.to_string())
}

fn body() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(shapes) = select(&args) else {
        eprintln!("usage: matrix [spmv|spmm|spmspm|spkadd|pr|tc|expr ...]");
        return ExitCode::from(2);
    };
    let input = InputSpec::Table6 {
        id: InputId::M3,
        scale: tmu_bench::scale(),
    };
    let runner = Runner::new();
    let mut report = Report::new(
        "matrix",
        "four-way engine comparison (tmu / imp / blocked-sve / sam-stream) on M3",
    );
    report.line(format!(
        "{:<13}{:>12}{:>12}{:>13}{:>13}  winner",
        "shape", "tmu(cyc)", "imp(cyc)", "blocked(cyc)", "sam(cyc)"
    ));

    // One flat batch so the runner's worker pool sees every job at once.
    let mut jobs = Vec::new();
    let mut slots: Vec<(usize, usize, usize)> = Vec::new();
    for (si, shape) in shapes.iter().enumerate() {
        for (ei, &engine) in ENGINES.iter().enumerate() {
            if shape.supports(engine) {
                slots.push((si, ei, jobs.len()));
                jobs.push(shape.job(input, engine));
            }
        }
    }
    let results = runner.run_all(&jobs);

    let mut vs_tmu: [Vec<f64>; 4] = Default::default();
    for (si, shape) in shapes.iter().enumerate() {
        let mut cells: [Option<u64>; 4] = [None; 4];
        for &(s, ei, ji) in &slots {
            if s == si {
                cells[ei] = Some(results[ji].stats.cycles);
                report.push_row(bench_row("matrix", "table5", &jobs[ji], &results[ji]));
            }
        }
        let tmu_cycles = cells[0].expect("the TMU runs every shape");
        for (col, c) in vs_tmu.iter_mut().zip(&cells) {
            if let Some(c) = c.filter(|c| *c > 0) {
                col.push(tmu_cycles as f64 / c as f64);
            }
        }
        let winner = ENGINES
            .iter()
            .zip(&cells)
            .filter_map(|(e, c)| c.filter(|c| *c > 0).map(|c| (c, e.label())))
            .min()
            .map_or("—", |(_, label)| label);
        report.line(format!(
            "{:<13}{:>12}{:>12}{:>13}{:>13}  {winner}",
            shape.label(),
            cell(cells[0]),
            cell(cells[1]),
            cell(cells[2]),
            cell(cells[3]),
        ));
    }

    report.line("");
    report.line("geomean speedup vs tmu on each engine's covered shapes (>1 beats the TMU):");
    for (engine, col) in ENGINES.iter().zip(&vs_tmu) {
        report.line(format!(
            "  {:<13}{:>6.2}x  ({} shape{})",
            engine.label(),
            geomean(col),
            col.len(),
            if col.len() == 1 { "" } else { "s" },
        ));
    }
    report.save();
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    tmu_bench::run_main(body)
}
