//! `serve` — the multi-tenant serving benchmark (DESIGN.md §10).
//!
//! Synthesizes an open-loop arrival trace of mixed jobs (Table 4 kernel
//! shapes plus einsum expressions), serves it on a pool of simulated
//! cores with preemptive TMU virtualization, and reports per-tenant
//! throughput and latency percentiles. Rows land in `results/bench.json`
//! (schema v2, `tenant` + latency fields).
//!
//! Environment knobs, each read once at startup:
//! * `TMU_TENANTS` — tenants in the synthetic trace (default 2).
//! * `TMU_SERVE_JOBS` — jobs in the trace (default 24).
//! * `TMU_SLOTS` — serving slots, i.e. simulated cores (default 2).
//! * `TMU_GAP` — mean inter-arrival gap in cycles (default 300; small
//!   against the ~1k-cycle jobs so the pool actually contends).
//! * `TMU_QUANTUM` — scheduling quantum in cycles (default 1000).
//! * `TMU_SEED` — arrival-trace seed (default 0xC0FFEE).
//! * `TMU_POLICY` — `round_robin`/`rr`, `weighted_fair`/`wf`,
//!   `edf`/`earliest_deadline`, or `both` (default) to run the same
//!   trace under round-robin and weighted-fair.
//! * `TMU_ARRIVALS` — inter-arrival distribution: `uniform` (default;
//!   traces byte-identical to the pre-Poisson binary) or `poisson`
//!   (seeded exponential gaps with the same mean).
//! * `TMU_APPS` — set to `1` to mix application-pipeline jobs
//!   (GNN / CG / PageRank DAGs) into the trace alongside kernels and
//!   expressions (default off).
//! * `TMU_CHAOS` — injected slot faults per 1 000 scheduling quanta
//!   (default 0: chaos off, output byte-identical to the
//!   pre-resilience binary).
//! * `TMU_RETRY_BUDGET` — retries a faulted job may consume before it
//!   lands in the typed `Failed` state (default 3).
//! * `TMU_CHECKPOINT_EVERY` — service cycles between periodic job
//!   checkpoints (default 0: checkpoint only on preemption).
//!
//! The serving simulation is a single-threaded discrete-event loop, so
//! the output is deterministic for a fixed seed regardless of
//! `TMU_JOBS` (which only sizes the figure runner's worker pool).

use tmu_bench::json::BenchRow;
use tmu_bench::runner::parse_pos_int;
use tmu_bench::Report;
use tmu_serve::{
    serve, synthesize, ArrivalKind, Policy, ResilienceConfig, ServeConfig, SlotFaultSpec,
    TraceConfig,
};

fn knob(name: &str, default: u64) -> u64 {
    let raw = std::env::var(name).ok();
    match parse_pos_int(name, raw.as_deref()) {
        Ok(Some(n)) => n,
        Ok(None) => default,
        Err(msg) => {
            eprintln!("warning: {msg}; using default {default}");
            default
        }
    }
}

fn policies() -> Vec<Policy> {
    match std::env::var("TMU_POLICY").ok().as_deref() {
        None | Some("both") | Some("") => vec![Policy::RoundRobin, Policy::WeightedFair],
        Some(s) => match Policy::parse(s) {
            Some(p) => vec![p],
            None => {
                eprintln!("warning: TMU_POLICY={s:?} is not a policy; running both");
                vec![Policy::RoundRobin, Policy::WeightedFair]
            }
        },
    }
}

fn main() -> std::process::ExitCode {
    tmu_bench::run_main(run)
}

fn run() -> std::process::ExitCode {
    let arrivals = match std::env::var("TMU_ARRIVALS").ok().as_deref() {
        None | Some("") | Some("uniform") => ArrivalKind::Uniform,
        Some("poisson") => ArrivalKind::Poisson,
        Some(s) => {
            eprintln!("warning: TMU_ARRIVALS={s:?} is not a distribution; using uniform");
            ArrivalKind::Uniform
        }
    };
    let trace_cfg = TraceConfig {
        tenants: knob("TMU_TENANTS", 2) as u32,
        jobs: knob("TMU_SERVE_JOBS", 24) as u32,
        seed: knob("TMU_SEED", 0xC0FFEE),
        mean_gap: knob("TMU_GAP", 300),
        arrivals,
        with_apps: knob("TMU_APPS", 0) != 0,
        ..TraceConfig::default()
    };
    let slots = knob("TMU_SLOTS", 2) as usize;
    let quantum = knob("TMU_QUANTUM", 1_000);
    let chaos_rate = knob("TMU_CHAOS", 0) as u32;
    let resilience = ResilienceConfig {
        slot_faults: if chaos_rate > 0 {
            SlotFaultSpec::with_rate(trace_cfg.seed ^ 0xC4A05, chaos_rate)
        } else {
            SlotFaultSpec::none()
        },
        retry_budget: knob("TMU_RETRY_BUDGET", 3) as u32,
        checkpoint_every: knob("TMU_CHECKPOINT_EVERY", 0),
        ..ResilienceConfig::default()
    };

    let mut report = Report::new("serve", "multi-tenant serving: throughput and latency");
    report.line(format!(
        "trace: {} jobs, {} tenants, seed {:#x}; pool: {} slot(s), quantum {} cycles",
        trace_cfg.jobs, trace_cfg.tenants, trace_cfg.seed, slots, quantum
    ));
    if chaos_rate > 0 {
        report.line(format!(
            "chaos: {chaos_rate}/1k slot-fault rate, retry budget {}, checkpoint every {} cycles",
            resilience.retry_budget, resilience.checkpoint_every
        ));
    }

    for policy in policies() {
        let cfg = ServeConfig {
            slots,
            quantum,
            policy,
            resilience,
            ..ServeConfig::default()
        };
        let trace = synthesize(&trace_cfg);
        let out = match serve(cfg, trace) {
            Ok(out) => out,
            Err(e) => {
                eprintln!("serve: {policy:?} run failed: {e}");
                return std::process::ExitCode::FAILURE;
            }
        };
        report.line("");
        report.line(format!(
            "policy {}: makespan {} cycles, {} preemption(s), builds {} miss / {} hit",
            policy.label(),
            out.makespan,
            out.preemptions,
            out.build_misses,
            out.build_hits
        ));
        // Resilience summary and per-tenant fault lines appear only when
        // something actually faulted/shed, so a chaos-off run's report
        // stays byte-identical to the pre-resilience binary.
        if out.slot_faults.injected > 0
            || !out.failed.is_empty()
            || out.shed_total() > 0
            || out.checkpoints > 0
        {
            report.line(format!(
                "  resilience: {} slot fault(s) ({} crash / {} hang / {} degrade), \
                 {} retry(ies), {} failed, {} shed, {} checkpoint(s) ({} cycles), \
                 {} breaker open(s)",
                out.slot_faults.injected,
                out.slot_faults.crashes,
                out.slot_faults.hangs,
                out.slot_faults.degrades,
                out.retries_total(),
                out.failed.len(),
                out.shed_total(),
                out.checkpoints,
                out.checkpoint_cycles_total(),
                out.breaker_opens
            ));
        }
        report.line(format!(
            "  {:<8} {:>5} {:>4} {:>12} {:>10} {:>10} {:>10}",
            "tenant", "done", "rej", "thr/Mcyc", "p50", "p95", "p99"
        ));
        for t in tmu_serve::tenant_reports(
            &out.outcomes,
            &out.failed,
            &out.rejected,
            &out.retries,
            out.makespan,
        ) {
            report.line(format!(
                "  tenant{:<2} {:>5} {:>4} {:>12.3} {:>10} {:>10} {:>10}",
                t.tenant,
                t.completed,
                t.rejected,
                t.throughput_per_mcycle,
                t.sojourn.p50,
                t.sojourn.p95,
                t.sojourn.p99
            ));
            if t.failed > 0 || t.retries > 0 || t.deadline_misses > 0 {
                report.line(format!(
                    "  tenant{:<2}   {} retry(ies), {} failed, {} deadline miss(es)",
                    t.tenant, t.retries, t.failed, t.deadline_misses
                ));
            }
            let queue_cycles: u64 = out
                .outcomes
                .iter()
                .filter(|o| o.tenant == t.tenant)
                .map(|o| o.queue_cycles())
                .sum();
            report.push_row(BenchRow {
                figure: "serve".into(),
                kernel: "mix".into(),
                input: format!(
                    "j{}t{}s{:x}",
                    trace_cfg.jobs, trace_cfg.tenants, trace_cfg.seed
                ),
                engine: format!("serve-{}", policy.label()),
                machine: "table5".into(),
                cycles: out.makespan,
                tenant: Some(format!("tenant{}", t.tenant)),
                queue_cycles,
                service_cycles: t.service_cycles,
                lat_p50: t.sojourn.p50,
                lat_p95: t.sojourn.p95,
                lat_p99: t.sojourn.p99,
                retries: t.retries,
                deadline_miss: t.deadline_misses,
                shed: t.rejected,
                checkpoint_cycles: out.checkpoint_cycles.get(&t.tenant).copied().unwrap_or(0),
                ..BenchRow::default()
            });
        }
    }
    report.save();
    std::process::ExitCode::SUCCESS
}
