//! Regenerates the paper artifact `table06` (see DESIGN.md §4).

fn main() {
    tmu_bench::figs::table06();
    tmu_bench::runner::exit_if_failed();
}
