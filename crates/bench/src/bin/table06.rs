//! Regenerates the paper artifact `table06` (see DESIGN.md §4).

fn main() -> std::process::ExitCode {
    tmu_bench::run_main(tmu_bench::figs::table06)
}
