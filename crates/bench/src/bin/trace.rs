//! Traces one runner-grid job and writes Chrome trace-event JSON.
//! Thin wrapper over [`tmu_bench::tracecli`] — see that module for the
//! argument grammar and output format.

fn main() -> std::process::ExitCode {
    tmu_bench::run_main(|| {
        let args: Vec<String> = std::env::args().skip(1).collect();
        tmu_bench::tracecli::main(&args)
    })
}
