//! Regenerates the paper artifact `verify_all` (see DESIGN.md §4).

fn main() -> std::process::ExitCode {
    tmu_bench::run_main(tmu_bench::figs::verify_all)
}
