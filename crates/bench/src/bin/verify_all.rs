//! Regenerates the paper artifact `verify_all` (see DESIGN.md §4).

fn main() {
    tmu_bench::figs::verify_all();
    tmu_bench::runner::exit_if_failed();
}
