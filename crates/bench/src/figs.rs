//! Per-figure harness logic (one function per paper artifact).
//!
//! Every figure builds its job list and dispatches it through the shared
//! [`Runner`]: batches execute across the worker pool, and the runner's
//! memo cache coalesces the (baseline, TMU) pairs Figures 10–13 and 15
//! have in common, so `all_figures` simulates each pair exactly once.

use std::collections::HashMap;
use std::sync::Arc;

use tmu::{area::area, TmuConfig};
use tmu_kernels::spkadd::Spkadd;
use tmu_kernels::workload::{KernelKind, Workload};
use tmu_sim::{configs, Roofline};
use tmu_tensor::gen::{self, InputId, ScaledInput};

use crate::runner::{
    bench_row, default_workers, parallel_map, EngineVariant, InputSpec, Job, RunResult, Runner,
};
use crate::{
    geomean, matrix_workload, scale, tensor_workload, Report, MATRIX_KERNELS, TENSOR_KERNELS,
};

fn inputs_for(kernel: &str) -> &'static [InputId] {
    if MATRIX_KERNELS.contains(&kernel) {
        &InputId::MATRICES
    } else {
        &InputId::TENSORS
    }
}

fn all_kernels() -> Vec<&'static str> {
    MATRIX_KERNELS
        .iter()
        .chain(&TENSOR_KERNELS)
        .copied()
        .collect()
}

/// One (baseline, TMU) measurement of a kernel on an input.
#[derive(Debug, Clone, Copy)]
pub struct PairRef<'a> {
    /// Workload category.
    pub kind: KernelKind,
    /// Baseline run.
    pub base: &'a RunResult,
    /// TMU-accelerated run.
    pub tmu: &'a RunResult,
}

impl PairRef<'_> {
    /// Speedup of the TMU version.
    pub fn speedup(&self) -> f64 {
        self.base.stats.cycles as f64 / self.tmu.stats.cycles.max(1) as f64
    }
}

/// The (baseline, TMU) pair grid of a set of kernels over their Table 6
/// inputs, computed in one batch through the runner.
#[derive(Debug)]
pub struct PairGrid {
    jobs: Vec<Job>,
    results: Vec<Arc<RunResult>>,
    index: HashMap<(&'static str, &'static str), usize>,
}

impl PairGrid {
    /// Batches and runs baseline+TMU jobs for `kernels` × their inputs.
    pub fn compute(runner: &Runner, kernels: &[&'static str]) -> Self {
        let mut jobs = Vec::new();
        let mut index = HashMap::new();
        for &kernel in kernels {
            for &input in inputs_for(kernel) {
                index.insert((kernel, input.label()), jobs.len() / 2);
                jobs.push(Job::baseline(kernel, input, scale()));
                jobs.push(Job::tmu(kernel, input, scale()));
            }
        }
        let results = runner.run_all(&jobs);
        Self {
            jobs,
            results,
            index,
        }
    }

    /// The pair of `kernel` on `input`.
    pub fn pair(&self, kernel: &'static str, input: InputId) -> PairRef<'_> {
        let i = self.index[&(kernel, input.label())];
        PairRef {
            kind: self.results[2 * i].kind,
            base: &self.results[2 * i],
            tmu: &self.results[2 * i + 1],
        }
    }

    /// Appends every run of the grid as a `bench.json` row of `report`.
    pub fn record(&self, report: &mut Report) {
        record_rows(report, "table5", &self.jobs, &self.results);
    }
}

fn record_rows(report: &mut Report, machine: &str, jobs: &[Job], results: &[Arc<RunResult>]) {
    for (job, res) in jobs.iter().zip(results) {
        report.push_row(bench_row(report.name(), machine, job, res));
    }
}

/// Figure 3: motivation stall breakdown on the two profiled processors.
pub fn fig03(runner: &Runner) {
    let mut report = Report::new(
        "fig03",
        "normalized cycles stalling (frontend/backend) on A64FX-like vs Graviton3-like",
    );
    let machines = [
        ("A64FX", configs::a64fx_like()),
        ("Graviton3", configs::graviton3_like()),
    ];
    let mut jobs = Vec::new();
    for kernel in ["SpMV", "SpMSpM", "SpKAdd"] {
        for input in InputId::MATRICES {
            for (_, cfg) in machines {
                jobs.push(Job::baseline(kernel, input, scale()).with_sys(cfg));
            }
        }
    }
    let results = runner.run_all(&jobs);
    report.line(format!(
        "{:<10}{:<8}{:<12}{:>9}{:>9}{:>9}",
        "kernel", "input", "machine", "commit", "frontend", "backend"
    ));
    let mut i = 0;
    for kernel in ["SpMV", "SpMSpM", "SpKAdd"] {
        for input in InputId::MATRICES {
            for (mach, _) in machines {
                let stats = &results[i].stats;
                let (c, f, b) = stats.breakdown();
                report.line(format!(
                    "{:<10}{:<8}{:<12}{:>9.2}{:>9.2}{:>9.2}",
                    kernel,
                    input.label(),
                    mach,
                    c,
                    f,
                    b
                ));
                report.push_row(bench_row("fig03", mach, &jobs[i], &results[i]));
                i += 1;
            }
        }
    }
    report.line("");
    report.line("expected qualitative shape (paper §3):");
    report.line("  - SpKAdd: frontend-stall dominated, worse on the narrow A64FX core");
    report.line("  - SpMV:   backend-stall dominated; better backend on Graviton3 (bigger caches)");
    report.line("  - SpMSpM: largest committing share of the three");
    report.save();
}

/// Table 6: the synthetic stand-in inputs and their statistics.
pub fn table06() {
    let mut report = Report::new("table06", "inputs (synthetic stand-ins for Table 6)");
    report.line(format!(
        "{:<5}{:<16}{:>10}{:>10}{:>10}  {}",
        "id", "stands for", "nnz", "rows", "nnz/row", "domain"
    ));
    // Generation is deterministic per input, so building the stand-ins on
    // the worker pool keeps the report text stable.
    let matrices = parallel_map(&InputId::MATRICES, default_workers(), |id| {
        ScaledInput::new(*id).with_scale(scale()).matrix()
    });
    for (id, m) in InputId::MATRICES.iter().zip(&matrices) {
        report.line(format!(
            "{:<5}{:<16}{:>10}{:>10}{:>10.1}  {}",
            id.label(),
            id.paper_name(),
            m.nnz(),
            m.rows(),
            m.nnz() as f64 / m.rows() as f64,
            id.domain()
        ));
    }
    report.line(format!(
        "{:<5}{:<16}{:>10}  {:<24}{}",
        "id", "stands for", "nnz", "dims", "domain"
    ));
    let tensors = parallel_map(&InputId::TENSORS, default_workers(), |id| {
        ScaledInput::new(*id).with_scale(scale()).tensor()
    });
    for (id, t) in InputId::TENSORS.iter().zip(&tensors) {
        report.line(format!(
            "{:<5}{:<16}{:>10}  {:<24}{}",
            id.label(),
            id.paper_name(),
            t.nnz(),
            format!("{:?}", t.dims()),
            id.domain()
        ));
    }
    report.save();
}

/// Figure 10: TMU speedups over the vectorized baselines.
pub fn fig10(runner: &Runner) {
    let grid = PairGrid::compute(runner, &all_kernels());
    let mut report = Report::new("fig10", "TMU speedup over vectorized baseline");
    let mut by_kind: HashMap<&str, Vec<f64>> = HashMap::new();
    let mut per_kernel: Vec<(String, f64)> = Vec::new();
    report.line(format!(
        "{:<12}{:<6}{:>12}{:>12}{:>9}",
        "kernel", "input", "base(cyc)", "tmu(cyc)", "speedup"
    ));
    for &kernel in MATRIX_KERNELS.iter().chain(&TENSOR_KERNELS) {
        let mut speedups = Vec::new();
        for &input in inputs_for(kernel) {
            let pair = grid.pair(kernel, input);
            let s = pair.speedup();
            speedups.push(s);
            let kind_key = match pair.kind {
                KernelKind::MemoryIntensive => "memory",
                KernelKind::ComputeIntensive => "compute",
                KernelKind::MergeIntensive => "merge",
            };
            by_kind.entry(kind_key).or_default().push(s);
            report.line(format!(
                "{:<12}{:<6}{:>12}{:>12}{:>8.2}x",
                kernel,
                input.label(),
                pair.base.stats.cycles,
                pair.tmu.stats.cycles,
                s
            ));
        }
        per_kernel.push((kernel.to_owned(), geomean(&speedups)));
    }
    report.line("");
    report.line("geomean speedup per kernel (paper: SpMV 3.32x, SpMSpM 2.82x, SpKAdd 6.98x,");
    report
        .line("  PR 2.74x, TC 4.56x, MTTKRP_MP 3.76x, MTTKRP_CP 4.01x, CP-ALS 2.88x, SpTC 3.79x):");
    for (k, g) in &per_kernel {
        report.line(format!("  {k:<12}{g:>6.2}x"));
    }
    report.line("");
    report.line("geomean per category (paper: 3.58x memory, 2.82x compute, 4.94x merge):");
    for kind in ["memory", "compute", "merge"] {
        if let Some(v) = by_kind.get(kind) {
            report.line(format!("  {kind:<10}{:>6.2}x", geomean(v)));
        }
    }
    grid.record(&mut report);
    report.save();
}

/// Figure 11: normalized cycle breakdown and load-to-use latency for
/// baseline (B) vs TMU (T).
pub fn fig11(runner: &Runner) {
    let grid = PairGrid::compute(runner, &all_kernels());
    let mut report = Report::new(
        "fig11",
        "cycle breakdown (committing/frontend/backend) and avg load-to-use latency",
    );
    report.line(format!(
        "{:<12}{:<6}{:<4}{:>9}{:>9}{:>9}{:>9}",
        "kernel", "input", "ver", "commit", "frontend", "backend", "l2u(cyc)"
    ));
    for &kernel in MATRIX_KERNELS.iter().chain(&TENSOR_KERNELS) {
        for &input in inputs_for(kernel) {
            let pair = grid.pair(kernel, input);
            for (tag, stats) in [("B", &pair.base.stats), ("T", &pair.tmu.stats)] {
                let (c, f, b) = stats.breakdown();
                report.line(format!(
                    "{:<12}{:<6}{:<4}{:>9.2}{:>9.2}{:>9.2}{:>9.1}",
                    kernel,
                    input.label(),
                    tag,
                    c,
                    f,
                    b,
                    stats.avg_load_to_use()
                ));
            }
        }
    }
    report.line("");
    report.line("expected shape (paper §7.1): TMU slashes backend stalls and load-to-use on");
    report.line("memory-intensive rows, and frontend stalls on merge-intensive rows.");
    grid.record(&mut report);
    report.save();
}

/// Figure 12: roofline models.
pub fn fig12(runner: &Runner) {
    let grid = PairGrid::compute(runner, &all_kernels());
    let cfg = configs::neoverse_n1_system();
    let roof = Roofline::for_machine(
        cfg.cores(),
        cfg.core.sve_lanes(),
        cfg.core.freq_ghz,
        cfg.mem.dram.peak_bytes_per_cycle() * cfg.core.freq_ghz,
    );
    let mut report = Report::new(
        "fig12",
        "roofline models (a: all workloads; b/c/d: SpMV, SpMSpM, SpKAdd)",
    );
    report.line(format!(
        "machine: peak {:.1} GFLOP/s, peak {:.1} GB/s, ridge at {:.2} flop/byte",
        roof.peak_gflops,
        roof.peak_bandwidth_gbs,
        roof.ridge()
    ));
    report.line("");
    report.line(
        "(a) geomean per workload — TC and SpTC excluded (integer/symbolic, as in the paper)",
    );
    report.line(format!(
        "{:<12}{:<4}{:>12}{:>12}{:>10}",
        "kernel", "ver", "AI(f/B)", "GFLOP/s", "GB/s"
    ));
    for &kernel in MATRIX_KERNELS.iter().chain(&TENSOR_KERNELS) {
        if kernel == "TC" || kernel == "SpTC" {
            continue;
        }
        let mut pts: HashMap<&str, Vec<(f64, f64, f64)>> = HashMap::new();
        for &input in inputs_for(kernel) {
            let pair = grid.pair(kernel, input);
            for (tag, stats) in [("B", &pair.base.stats), ("T", &pair.tmu.stats)] {
                pts.entry(tag).or_default().push((
                    stats.arithmetic_intensity(),
                    stats.gflops(),
                    stats.bandwidth_gbs(),
                ));
            }
        }
        for tag in ["B", "T"] {
            let v = &pts[tag];
            let ai = geomean(&v.iter().map(|p| p.0).collect::<Vec<_>>());
            let gf = geomean(&v.iter().map(|p| p.1).collect::<Vec<_>>());
            let bw = geomean(&v.iter().map(|p| p.2).collect::<Vec<_>>());
            report.line(format!(
                "{kernel:<12}{tag:<4}{ai:>12.3}{gf:>12.2}{bw:>10.1}"
            ));
        }
    }
    for (panel, kernel) in [("b", "SpMV"), ("c", "SpMSpM"), ("d", "SpKAdd")] {
        report.line("");
        report.line(format!("({panel}) {kernel} — every input"));
        report.line(format!(
            "{:<6}{:<4}{:>12}{:>12}{:>10}",
            "input", "ver", "AI(f/B)", "GFLOP/s", "GB/s"
        ));
        for &input in &InputId::MATRICES {
            let pair = grid.pair(kernel, input);
            for (tag, stats) in [("B", &pair.base.stats), ("T", &pair.tmu.stats)] {
                report.line(format!(
                    "{:<6}{:<4}{:>12.3}{:>12.2}{:>10.1}",
                    input.label(),
                    tag,
                    stats.arithmetic_intensity(),
                    stats.gflops(),
                    stats.bandwidth_gbs()
                ));
            }
        }
    }
    // (c) extra: the fixed-nnz/row compute ceilings.
    report.line("");
    report.line("(c) SpMSpM synthetic ceilings: n nnz/row at columns 0..n-1 (ideal locality)");
    let ceiling_jobs: Vec<Job> = [1usize, 8, 64]
        .iter()
        .map(|&n| {
            // The product of a fixed-row matrix with its transpose grows with
            // rows² · n — a small row count already saturates the compute
            // ceiling, so cap it to keep the run quadratic-safe.
            let rows = (((8192.0 * scale()) as usize).max(256)).min(16_384 / n.max(1));
            Job::new(
                "SpMSpM",
                InputSpec::FixedRow { rows, n, seed: 7 },
                EngineVariant::Tmu,
            )
        })
        .collect();
    let ceiling_runs = runner.run_all(&ceiling_jobs);
    for (n, run) in [1usize, 8, 64].iter().zip(&ceiling_runs) {
        report.line(format!(
            "  n={n:<4} TMU: {:>8.2} GFLOP/s at AI {:.3}",
            run.stats.gflops(),
            run.stats.arithmetic_intensity()
        ));
    }
    grid.record(&mut report);
    record_rows(&mut report, "table5", &ceiling_jobs, &ceiling_runs);
    report.save();
}

/// Figure 13: read-to-write ratio of the outQ per workload.
pub fn fig13(runner: &Runner) {
    let grid = PairGrid::compute(runner, &all_kernels());
    let mut report = Report::new(
        "fig13",
        "outQ read-to-write ratio (core read time / TMU write time; <1 = core faster)",
    );
    report.line(format!("{:<12}{:>8}", "kernel", "ratio"));
    for &kernel in MATRIX_KERNELS.iter().chain(&TENSOR_KERNELS) {
        let mut ratios = Vec::new();
        for &input in inputs_for(kernel) {
            let pair = grid.pair(kernel, input);
            let r = pair.tmu.read_to_write_ratio();
            if r > 0.0 {
                ratios.push(r);
            }
        }
        report.line(format!("{:<12}{:>8.2}", kernel, geomean(&ratios)));
    }
    report.line("");
    report.line("paper shape: TC/SpMV/MTTKRP below one (merge offloaded / regular compute);");
    report.line("SpKAdd/SpTC near one; SpMSpM/PR/CP-ALS above one (core-side bottleneck).");
    grid.record(&mut report);
    report.save();
}

/// Figure 14: sensitivity to engine storage and SVE vector length.
pub fn fig14(runner: &Runner) {
    let mut report = Report::new(
        "fig14",
        "speedup heatmap vs engine storage {4,8,16,32}KB x SVE {128,256,512}b, normalized to 16KB/512b",
    );
    let workloads = [("SpMV", scale()), ("SpMSpM", (scale() * 0.5).max(0.05))];
    for (name, wl_scale) in workloads {
        report.line(format!("{name}:"));
        report.line(format!(
            "{:<10}{:>10}{:>10}{:>10}{:>10}",
            "SVE", "4KB", "8KB", "16KB", "32KB"
        ));
        let mut jobs = Vec::new();
        for sve in [128u32, 256, 512] {
            for kb in [4usize, 8, 16, 32] {
                jobs.push(
                    Job::tmu(name, InputId::M3, wl_scale)
                        .with_sys(configs::neoverse_n1_with_sve(sve))
                        .with_tmu(
                            TmuConfig::paper()
                                .for_sve_bits(sve)
                                .with_total_storage(kb << 10),
                        ),
                );
            }
        }
        let results = runner.run_all(&jobs);
        // Normalization reference: 512-bit SVE at 16 KB (row 2, col 2).
        let reference_cycles = results[2 * 4 + 2].stats.cycles;
        for (r, sve) in [128u32, 256, 512].iter().enumerate() {
            let cells: Vec<String> = (0..4)
                .map(|c| {
                    let cycles = results[r * 4 + c].stats.cycles as f64;
                    format!("{:>10.2}", reference_cycles as f64 / cycles)
                })
                .collect();
            report.line(format!("{:<10}{}", format!("{sve}b"), cells.join("")));
        }
        report.line("");
        for (r, sve) in [128u32, 256, 512].iter().enumerate() {
            for c in 0..4 {
                let i = r * 4 + c;
                report.push_row(bench_row(
                    "fig14",
                    &format!("sve{sve}"),
                    &jobs[i],
                    &results[i],
                ));
            }
        }
    }
    report.line("paper shape: SpMV gains from storage (more MLP), little from SVE width;");
    report.line("SpMSpM gains from SVE width (core-side bottleneck), little from storage.");
    report.save();
}

/// Figure 15: IMP and Single-Lane comparison.
pub fn fig15(runner: &Runner) {
    let grid = PairGrid::compute(runner, &["SpMV", "SpMSpM"]);
    let mut extra_jobs = Vec::new();
    for kernel in ["SpMV", "SpMSpM"] {
        for input in InputId::MATRICES {
            let spec = InputSpec::Table6 {
                id: input,
                scale: scale(),
            };
            extra_jobs.push(Job::new(kernel, spec, EngineVariant::Imp));
            extra_jobs.push(Job::new(kernel, spec, EngineVariant::SingleLane));
        }
    }
    let extra = runner.run_all(&extra_jobs);
    let mut report = Report::new(
        "fig15",
        "speedup of IMP, Single-Lane TMU and full TMU over baseline (SpMV, SpMSpM)",
    );
    report.line(format!(
        "{:<10}{:<6}{:>8}{:>13}{:>8}",
        "kernel", "input", "IMP", "Single-Lane", "TMU"
    ));
    let mut geo: HashMap<(&str, &str), Vec<f64>> = HashMap::new();
    let mut i = 0;
    for kernel in ["SpMV", "SpMSpM"] {
        for input in InputId::MATRICES {
            let pair = grid.pair(kernel, input);
            let base_cycles = pair.base.stats.cycles;
            let tmu_s = pair.speedup();
            let imp_s = base_cycles as f64 / extra[i].stats.cycles.max(1) as f64;
            let single_s = base_cycles as f64 / extra[i + 1].stats.cycles.max(1) as f64;
            i += 2;
            geo.entry((kernel, "imp")).or_default().push(imp_s);
            geo.entry((kernel, "single")).or_default().push(single_s);
            geo.entry((kernel, "tmu")).or_default().push(tmu_s);
            report.line(format!(
                "{:<10}{:<6}{:>7.2}x{:>12.2}x{:>7.2}x",
                kernel,
                input.label(),
                imp_s,
                single_s,
                tmu_s
            ));
        }
    }
    report.line("");
    report.line("geomeans (paper: Single-Lane 1.59x/1.50x, TMU 3.32x/2.82x, IMP 1.25x on SpMV):");
    for kernel in ["SpMV", "SpMSpM"] {
        report.line(format!(
            "  {kernel:<8} IMP {:>5.2}x  Single-Lane {:>5.2}x  TMU {:>5.2}x",
            geomean(&geo[&(kernel, "imp")]),
            geomean(&geo[&(kernel, "single")]),
            geomean(&geo[&(kernel, "tmu")])
        ));
    }
    grid.record(&mut report);
    record_rows(&mut report, "table5", &extra_jobs, &extra);
    report.save();
}

/// §6 area analysis.
pub fn area_report() {
    let mut report = Report::new(
        "area",
        "TMU area model (22nm FD-SOI, calibrated to the paper's RTL)",
    );
    let r = area(&TmuConfig::paper());
    report.line(format!(
        "lane:            {:>8.4} mm²  (paper: 0.0080 mm²)",
        r.lane_mm2
    ));
    report.line(format!("8 lanes:         {:>8.4} mm²", r.lanes_mm2));
    report.line(format!("mergers (4 TGs): {:>8.4} mm²", r.mergers_mm2));
    report.line(format!("arbiter+control: {:>8.4} mm²", r.arbiter_mm2));
    report.line(format!(
        "total:           {:>8.4} mm²  (paper: 0.0704 mm²)",
        r.total_mm2
    ));
    report.line(format!(
        "fraction of a Neoverse N1 core: {:.2}%  (paper: 1.52%)",
        r.percent_of_n1_core
    ));
    report.line("");
    report.line("design-space scaling (Figure 14 configurations):");
    for sve in [128u32, 256, 512] {
        for kb in [4usize, 8, 16, 32] {
            let cfg = TmuConfig::paper()
                .for_sve_bits(sve)
                .with_total_storage(kb << 10);
            let r = area(&cfg);
            report.line(format!(
                "  {:>4}b SVE, {:>2} KB: {:>7.4} mm² ({:>4.2}% of core)",
                sve, kb, r.total_mm2, r.percent_of_n1_core
            ));
        }
    }
    report.save();
}

fn build(kernel: &str, input: InputId) -> Box<dyn Workload> {
    if InputId::MATRICES.contains(&input) {
        matrix_workload(kernel, input)
    } else {
        tensor_workload(kernel, input)
    }
}

/// Verification sweep: every workload's TMU functional result vs reference.
pub fn verify_all() {
    let mut report = Report::new(
        "verify",
        "functional verification of every kernel/input pair",
    );
    let combos: Vec<(&'static str, InputId)> = all_kernels()
        .into_iter()
        .flat_map(|kernel| inputs_for(kernel).iter().map(move |&input| (kernel, input)))
        .collect();
    // Functional checks are independent; run them on the worker pool and
    // report in combo order.
    let lines = parallel_map(&combos, default_workers(), |&(kernel, input)| {
        let w = build(kernel, input);
        match w.verify() {
            Ok(()) => format!("ok   {kernel} on {}", input.label()),
            Err(e) => format!("FAIL {kernel} on {}: {e}", input.label()),
        }
    });
    for line in lines {
        report.line(line);
    }
    report.save();
}

/// SpKAdd workload helper used by the criterion benches.
pub fn quick_spkadd() -> Spkadd {
    Spkadd::new(&gen::uniform(512, 128, 4, 3))
}
