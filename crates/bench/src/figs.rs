//! Per-figure harness logic (one function per paper artifact).
//!
//! Figures 10–13 share the same underlying (baseline, TMU) run pairs, so
//! a [`RunCache`] memoizes them; `all_figures` reuses one cache across
//! every figure.

use std::collections::HashMap;

use tmu::{area::area, TmuConfig};
use tmu_kernels::spkadd::Spkadd;
use tmu_kernels::spmspm::Spmspm;
use tmu_kernels::spmv::Spmv;
use tmu_kernels::workload::{KernelKind, TmuRun, Workload};
use tmu_sim::{configs, Roofline, RunStats};
use tmu_tensor::gen::{self, InputId, ScaledInput};

use crate::{geomean, matrix_workload, scale, tensor_workload, Report, MATRIX_KERNELS, TENSOR_KERNELS};

/// One (baseline, TMU) measurement of a kernel on an input.
#[derive(Debug)]
pub struct PairResult {
    /// Workload category.
    pub kind: KernelKind,
    /// Baseline run.
    pub base: RunStats,
    /// TMU-accelerated run.
    pub tmu: TmuRun,
}

impl PairResult {
    /// Speedup of the TMU version.
    pub fn speedup(&self) -> f64 {
        self.base.cycles as f64 / self.tmu.stats.cycles.max(1) as f64
    }
}

/// Memoized (kernel, input) run pairs.
#[derive(Default)]
pub struct RunCache {
    map: HashMap<(String, &'static str), PairResult>,
}

impl std::fmt::Debug for RunCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "RunCache({} entries)", self.map.len())
    }
}

impl RunCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    fn build(kernel: &str, input: InputId) -> Box<dyn Workload> {
        if InputId::MATRICES.contains(&input) {
            matrix_workload(kernel, input)
        } else {
            tensor_workload(kernel, input)
        }
    }

    /// Returns (computing if needed) the run pair of `kernel` on `input`.
    pub fn pair(&mut self, kernel: &str, input: InputId) -> &PairResult {
        let key = (kernel.to_owned(), input.label());
        self.map.entry(key).or_insert_with(|| {
            eprintln!("  [run] {kernel} on {}", input.label());
            let w = Self::build(kernel, input);
            let cfg = configs::neoverse_n1_system();
            let base = w.run_baseline(cfg);
            let tmu = w.run_tmu(cfg, TmuConfig::paper());
            PairResult {
                kind: w.kind(),
                base,
                tmu,
            }
        })
    }
}

fn inputs_for(kernel: &str) -> &'static [InputId] {
    if MATRIX_KERNELS.contains(&kernel) {
        &InputId::MATRICES
    } else {
        &InputId::TENSORS
    }
}

/// Figure 3: motivation stall breakdown on the two profiled processors.
pub fn fig03() {
    let mut report = Report::new(
        "fig03",
        "normalized cycles stalling (frontend/backend) on A64FX-like vs Graviton3-like",
    );
    report.line(format!(
        "{:<10}{:<8}{:<12}{:>9}{:>9}{:>9}",
        "kernel", "input", "machine", "commit", "frontend", "backend"
    ));
    for kernel in ["SpMV", "SpMSpM", "SpKAdd"] {
        for input in InputId::MATRICES {
            for (mach, cfg) in [
                ("A64FX", configs::a64fx_like()),
                ("Graviton3", configs::graviton3_like()),
            ] {
                let w = matrix_workload(kernel, input);
                let stats = w.run_baseline(cfg);
                let (c, f, b) = stats.breakdown();
                report.line(format!(
                    "{:<10}{:<8}{:<12}{:>9.2}{:>9.2}{:>9.2}",
                    kernel,
                    input.label(),
                    mach,
                    c,
                    f,
                    b
                ));
            }
        }
    }
    report.line("");
    report.line("expected qualitative shape (paper §3):");
    report.line("  - SpKAdd: frontend-stall dominated, worse on the narrow A64FX core");
    report.line("  - SpMV:   backend-stall dominated; better backend on Graviton3 (bigger caches)");
    report.line("  - SpMSpM: largest committing share of the three");
    report.save();
}

/// Table 6: the synthetic stand-in inputs and their statistics.
pub fn table06() {
    let mut report = Report::new("table06", "inputs (synthetic stand-ins for Table 6)");
    report.line(format!(
        "{:<5}{:<16}{:>10}{:>10}{:>10}  {}",
        "id", "stands for", "nnz", "rows", "nnz/row", "domain"
    ));
    for id in InputId::MATRICES {
        let m = ScaledInput::new(id).with_scale(scale()).matrix();
        report.line(format!(
            "{:<5}{:<16}{:>10}{:>10}{:>10.1}  {}",
            id.label(),
            id.paper_name(),
            m.nnz(),
            m.rows(),
            m.nnz() as f64 / m.rows() as f64,
            id.domain()
        ));
    }
    report.line(format!("{:<5}{:<16}{:>10}  {:<24}{}", "id", "stands for", "nnz", "dims", "domain"));
    for id in InputId::TENSORS {
        let t = ScaledInput::new(id).with_scale(scale()).tensor();
        report.line(format!(
            "{:<5}{:<16}{:>10}  {:<24}{}",
            id.label(),
            id.paper_name(),
            t.nnz(),
            format!("{:?}", t.dims()),
            id.domain()
        ));
    }
    report.save();
}

/// Figure 10: TMU speedups over the vectorized baselines.
pub fn fig10(cache: &mut RunCache) {
    let mut report = Report::new("fig10", "TMU speedup over vectorized baseline");
    let mut by_kind: HashMap<&str, Vec<f64>> = HashMap::new();
    let mut per_kernel: Vec<(String, f64)> = Vec::new();
    report.line(format!(
        "{:<12}{:<6}{:>12}{:>12}{:>9}",
        "kernel", "input", "base(cyc)", "tmu(cyc)", "speedup"
    ));
    for &kernel in MATRIX_KERNELS.iter().chain(&TENSOR_KERNELS) {
        let mut speedups = Vec::new();
        for &input in inputs_for(kernel) {
            let pair = cache.pair(kernel, input);
            let s = pair.speedup();
            speedups.push(s);
            let kind_key = match pair.kind {
                KernelKind::MemoryIntensive => "memory",
                KernelKind::ComputeIntensive => "compute",
                KernelKind::MergeIntensive => "merge",
            };
            by_kind.entry(kind_key).or_default().push(s);
            report.line(format!(
                "{:<12}{:<6}{:>12}{:>12}{:>8.2}x",
                kernel,
                input.label(),
                pair.base.cycles,
                pair.tmu.stats.cycles,
                s
            ));
        }
        per_kernel.push((kernel.to_owned(), geomean(&speedups)));
    }
    report.line("");
    report.line("geomean speedup per kernel (paper: SpMV 3.32x, SpMSpM 2.82x, SpKAdd 6.98x,");
    report.line("  PR 2.74x, TC 4.56x, MTTKRP_MP 3.76x, MTTKRP_CP 4.01x, CP-ALS 2.88x, SpTC 3.79x):");
    for (k, g) in &per_kernel {
        report.line(format!("  {k:<12}{g:>6.2}x"));
    }
    report.line("");
    report.line("geomean per category (paper: 3.58x memory, 2.82x compute, 4.94x merge):");
    for kind in ["memory", "compute", "merge"] {
        if let Some(v) = by_kind.get(kind) {
            report.line(format!("  {kind:<10}{:>6.2}x", geomean(v)));
        }
    }
    report.save();
}

/// Figure 11: normalized cycle breakdown and load-to-use latency for
/// baseline (B) vs TMU (T).
pub fn fig11(cache: &mut RunCache) {
    let mut report = Report::new(
        "fig11",
        "cycle breakdown (committing/frontend/backend) and avg load-to-use latency",
    );
    report.line(format!(
        "{:<12}{:<6}{:<4}{:>9}{:>9}{:>9}{:>9}",
        "kernel", "input", "ver", "commit", "frontend", "backend", "l2u(cyc)"
    ));
    for &kernel in MATRIX_KERNELS.iter().chain(&TENSOR_KERNELS) {
        for &input in inputs_for(kernel) {
            let pair = cache.pair(kernel, input);
            for (tag, stats) in [("B", &pair.base), ("T", &pair.tmu.stats)] {
                let (c, f, b) = stats.breakdown();
                report.line(format!(
                    "{:<12}{:<6}{:<4}{:>9.2}{:>9.2}{:>9.2}{:>9.1}",
                    kernel,
                    input.label(),
                    tag,
                    c,
                    f,
                    b,
                    stats.avg_load_to_use()
                ));
            }
        }
    }
    report.line("");
    report.line("expected shape (paper §7.1): TMU slashes backend stalls and load-to-use on");
    report.line("memory-intensive rows, and frontend stalls on merge-intensive rows.");
    report.save();
}

/// Figure 12: roofline models.
pub fn fig12(cache: &mut RunCache) {
    let cfg = configs::neoverse_n1_system();
    let roof = Roofline::for_machine(
        cfg.cores(),
        cfg.core.sve_lanes(),
        cfg.core.freq_ghz,
        cfg.mem.dram.peak_bytes_per_cycle() * cfg.core.freq_ghz,
    );
    let mut report = Report::new("fig12", "roofline models (a: all workloads; b/c/d: SpMV, SpMSpM, SpKAdd)");
    report.line(format!(
        "machine: peak {:.1} GFLOP/s, peak {:.1} GB/s, ridge at {:.2} flop/byte",
        roof.peak_gflops,
        roof.peak_bandwidth_gbs,
        roof.ridge()
    ));
    report.line("");
    report.line("(a) geomean per workload — TC and SpTC excluded (integer/symbolic, as in the paper)");
    report.line(format!(
        "{:<12}{:<4}{:>12}{:>12}{:>10}",
        "kernel", "ver", "AI(f/B)", "GFLOP/s", "GB/s"
    ));
    for &kernel in MATRIX_KERNELS.iter().chain(&TENSOR_KERNELS) {
        if kernel == "TC" || kernel == "SpTC" {
            continue;
        }
        let mut pts: HashMap<&str, Vec<(f64, f64, f64)>> = HashMap::new();
        for &input in inputs_for(kernel) {
            let pair = cache.pair(kernel, input);
            for (tag, stats) in [("B", &pair.base), ("T", &pair.tmu.stats)] {
                pts.entry(tag).or_default().push((
                    stats.arithmetic_intensity(),
                    stats.gflops(),
                    stats.bandwidth_gbs(),
                ));
            }
        }
        for tag in ["B", "T"] {
            let v = &pts[tag];
            let ai = geomean(&v.iter().map(|p| p.0).collect::<Vec<_>>());
            let gf = geomean(&v.iter().map(|p| p.1).collect::<Vec<_>>());
            let bw = geomean(&v.iter().map(|p| p.2).collect::<Vec<_>>());
            report.line(format!("{kernel:<12}{tag:<4}{ai:>12.3}{gf:>12.2}{bw:>10.1}"));
        }
    }
    for (panel, kernel) in [("b", "SpMV"), ("c", "SpMSpM"), ("d", "SpKAdd")] {
        report.line("");
        report.line(format!("({panel}) {kernel} — every input"));
        report.line(format!(
            "{:<6}{:<4}{:>12}{:>12}{:>10}",
            "input", "ver", "AI(f/B)", "GFLOP/s", "GB/s"
        ));
        for &input in &InputId::MATRICES {
            let pair = cache.pair(kernel, input);
            for (tag, stats) in [("B", &pair.base), ("T", &pair.tmu.stats)] {
                report.line(format!(
                    "{:<6}{:<4}{:>12.3}{:>12.2}{:>10.1}",
                    input.label(),
                    tag,
                    stats.arithmetic_intensity(),
                    stats.gflops(),
                    stats.bandwidth_gbs()
                ));
            }
        }
    }
    // (c) extra: the fixed-nnz/row compute ceilings.
    report.line("");
    report.line("(c) SpMSpM synthetic ceilings: n nnz/row at columns 0..n-1 (ideal locality)");
    for n in [1usize, 8, 64] {
        // The product of a fixed-row matrix with its transpose grows with
        // rows² · n — a small row count already saturates the compute
        // ceiling, so cap it to keep the run quadratic-safe.
        let rows = (((8192.0 * scale()) as usize).max(256)).min(16_384 / n.max(1));
        let m = gen::fixed_row(rows, n, 7);
        let w = Spmspm::new(&m);
        let run = w.run_tmu(configs::neoverse_n1_system(), TmuConfig::paper());
        report.line(format!(
            "  n={n:<4} TMU: {:>8.2} GFLOP/s at AI {:.3}",
            run.stats.gflops(),
            run.stats.arithmetic_intensity()
        ));
    }
    report.save();
}

/// Figure 13: read-to-write ratio of the outQ per workload.
pub fn fig13(cache: &mut RunCache) {
    let mut report = Report::new(
        "fig13",
        "outQ read-to-write ratio (core read time / TMU write time; <1 = core faster)",
    );
    report.line(format!("{:<12}{:>8}", "kernel", "ratio"));
    for &kernel in MATRIX_KERNELS.iter().chain(&TENSOR_KERNELS) {
        let mut ratios = Vec::new();
        for &input in inputs_for(kernel) {
            let pair = cache.pair(kernel, input);
            let r = pair.tmu.read_to_write_ratio();
            if r > 0.0 {
                ratios.push(r);
            }
        }
        report.line(format!("{:<12}{:>8.2}", kernel, geomean(&ratios)));
    }
    report.line("");
    report.line("paper shape: TC/SpMV/MTTKRP below one (merge offloaded / regular compute);");
    report.line("SpKAdd/SpTC near one; SpMSpM/PR/CP-ALS above one (core-side bottleneck).");
    report.save();
}

/// Figure 14: sensitivity to engine storage and SVE vector length.
pub fn fig14() {
    let mut report = Report::new(
        "fig14",
        "speedup heatmap vs engine storage {4,8,16,32}KB x SVE {128,256,512}b, normalized to 16KB/512b",
    );
    let m_spmv = ScaledInput::new(InputId::M3).with_scale(scale()).matrix();
    let m_mm = ScaledInput::new(InputId::M3).with_scale((scale() * 0.5).max(0.05)).matrix();
    let spmv = Spmv::new(&m_spmv);
    let spmspm = Spmspm::new(&m_mm);
    for (name, w) in [("SpMV", &spmv as &dyn Workload), ("SpMSpM", &spmspm as &dyn Workload)] {
        report.line(format!("{name}:"));
        report.line(format!("{:<10}{:>10}{:>10}{:>10}{:>10}", "SVE", "4KB", "8KB", "16KB", "32KB"));
        // Baseline cycles at the reference system (512-bit SVE).
        let mut reference_cycles = 0u64;
        let mut grid: Vec<(u32, Vec<f64>)> = Vec::new();
        for sve in [128u32, 256, 512] {
            let sys = configs::neoverse_n1_with_sve(sve);
            let mut row = Vec::new();
            for kb in [4usize, 8, 16, 32] {
                let tmu = TmuConfig::paper()
                    .for_sve_bits(sve)
                    .with_total_storage(kb << 10);
                let run = w.run_tmu(sys, tmu);
                if sve == 512 && kb == 16 {
                    reference_cycles = run.stats.cycles;
                }
                row.push(run.stats.cycles as f64);
            }
            grid.push((sve, row));
        }
        for (sve, row) in grid {
            let cells: Vec<String> = row
                .iter()
                .map(|c| format!("{:>10.2}", reference_cycles as f64 / c))
                .collect();
            report.line(format!("{:<10}{}", format!("{sve}b"), cells.join("")));
        }
        report.line("");
    }
    report.line("paper shape: SpMV gains from storage (more MLP), little from SVE width;");
    report.line("SpMSpM gains from SVE width (core-side bottleneck), little from storage.");
    report.save();
}

/// Figure 15: IMP and Single-Lane comparison.
pub fn fig15(cache: &mut RunCache) {
    let mut report = Report::new(
        "fig15",
        "speedup of IMP, Single-Lane TMU and full TMU over baseline (SpMV, SpMSpM)",
    );
    report.line(format!(
        "{:<10}{:<6}{:>8}{:>13}{:>8}",
        "kernel", "input", "IMP", "Single-Lane", "TMU"
    ));
    let cfg = configs::neoverse_n1_system();
    let mut geo: HashMap<(&str, &str), Vec<f64>> = HashMap::new();
    for kernel in ["SpMV", "SpMSpM"] {
        for input in InputId::MATRICES {
            let (imp_s, single_s, tmu_s, base_cycles);
            {
                let pair = cache.pair(kernel, input);
                base_cycles = pair.base.cycles;
                tmu_s = pair.speedup();
            }
            {
                let w = matrix_workload(kernel, input);
                let imp = w
                    .run_baseline_imp(cfg)
                    .expect("SpMV/SpMSpM support IMP");
                imp_s = base_cycles as f64 / imp.cycles.max(1) as f64;
                let single = w.run_tmu(cfg, TmuConfig::paper().single_lane());
                single_s = base_cycles as f64 / single.stats.cycles.max(1) as f64;
            }
            geo.entry((kernel, "imp")).or_default().push(imp_s);
            geo.entry((kernel, "single")).or_default().push(single_s);
            geo.entry((kernel, "tmu")).or_default().push(tmu_s);
            report.line(format!(
                "{:<10}{:<6}{:>7.2}x{:>12.2}x{:>7.2}x",
                kernel,
                input.label(),
                imp_s,
                single_s,
                tmu_s
            ));
        }
    }
    report.line("");
    report.line("geomeans (paper: Single-Lane 1.59x/1.50x, TMU 3.32x/2.82x, IMP 1.25x on SpMV):");
    for kernel in ["SpMV", "SpMSpM"] {
        report.line(format!(
            "  {kernel:<8} IMP {:>5.2}x  Single-Lane {:>5.2}x  TMU {:>5.2}x",
            geomean(&geo[&(kernel, "imp")]),
            geomean(&geo[&(kernel, "single")]),
            geomean(&geo[&(kernel, "tmu")])
        ));
    }
    report.save();
}

/// §6 area analysis.
pub fn area_report() {
    let mut report = Report::new("area", "TMU area model (22nm FD-SOI, calibrated to the paper's RTL)");
    let r = area(&TmuConfig::paper());
    report.line(format!("lane:            {:>8.4} mm²  (paper: 0.0080 mm²)", r.lane_mm2));
    report.line(format!("8 lanes:         {:>8.4} mm²", r.lanes_mm2));
    report.line(format!("mergers (4 TGs): {:>8.4} mm²", r.mergers_mm2));
    report.line(format!("arbiter+control: {:>8.4} mm²", r.arbiter_mm2));
    report.line(format!("total:           {:>8.4} mm²  (paper: 0.0704 mm²)", r.total_mm2));
    report.line(format!(
        "fraction of a Neoverse N1 core: {:.2}%  (paper: 1.52%)",
        r.percent_of_n1_core
    ));
    report.line("");
    report.line("design-space scaling (Figure 14 configurations):");
    for sve in [128u32, 256, 512] {
        for kb in [4usize, 8, 16, 32] {
            let cfg = TmuConfig::paper().for_sve_bits(sve).with_total_storage(kb << 10);
            let r = area(&cfg);
            report.line(format!(
                "  {:>4}b SVE, {:>2} KB: {:>7.4} mm² ({:>4.2}% of core)",
                sve, kb, r.total_mm2, r.percent_of_n1_core
            ));
        }
    }
    report.save();
}

/// Verification sweep: every workload's TMU functional result vs reference.
pub fn verify_all() {
    let mut report = Report::new("verify", "functional verification of every kernel/input pair");
    for &kernel in MATRIX_KERNELS.iter().chain(&TENSOR_KERNELS) {
        for &input in inputs_for(kernel) {
            let w = RunCache::build(kernel, input);
            match w.verify() {
                Ok(()) => report.line(format!("ok   {kernel} on {}", input.label())),
                Err(e) => report.line(format!("FAIL {kernel} on {}: {e}", input.label())),
            }
        }
    }
    report.save();
}

/// SpKAdd workload helper used by the criterion benches.
pub fn quick_spkadd() -> Spkadd {
    Spkadd::new(&gen::uniform(512, 128, 4, 3))
}
