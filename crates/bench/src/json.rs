//! Structured perf rows and the `results/bench.json` writer.
//!
//! Every figure's simulated runs are flattened into [`BenchRow`] records
//! and merged into one `results/bench.json` file so future PRs can gate
//! perf regressions on a machine-readable trajectory instead of diffing
//! plain-text reports. Merging is file-level: a standalone figure binary
//! refreshes its own figure's rows and carries every other figure in the
//! existing file through verbatim.
//!
//! The JSON is emitted by hand: the workspace's `serde` dependency
//! resolves to the offline marker-trait stub (see `vendor/README.md`),
//! so derived serialization is not available. The schema is small and
//! flat enough that an explicit emitter is the sturdier choice anyway —
//! key order is fixed, floats are shortest-roundtrip, and NaN/∞ map to
//! `null`.
//!
//! Schema (`schema_version` 6):
//!
//! ```text
//! {
//!   "schema_version": 6,
//!   "figures": {
//!     "<figure>": [ { <BenchRow fields> }, ... ],
//!     ...
//!   }
//! }
//! ```
//!
//! Version 2 adds the serving-layer fields (`tenant`, `queue_cycles`,
//! `service_cycles`, `lat_p50`/`lat_p95`/`lat_p99`), emitted only on rows
//! carrying a tenant — kernel/figure rows are byte-identical to v1.
//!
//! Version 3 adds the alternative-backend observables: `tile_occupancy`
//! (mean live-lane fraction per 4×8 tile, `blocked-sve` rows) and
//! `stream_tokens` (tokens crossing the stream fabric, `sam-stream`
//! rows). Each is emitted only on rows of its own engine, so every
//! pre-existing row stays byte-identical to v2.
//!
//! Version 4 adds the format-ablation fields: `format` (the physical
//! layout the matrix was marshaled into) and `conv_cycles` (modeled
//! cycles of the csr→format conversion, 0 for the identity). Both are
//! emitted only on rows tagged with a format by the `formats` binary, so
//! kernel rows from every other figure stay byte-identical to v3.
//!
//! Version 5 adds the resilience fields `retries`, `deadline_miss`,
//! `shed`, and `checkpoint_cycles` to the tenant block (after
//! `lat_p99`). They ride only on rows carrying a `tenant`, so every
//! non-serving row stays byte-identical to v4.
//!
//! Version 6 adds the application-pipeline fields: `app` (which DAG
//! application the row measures), `stage` (the DAG stage, when the row
//! is a per-stage breakdown rather than end-to-end), `iterations`
//! (DAG rounds run), and `cache_hit_rate` (the two-level stage cache's
//! combined hit rate). All four appear only on rows tagged with an
//! `app` by the `apps` binary, so every pre-existing row stays
//! byte-identical to v5.

use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::{Mutex, OnceLock};

/// Attaches the offending path to an I/O error, so a read-only or missing
/// `results/` directory fails with a diagnosis instead of a bare panic.
fn with_path(e: io::Error, path: &Path) -> io::Error {
    io::Error::new(e.kind(), format!("{}: {e}", path.display()))
}

/// `std::fs::write` with the path attached to any error.
pub fn write_text(path: &Path, text: &str) -> io::Result<()> {
    std::fs::write(path, text).map_err(|e| with_path(e, path))
}

/// `std::fs::read_to_string` with the path attached to any error.
pub fn read_text(path: &Path) -> io::Result<String> {
    std::fs::read_to_string(path).map_err(|e| with_path(e, path))
}

/// `std::fs::create_dir_all` with the path attached to any error.
pub fn create_dir(dir: &Path) -> io::Result<()> {
    std::fs::create_dir_all(dir).map_err(|e| with_path(e, dir))
}

/// One simulated run, flattened for `results/bench.json`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BenchRow {
    /// Figure the row belongs to (`"fig10"`, …).
    pub figure: String,
    /// Kernel name (`"SpMV"`, …).
    pub kernel: String,
    /// Input label (`"M3"`, `"fr256x8"`, …).
    pub input: String,
    /// Engine variant label (`"baseline-sve"`, `"tmu"`, …).
    pub engine: String,
    /// Machine label (`"table5"` unless the figure sweeps machines).
    pub machine: String,
    /// Input scale, when the input is a scaled Table 6 stand-in.
    pub scale: Option<f64>,
    /// Source einsum expression, when the job came from the expression
    /// front-end rather than a hand-written kernel.
    pub expr: Option<String>,
    /// Run length in cycles.
    pub cycles: u64,
    /// Committing fraction of the top-down breakdown.
    pub committing: f64,
    /// Frontend-stall fraction of the top-down breakdown.
    pub frontend: f64,
    /// Backend-stall fraction of the top-down breakdown.
    pub backend: f64,
    /// Average load-to-use latency in cycles.
    pub load_to_use: f64,
    /// Total FLOPs.
    pub flops: u64,
    /// DRAM bytes moved.
    pub dram_bytes: u64,
    /// Achieved GFLOP/s.
    pub gflops: f64,
    /// Achieved DRAM bandwidth in GB/s.
    pub bandwidth_gbs: f64,
    /// Arithmetic intensity in FLOP/byte.
    pub arithmetic_intensity: f64,
    /// DRAM row-buffer hit fraction.
    pub dram_row_hit_rate: f64,
    /// L1 (hits, misses, merged) summed over cores.
    pub l1: (u64, u64, u64),
    /// L2 (hits, misses, merged) summed over cores.
    pub l2: (u64, u64, u64),
    /// LLC (hits, misses, merged) summed over slices.
    pub llc: (u64, u64, u64),
    /// Cachelines read from DRAM.
    pub dram_lines_read: u64,
    /// Cachelines written to DRAM.
    pub dram_lines_written: u64,
    /// DRAM row-buffer hits.
    pub dram_row_hits: u64,
    /// DRAM row-buffer misses.
    pub dram_row_misses: u64,
    /// outQ entries marshaled (TMU variants; 0 otherwise).
    pub outq_entries: u64,
    /// outQ chunks sealed (TMU variants; 0 otherwise).
    pub outq_chunks: u64,
    /// Engine cycles stalled on the outQ double-buffer gate.
    pub outq_backpressure_cycles: u64,
    /// Figure 13 read-to-write ratio (0 when not a TMU variant).
    pub outq_read_to_write: f64,
    /// Panic message when the job failed instead of finishing. Emitted
    /// only when present, so healthy rows are byte-identical to the
    /// pre-fault-model schema.
    pub error: Option<String>,
    /// Why the engine retired and the job fell back to the software
    /// baseline. Emitted only when present.
    pub fallback: Option<String>,
    /// Faults injected into the run's TMU engines. The three fault
    /// counters are emitted only when at least one fault was injected.
    pub fault_injected: u64,
    /// Precise traps taken (context saved, simulated OS serviced).
    pub fault_traps: u64,
    /// Context restores after trap service.
    pub fault_restores: u64,
    /// Serving-layer tenant label (`"tenant0"`, …). When set, the row is
    /// a per-tenant serving row and the five serving fields below are
    /// emitted with it (schema v2); kernel rows omit all six keys and
    /// stay byte-identical to schema v1.
    pub tenant: Option<String>,
    /// Total queueing delay across the tenant's completed jobs (cycles).
    pub queue_cycles: u64,
    /// Total slot occupancy across the tenant's completed jobs (cycles).
    pub service_cycles: u64,
    /// p50 of the tenant's sojourn latency (arrival → completion, cycles).
    pub lat_p50: u64,
    /// p95 of the tenant's sojourn latency (cycles).
    pub lat_p95: u64,
    /// p99 of the tenant's sojourn latency (cycles).
    pub lat_p99: u64,
    /// Retry attempts across the tenant's jobs after serving-visible
    /// faults (schema v5; tenant rows only, like the v2 block).
    pub retries: u64,
    /// Completed jobs of the tenant that finished past their deadline
    /// (schema v5; tenant rows only).
    pub deadline_miss: u64,
    /// Arrivals shed at admission — queue full, circuit open, or global
    /// saturation (schema v5; tenant rows only).
    pub shed: u64,
    /// Cycles the tenant's jobs spent saving periodic checkpoints
    /// (schema v5; tenant rows only).
    pub checkpoint_cycles: u64,
    /// Mean fraction of live lanes per 4×8 tile (schema v3; emitted only
    /// on `blocked-sve` rows).
    pub tile_occupancy: Option<f64>,
    /// Tokens that crossed the stream fabric (schema v3; emitted only on
    /// `sam-stream` rows).
    pub stream_tokens: Option<u64>,
    /// Physical layout the matrix was marshaled into before the run
    /// (schema v4; emitted only on format-ablation rows, with
    /// [`BenchRow::conv_cycles`]).
    pub format: Option<String>,
    /// Modeled cycles of the csr→format conversion charged to the row
    /// (schema v4; `0` for the identity conversion; emitted with
    /// [`BenchRow::format`]).
    pub conv_cycles: Option<u64>,
    /// Application the row measures (`"gnn"`, `"cg"`, `"pagerank"`;
    /// schema v6). When set, the row carries the pipeline fields below;
    /// untagged rows stay byte-identical to v5.
    pub app: Option<String>,
    /// DAG stage the row breaks out (`"sddmm"`, `"spmv"`, …), when the
    /// row is a per-stage breakdown; end-to-end app rows omit the key
    /// (schema v6; app rows only).
    pub stage: Option<String>,
    /// DAG rounds the application ran (schema v6; app rows only).
    pub iterations: u64,
    /// Combined tensor+program hit rate of the two-level stage cache
    /// over the run (schema v6; app rows only).
    pub cache_hit_rate: f64,
}

fn push_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        out.push_str(&format!("{v}"));
    } else {
        // JSON has no NaN/Infinity literal.
        out.push_str("null");
    }
}

impl BenchRow {
    fn write(&self, out: &mut String) {
        macro_rules! str_field {
            ($key:literal, $v:expr) => {
                out.push_str(concat!("\"", $key, "\":"));
                push_str(out, $v);
                out.push(',');
            };
        }
        macro_rules! u64_field {
            ($key:literal, $v:expr) => {
                out.push_str(concat!("\"", $key, "\":"));
                out.push_str(&format!("{}", $v));
                out.push(',');
            };
        }
        macro_rules! f64_field {
            ($key:literal, $v:expr) => {
                out.push_str(concat!("\"", $key, "\":"));
                push_f64(out, $v);
                out.push(',');
            };
        }
        out.push('{');
        str_field!("figure", &self.figure);
        str_field!("kernel", &self.kernel);
        str_field!("input", &self.input);
        str_field!("engine", &self.engine);
        str_field!("machine", &self.machine);
        match self.scale {
            Some(s) => {
                out.push_str("\"scale\":");
                push_f64(out, s);
                out.push(',');
            }
            None => out.push_str("\"scale\":null,"),
        }
        match &self.expr {
            Some(e) => {
                str_field!("expr", e);
            }
            None => out.push_str("\"expr\":null,"),
        }
        u64_field!("cycles", self.cycles);
        f64_field!("committing", self.committing);
        f64_field!("frontend", self.frontend);
        f64_field!("backend", self.backend);
        f64_field!("load_to_use", self.load_to_use);
        u64_field!("flops", self.flops);
        u64_field!("dram_bytes", self.dram_bytes);
        f64_field!("gflops", self.gflops);
        f64_field!("bandwidth_gbs", self.bandwidth_gbs);
        f64_field!("arithmetic_intensity", self.arithmetic_intensity);
        f64_field!("dram_row_hit_rate", self.dram_row_hit_rate);
        u64_field!("l1_hits", self.l1.0);
        u64_field!("l1_misses", self.l1.1);
        u64_field!("l1_merged", self.l1.2);
        u64_field!("l2_hits", self.l2.0);
        u64_field!("l2_misses", self.l2.1);
        u64_field!("l2_merged", self.l2.2);
        u64_field!("llc_hits", self.llc.0);
        u64_field!("llc_misses", self.llc.1);
        u64_field!("llc_merged", self.llc.2);
        u64_field!("dram_lines_read", self.dram_lines_read);
        u64_field!("dram_lines_written", self.dram_lines_written);
        u64_field!("dram_row_hits", self.dram_row_hits);
        u64_field!("dram_row_misses", self.dram_row_misses);
        u64_field!("outq_entries", self.outq_entries);
        u64_field!("outq_chunks", self.outq_chunks);
        u64_field!("outq_backpressure_cycles", self.outq_backpressure_cycles);
        f64_field!("outq_read_to_write", self.outq_read_to_write);
        // Alternative-backend observables (schema v3): each key appears
        // only on rows of its own engine, so rows from every other engine
        // stay byte-identical to v2.
        if let Some(occ) = self.tile_occupancy {
            f64_field!("tile_occupancy", occ);
        }
        if let Some(tok) = self.stream_tokens {
            u64_field!("stream_tokens", tok);
        }
        // Format-ablation fields (schema v4): only rows the `formats`
        // binary tags with a layout carry them; every other figure's rows
        // stay byte-identical to v3.
        if let Some(fmt) = &self.format {
            str_field!("format", fmt);
            u64_field!("conv_cycles", self.conv_cycles.unwrap_or(0));
        }
        // Application-pipeline fields (schema v6): only rows the `apps`
        // binary tags with an app carry them; every other figure's rows
        // stay byte-identical to v5.
        if let Some(app) = &self.app {
            str_field!("app", app);
            if let Some(stage) = &self.stage {
                str_field!("stage", stage);
            }
            u64_field!("iterations", self.iterations);
            f64_field!("cache_hit_rate", self.cache_hit_rate);
        }
        // Resilience telemetry is opt-in: the keys appear only on rows
        // that failed, fell back, or ran with injected faults, keeping
        // fault-free bench.json output byte-identical to older schemas.
        if let Some(e) = &self.error {
            str_field!("error", e);
        }
        if let Some(fb) = &self.fallback {
            str_field!("fallback", fb);
        }
        if self.fault_injected > 0 {
            u64_field!("fault_injected", self.fault_injected);
            u64_field!("fault_traps", self.fault_traps);
            u64_field!("fault_restores", self.fault_restores);
        }
        // Serving-layer telemetry (schema v2): only rows tagged with a
        // tenant carry the queueing/latency fields.
        if let Some(t) = &self.tenant {
            str_field!("tenant", t);
            u64_field!("queue_cycles", self.queue_cycles);
            u64_field!("service_cycles", self.service_cycles);
            u64_field!("lat_p50", self.lat_p50);
            u64_field!("lat_p95", self.lat_p95);
            u64_field!("lat_p99", self.lat_p99);
            // Resilience telemetry (schema v5) rides the tenant block, so
            // non-serving rows stay byte-identical to v4.
            u64_field!("retries", self.retries);
            u64_field!("deadline_miss", self.deadline_miss);
            u64_field!("shed", self.shed);
            u64_field!("checkpoint_cycles", self.checkpoint_cycles);
        }
        // Drop the trailing comma.
        out.pop();
        out.push('}');
    }
}

fn registry() -> &'static Mutex<BTreeMap<String, Vec<BenchRow>>> {
    static REGISTRY: OnceLock<Mutex<BTreeMap<String, Vec<BenchRow>>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(BTreeMap::new()))
}

/// Registers (replacing any previous run of) `figure`'s rows.
pub fn record(figure: &str, rows: Vec<BenchRow>) {
    registry()
        .lock()
        .expect("bench.json registry poisoned")
        .insert(figure.to_owned(), rows);
}

fn render(figures: &BTreeMap<String, String>) -> String {
    let mut out = String::new();
    out.push_str("{\n\"schema_version\":6,\n\"figures\":{\n");
    let mut first_fig = true;
    for (figure, body) in figures {
        if !first_fig {
            out.push_str(",\n");
        }
        first_fig = false;
        push_str(&mut out, figure);
        out.push_str(":[\n");
        out.push_str(body);
        out.push_str("\n]");
    }
    out.push_str("\n}\n}\n");
    out
}

fn rows_body(rows: &[BenchRow]) -> String {
    let mut body = String::new();
    for (i, row) in rows.iter().enumerate() {
        if i > 0 {
            body.push_str(",\n");
        }
        row.write(&mut body);
    }
    body
}

/// Recovers the per-figure row arrays (as raw JSON text) from a
/// `bench.json` this emitter wrote earlier. Relies on the emitter's fixed
/// layout: one row per line, every array closed by a `\n]` pair. Returns
/// an empty map for a missing or foreign file.
fn parse_existing(path: &Path) -> BTreeMap<String, String> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return BTreeMap::new();
    };
    let mut out = BTreeMap::new();
    let Some(start) = text.find("\"figures\":{") else {
        return out;
    };
    let mut rest = &text[start + "\"figures\":{".len()..];
    while let Some(q) = rest.find('"') {
        rest = &rest[q + 1..];
        let Some(qe) = rest.find('"') else { break };
        let name = rest[..qe].to_owned();
        rest = &rest[qe + 1..];
        let Some(open) = rest.find('[') else { break };
        rest = &rest[open + 1..];
        let Some(close) = rest.find("\n]") else { break };
        out.insert(name, rest[..close].trim_matches('\n').to_owned());
        rest = &rest[close + 2..];
        if !rest.trim_start().starts_with(',') {
            break;
        }
    }
    out
}

/// Serializes every figure recorded so far in this process.
pub fn render_bench_json() -> String {
    let reg = registry().lock().expect("bench.json registry poisoned");
    let figures: BTreeMap<String, String> = reg
        .iter()
        .map(|(name, rows)| (name.clone(), rows_body(rows)))
        .collect();
    render(&figures)
}

/// Writes `bench.json` under `dir`, merging this process's recorded
/// figures over any figures an earlier run (e.g. another `fig*` binary)
/// left in the file — so `cargo run --bin fig10` refreshes only its own
/// rows instead of clobbering the rest. Delete the file for a clean
/// rebuild. Errors name the offending path.
pub fn write_bench_json(dir: &Path) -> io::Result<PathBuf> {
    let path = dir.join("bench.json");
    let mut figures = parse_existing(&path);
    {
        let reg = registry().lock().expect("bench.json registry poisoned");
        for (name, rows) in reg.iter() {
            figures.insert(name.clone(), rows_body(rows));
        }
    }
    write_text(&path, &render(&figures))?;
    Ok(path)
}

/// Validates that `text` is one well-formed JSON value (RFC 8259 subset:
/// objects, arrays, strings with escapes, numbers, booleans, null).
///
/// The workspace's `serde` is the offline marker-trait stub, so this
/// hand-rolled recursive-descent checker is the repo's JSON parser — the
/// emitters above and the Chrome trace exporter are tested against it.
/// Errors carry the byte offset and a short description.
pub fn validate(text: &str) -> Result<(), String> {
    let b = text.as_bytes();
    let mut pos = 0usize;
    skip_ws(b, &mut pos);
    parse_value(b, &mut pos)?;
    skip_ws(b, &mut pos);
    if pos != b.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(())
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<(), String> {
    match b.get(*pos) {
        Some(b'{') => parse_object(b, pos),
        Some(b'[') => parse_array(b, pos),
        Some(b'"') => parse_string(b, pos),
        Some(b't') => parse_lit(b, pos, "true"),
        Some(b'f') => parse_lit(b, pos, "false"),
        Some(b'n') => parse_lit(b, pos, "null"),
        Some(c) if *c == b'-' || c.is_ascii_digit() => parse_number(b, pos),
        Some(c) => Err(format!("unexpected byte {:?} at {}", *c as char, *pos)),
        None => Err(format!("unexpected end of input at byte {pos}")),
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // '{'
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {pos}"));
        }
        parse_string(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {pos}"));
        }
        *pos += 1;
        skip_ws(b, pos);
        parse_value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // '['
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        parse_value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}")),
        }
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // opening '"'
    while let Some(&c) = b.get(*pos) {
        match c {
            b'"' => {
                *pos += 1;
                return Ok(());
            }
            b'\\' => match b.get(*pos + 1) {
                Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *pos += 2,
                Some(b'u') => {
                    let hex = b.get(*pos + 2..*pos + 6).unwrap_or(&[]);
                    if hex.len() != 4 || !hex.iter().all(u8::is_ascii_hexdigit) {
                        return Err(format!("bad \\u escape at byte {pos}"));
                    }
                    *pos += 6;
                }
                _ => return Err(format!("bad escape at byte {pos}")),
            },
            0x00..=0x1F => return Err(format!("raw control byte in string at {pos}")),
            _ => *pos += 1,
        }
    }
    Err("unterminated string".to_owned())
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if b.get(*pos..*pos + lit.len()) == Some(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("expected {lit} at byte {pos}"))
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<(), String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let int_start = *pos;
    while b.get(*pos).is_some_and(u8::is_ascii_digit) {
        *pos += 1;
    }
    if *pos == int_start {
        return Err(format!("expected digit at byte {pos}"));
    }
    if b.get(*pos) == Some(&b'.') {
        *pos += 1;
        let frac_start = *pos;
        while b.get(*pos).is_some_and(u8::is_ascii_digit) {
            *pos += 1;
        }
        if *pos == frac_start {
            return Err(format!("expected fraction digit at byte {pos}"));
        }
    }
    if matches!(b.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(b.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        let exp_start = *pos;
        while b.get(*pos).is_some_and(u8::is_ascii_digit) {
            *pos += 1;
        }
        if *pos == exp_start {
            return Err(format!("expected exponent digit at byte {start}"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_serialize_to_valid_flat_json() {
        let row = BenchRow {
            figure: "figX".into(),
            kernel: "SpMV".into(),
            input: "M\"3\\".into(),
            engine: "tmu".into(),
            machine: "table5".into(),
            scale: Some(0.05),
            cycles: 42,
            committing: 0.5,
            load_to_use: f64::NAN,
            ..BenchRow::default()
        };
        let mut s = String::new();
        row.write(&mut s);
        assert!(s.starts_with('{') && s.ends_with('}'));
        assert!(s.contains("\"kernel\":\"SpMV\""));
        assert!(s.contains("\"input\":\"M\\\"3\\\\\""), "{s}");
        assert!(s.contains("\"scale\":0.05"));
        assert!(s.contains("\"cycles\":42"));
        assert!(s.contains("\"load_to_use\":null"), "NaN must map to null");
        assert!(!s.contains(",}"), "no trailing comma: {s}");
        // Balanced quoting: an even number of unescaped quotes. Scan with
        // an escape flag — stripping `\"` textually would also eat a real
        // delimiter preceded by an escaped backslash (`...\\"`).
        let mut quotes = 0usize;
        let mut escaped = false;
        for c in s.chars() {
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                quotes += 1;
            }
        }
        assert_eq!(quotes % 2, 0, "{s}");
    }

    #[test]
    fn registry_merges_figures() {
        record(
            "zz_test_fig_a",
            vec![BenchRow {
                figure: "zz_test_fig_a".into(),
                ..BenchRow::default()
            }],
        );
        record("zz_test_fig_b", Vec::new());
        let s = render_bench_json();
        assert!(s.contains("\"schema_version\":6"));
        assert!(s.contains("\"zz_test_fig_a\":["));
        assert!(s.contains("\"zz_test_fig_b\":["));
        // Re-recording replaces, not appends.
        record("zz_test_fig_a", Vec::new());
        let s = render_bench_json();
        assert!(s.contains("\"zz_test_fig_a\":[\n\n]"), "{s}");
    }

    #[test]
    fn write_merges_with_existing_file() {
        let dir = std::env::temp_dir().join(format!("tmu-bench-json-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        // A previous process left a figure this process never records.
        std::fs::write(
            dir.join("bench.json"),
            "{\n\"schema_version\":1,\n\"figures\":{\n\"zz_prev_fig\":[\n\
             {\"figure\":\"zz_prev_fig\",\"cycles\":9}\n]\n}\n}\n",
        )
        .unwrap();
        record(
            "zz_merge_fig",
            vec![BenchRow {
                figure: "zz_merge_fig".into(),
                cycles: 7,
                ..BenchRow::default()
            }],
        );
        let path = write_bench_json(&dir).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(
            text.contains("\"zz_prev_fig\":[\n{\"figure\":\"zz_prev_fig\",\"cycles\":9}\n]"),
            "foreign figure carried through: {text}"
        );
        assert!(text.contains("\"zz_merge_fig\":["), "{text}");
        assert!(text.contains("\"cycles\":7"), "{text}");
        // A second write round-trips the merged file unchanged.
        let again = std::fs::read_to_string(write_bench_json(&dir).unwrap()).unwrap();
        assert_eq!(text, again);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn schema_v2_tenant_fields_pin_and_roundtrip() {
        // A serving row carries the six v2 keys, in pinned order…
        let served = BenchRow {
            figure: "serve".into(),
            kernel: "mix".into(),
            engine: "tmu-serve".into(),
            machine: "table5".into(),
            tenant: Some("tenant0".into()),
            queue_cycles: 1234,
            service_cycles: 5678,
            lat_p50: 10,
            lat_p95: 95,
            lat_p99: 99,
            ..BenchRow::default()
        };
        let mut s = String::new();
        served.write(&mut s);
        assert!(
            s.contains(
                "\"tenant\":\"tenant0\",\"queue_cycles\":1234,\"service_cycles\":5678,\
                 \"lat_p50\":10,\"lat_p95\":95,\"lat_p99\":99,"
            ),
            "v2 serving fields pinned in order: {s}"
        );
        validate(&format!("[{s}]")).expect("serving row must be well-formed JSON");

        // …while a tenant-less row emits none of them, byte-identical to
        // the v1 row layout.
        let plain = BenchRow {
            figure: "serve".into(),
            kernel: "mix".into(),
            engine: "tmu-serve".into(),
            machine: "table5".into(),
            ..BenchRow::default()
        };
        let mut p = String::new();
        plain.write(&mut p);
        for key in [
            "tenant",
            "queue_cycles",
            "service_cycles",
            "lat_p50",
            "lat_p95",
            "lat_p99",
        ] {
            assert!(!p.contains(key), "v1-shaped row must omit {key}: {p}");
        }
        validate(&format!("[{p}]")).expect("plain row must be well-formed JSON");
    }

    #[test]
    fn schema_v3_backend_fields_pin_and_roundtrip() {
        // A blocked-sve row carries only tile_occupancy, a sam-stream row
        // only stream_tokens — and each lands right after the outQ block.
        let blocked = BenchRow {
            figure: "matrix".into(),
            kernel: "SpMV".into(),
            engine: "blocked-sve".into(),
            machine: "table5".into(),
            tile_occupancy: Some(0.625),
            ..BenchRow::default()
        };
        let mut s = String::new();
        blocked.write(&mut s);
        assert!(
            s.contains("\"outq_read_to_write\":0,\"tile_occupancy\":0.625}"),
            "v3 occupancy pinned after the outQ block: {s}"
        );
        assert!(!s.contains("stream_tokens"), "{s}");
        validate(&format!("[{s}]")).expect("blocked row must be well-formed JSON");

        let sam = BenchRow {
            figure: "matrix".into(),
            kernel: "SpMV".into(),
            engine: "sam-stream".into(),
            machine: "table5".into(),
            stream_tokens: Some(4096),
            ..BenchRow::default()
        };
        let mut s = String::new();
        sam.write(&mut s);
        assert!(
            s.contains("\"outq_read_to_write\":0,\"stream_tokens\":4096}"),
            "v3 tokens pinned after the outQ block: {s}"
        );
        assert!(!s.contains("tile_occupancy"), "{s}");
        validate(&format!("[{s}]")).expect("sam row must be well-formed JSON");

        // Rows from every other engine emit neither key — byte-identical
        // to the v2 layout.
        let plain = BenchRow {
            figure: "matrix".into(),
            kernel: "SpMV".into(),
            engine: "tmu".into(),
            machine: "table5".into(),
            ..BenchRow::default()
        };
        let mut p = String::new();
        plain.write(&mut p);
        for key in ["tile_occupancy", "stream_tokens"] {
            assert!(!p.contains(key), "v2-shaped row must omit {key}: {p}");
        }
        validate(&format!("[{p}]")).expect("plain row must be well-formed JSON");
    }

    #[test]
    fn schema_v4_format_fields_pin_and_roundtrip() {
        // A format-ablation row carries format and conv_cycles, right
        // after the v3 backend observables…
        let tagged = BenchRow {
            figure: "formats".into(),
            kernel: "SpMV".into(),
            engine: "tmu".into(),
            machine: "table5".into(),
            format: Some("banded".into()),
            conv_cycles: Some(777),
            ..BenchRow::default()
        };
        let mut s = String::new();
        tagged.write(&mut s);
        assert!(
            s.contains("\"outq_read_to_write\":0,\"format\":\"banded\",\"conv_cycles\":777}"),
            "v4 format fields pinned after the outQ block: {s}"
        );
        validate(&format!("[{s}]")).expect("format row must be well-formed JSON");

        // …a format row without a measured conversion still carries both
        // keys (the identity conversion costs 0)…
        let identity = BenchRow {
            format: Some("csr".into()),
            ..BenchRow::default()
        };
        let mut i = String::new();
        identity.write(&mut i);
        assert!(i.contains("\"format\":\"csr\",\"conv_cycles\":0}"), "{i}");

        // …while an untagged row emits neither key — byte-identical to
        // the v3 layout.
        let plain = BenchRow {
            figure: "fig10".into(),
            kernel: "SpMV".into(),
            engine: "tmu".into(),
            machine: "table5".into(),
            ..BenchRow::default()
        };
        let mut p = String::new();
        plain.write(&mut p);
        for key in ["\"format\"", "conv_cycles"] {
            assert!(!p.contains(key), "v3-shaped row must omit {key}: {p}");
        }
        validate(&format!("[{p}]")).expect("plain row must be well-formed JSON");
    }

    #[test]
    fn schema_v5_resilience_fields_pin_and_roundtrip() {
        // A serving row's tenant block ends with the four v5 resilience
        // keys, in pinned order…
        let served = BenchRow {
            figure: "serve".into(),
            kernel: "mix".into(),
            engine: "tmu-serve".into(),
            machine: "table5".into(),
            tenant: Some("tenant1".into()),
            lat_p99: 99,
            retries: 3,
            deadline_miss: 2,
            shed: 5,
            checkpoint_cycles: 4096,
            ..BenchRow::default()
        };
        let mut s = String::new();
        served.write(&mut s);
        assert!(
            s.ends_with(
                "\"lat_p99\":99,\"retries\":3,\"deadline_miss\":2,\"shed\":5,\
                 \"checkpoint_cycles\":4096}"
            ),
            "v5 resilience fields pinned at the row tail: {s}"
        );
        validate(&format!("[{s}]")).expect("serving row must be well-formed JSON");

        // …while a tenant-less row emits none of them, byte-identical to
        // the v4 layout even with nonzero counters set.
        let plain = BenchRow {
            figure: "fig10".into(),
            kernel: "SpMV".into(),
            engine: "tmu".into(),
            machine: "table5".into(),
            retries: 9,
            shed: 9,
            ..BenchRow::default()
        };
        let mut p = String::new();
        plain.write(&mut p);
        for key in ["retries", "deadline_miss", "\"shed\"", "checkpoint_cycles"] {
            assert!(!p.contains(key), "v4-shaped row must omit {key}: {p}");
        }
        validate(&format!("[{p}]")).expect("plain row must be well-formed JSON");
    }

    #[test]
    fn schema_v6_app_fields_pin_and_roundtrip() {
        // A per-stage app row carries all four v6 keys, right after the
        // outQ block (where the v3/v4 opt-in keys would sit)…
        let staged = BenchRow {
            figure: "apps".into(),
            kernel: "gnn".into(),
            engine: "tmu".into(),
            machine: "table5".into(),
            app: Some("gnn".into()),
            stage: Some("sddmm".into()),
            iterations: 1,
            cache_hit_rate: 0.75,
            ..BenchRow::default()
        };
        let mut s = String::new();
        staged.write(&mut s);
        assert!(
            s.contains(
                "\"outq_read_to_write\":0,\"app\":\"gnn\",\"stage\":\"sddmm\",\
                 \"iterations\":1,\"cache_hit_rate\":0.75}"
            ),
            "v6 app fields pinned after the outQ block: {s}"
        );
        validate(&format!("[{s}]")).expect("stage row must be well-formed JSON");

        // …an end-to-end app row omits only the stage key…
        let e2e = BenchRow {
            app: Some("cg".into()),
            iterations: 6,
            cache_hit_rate: 0.5,
            ..BenchRow::default()
        };
        let mut e = String::new();
        e2e.write(&mut e);
        assert!(
            e.contains("\"app\":\"cg\",\"iterations\":6,\"cache_hit_rate\":0.5}"),
            "{e}"
        );
        assert!(!e.contains("\"stage\""), "{e}");
        validate(&format!("[{e}]")).expect("e2e row must be well-formed JSON");

        // …while an untagged row emits none of them — byte-identical to
        // the v5 layout even with nonzero pipeline counters set.
        let plain = BenchRow {
            figure: "fig10".into(),
            kernel: "SpMV".into(),
            engine: "tmu".into(),
            machine: "table5".into(),
            iterations: 9,
            cache_hit_rate: 0.9,
            ..BenchRow::default()
        };
        let mut p = String::new();
        plain.write(&mut p);
        for key in ["\"app\"", "\"stage\"", "iterations", "cache_hit_rate"] {
            assert!(!p.contains(key), "v5-shaped row must omit {key}: {p}");
        }
        validate(&format!("[{p}]")).expect("plain row must be well-formed JSON");

        // The plain row is byte-for-byte what the v5 emitter produced:
        // rebuilding it without the (ignored) pipeline counters yields
        // identical bytes.
        let mut v5 = String::new();
        BenchRow {
            figure: "fig10".into(),
            kernel: "SpMV".into(),
            engine: "tmu".into(),
            machine: "table5".into(),
            ..BenchRow::default()
        }
        .write(&mut v5);
        assert_eq!(p, v5, "non-app rows must stay byte-identical to v5");
    }

    #[test]
    fn write_error_names_the_path() {
        let missing = Path::new("/nonexistent-tmu-dir/deeper");
        let err = write_bench_json(missing).unwrap_err();
        assert!(
            err.to_string().contains("/nonexistent-tmu-dir/deeper"),
            "error must name the path: {err}"
        );
    }

    #[test]
    fn validate_accepts_the_emitters_output() {
        record(
            "zz_valid_fig",
            vec![BenchRow {
                figure: "zz_valid_fig".into(),
                input: "quote\"back\\slash\ttab".into(),
                scale: Some(0.5),
                committing: f64::NAN,
                gflops: 1.25e-3,
                ..BenchRow::default()
            }],
        );
        validate(&render_bench_json()).expect("bench.json must be well-formed");
    }

    #[test]
    fn validate_rejects_malformed_json() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\":1,}",
            "nul",
            "1.2.3",
            "\"unterminated",
            "\"bad\\escape\"",
            "{\"a\":1} trailing",
            "[01e]",
            "\"ctrl\u{0}\"",
        ] {
            assert!(validate(bad).is_err(), "must reject {bad:?}");
        }
        for good in [
            "null",
            "-0.5e+10",
            "[]",
            "{}",
            "{\"k\":[1,true,null,\"\\u00e9\"]}",
            " [ 1 , 2 ] ",
        ] {
            validate(good).unwrap_or_else(|e| panic!("must accept {good:?}: {e}"));
        }
    }
}
