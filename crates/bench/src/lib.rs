//! Benchmark harness for the TMU reproduction.
//!
//! One binary per paper artifact (`fig03`, `fig10`, … `area`); each
//! regenerates the corresponding table or figure on the synthetic Table 6
//! stand-ins and writes a plain-text report under `results/` plus
//! machine-readable rows into `results/bench.json` (see [`json`]).
//!
//! Figure binaries dispatch their simulations through the parallel
//! [`runner`], which memoizes (job → result) so figures sharing the same
//! underlying runs (10/11/12/13/15) simulate each pair exactly once.
//!
//! Environment knobs, each read once at startup:
//! * `TMU_SCALE` — global input scale multiplier (default 1.0 — itself
//!   ≈32× smaller than the paper's inputs, see `tmu_tensor::gen`).
//! * `TMU_JOBS` — worker threads of the runner (default: available
//!   parallelism). Results are independent of the worker count.

#![warn(missing_docs)]

pub mod figs;
pub mod json;
pub mod runner;
pub mod tracecli;

use std::fmt::Write as _;
use std::path::PathBuf;
use std::sync::OnceLock;

use tmu_kernels::workload::Workload;
use tmu_kernels::{
    cpals::CpAls,
    mttkrp::{Mttkrp, MttkrpVariant},
    pagerank::PageRank,
    spkadd::Spkadd,
    spmm::Spmm,
    spmspm::Spmspm,
    spmv::Spmv,
    sptc::Sptc,
    trianglecount::TriangleCount,
};
use tmu_tensor::gen::{InputId, ScaledInput};
use tmu_tensor::CsrMatrix;

use crate::json::BenchRow;

/// What a benchmark binary's body may return into [`run_main`]: either
/// nothing (success unless a job failed) or an explicit
/// [`std::process::ExitCode`] (tools that fail on bad arguments).
pub trait MainOutcome {
    /// The exit code the body chose on its own.
    fn into_exit_code(self) -> std::process::ExitCode;
}

impl MainOutcome for () {
    fn into_exit_code(self) -> std::process::ExitCode {
        std::process::ExitCode::SUCCESS
    }
}

impl MainOutcome for std::process::ExitCode {
    fn into_exit_code(self) -> std::process::ExitCode {
        self
    }
}

/// Shared epilogue of every benchmark binary: runs `body`, then checks
/// the runner's failed-job counter. A body that returned success still
/// exits nonzero when any simulation panicked — a crashed grid point
/// writes every healthy row but cannot masquerade as a clean run.
///
/// ```no_run
/// fn main() -> std::process::ExitCode {
///     tmu_bench::run_main(|| {
///         let runner = tmu_bench::runner::Runner::new();
///         tmu_bench::figs::fig03(&runner);
///     })
/// }
/// ```
pub fn run_main<R: MainOutcome>(body: impl FnOnce() -> R) -> std::process::ExitCode {
    let code = body().into_exit_code();
    let n = runner::failed_jobs();
    if n > 0 {
        eprintln!("error: {n} job(s) failed; see the [FAIL] lines above");
        return std::process::ExitCode::FAILURE;
    }
    code
}

/// Input scale multiplier from `TMU_SCALE`, read once per process
/// (default 1.0). Reading the environment once makes the value immune to
/// `set_var` races under the parallel test runner and the parallel
/// experiment runner alike; code that needs a different scale threads it
/// explicitly (see [`matrix_workload_at`] and [`runner::InputSpec`]).
pub fn scale() -> f64 {
    static SCALE: OnceLock<f64> = OnceLock::new();
    *SCALE.get_or_init(|| {
        std::env::var("TMU_SCALE")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(1.0)
    })
}

/// Geometric mean of the positive, finite entries of a slice.
///
/// Non-positive or non-finite entries carry no information on a log scale
/// (`ln` would turn them into NaN and poison the whole mean), so they are
/// filtered out; a slice without any positive entry yields 0.0.
pub fn geomean(xs: &[f64]) -> f64 {
    let mut sum = 0.0;
    let mut n = 0usize;
    for &x in xs {
        if x.is_finite() && x > 0.0 {
            sum += x.ln();
            n += 1;
        }
    }
    if n == 0 {
        0.0
    } else {
        (sum / n as f64).exp()
    }
}

/// A figure report: plain text printed and written to `results/<name>.txt`,
/// plus structured per-run rows merged into `results/bench.json`.
#[derive(Debug)]
pub struct Report {
    name: &'static str,
    body: String,
    rows: Vec<BenchRow>,
}

impl Report {
    /// Starts a report for `name` (e.g. `"fig10"`).
    pub fn new(name: &'static str, title: &str) -> Self {
        let mut body = String::new();
        let _ = writeln!(body, "# {name}: {title}");
        let _ = writeln!(
            body,
            "# scale = {} (see DESIGN.md §2 for input substitution)",
            scale()
        );
        Self {
            name,
            body,
            rows: Vec::new(),
        }
    }

    /// The report's figure name (`"fig10"`, …).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Appends a line (also echoed to stdout).
    pub fn line(&mut self, s: impl AsRef<str>) {
        println!("{}", s.as_ref());
        self.body.push_str(s.as_ref());
        self.body.push('\n');
    }

    /// Appends one structured row for `results/bench.json`.
    pub fn push_row(&mut self, row: BenchRow) {
        self.rows.push(row);
    }

    /// Writes the report under `results/<name>.txt` and, when the report
    /// carries structured rows, refreshes `results/bench.json`.
    ///
    /// # Panics
    ///
    /// Panics (with the offending path in the message) when `results/`
    /// cannot be created or written — see [`Report::try_save`] for the
    /// propagating form.
    pub fn save(&self) -> PathBuf {
        self.try_save()
            .unwrap_or_else(|e| panic!("cannot save report {}: {e}", self.name))
    }

    /// Fallible [`Report::save`]: errors name the path that failed.
    pub fn try_save(&self) -> std::io::Result<PathBuf> {
        let dir = PathBuf::from("results");
        json::create_dir(&dir)?;
        let path = dir.join(format!("{}.txt", self.name));
        json::write_text(&path, &self.body)?;
        println!("→ wrote {}", path.display());
        if !self.rows.is_empty() {
            json::record(self.name, self.rows.clone());
            let jpath = json::write_bench_json(&dir)?;
            println!("→ wrote {}", jpath.display());
        }
        Ok(path)
    }
}

/// Builds the matrix `kernel` over an already-generated matrix.
pub fn matrix_kernel(kernel: &str, m: &CsrMatrix) -> Box<dyn Workload> {
    match kernel {
        "SpMV" => Box::new(Spmv::new(m)),
        "SpMM" => Box::new(Spmm::new(m)),
        "SpMSpM" => Box::new(Spmspm::new(m)),
        "SpKAdd" => Box::new(Spkadd::new(m)),
        "PR" => Box::new(PageRank::new(m)),
        "TC" => Box::new(TriangleCount::new(m)),
        other => panic!("unknown matrix kernel {other}"),
    }
}

/// Builds the matrix workload `kernel` on Table 6 input `id` at `scale`.
pub fn matrix_workload_at(kernel: &str, id: InputId, scale: f64) -> Box<dyn Workload> {
    let m = ScaledInput::new(id).with_scale(scale).matrix();
    matrix_kernel(kernel, &m)
}

/// Builds the matrix workload `kernel` on `id` at the global [`scale`].
pub fn matrix_workload(kernel: &str, id: InputId) -> Box<dyn Workload> {
    matrix_workload_at(kernel, id, scale())
}

/// Builds the tensor workload `kernel` on Table 6 input `id` at `scale`.
pub fn tensor_workload_at(kernel: &str, id: InputId, scale: f64) -> Box<dyn Workload> {
    let t = ScaledInput::new(id).with_scale(scale).tensor();
    match kernel {
        "MTTKRP_MP" => Box::new(Mttkrp::new(&t, MttkrpVariant::Mp)),
        "MTTKRP_CP" => Box::new(Mttkrp::new(&t, MttkrpVariant::Cp)),
        "CP-ALS" => {
            // CP-ALS needs an order-3 tensor; fuse trailing modes.
            let fused = fuse_to_order3(&t);
            Box::new(CpAls::new(&fused))
        }
        "SpTC" => {
            let fused = fuse_to_order3(&t);
            // Contract against a second synthetic tensor with compatible
            // k/l dimensions.
            let dims = fused.dims().to_vec();
            let b = tmu_tensor::gen::random_tensor(
                &[dims[2], dims[1], 64],
                (fused.nnz() / 2).max(16),
                0xB0B,
            );
            Box::new(Sptc::new(&fused, &b))
        }
        other => panic!("unknown tensor kernel {other}"),
    }
}

/// Builds the tensor workload `kernel` on `id` at the global [`scale`].
pub fn tensor_workload(kernel: &str, id: InputId) -> Box<dyn Workload> {
    tensor_workload_at(kernel, id, scale())
}

/// Fuses trailing modes so an order-n tensor becomes order-3, compacting
/// the fused coordinates to the dense range of occupied values (keeps
/// factor/auxiliary structures realistically sized — see `tmu_kernels::mttkrp`).
pub fn fuse_to_order3(t: &tmu_tensor::CooTensor) -> tmu_tensor::CooTensor {
    if t.order() == 3 {
        return t.clone();
    }
    let dims = t.dims();
    let mut raw: Vec<(Vec<u32>, u64, f64)> = t
        .iter()
        .map(|(c, v)| {
            let mut l = 0u64;
            for (d, &size) in dims[2..].iter().enumerate() {
                l = l * size as u64 + c[d + 2] as u64;
            }
            (c, l, v)
        })
        .collect();
    let mut distinct: Vec<u64> = raw.iter().map(|(_, l, _)| *l).collect();
    distinct.sort_unstable();
    distinct.dedup();
    let remap: std::collections::HashMap<u64, u32> = distinct
        .iter()
        .enumerate()
        .map(|(i, &v)| (v, i as u32))
        .collect();
    let entries: Vec<(Vec<u32>, f64)> = raw
        .drain(..)
        .map(|(c, l, v)| (vec![c[0], c[1], remap[&l]], v))
        .collect();
    tmu_tensor::CooTensor::from_entries(vec![dims[0], dims[1], distinct.len().max(1)], entries)
        .expect("fusion stays in bounds")
}

/// Matrix kernels of Figure 10 (left panel).
pub const MATRIX_KERNELS: [&str; 5] = ["SpMV", "SpMSpM", "SpKAdd", "PR", "TC"];

/// Tensor kernels of Figure 10 (right panel).
pub const TENSOR_KERNELS: [&str; 4] = ["MTTKRP_MP", "MTTKRP_CP", "CP-ALS", "SpTC"];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 0.0);
    }

    #[test]
    fn geomean_filters_non_positive() {
        // A zero or negative speedup must not poison the mean with NaN.
        assert!((geomean(&[2.0, 0.0, 8.0]) - 4.0).abs() < 1e-12);
        assert!((geomean(&[2.0, -3.0, 8.0]) - 4.0).abs() < 1e-12);
        assert!((geomean(&[2.0, f64::NAN, 8.0]) - 4.0).abs() < 1e-12);
        assert_eq!(geomean(&[0.0, -1.0]), 0.0);
        assert!(!geomean(&[0.0]).is_nan());
    }

    #[test]
    fn workload_builders_cover_all_kernels() {
        // Scale threaded explicitly — mutating TMU_SCALE here would race
        // against other tests reading the process-wide value.
        for k in MATRIX_KERNELS {
            let w = matrix_workload_at(k, InputId::M4, 0.02);
            assert_eq!(w.name(), k);
        }
        for k in TENSOR_KERNELS {
            let w = tensor_workload_at(k, InputId::T4, 0.02);
            assert_eq!(w.name(), k);
        }
    }
}
