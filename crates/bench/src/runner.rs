//! Parallel experiment runner.
//!
//! The paper's evaluation (§7) is a grid of independent
//! (kernel × input × machine × engine) simulations. A [`Job`] names one
//! grid point, [`Job::run`] simulates it, and a [`Runner`] executes whole
//! batches across a bounded `std::thread::scope` worker pool with:
//!
//! * **deterministic result ordering** — `run_all` returns results in job
//!   order no matter which worker finished first, so figure text is
//!   byte-identical between serial (`TMU_JOBS=1`) and parallel runs;
//! * **a process-wide memo cache** — jobs are keyed by their full
//!   configuration, so figures sharing runs (10/11/12/13/15) simulate
//!   each (baseline, TMU) pair exactly once per process.
//!
//! Worker count comes from `TMU_JOBS` (read once; default: available
//! parallelism). Simulations themselves are deterministic — every input
//! generator is seeded and each job runs on a fresh `System` — so the
//! worker count and completion order never leak into results.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use tmu::{OutQSnapshot, TmuConfig};
use tmu_front::ExprWorkload;
use tmu_kernels::workload::{KernelKind, Workload};
use tmu_sim::{configs, RunStats, SystemConfig};
use tmu_tensor::gen::{self, InputId, ScaledInput};

use crate::json::BenchRow;
use crate::{matrix_kernel, matrix_workload_at, tensor_workload_at};

/// The input of a job: which data the kernel runs on.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum InputSpec {
    /// Synthetic Table 6 stand-in `id` at `scale`.
    Table6 {
        /// Input identity (M1–M6, T1–T4).
        id: InputId,
        /// Scale multiplier applied to the stand-in.
        scale: f64,
    },
    /// `gen::fixed_row` matrix: `n` nnz per row at columns `0..n-1`
    /// (the Figure 12c compute-ceiling inputs).
    FixedRow {
        /// Row count.
        rows: usize,
        /// Nonzeros per row.
        n: usize,
        /// Generator seed.
        seed: u64,
    },
    /// `gen::uniform` matrix (ablation inputs).
    Uniform {
        /// Row count.
        rows: usize,
        /// Column count.
        cols: usize,
        /// Nonzeros per row.
        nnz_per_row: usize,
        /// Generator seed.
        seed: u64,
    },
    /// `gen::rmat` power-law graph adjacency matrix (`2^scale` vertices)
    /// — the skewed, cache-hostile input the `trace` binary defaults to.
    Rmat {
        /// log2 of the vertex count.
        scale: u32,
        /// Edge count.
        edges: usize,
        /// Generator seed.
        seed: u64,
    },
}

impl InputSpec {
    /// Short label used in reports and `bench.json` rows.
    pub fn label(&self) -> String {
        match self {
            InputSpec::Table6 { id, .. } => id.label().to_owned(),
            InputSpec::FixedRow { rows, n, .. } => format!("fr{rows}x{n}"),
            InputSpec::Uniform {
                rows, nnz_per_row, ..
            } => format!("u{rows}x{nnz_per_row}"),
            InputSpec::Rmat { scale, .. } => format!("rmat{scale}"),
        }
    }

    /// The scale multiplier, when the input is a scaled stand-in.
    pub fn scale(&self) -> Option<f64> {
        match self {
            InputSpec::Table6 { scale, .. } => Some(*scale),
            _ => None,
        }
    }
}

/// Which engine executes the kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineVariant {
    /// Software baseline restricted to one 64-bit lane.
    BaselineScalar,
    /// Vectorized software baseline at the system's SVE width.
    BaselineSve,
    /// Baseline with the Indirect Memory Prefetcher attached (§7.3).
    Imp,
    /// TMU with a single lane (§7.3, Figure 15).
    SingleLane,
    /// The full TMU.
    Tmu,
    /// Register-tiled BCSR software path (`tmu_backends::blocked`): the
    /// matrix is re-marshaled into 4×8 tiles and streamed through dense
    /// SVE micro-kernels, trading wasted lanes (tile occupancy) for
    /// regular accesses.
    BlockedSve,
    /// Cycle-approximate SAM-style streaming dataflow model
    /// (`tmu_backends::sam`): level scanners, mergers and reducers
    /// connected by bounded token queues, compiled from the same
    /// iteration graph the TMU path lowers from.
    SamStream,
}

/// A string that names no [`EngineVariant`]. The same typed error the
/// formats crate returns for unknown format names, so every unknown-name
/// failure across the CLI surface reads the same way.
pub type UnknownEngine = tmu_formats::UnknownName;

impl EngineVariant {
    /// Every variant, in the order the four-way matrix prints them last.
    pub const ALL: [EngineVariant; 7] = [
        EngineVariant::BaselineScalar,
        EngineVariant::BaselineSve,
        EngineVariant::Imp,
        EngineVariant::SingleLane,
        EngineVariant::Tmu,
        EngineVariant::BlockedSve,
        EngineVariant::SamStream,
    ];

    /// Label used in reports and `bench.json` rows.
    pub fn label(&self) -> &'static str {
        match self {
            EngineVariant::BaselineScalar => "baseline-scalar",
            EngineVariant::BaselineSve => "baseline-sve",
            EngineVariant::Imp => "imp",
            EngineVariant::SingleLane => "single-lane",
            EngineVariant::Tmu => "tmu",
            EngineVariant::BlockedSve => "blocked-sve",
            EngineVariant::SamStream => "sam-stream",
        }
    }

    /// Parses a CLI engine name (the canonical [`Self::label`] plus a few
    /// short aliases), case-insensitively. The error lists every valid
    /// name and alias.
    pub fn parse(arg: &str) -> Result<Self, UnknownEngine> {
        Ok(match arg.to_ascii_lowercase().as_str() {
            "tmu" => EngineVariant::Tmu,
            "single-lane" | "single" => EngineVariant::SingleLane,
            "baseline" | "baseline-sve" | "sve" => EngineVariant::BaselineSve,
            "baseline-scalar" | "scalar" => EngineVariant::BaselineScalar,
            "imp" => EngineVariant::Imp,
            "blocked-sve" | "blocked" => EngineVariant::BlockedSve,
            "sam-stream" | "sam" => EngineVariant::SamStream,
            _ => {
                return Err(UnknownEngine::new(
                    "engine",
                    arg,
                    EngineVariant::ALL.iter().map(|e| e.label()),
                )
                .with_aliases(["single", "baseline", "sve", "scalar", "blocked", "sam"]))
            }
        })
    }

    fn uses_tmu_config(&self) -> bool {
        matches!(self, EngineVariant::SingleLane | EngineVariant::Tmu)
    }
}

/// One point of the experiment grid.
#[derive(Debug, Clone, PartialEq)]
pub struct Job {
    /// Kernel name (`"SpMV"`, …).
    pub kernel: &'static str,
    /// Input data selector.
    pub input: InputSpec,
    /// Engine variant.
    pub engine: EngineVariant,
    /// System (core + memory) configuration.
    pub sys: SystemConfig,
    /// TMU configuration (ignored by baseline variants; [`Job::key`]
    /// canonicalizes it away for them so memoization still coalesces).
    pub tmu: TmuConfig,
    /// Source einsum expression when the workload is compiled by the
    /// expression front-end instead of dispatched to a hand-written
    /// kernel. `None` for kernel jobs.
    pub expr: Option<String>,
}

impl Job {
    /// A job on the default Table 5 system with the paper's TMU config.
    pub fn new(kernel: &'static str, input: InputSpec, engine: EngineVariant) -> Self {
        Self {
            kernel,
            input,
            engine,
            sys: configs::neoverse_n1_system(),
            tmu: TmuConfig::paper(),
            expr: None,
        }
    }

    /// A job whose workload is compiled from `expr` by the expression
    /// front-end ([`tmu_front::ExprWorkload`]) over the base matrix named
    /// by `input`; remaining operands are auto-bound from it. The kernel
    /// column reports `"expr"` and `bench.json` rows carry the source
    /// expression verbatim.
    pub fn expression(expr: &str, input: InputSpec, engine: EngineVariant) -> Self {
        Self {
            expr: Some(expr.to_owned()),
            ..Self::new("expr", input, engine)
        }
    }

    /// Vectorized baseline of `kernel` on Table 6 `id` at `scale`.
    pub fn baseline(kernel: &'static str, id: InputId, scale: f64) -> Self {
        Self::new(
            kernel,
            InputSpec::Table6 { id, scale },
            EngineVariant::BaselineSve,
        )
    }

    /// Full-TMU run of `kernel` on Table 6 `id` at `scale`.
    pub fn tmu(kernel: &'static str, id: InputId, scale: f64) -> Self {
        Self::new(kernel, InputSpec::Table6 { id, scale }, EngineVariant::Tmu)
    }

    /// Replaces the system configuration.
    pub fn with_sys(mut self, sys: SystemConfig) -> Self {
        self.sys = sys;
        self
    }

    /// Replaces the TMU configuration.
    pub fn with_tmu(mut self, tmu: TmuConfig) -> Self {
        self.tmu = tmu;
        self
    }

    /// Memoization key: the full configuration, canonicalized so fields a
    /// variant ignores (the TMU config of baseline runs) do not split the
    /// cache. Every keyed type is plain data, so `Debug` is a faithful,
    /// stable rendering of the configuration.
    pub fn key(&self) -> String {
        // The engine's Debug rendering is the only field telling two
        // engines on identical data apart: if any two variants ever
        // rendered alike, the memo cache would silently serve one
        // engine's timings as the other's.
        #[cfg(debug_assertions)]
        for (i, a) in EngineVariant::ALL.iter().enumerate() {
            for b in &EngineVariant::ALL[i + 1..] {
                debug_assert_ne!(
                    format!("{a:?}"),
                    format!("{b:?}"),
                    "engine variants must render distinct memo keys"
                );
            }
        }
        let tmu = self.engine.uses_tmu_config().then_some(&self.tmu);
        format!(
            "{}|{:?}|{:?}|{:?}|{:?}|{:?}",
            self.kernel, self.input, self.engine, self.sys, tmu, self.expr
        )
    }

    /// The base matrix `input` names (expression jobs auto-bind every
    /// operand from it).
    fn base_matrix(&self) -> tmu_tensor::CsrMatrix {
        match self.input {
            InputSpec::Table6 { id, scale } => ScaledInput::new(id).with_scale(scale).matrix(),
            InputSpec::FixedRow { rows, n, seed } => gen::fixed_row(rows, n, seed),
            InputSpec::Uniform {
                rows,
                cols,
                nnz_per_row,
                seed,
            } => gen::uniform(rows, cols, nnz_per_row, seed),
            InputSpec::Rmat { scale, edges, seed } => gen::rmat(scale, edges, seed),
        }
    }

    /// Compiles the job's expression over its base matrix, panicking with
    /// the rendered diagnostic when the source does not compile.
    fn build_expr(&self, src: &str) -> ExprWorkload {
        ExprWorkload::new(src, &self.base_matrix())
            .unwrap_or_else(|e| panic!("expression does not compile:\n{}", e.render(src)))
    }

    fn build(&self) -> Box<dyn Workload> {
        if let Some(src) = &self.expr {
            return Box::new(self.build_expr(src));
        }
        match self.input {
            InputSpec::Table6 { id, scale } => {
                if InputId::MATRICES.contains(&id) {
                    matrix_workload_at(self.kernel, id, scale)
                } else {
                    tensor_workload_at(self.kernel, id, scale)
                }
            }
            InputSpec::FixedRow { .. } | InputSpec::Uniform { .. } | InputSpec::Rmat { .. } => {
                matrix_kernel(self.kernel, &self.base_matrix())
            }
        }
    }

    /// Simulates this job on a fresh system.
    ///
    /// # Panics
    ///
    /// Panics if the kernel does not support the requested engine variant
    /// (e.g. [`EngineVariant::Imp`] outside SpMV/SpMSpM).
    pub fn run(&self) -> RunResult {
        // The alternative backends consume the expression workload (or
        // the raw matrix) directly instead of the `Workload` trait — the
        // trait's run methods are shaped around the baseline/TMU op
        // streams.
        match self.engine {
            EngineVariant::BlockedSve => return self.run_blocked(),
            EngineVariant::SamStream => return self.run_sam(),
            _ => {}
        }
        let w = self.build();
        let kind = w.kind();
        let from_stats = |stats: RunStats| RunResult {
            kind,
            registry: Some(stats.registry()),
            stats,
            outq: Vec::new(),
            error: None,
            fallback: None,
            tile_occupancy: None,
            stream_tokens: None,
        };
        match self.engine {
            EngineVariant::BlockedSve | EngineVariant::SamStream => {
                unreachable!("dispatched above")
            }
            EngineVariant::BaselineSve => from_stats(w.run_baseline(self.sys)),
            EngineVariant::BaselineScalar => {
                let mut sys = self.sys;
                sys.core.sve_bits = 64;
                from_stats(w.run_baseline(sys))
            }
            EngineVariant::Imp => from_stats(
                w.run_baseline_imp(self.sys)
                    .unwrap_or_else(|| panic!("{} has no IMP variant", self.kernel)),
            ),
            EngineVariant::SingleLane | EngineVariant::Tmu => {
                let tmu = if self.engine == EngineVariant::SingleLane {
                    self.tmu.single_lane()
                } else {
                    self.tmu
                };
                let run = w.run_tmu(self.sys, tmu);
                let outq: Vec<OutQSnapshot> = run.outq.iter().map(|o| o.snapshot()).collect();
                let injected: u64 = outq.iter().map(|o| o.faults_injected).sum();
                let traps: u64 = outq.iter().map(|o| o.fault_traps).sum();
                let restores: u64 = outq.iter().map(|o| o.fault_restores).sum();
                let fault_counters = |registry: &mut tmu_trace::StatsRegistry| {
                    if injected > 0 {
                        registry.set_counter("system.tmu.faults.injected", injected);
                        registry.set_counter("system.tmu.faults.traps", traps);
                        registry.set_counter("system.tmu.faults.restores", restores);
                    }
                };
                // Graceful degradation (§5.6): an engine that retired on an
                // unserviceable fault produced no usable marshaled output, so
                // the kernel falls back to the software baseline. The row
                // keeps the TMU run's fault telemetry next to the baseline
                // timing so the degradation is visible in bench.json.
                if let Some(reason) = run.outq.iter().find_map(|o| o.retired.clone()) {
                    let stats = w.run_baseline(self.sys);
                    let mut registry = stats.registry();
                    registry.set_counter("system.tmu.fallback", 1);
                    fault_counters(&mut registry);
                    return RunResult {
                        kind,
                        registry: Some(registry),
                        stats,
                        outq,
                        error: None,
                        fallback: Some(reason),
                        tile_occupancy: None,
                        stream_tokens: None,
                    };
                }
                let mut registry = run.stats.registry();
                fault_counters(&mut registry);
                RunResult {
                    kind,
                    registry: Some(registry),
                    stats: run.stats,
                    outq,
                    error: None,
                    fallback: None,
                    tile_occupancy: None,
                    stream_tokens: None,
                }
            }
        }
    }

    /// Runs this job on the register-tiled BCSR software path
    /// ([`tmu_backends::blocked`]). Panics — caught by the runner as a
    /// typed failure — when the kernel or expression has no blocked
    /// lowering.
    fn run_blocked(&self) -> RunResult {
        use tmu_backends::blocked;
        let (kind, run) = if let Some(src) = &self.expr {
            let w = self.build_expr(src);
            if !blocked::supports_expr(&w) {
                panic!("{src:?} has no blocked-sve lowering");
            }
            (w.kind(), blocked::run_expr(&w, self.sys))
        } else {
            if !blocked::supports(self.kernel) {
                panic!("{} has no blocked-sve variant", self.kernel);
            }
            let m = self.base_matrix();
            let kind = matrix_kernel(self.kernel, &m).kind();
            (kind, blocked::run_kernel(self.kernel, &m, self.sys))
        };
        let mut registry = run.stats.registry();
        registry.set_counter("system.blocked.tiles", run.tiles);
        registry.set_gauge("system.blocked.tile_occupancy", run.tile_occupancy);
        RunResult {
            kind,
            registry: Some(registry),
            stats: run.stats,
            outq: Vec::new(),
            error: None,
            fallback: None,
            tile_occupancy: Some(run.tile_occupancy),
            stream_tokens: None,
        }
    }

    /// Runs this job on the SAM-style streaming dataflow model
    /// ([`tmu_backends::sam`]). Panics — caught by the runner as a typed
    /// failure — when the kernel has no streaming einsum form.
    fn run_sam(&self) -> RunResult {
        use tmu_backends::sam;
        let (kind, run) = if let Some(src) = &self.expr {
            let w = self.build_expr(src);
            (w.kind(), sam::run_expr(&w, self.sys))
        } else {
            if !sam::supports(self.kernel) {
                panic!("{} has no sam-stream variant", self.kernel);
            }
            let m = self.base_matrix();
            let kind = matrix_kernel(self.kernel, &m).kind();
            (kind, sam::run_kernel(self.kernel, &m, self.sys))
        };
        let mut registry = run.stats.registry();
        registry.set_counter("system.sam.tokens", run.tokens);
        registry.set_counter("system.sam.merger_stalls", run.merger_stalls);
        registry.set_counter("system.sam.nodes", run.nodes as u64);
        RunResult {
            kind,
            registry: Some(registry),
            stats: run.stats,
            outq: Vec::new(),
            error: None,
            fallback: None,
            tile_occupancy: None,
            stream_tokens: Some(run.tokens),
        }
    }
}

/// The measured outcome of one [`Job`].
#[derive(Debug, Clone, PartialEq)]
pub struct RunResult {
    /// Workload category of the kernel.
    pub kind: KernelKind,
    /// System-level statistics (cycles, breakdown, caches, DRAM).
    pub stats: RunStats,
    /// The final [`tmu_trace::StatsRegistry`] snapshot of the run —
    /// the same numbers as `stats`, under gem5-style dotted names, so
    /// `bench.json` consumers and trace exports read one counter system.
    /// `None` only for hand-constructed results.
    pub registry: Option<tmu_trace::StatsRegistry>,
    /// Per-core outQ snapshots (empty for non-TMU variants).
    pub outq: Vec<OutQSnapshot>,
    /// Panic message when the job died instead of finishing; such results
    /// carry default stats, are never memo-cached, and make the process
    /// exit nonzero through [`exit_if_failed`].
    pub error: Option<String>,
    /// Why the TMU engine retired and the job fell back to the software
    /// baseline (the stats are then baseline timings), if it did.
    pub fallback: Option<String>,
    /// Mean fraction of live lanes per 4×8 tile —
    /// [`EngineVariant::BlockedSve`] rows only (schema-v3 column).
    pub tile_occupancy: Option<f64>,
    /// Tokens that crossed the stream fabric —
    /// [`EngineVariant::SamStream`] rows only (schema-v3 column).
    pub stream_tokens: Option<u64>,
}

impl RunResult {
    /// A placeholder result for a job whose simulation panicked.
    pub fn failed(msg: impl Into<String>) -> Self {
        Self {
            kind: KernelKind::MemoryIntensive,
            stats: RunStats::default(),
            registry: None,
            outq: Vec::new(),
            error: Some(msg.into()),
            fallback: None,
            tile_occupancy: None,
            stream_tokens: None,
        }
    }

    /// Mean read-to-write ratio across cores with outQ activity (the
    /// Figure 13 metric; 0 for non-TMU variants).
    pub fn read_to_write_ratio(&self) -> f64 {
        let ratios: Vec<f64> = self
            .outq
            .iter()
            .map(|o| o.read_to_write_ratio)
            .filter(|r| *r > 0.0)
            .collect();
        if ratios.is_empty() {
            0.0
        } else {
            ratios.iter().sum::<f64>() / ratios.len() as f64
        }
    }
}

/// Flattens one (job, result) into a `bench.json` row. `machine` labels
/// the system configuration (`"table5"` unless the figure sweeps it).
pub fn bench_row(figure: &str, machine: &str, job: &Job, res: &RunResult) -> BenchRow {
    let (committing, frontend, backend) = res.stats.breakdown();
    let outq_entries = res.outq.iter().map(|o| o.entries).sum();
    let outq_chunks = res.outq.iter().map(|o| o.chunks).sum();
    let outq_backpressure_cycles = res.outq.iter().map(|o| o.backpressure_cycles).sum();
    let m = &res.stats.mem;
    BenchRow {
        figure: figure.to_owned(),
        kernel: job.kernel.to_owned(),
        input: job.input.label(),
        engine: job.engine.label().to_owned(),
        machine: machine.to_owned(),
        scale: job.input.scale(),
        expr: job.expr.clone(),
        cycles: res.stats.cycles,
        committing,
        frontend,
        backend,
        load_to_use: res.stats.avg_load_to_use(),
        flops: res.stats.flops(),
        dram_bytes: res.stats.dram_bytes,
        gflops: res.stats.gflops(),
        bandwidth_gbs: res.stats.bandwidth_gbs(),
        arithmetic_intensity: res.stats.arithmetic_intensity(),
        dram_row_hit_rate: res.stats.dram_row_hit_rate,
        l1: (m.l1.hits, m.l1.misses, m.l1.merged),
        l2: (m.l2.hits, m.l2.misses, m.l2.merged),
        llc: (m.llc.hits, m.llc.misses, m.llc.merged),
        dram_lines_read: m.dram_lines_read,
        dram_lines_written: m.dram_lines_written,
        dram_row_hits: m.dram_row_hits,
        dram_row_misses: m.dram_row_misses,
        outq_entries,
        outq_chunks,
        outq_backpressure_cycles,
        outq_read_to_write: res.read_to_write_ratio(),
        error: res.error.clone(),
        fallback: res.fallback.clone(),
        fault_injected: res.outq.iter().map(|o| o.faults_injected).sum(),
        fault_traps: res.outq.iter().map(|o| o.fault_traps).sum(),
        fault_restores: res.outq.iter().map(|o| o.fault_restores).sum(),
        tile_occupancy: res.tile_occupancy,
        stream_tokens: res.stream_tokens,
        ..BenchRow::default()
    }
}

/// Jobs whose simulation panicked in this process (caught by
/// [`Runner::run_all`] and turned into [`RunResult::failed`] rows).
static FAILED_JOBS: AtomicUsize = AtomicUsize::new(0);

/// Number of jobs that failed (panicked) so far in this process.
pub fn failed_jobs() -> usize {
    FAILED_JOBS.load(Ordering::Relaxed)
}

/// Resets the failed-job counter. For harnesses that *expect* a failure
/// (the `faults` smoke test exercises the caught-panic path) and have
/// already verified it happened — clearing lets the shared
/// [`crate::run_main`] epilogue exit clean instead of turning the
/// expected failure into a nonzero status.
pub fn clear_failed_jobs() {
    FAILED_JOBS.store(0, Ordering::Relaxed);
}

/// Exits the process with status 1 when any job failed, after printing a
/// summary. Binaries should prefer wrapping their body in
/// [`crate::run_main`], which folds this check into the returned
/// [`std::process::ExitCode`]; this exiting form remains for callers that
/// cannot restructure `main`.
pub fn exit_if_failed() {
    let n = failed_jobs();
    if n > 0 {
        eprintln!("error: {n} job(s) failed; see the [FAIL] lines above");
        std::process::exit(1);
    }
}

/// Parses a positive-integer environment knob (`TMU_JOBS`,
/// `TMU_FAULT_RATE`, …) from its raw value. Absent and blank values mean
/// "use the default" (`Ok(None)`); `0` and non-numeric values are
/// *errors* naming the variable and the rule, so callers surface a clear
/// warning instead of silently misconfiguring the run.
pub fn parse_pos_int(name: &str, raw: Option<&str>) -> Result<Option<u64>, String> {
    let Some(raw) = raw else {
        return Ok(None);
    };
    let trimmed = raw.trim();
    if trimmed.is_empty() {
        return Ok(None);
    }
    match trimmed.parse::<u64>() {
        Ok(0) => Err(format!("{name}={trimmed:?} is invalid: must be ≥ 1")),
        Ok(n) => Ok(Some(n)),
        Err(_) => Err(format!(
            "{name}={trimmed:?} is invalid: not a positive integer"
        )),
    }
}

/// Renders a caught panic payload (the `&str`/`String` panics the
/// simulators raise) as a one-line message.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "job panicked (non-string payload)".to_owned()
    }
}

/// Worker count from `TMU_JOBS`, read once per process (default:
/// available parallelism; capped at 512 threads). An invalid value (`0`,
/// non-numeric) warns on stderr and falls back to the default — results
/// are worker-count independent, so degrading is safe; staying silent is
/// not.
pub fn default_workers() -> usize {
    static WORKERS: OnceLock<usize> = OnceLock::new();
    *WORKERS.get_or_init(|| {
        let available = || {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        };
        let raw = std::env::var("TMU_JOBS").ok();
        match parse_pos_int("TMU_JOBS", raw.as_deref()) {
            Ok(Some(n)) => usize::try_from(n).unwrap_or(usize::MAX).min(512),
            Ok(None) => available(),
            Err(msg) => {
                eprintln!("warning: {msg}; using available parallelism");
                available()
            }
        }
    })
}

/// Maps `f` over `items` on up to `workers` scoped threads, returning
/// results in item order (work is handed out via an atomic index, so
/// completion order never affects the output).
pub fn parallel_map<T, R, F>(items: &[T], workers: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = items.len();
    let workers = workers.clamp(1, n.max(1));
    if n == 0 {
        return Vec::new();
    }
    if workers == 1 {
        return items.iter().map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let r = f(&items[i]);
                *slots[i].lock().expect("result slot poisoned") = Some(r);
            });
        }
    });
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("result slot poisoned")
                .expect("worker filled every slot")
        })
        .collect()
}

/// Executes job batches over a worker pool with a process-lifetime memo
/// cache (see the module docs).
#[derive(Debug)]
pub struct Runner {
    workers: usize,
    cache: Mutex<HashMap<String, Arc<RunResult>>>,
    simulations: AtomicUsize,
}

impl Default for Runner {
    fn default() -> Self {
        Self::new()
    }
}

impl Runner {
    /// A runner with the [`default_workers`] pool size.
    pub fn new() -> Self {
        Self::with_workers(default_workers())
    }

    /// A runner with an explicit pool size (≥ 1).
    pub fn with_workers(workers: usize) -> Self {
        Self {
            workers: workers.max(1),
            cache: Mutex::new(HashMap::new()),
            simulations: AtomicUsize::new(0),
        }
    }

    /// The pool size.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Number of actual simulations executed (memo hits excluded).
    pub fn simulations(&self) -> usize {
        self.simulations.load(Ordering::Relaxed)
    }

    /// Runs `jobs`, returning results in job order. Already-memoized jobs
    /// (and duplicates within the batch) are simulated once.
    pub fn run_all(&self, jobs: &[Job]) -> Vec<Arc<RunResult>> {
        let keys: Vec<String> = jobs.iter().map(Job::key).collect();
        let mut missing: Vec<(&str, &Job)> = Vec::new();
        {
            let cache = self.cache.lock().expect("runner cache poisoned");
            for (key, job) in keys.iter().zip(jobs) {
                if !cache.contains_key(key) && !missing.iter().any(|(k, _)| k == key) {
                    missing.push((key, job));
                }
            }
        }
        // The cache lock is NOT held while simulating: nested run_all
        // calls from job code would deadlock, and memo readers shouldn't
        // wait on a long batch.
        let fresh = parallel_map(&missing, self.workers, |(_, job)| {
            eprintln!(
                "  [run] {} on {} ({})",
                job.kernel,
                job.input.label(),
                job.engine.label()
            );
            self.simulations.fetch_add(1, Ordering::Relaxed);
            // A panicking grid point must not take the whole batch (or the
            // scoped worker pool) down with it: catch it, report it as a
            // typed failure row, and let every other job finish.
            match catch_unwind(AssertUnwindSafe(|| job.run())) {
                Ok(result) => Arc::new(result),
                Err(payload) => {
                    let msg = panic_message(payload);
                    FAILED_JOBS.fetch_add(1, Ordering::Relaxed);
                    eprintln!(
                        "  [FAIL] {} on {} ({}): {msg}",
                        job.kernel,
                        job.input.label(),
                        job.engine.label()
                    );
                    Arc::new(RunResult::failed(msg))
                }
            }
        });
        // Failures are never memoized — a later batch (or a rerun after a
        // fix in job construction) must simulate again, not replay a stale
        // crash — so they resolve through a batch-local map instead.
        let mut batch: HashMap<&str, Arc<RunResult>> = HashMap::new();
        let mut cache = self.cache.lock().expect("runner cache poisoned");
        for ((key, _), result) in missing.iter().zip(fresh) {
            if result.error.is_none() {
                cache.insert((*key).to_owned(), Arc::clone(&result));
            }
            batch.insert(key, result);
        }
        keys.iter()
            .map(|k| {
                cache
                    .get(k)
                    .or_else(|| batch.get(k.as_str()))
                    .map(Arc::clone)
                    .expect("every job key resolved")
            })
            .collect()
    }

    /// Runs a single job (through the same memo cache).
    pub fn run(&self, job: &Job) -> Arc<RunResult> {
        self.run_all(std::slice::from_ref(job))
            .pop()
            .expect("one job in, one result out")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_knob_parsing_is_hardened() {
        // Absent or blank: use the default.
        assert_eq!(parse_pos_int("TMU_JOBS", None), Ok(None));
        assert_eq!(parse_pos_int("TMU_JOBS", Some("")), Ok(None));
        assert_eq!(parse_pos_int("TMU_JOBS", Some("  ")), Ok(None));
        // Valid values parse, with surrounding whitespace tolerated.
        assert_eq!(parse_pos_int("TMU_JOBS", Some("8")), Ok(Some(8)));
        assert_eq!(parse_pos_int("TMU_JOBS", Some(" 3 ")), Ok(Some(3)));
        // Zero and garbage are errors that name the variable and value.
        for bad in ["0", "abc", "-4", "1.5", "1e3", "8 jobs"] {
            let err = parse_pos_int("TMU_FAULT_RATE", Some(bad))
                .expect_err("must reject invalid knob value");
            assert!(
                err.contains("TMU_FAULT_RATE") && err.contains(bad.trim()),
                "error must name variable and value: {err}"
            );
        }
    }

    fn small_grid() -> Vec<Job> {
        // A tiny uniform input keeps these full-system simulations fast.
        let input = InputSpec::Uniform {
            rows: 256,
            cols: 2048,
            nnz_per_row: 4,
            seed: 9,
        };
        vec![
            Job::new("SpMV", input, EngineVariant::BaselineSve),
            Job::new("SpMV", input, EngineVariant::BaselineScalar),
            Job::new("SpMV", input, EngineVariant::Tmu),
            Job::new("SpMV", input, EngineVariant::SingleLane),
            Job::new("SpMV", input, EngineVariant::Imp),
        ]
    }

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<u64> = (0..100).collect();
        let doubled = parallel_map(&items, 8, |&x| x * 2);
        assert_eq!(doubled, items.iter().map(|x| x * 2).collect::<Vec<_>>());
        assert_eq!(
            parallel_map(&Vec::<u64>::new(), 8, |&x| x),
            Vec::<u64>::new()
        );
    }

    #[test]
    fn parallel_runs_are_deterministic() {
        // Two independent runners with parallel pools must produce
        // identical rows for the same jobs — worker scheduling cannot be
        // allowed to leak into results.
        let jobs = small_grid();
        let a = Runner::with_workers(4).run_all(&jobs);
        let b = Runner::with_workers(2).run_all(&jobs);
        for ((ra, rb), job) in a.iter().zip(&b).zip(&jobs) {
            assert_eq!(ra, rb, "nondeterministic result for {}", job.key());
        }
        // The variants genuinely differ from each other.
        assert_ne!(a[0].stats.cycles, a[2].stats.cycles);
        assert!(a[2].outq.iter().map(|o| o.entries).sum::<u64>() > 0);
        assert!(a[0].outq.is_empty());
    }

    #[test]
    fn memo_cache_coalesces_shared_jobs() {
        // fig10 and fig11 iterate the same (baseline, tmu) pairs: the
        // second batch — and duplicates within one batch — must not
        // re-simulate.
        let jobs = small_grid();
        let runner = Runner::with_workers(4);
        let first = runner.run_all(&jobs);
        assert_eq!(runner.simulations(), jobs.len());
        let mut again = jobs.clone();
        again.extend(jobs.iter().cloned());
        let second = runner.run_all(&again);
        assert_eq!(
            runner.simulations(),
            jobs.len(),
            "memoized batch must not simulate"
        );
        assert_eq!(&second[..jobs.len()], &first[..]);
        // A genuinely new configuration does simulate.
        runner.run(&jobs[0].clone().with_sys(configs::neoverse_n1_with_sve(256)));
        assert_eq!(runner.simulations(), jobs.len() + 1);
    }

    #[test]
    fn registry_snapshot_mirrors_stats() {
        // No-overhead pin for the stats→registry migration: the registry
        // a default-features run carries is a renaming of the same
        // `sim::stats` numbers, not a second (potentially drifting)
        // accounting. The figure/bench.json pipeline still reads `stats`,
        // so equal values here mean the migration changed plumbing only.
        let job = &small_grid()[2];
        let res = job.run();
        let reg = res.registry.as_ref().expect("runner populates registry");
        assert_eq!(reg.counter("system.cycles"), Some(res.stats.cycles));
        assert_eq!(reg.counter("system.dram.bytes"), Some(res.stats.dram_bytes));
        assert_eq!(reg.counter("system.l1.hits"), Some(res.stats.mem.l1.hits));
        assert_eq!(
            reg.counter("system.llc.misses"),
            Some(res.stats.mem.llc.misses)
        );
        assert_eq!(
            reg.gauge("system.dram.row_hit_rate"),
            Some(res.stats.dram_row_hit_rate)
        );
        let committed: u64 = (0..res.stats.cores.len())
            .map(|i| {
                reg.counter(&format!("system.core{i}.committed"))
                    .expect("per-core counters present")
            })
            .sum();
        assert_eq!(
            committed,
            res.stats.cores.iter().map(|c| c.committed).sum::<u64>()
        );
    }

    /// Determinism pin for the trace subsystem (same style as
    /// [`parallel_runs_are_deterministic`]): the Chrome export of one
    /// traced job is byte-identical no matter the `TMU_JOBS` worker
    /// count, and well-formed per the vendored parser in [`crate::json`].
    #[cfg(feature = "trace")]
    #[test]
    fn trace_export_is_deterministic_across_worker_counts() {
        use tmu_trace::{TraceConfig, Tracer};
        let job = Job::new(
            "SpMV",
            InputSpec::Rmat {
                scale: 9,
                edges: 4096,
                seed: 7,
            },
            EngineVariant::Tmu,
        );
        let export = |workers: usize| {
            // Fresh runner per export so the memo cache cannot skip the
            // traced simulation; the global tracer is thread-scoped, so
            // concurrently running tests cannot interleave into it.
            tmu_trace::install(Tracer::new(TraceConfig::default()));
            Runner::with_workers(workers).run(&job);
            let tracer = tmu_trace::uninstall().expect("tracer installed");
            assert_eq!(tracer.dropped_total(), 0, "rings sized for this job");
            tracer.chrome_json()
        };
        let a = export(1);
        let b = export(4);
        assert_eq!(a, b, "trace bytes must not depend on the worker count");
        crate::json::validate(&a).expect("well-formed trace-event JSON");
        // The engine's duration and counter events actually made it in.
        assert!(a.contains("\"name\":\"tu_fetch\",\"ph\":\"X\""), "{a}");
        assert!(a.contains("\"name\":\"outq_occupancy\",\"ph\":\"C\""));
        assert!(a.contains("system.core0.tmu"));
    }

    #[test]
    fn expression_jobs_run_and_memoize_by_source() {
        let input = InputSpec::Uniform {
            rows: 128,
            cols: 96,
            nnz_per_row: 4,
            seed: 9,
        };
        let spmv = Job::expression("y(i) = A(i,j:csr) * x(j)", input, EngineVariant::Tmu);
        let add = Job::expression(
            "Z(i,j) = A(i,j:dcsr) + B(i,j:dcsr)",
            input,
            EngineVariant::BaselineSve,
        );
        assert_ne!(spmv.key(), add.key(), "source text must split the cache");
        let runner = Runner::with_workers(2);
        let res = runner.run_all(&[spmv.clone(), add.clone(), spmv.clone()]);
        assert_eq!(runner.simulations(), 2, "duplicate expression memoized");
        assert!(res[0].stats.cycles > 0 && res[1].stats.cycles > 0);
        assert!(res[0].outq.iter().map(|o| o.entries).sum::<u64>() > 0);
        let row = bench_row("figX", "table5", &spmv, &res[0]);
        assert_eq!(row.expr.as_deref(), Some("y(i) = A(i,j:csr) * x(j)"));
        assert_eq!(row.kernel, "expr");
        let mut body = String::new();
        crate::json::record("zz_expr_fig", vec![row]);
        body.push_str(&crate::json::render_bench_json());
        crate::json::validate(&body).expect("bench.json with expr rows is well-formed");
        assert!(
            body.contains("\"expr\":\"y(i) = A(i,j:csr) * x(j)\""),
            "{body}"
        );
    }

    /// The trace feature composes with compiled expressions: a traced
    /// expression job exports a well-formed Chrome trace, same as the
    /// hand-written kernels.
    #[cfg(feature = "trace")]
    #[test]
    fn traced_expression_job_exports_valid_chrome_trace() {
        use tmu_trace::{TraceConfig, Tracer};
        let job = Job::expression(
            "y(i) = A(i,j:csr) * x(j)",
            InputSpec::Rmat {
                scale: 8,
                edges: 2048,
                seed: 7,
            },
            EngineVariant::Tmu,
        );
        tmu_trace::install(Tracer::new(TraceConfig::default()));
        Runner::with_workers(1).run(&job);
        let tracer = tmu_trace::uninstall().expect("tracer installed");
        let json = tracer.chrome_json();
        crate::json::validate(&json).expect("well-formed trace-event JSON");
        assert!(
            json.contains("\"name\":\"tu_fetch\",\"ph\":\"X\""),
            "{json}"
        );
    }

    #[test]
    fn failed_jobs_report_typed_rows_and_skip_the_memo_cache() {
        let input = InputSpec::Uniform {
            rows: 64,
            cols: 64,
            nnz_per_row: 2,
            seed: 3,
        };
        // "NoSuchKernel" panics inside Job::build — the batch must survive
        // it, flag the failure, and still run the healthy job.
        let bad = Job::new("NoSuchKernel", input, EngineVariant::Tmu);
        let good = Job::new("SpMV", input, EngineVariant::BaselineSve);
        let runner = Runner::with_workers(2);
        let before = failed_jobs();
        let res = runner.run_all(&[bad.clone(), good.clone(), bad.clone()]);
        assert_eq!(failed_jobs(), before + 1, "one unique failing key");
        let err = res[0].error.as_deref().expect("failure is typed");
        assert!(err.contains("NoSuchKernel"), "{err}");
        assert_eq!(res[0], res[2], "duplicate keys share the failure row");
        assert!(res[1].error.is_none() && res[1].stats.cycles > 0);
        // Failures are not memoized: a retry simulates again.
        let sims = runner.simulations();
        assert!(runner.run(&bad).error.is_some());
        assert_eq!(runner.simulations(), sims + 1, "failure must not cache");
        // The failure lands in bench.json as an error row; healthy rows
        // carry none of the resilience keys.
        let row = bench_row("zz_fail_fig", "table5", &bad, &res[0]);
        assert_eq!(row.error.as_deref(), Some(err));
        crate::json::record("zz_fail_fig", vec![row]);
        let body = crate::json::render_bench_json();
        crate::json::validate(&body).expect("error rows are well-formed");
        assert!(body.contains("\"error\":"), "{body}");
        let healthy = bench_row("zz_fail_fig", "table5", &good, &res[1]);
        assert!(healthy.error.is_none() && healthy.fault_injected == 0);
    }

    #[test]
    fn unserviceable_faults_fall_back_to_the_software_baseline() {
        let input = InputSpec::Uniform {
            rows: 256,
            cols: 2048,
            nnz_per_row: 4,
            seed: 9,
        };
        // A zero service budget retires an engine on its first page fault;
        // a 20% rate guarantees one lands early on every engine.
        let faulty = tmu::FaultSpec {
            max_serviced: 0,
            ..tmu::FaultSpec::with_rate(7, 20_000)
        };
        let job = Job::new("SpMV", input, EngineVariant::Tmu)
            .with_tmu(TmuConfig::paper().with_faults(faulty));
        let runner = Runner::with_workers(1);
        let res = runner.run(&job);
        assert!(res.error.is_none(), "degradation is graceful, not fatal");
        let why = res.fallback.as_deref().expect("engine retired");
        assert!(why.contains("unserviceable"), "{why}");
        let reg = res.registry.as_ref().expect("fallback keeps a registry");
        assert_eq!(reg.counter("system.tmu.fallback"), Some(1));
        assert!(reg.counter("system.tmu.faults.injected").unwrap_or(0) > 0);
        // The reported timing is the software baseline's.
        let base = runner.run(&Job::new(job.kernel, input, EngineVariant::BaselineSve));
        assert_eq!(res.stats.cycles, base.stats.cycles);
        // The row records both the fallback and the fault telemetry.
        let row = bench_row("figX", "table5", &job, &res);
        assert_eq!(row.fallback.as_deref(), Some(why));
        assert!(row.fault_injected > 0);
    }

    #[test]
    fn every_engine_variant_maps_to_a_distinct_memo_key() {
        // Pin for the memo-cache seam: if two engines ever rendered the
        // same key, the cache would serve one engine's timings as the
        // other's — silently.
        let input = InputSpec::Uniform {
            rows: 64,
            cols: 64,
            nnz_per_row: 2,
            seed: 3,
        };
        let keys: Vec<String> = EngineVariant::ALL
            .iter()
            .map(|&e| Job::new("SpMV", input, e).key())
            .collect();
        for (i, a) in keys.iter().enumerate() {
            for b in &keys[i + 1..] {
                assert_ne!(a, b, "two engine variants share a memo key");
            }
        }
        // The CLI parser round-trips every canonical label and its error
        // names both the bad argument and the valid engines.
        for e in EngineVariant::ALL {
            assert_eq!(EngineVariant::parse(e.label()), Ok(e));
            // Case-insensitive: the uppercase spelling names the same engine.
            assert_eq!(EngineVariant::parse(&e.label().to_uppercase()), Ok(e));
        }
        assert_eq!(
            EngineVariant::parse("blocked"),
            Ok(EngineVariant::BlockedSve)
        );
        assert_eq!(EngineVariant::parse("sam"), Ok(EngineVariant::SamStream));
        let msg = EngineVariant::parse("warp-drive").unwrap_err().to_string();
        assert!(
            msg.contains("warp-drive")
                && msg.contains("blocked-sve")
                && msg.contains("sam-stream")
                && msg.contains("tmu"),
            "{msg}"
        );
    }

    #[test]
    fn alternative_backends_run_through_the_runner() {
        let input = InputSpec::Uniform {
            rows: 128,
            cols: 96,
            nnz_per_row: 4,
            seed: 9,
        };
        let runner = Runner::with_workers(2);
        let jobs = [
            Job::new("SpMV", input, EngineVariant::BlockedSve),
            Job::new("SpMV", input, EngineVariant::SamStream),
            Job::expression("y(i) = A(i,j:csr) * x(j)", input, EngineVariant::BlockedSve),
            Job::expression(
                "Z(i,j) = A(i,k:csr) * B(k,j:csr)",
                input,
                EngineVariant::SamStream,
            ),
        ];
        let res = runner.run_all(&jobs);
        for (r, job) in res.iter().zip(&jobs) {
            assert!(r.error.is_none(), "{}: {:?}", job.key(), r.error);
            assert!(r.stats.cycles > 0, "{}", job.key());
            assert!(r.outq.is_empty(), "software paths have no outQ");
        }
        // Engine-specific observables land on their own rows only.
        let occ = res[0].tile_occupancy.expect("blocked rows carry occupancy");
        assert!(occ > 0.0 && occ <= 1.0);
        assert!(res[0].stream_tokens.is_none());
        assert!(res[1].stream_tokens.expect("sam rows carry tokens") > 0);
        assert!(res[1].tile_occupancy.is_none());
        let breg = res[0].registry.as_ref().expect("registry populated");
        assert!(breg.counter("system.blocked.tiles").unwrap_or(0) > 0);
        assert_eq!(breg.gauge("system.blocked.tile_occupancy"), Some(occ));
        let sreg = res[1].registry.as_ref().expect("registry populated");
        assert_eq!(sreg.counter("system.sam.tokens"), res[1].stream_tokens);
        assert!(sreg.counter("system.sam.merger_stalls").is_some());
        // bench_row copies the schema-v3 columns verbatim.
        let brow = bench_row("figX", "table5", &jobs[0], &res[0]);
        assert_eq!(brow.tile_occupancy, res[0].tile_occupancy);
        assert_eq!(brow.stream_tokens, None);
        let srow = bench_row("figX", "table5", &jobs[1], &res[1]);
        assert_eq!(srow.stream_tokens, res[1].stream_tokens);
        assert_eq!(srow.tile_occupancy, None);
    }

    #[test]
    fn unsupported_backend_combinations_panic_with_the_engine_name() {
        // Direct catch_unwind — not the runner — so the process-global
        // failed-job counter other tests assert on stays untouched.
        let input = InputSpec::Uniform {
            rows: 64,
            cols: 64,
            nnz_per_row: 2,
            seed: 3,
        };
        let msg_of = |job: Job| {
            let payload = catch_unwind(AssertUnwindSafe(|| job.run()))
                .expect_err("unsupported combination must panic");
            panic_message(payload)
        };
        let msg = msg_of(Job::new("PR", input, EngineVariant::BlockedSve));
        assert!(msg.contains("blocked-sve"), "{msg}");
        let msg = msg_of(Job::new("PR", input, EngineVariant::SamStream));
        assert!(msg.contains("sam-stream"), "{msg}");
        let msg = msg_of(Job::expression(
            "Z(i,j) = A(i,j:dcsr) + B(i,j:dcsr)",
            input,
            EngineVariant::BlockedSve,
        ));
        assert!(msg.contains("blocked-sve"), "{msg}");
    }

    #[test]
    fn baseline_key_ignores_tmu_config() {
        let jobs = small_grid();
        let base = &jobs[0];
        let retuned = base.clone().with_tmu(TmuConfig::paper().single_lane());
        assert_eq!(base.key(), retuned.key(), "baselines ignore the TMU config");
        let tmu = &jobs[2];
        let tmu_retuned = tmu.clone().with_tmu(TmuConfig::paper().single_lane());
        assert_ne!(tmu.key(), tmu_retuned.key());
    }
}
