//! Implementation of the `trace` binary: runs one runner-grid job with a
//! process-global [`tmu_trace::Tracer`] installed and writes Chrome
//! trace-event JSON under `results/`.
//!
//! Lives in the library so both the workspace-root `trace` bin
//! (`cargo run --release --features trace --bin trace`) and the
//! `tmu-bench` one are the same thin wrapper around [`main`]. The code
//! compiles with or without the `trace` feature — without it the
//! simulator's call sites are compiled out and the trace comes back
//! empty, which is why both bins declare `required-features = ["trace"]`.

use std::path::PathBuf;
use std::process::ExitCode;

use crate::json;
use crate::runner::{EngineVariant, InputSpec, Job};
use tmu_tensor::gen::InputId;
use tmu_trace::{TraceConfig, Tracer};

fn usage() -> ExitCode {
    eprintln!(
        "usage: trace [spmv|spmspm|spkadd|pr|tc] [rmat|m1..m6] \
         [tmu|single-lane|baseline|scalar|imp|blocked-sve|sam-stream]"
    );
    ExitCode::from(2)
}

fn kernel(arg: &str) -> Option<&'static str> {
    Some(match arg.to_ascii_lowercase().as_str() {
        "spmv" => "SpMV",
        "spmspm" => "SpMSpM",
        "spkadd" => "SpKAdd",
        "pr" | "pagerank" => "PR",
        "tc" | "trianglecount" => "TC",
        _ => return None,
    })
}

fn input(arg: &str) -> Option<InputSpec> {
    let id = match arg.to_ascii_lowercase().as_str() {
        // Skewed rows + poor column locality: the input that exercises
        // every trace point (misses, row conflicts, outQ backpressure).
        "rmat" => {
            return Some(InputSpec::Rmat {
                scale: 12,
                edges: 32_768,
                seed: 0xC0FFEE,
            })
        }
        "m1" => InputId::M1,
        "m2" => InputId::M2,
        "m3" => InputId::M3,
        "m4" => InputId::M4,
        "m5" => InputId::M5,
        "m6" => InputId::M6,
        _ => return None,
    };
    Some(InputSpec::Table6 {
        id,
        scale: crate::scale(),
    })
}

/// Parses the engine argument through [`EngineVariant::parse`], so every
/// engine the runner knows — including `blocked-sve` and `sam-stream` —
/// is traceable, and a typo gets a typed error naming the valid engines
/// instead of the generic usage line.
fn engine(arg: &str) -> Result<EngineVariant, crate::runner::UnknownEngine> {
    EngineVariant::parse(&arg.to_ascii_lowercase())
}

/// Entry point shared by the `trace` binaries. `args` are the CLI
/// arguments after the program name: `[kernel] [input] [engine]`.
pub fn main(args: &[String]) -> ExitCode {
    let arg = |i: usize, default: &str| -> String {
        args.get(i).cloned().unwrap_or_else(|| default.to_owned())
    };
    let Some(kernel) = kernel(&arg(0, "spmv")) else {
        return usage();
    };
    let Some(input) = input(&arg(1, "rmat")) else {
        return usage();
    };
    let engine = match engine(&arg(2, "tmu")) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("trace: {e}");
            return usage();
        }
    };
    let job = Job::new(kernel, input, engine);
    println!(
        "tracing {} on {} ({})",
        job.kernel,
        job.input.label(),
        job.engine.label()
    );

    tmu_trace::install(Tracer::new(TraceConfig::from_env()));
    let res = job.run();
    let tracer = tmu_trace::uninstall().expect("tracer still installed after the run");

    let trace_json = tracer.chrome_json();
    json::validate(&trace_json).expect("chrome exporter emits well-formed JSON");
    let dir = PathBuf::from("results");
    if let Err(e) = json::create_dir(&dir) {
        eprintln!("trace: {e}");
        return ExitCode::FAILURE;
    }
    let path = dir.join(format!(
        "trace-{}-{}-{}.json",
        job.kernel.to_ascii_lowercase(),
        job.input.label(),
        job.engine.label()
    ));
    if let Err(e) = json::write_text(&path, &trace_json) {
        eprintln!("trace: {e}");
        return ExitCode::FAILURE;
    }

    println!("\n== stats registry ==");
    print!("{}", tracer.registry().dump_text());
    let events: usize = (0..tracer.components().len())
        .map(|i| tracer.ring(tmu_trace::ComponentId(i as u32)).len())
        .sum();
    println!(
        "\n{} cycles simulated; {} events across {} components ({} dropped)",
        res.stats.cycles,
        events,
        tracer.components().len(),
        tracer.dropped_total()
    );
    println!(
        "→ wrote {} (open in chrome://tracing or Perfetto)",
        path.display()
    );
    ExitCode::SUCCESS
}
