//! Analytical area model, calibrated to the paper's RTL results (§6).
//!
//! The authors synthesized the Table 5 TMU in GlobalFoundries 22 nm FD-SOI
//! (Cadence Genus/Innovus): 0.0704 mm² total, 0.0080 mm² per lane, 1.52 %
//! of a Neoverse N1 core scaled to the same node. We cannot run synthesis
//! here, so this module reproduces those numbers with a component
//! decomposition — per-lane stream storage (SRAM) plus lane logic, per-TG
//! mergers, and the shared arbiter/control — and scales them with the
//! design-space parameters swept in Figure 14.

use crate::config::TmuConfig;

/// mm² per byte of stream-queue SRAM (22 nm, from calibration).
const SRAM_MM2_PER_BYTE: f64 = 0.0055 / 2048.0;

/// Fixed per-lane FSM/datapath logic (mm²).
const LANE_LOGIC_MM2: f64 = 0.0025;

/// One traversal-group merger (comparator tree + predicate logic, mm²).
const MERGER_MM2: f64 = 0.0010;

/// Shared memory arbiter + outQ control (mm²).
const ARBITER_MM2: f64 = 0.0024;

/// Neoverse N1 core area scaled to 22 nm (mm²), derived from the paper's
/// 1.52 % figure for the Table 5 TMU.
pub const N1_CORE_MM2: f64 = 4.6316;

/// Area breakdown of a TMU instance (mm², 22 nm FD-SOI).
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct AreaReport {
    /// One lane: stream storage + TU logic.
    pub lane_mm2: f64,
    /// All lanes.
    pub lanes_mm2: f64,
    /// Traversal-group mergers.
    pub mergers_mm2: f64,
    /// Arbiter and outQ control.
    pub arbiter_mm2: f64,
    /// Full engine.
    pub total_mm2: f64,
    /// Engine area as a percentage of a Neoverse N1 core.
    pub percent_of_n1_core: f64,
}

/// Computes the area of a TMU configuration.
pub fn area(cfg: &TmuConfig) -> AreaReport {
    let lane_mm2 = cfg.per_lane_bytes as f64 * SRAM_MM2_PER_BYTE + LANE_LOGIC_MM2;
    let lanes_mm2 = lane_mm2 * cfg.lanes as f64;
    let mergers_mm2 = MERGER_MM2 * cfg.groups as f64;
    let arbiter_mm2 = ARBITER_MM2;
    let total_mm2 = lanes_mm2 + mergers_mm2 + arbiter_mm2;
    AreaReport {
        lane_mm2,
        lanes_mm2,
        mergers_mm2,
        arbiter_mm2,
        total_mm2,
        percent_of_n1_core: total_mm2 / N1_CORE_MM2 * 100.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_reproduces_rtl_numbers() {
        let report = area(&TmuConfig::paper());
        // §6: 0.0704 mm² total, 0.0080 mm²/lane, 1.52 % of an N1 core.
        assert!(
            (report.lane_mm2 - 0.0080).abs() < 1e-6,
            "{}",
            report.lane_mm2
        );
        assert!(
            (report.total_mm2 - 0.0704).abs() < 1e-6,
            "{}",
            report.total_mm2
        );
        assert!(
            (report.percent_of_n1_core - 1.52).abs() < 0.005,
            "{}",
            report.percent_of_n1_core
        );
    }

    #[test]
    fn area_scales_with_storage() {
        let base = area(&TmuConfig::paper());
        let double = area(&TmuConfig::paper().with_total_storage(32 << 10));
        assert!(double.total_mm2 > base.total_mm2);
        // Storage dominates the lane: doubling storage must grow the lane
        // by more than half of its SRAM share.
        assert!(double.lane_mm2 > base.lane_mm2 * 1.3);
    }

    #[test]
    fn fewer_lanes_shrink_the_engine() {
        let eight = area(&TmuConfig::paper());
        let four = area(&TmuConfig::paper().for_sve_bits(256));
        assert!(four.total_mm2 < eight.total_mm2 * 0.6);
    }
}
