//! TMU hardware configuration and the queue-sizing model of §5.5.

use serde::{Deserialize, Serialize};
use tmu_sim::FaultSpec;

use crate::error::TmuError;

/// Configuration of one TMU instance.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TmuConfig {
    /// Number of lanes (rows of the TU matrix). Tied to the host SVE
    /// width: 8 lanes for 512-bit SVE, 4 for 256-bit (§7.2).
    pub lanes: usize,
    /// Stream storage per lane in bytes (2 KB in Table 5).
    pub per_lane_bytes: usize,
    /// Number of traversal groups (layers with mergers); 4 in Table 5.
    pub groups: usize,
    /// Maximum outstanding memory requests (128 in Table 5).
    pub outstanding: usize,
    /// outQ entries per chunk (a chunk is the double-buffering granule
    /// handed to the core).
    pub chunk_entries: usize,
    /// Bytes per stream element (index or value word).
    pub elem_bytes: usize,
    /// Fault-injection schedule for resilience runs. Inactive by default
    /// (no faults, behaviour byte-identical to the fault-free model).
    pub faults: FaultSpec,
}

impl TmuConfig {
    /// The paper's Table 5 configuration: 8 lanes, 2 KB/lane, 4 TGs,
    /// 128 outstanding requests.
    pub fn paper() -> Self {
        Self {
            lanes: 8,
            per_lane_bytes: 2048,
            groups: 4,
            outstanding: 128,
            chunk_entries: 64,
            elem_bytes: 8,
            faults: FaultSpec::none(),
        }
    }

    /// Variant of `self` with the given fault-injection schedule.
    pub fn with_faults(&self, faults: FaultSpec) -> Self {
        Self { faults, ..*self }
    }

    /// A single-lane variant with the *same total storage* as `self`
    /// (the §7.3 comparison against HATS/SpZip-style traversal engines).
    pub fn single_lane(&self) -> Self {
        Self {
            lanes: 1,
            per_lane_bytes: self.per_lane_bytes * self.lanes,
            ..*self
        }
    }

    /// Variant for a given SVE width (Figure 14): 512-bit → 8 lanes,
    /// 256-bit → 4 lanes, 128-bit → 2 lanes.
    pub fn for_sve_bits(&self, sve_bits: u32) -> Self {
        Self {
            lanes: (sve_bits as usize / 64).max(1),
            ..*self
        }
    }

    /// Variant with a different *total* engine storage (Figure 14 x-axis),
    /// spread evenly over the lanes.
    pub fn with_total_storage(&self, total_bytes: usize) -> Self {
        Self {
            per_lane_bytes: (total_bytes / self.lanes).max(64),
            ..*self
        }
    }

    /// Total stream storage across lanes.
    pub fn total_bytes(&self) -> usize {
        self.lanes * self.per_lane_bytes
    }

    /// Stream-queue elements available per lane.
    pub fn elems_per_lane(&self) -> usize {
        self.per_lane_bytes / self.elem_bytes
    }

    /// The §5.5 analytical queue-sizing model.
    ///
    /// All TUs of a layer get the same queue sizes; a lane's storage is
    /// split across the layers proportionally to `weights` — the expected
    /// amount of data each layer loads (estimable from nnz-per-fiber
    /// statistics). `streams_per_layer[l]` is how many streams the layer's
    /// TUs instantiate. Returns per-layer queue depths **in elements per
    /// stream** (each at least 2 so the FSMs can double-buffer).
    pub fn size_queues(&self, weights: &[f64], streams_per_layer: &[usize]) -> Vec<usize> {
        match self.try_size_queues(weights, streams_per_layer) {
            Ok(depths) => depths,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible variant of [`TmuConfig::size_queues`]: rejects mismatched
    /// `weights`/`streams_per_layer` lengths with a typed error instead of
    /// panicking.
    pub fn try_size_queues(
        &self,
        weights: &[f64],
        streams_per_layer: &[usize],
    ) -> Result<Vec<usize>, TmuError> {
        if weights.len() != streams_per_layer.len() {
            return Err(TmuError::QueueSizingMismatch {
                weights: weights.len(),
                layers: streams_per_layer.len(),
            });
        }
        let budget = self.elems_per_lane() as f64;
        let total: f64 = weights.iter().sum();
        Ok(weights
            .iter()
            .zip(streams_per_layer)
            .map(|(&w, &streams)| {
                let layer_elems = if total > 0.0 {
                    budget * w / total
                } else {
                    budget / weights.len() as f64
                };
                ((layer_elems / streams.max(1) as f64) as usize).max(2)
            })
            .collect())
    }
}

impl Default for TmuConfig {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_matches_table5() {
        let cfg = TmuConfig::paper();
        assert_eq!(cfg.lanes, 8);
        assert_eq!(cfg.per_lane_bytes, 2048);
        assert_eq!(cfg.groups, 4);
        assert_eq!(cfg.outstanding, 128);
        assert_eq!(cfg.total_bytes(), 16 << 10);
    }

    #[test]
    fn single_lane_keeps_total_storage() {
        let cfg = TmuConfig::paper();
        let single = cfg.single_lane();
        assert_eq!(single.lanes, 1);
        assert_eq!(single.total_bytes(), cfg.total_bytes());
    }

    #[test]
    fn sve_width_sets_lanes() {
        let cfg = TmuConfig::paper();
        assert_eq!(cfg.for_sve_bits(512).lanes, 8);
        assert_eq!(cfg.for_sve_bits(256).lanes, 4);
        assert_eq!(cfg.for_sve_bits(128).lanes, 2);
    }

    #[test]
    fn queue_sizing_respects_weights() {
        let cfg = TmuConfig::paper(); // 256 elements/lane
        let depths = cfg.size_queues(&[1.0, 15.0], &[2, 4]);
        // Layer 1 loads 15× the data: it must get much deeper queues.
        assert!(depths[1] > depths[0]);
        // Inner layer: 256 × (15/16) / 4 = 60.
        assert_eq!(depths[1], 60);
        assert_eq!(depths[0], 8);
    }

    #[test]
    fn queue_sizing_has_floor() {
        let cfg = TmuConfig::paper().with_total_storage(512); // 8 elems/lane
        let depths = cfg.size_queues(&[1.0, 1.0, 1.0, 1.0], &[4, 4, 4, 4]);
        assert!(depths.iter().all(|&d| d >= 2));
    }
}
