//! TMU architectural-context save/restore (§5.6).
//!
//! When the OS deschedules a thread using the TMU, it quiesces the engine
//! and saves the minimal architectural state: the configuration (program),
//! the head of each TU's `ite` stream, and the outQ control registers. On
//! reschedule the engine is reconstructed and resumes where it left off.
//!
//! In this model the engine's progress is fully determined by the program
//! plus the number of traversal-group steps completed at the quiesce
//! point, so a [`ContextSnapshot`] stores exactly that; `restore` rebuilds
//! an [`Interp`] and replays to the saved step count (the replay is a
//! simulation-host cost, not simulated time — hardware restores its
//! registers directly).

use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::config::TmuConfig;
use crate::error::TmuError;
use crate::image::MemImage;
use crate::interp::Interp;
use crate::program::Program;

/// Saved architectural state of a quiesced TMU.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ContextSnapshot {
    /// Engine configuration (queue types/sizes are derived from it).
    pub config: TmuConfig,
    /// The traversal program (iteration boundaries, streams, callbacks).
    pub program: Program,
    /// Traversal-group steps completed before the switch.
    pub steps_completed: u64,
    /// outQ entries produced before the switch (current writing offset).
    pub entries_produced: u64,
    /// outQ chunks sealed before the switch (the resumed engine's next
    /// chunk id — an outQ control register in hardware).
    pub chunks_sealed: u32,
    /// Owning tenant of the quiesced context (outQ chunk tag).
    pub tenant: u32,
}

impl ContextSnapshot {
    /// Captures a snapshot of a quiesced engine.
    pub fn save(
        config: TmuConfig,
        program: &Program,
        steps_completed: u64,
        entries_produced: u64,
    ) -> Self {
        // Context switches are step-indexed, not cycle-indexed (the engine
        // is quiesced): the event timestamp carries the step count.
        #[cfg(feature = "trace")]
        tmu_trace::with(|t| {
            let c = t.component("system.tmu.ctx");
            t.event(
                c,
                steps_completed,
                tmu_trace::EventKind::CtxSave,
                entries_produced,
            );
        });
        Self {
            config,
            program: program.clone(),
            steps_completed,
            entries_produced,
            chunks_sealed: 0,
            tenant: 0,
        }
    }

    /// Stamps the outQ control registers (sealed-chunk count and tenant
    /// tag) onto the snapshot. The intra-engine fault path never reads
    /// them — the trapped engine keeps its own chunk state — but an
    /// external scheduler descheduling the context must preserve them so
    /// the resumed engine continues the chunk id sequence.
    pub fn with_outq(mut self, chunks_sealed: u32, tenant: u32) -> Self {
        self.chunks_sealed = chunks_sealed;
        self.tenant = tenant;
        self
    }

    /// Restores an interpreter positioned exactly after
    /// `steps_completed` steps.
    ///
    /// # Panics
    ///
    /// Panics if the snapshot's step count exceeds the program length.
    pub fn restore(&self, image: Arc<MemImage>) -> Interp {
        match self.try_restore(image) {
            Ok(interp) => interp,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible variant of [`ContextSnapshot::restore`]: a corrupt
    /// snapshot (step count past the end of the program) is reported as a
    /// typed error instead of a panic.
    pub fn try_restore(&self, image: Arc<MemImage>) -> Result<Interp, TmuError> {
        #[cfg(feature = "trace")]
        tmu_trace::with(|t| {
            let c = t.component("system.tmu.ctx");
            t.event(
                c,
                self.steps_completed,
                tmu_trace::EventKind::CtxRestore,
                self.entries_produced,
            );
        });
        let mut interp = Interp::new(Arc::new(self.program.clone()), image);
        for _ in 0..self.steps_completed {
            interp.next_step().ok_or(TmuError::SnapshotOutOfRange {
                steps: self.steps_completed,
            })?;
        }
        Ok(interp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::run_functional;
    use crate::program::{Event, LayerMode, ProgramBuilder, StreamTy};
    use tmu_sim::AddressMap;

    fn fixture() -> (Program, Arc<MemImage>) {
        let mut map = AddressMap::new();
        let ptrs_r = map.alloc_elems("ptrs", 5, 4);
        let idxs_r = map.alloc_elems("idxs", 6, 4);
        let vals_r = map.alloc_elems("vals", 6, 8);
        let mut image = MemImage::new();
        image.bind_u32(ptrs_r, Arc::new(vec![0, 2, 3, 5, 6]));
        image.bind_u32(idxs_r, Arc::new(vec![0, 2, 1, 0, 3, 2]));
        image.bind_f64(vals_r, Arc::new(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]));
        let mut bld = ProgramBuilder::new();
        let l0 = bld.layer(LayerMode::Single);
        let row = bld.dns_fbrt(l0, 0, 4, 1);
        let ptbs = bld.mem_stream(row, ptrs_r.base, 4, StreamTy::Index);
        let ptes = bld.mem_stream(row, ptrs_r.base + 4, 4, StreamTy::Index);
        let l1 = bld.layer(LayerMode::Single);
        let col = bld.rng_fbrt(l1, ptbs, ptes, 0, 1);
        let v = bld.mem_stream(col, vals_r.base, 8, StreamTy::Value);
        let op = bld.vec_operand(l1, &[v]);
        bld.callback(l1, Event::Ite, 0, &[op]);
        (bld.build().expect("well-formed"), Arc::new(image))
    }

    #[test]
    fn restore_resumes_identically() {
        let (prog, image) = fixture();
        let arc_prog = Arc::new(prog.clone());
        // Uninterrupted run.
        let full = run_functional(&arc_prog, &image);

        // Interrupted run: stop after 5 steps, snapshot, restore, finish.
        let mut interp = Interp::new(Arc::clone(&arc_prog), Arc::clone(&image));
        let mut prefix = Vec::new();
        for _ in 0..5 {
            let s = interp.next_step().expect("program longer than 5 steps");
            prefix.extend(s.entries);
        }
        let snap = ContextSnapshot::save(TmuConfig::paper(), &prog, 5, prefix.len() as u64);
        let mut restored = snap.restore(Arc::clone(&image));
        let mut suffix = Vec::new();
        while let Some(s) = restored.next_step() {
            suffix.extend(s.entries);
        }
        prefix.extend(suffix);
        assert_eq!(prefix, full, "context switch must be transparent");
    }

    #[test]
    fn snapshot_roundtrips_program() {
        let (prog, _) = fixture();
        let snap = ContextSnapshot::save(TmuConfig::paper(), &prog, 0, 0);
        assert_eq!(snap.program, prog);
        assert_eq!(snap.config, TmuConfig::paper());
    }
}
