//! Typed TMU engine errors.
//!
//! The engine's historical entry points panic on malformed configurations,
//! programs, or images; each now has a `try_*` twin returning one of these
//! variants so harnesses (and the graceful-degradation path) can react
//! instead of dying. The panicking wrappers format the same variants, so
//! messages are unchanged.

use std::fmt;

/// A typed TMU failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TmuError {
    /// A program step used more lanes than the engine has.
    LanesExceeded {
        /// Lanes the step needs.
        used: usize,
        /// Lanes the engine has.
        lanes: usize,
    },
    /// A stream load or operand read hit an address no tensor is bound at.
    UnboundAddress {
        /// The offending address.
        addr: u64,
    },
    /// A read straddled a bound region's element grid.
    MisalignedAddress {
        /// The offending address.
        addr: u64,
        /// The region's element size in bytes.
        elem: usize,
    },
    /// A context snapshot's step count exceeds its program's step stream.
    SnapshotOutOfRange {
        /// Steps recorded in the snapshot.
        steps: u64,
    },
    /// `size_queues` weights and per-layer stream counts disagree.
    QueueSizingMismatch {
        /// Number of weights supplied.
        weights: usize,
        /// Number of layers supplied.
        layers: usize,
    },
    /// The simulated OS exhausted its fault-service budget; the engine
    /// retired and the kernel should fall back to the software baseline.
    UnserviceableFault {
        /// Page faults seen when the engine gave up.
        serviced: u32,
        /// The configured service budget.
        limit: u32,
    },
}

impl fmt::Display for TmuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TmuError::LanesExceeded { used, lanes } => {
                write!(f, "program uses {used} lanes but the TMU has {lanes}")
            }
            TmuError::UnboundAddress { addr } => {
                write!(f, "unbound TMU read at {addr:#x}")
            }
            TmuError::MisalignedAddress { addr, elem } => {
                write!(f, "misaligned TMU read at {addr:#x} (element size {elem})")
            }
            TmuError::SnapshotOutOfRange { steps } => {
                write!(f, "snapshot step count exceeds program length ({steps})")
            }
            TmuError::QueueSizingMismatch { weights, layers } => {
                write!(
                    f,
                    "one weight per layer ({weights} weights, {layers} layers)"
                )
            }
            TmuError::UnserviceableFault { serviced, limit } => {
                write!(
                    f,
                    "unserviceable fault: {serviced} page faults exceed the OS service budget of {limit}"
                )
            }
        }
    }
}

impl std::error::Error for TmuError {}
