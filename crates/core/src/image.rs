//! Memory image: binds simulated virtual regions to real data arrays.
//!
//! The TMU engine is programmed with base virtual addresses (Figure 8 uses
//! raw pointers like `a->ptrs`); its functional execution must read the
//! actual array contents while its timing model sends the same addresses
//! through the simulated memory hierarchy. A [`MemImage`] provides that
//! translation: kernels allocate regions in a [`tmu_sim::AddressMap`] and
//! bind the backing slices here.

use std::sync::Arc;

use tmu_sim::Region;

use crate::error::TmuError;

/// Typed backing storage of one bound region.
#[derive(Debug, Clone)]
enum Backing {
    U32(Arc<Vec<u32>>),
    F64(Arc<Vec<f64>>),
}

#[derive(Debug, Clone)]
struct Binding {
    base: u64,
    len_bytes: u64,
    elem: u64,
    data: Backing,
}

/// A collection of region→array bindings.
#[derive(Debug, Clone, Default)]
pub struct MemImage {
    bindings: Vec<Binding>,
}

impl MemImage {
    /// Creates an empty image.
    pub fn new() -> Self {
        Self::default()
    }

    /// Binds `region` to a `u32` index array.
    ///
    /// # Panics
    ///
    /// Panics if the array does not fit the region.
    pub fn bind_u32(&mut self, region: Region, data: Arc<Vec<u32>>) {
        assert!(
            data.len() as u64 * 4 <= region.len,
            "u32 array overflows region"
        );
        self.bindings.push(Binding {
            base: region.base,
            len_bytes: data.len() as u64 * 4,
            elem: 4,
            data: Backing::U32(data),
        });
    }

    /// Binds `region` to an `f64` value array.
    ///
    /// # Panics
    ///
    /// Panics if the array does not fit the region.
    pub fn bind_f64(&mut self, region: Region, data: Arc<Vec<f64>>) {
        assert!(
            data.len() as u64 * 8 <= region.len,
            "f64 array overflows region"
        );
        self.bindings.push(Binding {
            base: region.base,
            len_bytes: data.len() as u64 * 8,
            elem: 8,
            data: Backing::F64(data),
        });
    }

    fn find(&self, addr: u64) -> Option<&Binding> {
        self.bindings
            .iter()
            .find(|b| addr >= b.base && addr < b.base + b.len_bytes)
    }

    /// Locates the binding containing `addr` and the in-bounds element
    /// index, or the typed decode error.
    fn decode(&self, addr: u64) -> Result<(&Binding, usize), TmuError> {
        let b = self.find(addr).ok_or(TmuError::UnboundAddress { addr })?;
        let off = addr - b.base;
        if !off.is_multiple_of(b.elem) {
            return Err(TmuError::MisalignedAddress {
                addr,
                elem: b.elem as usize,
            });
        }
        Ok((b, (off / b.elem) as usize))
    }

    /// Reads an index word at `addr` (u32 arrays; f64 arrays are truncated
    /// to integers, which traversal programs never rely on).
    ///
    /// # Panics
    ///
    /// Panics if the address is unbound or misaligned.
    pub fn read_index(&self, addr: u64) -> i64 {
        match self.try_read_index(addr) {
            Ok(v) => v,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible variant of [`MemImage::read_index`].
    pub fn try_read_index(&self, addr: u64) -> Result<i64, TmuError> {
        let (b, i) = self.decode(addr)?;
        Ok(match &b.data {
            Backing::U32(v) => v[i] as i64,
            Backing::F64(v) => v[i] as i64,
        })
    }

    /// Reads a value word at `addr` as raw bits (u32 widened, f64 bits).
    ///
    /// # Panics
    ///
    /// Panics if the address is unbound or misaligned.
    pub fn read_bits(&self, addr: u64) -> u64 {
        match self.try_read_bits(addr) {
            Ok(v) => v,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible variant of [`MemImage::read_bits`].
    pub fn try_read_bits(&self, addr: u64) -> Result<u64, TmuError> {
        let (b, i) = self.decode(addr)?;
        Ok(match &b.data {
            Backing::U32(v) => v[i] as u64,
            Backing::F64(v) => v[i].to_bits(),
        })
    }

    /// Element width in bytes of the binding containing `addr`.
    ///
    /// # Panics
    ///
    /// Panics if the address is unbound.
    pub fn elem_bytes(&self, addr: u64) -> u64 {
        match self.try_elem_bytes(addr) {
            Ok(v) => v,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible variant of [`MemImage::elem_bytes`].
    pub fn try_elem_bytes(&self, addr: u64) -> Result<u64, TmuError> {
        Ok(self
            .find(addr)
            .ok_or(TmuError::UnboundAddress { addr })?
            .elem)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tmu_sim::AddressMap;

    #[test]
    fn reads_through_bindings() {
        let mut map = AddressMap::new();
        let idx_region = map.alloc_elems("idxs", 4, 4);
        let val_region = map.alloc_elems("vals", 4, 8);
        let mut image = MemImage::new();
        image.bind_u32(idx_region, Arc::new(vec![5, 6, 7, 8]));
        image.bind_f64(val_region, Arc::new(vec![1.5, 2.5, 3.5, 4.5]));
        assert_eq!(image.read_index(idx_region.u32_at(2)), 7);
        assert_eq!(f64::from_bits(image.read_bits(val_region.f64_at(1))), 2.5);
        assert_eq!(image.elem_bytes(idx_region.base), 4);
    }

    #[test]
    #[should_panic(expected = "unbound")]
    fn unbound_read_panics() {
        let image = MemImage::new();
        image.read_index(0x1234);
    }

    #[test]
    fn try_reads_report_typed_errors() {
        use crate::error::TmuError;
        let mut map = AddressMap::new();
        let r = map.alloc_elems("vals", 4, 8);
        let mut image = MemImage::new();
        image.bind_f64(r, Arc::new(vec![1.0; 4]));
        assert_eq!(
            image.try_read_bits(0x1234),
            Err(TmuError::UnboundAddress { addr: 0x1234 })
        );
        assert_eq!(
            image.try_read_index(r.base + 3),
            Err(TmuError::MisalignedAddress {
                addr: r.base + 3,
                elem: 8
            })
        );
        assert_eq!(image.try_elem_bytes(r.base), Ok(8));
    }

    #[test]
    #[should_panic(expected = "overflows region")]
    fn oversized_binding_rejected() {
        let mut map = AddressMap::new();
        let r = map.alloc("small", 8);
        let mut image = MemImage::new();
        image.bind_f64(r, Arc::new(vec![0.0; 4096]));
    }
}
