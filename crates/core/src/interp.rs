//! Functional interpreter of TMU programs.
//!
//! Produces, lazily and in nested-loop order, the stream of traversal-group
//! [`Step`]s a configured TMU performs: which elements each TU loads (with
//! their dependency edges), how the traversal groups merge/co-iterate lanes
//! (§5.2), and which outQ entries the registered callbacks push (§5.3).
//! The timing engine ([`crate::TmuAccelerator`]) replays this stream
//! against the simulated memory hierarchy; the functional content (operand
//! values) is computed here from the bound [`MemImage`].

use std::collections::VecDeque;
use std::sync::Arc;

use crate::image::MemImage;
use crate::program::{
    Event, IndexSrc, LayerMode, OperandDef, Program, StreamDef, StreamRef, StreamTy, TraversalDef,
};
use crate::steps::{ElemId, MemLoad, Operand, OutQEntry, Step, StepKind};

/// A peeked (current) element of one TU.
#[derive(Debug, Clone, Default)]
struct ElemRt {
    /// Per-stream values (raw bits).
    vals: Vec<u64>,
    /// Per-stream mem-load ids (None for non-mem streams).
    mem_by_stream: Vec<Option<ElemId>>,
    /// All gating ids of this element (own loads + fiber bound deps).
    gates: Vec<ElemId>,
}

/// Runtime state of one TU (lane of a layer).
#[derive(Debug, Clone, Default)]
struct LaneRt {
    active: bool,
    i: i64,
    beg: i64,
    end: i64,
    stride: i64,
    bound_deps: Vec<ElemId>,
    parent_vals: Vec<u64>,
    cur: Option<ElemRt>,
    last: ElemRt,
}

impl LaneRt {
    fn in_range(&self) -> bool {
        if self.stride >= 0 {
            self.i < self.end
        } else {
            self.i > self.end
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Start(usize),
    Step(usize),
    Done,
}

/// Lazily interprets a [`Program`] over a [`MemImage`].
#[derive(Debug)]
pub struct Interp {
    prog: Arc<Program>,
    image: Arc<MemImage>,
    layers: Vec<Vec<LaneRt>>,
    elem_counts: Vec<Vec<u64>>,
    next_elem: ElemId,
    phase: Phase,
    /// Total outQ entries produced so far.
    pub entries_produced: u64,
}

impl Interp {
    /// Creates an interpreter positioned before the first step.
    pub fn new(prog: Arc<Program>, image: Arc<MemImage>) -> Self {
        let layers: Vec<Vec<LaneRt>> = prog
            .layers
            .iter()
            .map(|l| vec![LaneRt::default(); l.tus.len()])
            .collect();
        let elem_counts = prog
            .layers
            .iter()
            .map(|l| vec![0u64; l.tus.len()])
            .collect();
        let mut interp = Self {
            prog,
            image,
            layers,
            elem_counts,
            next_elem: 0,
            phase: Phase::Start(0),
            entries_produced: 0,
        };
        interp.init_root();
        interp
    }

    /// Elements (stream loads) issued so far — the next [`ElemId`] this
    /// interpreter will hand out. The timing model uses it after a context
    /// restore to rebase its ready-tracking ring.
    pub fn elems_issued(&self) -> ElemId {
        self.next_elem
    }

    fn init_root(&mut self) {
        let defs: Vec<TraversalDef> = self.prog.layers[0]
            .tus
            .iter()
            .map(|t| t.traversal)
            .collect();
        for (lane, def) in defs.iter().enumerate() {
            let rt = &mut self.layers[0][lane];
            match *def {
                TraversalDef::Dns { beg, end, stride } => {
                    rt.active = true;
                    rt.i = beg;
                    rt.beg = beg;
                    rt.end = end;
                    rt.stride = stride;
                }
                _ => unreachable!("validated: root uses constant bounds"),
            }
        }
    }

    fn stream_ty(&self, r: StreamRef) -> StreamTy {
        match &self.prog.layers[r.layer].tus[r.lane].streams[r.stream] {
            StreamDef::Mem { ty, .. } => *ty,
            StreamDef::Fwd { from } => self.stream_ty(*from),
            _ => StreamTy::Index,
        }
    }

    /// Peeks the current element of `(l, lane)`, creating its loads.
    fn peek(&mut self, l: usize, lane: usize, loads: &mut Vec<MemLoad>) {
        let rt = &self.layers[l][lane];
        if !rt.active || rt.cur.is_some() || !rt.in_range() {
            return;
        }
        let i = rt.i;
        let beg0 = rt.beg;
        let bound_deps = rt.bound_deps.clone();
        let parent_vals = rt.parent_vals.clone();
        let tu = &self.prog.layers[l].tus[lane];
        let n = tu.streams.len();
        let mut vals = vec![0u64; n];
        let mut mem_by_stream: Vec<Option<ElemId>> = vec![None; n];
        let mut gates = bound_deps.clone();
        let ordinal = self.elem_counts[l][lane];
        for (si, s) in tu.streams.iter().enumerate() {
            match s {
                StreamDef::Ite => vals[si] = i as u64,
                StreamDef::Mem {
                    base,
                    elem,
                    index,
                    ty,
                } => {
                    let idx = match index {
                        IndexSrc::Ite => i,
                        IndexSrc::Stream(j) => vals[*j] as i64,
                        IndexSrc::RelItePlus(j) => (i - beg0) + vals[*j] as i64,
                    };
                    let addr = (*base as i64 + idx * *elem as i64) as u64;
                    vals[si] = match ty {
                        StreamTy::Index => self.image.read_index(addr) as u64,
                        StreamTy::Value => self.image.read_bits(addr),
                    };
                    let id = self.next_elem;
                    self.next_elem += 1;
                    let mut deps = bound_deps.clone();
                    if let IndexSrc::Stream(j) | IndexSrc::RelItePlus(j) = index {
                        if let Some(dep) = mem_by_stream[*j] {
                            deps.push(dep);
                        }
                    }
                    loads.push(MemLoad {
                        id,
                        layer: l as u8,
                        lane: lane as u8,
                        stream: si as u8,
                        elem_ordinal: ordinal,
                        addr,
                        deps,
                    });
                    mem_by_stream[si] = Some(id);
                    gates.push(id);
                }
                StreamDef::Lin { a, b, of } => {
                    vals[si] = (a * (vals[*of] as i64) + b) as u64;
                }
                StreamDef::Map { table, of } => {
                    vals[si] =
                        table[(vals[*of] as i64).rem_euclid(table.len() as i64) as usize] as u64;
                }
                StreamDef::Ldr { base, elem, of } => {
                    vals[si] = (*base as i64 + (vals[*of] as i64) * *elem as i64) as u64;
                }
                StreamDef::Fwd { from } => {
                    vals[si] = parent_vals.get(from.stream).copied().unwrap_or(0);
                }
            }
        }
        self.elem_counts[l][lane] += 1;
        self.layers[l][lane].cur = Some(ElemRt {
            vals,
            mem_by_stream,
            gates,
        });
    }

    fn consume(&mut self, l: usize, lane: usize) {
        let rt = &mut self.layers[l][lane];
        let cur = rt.cur.take().expect("consume requires a peeked element");
        rt.last = cur;
        rt.i += rt.stride;
    }

    fn key_of(&self, l: usize, lane: usize) -> i64 {
        let tu = &self.prog.layers[l].tus[lane];
        let k = tu.key.unwrap_or(0);
        let cur = self.layers[l][lane]
            .cur
            .as_ref()
            .expect("key requires a peeked element");
        cur.vals[k] as i64
    }

    fn active_mask(&self, l: usize) -> u64 {
        let mut m = 0u64;
        for (lane, rt) in self.layers[l].iter().enumerate() {
            if rt.active {
                m |= 1 << lane;
            }
        }
        m
    }

    fn alive_mask(&self, l: usize) -> u64 {
        let mut m = 0u64;
        for (lane, rt) in self.layers[l].iter().enumerate() {
            if rt.active && rt.cur.is_some() {
                m |= 1 << lane;
            }
        }
        m
    }

    /// Evaluates the callbacks registered for `event` on layer `l`.
    fn entries_for(&mut self, l: usize, event: Event, mask: u64) -> Vec<OutQEntry> {
        let mut entries = Vec::new();
        let layer = &self.prog.layers[l];
        for cb in &layer.callbacks {
            if cb.event != event {
                continue;
            }
            let operands = cb
                .operands
                .iter()
                .map(|op| match &layer.operands[op.0] {
                    OperandDef::Vec { streams } => {
                        let ty = streams
                            .first()
                            .map(|&s| self.stream_ty(s))
                            .unwrap_or(StreamTy::Index);
                        let vals = streams
                            .iter()
                            .map(|s| {
                                if mask & (1 << s.lane) != 0 {
                                    self.layers[l][s.lane].last.vals[s.stream]
                                } else {
                                    0
                                }
                            })
                            .collect();
                        Operand::Vec { vals, ty }
                    }
                    OperandDef::Mask => Operand::Mask(mask),
                    OperandDef::Scalar { stream } => Operand::Scalar {
                        val: self.layers[stream.layer][stream.lane]
                            .last
                            .vals
                            .get(stream.stream)
                            .copied()
                            .unwrap_or(0),
                        ty: self.stream_ty(*stream),
                    },
                })
                .collect();
            entries.push(OutQEntry {
                callback: cb.id,
                mask,
                operands,
            });
        }
        self.entries_produced += entries.len() as u64;
        entries
    }

    /// Initializes layer `l + 1`'s fibers after an `Ite` of layer `l`.
    fn descend(&mut self, l: usize, mask: u64) {
        let child = l + 1;
        let parent_mode = self.prog.layers[l].mode;
        let tus = self.prog.layers[child].tus.clone();
        for (lane, tu) in tus.iter().enumerate() {
            let p = tu.parent_lane;
            let parent_ok = match parent_mode {
                LayerMode::Single | LayerMode::Keep => true,
                _ => mask & (1 << p) != 0,
            };
            let parent_rt = &self.layers[l][p];
            if !parent_ok || !parent_rt.active {
                self.layers[child][lane] = LaneRt::default();
                continue;
            }
            let pv = parent_rt.last.vals.clone();
            let pmem = parent_rt.last.mem_by_stream.clone();
            // `origin` is the fiber start before any lane phase offset —
            // the reference point of `IndexSrc::RelItePlus`.
            let (i, origin, end, stride, mut bound_deps) = match tu.traversal {
                TraversalDef::Dns { beg, end, stride } => (beg, beg, end, stride, Vec::new()),
                TraversalDef::Rng {
                    beg,
                    end,
                    offset,
                    stride,
                } => {
                    let b0 = pv[beg.stream] as i64;
                    let e = pv[end.stream] as i64;
                    let mut deps = Vec::new();
                    if let Some(Some(d)) = pmem.get(beg.stream) {
                        deps.push(*d);
                    }
                    if let Some(Some(d)) = pmem.get(end.stream) {
                        deps.push(*d);
                    }
                    (b0 + offset, b0, e, stride, deps)
                }
                TraversalDef::Idx {
                    beg,
                    size,
                    offset,
                    stride,
                } => {
                    let b0 = pv[beg.stream] as i64;
                    let mut deps = Vec::new();
                    if let Some(Some(d)) = pmem.get(beg.stream) {
                        deps.push(*d);
                    }
                    (b0 + offset, b0, b0 + size, stride, deps)
                }
            };
            // The child also cannot outrun its parent's own fiber bounds.
            bound_deps.extend(parent_rt.bound_deps.iter().copied());
            bound_deps.dedup();
            self.layers[child][lane] = LaneRt {
                active: true,
                i,
                beg: origin,
                end,
                stride,
                bound_deps,
                parent_vals: pv,
                cur: None,
                last: ElemRt::default(),
            };
        }
        self.phase = Phase::Start(child);
    }

    /// Produces the next step, or `None` when traversal is complete.
    pub fn next_step(&mut self) -> Option<Step> {
        loop {
            match self.phase {
                Phase::Done => return None,
                Phase::Start(l) => {
                    let mask = self.active_mask(l);
                    let gates: Vec<ElemId> = self.layers[l]
                        .iter()
                        .filter(|rt| rt.active)
                        .flat_map(|rt| rt.bound_deps.iter().copied())
                        .collect();
                    self.phase = Phase::Step(l);
                    let entries = self.entries_for(l, Event::Beg, mask);
                    return Some(Step {
                        layer: l as u8,
                        kind: StepKind::Beg,
                        mask,
                        loads: Vec::new(),
                        gates,
                        consumed: Vec::new(),
                        entries,
                    });
                }
                Phase::Step(l) => {
                    let step = self.group_step(l);
                    if let Some(s) = step {
                        return Some(s);
                    }
                    // group_step only returns None for ConjMrg skips that it
                    // chose to elide; loop again.
                }
            }
        }
    }

    fn end_step(&mut self, l: usize, loads: Vec<MemLoad>) -> Step {
        let mask = self.active_mask(l);
        let gates: Vec<ElemId> = self.layers[l]
            .iter()
            .filter(|rt| rt.active)
            .flat_map(|rt| rt.bound_deps.iter().copied())
            .collect();
        // A conjunctive merge ends as soon as one fiber is exhausted;
        // elements already peeked on the other lanes are discarded by the
        // hardware — mark them consumed so their queue slots free up.
        let mut consumed = Vec::new();
        for lane in 0..self.layers[l].len() {
            if self.layers[l][lane].cur.take().is_some() {
                consumed.push((l as u8, lane as u8));
            }
        }
        self.phase = if l == 0 {
            Phase::Done
        } else {
            Phase::Step(l - 1)
        };
        let entries = self.entries_for(l, Event::End, mask);
        Step {
            layer: l as u8,
            kind: StepKind::End,
            mask,
            loads,
            gates,
            consumed,
            entries,
        }
    }

    fn group_step(&mut self, l: usize) -> Option<Step> {
        let mode = self.prog.layers[l].mode;
        let lanes = self.prog.layers[l].tus.len();
        let mut loads = Vec::new();
        for lane in 0..lanes {
            self.peek(l, lane, &mut loads);
        }
        let active = self.active_mask(l);
        let alive = self.alive_mask(l);

        let (mask, ended) = match mode {
            LayerMode::Single | LayerMode::Keep | LayerMode::LockStep => {
                if alive == 0 {
                    (0, true)
                } else {
                    (alive, false)
                }
            }
            LayerMode::DisjMrg => {
                if alive == 0 {
                    (0, true)
                } else {
                    let min = (0..lanes)
                        .filter(|&j| alive & (1 << j) != 0)
                        .map(|j| self.key_of(l, j))
                        .min()
                        .expect("alive non-empty");
                    let mut m = 0u64;
                    for j in 0..lanes {
                        if alive & (1 << j) != 0 && self.key_of(l, j) == min {
                            m |= 1 << j;
                        }
                    }
                    (m, false)
                }
            }
            LayerMode::ConjMrg => {
                if active == 0 || alive != active {
                    (0, true)
                } else {
                    let min = (0..lanes)
                        .filter(|&j| alive & (1 << j) != 0)
                        .map(|j| self.key_of(l, j))
                        .min()
                        .expect("alive non-empty");
                    let mut m = 0u64;
                    for j in 0..lanes {
                        if alive & (1 << j) != 0 && self.key_of(l, j) == min {
                            m |= 1 << j;
                        }
                    }
                    (m, false)
                }
            }
        };

        if ended {
            return Some(self.end_step(l, loads));
        }

        // Consume the participating lanes, gathering gates.
        let mut gates = Vec::new();
        let mut consumed = Vec::new();
        for j in 0..lanes {
            if mask & (1 << j) != 0 {
                if let Some(cur) = self.layers[l][j].cur.as_ref() {
                    gates.extend(cur.gates.iter().copied());
                }
                self.consume(l, j);
                consumed.push((l as u8, j as u8));
            }
        }

        // Conjunctive merge only emits when all active lanes participate.
        if mode == LayerMode::ConjMrg && mask != active {
            return Some(Step {
                layer: l as u8,
                kind: StepKind::Skip,
                mask,
                loads,
                gates,
                consumed,
                entries: Vec::new(),
            });
        }

        let entries = self.entries_for(l, Event::Ite, mask);
        let step = Step {
            layer: l as u8,
            kind: StepKind::Ite,
            mask,
            loads,
            gates,
            consumed,
            entries,
        };
        if l + 1 < self.prog.layers.len() {
            self.descend(l, mask);
        }
        Some(step)
    }
}

/// Runs a program to completion functionally, returning every outQ entry
/// in order (convenience for tests and small examples).
pub fn run_functional(prog: &Arc<Program>, image: &Arc<MemImage>) -> Vec<OutQEntry> {
    let mut interp = Interp::new(Arc::clone(prog), Arc::clone(image));
    let mut out = Vec::new();
    while let Some(step) = interp.next_step() {
        out.extend(step.entries);
    }
    out
}

/// Runs a program to completion, handing each outQ entry to `f`.
pub fn for_each_entry(prog: &Arc<Program>, image: &Arc<MemImage>, mut f: impl FnMut(&OutQEntry)) {
    let mut interp = Interp::new(Arc::clone(prog), Arc::clone(image));
    while let Some(step) = interp.next_step() {
        for e in &step.entries {
            f(e);
        }
    }
}

/// Batches steps from an interpreter (used by the timing engine).
#[derive(Debug)]
pub struct StepBatcher {
    interp: Interp,
    buf: VecDeque<Step>,
    done: bool,
}

impl StepBatcher {
    /// Wraps an interpreter.
    pub fn new(interp: Interp) -> Self {
        Self {
            interp,
            buf: VecDeque::new(),
            done: false,
        }
    }

    /// Ensures at least `n` steps are buffered (or the stream has ended);
    /// returns whether any remain.
    pub fn fill(&mut self, n: usize) -> bool {
        while self.buf.len() < n && !self.done {
            match self.interp.next_step() {
                Some(s) => self.buf.push_back(s),
                None => self.done = true,
            }
        }
        !self.buf.is_empty()
    }

    /// Pops the next buffered step.
    pub fn pop(&mut self) -> Option<Step> {
        self.buf.pop_front()
    }

    /// Peeks the next buffered step.
    pub fn peek(&mut self) -> Option<&Step> {
        if self.buf.is_empty() {
            self.fill(1);
        }
        self.buf.front()
    }

    /// Whether all steps have been drained.
    pub fn exhausted(&mut self) -> bool {
        self.buf.is_empty() && {
            self.fill(1);
            self.buf.is_empty()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{LayerMode, ProgramBuilder, StreamTy};
    use tmu_sim::AddressMap;

    /// Binds the Figure 1 CSR matrix and the Figure 8 SpMV program.
    fn spmv_fixture() -> (Arc<Program>, Arc<MemImage>) {
        // Figure 1 CSR: ptrs [0,2,2,3,5], idxs [0,2,1,0,3],
        // vals [a,b,c,d,e] = [1,2,3,4,5], dense vector b = [10,20,30,40].
        let mut map = AddressMap::new();
        let ptrs_r = map.alloc_elems("ptrs", 5, 4);
        let idxs_r = map.alloc_elems("idxs", 5, 4);
        let vals_r = map.alloc_elems("vals", 5, 8);
        let b_r = map.alloc_elems("b", 4, 8);
        let mut image = MemImage::new();
        image.bind_u32(ptrs_r, Arc::new(vec![0, 2, 2, 3, 5]));
        image.bind_u32(idxs_r, Arc::new(vec![0, 2, 1, 0, 3]));
        image.bind_f64(vals_r, Arc::new(vec![1.0, 2.0, 3.0, 4.0, 5.0]));
        image.bind_f64(b_r, Arc::new(vec![10.0, 20.0, 30.0, 40.0]));

        let mut bld = ProgramBuilder::new();
        let l0 = bld.layer(LayerMode::Single);
        let row = bld.dns_fbrt(l0, 0, 4, 1);
        let ptbs = bld.mem_stream(row, ptrs_r.base, 4, StreamTy::Index);
        let ptes = bld.mem_stream(row, ptrs_r.base + 4, 4, StreamTy::Index);
        let l1 = bld.layer(LayerMode::LockStep);
        let mut nnz = Vec::new();
        let mut vecv = Vec::new();
        for lane in 0..2i64 {
            let col = bld.rng_fbrt(l1, ptbs, ptes, lane, 2);
            let ci = bld.mem_stream(col, idxs_r.base, 4, StreamTy::Index);
            nnz.push(bld.mem_stream(col, vals_r.base, 8, StreamTy::Value));
            vecv.push(bld.mem_stream_indexed(col, b_r.base, 8, StreamTy::Value, ci));
        }
        let nnz_op = bld.vec_operand(l1, &nnz);
        let vec_op = bld.vec_operand(l1, &vecv);
        bld.callback(l1, Event::Ite, 0, &[nnz_op, vec_op]);
        bld.callback(l1, Event::End, 1, &[]);
        (Arc::new(bld.build().expect("well-formed")), Arc::new(image))
    }

    #[test]
    fn figure9_walkthrough() {
        // The Figure 9 example: SpMV inner-loop vectorized over the
        // Figure 1 matrix. Row 0 has nnzs (a@0, b@2): lanes load (a, b)
        // and (b[0], b[2]) in lockstep, then the row ends.
        let (prog, image) = spmv_fixture();
        let entries = run_functional(&prog, &image);
        // Per row: ceil(nnz/2) ri entries + 1 re entry.
        // Rows have 2, 0, 1, 2 nnz → 1 + 0 + 1 + 1 = 3 ri entries, 4 re.
        let ri: Vec<_> = entries.iter().filter(|e| e.callback == 0).collect();
        let re_count = entries.iter().filter(|e| e.callback == 1).count();
        assert_eq!(ri.len(), 3);
        assert_eq!(re_count, 4);
        // Row 0 step: nnz values (1, 2), vector values (10, 30), mask 11.
        assert_eq!(ri[0].mask, 0b11);
        assert_eq!(ri[0].operands[0].as_f64s(), vec![1.0, 2.0]);
        assert_eq!(ri[0].operands[1].as_f64s(), vec![10.0, 30.0]);
        // Row 2 has one nnz: only lane 0 participates.
        assert_eq!(ri[1].mask, 0b01);
        assert_eq!(ri[1].operands[0].as_f64s(), vec![3.0, 0.0]);
        assert_eq!(ri[1].operands[1].as_f64s(), vec![20.0, 0.0]);
        // Row 3: nnzs (d@0, e@3) → values (4,5), vector (10,40).
        assert_eq!(ri[2].operands[0].as_f64s(), vec![4.0, 5.0]);
        assert_eq!(ri[2].operands[1].as_f64s(), vec![10.0, 40.0]);
    }

    #[test]
    fn spmv_result_matches_reference() {
        let (prog, image) = spmv_fixture();
        // Host-side compute: sum += reduce(nnz*vec) per ri; store per re.
        let mut x = Vec::new();
        let mut sum = 0.0;
        for_each_entry(&prog, &image, |e| match e.callback {
            0 => {
                let nnz = e.operands[0].as_f64s();
                let vecv = e.operands[1].as_f64s();
                sum += nnz.iter().zip(&vecv).map(|(a, b)| a * b).sum::<f64>();
            }
            1 => {
                x.push(sum);
                sum = 0.0;
            }
            _ => unreachable!(),
        });
        // Reference: row0 = 1*10 + 2*30 = 70; row1 = 0; row2 = 3*20 = 60;
        // row3 = 4*10 + 5*40 = 240.
        assert_eq!(x, vec![70.0, 0.0, 60.0, 240.0]);
    }

    #[test]
    fn loads_have_dependencies_and_ordinals() {
        let (prog, image) = spmv_fixture();
        let mut interp = Interp::new(prog, image);
        let mut loads = Vec::new();
        while let Some(s) = interp.next_step() {
            loads.extend(s.loads);
        }
        // Vector-value loads (chained) must depend on their column-index
        // load; bound deps point at the row-pointer loads.
        let chained: Vec<_> = loads
            .iter()
            .filter(|ld| ld.layer == 1 && !ld.deps.is_empty())
            .collect();
        assert!(!chained.is_empty());
        let with_three_deps = loads.iter().filter(|ld| ld.deps.len() >= 3).count();
        assert!(
            with_three_deps > 0,
            "b[idx] loads carry bounds + index deps"
        );
        // Ordinals increase per TU.
        let mut last = std::collections::HashMap::new();
        for ld in &loads {
            let k = (ld.layer, ld.lane);
            let prev = last.insert(k, ld.elem_ordinal);
            if let Some(p) = prev {
                assert!(ld.elem_ordinal >= p, "ordinals must be monotonic");
            }
        }
    }

    #[test]
    fn disjunctive_merge_matches_oracle() {
        // Two singleton fibers merged disjunctively; compare against the
        // tmu-tensor reference merge of Figure 2.
        let mut map = AddressMap::new();
        let ai = map.alloc_elems("ai", 3, 4);
        let av = map.alloc_elems("av", 3, 8);
        let bi = map.alloc_elems("bi", 3, 4);
        let bv = map.alloc_elems("bv", 3, 8);
        let mut image = MemImage::new();
        image.bind_u32(ai, Arc::new(vec![0, 2, 5]));
        image.bind_f64(av, Arc::new(vec![1.0, 2.0, 5.0]));
        image.bind_u32(bi, Arc::new(vec![2, 3, 5]));
        image.bind_f64(bv, Arc::new(vec![3.0, 4.0, 6.0]));

        let mut bld = ProgramBuilder::new();
        let l0 = bld.layer(LayerMode::DisjMrg);
        let ta = bld.dns_fbrt(l0, 0, 3, 1);
        let ka = bld.mem_stream(ta, ai.base, 4, StreamTy::Index);
        let va = bld.mem_stream(ta, av.base, 8, StreamTy::Value);
        let tb = bld.dns_fbrt(l0, 0, 3, 1);
        let kb = bld.mem_stream(tb, bi.base, 4, StreamTy::Index);
        let vb = bld.mem_stream(tb, bv.base, 8, StreamTy::Value);
        bld.set_key(ta, ka);
        bld.set_key(tb, kb);
        let vals = bld.vec_operand(l0, &[va, vb]);
        let keys = bld.vec_operand(l0, &[ka, kb]);
        let mask = bld.mask_operand(l0);
        bld.callback(l0, Event::Ite, 7, &[keys, vals, mask]);
        let prog = Arc::new(bld.build().expect("well-formed"));
        let image = Arc::new(image);

        let entries = run_functional(&prog, &image);
        let masks: Vec<u64> = entries.iter().map(|e| e.mask).collect();
        // Figure 2 disjunctive: masks 01, 11, 10, 11 (bit0 = fiber A).
        assert_eq!(masks, vec![0b01, 0b11, 0b10, 0b11]);
        let sums: Vec<f64> = entries
            .iter()
            .map(|e| e.operands[1].as_f64s().iter().sum())
            .collect();
        assert_eq!(sums, vec![1.0, 5.0, 4.0, 11.0]);
    }

    #[test]
    fn conjunctive_merge_intersects() {
        let mut map = AddressMap::new();
        let ai = map.alloc_elems("ai", 3, 4);
        let av = map.alloc_elems("av", 3, 8);
        let bi = map.alloc_elems("bi", 3, 4);
        let bv = map.alloc_elems("bv", 3, 8);
        let mut image = MemImage::new();
        image.bind_u32(ai, Arc::new(vec![0, 2, 5]));
        image.bind_f64(av, Arc::new(vec![1.0, 2.0, 5.0]));
        image.bind_u32(bi, Arc::new(vec![2, 3, 5]));
        image.bind_f64(bv, Arc::new(vec![3.0, 4.0, 6.0]));

        let mut bld = ProgramBuilder::new();
        let l0 = bld.layer(LayerMode::ConjMrg);
        let ta = bld.dns_fbrt(l0, 0, 3, 1);
        let ka = bld.mem_stream(ta, ai.base, 4, StreamTy::Index);
        let va = bld.mem_stream(ta, av.base, 8, StreamTy::Value);
        let tb = bld.dns_fbrt(l0, 0, 3, 1);
        let kb = bld.mem_stream(tb, bi.base, 4, StreamTy::Index);
        let vb = bld.mem_stream(tb, bv.base, 8, StreamTy::Value);
        bld.set_key(ta, ka);
        bld.set_key(tb, kb);
        let vals = bld.vec_operand(l0, &[va, vb]);
        bld.callback(l0, Event::Ite, 3, &[vals]);
        let prog = Arc::new(bld.build().expect("well-formed"));
        let image = Arc::new(image);

        let entries = run_functional(&prog, &image);
        let prods: Vec<f64> = entries
            .iter()
            .map(|e| e.operands[0].as_f64s().iter().product())
            .collect();
        // Intersection at coordinates 2 and 5: 2·3 and 5·6.
        assert_eq!(prods, vec![6.0, 30.0]);
    }

    #[test]
    fn lockstep_emits_begin_and_end_events() {
        let (prog, image) = spmv_fixture();
        let mut interp = Interp::new(prog, image);
        let mut kinds = Vec::new();
        while let Some(s) = interp.next_step() {
            kinds.push((s.layer, s.kind));
        }
        // Outer traversal: Beg(0) ... End(0); each row wraps an inner
        // Beg(1)/End(1) pair.
        assert_eq!(kinds.first(), Some(&(0, StepKind::Beg)));
        assert_eq!(kinds.last(), Some(&(0, StepKind::End)));
        let inner_begs = kinds.iter().filter(|k| **k == (1, StepKind::Beg)).count();
        let inner_ends = kinds.iter().filter(|k| **k == (1, StepKind::End)).count();
        assert_eq!(inner_begs, 4, "one inner traversal per row");
        assert_eq!(inner_begs, inner_ends);
    }

    #[test]
    fn keep_mode_selects_one_lane_of_a_parallel_group() {
        // Two lockstep lanes load different pointer pairs; a Keep child
        // bound to lane 1 must traverse only lane 1's fiber.
        let mut map = AddressMap::new();
        let p0 = map.alloc_elems("p0", 2, 4);
        let p1 = map.alloc_elems("p1", 2, 4);
        let vals = map.alloc_elems("vals", 8, 8);
        let mut image = MemImage::new();
        image.bind_u32(p0, Arc::new(vec![0, 2])); // lane 0's fiber: [0, 2)
        image.bind_u32(p1, Arc::new(vec![4, 7])); // lane 1's fiber: [4, 7)
        image.bind_f64(vals, Arc::new((0..8).map(f64::from).collect()));

        let mut bld = ProgramBuilder::new();
        let l0 = bld.layer(LayerMode::LockStep);
        let t0 = bld.dns_fbrt(l0, 0, 1, 1);
        let b0 = bld.mem_stream(t0, p0.base, 4, StreamTy::Index);
        let e0 = bld.mem_stream(t0, p0.base + 4, 4, StreamTy::Index);
        let t1 = bld.dns_fbrt(l0, 0, 1, 1);
        let b1 = bld.mem_stream(t1, p1.base, 4, StreamTy::Index);
        let e1 = bld.mem_stream(t1, p1.base + 4, 4, StreamTy::Index);
        let _ = (b0, e0);
        let l1 = bld.layer(LayerMode::Keep);
        let kept = bld.rng_fbrt(l1, b1, e1, 0, 1);
        bld.bind_parent(kept, 1);
        let v = bld.mem_stream(kept, vals.base, 8, StreamTy::Value);
        let op = bld.vec_operand(l1, &[v]);
        bld.callback(l1, Event::Ite, 0, &[op]);
        let prog = Arc::new(bld.build().expect("well-formed"));

        let entries = run_functional(&prog, &Arc::new(image));
        let got: Vec<f64> = entries.iter().map(|e| e.operands[0].as_f64s()[0]).collect();
        assert_eq!(got, vec![4.0, 5.0, 6.0], "Keep must follow lane 1 only");
    }

    #[test]
    fn empty_matrix_produces_no_ite() {
        let mut map = AddressMap::new();
        let ptrs_r = map.alloc_elems("ptrs", 3, 4);
        let idxs_r = map.alloc_elems("idxs", 1, 4);
        let vals_r = map.alloc_elems("vals", 1, 8);
        let mut image = MemImage::new();
        image.bind_u32(ptrs_r, Arc::new(vec![0, 0, 0]));
        image.bind_u32(idxs_r, Arc::new(vec![0]));
        image.bind_f64(vals_r, Arc::new(vec![0.0]));
        let mut bld = ProgramBuilder::new();
        let l0 = bld.layer(LayerMode::Single);
        let row = bld.dns_fbrt(l0, 0, 2, 1);
        let ptbs = bld.mem_stream(row, ptrs_r.base, 4, StreamTy::Index);
        let ptes = bld.mem_stream(row, ptrs_r.base + 4, 4, StreamTy::Index);
        let l1 = bld.layer(LayerMode::Single);
        let col = bld.rng_fbrt(l1, ptbs, ptes, 0, 1);
        let v = bld.mem_stream(col, vals_r.base, 8, StreamTy::Value);
        let op = bld.vec_operand(l1, &[v]);
        bld.callback(l1, Event::Ite, 0, &[op]);
        let prog = Arc::new(bld.build().expect("well-formed"));
        let entries = run_functional(&prog, &Arc::new(image));
        assert!(entries.is_empty(), "empty rows trigger no iteration");
    }
}
