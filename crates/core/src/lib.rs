//! The Tensor Marshaling Unit (TMU).
//!
//! Reproduction of the near-core programmable dataflow engine of
//! *"A Tensor Marshaling Unit for Sparse Tensor Algebra on General-Purpose
//! Processors"* (MICRO 2023). The TMU offloads sparse-tensor **traversal**
//! and **merging** from an out-of-order core: a matrix of Traversal Units
//! (lanes × layers) walks compressed tensor fibers in dataflow fashion,
//! merges or co-iterates lanes in hardware, and *marshals* the resulting
//! vector operands into a memory-mapped output queue that the host core
//! consumes with SIMD callback functions.
//!
//! * [`ProgramBuilder`] — the Figure 8 configuration API: traversal
//!   primitives `DnsFbrT`/`RngFbrT`/`IdxFbrT` (Table 1), data streams
//!   `ite`/`mem`/`lin`/`map`/`ldr`/`fwd` (Table 2), inter-layer modes
//!   `Single`/`Keep`/`LockStep`/`DisjMrg`/`ConjMrg` with broadcast lane
//!   binding (Table 3), and callback registration (§4.3).
//! * [`Interp`] / [`run_functional`] — functional execution (the §5 FSM
//!   semantics), usable standalone for correctness work.
//! * [`TmuAccelerator`] — the cycle-timing model implementing
//!   [`tmu_sim::Accelerator`]: §5.4 memory arbiter against the simulated
//!   LLC, §5.5 queue sizing, §5.3 serialized outQ construction with
//!   double-buffered chunks written into the host L2.
//! * [`area`] — analytical area model calibrated to the paper's RTL
//!   synthesis results; [`context`] — §5.6 context save/restore.
//!
//! # Example: a CSR traversal marshaled to a callback
//!
//! ```
//! use std::sync::Arc;
//! use tmu::{Event, LayerMode, MemImage, ProgramBuilder, StreamTy};
//! use tmu_sim::AddressMap;
//!
//! // CSR matrix of Figure 1 (row pointers + values).
//! let mut map = AddressMap::new();
//! let ptrs_r = map.alloc_elems("ptrs", 5, 4);
//! let vals_r = map.alloc_elems("vals", 5, 8);
//! let mut image = MemImage::new();
//! image.bind_u32(ptrs_r, Arc::new(vec![0, 2, 2, 3, 5]));
//! image.bind_f64(vals_r, Arc::new(vec![1., 2., 3., 4., 5.]));
//!
//! let mut b = ProgramBuilder::new();
//! let rows = b.layer(LayerMode::Single);
//! let row = b.dns_fbrt(rows, 0, 4, 1);
//! let beg = b.mem_stream(row, ptrs_r.base, 4, StreamTy::Index);
//! let end = b.mem_stream(row, ptrs_r.base + 4, 4, StreamTy::Index);
//! let cols = b.layer(LayerMode::Single);
//! let col = b.rng_fbrt(cols, beg, end, 0, 1);
//! let nnz = b.mem_stream(col, vals_r.base, 8, StreamTy::Value);
//! let op = b.vec_operand(cols, &[nnz]);
//! b.callback(cols, Event::Ite, 0, &[op]);
//! let program = Arc::new(b.build()?);
//!
//! let entries = tmu::run_functional(&program, &Arc::new(image));
//! assert_eq!(entries.len(), 5); // one per stored non-zero
//! # Ok::<(), tmu::ProgramError>(())
//! ```

#![warn(missing_docs)]
#![warn(clippy::unwrap_used)]

pub mod area;
mod config;
pub mod context;
mod error;
mod image;
mod interp;
mod program;
mod steps;
mod timing;

pub use config::TmuConfig;
pub use error::TmuError;
// Fault-model glue re-exported so kernels and harnesses need only `tmu`.
pub use image::MemImage;
pub use interp::{for_each_entry, run_functional, Interp, StepBatcher};
pub use program::{
    CallbackDef, Event, IndexSrc, LayerDef, LayerId, LayerMode, OperandDef, OperandId, Program,
    ProgramBuilder, ProgramError, StreamDef, StreamRef, StreamTy, TraversalDef, TuDef, TuId,
};
pub use steps::{ElemId, MemLoad, Operand, OutQEntry, Step, StepKind};
pub use timing::{CallbackHandler, ChunkStat, OutQSnapshot, OutQStats, TmuAccelerator};
pub use tmu_sim::{FaultEvent, FaultKind, FaultPlan, FaultSpec, FaultStats, FaultTrigger};
