//! TMU program representation and builder — the Figure 8 API.
//!
//! A [`Program`] maps a tensor expression's loop nest onto the TMU's
//! matrix of Traversal Units: one *layer* per loop level, one *lane* per
//! parallel traversal or merged tensor. Each TU is configured with a
//! traversal primitive (Table 1: [`ProgramBuilder::dns_fbrt`],
//! [`ProgramBuilder::rng_fbrt`], [`ProgramBuilder::idx_fbrt`]), a set of
//! data streams (Table 2: `ite`, `mem`, `lin`, `map`, `ldr`, `fwd`; the
//! `msk` stream is produced by the traversal group), and each layer with an
//! inter-layer configuration (Table 3) plus callback registrations
//! (§4.3: `add_callback(event, callback_id, args_list)`).

use std::error::Error;
use std::fmt;

use serde::{Deserialize, Serialize};

/// Inter-layer configuration of a layer's traversal group (Table 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LayerMode {
    /// A single lane iterates.
    Single,
    /// One lane selected out of the parent's parallel group.
    Keep,
    /// Lanes co-iterate positionally (parallel loading / vectorization).
    LockStep,
    /// Lanes are disjunctively merged (coordinate union).
    DisjMrg,
    /// Lanes are conjunctively merged (coordinate intersection).
    ConjMrg,
}

/// Traversal/merging events a callback can be registered on (§4.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Event {
    /// Begin of a traversal/merge (loop head).
    Beg,
    /// One iteration (loop body).
    Ite,
    /// End of a traversal/merge (loop tail).
    End,
}

/// Element type carried by a stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StreamTy {
    /// Coordinate/pointer words (compared by mergers).
    Index,
    /// Floating-point payload words.
    Value,
}

/// Handle to a layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LayerId(pub(crate) usize);

/// Handle to a traversal unit (a lane of a layer).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TuId {
    pub(crate) layer: usize,
    pub(crate) lane: usize,
}

/// Handle to a data stream of some TU.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StreamRef {
    pub(crate) layer: usize,
    pub(crate) lane: usize,
    pub(crate) stream: usize,
}

/// Handle to a marshaled operand of a layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OperandId(pub(crate) usize);

/// Index source of a `mem` stream within its own TU.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum IndexSrc {
    /// The TU's loop induction variable.
    Ite,
    /// Another (earlier) stream of the same TU — chained indirection.
    Stream(usize),
    /// The fiber-relative induction value (`ite − beg`) plus a local
    /// stream — composition of the Table 2 `ite` and `lin` streams used to
    /// address a second dense row in the same loop (MTTKRP's `C[l,r]`
    /// alongside `B[k,r]`).
    RelItePlus(usize),
}

/// Definition of one data stream (Table 2).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum StreamDef {
    /// The TU's iteration indexes.
    Ite,
    /// `p[x]`: loads from `base` at the source index.
    Mem {
        /// Base virtual address of the array.
        base: u64,
        /// Element size in bytes (4 for index arrays, 8 for values).
        elem: u8,
        /// Index source.
        index: IndexSrc,
        /// Element type.
        ty: StreamTy,
    },
    /// `a·x + b` of a local stream.
    Lin {
        /// Multiplier.
        a: i64,
        /// Offset.
        b: i64,
        /// Source stream (same TU).
        of: usize,
    },
    /// Small lookup table `t[x]` (≤16 entries in hardware).
    Map {
        /// Table contents.
        table: Vec<i64>,
        /// Source stream (same TU).
        of: usize,
    },
    /// `&p[x]`: address generation without loading.
    Ldr {
        /// Base virtual address.
        base: u64,
        /// Element size in bytes.
        elem: u8,
        /// Source stream (same TU).
        of: usize,
    },
    /// Forwards a parent-layer stream: the parent element's value is
    /// replicated for every element of this TU's fiber.
    Fwd {
        /// Parent stream (must live in the previous layer).
        from: StreamRef,
    },
}

/// Traversal primitive of a TU (Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum TraversalDef {
    /// `DnsFbrT(beg, end, stride)` — dense or singleton fiber scan.
    Dns {
        /// First index.
        beg: i64,
        /// One past the last index.
        end: i64,
        /// Step.
        stride: i64,
    },
    /// `RngFbrT(beg, end, offset, stride)` — compressed fiber lookup+scan;
    /// bounds come from parent-layer streams.
    Rng {
        /// Parent stream supplying the fiber start pointer.
        beg: StreamRef,
        /// Parent stream supplying the fiber end pointer.
        end: StreamRef,
        /// Added to the start pointer (lane phase in lockstep schemes).
        offset: i64,
        /// Step.
        stride: i64,
    },
    /// `IdxFbrT(beg, size, offset, stride)` — dense fiber lookup+scan;
    /// the start comes from a parent stream, the extent is constant.
    Idx {
        /// Parent stream supplying the fiber start index.
        beg: StreamRef,
        /// Fiber extent.
        size: i64,
        /// Added to the start.
        offset: i64,
        /// Step.
        stride: i64,
    },
}

/// One TU: a traversal primitive plus its data streams.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TuDef {
    /// The traversal primitive.
    pub traversal: TraversalDef,
    /// Parent lane this TU hangs off (bounds + activation). Lane 0 of a
    /// `Single` parent acts as a broadcast source.
    pub parent_lane: usize,
    /// Data streams, in configuration order (arbiter priority §5.4).
    pub streams: Vec<StreamDef>,
    /// Stream used as the merge coordinate (required under
    /// `DisjMrg`/`ConjMrg`; defaults to the `ite` stream).
    pub key: Option<usize>,
}

/// An operand marshaled to the core with a callback.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum OperandDef {
    /// One stream per lane, packed into a vector operand (zero-padded for
    /// inactive lanes).
    Vec {
        /// Per-lane source streams (all in this layer).
        streams: Vec<StreamRef>,
    },
    /// The layer's multi-hot lane predicate.
    Mask,
    /// A single scalar stream value (e.g. a coordinate from this layer).
    Scalar {
        /// Source stream.
        stream: StreamRef,
    },
}

/// A registered callback (§4.3).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CallbackDef {
    /// Triggering event.
    pub event: Event,
    /// Callback id delivered to the core.
    pub id: u32,
    /// Operands pushed with each trigger.
    pub operands: Vec<OperandId>,
}

/// One layer: mode, TUs, operand definitions, callbacks.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerDef {
    /// Inter-layer configuration.
    pub mode: LayerMode,
    /// TUs (one per used lane).
    pub tus: Vec<TuDef>,
    /// Operand definitions referenced by callbacks.
    pub operands: Vec<OperandDef>,
    /// Registered callbacks.
    pub callbacks: Vec<CallbackDef>,
    /// Queue-sizing weight (§5.5): expected relative data volume.
    pub weight: f64,
}

/// A validated TMU program.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Program {
    pub(crate) layers: Vec<LayerDef>,
}

impl Program {
    /// The program's layers, outermost first.
    pub fn layers(&self) -> &[LayerDef] {
        &self.layers
    }

    /// Maximum number of lanes used by any layer.
    pub fn lanes_used(&self) -> usize {
        self.layers.iter().map(|l| l.tus.len()).max().unwrap_or(0)
    }

    /// Queue-sizing weights per layer (§5.5).
    pub fn weights(&self) -> Vec<f64> {
        self.layers.iter().map(|l| l.weight).collect()
    }

    /// Returns a copy with every layer's queue-sizing weight reset to one
    /// (ablates the §5.5 analytical model down to a uniform split).
    pub fn with_uniform_weights(&self) -> Program {
        let mut p = self.clone();
        for layer in &mut p.layers {
            layer.weight = 1.0;
        }
        p
    }

    /// Streams instantiated per layer (for the sizing model).
    pub fn streams_per_layer(&self) -> Vec<usize> {
        self.layers
            .iter()
            .map(|l| l.tus.iter().map(|t| t.streams.len()).max().unwrap_or(1))
            .collect()
    }
}

/// Error produced when building an ill-formed program.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ProgramError {
    /// A stream reference points outside the program.
    BadStreamRef {
        /// The offending reference.
        what: &'static str,
    },
    /// Bounds streams of a `Rng`/`Idx` TU must live in the previous layer.
    BoundsNotInParent,
    /// A merge layer's TU lacks an index-typed key stream.
    MissingMergeKey {
        /// Layer index.
        layer: usize,
        /// Lane index.
        lane: usize,
    },
    /// The first layer must use constant-bound traversals.
    RootNeedsConstantBounds,
    /// A layer has no TUs.
    EmptyLayer {
        /// Layer index.
        layer: usize,
    },
    /// `Single`/`Keep` layers must have exactly one TU.
    SingleLaneModeWithManyTus {
        /// Layer index.
        layer: usize,
    },
    /// A `map` stream exceeds the 16-entry hardware table.
    MapTooLarge,
    /// Two callbacks are registered for the same event of one layer: the
    /// outQ tags entries with `(layer, event)`, so the second registration
    /// could never be distinguished by the core.
    DuplicateCallback {
        /// Layer index.
        layer: usize,
        /// The doubly-registered event.
        event: Event,
    },
    /// A TU references a parent lane beyond the previous layer's TUs.
    BadParentLane {
        /// Layer index.
        layer: usize,
        /// Lane index of the offending TU.
        lane: usize,
        /// The out-of-range parent lane.
        parent_lane: usize,
    },
    /// A callback references an operand id the layer never defined.
    CallbackOperandOutOfRange {
        /// Layer index.
        layer: usize,
        /// The out-of-range operand index.
        operand: usize,
    },
    /// The program has no layers.
    Empty,
}

impl fmt::Display for ProgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProgramError::BadStreamRef { what } => write!(f, "invalid stream reference: {what}"),
            ProgramError::BoundsNotInParent => {
                write!(f, "fiber bounds must come from the previous layer")
            }
            ProgramError::MissingMergeKey { layer, lane } => {
                write!(f, "merge layer {layer} lane {lane} has no index key stream")
            }
            ProgramError::RootNeedsConstantBounds => {
                write!(f, "the outermost layer must use constant-bound traversals")
            }
            ProgramError::EmptyLayer { layer } => write!(f, "layer {layer} has no TUs"),
            ProgramError::SingleLaneModeWithManyTus { layer } => {
                write!(f, "layer {layer} is Single/Keep but has several TUs")
            }
            ProgramError::MapTooLarge => write!(f, "map stream exceeds 16 entries"),
            ProgramError::DuplicateCallback { layer, event } => {
                write!(f, "layer {layer} registers two callbacks for {event:?}")
            }
            ProgramError::BadParentLane {
                layer,
                lane,
                parent_lane,
            } => write!(
                f,
                "layer {layer} lane {lane} binds parent lane {parent_lane}, \
                 which the previous layer does not have"
            ),
            ProgramError::CallbackOperandOutOfRange { layer, operand } => {
                write!(
                    f,
                    "layer {layer} callback references undefined operand {operand}"
                )
            }
            ProgramError::Empty => write!(f, "program has no layers"),
        }
    }
}

impl Error for ProgramError {}

/// Builder for [`Program`]s (the host-side configuration code of Fig. 8).
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    layers: Vec<LayerDef>,
}

impl ProgramBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a layer with the given inter-layer mode.
    pub fn layer(&mut self, mode: LayerMode) -> LayerId {
        self.layers.push(LayerDef {
            mode,
            tus: Vec::new(),
            operands: Vec::new(),
            callbacks: Vec::new(),
            weight: 4f64.powi(self.layers.len() as i32),
        });
        LayerId(self.layers.len() - 1)
    }

    /// Overrides the queue-sizing weight of a layer (§5.5).
    pub fn set_weight(&mut self, layer: LayerId, weight: f64) {
        self.layers[layer.0].weight = weight;
    }

    fn add_tu(&mut self, layer: LayerId, traversal: TraversalDef, parent_lane: usize) -> TuId {
        let l = &mut self.layers[layer.0];
        l.tus.push(TuDef {
            traversal,
            parent_lane,
            streams: vec![StreamDef::Ite],
            key: None,
        });
        TuId {
            layer: layer.0,
            lane: l.tus.len() - 1,
        }
    }

    /// `DnsFbrT(beg, end, stride)`: dense fiber scan with constant bounds.
    pub fn dns_fbrt(&mut self, layer: LayerId, beg: i64, end: i64, stride: i64) -> TuId {
        self.add_tu(layer, TraversalDef::Dns { beg, end, stride }, 0)
    }

    /// `RngFbrT(beg, end, offset, stride)`: compressed fiber lookup+scan.
    /// The TU binds to the parent lane of `beg`.
    pub fn rng_fbrt(
        &mut self,
        layer: LayerId,
        beg: StreamRef,
        end: StreamRef,
        offset: i64,
        stride: i64,
    ) -> TuId {
        self.add_tu(
            layer,
            TraversalDef::Rng {
                beg,
                end,
                offset,
                stride,
            },
            beg.lane,
        )
    }

    /// `IdxFbrT(beg, size, offset, stride)`: dense fiber lookup+scan.
    pub fn idx_fbrt(
        &mut self,
        layer: LayerId,
        beg: StreamRef,
        size: i64,
        offset: i64,
        stride: i64,
    ) -> TuId {
        self.add_tu(
            layer,
            TraversalDef::Idx {
                beg,
                size,
                offset,
                stride,
            },
            beg.lane,
        )
    }

    /// Rebinds a TU to a specific parent lane (activation + `fwd` source).
    pub fn bind_parent(&mut self, tu: TuId, parent_lane: usize) {
        self.layers[tu.layer].tus[tu.lane].parent_lane = parent_lane;
    }

    /// The TU's `ite` stream (its loop induction variable).
    pub fn ite(&self, tu: TuId) -> StreamRef {
        StreamRef {
            layer: tu.layer,
            lane: tu.lane,
            stream: 0,
        }
    }

    fn push_stream(&mut self, tu: TuId, def: StreamDef) -> StreamRef {
        let streams = &mut self.layers[tu.layer].tus[tu.lane].streams;
        streams.push(def);
        StreamRef {
            layer: tu.layer,
            lane: tu.lane,
            stream: streams.len() - 1,
        }
    }

    /// `add_mem_str(base)`: loads `base[ite]`.
    pub fn mem_stream(&mut self, tu: TuId, base: u64, elem: u8, ty: StreamTy) -> StreamRef {
        self.push_stream(
            tu,
            StreamDef::Mem {
                base,
                elem,
                index: IndexSrc::Ite,
                ty,
            },
        )
    }

    /// `add_mem_str(base, idx_stream)`: chained indirection —
    /// loads `base[idx_stream]` (the SpMV scan-and-lookup child stream).
    ///
    /// # Panics
    ///
    /// Panics if `index` belongs to a different TU.
    pub fn mem_stream_indexed(
        &mut self,
        tu: TuId,
        base: u64,
        elem: u8,
        ty: StreamTy,
        index: StreamRef,
    ) -> StreamRef {
        assert!(
            index.layer == tu.layer && index.lane == tu.lane,
            "chained mem stream must index through its own TU"
        );
        self.push_stream(
            tu,
            StreamDef::Mem {
                base,
                elem,
                index: IndexSrc::Stream(index.stream),
                ty,
            },
        )
    }

    /// `add_mem_str(base, rel_ite + offset_stream)`: loads
    /// `base[(ite − beg) + offset]` where `offset` comes from a local
    /// stream (usually a forwarded row-start index).
    ///
    /// # Panics
    ///
    /// Panics if `offset` belongs to a different TU.
    pub fn mem_stream_rel(
        &mut self,
        tu: TuId,
        base: u64,
        elem: u8,
        ty: StreamTy,
        offset: StreamRef,
    ) -> StreamRef {
        assert!(
            offset.layer == tu.layer && offset.lane == tu.lane,
            "relative mem stream offset must be local to the TU"
        );
        self.push_stream(
            tu,
            StreamDef::Mem {
                base,
                elem,
                index: IndexSrc::RelItePlus(offset.stream),
                ty,
            },
        )
    }

    /// `lin`: linear transform `a·x + b` of a local stream.
    pub fn lin_stream(&mut self, tu: TuId, a: i64, b: i64, of: StreamRef) -> StreamRef {
        assert!(
            of.layer == tu.layer && of.lane == tu.lane,
            "lin source must be local to the TU"
        );
        self.push_stream(
            tu,
            StreamDef::Lin {
                a,
                b,
                of: of.stream,
            },
        )
    }

    /// `map`: small lookup table.
    pub fn map_stream(&mut self, tu: TuId, table: Vec<i64>, of: StreamRef) -> StreamRef {
        assert!(
            of.layer == tu.layer && of.lane == tu.lane,
            "map source must be local to the TU"
        );
        self.push_stream(
            tu,
            StreamDef::Map {
                table,
                of: of.stream,
            },
        )
    }

    /// `ldr`: address generation `&base[x]`.
    pub fn ldr_stream(&mut self, tu: TuId, base: u64, elem: u8, of: StreamRef) -> StreamRef {
        assert!(
            of.layer == tu.layer && of.lane == tu.lane,
            "ldr source must be local to the TU"
        );
        self.push_stream(
            tu,
            StreamDef::Ldr {
                base,
                elem,
                of: of.stream,
            },
        )
    }

    /// `fwd`: replicates a parent-layer stream into this TU.
    pub fn fwd_stream(&mut self, tu: TuId, from: StreamRef) -> StreamRef {
        self.push_stream(tu, StreamDef::Fwd { from })
    }

    /// Designates the merge-coordinate stream of a TU.
    pub fn set_key(&mut self, tu: TuId, key: StreamRef) {
        assert!(
            key.layer == tu.layer && key.lane == tu.lane,
            "merge key must be local to the TU"
        );
        self.layers[tu.layer].tus[tu.lane].key = Some(key.stream);
    }

    /// `add_vec_str`: groups per-lane streams into a vector operand.
    pub fn vec_operand(&mut self, layer: LayerId, streams: &[StreamRef]) -> OperandId {
        let l = &mut self.layers[layer.0];
        l.operands.push(OperandDef::Vec {
            streams: streams.to_vec(),
        });
        OperandId(l.operands.len() - 1)
    }

    /// The layer's `msk` predicate as an operand.
    pub fn mask_operand(&mut self, layer: LayerId) -> OperandId {
        let l = &mut self.layers[layer.0];
        l.operands.push(OperandDef::Mask);
        OperandId(l.operands.len() - 1)
    }

    /// A scalar stream value as an operand.
    pub fn scalar_operand(&mut self, layer: LayerId, stream: StreamRef) -> OperandId {
        let l = &mut self.layers[layer.0];
        l.operands.push(OperandDef::Scalar { stream });
        OperandId(l.operands.len() - 1)
    }

    /// `add_callback(event, callback_id, args_list)` (§4.3).
    pub fn callback(&mut self, layer: LayerId, event: Event, id: u32, operands: &[OperandId]) {
        self.layers[layer.0].callbacks.push(CallbackDef {
            event,
            id,
            operands: operands.to_vec(),
        });
    }

    /// Validates and produces the program.
    ///
    /// # Errors
    ///
    /// Returns a [`ProgramError`] describing the first violated
    /// well-formedness rule.
    pub fn build(self) -> Result<Program, ProgramError> {
        if self.layers.is_empty() {
            return Err(ProgramError::Empty);
        }
        for (li, layer) in self.layers.iter().enumerate() {
            if layer.tus.is_empty() {
                return Err(ProgramError::EmptyLayer { layer: li });
            }
            if matches!(layer.mode, LayerMode::Single | LayerMode::Keep) && layer.tus.len() > 1 {
                return Err(ProgramError::SingleLaneModeWithManyTus { layer: li });
            }
            for (lane, tu) in layer.tus.iter().enumerate() {
                // Parent lanes index the previous layer's TUs (the root
                // layer has an implicit single-lane parent).
                let parent_lanes = if li == 0 {
                    1
                } else {
                    self.layers[li - 1].tus.len()
                };
                if tu.parent_lane >= parent_lanes {
                    return Err(ProgramError::BadParentLane {
                        layer: li,
                        lane,
                        parent_lane: tu.parent_lane,
                    });
                }
                match tu.traversal {
                    TraversalDef::Dns { .. } => {}
                    TraversalDef::Rng { beg, end, .. } => {
                        if li == 0 {
                            return Err(ProgramError::RootNeedsConstantBounds);
                        }
                        for r in [beg, end] {
                            if r.layer + 1 != li {
                                return Err(ProgramError::BoundsNotInParent);
                            }
                            self.check_ref(r)?;
                        }
                    }
                    TraversalDef::Idx { beg, .. } => {
                        if li == 0 {
                            return Err(ProgramError::RootNeedsConstantBounds);
                        }
                        if beg.layer + 1 != li {
                            return Err(ProgramError::BoundsNotInParent);
                        }
                        self.check_ref(beg)?;
                    }
                }
                for s in &tu.streams {
                    match s {
                        StreamDef::Map { table, .. } if table.len() > 16 => {
                            return Err(ProgramError::MapTooLarge);
                        }
                        StreamDef::Fwd { from } => {
                            if from.layer + 1 != li {
                                return Err(ProgramError::BoundsNotInParent);
                            }
                            self.check_ref(*from)?;
                        }
                        _ => {}
                    }
                }
                if matches!(layer.mode, LayerMode::DisjMrg | LayerMode::ConjMrg) {
                    // The merge coordinate defaults to ite; a designated key
                    // must be index-typed.
                    if let Some(k) = tu.key {
                        let ok = match &tu.streams[k] {
                            StreamDef::Ite => true,
                            StreamDef::Mem { ty, .. } => *ty == StreamTy::Index,
                            StreamDef::Lin { .. } | StreamDef::Map { .. } => true,
                            _ => false,
                        };
                        if !ok {
                            return Err(ProgramError::MissingMergeKey { layer: li, lane });
                        }
                    }
                }
            }
            for op in &layer.operands {
                match op {
                    OperandDef::Vec { streams } => {
                        for s in streams {
                            if s.layer != li {
                                return Err(ProgramError::BadStreamRef {
                                    what: "vector operand must use this layer's streams",
                                });
                            }
                            self.check_ref(*s)?;
                        }
                    }
                    OperandDef::Scalar { stream } => self.check_ref(*stream)?,
                    OperandDef::Mask => {}
                }
            }
            let mut seen_events: Vec<Event> = Vec::new();
            for cb in &layer.callbacks {
                if seen_events.contains(&cb.event) {
                    return Err(ProgramError::DuplicateCallback {
                        layer: li,
                        event: cb.event,
                    });
                }
                seen_events.push(cb.event);
                for op in &cb.operands {
                    if op.0 >= layer.operands.len() {
                        return Err(ProgramError::CallbackOperandOutOfRange {
                            layer: li,
                            operand: op.0,
                        });
                    }
                }
            }
        }
        Ok(Program {
            layers: self.layers,
        })
    }

    fn check_ref(&self, r: StreamRef) -> Result<(), ProgramError> {
        self.layers
            .get(r.layer)
            .and_then(|l| l.tus.get(r.lane))
            .and_then(|t| t.streams.get(r.stream))
            .map(|_| ())
            .ok_or(ProgramError::BadStreamRef {
                what: "dangling handle",
            })
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    /// Builds the Figure 8 SpMV P1 program (2 lanes, lockstep columns).
    fn figure8(ptrs: u64, idxs: u64, vals: u64, b: u64, num_rows: i64) -> Program {
        let mut bld = ProgramBuilder::new();
        let l0 = bld.layer(LayerMode::Single);
        let row = bld.dns_fbrt(l0, 0, num_rows, 1);
        let ptbs = bld.mem_stream(row, ptrs, 4, StreamTy::Index);
        let ptes = bld.mem_stream(row, ptrs + 4, 4, StreamTy::Index);
        let l1 = bld.layer(LayerMode::LockStep);
        let mut nnz = Vec::new();
        let mut vec = Vec::new();
        for lane in 0..2 {
            let col = bld.rng_fbrt(l1, ptbs, ptes, lane, 2);
            let col_idxs = bld.mem_stream(col, idxs, 4, StreamTy::Index);
            nnz.push(bld.mem_stream(col, vals, 8, StreamTy::Value));
            vec.push(bld.mem_stream_indexed(col, b, 8, StreamTy::Value, col_idxs));
        }
        let nnz_op = bld.vec_operand(l1, &nnz);
        let vec_op = bld.vec_operand(l1, &vec);
        bld.callback(l1, Event::Ite, 0, &[nnz_op, vec_op]);
        bld.callback(l1, Event::End, 1, &[]);
        bld.build().expect("figure 8 program is well-formed")
    }

    #[test]
    fn figure8_program_builds() {
        let p = figure8(0x1000, 0x2000, 0x3000, 0x4000, 4);
        assert_eq!(p.layers().len(), 2);
        assert_eq!(p.lanes_used(), 2);
        assert_eq!(p.layers()[1].callbacks.len(), 2);
        assert_eq!(p.streams_per_layer(), vec![3, 4]);
    }

    #[test]
    fn empty_program_rejected() {
        assert_eq!(
            ProgramBuilder::new().build().unwrap_err(),
            ProgramError::Empty
        );
    }

    #[test]
    fn root_must_have_constant_bounds() {
        let mut bld = ProgramBuilder::new();
        let l0 = bld.layer(LayerMode::Single);
        let t = bld.dns_fbrt(l0, 0, 4, 1);
        let s = bld.mem_stream(t, 0x1000, 4, StreamTy::Index);
        // Rng in layer 0 referencing its own layer: invalid twice over.
        bld.rng_fbrt(l0, s, s, 0, 1);
        assert!(matches!(
            bld.build().unwrap_err(),
            ProgramError::RootNeedsConstantBounds | ProgramError::SingleLaneModeWithManyTus { .. }
        ));
    }

    #[test]
    fn bounds_must_come_from_parent_layer() {
        let mut bld = ProgramBuilder::new();
        let l0 = bld.layer(LayerMode::Single);
        let t0 = bld.dns_fbrt(l0, 0, 4, 1);
        let s0 = bld.mem_stream(t0, 0x1000, 4, StreamTy::Index);
        let _l1 = bld.layer(LayerMode::Single);
        let l2 = bld.layer(LayerMode::Single);
        // Bounds from layer 0 into layer 2: skips a layer.
        bld.rng_fbrt(l2, s0, s0, 0, 1);
        // Layer 1 left empty to trip that first — fill it to isolate.
        let err = bld.build().unwrap_err();
        assert!(matches!(
            err,
            ProgramError::BoundsNotInParent | ProgramError::EmptyLayer { .. }
        ));
    }

    #[test]
    fn map_limited_to_16_entries() {
        let mut bld = ProgramBuilder::new();
        let l0 = bld.layer(LayerMode::Single);
        let t = bld.dns_fbrt(l0, 0, 4, 1);
        let ite = bld.ite(t);
        bld.map_stream(t, vec![0; 17], ite);
        assert_eq!(bld.build().unwrap_err(), ProgramError::MapTooLarge);
    }

    #[test]
    fn single_mode_rejects_two_tus() {
        let mut bld = ProgramBuilder::new();
        let l0 = bld.layer(LayerMode::Single);
        bld.dns_fbrt(l0, 0, 4, 1);
        bld.dns_fbrt(l0, 0, 4, 1);
        assert!(matches!(
            bld.build().unwrap_err(),
            ProgramError::SingleLaneModeWithManyTus { layer: 0 }
        ));
    }

    #[test]
    fn duplicate_callback_on_same_event_rejected() {
        let mut bld = ProgramBuilder::new();
        let l0 = bld.layer(LayerMode::Single);
        let t = bld.dns_fbrt(l0, 0, 4, 1);
        let ite = bld.ite(t);
        let op = bld.vec_operand(l0, &[ite]);
        bld.callback(l0, Event::Ite, 0, &[op]);
        bld.callback(l0, Event::Ite, 1, &[op]);
        assert_eq!(
            bld.build().unwrap_err(),
            ProgramError::DuplicateCallback {
                layer: 0,
                event: Event::Ite
            }
        );
    }

    #[test]
    fn distinct_events_on_one_layer_allowed() {
        let mut bld = ProgramBuilder::new();
        let l0 = bld.layer(LayerMode::Single);
        let t = bld.dns_fbrt(l0, 0, 4, 1);
        let ite = bld.ite(t);
        let op = bld.vec_operand(l0, &[ite]);
        bld.callback(l0, Event::Beg, 0, &[op]);
        bld.callback(l0, Event::Ite, 1, &[op]);
        bld.callback(l0, Event::End, 2, &[]);
        bld.build().expect("one callback per event is fine");
    }

    #[test]
    fn out_of_range_parent_lane_rejected() {
        let mut bld = ProgramBuilder::new();
        let l0 = bld.layer(LayerMode::Single);
        let t0 = bld.dns_fbrt(l0, 0, 4, 1);
        let p0 = bld.mem_stream(t0, 0x1000, 4, StreamTy::Index);
        let p1 = bld.mem_stream(t0, 0x1004, 4, StreamTy::Index);
        let l1 = bld.layer(LayerMode::Single);
        let t1 = bld.rng_fbrt(l1, p0, p1, 0, 1);
        // The parent layer has one lane; lane 3 does not exist.
        bld.bind_parent(t1, 3);
        assert_eq!(
            bld.build().unwrap_err(),
            ProgramError::BadParentLane {
                layer: 1,
                lane: 0,
                parent_lane: 3
            }
        );
    }

    #[test]
    fn callback_operand_out_of_range_rejected() {
        let mut bld = ProgramBuilder::new();
        let l0 = bld.layer(LayerMode::Single);
        let t0 = bld.dns_fbrt(l0, 0, 4, 1);
        let p0 = bld.mem_stream(t0, 0x1000, 4, StreamTy::Index);
        let p1 = bld.mem_stream(t0, 0x1004, 4, StreamTy::Index);
        let l1 = bld.layer(LayerMode::Single);
        let t1 = bld.rng_fbrt(l1, p0, p1, 0, 1);
        let ite = bld.ite(t1);
        // Operand defined on layer 1, callback registered on layer 0,
        // which has no operands at all.
        let op = bld.vec_operand(l1, &[ite]);
        bld.callback(l0, Event::Ite, 0, &[op]);
        assert_eq!(
            bld.build().unwrap_err(),
            ProgramError::CallbackOperandOutOfRange {
                layer: 0,
                operand: 0
            }
        );
    }

    #[test]
    fn program_debug_is_nonempty() {
        let p = figure8(0x1000, 0x2000, 0x3000, 0x4000, 4);
        let debug = format!("{p:?}");
        assert!(debug.contains("LockStep"));
    }
}
