//! Records produced by the functional engine: the ordered stream of
//! traversal-group steps, the memory loads they cause, and the outQ
//! entries marshaled to the core.

use serde::{Deserialize, Serialize};

use crate::program::StreamTy;

/// Identifier of one loaded stream element (unique per engine run).
pub type ElemId = u64;

/// A memory load performed by a TU's `mem` stream for one element.
#[derive(Debug, Clone, PartialEq)]
pub struct MemLoad {
    /// Unique id (readiness handle).
    pub id: ElemId,
    /// Owning layer.
    pub layer: u8,
    /// Owning lane.
    pub lane: u8,
    /// Owning stream slot within the TU (its queue; §5.4 selects streams
    /// in configuration order and requests within a queue in order).
    pub stream: u8,
    /// Ordinal of the element within its TU (queue-slot index).
    pub elem_ordinal: u64,
    /// Virtual address.
    pub addr: u64,
    /// Loads that must complete before this one can issue (chained
    /// indirection within the TU, fiber bounds from the parent layer).
    pub deps: Vec<ElemId>,
}

/// Kind of a traversal-group step (§5.2 FSM states).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StepKind {
    /// `gbeg`: a traversal/merge begins.
    Beg,
    /// `gite`: one co-iteration/merge step.
    Ite,
    /// `gend`: the traversal/merge is exhausted.
    End,
    /// Conjunctive-merge advance that produced no output (elements were
    /// consumed and discarded); exists only for timing.
    Skip,
}

/// A marshaled operand inside an outQ entry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Operand {
    /// Vector operand: one word per lane (raw bits), zero-padded for
    /// inactive lanes.
    Vec {
        /// Per-lane words.
        vals: Vec<u64>,
        /// Element type of the source streams.
        ty: StreamTy,
    },
    /// The layer's multi-hot predicate.
    Mask(u64),
    /// A scalar word.
    Scalar {
        /// Raw bits.
        val: u64,
        /// Element type.
        ty: StreamTy,
    },
}

impl Operand {
    /// Interprets a vector operand as f64 lanes.
    ///
    /// # Panics
    ///
    /// Panics if this is not a `Vec` operand of `Value` type.
    pub fn as_f64s(&self) -> Vec<f64> {
        match self {
            Operand::Vec {
                vals,
                ty: StreamTy::Value,
            } => vals.iter().map(|&b| f64::from_bits(b)).collect(),
            other => panic!("operand is not an f64 vector: {other:?}"),
        }
    }

    /// Interprets a vector operand as i64 index lanes.
    ///
    /// # Panics
    ///
    /// Panics if this is not a `Vec` operand of `Index` type.
    pub fn as_indexes(&self) -> Vec<i64> {
        match self {
            Operand::Vec {
                vals,
                ty: StreamTy::Index,
            } => vals.iter().map(|&b| b as i64).collect(),
            other => panic!("operand is not an index vector: {other:?}"),
        }
    }

    /// Scalar value as f64.
    ///
    /// # Panics
    ///
    /// Panics if this is not a `Scalar` of `Value` type.
    pub fn as_f64(&self) -> f64 {
        match self {
            Operand::Scalar {
                val,
                ty: StreamTy::Value,
            } => f64::from_bits(*val),
            other => panic!("operand is not an f64 scalar: {other:?}"),
        }
    }

    /// Scalar value as i64 index.
    ///
    /// # Panics
    ///
    /// Panics if this is not a `Scalar` of `Index` type.
    pub fn as_index(&self) -> i64 {
        match self {
            Operand::Scalar {
                val,
                ty: StreamTy::Index,
            } => *val as i64,
            other => panic!("operand is not an index scalar: {other:?}"),
        }
    }

    /// Bytes this operand occupies in an outQ entry.
    pub fn bytes(&self) -> u32 {
        match self {
            Operand::Vec { vals, .. } => 8 * vals.len() as u32,
            Operand::Mask(_) | Operand::Scalar { .. } => 8,
        }
    }
}

/// One outQ entry: a callback id plus its operands (§4.3, §5.3).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OutQEntry {
    /// Callback id registered with `add_callback`.
    pub callback: u32,
    /// Lane predicate of the producing step.
    pub mask: u64,
    /// Operands in registration order.
    pub operands: Vec<Operand>,
}

impl OutQEntry {
    /// Bytes the entry occupies in the memory-mapped outQ (8-byte header
    /// carrying the callback id and mask tag, plus operands).
    pub fn bytes(&self) -> u32 {
        8 + self.operands.iter().map(Operand::bytes).sum::<u32>()
    }
}

/// One traversal-group step in nested-loop order.
#[derive(Debug, Clone, PartialEq)]
pub struct Step {
    /// Layer that stepped.
    pub layer: u8,
    /// FSM state this step corresponds to.
    pub kind: StepKind,
    /// Multi-hot participating-lane predicate.
    pub mask: u64,
    /// Memory loads created while peeking elements for this step.
    pub loads: Vec<MemLoad>,
    /// Elements whose readiness gates this step's completion.
    pub gates: Vec<ElemId>,
    /// `(layer, lane)` of each TU that consumed one element in this step
    /// (frees one stream-queue slot per consuming TU).
    pub consumed: Vec<(u8, u8)>,
    /// outQ entries pushed by this step (callbacks registered on its
    /// event), in registration order.
    pub entries: Vec<OutQEntry>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn operand_conversions() {
        let v = Operand::Vec {
            vals: vec![2.5f64.to_bits(), 0],
            ty: StreamTy::Value,
        };
        assert_eq!(v.as_f64s(), vec![2.5, 0.0]);
        assert_eq!(v.bytes(), 16);

        let i = Operand::Vec {
            vals: vec![7u64, (-1i64) as u64],
            ty: StreamTy::Index,
        };
        assert_eq!(i.as_indexes(), vec![7, -1]);

        let s = Operand::Scalar {
            val: 42,
            ty: StreamTy::Index,
        };
        assert_eq!(s.as_index(), 42);
    }

    #[test]
    #[should_panic(expected = "not an f64 vector")]
    fn wrong_type_panics() {
        Operand::Mask(3).as_f64s();
    }

    #[test]
    fn entry_bytes_include_header() {
        let e = OutQEntry {
            callback: 1,
            mask: 0b11,
            operands: vec![
                Operand::Vec {
                    vals: vec![0; 8],
                    ty: StreamTy::Value,
                },
                Operand::Mask(0b11),
            ],
        };
        assert_eq!(e.bytes(), 8 + 64 + 8);
    }
}
