//! Cycle-timing model of the TMU, implementing [`tmu_sim::Accelerator`].
//!
//! The functional interpreter supplies the ordered step/load stream; this
//! module replays it with the hardware constraints of §5:
//!
//! * **TU queues** (§5.1/§5.5): each TU may run ahead of its consumption
//!   point by its stream-queue depth, set by the analytical sizing model
//!   from the shared per-lane storage — deeper queues ⇒ more MLP.
//! * **Memory arbiter** (§5.4): one cacheline request per cycle, leftmost
//!   layers prioritized, round-robin between TUs of a layer, in-order
//!   within a TU; same-line requests coalesce. Requests go to the LLC
//!   through the engine's own outstanding-request pool (128 in Table 5).
//! * **outQ construction** (§5.3): steps complete strictly in order once
//!   their gating loads are ready; callback entries are pushed one per
//!   cycle into the current chunk, which is written into the host L2 and
//!   handed to the core when full. Chunks are double-buffered: the engine
//!   stalls when it gets two chunks ahead of the core's acknowledgments —
//!   this coupling is what the Figure 13 read-to-write ratio measures.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

use tmu_sim::{
    Accelerator, Deps, FaultKind, FaultPlan, FaultStats, Machine, MemSys, Op, OpId, OpKind, Site,
    VecMachine,
};

use crate::config::TmuConfig;
use crate::context::ContextSnapshot;
use crate::error::TmuError;
use crate::image::MemImage;
use crate::interp::{Interp, StepBatcher};
use crate::program::Program;
use crate::steps::{ElemId, MemLoad, OutQEntry, Step};

/// Host-side compute attached to a TMU program: expands each outQ entry
/// into the ops of its callback function (§4.3).
///
/// `entry_load` is the op that read the entry from the memory-mapped outQ;
/// compute ops should depend on it. Implementations also perform the
/// *functional* computation (accumulate, store results into their own
/// buffers) so TMU runs can be checked against references.
pub trait CallbackHandler: Send {
    /// Handles one outQ entry.
    fn handle(&mut self, entry: &OutQEntry, entry_load: OpId, m: &mut VecMachine);
}

/// Timing statistics of one outQ chunk.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ChunkStat {
    /// Cycle the first entry was pushed.
    pub open: u64,
    /// Cycle the chunk was sealed (visible to the core).
    pub ready: u64,
    /// Cycle the core finished processing it (ack).
    pub ack: u64,
    /// Entries in the chunk.
    pub entries: u32,
}

/// Aggregate outQ statistics (Figure 13).
#[derive(Debug, Clone, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct OutQStats {
    /// Per-chunk timings.
    pub chunks: Vec<ChunkStat>,
    /// Total entries marshaled.
    pub entries: u64,
    /// Cycles the engine spent stalled on the double-buffer gate.
    pub backpressure_cycles: u64,
    /// Fault-injection counters (all zero in fault-free runs).
    pub faults: FaultStats,
    /// Why the engine retired early, if it did (graceful degradation —
    /// the kernel should fall back to the software baseline).
    pub retired: Option<String>,
    /// Owning tenant of this outQ (0 for single-tenant runs). Stamped by
    /// [`TmuAccelerator::set_tenant`] so a scheduler multiplexing engines
    /// can attribute marshaled chunks to the job that produced them.
    pub tenant: u32,
}

/// Compact, chunk-free summary of an [`OutQStats`] — the form serialized
/// into `results/bench.json` rows (the per-chunk vector is unbounded).
#[derive(Debug, Clone, Copy, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct OutQSnapshot {
    /// Total entries marshaled.
    pub entries: u64,
    /// Number of sealed chunks.
    pub chunks: u64,
    /// Cycles the engine spent stalled on the double-buffer gate.
    pub backpressure_cycles: u64,
    /// The Figure 13 read-to-write ratio (0 when no complete chunks).
    pub read_to_write_ratio: f64,
    /// Faults injected into this engine (0 in fault-free runs).
    pub faults_injected: u64,
    /// Precise traps taken (quiesce + context save).
    pub fault_traps: u64,
    /// Context restores after fault service.
    pub fault_restores: u64,
    /// Whether the engine retired early on an unserviceable fault.
    pub retired: bool,
    /// Owning tenant of this outQ (0 for single-tenant runs).
    pub tenant: u32,
}

impl OutQStats {
    /// Summarizes into the fixed-size [`OutQSnapshot`] record.
    pub fn snapshot(&self) -> OutQSnapshot {
        OutQSnapshot {
            entries: self.entries,
            chunks: self.chunks.len() as u64,
            backpressure_cycles: self.backpressure_cycles,
            read_to_write_ratio: self.read_to_write_ratio(),
            faults_injected: self.faults.injected,
            fault_traps: self.faults.traps,
            fault_restores: self.faults.restores,
            retired: self.retired.is_some(),
            tenant: self.tenant,
        }
    }

    /// The read-to-write ratio of §7.1: core read time over TMU write
    /// time, averaged over all complete chunks. Below one means the core
    /// outpaces the engine.
    pub fn read_to_write_ratio(&self) -> f64 {
        let mut ratios = Vec::new();
        for c in &self.chunks {
            let write = c.ready.saturating_sub(c.open);
            let read = c.ack.saturating_sub(c.ready);
            if write > 0 && c.ack > 0 {
                ratios.push(read as f64 / write as f64);
            }
        }
        if ratios.is_empty() {
            0.0
        } else {
            ratios.iter().sum::<f64>() / ratios.len() as f64
        }
    }
}

const UNISSUED: u64 = u64::MAX;

/// Ready-time table for loads, indexed by [`ElemId`] with a sliding base.
#[derive(Debug, Default)]
struct ReadyRing {
    base: u64,
    ring: VecDeque<u64>,
}

impl ReadyRing {
    /// An empty ring whose ids start at `base`; ids below `base` read as
    /// ready-at-0 (used after a context restore, where every load of an
    /// already-committed step is by definition complete).
    fn starting_at(base: u64) -> Self {
        Self {
            base,
            ring: VecDeque::new(),
        }
    }

    fn push_unissued(&mut self, id: ElemId) {
        debug_assert_eq!(id, self.base + self.ring.len() as u64);
        self.ring.push_back(UNISSUED);
        // Bound memory: evict old, issued entries.
        while self.ring.len() > 1 << 20 && self.ring.front() != Some(&UNISSUED) {
            self.ring.pop_front();
            self.base += 1;
        }
    }

    fn set(&mut self, id: ElemId, ready: u64) {
        if id >= self.base {
            let off = (id - self.base) as usize;
            self.ring[off] = ready;
        }
    }

    /// Ready time of a load; evicted (ancient) ids read as ready-at-0,
    /// unissued ids as never-ready.
    fn get(&self, id: ElemId) -> u64 {
        if id < self.base {
            0
        } else {
            self.ring
                .get((id - self.base) as usize)
                .copied()
                .unwrap_or(UNISSUED)
        }
    }
}

/// One stream queue of a TU (§5.4: requests within a queue issue in
/// order; each stream coalesces into its own last-requested cacheline).
#[derive(Debug, Default)]
struct StreamQueue {
    queue: VecDeque<MemLoad>,
    last_line: u64,
    last_ready: u64,
}

#[derive(Debug, Default)]
struct TuTiming {
    streams: Vec<StreamQueue>,
    consumed_elems: u64,
}

/// The TMU engine attached to one host core.
pub struct TmuAccelerator<H: CallbackHandler> {
    cfg: TmuConfig,
    batcher: StepBatcher,
    handler: H,
    /// The program and image, retained for context restore after a trap.
    program: Arc<Program>,
    image: Arc<MemImage>,
    /// Fault-injection schedule (absent in fault-free runs: the hot path
    /// then takes no fault branches and behaviour is byte-identical to
    /// the pre-fault-model engine).
    faults: Option<FaultPlan>,
    /// TG steps committed in order (the precise-trap quiesce point).
    steps_committed: u64,
    /// A fault was injected this cycle; trap at the end of the tick.
    trap_pending: Option<FaultKind>,
    /// Saved context while the simulated OS services a fault.
    saved: Option<ContextSnapshot>,
    /// Cycle at which fault service completes and restore may run.
    service_until: u64,
    /// Injected outQ backpressure: entry pushes stall below this cycle.
    outq_stall_until: u64,
    /// Terminal error after graceful degradation (engine is dead).
    retired: Option<TmuError>,
    /// Externally descheduled by [`TmuAccelerator::quiesce`]: the
    /// architectural context left in a [`ContextSnapshot`]; the engine
    /// shell only drains its already-synthesized host ops.
    parked: bool,
    /// Owning tenant (outQ chunk tag; 0 for single-tenant runs).
    tenant: u32,
    qdepth: Vec<usize>,
    tus: Vec<Vec<TuTiming>>,
    ready: ReadyRing,
    /// Recently requested cachelines across all TUs (the arbiter merges
    /// same-line requests from different lanes, as MSHRs would).
    global_lines: [(u64, u64); 32],
    global_pos: usize,
    pending: VecDeque<Step>,
    steps_done: bool,
    rr: Vec<usize>,
    // outQ state
    outq_base: u64,
    chunk_id: u32,
    chunk_entries: u32,
    chunk_bytes: u32,
    chunk_open: u64,
    acked: u32,
    vm: VecMachine,
    host_ops: VecDeque<Op>,
    stats: Arc<Mutex<OutQStats>>,
    outq_site: Site,
    /// Diagnostic counters: (cycles with no issue while work pending,
    /// capacity-blocked picks, dep-blocked picks, gate-blocked step waits).
    pub debug_counters: [u64; 4],
    // Tracing state (trace builds only). The component is registered
    // lazily on the first tick — the engine learns its host core index
    // there, not at construction.
    #[cfg(feature = "trace")]
    trace: Option<tmu_trace::ComponentId>,
    #[cfg(feature = "trace")]
    trace_layer: u8,
    #[cfg(feature = "trace")]
    sampler: tmu_trace::PeriodicSampler,
}

impl<H: CallbackHandler> std::fmt::Debug for TmuAccelerator<H> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TmuAccelerator")
            .field("cfg", &self.cfg)
            .field("chunk_id", &self.chunk_id)
            .field("acked", &self.acked)
            .finish_non_exhaustive()
    }
}

impl<H: CallbackHandler> TmuAccelerator<H> {
    /// Builds an engine for `program` over `image`, marshaling into an
    /// outQ at `outq_base` (a per-core region in the host address space).
    ///
    /// # Panics
    ///
    /// Panics if the program uses more lanes than the configuration has.
    pub fn new(
        cfg: TmuConfig,
        program: Arc<Program>,
        image: Arc<MemImage>,
        handler: H,
        outq_base: u64,
    ) -> Self {
        match Self::try_new(cfg, program, image, handler, outq_base) {
            Ok(accel) => accel,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible variant of [`TmuAccelerator::new`]: a program using more
    /// lanes than the configuration has is a typed error, not a panic.
    pub fn try_new(
        cfg: TmuConfig,
        program: Arc<Program>,
        image: Arc<MemImage>,
        handler: H,
        outq_base: u64,
    ) -> Result<Self, TmuError> {
        if program.lanes_used() > cfg.lanes {
            return Err(TmuError::LanesExceeded {
                used: program.lanes_used(),
                lanes: cfg.lanes,
            });
        }
        let qdepth = cfg.try_size_queues(&program.weights(), &program.streams_per_layer())?;
        let tus: Vec<Vec<TuTiming>> = program
            .layers
            .iter()
            .map(|l| (0..l.tus.len()).map(|_| TuTiming::default()).collect())
            .collect();
        let layers = program.layers.len();
        let interp = Interp::new(Arc::clone(&program), Arc::clone(&image));
        Ok(Self {
            cfg,
            batcher: StepBatcher::new(interp),
            handler,
            program,
            image,
            // Engines sharing one spec (one per core) are decorrelated by
            // their outQ base address.
            faults: FaultPlan::from_spec(cfg.faults, outq_base),
            steps_committed: 0,
            trap_pending: None,
            saved: None,
            service_until: 0,
            outq_stall_until: 0,
            retired: None,
            parked: false,
            tenant: 0,
            qdepth,
            tus,
            ready: ReadyRing::default(),
            global_lines: [(u64::MAX, 0); 32],
            global_pos: 0,
            pending: VecDeque::new(),
            steps_done: false,
            rr: vec![0; layers],
            outq_base,
            chunk_id: 0,
            chunk_entries: 0,
            chunk_bytes: 0,
            chunk_open: 0,
            acked: 0,
            vm: VecMachine::new(),
            host_ops: VecDeque::new(),
            stats: Arc::new(Mutex::new(OutQStats::default())),
            outq_site: Site(u16::MAX),
            debug_counters: [0; 4],
            #[cfg(feature = "trace")]
            trace: None,
            #[cfg(feature = "trace")]
            trace_layer: u8::MAX,
            #[cfg(feature = "trace")]
            sampler: tmu_trace::PeriodicSampler::new(
                tmu_trace::with(|t| t.config().sample_period).unwrap_or(256),
            ),
        })
    }

    #[cfg(feature = "trace")]
    #[inline]
    fn emit(&self, cycle: u64, kind: tmu_trace::EventKind, payload: u64) {
        if let Some(id) = self.trace {
            tmu_trace::with(|t| t.event(id, cycle, kind, payload));
        }
    }

    /// The engine configuration.
    pub fn config(&self) -> &TmuConfig {
        &self.cfg
    }

    /// Per-layer stream queue depths chosen by the sizing model.
    pub fn queue_depths(&self) -> &[usize] {
        &self.qdepth
    }

    /// Shared handle to the engine's outQ statistics. Clone it before
    /// boxing the accelerator into [`tmu_sim::System::run_accelerated`];
    /// it stays readable after the run.
    pub fn stats_handle(&self) -> Arc<Mutex<OutQStats>> {
        Arc::clone(&self.stats)
    }

    /// Snapshot of the current outQ statistics.
    pub fn stats(&self) -> OutQStats {
        self.stats.lock().expect("stats poisoned").clone()
    }

    /// The callback handler (for reading back results it accumulated).
    pub fn handler(&self) -> &H {
        &self.handler
    }

    /// Attaches a fault-injection plan (tests use this to pin scripted
    /// schedules; rate-based plans normally come from `cfg.faults`).
    pub fn inject_fault_plan(&mut self, plan: FaultPlan) {
        self.faults = Some(plan);
    }

    /// Fault-injection counters so far (zeroes when no plan is attached).
    pub fn fault_stats(&self) -> FaultStats {
        self.faults.as_ref().map(|p| p.stats).unwrap_or_default()
    }

    /// The attached fault plan (probe runs read its load count back to
    /// place scripted injection points on the live schedule).
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.faults.as_ref()
    }

    /// The terminal error the engine retired with, if any.
    pub fn retired(&self) -> Option<&TmuError> {
        self.retired.as_ref()
    }

    /// Tags this engine's outQ with an owning tenant id. The tag rides in
    /// every [`ContextSnapshot`] taken from the engine and in the shared
    /// [`OutQStats`], so a scheduler multiplexing many jobs can attribute
    /// marshaled chunks to the job that produced them.
    pub fn set_tenant(&mut self, tenant: u32) {
        self.tenant = tenant;
        self.stats.lock().expect("stats poisoned").tenant = tenant;
    }

    /// The owning tenant id (0 unless [`TmuAccelerator::set_tenant`] ran).
    pub fn tenant(&self) -> u32 {
        self.tenant
    }

    /// Traversal-group steps committed so far (the precise quiesce
    /// point). Schedulers preempting the engine compare this across
    /// quanta to guarantee forward progress: a context switched out
    /// before its first committed step would replay to the same point
    /// forever.
    pub fn steps_committed(&self) -> u64 {
        self.steps_committed
    }

    /// Whether the engine was externally descheduled by
    /// [`TmuAccelerator::quiesce`].
    pub fn parked(&self) -> bool {
        self.parked
    }

    /// Consumes the engine shell, returning the callback handler — the
    /// host-software half of the job, which an external scheduler moves
    /// onto the next engine incarnation at [`TmuAccelerator::resume_from`].
    pub fn into_handler(self) -> H {
        self.handler
    }

    /// Externally deschedules the engine (§5.6, scheduler-driven): drains
    /// to the precise TG-step quiesce point and captures the architectural
    /// context.
    ///
    /// The committed step count *is* the quiesce point — steps commit
    /// strictly in order, and everything past it (in-flight loads, queued
    /// steps, arbiter state) is speculative and regenerated bit-exactly by
    /// replay on resume. The open partial outQ chunk is sealed so all
    /// host-visible state drains with the outgoing context; sealing only
    /// changes chunk packaging, never the marshaled entry stream. If a
    /// fault was mid-service the pending restore is subsumed: the saved
    /// context is identical to the one captured here.
    ///
    /// After this call the engine is parked: ticks are no-ops and
    /// [`Accelerator::done`] reports true once the already-synthesized
    /// host ops (the sealed chunk's callbacks and `ChunkEnd`) have
    /// drained. Errors if the engine already retired.
    pub fn quiesce(
        &mut self,
        now: u64,
        core: usize,
        mem: &mut MemSys,
    ) -> Result<ContextSnapshot, TmuError> {
        if let Some(err) = self.retired.as_ref() {
            return Err(err.clone());
        }
        if self.chunk_entries > 0 {
            self.seal_chunk(now, core, mem);
        }
        let entries = self.stats.lock().expect("stats poisoned").entries;
        let snap = ContextSnapshot::save(self.cfg, &self.program, self.steps_committed, entries)
            .with_outq(self.chunk_id, self.tenant);
        self.saved = None;
        self.trap_pending = None;
        self.pending.clear();
        self.parked = true;
        Ok(snap)
    }

    /// Reconstructs an engine from an externally saved context (§5.6,
    /// scheduler-driven reschedule): the dual of
    /// [`TmuAccelerator::quiesce`].
    ///
    /// Replays the interpreter to the saved step count, rebuilding the
    /// per-TU committed-consumption ordinals the §5.5 capacity check is
    /// keyed on; loads of already-committed steps read as ready. The outQ
    /// control registers resume from the snapshot: the next chunk id
    /// continues the sealed sequence (the consumer drained every sealed
    /// chunk before the switch completed, so the double-buffer gate opens
    /// fully). Pass the descheduled engine's [`stats_handle`] as `stats`
    /// so entry counts and per-chunk timings accumulate across
    /// incarnations — chunk ids then stay aligned with the shared
    /// `chunks` vector.
    ///
    /// A rate-based fault plan restarts its load counter (the plan is
    /// microarchitectural, not architectural state); scripted plans do not
    /// survive a switch.
    ///
    /// [`stats_handle`]: TmuAccelerator::stats_handle
    pub fn resume_from(
        snap: &ContextSnapshot,
        image: Arc<MemImage>,
        handler: H,
        outq_base: u64,
        stats: Arc<Mutex<OutQStats>>,
    ) -> Result<Self, TmuError> {
        let cfg = snap.config;
        let program = Arc::new(snap.program.clone());
        if program.lanes_used() > cfg.lanes {
            return Err(TmuError::LanesExceeded {
                used: program.lanes_used(),
                lanes: cfg.lanes,
            });
        }
        let qdepth = cfg.try_size_queues(&program.weights(), &program.streams_per_layer())?;
        let mut tus: Vec<Vec<TuTiming>> = program
            .layers
            .iter()
            .map(|l| (0..l.tus.len()).map(|_| TuTiming::default()).collect())
            .collect();
        let layers = program.layers.len();
        let mut interp = Interp::new(Arc::clone(&program), Arc::clone(&image));
        for _ in 0..snap.steps_completed {
            let step = interp.next_step().ok_or(TmuError::SnapshotOutOfRange {
                steps: snap.steps_completed,
            })?;
            for &(layer, lane) in &step.consumed {
                tus[layer as usize][lane as usize].consumed_elems += 1;
            }
        }
        #[cfg(feature = "trace")]
        tmu_trace::with(|t| {
            let c = t.component("system.tmu.ctx");
            t.event(
                c,
                snap.steps_completed,
                tmu_trace::EventKind::CtxRestore,
                snap.entries_produced,
            );
        });
        let base = interp.elems_issued();
        stats.lock().expect("stats poisoned").tenant = snap.tenant;
        Ok(Self {
            cfg,
            batcher: StepBatcher::new(interp),
            handler,
            program,
            image,
            faults: FaultPlan::from_spec(cfg.faults, outq_base),
            steps_committed: snap.steps_completed,
            trap_pending: None,
            saved: None,
            service_until: 0,
            outq_stall_until: 0,
            retired: None,
            parked: false,
            tenant: snap.tenant,
            qdepth,
            tus,
            ready: ReadyRing::starting_at(base),
            global_lines: [(u64::MAX, 0); 32],
            global_pos: 0,
            pending: VecDeque::new(),
            steps_done: false,
            rr: vec![0; layers],
            outq_base,
            chunk_id: snap.chunks_sealed,
            chunk_entries: 0,
            chunk_bytes: 0,
            chunk_open: 0,
            acked: snap.chunks_sealed,
            vm: VecMachine::new(),
            host_ops: VecDeque::new(),
            stats,
            outq_site: Site(u16::MAX),
            debug_counters: [0; 4],
            #[cfg(feature = "trace")]
            trace: None,
            #[cfg(feature = "trace")]
            trace_layer: u8::MAX,
            #[cfg(feature = "trace")]
            sampler: tmu_trace::PeriodicSampler::new(
                tmu_trace::with(|t| t.config().sample_period).unwrap_or(256),
            ),
        })
    }

    /// Retires the engine: abandon all outstanding work, record the typed
    /// error, and report done so the host run terminates cleanly. The
    /// caller is expected to fall back to the software baseline.
    fn retire(&mut self, err: TmuError) {
        self.pending.clear();
        self.steps_done = true;
        self.chunk_entries = 0;
        self.chunk_bytes = 0;
        // Discard host ops synthesized for the unsealed chunk.
        let _ = self.vm.take();
        self.saved = None;
        self.trap_pending = None;
        let mut stats = self.stats.lock().expect("stats poisoned");
        stats.retired = Some(err.to_string());
        if let Some(plan) = self.faults.as_ref() {
            stats.faults = plan.stats;
        }
        drop(stats);
        self.retired = Some(err);
    }

    /// Takes the precise trap for the pending fault: the engine has
    /// quiesced at a TG-step boundary (in-flight loads and uncommitted
    /// steps are abandoned — replay regenerates them bit-exactly), so the
    /// architectural context is exactly the committed step count.
    fn take_trap(&mut self, now: u64) {
        let Some(kind) = self.trap_pending.take() else {
            return;
        };
        let Some(plan) = self.faults.as_mut() else {
            return;
        };
        let spec = *plan.spec();
        if kind == FaultKind::PageFault && plan.stats.page_faults > u64::from(spec.max_serviced) {
            plan.stats.unserviceable += 1;
            let seen = plan.stats.page_faults;
            self.retire(TmuError::UnserviceableFault {
                serviced: seen.min(u64::from(u32::MAX)) as u32,
                limit: spec.max_serviced,
            });
            return;
        }
        plan.stats.traps += 1;
        let entries = self.stats.lock().expect("stats poisoned").entries;
        self.saved = Some(
            ContextSnapshot::save(self.cfg, &self.program, self.steps_committed, entries)
                .with_outq(self.chunk_id, self.tenant),
        );
        self.service_until = now + u64::from(spec.service_cycles).max(1);
        #[cfg(feature = "trace")]
        self.emit(now, tmu_trace::EventKind::TrapRaised, self.steps_committed);
    }

    /// Resumes from the saved context after fault service: rebuild the
    /// interpreter by replay, discard all speculative (uncommitted)
    /// engine state, and continue. Committed outQ state — chunk ids,
    /// entry counts, synthesized host ops, per-TU consumption — is
    /// architectural and survives untouched.
    fn restore_from_trap(&mut self) {
        let Some(snap) = self.saved.take() else {
            return;
        };
        let interp = match snap.try_restore(Arc::clone(&self.image)) {
            Ok(interp) => interp,
            Err(e) => {
                // A corrupt snapshot cannot resume: degrade instead of
                // panicking mid-run.
                self.retire(e);
                return;
            }
        };
        // Loads of already-committed steps have ids below the replayed
        // interpreter's next id; the fresh ring reports them ready-at-0.
        let base = interp.elems_issued();
        self.batcher = StepBatcher::new(interp);
        self.pending.clear();
        self.steps_done = false;
        for layer in self.tus.iter_mut() {
            for tu in layer.iter_mut() {
                // Keep `consumed_elems` (committed consumption — the §5.5
                // capacity check is in program-order element ordinals);
                // drop the speculative queue contents.
                tu.streams.clear();
            }
        }
        self.global_lines = [(u64::MAX, 0); 32];
        self.global_pos = 0;
        for r in self.rr.iter_mut() {
            *r = 0;
        }
        self.ready = ReadyRing::starting_at(base);
        if let Some(plan) = self.faults.as_mut() {
            plan.stats.restores += 1;
        }
    }

    /// Publishes the plan's counters into the shared stats (fault runs
    /// only; fault-free runs never touch this path).
    fn publish_fault_stats(&mut self) {
        if let Some(plan) = self.faults.as_ref() {
            self.stats.lock().expect("stats poisoned").faults = plan.stats;
        }
    }

    fn refill(&mut self) {
        while self.pending.len() < 512 && !self.steps_done {
            self.batcher.fill(64);
            match self.batcher.pop() {
                Some(step) => {
                    for ld in &step.loads {
                        self.ready.push_unissued(ld.id);
                    }
                    let mut step = step;
                    for ld in step.loads.drain(..) {
                        let tu = &mut self.tus[ld.layer as usize][ld.lane as usize];
                        let slot = ld.stream as usize;
                        if tu.streams.len() <= slot {
                            tu.streams.resize_with(slot + 1, StreamQueue::default);
                        }
                        tu.streams[slot].queue.push_back(ld);
                    }
                    self.pending.push_back(step);
                }
                None => self.steps_done = true,
            }
        }
    }

    /// §5.4 arbiter: picks and issues at most one new cacheline request
    /// (plus free same-line coalesced loads).
    fn arbitrate(&mut self, now: u64, core: usize, mem: &mut MemSys) {
        // §5.1/§5.4: each TU FSM advances at most one element per cycle —
        // every stream queue pops at most once — and the whole engine
        // issues at most one *new* cacheline request per cycle. A request
        // whose line was already requested (by this or another TU) merges
        // into the in-flight line for free, like MSHR secondary misses.
        let mut issued_line = false;
        let mut had_work = false;
        for layer in 0..self.tus.len() {
            let lanes = self.tus[layer].len();
            for k in 0..lanes {
                let lane = (self.rr[layer] + k) % lanes;
                let n_streams = self.tus[layer][lane].streams.len();
                for stream in 0..n_streams {
                    let depth = self.qdepth[layer] as u64;
                    let tu = &self.tus[layer][lane];
                    let sq = &tu.streams[stream];
                    let Some(head) = sq.queue.front() else {
                        continue;
                    };
                    had_work = true;
                    // Queue capacity (§5.5) and dependency readiness.
                    if head.elem_ordinal >= tu.consumed_elems + depth {
                        self.debug_counters[1] += 1;
                        continue;
                    }
                    let deps_ready = head
                        .deps
                        .iter()
                        .map(|&d| self.ready.get(d))
                        .max()
                        .unwrap_or(0);
                    if deps_ready == UNISSUED || deps_ready > now {
                        self.debug_counters[2] += 1;
                        continue;
                    }
                    let line = tmu_sim::line_of(head.addr);
                    let merged = if sq.last_line == line && sq.last_ready != 0 {
                        Some(sq.last_ready)
                    } else {
                        self.global_lines
                            .iter()
                            .find(|&&(l, _)| l == line)
                            .map(|&(_, ready)| ready)
                    };
                    if let Some(line_ready) = merged {
                        let sq = &mut self.tus[layer][lane].streams[stream];
                        let head = sq.queue.pop_front().expect("checked");
                        sq.last_line = line;
                        sq.last_ready = line_ready.max(1);
                        self.ready.set(head.id, line_ready.max(now));
                        continue;
                    }
                    if issued_line {
                        // The cycle's request slot is spent; this stream
                        // stalls until next cycle.
                        continue;
                    }
                    // Fault injection on the load about to issue. A page
                    // fault consumes the request slot without completing:
                    // the engine stops arbitrating and traps at the end of
                    // the tick. Transient retries only delay completion.
                    let mut retry_extra = 0u64;
                    let injected = self.faults.as_mut().and_then(|plan| {
                        let retry = u64::from(plan.spec().retry_cycles);
                        plan.on_load().map(|k| (k, retry))
                    });
                    if let Some((kind, retry)) = injected {
                        #[cfg(feature = "trace")]
                        self.emit(
                            now,
                            tmu_trace::EventKind::FaultInjected,
                            u64::from(kind.bit()),
                        );
                        match kind {
                            FaultKind::PageFault => {
                                self.trap_pending = Some(FaultKind::PageFault);
                                return;
                            }
                            FaultKind::DramRetry | FaultKind::NocRetry => {
                                retry_extra = retry.max(1);
                            }
                            // Cycle-triggered kinds scripted onto a load
                            // ordinal behave like a preemption.
                            FaultKind::OutQStall | FaultKind::Preempt => {
                                self.trap_pending = Some(FaultKind::Preempt);
                                return;
                            }
                        }
                    }
                    let done = mem.accel_read(core, head.addr, now) + retry_extra;
                    let sq = &mut self.tus[layer][lane].streams[stream];
                    let head = sq.queue.pop_front().expect("checked");
                    sq.last_line = line;
                    sq.last_ready = done;
                    self.global_lines[self.global_pos] = (line, done);
                    self.global_pos = (self.global_pos + 1) % self.global_lines.len();
                    self.ready.set(head.id, done);
                    issued_line = true;
                    self.rr[layer] = (lane + 1) % lanes;
                    #[cfg(feature = "trace")]
                    self.emit(
                        now,
                        tmu_trace::EventKind::TuFetch,
                        tmu_trace::pack_dur_extra(
                            done.saturating_sub(now),
                            ((layer as u32) << 8) | lane as u32,
                        ),
                    );
                }
            }
        }
        if !issued_line && had_work {
            self.debug_counters[0] += 1;
        }
    }

    /// Advances outQ construction: completes in-order steps whose gates
    /// are ready, pushing at most one entry per cycle.
    fn advance_steps(&mut self, now: u64, core: usize, mem: &mut MemSys) {
        let mut free_steps = 4;
        let mut pushed_entry = false;
        while free_steps > 0 && !pushed_entry {
            let Some(step) = self.pending.front() else {
                break;
            };
            // Injected outQ backpressure: entry-producing steps hold at
            // the same gate a full consumer would wedge them on. (Never
            // taken in fault-free runs: `outq_stall_until` stays 0.)
            if !step.entries.is_empty() && now < self.outq_stall_until {
                break;
            }
            // Double-buffer gate: entries may only enter chunk c when the
            // core has acked chunk c-2.
            if !step.entries.is_empty() && self.chunk_id >= self.acked + 2 {
                self.stats
                    .lock()
                    .expect("stats poisoned")
                    .backpressure_cycles += 1;
                #[cfg(feature = "trace")]
                self.emit(
                    now,
                    tmu_trace::EventKind::OutQFull,
                    u64::from(self.chunk_id.saturating_sub(self.acked)),
                );
                break;
            }
            let gates_ready = step
                .gates
                .iter()
                .map(|&g| self.ready.get(g))
                .max()
                .unwrap_or(0);
            if gates_ready == UNISSUED || gates_ready > now {
                self.debug_counters[3] += 1;
                break;
            }
            let step = self.pending.pop_front().expect("checked");
            self.steps_committed += 1;
            #[cfg(feature = "trace")]
            {
                if step.layer != self.trace_layer {
                    self.trace_layer = step.layer;
                    self.emit(
                        now,
                        tmu_trace::EventKind::LayerTransition,
                        u64::from(step.layer),
                    );
                }
                let fsm = match step.kind {
                    crate::steps::StepKind::Beg => 0u32,
                    crate::steps::StepKind::Ite => 1,
                    crate::steps::StepKind::End => 2,
                    crate::steps::StepKind::Skip => 3,
                };
                self.emit(
                    now,
                    tmu_trace::EventKind::TgStep,
                    tmu_trace::pack_dur_extra(1, ((step.layer as u32) << 8) | fsm),
                );
            }
            for &(layer, lane) in &step.consumed {
                self.tus[layer as usize][lane as usize].consumed_elems += 1;
            }
            if step.entries.is_empty() {
                free_steps -= 1;
                continue;
            }
            // Push the step's entries into the current chunk.
            for entry in &step.entries {
                if self.chunk_entries == 0 {
                    self.chunk_open = now;
                }
                self.push_entry(entry, now, core, mem);
            }
            pushed_entry = true;
            if self.chunk_entries >= self.cfg.chunk_entries as u32 {
                self.seal_chunk(now, core, mem);
            }
        }
        // Seal a trailing partial chunk once traversal has finished.
        if self.pending.is_empty() && self.steps_done && self.chunk_entries > 0 {
            self.seal_chunk(now, core, mem);
        }
    }

    fn entry_addr(&self) -> u64 {
        let chunk_cap = (self.cfg.chunk_entries as u64 + 1) * 256;
        self.outq_base + (self.chunk_id as u64 % 2) * chunk_cap + self.chunk_bytes as u64
    }

    fn push_entry(&mut self, entry: &OutQEntry, now: u64, core: usize, mem: &mut MemSys) {
        let addr = self.entry_addr();
        let bytes = entry.bytes();
        mem.accel_write(core, addr, bytes, now);
        // Synthesize the host ops for this entry right away; they become
        // visible when the chunk seals (visible_at patched in seal_chunk).
        let load = self.vm.vec_load(self.outq_site, addr, bytes, Deps::NONE);
        self.handler.handle(entry, load, &mut self.vm);
        self.chunk_entries += 1;
        self.chunk_bytes += bytes.max(64);
        self.stats.lock().expect("stats poisoned").entries += 1;
        #[cfg(feature = "trace")]
        self.emit(
            now,
            tmu_trace::EventKind::OutQPush,
            u64::from(self.chunk_id),
        );
    }

    fn seal_chunk(&mut self, now: u64, core: usize, mem: &mut MemSys) {
        let visible = mem.accel_write(core, self.entry_addr(), 8, now);
        self.vm.emit(
            Site(0),
            OpKind::ChunkEnd {
                chunk: self.chunk_id,
            },
            Deps::NONE,
        );
        let mut ops = self.vm.take();
        for op in &mut ops {
            op.visible_at = visible;
        }
        self.host_ops.extend(ops);
        self.stats
            .lock()
            .expect("stats poisoned")
            .chunks
            .push(ChunkStat {
                open: self.chunk_open,
                ready: visible,
                ack: 0,
                entries: self.chunk_entries,
            });
        #[cfg(feature = "trace")]
        self.emit(
            self.chunk_open,
            tmu_trace::EventKind::ChunkWrite,
            tmu_trace::pack_dur_extra(visible.saturating_sub(self.chunk_open), self.chunk_id),
        );
        self.chunk_id += 1;
        self.chunk_entries = 0;
        self.chunk_bytes = 0;
    }
}

impl<H: CallbackHandler> Accelerator for TmuAccelerator<H> {
    fn tick(&mut self, now: u64, core: usize, mem: &mut MemSys) {
        #[cfg(feature = "trace")]
        {
            // The engine learns its host core index here, so the tracer
            // component is registered on the first traced tick.
            if self.trace.is_none() && tmu_trace::is_active() {
                self.trace = tmu_trace::with(|t| t.component(&format!("system.core{core}.tmu")));
            }
            if self.trace.is_some() && self.sampler.due(now) {
                self.emit(
                    now,
                    tmu_trace::EventKind::OutQOccupancy,
                    u64::from(self.chunk_entries),
                );
                self.emit(
                    now,
                    tmu_trace::EventKind::OutQChunksAhead,
                    u64::from(self.chunk_id.saturating_sub(self.acked)),
                );
            }
        }
        if self.retired.is_some() || self.parked {
            return;
        }
        if self.saved.is_some() {
            // The simulated OS is servicing a fault; the engine is quiesced.
            if now < self.service_until {
                return;
            }
            self.restore_from_trap();
            if self.retired.is_some() {
                return;
            }
        }
        // Cycle-triggered injections (preemption, outQ backpressure).
        let cycle_fault = self.faults.as_mut().and_then(|plan| {
            let stall = u64::from(plan.spec().stall_cycles);
            plan.on_cycle(now).map(|k| (k, stall))
        });
        if let Some((kind, stall)) = cycle_fault {
            #[cfg(feature = "trace")]
            self.emit(
                now,
                tmu_trace::EventKind::FaultInjected,
                u64::from(kind.bit()),
            );
            match kind {
                FaultKind::OutQStall => {
                    self.outq_stall_until = self.outq_stall_until.max(now + stall.max(1));
                }
                _ => self.trap_pending = Some(kind),
            }
        }
        self.refill();
        self.arbitrate(now, core, mem);
        self.advance_steps(now, core, mem);
        if self.trap_pending.is_some() {
            self.take_trap(now);
        }
        self.publish_fault_stats();
    }

    fn drain_ops(&mut self, out: &mut Vec<Op>) {
        out.extend(self.host_ops.drain(..));
    }

    fn ack_chunk(&mut self, chunk: u32, now: u64) {
        self.acked = self.acked.max(chunk + 1);
        let mut stats = self.stats.lock().expect("stats poisoned");
        if let Some(stat) = stats.chunks.get_mut(chunk as usize) {
            stat.ack = now;
            #[cfg(feature = "trace")]
            {
                let ready = stat.ready;
                drop(stats);
                self.emit(
                    ready,
                    tmu_trace::EventKind::ChunkRead,
                    tmu_trace::pack_dur_extra(now.saturating_sub(ready), chunk),
                );
            }
        }
    }

    fn done(&self) -> bool {
        if self.retired.is_some() || self.parked {
            // Retired engines are done once their already-synthesized ops
            // have drained (the caller falls back to software); parked
            // engines likewise — their remaining state lives in the
            // snapshot an external scheduler took.
            return self.host_ops.is_empty();
        }
        self.saved.is_none()
            && self.trap_pending.is_none()
            && self.steps_done
            && self.pending.is_empty()
            && self.chunk_entries == 0
            && self.host_ops.is_empty()
    }

    fn status_line(&self) -> String {
        format!(
            "tmu: steps_committed={} pending={} chunk_id={} acked={} chunk_entries={} \
             steps_done={} trapped={} retired={}",
            self.steps_committed,
            self.pending.len(),
            self.chunk_id,
            self.acked,
            self.chunk_entries,
            self.steps_done,
            self.saved.is_some(),
            self.retired.is_some(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{Event, LayerMode, ProgramBuilder, StreamTy};
    use tmu_sim::{configs, AddressMap, CoreConfig, MemSysConfig, System, SystemConfig};

    /// SpMV P1 handler: Figure 6 callbacks.
    struct SpmvHandler {
        sum_dep: OpId,
        x: Vec<f64>,
        sum: f64,
    }

    impl CallbackHandler for SpmvHandler {
        fn handle(&mut self, entry: &OutQEntry, load: OpId, m: &mut VecMachine) {
            match entry.callback {
                0 => {
                    let nnz = entry.operands[0].as_f64s();
                    let vecv = entry.operands[1].as_f64s();
                    self.sum += nnz.iter().zip(&vecv).map(|(a, b)| a * b).sum::<f64>();
                    let lanes = nnz.len() as u32;
                    let mul = m.vec_op(lanes, Deps::from(load));
                    let red = m.vec_op(lanes, Deps::on(&[mul, self.sum_dep]));
                    self.sum_dep = red;
                }
                1 => {
                    self.x.push(self.sum);
                    self.sum = 0.0;
                    let st = m.store(
                        Site(100),
                        0x7000_0000 + self.x.len() as u64 * 8,
                        8,
                        Deps::from(self.sum_dep),
                    );
                    let _ = st;
                    self.sum_dep = OpId::NONE;
                }
                other => panic!("unexpected callback {other}"),
            }
        }
    }

    fn spmv_accel(lanes: usize) -> (TmuAccelerator<SpmvHandler>, Vec<f64>) {
        spmv_accel_cfg(TmuConfig::paper(), lanes)
    }

    fn spmv_accel_cfg(cfg: TmuConfig, lanes: usize) -> (TmuAccelerator<SpmvHandler>, Vec<f64>) {
        // A small random CSR matrix and vector with a known reference.
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(5);
        let rows = 64usize;
        let cols = 64usize;
        let mut ptrs = vec![0u32];
        let mut idxs = Vec::new();
        let mut vals = Vec::new();
        for _ in 0..rows {
            let n = rng.gen_range(0..6);
            let mut cs: Vec<u32> = (0..n).map(|_| rng.gen_range(0..cols as u32)).collect();
            cs.sort_unstable();
            cs.dedup();
            for c in cs {
                idxs.push(c);
                vals.push(rng.gen_range(0.5..1.5));
            }
            ptrs.push(idxs.len() as u32);
        }
        let b: Vec<f64> = (0..cols).map(|_| rng.gen_range(0.5..1.5)).collect();
        let reference: Vec<f64> = (0..rows)
            .map(|r| {
                (ptrs[r] as usize..ptrs[r + 1] as usize)
                    .map(|p| vals[p] * b[idxs[p] as usize])
                    .sum()
            })
            .collect();

        let mut map = AddressMap::new();
        let ptrs_r = map.alloc_elems("ptrs", ptrs.len(), 4);
        let idxs_r = map.alloc_elems("idxs", idxs.len().max(1), 4);
        let vals_r = map.alloc_elems("vals", vals.len().max(1), 8);
        let b_r = map.alloc_elems("b", b.len(), 8);
        let outq_r = map.alloc("outq", 1 << 20);
        let mut image = MemImage::new();
        image.bind_u32(ptrs_r, Arc::new(ptrs));
        image.bind_u32(idxs_r, Arc::new(idxs));
        image.bind_f64(vals_r, Arc::new(vals));
        image.bind_f64(b_r, Arc::new(b));

        let mut bld = ProgramBuilder::new();
        let l0 = bld.layer(LayerMode::Single);
        let row = bld.dns_fbrt(l0, 0, rows as i64, 1);
        let ptbs = bld.mem_stream(row, ptrs_r.base, 4, StreamTy::Index);
        let ptes = bld.mem_stream(row, ptrs_r.base + 4, 4, StreamTy::Index);
        let l1 = bld.layer(LayerMode::LockStep);
        let mut nnz = Vec::new();
        let mut vecv = Vec::new();
        for lane in 0..lanes as i64 {
            let col = bld.rng_fbrt(l1, ptbs, ptes, lane, lanes as i64);
            let ci = bld.mem_stream(col, idxs_r.base, 4, StreamTy::Index);
            nnz.push(bld.mem_stream(col, vals_r.base, 8, StreamTy::Value));
            vecv.push(bld.mem_stream_indexed(col, b_r.base, 8, StreamTy::Value, ci));
        }
        let nnz_op = bld.vec_operand(l1, &nnz);
        let vec_op = bld.vec_operand(l1, &vecv);
        bld.callback(l1, Event::Ite, 0, &[nnz_op, vec_op]);
        bld.callback(l1, Event::End, 1, &[]);
        let prog = Arc::new(bld.build().expect("well-formed"));

        let accel = TmuAccelerator::new(
            cfg,
            prog,
            Arc::new(image),
            SpmvHandler {
                sum_dep: OpId::NONE,
                x: Vec::new(),
                sum: 0.0,
            },
            outq_r.base,
        );
        (accel, reference)
    }

    #[test]
    fn accelerated_spmv_completes_and_is_correct() {
        let (accel, reference) = spmv_accel(2);
        let mut sys = System::new(SystemConfig {
            core: CoreConfig::neoverse_n1_like(),
            mem: MemSysConfig::table5(1),
        });
        let stats = sys.run_accelerated(vec![Box::new(accel)]);
        assert!(stats.cycles > 0);
        assert!(stats.total().committed > 0);
        let _ = reference; // functional check exercised in the next test
    }

    #[test]
    fn handler_computes_reference_result() {
        let (mut accel, reference) = spmv_accel(2);
        // Run standalone against a private memory system.
        let mut mem = MemSys::new(MemSysConfig::table5(1));
        let mut now = 0u64;
        let mut sink = Vec::new();
        while !accel.done() {
            accel.tick(now, 0, &mut mem);
            accel.drain_ops(&mut sink);
            // Ack chunks immediately (infinitely fast core).
            for op in &sink {
                if let OpKind::ChunkEnd { chunk } = op.kind {
                    accel.ack_chunk(chunk, now);
                }
            }
            sink.clear();
            now += 1;
            assert!(now < 5_000_000, "engine must terminate");
        }
        let x = &accel.handler.x;
        assert_eq!(x.len(), reference.len());
        for (got, want) in x.iter().zip(&reference) {
            assert!((got - want).abs() < 1e-9, "{got} vs {want}");
        }
        let st = accel.stats();
        assert!(st.entries > 0);
        assert!(!st.chunks.is_empty());
    }

    #[test]
    fn double_buffering_limits_run_ahead() {
        let (mut accel, _) = spmv_accel(2);
        let mut mem = MemSys::new(MemSysConfig::table5(1));
        let mut sink = Vec::new();
        // Never ack: the engine must stall after two chunks.
        for now in 0..200_000u64 {
            accel.tick(now, 0, &mut mem);
            accel.drain_ops(&mut sink);
        }
        assert!(
            accel.chunk_id <= 2,
            "unacked engine ran {} chunks ahead",
            accel.chunk_id
        );
        assert!(accel.stats().backpressure_cycles > 0);
    }

    #[test]
    fn more_lanes_do_not_change_results() {
        for lanes in [1, 4, 8] {
            let (mut accel, reference) = spmv_accel(lanes);
            let mut mem = MemSys::new(MemSysConfig::table5(1));
            let mut now = 0u64;
            let mut sink = Vec::new();
            while !accel.done() {
                accel.tick(now, 0, &mut mem);
                accel.drain_ops(&mut sink);
                for op in &sink {
                    if let OpKind::ChunkEnd { chunk } = op.kind {
                        accel.ack_chunk(chunk, now);
                    }
                }
                sink.clear();
                now += 1;
                assert!(now < 5_000_000);
            }
            for (got, want) in accel.handler.x.iter().zip(&reference) {
                assert!((got - want).abs() < 1e-9, "lanes={lanes}: {got} vs {want}");
            }
        }
    }

    /// Drives an engine standalone to completion (infinitely fast core),
    /// returning the result vector and the cycle count.
    fn drive_to_done(accel: &mut TmuAccelerator<SpmvHandler>) -> (Vec<f64>, u64) {
        let mut mem = MemSys::new(MemSysConfig::table5(1));
        let mut now = 0u64;
        let mut sink = Vec::new();
        while !accel.done() {
            accel.tick(now, 0, &mut mem);
            accel.drain_ops(&mut sink);
            for op in &sink {
                if let OpKind::ChunkEnd { chunk } = op.kind {
                    accel.ack_chunk(chunk, now);
                }
            }
            sink.clear();
            now += 1;
            assert!(now < 5_000_000, "engine must terminate");
        }
        (accel.handler.x.clone(), now)
    }

    #[test]
    fn scripted_faults_resume_bit_identically() {
        use tmu_sim::{FaultEvent, FaultSpec};
        // Probe run: learn the fault-free result, cycle count, and how
        // many loads the engine actually issues, so injection points can
        // be spread over the real schedule.
        let (mut probe, reference) = spmv_accel(2);
        probe.inject_fault_plan(FaultPlan::with_events(FaultSpec::with_rate(0, 0), vec![]));
        let (clean_x, clean_cycles) = drive_to_done(&mut probe);
        assert_eq!(clean_x.len(), reference.len());
        let total_loads = probe.faults.as_ref().expect("plan attached").loads_seen();
        assert!(total_loads > 4, "fixture must issue loads");

        for kind in [
            FaultKind::PageFault,
            FaultKind::DramRetry,
            FaultKind::Preempt,
            FaultKind::OutQStall,
        ] {
            for frac in [0u64, 1, 2, 3] {
                let (mut accel, _) = spmv_accel(2);
                let load_pt = (total_loads - 1) * frac / 3;
                let cycle_pt = (clean_cycles - 1) * frac / 3;
                let ev = match kind {
                    FaultKind::Preempt | FaultKind::OutQStall => {
                        FaultEvent::at_cycle(cycle_pt, kind)
                    }
                    _ => FaultEvent::at_load(load_pt, kind),
                };
                accel.inject_fault_plan(FaultPlan::with_events(
                    FaultSpec::with_rate(0, 0),
                    vec![ev],
                ));
                let (x, _) = drive_to_done(&mut accel);
                assert_eq!(
                    x.to_vec(),
                    clean_x,
                    "{kind:?} at fraction {frac}/3 must be transparent"
                );
                let st = accel.fault_stats();
                assert!(st.injected >= 1, "{kind:?} at {frac}/3 never injected");
                if kind == FaultKind::PageFault || kind == FaultKind::Preempt {
                    assert!(st.traps >= 1);
                    assert_eq!(st.traps, st.restores);
                }
            }
        }
    }

    #[test]
    fn external_quiesce_resume_is_bit_identical() {
        let (mut clean, reference) = spmv_accel(2);
        let (clean_x, clean_cycles) = drive_to_done(&mut clean);
        assert_eq!(clean_x.len(), reference.len());
        for quantum in [1u64, 113, 1009, 20_000] {
            let (first, _) = spmv_accel(2);
            let image = Arc::clone(&first.image);
            let base = first.outq_base;
            let stats = first.stats_handle();
            let mut accel = first;
            let mut mem = MemSys::new(MemSysConfig::table5(1));
            let mut now = 0u64;
            let mut sink = Vec::new();
            let mut switches = 0u64;
            loop {
                // One scheduling quantum, extended until the engine has
                // committed at least one step since resume (the progress
                // guarantee a preemptive scheduler must provide — a
                // context switched out before its first commit replays
                // to the same point forever).
                let resumed_at = accel.steps_committed;
                let until = now + quantum;
                while !accel.done() && (now < until || accel.steps_committed == resumed_at) {
                    accel.tick(now, 0, &mut mem);
                    accel.drain_ops(&mut sink);
                    for op in &sink {
                        if let OpKind::ChunkEnd { chunk } = op.kind {
                            accel.ack_chunk(chunk, now);
                        }
                    }
                    sink.clear();
                    now += 1;
                    assert!(now < 20_000_000, "quantum {quantum}: must terminate");
                }
                if accel.done() {
                    break;
                }
                let snap = accel.quiesce(now, 0, &mut mem).expect("engine is live");
                // Drain the sealed partial chunk's host ops, then move the
                // handler (host-software state) to the next incarnation.
                accel.drain_ops(&mut sink);
                for op in &sink {
                    if let OpKind::ChunkEnd { chunk } = op.kind {
                        accel.ack_chunk(chunk, now);
                    }
                }
                sink.clear();
                assert!(accel.done(), "parked engine drains to done");
                let handler = accel.into_handler();
                accel = TmuAccelerator::resume_from(
                    &snap,
                    Arc::clone(&image),
                    handler,
                    base,
                    Arc::clone(&stats),
                )
                .expect("snapshot restores");
                switches += 1;
            }
            assert_eq!(
                accel.handler.x, clean_x,
                "quantum {quantum}: preemption perturbed results"
            );
            if quantum < clean_cycles / 2 {
                assert!(switches > 0, "quantum {quantum} never switched");
            }
            let st = stats.lock().expect("stats poisoned");
            assert_eq!(st.entries, clean.stats().entries);
        }
    }

    #[test]
    fn rate_based_faults_from_config_preserve_results() {
        use tmu_sim::FaultSpec;
        let (mut clean, _) = spmv_accel(4);
        let (clean_x, _) = drive_to_done(&mut clean);
        for seed in 1..=3u64 {
            // Inject through the config path kernels use: an engine built
            // with an active `cfg.faults` constructs its own plan.
            let cfg = TmuConfig::paper().with_faults(FaultSpec::with_rate(seed, 10_000));
            let (mut accel, _) = spmv_accel_cfg(cfg, 4);
            let (x, _) = drive_to_done(&mut accel);
            assert_eq!(x, clean_x, "seed {seed} perturbed results");
            assert!(
                accel.fault_stats().injected > 0,
                "seed {seed}: a 10% rate over dozens of loads must inject"
            );
        }
    }

    #[test]
    fn unserviceable_fault_retires_with_typed_error() {
        use tmu_sim::{FaultEvent, FaultSpec};
        let (mut accel, _) = spmv_accel(2);
        let mut spec = FaultSpec::with_rate(0, 0);
        spec.max_serviced = 0;
        accel.inject_fault_plan(FaultPlan::with_events(
            spec,
            vec![FaultEvent::at_load(5, FaultKind::PageFault)],
        ));
        let mut mem = MemSys::new(MemSysConfig::table5(1));
        let mut sink = Vec::new();
        let mut now = 0u64;
        while !accel.done() {
            accel.tick(now, 0, &mut mem);
            accel.drain_ops(&mut sink);
            sink.clear();
            now += 1;
            assert!(now < 1_000_000, "retired engine must report done");
        }
        assert!(matches!(
            accel.retired(),
            Some(TmuError::UnserviceableFault { limit: 0, .. })
        ));
        let st = accel.stats();
        assert!(st.retired.is_some());
        assert_eq!(st.faults.unserviceable, 1);
        assert!(st.snapshot().retired);
    }

    #[test]
    fn full_system_speedup_structs_are_populated() {
        let (accel, _) = spmv_accel(8);
        let mut sys = System::new(configs::neoverse_n1_system());
        let stats = sys.run_accelerated(vec![Box::new(accel)]);
        let total = stats.total();
        assert!(total.loads > 0, "outQ reads must appear as core loads");
        assert!(total.flops > 0, "callback compute must run on the core");
    }
}
