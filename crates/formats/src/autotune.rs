//! The format autotuner: fiber statistics → per-input layout decision.
//!
//! A deliberately small analytical cost model in the style the paper's
//! §2 motivates: the dominant cost of a row-streaming sparse kernel on a
//! general-purpose core is the per-element gather chain, and each
//! physical layout buys that chain down differently. Costs are scored in
//! *estimated machine slots per stored entry* — the same unit for every
//! format, so the arg-min is meaningful — with the layout-specific terms:
//!
//! | format | inner cost/nnz               | per-row overhead              |
//! |--------|------------------------------|-------------------------------|
//! | csr    | gather chain (6)             | 3 · rows / nnz                |
//! | dcsr   | gather chain (6)             | 4 · stored rows / nnz         |
//! | bcsr   | full-tile charge / occ       | amortized tile extraction (1) |
//! | banded | 2.5 + 0.25 / (8 · band fill) | 3 · rows / nnz                |
//! | hashed | ∞ for streamed kernels       | —                             |
//!
//! The banded stream replaces the gather chain with statically-addressed
//! loads of the row's band window — no data-dependent addresses, so the
//! loads overlap freely. It still pays for touching the *whole* window:
//! `1 / (band_fill · lanes)` window vector loads per stored entry, each
//! worth a small fraction of a slot ([`WINDOW_COST`]) because they are
//! independent and cache-resident. A nearly empty band (tiny fill) is
//! therefore priced out on traffic, and the format is only *eligible*
//! while the band fits a cache-resident window ([`BAND_WINDOW_COLS`]);
//! past that the locality argument collapses too. Hashed is
//! structurally ineligible for row-streamed kernels — its slots are in
//! hash order, and producing an ordered stream is exactly the
//! hashed→csr conversion — so the model prices it at infinity and the
//! ablation covers it through conversions and point lookups instead.

use tmu_tensor::CsrMatrix;

use crate::stats::FiberStats;
use crate::{FormatKind, BLOCK_COLS, BLOCK_ROWS};

/// Estimated machine slots to resolve one gathered element through the
/// cache hierarchy (index load → address → value load).
const GATHER_COST: f64 = 6.0;
/// Estimated machine slots per element of a banded stream: the window
/// loads carry no data-dependent addresses and overlap freely, leaving
/// the contiguous delta/value chunks plus the vector multiply-add.
const BAND_COST: f64 = 2.5;
/// Machine slots per *window* vector load of the banded stream. Far
/// below a gather slot: the loads are statically addressed, fully
/// overlapped, and mostly cache-resident — but a band filled at only a
/// fraction `f` issues `1/(f·lanes)` of them per stored entry, so they
/// dominate once the band is nearly empty.
const WINDOW_COST: f64 = 0.25;
/// SVE f64 lanes assumed by the window-load count.
const WINDOW_LANES: f64 = 8.0;
/// Per-row bookkeeping slots of the dense-row formats (pointer pair +
/// branch + store).
const ROW_COST: f64 = 3.0;
/// Per-stored-row bookkeeping of DCSR (row index load on top of
/// [`ROW_COST`]).
const DCSR_ROW_COST: f64 = 4.0;
/// Machine slots charged per stored tile: whole-tile loads plus the
/// `2·BR·BC` FLOP micro-kernel, matching the blocked backend's model.
const TILE_COST: f64 = 48.0;
/// Amortized per-entry share of the one-off tile extraction.
const TILE_EXTRACT_COST: f64 = 1.0;
/// Widest band (in columns) the banded stream may assume cache-resident.
pub const BAND_WINDOW_COLS: u64 = 4096;

/// One autotuning decision: the pick, the full scored table, and a
/// human-readable justification.
#[derive(Debug, Clone)]
pub struct Choice {
    /// The winning format.
    pub pick: FormatKind,
    /// Estimated cost per stored entry for every format, in
    /// [`FormatKind::ALL`] order (`f64::INFINITY` marks ineligible).
    pub estimates: Vec<(FormatKind, f64)>,
    /// The measured statistics the decision was made on.
    pub stats: FiberStats,
    /// Why the winner won, in terms of the deciding statistic.
    pub reason: String,
}

/// Scores one format against measured statistics.
fn cost(kind: FormatKind, s: &FiberStats) -> f64 {
    if s.nnz == 0 {
        // Nothing to stream: CSR by fiat, everything else priced out.
        return if kind == FormatKind::Csr {
            0.0
        } else {
            f64::INFINITY
        };
    }
    let nnz = s.nnz as f64;
    match kind {
        FormatKind::Csr => GATHER_COST + ROW_COST * s.rows as f64 / nnz,
        FormatKind::Dcsr => {
            let stored = s.rows as f64 * (1.0 - s.empty_row_frac);
            GATHER_COST + DCSR_ROW_COST * stored / nnz
        }
        FormatKind::Bcsr => {
            if s.tile_occupancy <= 0.0 {
                f64::INFINITY
            } else {
                TILE_COST / ((BLOCK_ROWS * BLOCK_COLS) as f64 * s.tile_occupancy)
                    + TILE_EXTRACT_COST
            }
        }
        FormatKind::Banded => {
            if s.bandwidth() > BAND_WINDOW_COLS {
                f64::INFINITY
            } else {
                BAND_COST
                    + ROW_COST * s.rows as f64 / nnz
                    + WINDOW_COST / (s.band_fill * WINDOW_LANES)
            }
        }
        FormatKind::Hashed => f64::INFINITY,
    }
}

/// Why `pick` won, phrased around the statistic that decided it.
fn explain(pick: FormatKind, s: &FiberStats) -> String {
    match pick {
        FormatKind::Csr => {
            let band = if s.bandwidth() > BAND_WINDOW_COLS {
                format!("band {} cols too wide", s.bandwidth())
            } else {
                format!("band only {:.1}% filled", s.band_fill * 100.0)
            };
            format!(
                "baseline: {band}, tiles {:.0}% occupied, {:.0}% empty rows",
                s.tile_occupancy * 100.0,
                s.empty_row_frac * 100.0
            )
        }
        FormatKind::Dcsr => format!(
            "{:.0}% empty rows make dense row pointers dead weight",
            s.empty_row_frac * 100.0
        ),
        FormatKind::Bcsr => format!(
            "{:.0}%-occupied 4x8 tiles amortize whole-tile vector work",
            s.tile_occupancy * 100.0
        ),
        FormatKind::Banded => format!(
            "band of {} cols ({:.1}% filled) replaces gathers with a static window",
            s.bandwidth(),
            s.band_fill * 100.0
        ),
        FormatKind::Hashed => "hashed never wins streamed kernels".to_owned(),
    }
}

/// Measures `a` and picks its layout. Deterministic: ties resolve to the
/// earliest kind in [`FormatKind::ALL`] order (CSR first, so the
/// baseline wins exact ties).
pub fn pick(a: &CsrMatrix) -> Choice {
    let stats = FiberStats::measure(a);
    let estimates: Vec<(FormatKind, f64)> = FormatKind::ALL
        .into_iter()
        .map(|k| (k, cost(k, &stats)))
        .collect();
    let pick = estimates
        .iter()
        .fold(estimates[0], |best, &e| if e.1 < best.1 { e } else { best })
        .0;
    #[cfg(feature = "trace")]
    tmu_trace::with(|tr| {
        let c = tr.component("formats.autotune");
        let idx = FormatKind::ALL.iter().position(|&k| k == pick).unwrap_or(0) as u64;
        let payload = (idx << 32) | (stats.nnz as u64).min(u64::from(u32::MAX));
        tr.event(c, 0, tmu_trace::EventKind::AutotunePick, payload);
    });
    let reason = explain(pick, &stats);
    Choice {
        pick,
        estimates,
        stats,
        reason,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tmu_tensor::{gen, CooMatrix, CsrMatrix};

    #[test]
    fn narrow_band_picks_banded() {
        let c = pick(&gen::banded(256, 16, 7, 5));
        assert_eq!(c.pick, FormatKind::Banded, "{:?}", c.estimates);
        assert!(c.reason.contains("band"), "{}", c.reason);
    }

    #[test]
    fn scattered_uniform_picks_csr() {
        let c = pick(&gen::uniform(128, 65_536, 4, 7));
        assert_eq!(c.pick, FormatKind::Csr, "{:?}", c.estimates);
        // Banded must be priced out, not merely beaten.
        let banded = c.estimates[3];
        assert_eq!(banded.0, FormatKind::Banded);
        assert!(banded.1.is_infinite());
    }

    #[test]
    fn hypersparse_rows_pick_dcsr() {
        // One populated row in sixteen, entries scattered wide: the dense
        // row-pointer walk costs more than the payload.
        let triplets: Vec<(u32, u32, f64)> = (0..512u32)
            .filter(|r| r % 16 == 0)
            .flat_map(|r| (0..4u32).map(move |j| (r, (r * 131 + j * 1777) % 8192, 1.5)))
            .collect();
        let a = CsrMatrix::from_coo(&CooMatrix::from_triplets(512, 8192, triplets).expect("ok"));
        let c = pick(&a);
        assert_eq!(c.pick, FormatKind::Dcsr, "{:?}", c.estimates);
        assert!(c.stats.empty_row_frac > 0.9);
    }

    #[test]
    fn dense_scattered_tiles_pick_bcsr() {
        // Fully dense 4x8 tiles scattered across a wide column range:
        // perfect occupancy, hopeless band.
        let mut triplets = Vec::new();
        for tile in 0..16u32 {
            let (r0, c0) = (tile * 4, ((tile * 347) % 1023) * 8);
            for dr in 0..4 {
                for dc in 0..8 {
                    triplets.push((r0 + dr, c0 + dc, 0.5 + f64::from(dr * 8 + dc)));
                }
            }
        }
        let a = CsrMatrix::from_coo(&CooMatrix::from_triplets(64, 8192, triplets).expect("ok"));
        let c = pick(&a);
        assert!(c.stats.tile_occupancy > 0.99);
        assert_eq!(c.pick, FormatKind::Bcsr, "{:?}", c.estimates);
    }

    #[test]
    fn hashed_is_always_priced_out_of_streaming() {
        let c = pick(&gen::uniform(64, 64, 4, 3));
        let hashed = c.estimates[4];
        assert_eq!(hashed.0, FormatKind::Hashed);
        assert!(hashed.1.is_infinite());
    }

    #[test]
    fn empty_matrix_defaults_to_csr() {
        let a = CsrMatrix::from_parts(8, 8, vec![0; 9], vec![], vec![]).expect("valid");
        assert_eq!(pick(&a).pick, FormatKind::Csr);
    }
}
