//! The banded level layout: narrow per-row coordinate deltas.
//!
//! A banded matrix stores each row's column coordinates as offsets from
//! the row's *band origin* `r - bw_lo`, where `bw_lo` is the lower
//! bandwidth (the largest `r - c` over all stored entries). Every stored
//! delta then satisfies `0 ≤ delta ≤ bw_lo + bw_hi`, so the coordinate
//! stream narrows to the band width instead of the full column range and
//! decodes with one add per entry — no gather-feeding index load chain.
//!
//! The layout is *lossless* with respect to CSR: only stored entries are
//! kept (no band padding), the per-row pointer pair is exactly the CSR
//! row pointer pair, and deltas increase with the column, so traversal
//! order is coordinate order and [`BandedMatrix::to_csr`] is an exact
//! inverse of [`BandedMatrix::from_csr`] — values bit-identical, arrays
//! equal.

use tmu_tensor::{CooMatrix, CsrMatrix, FormatError};

/// A matrix stored as dense rows over a banded level.
#[derive(Debug, Clone, PartialEq)]
pub struct BandedMatrix {
    rows: usize,
    cols: usize,
    bw_lo: u32,
    bw_hi: u32,
    ptrs: Vec<u32>,
    deltas: Vec<u32>,
    vals: Vec<f64>,
}

impl BandedMatrix {
    /// Encodes a CSR matrix. The band parameters are measured from the
    /// stored entries, so any matrix encodes (a dense one simply gets a
    /// full-width band).
    pub fn from_csr(m: &CsrMatrix) -> Self {
        let mut bw_lo = 0i64;
        let mut bw_hi = 0i64;
        for r in 0..m.rows() {
            for (c, _) in m.row(r) {
                bw_lo = bw_lo.max(r as i64 - c as i64);
                bw_hi = bw_hi.max(c as i64 - r as i64);
            }
        }
        let bw_lo = bw_lo as u32;
        let deltas = (0..m.rows())
            .flat_map(|r| {
                m.row(r)
                    .map(move |(c, _)| c + bw_lo - r as u32)
                    .collect::<Vec<_>>()
            })
            .collect();
        Self {
            rows: m.rows(),
            cols: m.cols(),
            bw_lo,
            bw_hi: bw_hi as u32,
            ptrs: m.row_ptrs().to_vec(),
            deltas,
            vals: m.vals().to_vec(),
        }
    }

    /// Builds from coordinate triplets, summing duplicate coordinates at
    /// build time in input order (taco semantics, shared with
    /// [`CooMatrix::from_triplets`]).
    ///
    /// # Errors
    ///
    /// Returns [`FormatError::IndexOutOfBounds`] when a coordinate
    /// exceeds the declared shape.
    pub fn from_triplets(
        rows: usize,
        cols: usize,
        triplets: Vec<(u32, u32, f64)>,
    ) -> Result<Self, FormatError> {
        let coo = CooMatrix::from_triplets(rows, cols, triplets)?;
        Ok(Self::from_csr(&CsrMatrix::from_coo(&coo)))
    }

    /// Assembles a banded matrix from already-encoded arrays (used by the
    /// TMU conversion program's callback handler, which rebuilds exactly
    /// these arrays from the marshaled stream).
    pub(crate) fn from_raw(
        rows: usize,
        cols: usize,
        bw_lo: u32,
        bw_hi: u32,
        ptrs: Vec<u32>,
        deltas: Vec<u32>,
        vals: Vec<f64>,
    ) -> Self {
        Self {
            rows,
            cols,
            bw_lo,
            bw_hi,
            ptrs,
            deltas,
            vals,
        }
    }

    /// Exact decode back to CSR (the generated banded→csr conversion's
    /// software reference): arrays equal to the encoding source.
    pub fn to_csr(&self) -> CsrMatrix {
        let mut idxs = Vec::with_capacity(self.deltas.len());
        for r in 0..self.rows {
            let (b, e) = self.row_range(r);
            for p in b..e {
                idxs.push(self.coord(r, p));
            }
        }
        CsrMatrix::from_parts(
            self.rows,
            self.cols,
            self.ptrs.clone(),
            idxs,
            self.vals.clone(),
        )
        .expect("banded decode preserves CSR invariants")
    }

    /// Decoded coordinate of position `p` in row `r`.
    pub fn coord(&self, r: usize, p: usize) -> u32 {
        r as u32 + self.deltas[p] - self.bw_lo
    }

    /// `(start, end)` positions of row `r`.
    pub fn row_range(&self, r: usize) -> (usize, usize) {
        (self.ptrs[r] as usize, self.ptrs[r + 1] as usize)
    }

    /// Iterates row `r`'s `(col, val)` entries in coordinate order.
    pub fn row(&self, r: usize) -> impl Iterator<Item = (u32, f64)> + '_ {
        let (b, e) = self.row_range(r);
        (b..e).map(move |p| (self.coord(r, p), self.vals[p]))
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// Lower bandwidth: largest `row - col` over stored entries.
    pub fn bw_lo(&self) -> u32 {
        self.bw_lo
    }

    /// Upper bandwidth: largest `col - row` over stored entries.
    pub fn bw_hi(&self) -> u32 {
        self.bw_hi
    }

    /// Total band width in columns (`0` for an empty matrix).
    pub fn bandwidth(&self) -> u32 {
        if self.vals.is_empty() {
            0
        } else {
            self.bw_lo + self.bw_hi + 1
        }
    }

    /// Row pointer array (`rows + 1`).
    pub fn ptrs(&self) -> &[u32] {
        &self.ptrs
    }

    /// Delta array (one narrow word per stored entry).
    pub fn deltas(&self) -> &[u32] {
        &self.deltas
    }

    /// Value array.
    pub fn vals(&self) -> &[f64] {
        &self.vals
    }

    /// Index words used by the layout (pointer pair per row + one delta
    /// word per entry — same count as CSR, narrower entries).
    pub fn index_words(&self) -> usize {
        self.ptrs.len() + self.deltas.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tmu_tensor::gen;

    #[test]
    fn roundtrips_a_banded_generator_matrix() {
        let a = gen::banded(200, 16, 7, 11);
        let b = BandedMatrix::from_csr(&a);
        assert!(b.bandwidth() <= 33, "bandwidth {}", b.bandwidth());
        let back = b.to_csr();
        assert_eq!(back.row_ptrs(), a.row_ptrs());
        assert_eq!(back.col_idxs(), a.col_idxs());
        assert_eq!(back.vals(), a.vals());
    }

    #[test]
    fn encodes_unbanded_matrices_with_a_wide_band() {
        let a = gen::uniform(64, 96, 4, 3);
        let b = BandedMatrix::from_csr(&a);
        assert_eq!(b.to_csr().col_idxs(), a.col_idxs());
        assert!(b.bandwidth() as usize <= 64 + 96);
    }

    #[test]
    fn empty_matrix_has_zero_bandwidth() {
        let a = CsrMatrix::from_parts(3, 3, vec![0, 0, 0, 0], vec![], vec![]).expect("valid");
        let b = BandedMatrix::from_csr(&a);
        assert_eq!(b.bandwidth(), 0);
        assert_eq!(b.to_csr().nnz(), 0);
    }

    #[test]
    fn builder_sums_duplicates_in_input_order() {
        // Same pinning contract as the COO builders (satellite fix):
        // (1e16 + 1) + 1 != (1 + 1) + 1e16 bit-wise.
        let want = (1e16f64 + 1.0) + 1.0;
        let b = BandedMatrix::from_triplets(
            2,
            2,
            vec![(0, 1, 1e16), (1, 0, 3.0), (0, 1, 1.0), (0, 1, 1.0)],
        )
        .expect("valid");
        assert_eq!(b.nnz(), 2);
        assert_eq!(b.row(0).next().expect("stored").1.to_bits(), want.to_bits());
    }
}
