//! Generated format conversions: software references, core-side op
//! streams, and real TMU marshaling programs.
//!
//! Three tiers, cheapest authority first:
//!
//! 1. **Software reference** — [`crate::FormatMatrix::encode`] /
//!    [`crate::FormatMatrix::decode`], the functional ground truth every
//!    other tier is pinned against.
//! 2. **Op-stream cost model** — [`conversion_cycles`] replays the
//!    conversion's memory traffic (source scans, band/hash transforms,
//!    destination scatters, tile materialization) through the simulated
//!    cores. Its cycle count is the `conv_cycles` column of the format
//!    ablation: what re-marshaling costs before the picked layout earns
//!    anything back.
//! 3. **TMU programs** — [`CsrToBandedTmu`] and [`HashedToCsrTmu`] run a
//!    conversion *as TMU traversal programs*: the engine walks the source
//!    level stack and marshals coordinate/value streams to the outQ; the
//!    Figure 6-style callbacks rebuild the destination arrays. Because the
//!    conversion is an ordinary program, it inherits the whole §5.6
//!    story — the fault-injection suite drives one under the full fault
//!    grid and requires a bit-identical outQ stream.

use std::sync::Arc;

use tmu::{
    CallbackHandler, Event, LayerMode, MemImage, OutQEntry, Program, ProgramBuilder, StreamTy,
};
use tmu_kernels::data::{partition_rows, CsrOnSim, HashedOnSim};
use tmu_sim::{
    AddressMap, ChannelMachine, Deps, Machine, OpId, Region, RunStats, Site, System, SystemConfig,
    VecMachine,
};
use tmu_tensor::{BcsrMatrix, CsrMatrix, DcsrMatrix};

use crate::banded::BandedMatrix;
use crate::hashed::{HashedMatrix, EMPTY};
use crate::{FormatKind, BLOCK_COLS, BLOCK_ROWS};

const S_PTR: u16 = 620;
const S_IDX: u16 = 621;
const S_VAL: u16 = 622;
const S_ST: u16 = 623;
const S_BR: u16 = 624;

/// Callback ids of the conversion programs.
const CB_ENTRY: u32 = 0;
const CB_ROW_END: u32 = 1;

/// The shard context of the conversion op streams.
struct Ctx {
    ptrs: Arc<Vec<u32>>,
    ptrs_r: Region,
    idxs_r: Region,
    vals_r: Region,
    dst_idx_r: Region,
    dst_val_r: Region,
    dst_ptr_r: Region,
}

/// CSR→DCSR: a pointer-compaction pass — no index or value traffic.
fn emit_to_dcsr<M: Machine + ?Sized>(m: &mut M, ctx: &Ctx, rows: (usize, usize)) {
    let mut stored = 0usize;
    for r in rows.0..rows.1 {
        let p0 = m.load(Site(S_PTR), ctx.ptrs_r.u32_at(r), 4, Deps::NONE);
        let p1 = m.load(Site(S_PTR), ctx.ptrs_r.u32_at(r + 1), 4, Deps::NONE);
        m.int_op(Deps::on(&[p0, p1]));
        let nonempty = ctx.ptrs[r] != ctx.ptrs[r + 1];
        if nonempty {
            m.store(
                Site(S_ST),
                ctx.dst_ptr_r.u32_at(stored),
                8,
                Deps::on(&[p0, p1]),
            );
            stored += 1;
        }
        m.branch(Site(S_BR), r + 1 < rows.1, Deps::NONE);
    }
}

/// CSR→banded: pass 1 measures the band (index scan + min/max), pass 2
/// re-scans, applies the delta transform, and writes deltas + values.
fn emit_to_banded<M: Machine + ?Sized>(m: &mut M, ctx: &Ctx, rows: (usize, usize), vl: usize) {
    for pass in 0..2 {
        for r in rows.0..rows.1 {
            let p0 = m.load(Site(S_PTR), ctx.ptrs_r.u32_at(r), 4, Deps::NONE);
            let p1 = m.load(Site(S_PTR), ctx.ptrs_r.u32_at(r + 1), 4, Deps::NONE);
            let bounds = Deps::on(&[p0, p1]);
            let (beg, end) = (ctx.ptrs[r] as usize, ctx.ptrs[r + 1] as usize);
            let mut p = beg;
            while p < end {
                let n = (end - p).min(vl);
                let iv = m.vec_load(Site(S_IDX), ctx.idxs_r.u32_at(p), (n * 4) as u32, bounds);
                m.int_op(Deps::from(iv));
                if pass == 1 {
                    let vv = m.vec_load(Site(S_VAL), ctx.vals_r.f64_at(p), (n * 8) as u32, bounds);
                    m.store(
                        Site(S_ST),
                        ctx.dst_idx_r.u32_at(p),
                        (n * 4) as u32,
                        Deps::from(iv),
                    );
                    m.store(
                        Site(S_ST),
                        ctx.dst_val_r.f64_at(p),
                        (n * 8) as u32,
                        Deps::from(vv),
                    );
                }
                p += n;
                m.branch(Site(S_BR), p < end, bounds);
            }
            m.branch(Site(S_BR), r + 1 < rows.1, Deps::NONE);
        }
    }
}

/// CSR→hashed: index/value scan plus one hash and a *scattered* pair of
/// slot stores per element — the destination addresses come from the
/// already-built table so the cache model sees the real scatter.
fn emit_to_hashed<M: Machine + ?Sized>(
    m: &mut M,
    ctx: &Ctx,
    h: &HashedMatrix,
    a: &CsrMatrix,
    rows: (usize, usize),
    vl: usize,
) {
    for r in rows.0..rows.1 {
        let p0 = m.load(Site(S_PTR), ctx.ptrs_r.u32_at(r), 4, Deps::NONE);
        let p1 = m.load(Site(S_PTR), ctx.ptrs_r.u32_at(r + 1), 4, Deps::NONE);
        let bounds = Deps::on(&[p0, p1]);
        let (beg, end) = (ctx.ptrs[r] as usize, ctx.ptrs[r + 1] as usize);
        let mut p = beg;
        while p < end {
            let n = (end - p).min(vl);
            let iv = m.vec_load(Site(S_IDX), ctx.idxs_r.u32_at(p), (n * 4) as u32, bounds);
            let vv = m.vec_load(Site(S_VAL), ctx.vals_r.f64_at(p), (n * 8) as u32, bounds);
            for e in 0..n {
                let c = a.col_idxs()[p + e];
                let slot = h.slot_index(r, c).expect("encoded entry has a slot");
                m.int_op(Deps::from(iv));
                m.store(Site(S_ST), ctx.dst_idx_r.u32_at(slot), 4, Deps::from(iv));
                m.store(Site(S_ST), ctx.dst_val_r.f64_at(slot), 8, Deps::from(vv));
            }
            p += n;
            m.branch(Site(S_BR), p < end, bounds);
        }
        m.store(Site(S_ST), ctx.dst_ptr_r.u32_at(r), 4, Deps::NONE);
        m.branch(Site(S_BR), r + 1 < rows.1, Deps::NONE);
    }
}

/// CSR→BCSR: the tile-materialization pass (fiber scan + slot transform
/// per chunk, whole-tile stores per stored block) — the blocked backend's
/// extraction traffic.
fn emit_to_bcsr<M: Machine + ?Sized>(
    m: &mut M,
    ctx: &Ctx,
    b: &BcsrMatrix,
    grs: (usize, usize),
    vl: usize,
) {
    let (br, bc) = b.block_shape();
    for gr in grs.0..grs.1 {
        for r in gr * br..((gr + 1) * br).min(b.rows()) {
            let p0 = m.load(Site(S_PTR), ctx.ptrs_r.u32_at(r), 4, Deps::NONE);
            let p1 = m.load(Site(S_PTR), ctx.ptrs_r.u32_at(r + 1), 4, Deps::NONE);
            let bounds = Deps::on(&[p0, p1]);
            let (beg, end) = (ctx.ptrs[r] as usize, ctx.ptrs[r + 1] as usize);
            let mut p = beg;
            while p < end {
                let n = (end - p).min(vl);
                let iv = m.vec_load(Site(S_IDX), ctx.idxs_r.u32_at(p), (n * 4) as u32, bounds);
                let vv = m.vec_load(Site(S_VAL), ctx.vals_r.f64_at(p), (n * 8) as u32, bounds);
                m.int_op(Deps::on(&[iv, vv]));
                p += n;
                m.branch(Site(S_BR), p < end, bounds);
            }
        }
        let (b0, b1) = b.block_row_range(gr);
        for blk in b0..b1 {
            let mut s = 0;
            while s < br * bc {
                let n = (br * bc - s).min(vl);
                m.store(
                    Site(S_ST),
                    ctx.dst_val_r.f64_at(blk * br * bc + s),
                    (n * 8) as u32,
                    Deps::NONE,
                );
                s += n;
            }
            m.store(Site(S_ST), ctx.dst_idx_r.u32_at(blk), 4, Deps::NONE);
            m.store(Site(S_ST), ctx.dst_ptr_r.at(blk, 8), 8, Deps::NONE);
        }
        m.branch(Site(S_BR), gr + 1 < grs.1, Deps::NONE);
    }
}

#[cfg(feature = "trace")]
fn trace_convert(src: FormatKind, dst: FormatKind) {
    tmu_trace::with(|tr| {
        let c = tr.component("formats.convert");
        let idx = |k| FormatKind::ALL.iter().position(|&x| x == k).unwrap_or(0) as u64;
        tr.event(
            c,
            0,
            tmu_trace::EventKind::FormatConvert,
            (idx(src) << 32) | idx(dst),
        );
    });
}

/// Replays the csr→`dst` conversion's op stream through `cfg`'s cores and
/// returns its cost. `dst = Csr` is the identity: zero work, zero cycles.
pub fn conversion_cycles(a: &CsrMatrix, dst: FormatKind, cfg: SystemConfig) -> RunStats {
    #[cfg(feature = "trace")]
    trace_convert(FormatKind::Csr, dst);
    if dst == FormatKind::Csr {
        return RunStats::default();
    }
    let vl = cfg.core.sve_lanes();
    let cores = cfg.cores();
    let mut map = AddressMap::new();
    let ptrs = Arc::new(a.row_ptrs().to_vec());
    let ptrs_r = map.alloc_elems("c.ptrs", ptrs.len(), 4);
    let idxs_r = map.alloc_elems("c.idxs", a.nnz().max(1), 4);
    let vals_r = map.alloc_elems("c.vals", a.nnz().max(1), 8);
    let shards = partition_rows(&ptrs, cores);
    let mut sys = System::new(cfg);
    match dst {
        FormatKind::Csr | FormatKind::Dcsr => {
            let d = DcsrMatrix::from_csr(a);
            let ctx = Arc::new(Ctx {
                ptrs,
                ptrs_r,
                idxs_r,
                vals_r,
                dst_idx_r: map.alloc_elems("d.row_idxs", d.num_stored_rows().max(1), 4),
                dst_val_r: map.alloc_elems("d.unused", 1, 8),
                dst_ptr_r: map.alloc_elems("d.row_ptrs", d.row_ptrs().len(), 4),
            });
            sys.run(
                shards
                    .into_iter()
                    .map(|range| {
                        let ctx = Arc::clone(&ctx);
                        move |m: &mut ChannelMachine| emit_to_dcsr(m, &ctx, range)
                    })
                    .collect(),
            )
        }
        FormatKind::Banded => {
            let b = BandedMatrix::from_csr(a);
            let ctx = Arc::new(Ctx {
                ptrs,
                ptrs_r,
                idxs_r,
                vals_r,
                dst_idx_r: map.alloc_elems("b.deltas", b.nnz().max(1), 4),
                dst_val_r: map.alloc_elems("b.vals", b.nnz().max(1), 8),
                dst_ptr_r: map.alloc_elems("b.ptrs", b.ptrs().len(), 4),
            });
            sys.run(
                shards
                    .into_iter()
                    .map(|range| {
                        let ctx = Arc::clone(&ctx);
                        move |m: &mut ChannelMachine| emit_to_banded(m, &ctx, range, vl)
                    })
                    .collect(),
            )
        }
        FormatKind::Hashed => {
            let h = Arc::new(HashedMatrix::from_csr(a));
            let a = Arc::new(a.clone());
            let ctx = Arc::new(Ctx {
                ptrs,
                ptrs_r,
                idxs_r,
                vals_r,
                dst_idx_r: map.alloc_elems("h.slots", h.slots().len().max(1), 4),
                dst_val_r: map.alloc_elems("h.svals", h.svals().len().max(1), 8),
                dst_ptr_r: map.alloc_elems("h.row_base", h.row_base().len(), 4),
            });
            sys.run(
                shards
                    .into_iter()
                    .map(|range| {
                        let ctx = Arc::clone(&ctx);
                        let h = Arc::clone(&h);
                        let a = Arc::clone(&a);
                        move |m: &mut ChannelMachine| emit_to_hashed(m, &ctx, &h, &a, range, vl)
                    })
                    .collect(),
            )
        }
        FormatKind::Bcsr => {
            let b = Arc::new(BcsrMatrix::from_csr(a, BLOCK_ROWS, BLOCK_COLS));
            let (grid_rows, _) = b.grid();
            let ctx = Arc::new(Ctx {
                ptrs,
                ptrs_r,
                idxs_r,
                vals_r,
                dst_idx_r: map.alloc_elems("t.cols", b.num_blocks().max(1), 4),
                dst_val_r: map.alloc_elems(
                    "t.vals",
                    (b.num_blocks() * BLOCK_ROWS * BLOCK_COLS).max(1),
                    8,
                ),
                dst_ptr_r: map.alloc_elems("t.masks", b.num_blocks().max(1), 8),
            });
            let _ = grid_rows;
            let gshards = partition_rows(b.ptrs(), cores);
            sys.run(
                gshards
                    .into_iter()
                    .map(|grs| {
                        let ctx = Arc::clone(&ctx);
                        let b = Arc::clone(&b);
                        move |m: &mut ChannelMachine| emit_to_bcsr(m, &ctx, &b, grs, vl)
                    })
                    .collect(),
            )
        }
    }
}

/// The csr→banded conversion as a TMU program: the engine streams the
/// CSR fibers (Figure 8 traversal — dense rows over lockstep range
/// lanes), marshaling `(column, value)` operand pairs; the callback
/// handler applies the delta transform and rebuilds the banded arrays.
#[derive(Debug)]
pub struct CsrToBandedTmu {
    sim: CsrOnSim,
    bw_lo: u32,
    bw_hi: u32,
    outq_r: Vec<Region>,
    image: Arc<MemImage>,
    reference: BandedMatrix,
}

impl CsrToBandedTmu {
    /// Binds `a` and precomputes the band parameters (the host-side pass
    /// the transform needs before any entry streams).
    pub fn new(a: &CsrMatrix) -> Self {
        let mut map = AddressMap::new();
        let mut image = MemImage::new();
        let sim = CsrOnSim::bind(&mut map, &mut image, "a", a);
        let outq_r = (0..8)
            .map(|c| map.alloc(&format!("outq{c}"), 1 << 20))
            .collect();
        let reference = BandedMatrix::from_csr(a);
        Self {
            bw_lo: reference.bw_lo(),
            bw_hi: reference.bw_hi(),
            sim,
            outq_r,
            image: Arc::new(image),
            reference,
        }
    }

    /// The software-reference encoding the TMU conversion must reproduce.
    pub fn reference(&self) -> &BandedMatrix {
        &self.reference
    }

    /// Shared memory image.
    pub fn image_handle(&self) -> Arc<MemImage> {
        Arc::clone(&self.image)
    }

    /// outQ base address of a core.
    pub fn outq_base(&self, core: usize) -> u64 {
        self.outq_r[core].base
    }

    /// Builds the marshaling program for a row range.
    pub fn build_program(&self, rows: (usize, usize), lanes: usize) -> Program {
        let mut b = ProgramBuilder::new();
        let l0 = b.layer(LayerMode::Single);
        let row = b.dns_fbrt(l0, rows.0 as i64, rows.1 as i64, 1);
        let ptbs = b.mem_stream(row, self.sim.ptrs_r.base, 4, StreamTy::Index);
        let ptes = b.mem_stream(row, self.sim.ptrs_r.base + 4, 4, StreamTy::Index);
        let l1 = b.layer(LayerMode::LockStep);
        let mut cols = Vec::new();
        let mut vals = Vec::new();
        for lane in 0..lanes as i64 {
            let col = b.rng_fbrt(l1, ptbs, ptes, lane, lanes as i64);
            cols.push(b.mem_stream(col, self.sim.idxs_r.base, 4, StreamTy::Index));
            vals.push(b.mem_stream(col, self.sim.vals_r.base, 8, StreamTy::Value));
        }
        let avg_row = self.sim.nnz() as f64 / self.sim.rows.max(1) as f64;
        b.set_weight(l0, 1.0);
        b.set_weight(l1, avg_row.max(1.0));
        let col_op = b.vec_operand(l1, &cols);
        let val_op = b.vec_operand(l1, &vals);
        b.callback(l1, Event::Ite, CB_ENTRY, &[col_op, val_op]);
        b.callback(l1, Event::End, CB_ROW_END, &[]);
        b.build().expect("csr→banded program is well-formed")
    }

    /// Runs the conversion functionally (one shard, 8 lanes) and returns
    /// the rebuilt banded matrix.
    pub fn convert(&self) -> BandedMatrix {
        let prog = Arc::new(self.build_program((0, self.sim.rows), 8));
        let mut handler = BandedBuildHandler::new(self.bw_lo, 0);
        let mut vm = VecMachine::new();
        tmu::for_each_entry(&prog, &self.image, |e| {
            handler.handle(e, OpId::NONE, &mut vm);
        });
        handler.into_banded(self.sim.rows, self.sim.cols, self.bw_hi)
    }
}

/// Figure 6-style callbacks of the csr→banded conversion: `CB_ENTRY`
/// transforms a lane group of `(column, value)` pairs into deltas,
/// `CB_ROW_END` seals a row pointer.
#[derive(Debug)]
pub struct BandedBuildHandler {
    bw_lo: u32,
    row: u32,
    ptrs: Vec<u32>,
    deltas: Vec<u32>,
    vals: Vec<f64>,
}

impl BandedBuildHandler {
    /// Handler for rows starting at `first_row`, with the premeasured
    /// lower bandwidth.
    pub fn new(bw_lo: u32, first_row: u32) -> Self {
        Self {
            bw_lo,
            row: first_row,
            ptrs: vec![0],
            deltas: Vec::new(),
            vals: Vec::new(),
        }
    }

    fn into_banded(self, rows: usize, cols: usize, bw_hi: u32) -> BandedMatrix {
        BandedMatrix::from_raw(
            rows,
            cols,
            self.bw_lo,
            bw_hi,
            self.ptrs,
            self.deltas,
            self.vals,
        )
    }
}

impl CallbackHandler for BandedBuildHandler {
    fn handle(&mut self, entry: &OutQEntry, entry_load: OpId, m: &mut VecMachine) {
        match entry.callback {
            CB_ENTRY => {
                let cols = entry.operands[0].as_indexes();
                let vals = entry.operands[1].as_f64s();
                for lane in 0..cols.len() {
                    if entry.mask & (1 << lane) != 0 {
                        self.deltas.push(cols[lane] as u32 + self.bw_lo - self.row);
                        self.vals.push(vals[lane]);
                    }
                }
                m.int_op(Deps::from(entry_load));
                m.store(
                    Site(S_ST),
                    u64::from(self.row) * 4,
                    (entry.mask.count_ones() * 12).max(4),
                    Deps::from(entry_load),
                );
            }
            CB_ROW_END => {
                self.ptrs.push(self.deltas.len() as u32);
                self.row += 1;
            }
            other => panic!("csr→banded: unexpected callback {other}"),
        }
    }
}

/// The hashed→csr conversion as a TMU program: the engine walks the slot
/// tables (dense rows over lockstep slot lanes), marshaling raw
/// `(slot coordinate, value)` pairs — occupied or sentinel; the handler
/// drops sentinels and sorts each row into the canonical order.
#[derive(Debug)]
pub struct HashedToCsrTmu {
    rows: usize,
    cols: usize,
    avg_span: f64,
    sim: HashedOnSim,
    outq_r: Vec<Region>,
    image: Arc<MemImage>,
    reference: CsrMatrix,
}

impl HashedToCsrTmu {
    /// Binds `h`'s slot tables for marshaling.
    pub fn new(h: &HashedMatrix) -> Self {
        let mut map = AddressMap::new();
        let mut image = MemImage::new();
        let sim = HashedOnSim::bind(
            &mut map,
            &mut image,
            "h",
            h.row_base(),
            h.slots(),
            h.svals(),
        );
        let outq_r = (0..8)
            .map(|c| map.alloc(&format!("outq{c}"), 1 << 20))
            .collect();
        Self {
            rows: h.rows(),
            cols: h.cols(),
            avg_span: h.slots().len() as f64 / h.rows().max(1) as f64,
            sim,
            outq_r,
            image: Arc::new(image),
            reference: h.to_csr(),
        }
    }

    /// The software-reference decode the TMU conversion must reproduce.
    pub fn reference(&self) -> &CsrMatrix {
        &self.reference
    }

    /// Shared memory image.
    pub fn image_handle(&self) -> Arc<MemImage> {
        Arc::clone(&self.image)
    }

    /// outQ base address of a core.
    pub fn outq_base(&self, core: usize) -> u64 {
        self.outq_r[core].base
    }

    /// Builds the marshaling program for a row range.
    pub fn build_program(&self, rows: (usize, usize), lanes: usize) -> Program {
        let mut b = ProgramBuilder::new();
        let l0 = b.layer(LayerMode::Single);
        let row = b.dns_fbrt(l0, rows.0 as i64, rows.1 as i64, 1);
        let ptbs = b.mem_stream(row, self.sim.row_base_r.base, 4, StreamTy::Index);
        let ptes = b.mem_stream(row, self.sim.row_base_r.base + 4, 4, StreamTy::Index);
        let l1 = b.layer(LayerMode::LockStep);
        let mut coords = Vec::new();
        let mut vals = Vec::new();
        for lane in 0..lanes as i64 {
            let slot = b.rng_fbrt(l1, ptbs, ptes, lane, lanes as i64);
            coords.push(b.mem_stream(slot, self.sim.slots_r.base, 4, StreamTy::Index));
            vals.push(b.mem_stream(slot, self.sim.svals_r.base, 8, StreamTy::Value));
        }
        b.set_weight(l0, 1.0);
        b.set_weight(l1, self.avg_span.max(1.0));
        let coord_op = b.vec_operand(l1, &coords);
        let val_op = b.vec_operand(l1, &vals);
        b.callback(l1, Event::Ite, CB_ENTRY, &[coord_op, val_op]);
        b.callback(l1, Event::End, CB_ROW_END, &[]);
        b.build().expect("hashed→csr program is well-formed")
    }

    /// Runs the conversion functionally (one shard, 8 lanes) and returns
    /// the rebuilt CSR matrix.
    pub fn convert(&self) -> CsrMatrix {
        let prog = Arc::new(self.build_program((0, self.rows), 8));
        let mut handler = CsrBuildHandler::new();
        let mut vm = VecMachine::new();
        tmu::for_each_entry(&prog, &self.image, |e| {
            handler.handle(e, OpId::NONE, &mut vm);
        });
        handler.into_csr(self.rows, self.cols)
    }
}

/// Callbacks of the hashed→csr conversion: `CB_ENTRY` filters the
/// sentinel slots out of a marshaled lane group, `CB_ROW_END` sorts the
/// row into coordinate order and seals its pointer.
#[derive(Debug, Default)]
pub struct CsrBuildHandler {
    pending: Vec<(u32, f64)>,
    ptrs: Vec<u32>,
    idxs: Vec<u32>,
    vals: Vec<f64>,
}

impl CsrBuildHandler {
    /// Fresh handler (rows stream from the program's range).
    pub fn new() -> Self {
        Self {
            pending: Vec::new(),
            ptrs: vec![0],
            idxs: Vec::new(),
            vals: Vec::new(),
        }
    }

    fn into_csr(self, rows: usize, cols: usize) -> CsrMatrix {
        CsrMatrix::from_parts(rows, cols, self.ptrs, self.idxs, self.vals)
            .expect("hashed→csr rebuild preserves CSR invariants")
    }
}

impl CallbackHandler for CsrBuildHandler {
    fn handle(&mut self, entry: &OutQEntry, entry_load: OpId, m: &mut VecMachine) {
        match entry.callback {
            CB_ENTRY => {
                let coords = entry.operands[0].as_indexes();
                let vals = entry.operands[1].as_f64s();
                for lane in 0..coords.len() {
                    if entry.mask & (1 << lane) != 0 && coords[lane] as u32 != EMPTY {
                        self.pending.push((coords[lane] as u32, vals[lane]));
                    }
                }
                m.int_op(Deps::from(entry_load));
            }
            CB_ROW_END => {
                self.pending.sort_unstable_by_key(|&(c, _)| c);
                for (c, v) in self.pending.drain(..) {
                    self.idxs.push(c);
                    self.vals.push(v);
                }
                self.ptrs.push(self.idxs.len() as u32);
                m.store(
                    Site(S_ST),
                    self.ptrs.len() as u64 * 4,
                    4,
                    Deps::from(entry_load),
                );
            }
            other => panic!("hashed→csr: unexpected callback {other}"),
        }
    }
}

/// Convenience: encode `a` into every non-CSR format and decode back,
/// asserting lossless round-trips; returns the per-format row iterator
/// sanity value (used by the bench binary's self-check).
pub fn roundtrip_all(a: &CsrMatrix) -> bool {
    FormatKind::ALL.iter().all(|&k| {
        let m = crate::FormatMatrix::encode(k, a).decode();
        m.row_ptrs() == a.row_ptrs() && m.col_idxs() == a.col_idxs() && m.vals() == a.vals()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tmu_sim::{CoreConfig, MemSysConfig};
    use tmu_tensor::gen;

    fn small_cfg(cores: usize) -> SystemConfig {
        SystemConfig {
            core: CoreConfig::neoverse_n1_like(),
            mem: MemSysConfig::table5(cores),
        }
    }

    #[test]
    fn conversion_costs_are_nonzero_except_identity() {
        let a = gen::uniform(128, 128, 4, 5);
        assert_eq!(
            conversion_cycles(&a, FormatKind::Csr, small_cfg(1)).cycles,
            0
        );
        for dst in [
            FormatKind::Dcsr,
            FormatKind::Bcsr,
            FormatKind::Banded,
            FormatKind::Hashed,
        ] {
            let stats = conversion_cycles(&a, dst, small_cfg(2));
            assert!(stats.cycles > 0, "{dst}");
        }
    }

    #[test]
    fn banded_conversion_reads_the_fibers_twice() {
        let a = gen::banded(128, 8, 4, 3);
        let one = conversion_cycles(&a, FormatKind::Dcsr, small_cfg(1));
        let two = conversion_cycles(&a, FormatKind::Banded, small_cfg(1));
        // Two index-scan passes plus stores must out-cost the
        // pointer-compaction pass.
        assert!(two.cycles > one.cycles);
    }

    #[test]
    fn tmu_csr_to_banded_matches_the_software_reference() {
        let a = gen::banded(96, 12, 5, 17);
        let conv = CsrToBandedTmu::new(&a);
        let got = conv.convert();
        assert_eq!(got.ptrs(), conv.reference().ptrs());
        assert_eq!(got.deltas(), conv.reference().deltas());
        assert_eq!(got.vals(), conv.reference().vals());
        assert_eq!(got.to_csr().col_idxs(), a.col_idxs());
    }

    #[test]
    fn tmu_hashed_to_csr_matches_the_software_reference() {
        let a = gen::uniform(80, 96, 4, 29);
        let h = HashedMatrix::from_csr(&a);
        let conv = HashedToCsrTmu::new(&h);
        let got = conv.convert();
        assert_eq!(got.row_ptrs(), a.row_ptrs());
        assert_eq!(got.col_idxs(), a.col_idxs());
        assert_eq!(got.vals(), a.vals());
    }

    #[test]
    fn roundtrip_all_accepts_generator_matrices() {
        assert!(roundtrip_all(&gen::uniform(64, 64, 4, 7)));
        assert!(roundtrip_all(&gen::road(64, 2, 7)));
    }
}
