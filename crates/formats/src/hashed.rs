//! The hashed level layout: per-row open-addressing coordinate tables.
//!
//! Each row owns a power-of-two slot table at load factor ≤ 0.5.
//! Coordinates hash with the Fibonacci multiplier `0x9E37_79B9` and probe
//! linearly; an empty slot is the sentinel [`EMPTY`]. Point lookups are
//! O(1) — the level trades the CSR binary-search/scan for slot probes —
//! but position order is *hash* order, so an ordered (canonical) view
//! must sort each row's occupied slots. That sorted materialization is
//! exactly the generated hashed→csr conversion, and it is lossless: the
//! table stores each coordinate once with its value bits untouched.
//!
//! A hash table cannot represent a duplicate coordinate at all, so the
//! builder sums duplicates at insert time (input order, matching the COO
//! builders' taco semantics).

use tmu_tensor::{CsrMatrix, FormatError};

/// Slot sentinel: no coordinate stored.
pub const EMPTY: u32 = u32::MAX;

/// Fibonacci hashing multiplier (2^32 / φ).
const HASH_MUL: u32 = 0x9E37_79B9;

/// A matrix stored as dense rows over a hashed level.
#[derive(Debug, Clone, PartialEq)]
pub struct HashedMatrix {
    rows: usize,
    cols: usize,
    nnz: usize,
    /// Slot offsets per row (`rows + 1`); row `r` owns slots
    /// `row_base[r]..row_base[r+1]`, a power-of-two span (or zero).
    row_base: Vec<u32>,
    /// Stored coordinate per slot ([`EMPTY`] when unoccupied).
    slots: Vec<u32>,
    /// Value per slot (zero when unoccupied).
    svals: Vec<f64>,
}

/// Table capacity for a row of `n` entries: load factor ≤ 0.5, minimum 4.
fn capacity_for(n: usize) -> usize {
    if n == 0 {
        0
    } else {
        (2 * n).next_power_of_two().max(4)
    }
}

impl HashedMatrix {
    /// Home slot of coordinate `c` in a table of `cap` slots (`cap` a
    /// power of two).
    fn home(c: u32, cap: usize) -> usize {
        let log = cap.trailing_zeros();
        (c.wrapping_mul(HASH_MUL) >> (32 - log)) as usize
    }

    /// Encodes a CSR matrix (no duplicates by construction).
    pub fn from_csr(m: &CsrMatrix) -> Self {
        let mut row_base = Vec::with_capacity(m.rows() + 1);
        row_base.push(0u32);
        let mut total = 0usize;
        for r in 0..m.rows() {
            let (b, e) = m.row_range(r);
            total += capacity_for(e - b);
            row_base.push(total as u32);
        }
        let mut out = Self {
            rows: m.rows(),
            cols: m.cols(),
            nnz: 0,
            row_base,
            slots: vec![EMPTY; total],
            svals: vec![0.0; total],
        };
        for r in 0..m.rows() {
            for (c, v) in m.row(r) {
                out.insert(r, c, v);
            }
        }
        out
    }

    /// Builds from coordinate triplets, summing duplicate coordinates at
    /// insert time in input order (a hash slot cannot hold a coordinate
    /// twice, so the duplicate fix is structural here).
    ///
    /// # Errors
    ///
    /// Returns [`FormatError::IndexOutOfBounds`] when a coordinate
    /// exceeds the declared shape.
    pub fn from_triplets(
        rows: usize,
        cols: usize,
        triplets: Vec<(u32, u32, f64)>,
    ) -> Result<Self, FormatError> {
        for &(r, c, _) in &triplets {
            if r as usize >= rows {
                return Err(FormatError::IndexOutOfBounds {
                    dim: 0,
                    index: u64::from(r),
                    size: rows as u64,
                });
            }
            if c as usize >= cols {
                return Err(FormatError::IndexOutOfBounds {
                    dim: 1,
                    index: u64::from(c),
                    size: cols as u64,
                });
            }
        }
        // Size each row's table for its *distinct* coordinate count.
        let mut distinct = vec![std::collections::BTreeSet::new(); rows];
        for &(r, c, _) in &triplets {
            distinct[r as usize].insert(c);
        }
        let mut row_base = Vec::with_capacity(rows + 1);
        row_base.push(0u32);
        let mut total = 0usize;
        for d in &distinct {
            total += capacity_for(d.len());
            row_base.push(total as u32);
        }
        let mut out = Self {
            rows,
            cols,
            nnz: 0,
            row_base,
            slots: vec![EMPTY; total],
            svals: vec![0.0; total],
        };
        for (r, c, v) in triplets {
            out.insert(r as usize, c, v);
        }
        Ok(out)
    }

    /// Inserts (or accumulates into) coordinate `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics when row `r`'s table is full — the builders size tables up
    /// front, so this indicates misuse.
    fn insert(&mut self, r: usize, c: u32, v: f64) {
        debug_assert!(c != EMPTY, "coordinate {c} collides with the sentinel");
        let (base, cap) = self.row_span(r);
        assert!(cap > 0, "row {r} has no table capacity");
        let mut slot = Self::home(c, cap);
        loop {
            let s = base + slot;
            if self.slots[s] == EMPTY {
                self.slots[s] = c;
                self.svals[s] = v;
                self.nnz += 1;
                return;
            }
            if self.slots[s] == c {
                // Duplicate coordinate: sum in arrival order.
                self.svals[s] += v;
                return;
            }
            slot = (slot + 1) & (cap - 1);
            assert!(slot != Self::home(c, cap), "row {r} table full");
        }
    }

    /// `(base slot, capacity)` of row `r`.
    fn row_span(&self, r: usize) -> (usize, usize) {
        (
            self.row_base[r] as usize,
            (self.row_base[r + 1] - self.row_base[r]) as usize,
        )
    }

    /// Global slot index holding coordinate `(r, c)`, if stored. This is
    /// the scatter address the csr→hashed conversion writes to.
    pub fn slot_index(&self, r: usize, c: u32) -> Option<usize> {
        let (base, cap) = self.row_span(r);
        if cap == 0 {
            return None;
        }
        let mut slot = Self::home(c, cap);
        loop {
            let s = base + slot;
            if self.slots[s] == c {
                return Some(s);
            }
            if self.slots[s] == EMPTY {
                return None;
            }
            slot = (slot + 1) & (cap - 1);
            if slot == Self::home(c, cap) {
                return None;
            }
        }
    }

    /// O(1) point lookup.
    pub fn get(&self, r: usize, c: u32) -> Option<f64> {
        let (base, cap) = self.row_span(r);
        if cap == 0 {
            return None;
        }
        let mut slot = Self::home(c, cap);
        loop {
            let s = base + slot;
            if self.slots[s] == c {
                return Some(self.svals[s]);
            }
            if self.slots[s] == EMPTY {
                return None;
            }
            slot = (slot + 1) & (cap - 1);
            if slot == Self::home(c, cap) {
                return None;
            }
        }
    }

    /// Row `r`'s entries in *coordinate* order — the sorted canonical
    /// materialization of the unordered level.
    pub fn row_sorted(&self, r: usize) -> Vec<(u32, f64)> {
        let (base, cap) = self.row_span(r);
        let mut out: Vec<(u32, f64)> = (base..base + cap)
            .filter(|&s| self.slots[s] != EMPTY)
            .map(|s| (self.slots[s], self.svals[s]))
            .collect();
        out.sort_unstable_by_key(|&(c, _)| c);
        out
    }

    /// Exact decode back to CSR (the generated hashed→csr conversion's
    /// software reference).
    pub fn to_csr(&self) -> CsrMatrix {
        let mut ptrs = Vec::with_capacity(self.rows + 1);
        ptrs.push(0u32);
        let mut idxs = Vec::with_capacity(self.nnz);
        let mut vals = Vec::with_capacity(self.nnz);
        for r in 0..self.rows {
            for (c, v) in self.row_sorted(r) {
                idxs.push(c);
                vals.push(v);
            }
            ptrs.push(idxs.len() as u32);
        }
        CsrMatrix::from_parts(self.rows, self.cols, ptrs, idxs, vals)
            .expect("hashed decode preserves CSR invariants")
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored (distinct) coordinates.
    pub fn nnz(&self) -> usize {
        self.nnz
    }

    /// Slot-offset array (`rows + 1`).
    pub fn row_base(&self) -> &[u32] {
        &self.row_base
    }

    /// Slot coordinate array ([`EMPTY`] marks unoccupied slots).
    pub fn slots(&self) -> &[u32] {
        &self.slots
    }

    /// Slot value array.
    pub fn svals(&self) -> &[f64] {
        &self.svals
    }

    /// Occupied fraction of the allocated slots (`0.0` when empty).
    pub fn load_factor(&self) -> f64 {
        if self.slots.is_empty() {
            0.0
        } else {
            self.nnz as f64 / self.slots.len() as f64
        }
    }

    /// Index words used by the layout (slot offsets + one coordinate word
    /// per slot, occupied or not).
    pub fn index_words(&self) -> usize {
        self.row_base.len() + self.slots.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tmu_tensor::gen;

    #[test]
    fn roundtrips_exactly_and_probes_in_o1() {
        let a = gen::uniform(97, 131, 5, 23);
        let h = HashedMatrix::from_csr(&a);
        assert_eq!(h.nnz(), a.nnz());
        assert!(h.load_factor() > 0.0 && h.load_factor() <= 0.5);
        let back = h.to_csr();
        assert_eq!(back.row_ptrs(), a.row_ptrs());
        assert_eq!(back.col_idxs(), a.col_idxs());
        assert_eq!(back.vals(), a.vals());
        // Point lookups agree with the CSR fibers.
        for r in 0..a.rows() {
            for (c, v) in a.row(r) {
                assert_eq!(h.get(r, c), Some(v));
            }
            assert_eq!(
                h.get(r, 130),
                a.row(r).find(|&(c, _)| c == 130).map(|e| e.1)
            );
        }
    }

    #[test]
    fn builder_sums_duplicates_in_input_order() {
        let want = (1e16f64 + 1.0) + 1.0;
        let h = HashedMatrix::from_triplets(
            2,
            4,
            vec![(0, 2, 1e16), (1, 3, 9.0), (0, 2, 1.0), (0, 2, 1.0)],
        )
        .expect("valid");
        assert_eq!(h.nnz(), 2);
        assert_eq!(h.get(0, 2).expect("stored").to_bits(), want.to_bits());
    }

    #[test]
    fn empty_rows_cost_no_slots() {
        let a = gen::road(64, 2, 5);
        let h = HashedMatrix::from_csr(&a);
        let empty_rows = (0..a.rows()).filter(|&r| {
            let (b, e) = a.row_range(r);
            b == e
        });
        for r in empty_rows {
            let (base, cap) = (h.row_base()[r], h.row_base()[r + 1] - h.row_base()[r]);
            let _ = base;
            assert_eq!(cap, 0);
        }
    }

    #[test]
    fn out_of_bounds_rejected() {
        let err = HashedMatrix::from_triplets(2, 2, vec![(0, 5, 1.0)]).unwrap_err();
        assert!(matches!(err, FormatError::IndexOutOfBounds { dim: 1, .. }));
    }
}
