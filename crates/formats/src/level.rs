//! The per-dimension level trait behind every whole-tensor format.
//!
//! Chou et al.'s insight (arXiv 1804.10112) is that a sparse compiler
//! needs only a small per-level interface — position bounds given the
//! parent, and a coordinate per position — to stay agnostic to storage.
//! This module is that interface for the TMU reproduction: the canonical
//! descriptor vocabulary lives in `tmu_tensor::level::LevelFormat`; here
//! each variant gets a *concrete* implementation backed by real arrays,
//! including the three physical layouts this crate adds (banded, hashed,
//! blocked/BCSR).
//!
//! Two provided operations close the loop back to the front-end:
//! [`Level::fiber`] produces the ordered canonical view of one parent's
//! entries (sorting when the level is unordered), and [`decode_csr`] is
//! the *generic* X→CSR conversion — one routine, instantiated per level
//! implementation, which is what "generated conversion routines" means in
//! a library setting (arXiv 2001.02609 generates the same loop nest from
//! the same level interface).

use tmu_tensor::level::LevelFormat;
use tmu_tensor::{BcsrMatrix, CsrMatrix};

use crate::banded::BandedMatrix;
use crate::hashed::{HashedMatrix, EMPTY};

/// One concrete storage level: the position/coordinate iteration
/// capability the front-end lowers against.
pub trait Level {
    /// The descriptor variant this level implements.
    fn format(&self) -> LevelFormat;

    /// Whether position order within a parent is coordinate order.
    /// Unordered levels go through a sorted materialization in
    /// [`Level::fiber`].
    fn is_ordered(&self) -> bool {
        true
    }

    /// `[start, end)` positions owned by `parent`.
    fn pos_range(&self, parent: usize) -> (usize, usize);

    /// Coordinate stored at `pos` under `parent`, or `None` when the
    /// position holds no entry (an unoccupied hash slot, a masked-off
    /// block slot).
    fn coord_at(&self, parent: usize, pos: usize) -> Option<u32>;

    /// Index words the level's arrays occupy.
    fn index_words(&self) -> usize;

    /// The ordered canonical fiber of `parent`: `(coordinate, position)`
    /// pairs in ascending coordinate order.
    fn fiber(&self, parent: usize) -> Vec<(u32, usize)> {
        let (b, e) = self.pos_range(parent);
        let mut out: Vec<(u32, usize)> = (b..e)
            .filter_map(|p| self.coord_at(parent, p).map(|c| (c, p)))
            .collect();
        if !self.is_ordered() {
            out.sort_unstable_by_key(|&(c, _)| c);
        }
        out
    }
}

/// The generic X→CSR decode: walks `level`'s canonical fibers for every
/// parent and rebuilds pointer/index/value arrays. `val_at` maps a level
/// position to its stored value.
pub fn decode_csr<L: Level + ?Sized>(
    rows: usize,
    cols: usize,
    level: &L,
    val_at: impl Fn(usize) -> f64,
) -> CsrMatrix {
    let mut ptrs = Vec::with_capacity(rows + 1);
    ptrs.push(0u32);
    let mut idxs = Vec::new();
    let mut vals = Vec::new();
    for r in 0..rows {
        for (c, p) in level.fiber(r) {
            idxs.push(c);
            vals.push(val_at(p));
        }
        ptrs.push(idxs.len() as u32);
    }
    CsrMatrix::from_parts(rows, cols, ptrs, idxs, vals)
        .expect("canonical fibers preserve CSR invariants")
}

/// Dense level: every coordinate below `parent` is materialized.
#[derive(Debug, Clone, Copy)]
pub struct DenseLevel {
    /// Dimension size.
    pub size: usize,
}

impl Level for DenseLevel {
    fn format(&self) -> LevelFormat {
        LevelFormat::Dense { size: self.size }
    }

    fn pos_range(&self, parent: usize) -> (usize, usize) {
        (parent * self.size, (parent + 1) * self.size)
    }

    fn coord_at(&self, parent: usize, pos: usize) -> Option<u32> {
        Some((pos - parent * self.size) as u32)
    }

    fn index_words(&self) -> usize {
        0
    }
}

/// Compressed level over borrowed CSR-style arrays.
#[derive(Debug, Clone, Copy)]
pub struct CompressedLevel<'a> {
    /// Pointer pair per parent (`parents + 1`).
    pub ptrs: &'a [u32],
    /// Coordinate per position.
    pub idxs: &'a [u32],
}

impl Level for CompressedLevel<'_> {
    fn format(&self) -> LevelFormat {
        LevelFormat::Compressed
    }

    fn pos_range(&self, parent: usize) -> (usize, usize) {
        (self.ptrs[parent] as usize, self.ptrs[parent + 1] as usize)
    }

    fn coord_at(&self, _parent: usize, pos: usize) -> Option<u32> {
        Some(self.idxs[pos])
    }

    fn index_words(&self) -> usize {
        self.ptrs.len() + self.idxs.len()
    }
}

/// Banded level view over a [`BandedMatrix`]'s delta arrays.
#[derive(Debug, Clone, Copy)]
pub struct BandedLevel<'a> {
    m: &'a BandedMatrix,
}

impl<'a> BandedLevel<'a> {
    /// Level view of `m`'s column dimension.
    pub fn new(m: &'a BandedMatrix) -> Self {
        Self { m }
    }
}

impl Level for BandedLevel<'_> {
    fn format(&self) -> LevelFormat {
        LevelFormat::Banded
    }

    fn pos_range(&self, parent: usize) -> (usize, usize) {
        self.m.row_range(parent)
    }

    fn coord_at(&self, parent: usize, pos: usize) -> Option<u32> {
        Some(self.m.coord(parent, pos))
    }

    fn index_words(&self) -> usize {
        self.m.index_words()
    }
}

/// Hashed level view over a [`HashedMatrix`]'s slot tables. Unordered:
/// canonical fibers sort the occupied slots.
#[derive(Debug, Clone, Copy)]
pub struct HashedLevel<'a> {
    m: &'a HashedMatrix,
}

impl<'a> HashedLevel<'a> {
    /// Level view of `m`'s column dimension.
    pub fn new(m: &'a HashedMatrix) -> Self {
        Self { m }
    }
}

impl Level for HashedLevel<'_> {
    fn format(&self) -> LevelFormat {
        LevelFormat::Hashed
    }

    fn is_ordered(&self) -> bool {
        false
    }

    fn pos_range(&self, parent: usize) -> (usize, usize) {
        (
            self.m.row_base()[parent] as usize,
            self.m.row_base()[parent + 1] as usize,
        )
    }

    fn coord_at(&self, _parent: usize, pos: usize) -> Option<u32> {
        let c = self.m.slots()[pos];
        (c != EMPTY).then_some(c)
    }

    fn index_words(&self) -> usize {
        self.m.index_words()
    }
}

/// Blocked level view over a [`BcsrMatrix`]: the parent is a *matrix*
/// row; positions span the row's block row in tile-value storage, and
/// slots outside the parent's in-tile row or off the occupancy mask hold
/// no entry. Position order is coordinate order (blocks sorted by block
/// column, ascending columns inside each block).
#[derive(Debug, Clone, Copy)]
pub struct BlockedLevel<'a> {
    m: &'a BcsrMatrix,
}

impl<'a> BlockedLevel<'a> {
    /// Level view of `m`'s column dimension.
    pub fn new(m: &'a BcsrMatrix) -> Self {
        Self { m }
    }
}

impl Level for BlockedLevel<'_> {
    fn format(&self) -> LevelFormat {
        LevelFormat::Blocked
    }

    fn pos_range(&self, parent: usize) -> (usize, usize) {
        let (br, bc) = self.m.block_shape();
        let (b0, b1) = self.m.block_row_range(parent / br);
        (b0 * br * bc, b1 * br * bc)
    }

    fn coord_at(&self, parent: usize, pos: usize) -> Option<u32> {
        let (br, bc) = self.m.block_shape();
        let blk = pos / (br * bc);
        let slot = pos % (br * bc);
        if slot / bc != parent % br {
            return None;
        }
        let occupied = self.m.mask(blk) & (1u64 << slot) != 0;
        occupied.then(|| self.m.block_col(blk) * bc as u32 + (slot % bc) as u32)
    }

    fn index_words(&self) -> usize {
        // Block pointer pair per block row + block column + two words of
        // occupancy mask per stored block.
        self.m.ptrs().len() + 3 * self.m.num_blocks()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tmu_tensor::gen;

    #[test]
    fn compressed_level_decodes_csr_exactly() {
        let a = gen::uniform(48, 64, 4, 9);
        let lvl = CompressedLevel {
            ptrs: a.row_ptrs(),
            idxs: a.col_idxs(),
        };
        let back = decode_csr(a.rows(), a.cols(), &lvl, |p| a.vals()[p]);
        assert_eq!(back.row_ptrs(), a.row_ptrs());
        assert_eq!(back.col_idxs(), a.col_idxs());
        assert_eq!(back.vals(), a.vals());
    }

    #[test]
    fn banded_and_hashed_levels_decode_through_the_generic_routine() {
        let a = gen::banded(96, 24, 6, 4);
        let b = BandedMatrix::from_csr(&a);
        let back = decode_csr(a.rows(), a.cols(), &BandedLevel::new(&b), |p| b.vals()[p]);
        assert_eq!(back.col_idxs(), a.col_idxs());
        assert_eq!(back.vals(), a.vals());

        let h = HashedMatrix::from_csr(&a);
        let back = decode_csr(a.rows(), a.cols(), &HashedLevel::new(&h), |p| h.svals()[p]);
        assert_eq!(back.row_ptrs(), a.row_ptrs());
        assert_eq!(back.col_idxs(), a.col_idxs());
        assert_eq!(back.vals(), a.vals());
    }

    #[test]
    fn blocked_level_masks_padding_and_preserves_order() {
        let a = gen::uniform(37, 53, 3, 6);
        let b = BcsrMatrix::from_csr(&a, 4, 8);
        let back = decode_csr(a.rows(), a.cols(), &BlockedLevel::new(&b), |p| b.vals()[p]);
        // BCSR stores no explicit zeros for these generator values, so
        // the masked decode is exact.
        assert_eq!(back.row_ptrs(), a.row_ptrs());
        assert_eq!(back.col_idxs(), a.col_idxs());
        assert_eq!(back.vals(), a.vals());
    }

    #[test]
    fn dense_level_enumerates_all_coordinates() {
        let lvl = DenseLevel { size: 5 };
        assert_eq!(lvl.fiber(2).len(), 5);
        assert_eq!(lvl.fiber(2)[0], (0, 10));
        assert_eq!(lvl.index_words(), 0);
    }
}
