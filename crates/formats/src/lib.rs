//! Level-format abstraction, generated conversions, and a format
//! autotuner for the TMU reproduction.
//!
//! ROADMAP item 3 (format generality) as a subsystem, in three layers:
//!
//! 1. **Levels** ([`level`]): per-dimension level implementations —
//!    dense, compressed, and the physical layouts this crate adds
//!    ([`BandedMatrix`], [`HashedMatrix`], and the PR 6 BCSR layout
//!    refactored onto the [`level::Level`] trait) — each exposing the
//!    position/coordinate iteration the front-end lowers against.
//! 2. **Conversions** ([`convert`]): csr↔{bcsr, banded, hashed} routines
//!    emitted three ways — as software references, as core-side op
//!    streams replayed through the simulated memory hierarchy (the
//!    `conv_cycles` the autotuner charges), and, for the decode
//!    direction, as real TMU programs whose callbacks rebuild the
//!    canonical arrays (so conversions are marshaled, faulted, and
//!    quiesced like any other kernel).
//! 3. **Autotuning** ([`stats`], [`autotune`]): fiber statistics and a
//!    small cost model that picks a layout per input, surfaced by the
//!    `formats` bench binary as a best-format-vs-CSR-always ablation.
//!
//! The seam into `tmu-front` is deliberately canonical: the lowerer and
//! interpreter consume only dense/compressed fiber streams, so a physical
//! format participates by *decoding* to the canonical view (its generated
//! X→csr conversion) and charging the conversion cycles — exactly how the
//! paper's TMU marshals any level stack through the same traversal
//! primitives.

#![warn(missing_docs)]

pub mod autotune;
pub mod banded;
pub mod convert;
pub mod hashed;
pub mod level;
pub mod spmv;
pub mod stats;

pub use autotune::{pick, Choice};
pub use banded::BandedMatrix;
pub use convert::{conversion_cycles, CsrToBandedTmu, HashedToCsrTmu};
pub use hashed::HashedMatrix;
pub use stats::FiberStats;

use tmu_tensor::level::FormatDescriptor;
use tmu_tensor::{BcsrMatrix, CsrMatrix, DcsrMatrix};

/// Block shape shared with the `blocked-sve` backend: one 512-bit SVE
/// vector of f64 per tile row.
pub const BLOCK_ROWS: usize = 4;
/// Columns per tile (see [`BLOCK_ROWS`]).
pub const BLOCK_COLS: usize = 8;

/// A string that names nothing in some closed name set; lists the
/// accepted names (and aliases, when the set has them). Shared by the
/// format parser here and the bench CLI's engine parser so every
/// unknown-name failure reads the same way.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownName {
    /// What kind of name was expected (`"format"`, `"engine"`, …).
    pub what: &'static str,
    /// The rejected argument, verbatim.
    pub arg: String,
    /// Canonical accepted names.
    pub valid: Vec<String>,
    /// Accepted shorthand aliases (may be empty).
    pub aliases: Vec<String>,
}

impl UnknownName {
    /// Builds the error for `arg` against a closed set of `valid` names.
    pub fn new(
        what: &'static str,
        arg: &str,
        valid: impl IntoIterator<Item = impl Into<String>>,
    ) -> Self {
        Self {
            what,
            arg: arg.to_owned(),
            valid: valid.into_iter().map(Into::into).collect(),
            aliases: Vec::new(),
        }
    }

    /// Adds shorthand aliases to the error message.
    pub fn with_aliases(mut self, aliases: impl IntoIterator<Item = impl Into<String>>) -> Self {
        self.aliases = aliases.into_iter().map(Into::into).collect();
        self
    }
}

impl std::fmt::Display for UnknownName {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unknown {} {:?}; valid {}s: {}",
            self.what,
            self.arg,
            self.what,
            self.valid.join(", ")
        )?;
        if !self.aliases.is_empty() {
            write!(f, " (aliases: {})", self.aliases.join(", "))?;
        }
        Ok(())
    }
}

impl std::error::Error for UnknownName {}

/// The whole-matrix formats the subsystem can materialize.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FormatKind {
    /// Dense rows over a compressed level (the paper's baseline).
    Csr,
    /// Compressed rows over a compressed level (hypersparse).
    Dcsr,
    /// Dense block rows over a blocked level (4×8 tiles).
    Bcsr,
    /// Dense rows over a banded level (narrow coordinate deltas).
    Banded,
    /// Dense rows over a hashed level (O(1) point lookup, unordered).
    Hashed,
}

impl FormatKind {
    /// Every kind, in report column order.
    pub const ALL: [FormatKind; 5] = [
        FormatKind::Csr,
        FormatKind::Dcsr,
        FormatKind::Bcsr,
        FormatKind::Banded,
        FormatKind::Hashed,
    ];

    /// Canonical name (matches the expression annotation).
    pub fn label(self) -> &'static str {
        match self {
            FormatKind::Csr => "csr",
            FormatKind::Dcsr => "dcsr",
            FormatKind::Bcsr => "bcsr",
            FormatKind::Banded => "banded",
            FormatKind::Hashed => "hashed",
        }
    }

    /// Parses a format name, case-insensitively.
    ///
    /// # Errors
    ///
    /// Returns [`UnknownName`] listing the valid names.
    pub fn parse(arg: &str) -> Result<Self, UnknownName> {
        let folded = arg.to_ascii_lowercase();
        Self::ALL
            .into_iter()
            .find(|k| k.label() == folded)
            .ok_or_else(|| {
                UnknownName::new("format", arg, Self::ALL.into_iter().map(FormatKind::label))
            })
    }

    /// The level-stack descriptor of a `rows`-row matrix in this format.
    pub fn descriptor(self, rows: usize) -> FormatDescriptor {
        match self {
            FormatKind::Csr => FormatDescriptor::csr(rows),
            FormatKind::Dcsr => FormatDescriptor::dcsr(),
            FormatKind::Bcsr => FormatDescriptor::bcsr(rows),
            FormatKind::Banded => FormatDescriptor::banded(rows),
            FormatKind::Hashed => FormatDescriptor::hashed(rows),
        }
    }
}

impl std::fmt::Display for FormatKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// A matrix materialized in one of the supported physical formats.
#[derive(Debug, Clone)]
pub enum FormatMatrix {
    /// CSR storage.
    Csr(CsrMatrix),
    /// DCSR storage.
    Dcsr(DcsrMatrix),
    /// BCSR storage (4×8 tiles).
    Bcsr(BcsrMatrix),
    /// Banded storage.
    Banded(BandedMatrix),
    /// Hashed storage.
    Hashed(HashedMatrix),
}

impl FormatMatrix {
    /// Encodes `a` into `kind` (the csr→X generated conversion's software
    /// reference; `Csr` is the identity).
    pub fn encode(kind: FormatKind, a: &CsrMatrix) -> Self {
        match kind {
            FormatKind::Csr => FormatMatrix::Csr(a.clone()),
            FormatKind::Dcsr => FormatMatrix::Dcsr(DcsrMatrix::from_csr(a)),
            FormatKind::Bcsr => FormatMatrix::Bcsr(BcsrMatrix::from_csr(a, BLOCK_ROWS, BLOCK_COLS)),
            FormatKind::Banded => FormatMatrix::Banded(BandedMatrix::from_csr(a)),
            FormatKind::Hashed => FormatMatrix::Hashed(HashedMatrix::from_csr(a)),
        }
    }

    /// The stored format.
    pub fn kind(&self) -> FormatKind {
        match self {
            FormatMatrix::Csr(_) => FormatKind::Csr,
            FormatMatrix::Dcsr(_) => FormatKind::Dcsr,
            FormatMatrix::Bcsr(_) => FormatKind::Bcsr,
            FormatMatrix::Banded(_) => FormatKind::Banded,
            FormatMatrix::Hashed(_) => FormatKind::Hashed,
        }
    }

    /// Decodes back to canonical CSR (the X→csr generated conversion's
    /// software reference). Exact for every format: banded and BCSR
    /// preserve order and occupancy, hashed sorts its slots, DCSR
    /// re-expands empty rows.
    pub fn decode(&self) -> CsrMatrix {
        match self {
            FormatMatrix::Csr(m) => m.clone(),
            FormatMatrix::Dcsr(m) => {
                let mut ptrs = Vec::with_capacity(m.rows() + 1);
                ptrs.push(0u32);
                let mut stored = 0usize;
                for r in 0..m.rows() {
                    if stored < m.num_stored_rows() && m.row_idxs()[stored] == r as u32 {
                        stored += 1;
                    }
                    ptrs.push(m.row_ptrs()[stored]);
                }
                CsrMatrix::from_parts(
                    m.rows(),
                    m.cols(),
                    ptrs,
                    m.col_idxs().to_vec(),
                    m.vals().to_vec(),
                )
                .expect("DCSR expansion preserves CSR invariants")
            }
            FormatMatrix::Bcsr(m) => m.to_csr(),
            FormatMatrix::Banded(m) => m.to_csr(),
            FormatMatrix::Hashed(m) => m.to_csr(),
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        match self {
            FormatMatrix::Csr(m) => m.rows(),
            FormatMatrix::Dcsr(m) => m.rows(),
            FormatMatrix::Bcsr(m) => m.rows(),
            FormatMatrix::Banded(m) => m.rows(),
            FormatMatrix::Hashed(m) => m.rows(),
        }
    }

    /// Index words the layout occupies (the storage-cost half of the
    /// autotuner's trade-off).
    pub fn index_words(&self) -> usize {
        match self {
            FormatMatrix::Csr(m) => m.row_ptrs().len() + m.col_idxs().len(),
            FormatMatrix::Dcsr(m) => m.index_words(),
            FormatMatrix::Bcsr(m) => m.ptrs().len() + 3 * m.num_blocks(),
            FormatMatrix::Banded(m) => m.index_words(),
            FormatMatrix::Hashed(m) => m.index_words(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tmu_tensor::gen;

    #[test]
    fn format_names_parse_case_insensitively() {
        for k in FormatKind::ALL {
            assert_eq!(FormatKind::parse(k.label()), Ok(k));
            assert_eq!(FormatKind::parse(&k.label().to_uppercase()), Ok(k));
        }
        let err = FormatKind::parse("ellpack").unwrap_err();
        assert_eq!(err.what, "format");
        let msg = err.to_string();
        assert!(msg.contains("\"ellpack\""), "{msg}");
        for k in FormatKind::ALL {
            assert!(msg.contains(k.label()), "{msg}");
        }
    }

    #[test]
    fn unknown_name_lists_aliases_when_present() {
        let msg = UnknownName::new("engine", "warp", ["tmu", "imp"])
            .with_aliases(["single"])
            .to_string();
        assert_eq!(
            msg,
            "unknown engine \"warp\"; valid engines: tmu, imp (aliases: single)"
        );
    }

    #[test]
    fn every_format_encodes_and_decodes_exactly() {
        for (m, name) in [
            (gen::uniform(67, 83, 5, 3), "uniform"),
            (gen::banded(120, 12, 6, 9), "banded"),
            (gen::road(96, 2, 5), "road"),
        ] {
            for kind in FormatKind::ALL {
                let enc = FormatMatrix::encode(kind, &m);
                assert_eq!(enc.kind(), kind);
                let back = enc.decode();
                assert_eq!(back.row_ptrs(), m.row_ptrs(), "{kind} on {name}");
                assert_eq!(back.col_idxs(), m.col_idxs(), "{kind} on {name}");
                assert_eq!(back.vals(), m.vals(), "{kind} on {name}");
                assert!(enc.index_words() > 0);
            }
        }
    }

    #[test]
    fn descriptors_mark_the_physical_level_data_dependent() {
        for kind in FormatKind::ALL {
            let d = kind.descriptor(16);
            assert_eq!(d.order(), 2);
            assert!(d.data_dependent_levels() >= 1, "{kind}");
        }
    }
}
