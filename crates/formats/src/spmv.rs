//! Per-format SpMV: functional folds pinned to the kernel reference and
//! op-stream cost models for the autotuner's ablation.
//!
//! The functional half ([`spmv_values`]) computes `y = A·x` *through each
//! physical layout's own traversal* — CSR fibers, DCSR stored rows, BCSR
//! masked tiles, banded delta decode, hashed sorted slots — folding
//! products in ascending column order from the `-0.0` additive identity,
//! so every format is bit-identical to `tmu_kernels::spmv::Spmv`'s
//! reference by construction *and* by test.
//!
//! The cost half ([`run_spmv`]) replays a per-format op stream through
//! the simulated cores: CSR and DCSR pay the per-element gather chain,
//! banded trades it for statically-addressed band-window loads (no
//! data-dependent addresses, whole window touched), and BCSR charges
//! whole tiles (the blocked backend's full-tile model). Hashed has no
//! row-streamed SpMV — its slot order is hash order, and producing an
//! ordered stream *is* the hashed→csr conversion — so [`run_spmv`]
//! returns `None` for it.

use std::sync::Arc;

use tmu_kernels::data::partition_rows;
use tmu_kernels::util::fold_deps;
use tmu_sim::{
    AddressMap, ChannelMachine, Deps, Machine, OpId, Region, RunStats, Site, System, SystemConfig,
};
use tmu_tensor::{BcsrMatrix, CsrMatrix, DcsrMatrix};

use crate::banded::BandedMatrix;
use crate::hashed::HashedMatrix;
use crate::{FormatKind, BLOCK_COLS, BLOCK_ROWS};

const S_PTR: u16 = 600;
const S_IDX: u16 = 601;
const S_VAL: u16 = 602;
const S_GATHER: u16 = 603;
const S_XSEG: u16 = 604;
const S_STORE: u16 = 605;
const S_BR_I: u16 = 606;
const S_BR_O: u16 = 607;
const S_ROWIDX: u16 = 608;
const S_TILE: u16 = 609;

/// The deterministic SpMV dense vector shared with `tmu_kernels`.
pub fn spmv_x(cols: usize) -> Vec<f64> {
    (0..cols).map(|j| 0.5 + (j % 97) as f64 / 97.0).collect()
}

/// Iterates matrix row `i`'s stored entries of a BCSR layout in
/// ascending column order (mask-honouring, reference fold order).
fn bcsr_row_entries(b: &BcsrMatrix, i: usize, mut f: impl FnMut(usize, f64)) {
    let (br, bc) = b.block_shape();
    let (b0, b1) = b.block_row_range(i / br);
    let r_in = i % br;
    for blk in b0..b1 {
        let gc = b.block_col(blk) as usize;
        let mask = b.mask(blk);
        let vals = b.block_vals(blk);
        for c_in in 0..bc {
            let slot = r_in * bc + c_in;
            if mask & (1u64 << slot) != 0 {
                f(gc * bc + c_in, vals[slot]);
            }
        }
    }
}

/// `y = A·x` through `kind`'s own traversal, bit-identical to the SpMV
/// kernel reference (fold from `-0.0` in ascending column order).
pub fn spmv_values(kind: FormatKind, a: &CsrMatrix) -> Vec<f64> {
    let x = spmv_x(a.cols());
    let mut y = vec![-0.0f64; a.rows()];
    match kind {
        FormatKind::Csr => {
            for (i, yi) in y.iter_mut().enumerate() {
                for (c, v) in a.row(i) {
                    *yi += v * x[c as usize];
                }
            }
        }
        FormatKind::Dcsr => {
            let d = DcsrMatrix::from_csr(a);
            for s in 0..d.num_stored_rows() {
                let i = d.row_idxs()[s] as usize;
                let (b, e) = (d.row_ptrs()[s] as usize, d.row_ptrs()[s + 1] as usize);
                for p in b..e {
                    y[i] += d.vals()[p] * x[d.col_idxs()[p] as usize];
                }
            }
        }
        FormatKind::Bcsr => {
            let b = BcsrMatrix::from_csr(a, BLOCK_ROWS, BLOCK_COLS);
            for (i, yi) in y.iter_mut().enumerate() {
                bcsr_row_entries(&b, i, |c, v| *yi += v * x[c]);
            }
        }
        FormatKind::Banded => {
            let b = BandedMatrix::from_csr(a);
            for (i, yi) in y.iter_mut().enumerate() {
                for (c, v) in b.row(i) {
                    *yi += v * x[c as usize];
                }
            }
        }
        FormatKind::Hashed => {
            let h = HashedMatrix::from_csr(a);
            for (i, yi) in y.iter_mut().enumerate() {
                for (c, v) in h.row_sorted(i) {
                    *yi += v * x[c as usize];
                }
            }
        }
    }
    y
}

/// Shared shard context of the op-stream emitters.
struct Ctx {
    ptrs: Arc<Vec<u32>>,
    /// Decoded column per stored position (drives gather/segment
    /// addresses so the cache model sees the real access pattern; empty
    /// for the tile-addressed BCSR stream).
    cols: Arc<Vec<u32>>,
    ptrs_r: Region,
    idxs_r: Region,
    vals_r: Region,
    x_r: Region,
    y_r: Region,
}

/// The gather-chain SpMV (CSR; also the DCSR inner loop): per chunk, a
/// vector load of indexes and values plus one dependent element load per
/// gathered operand.
fn emit_gather_row<M: Machine + ?Sized>(m: &mut M, ctx: &Ctx, i: usize, bounds: Deps, vl: usize) {
    let (beg, end) = (ctx.ptrs[i] as usize, ctx.ptrs[i + 1] as usize);
    let mut sum = OpId::NONE;
    let mut p = beg;
    while p < end {
        let n = (end - p).min(vl);
        let iv = m.vec_load(Site(S_IDX), ctx.idxs_r.u32_at(p), (n * 4) as u32, bounds);
        let vv = m.vec_load(Site(S_VAL), ctx.vals_r.f64_at(p), (n * 8) as u32, bounds);
        let mut prods = Vec::with_capacity(n + 2);
        for e in 0..n {
            let col = ctx.cols[p + e] as usize;
            prods.push(m.load(Site(S_GATHER), ctx.x_r.f64_at(col), 8, Deps::from(iv)));
        }
        prods.push(vv);
        if sum.is_some() {
            prods.push(sum);
        }
        let deps = fold_deps(m, &prods);
        sum = m.vec_op((2 * n) as u32, deps);
        p += n;
        m.branch(Site(S_BR_I), p < end, bounds);
    }
    m.store(Site(S_STORE), ctx.y_r.f64_at(i), 8, Deps::from(sum));
}

fn emit_csr<M: Machine + ?Sized>(m: &mut M, ctx: &Ctx, rows: (usize, usize), vl: usize) {
    for i in rows.0..rows.1 {
        let p0 = m.load(Site(S_PTR), ctx.ptrs_r.u32_at(i), 4, Deps::NONE);
        let p1 = m.load(Site(S_PTR), ctx.ptrs_r.u32_at(i + 1), 4, Deps::NONE);
        emit_gather_row(m, ctx, i, Deps::on(&[p0, p1]), vl);
        m.branch(Site(S_BR_O), i + 1 < rows.1, Deps::NONE);
    }
}

/// DCSR: only stored rows are walked, at the price of one extra row-index
/// load per stored row (`ctx.ptrs` here is the *stored-row* pointer
/// array, so `rows` ranges over stored rows).
fn emit_dcsr<M: Machine + ?Sized>(
    m: &mut M,
    ctx: &Ctx,
    row_idxs_r: Region,
    rows: (usize, usize),
    vl: usize,
) {
    for s in rows.0..rows.1 {
        let ri = m.load(Site(S_ROWIDX), row_idxs_r.u32_at(s), 4, Deps::NONE);
        let p0 = m.load(Site(S_PTR), ctx.ptrs_r.u32_at(s), 4, Deps::NONE);
        let p1 = m.load(Site(S_PTR), ctx.ptrs_r.u32_at(s + 1), 4, Deps::NONE);
        emit_gather_row(m, ctx, s, Deps::on(&[ri, p0, p1]), vl);
        m.branch(Site(S_BR_O), s + 1 < rows.1, Deps::NONE);
    }
}

/// Banded: no data-dependent addressing at all. Row `i`'s operand window
/// `x[i−bw_lo .. i+bw_hi]` is known from the row index alone, so its
/// chunked vector loads issue with no dependencies (full memory
/// parallelism — the gather chain's load-to-load serialization is gone);
/// deltas and values stream as vector chunks and decoding costs one
/// vector add. The price is touching the whole band window — `bandwidth`
/// operands per row however few are stored — which is why `band_fill` is
/// the autotuner's deciding statistic for this format.
fn emit_banded<M: Machine + ?Sized>(
    m: &mut M,
    ctx: &Ctx,
    band: (usize, usize, usize),
    rows: (usize, usize),
    vl: usize,
) {
    let (bw_lo, bw_hi, cols) = band;
    for i in rows.0..rows.1 {
        let p0 = m.load(Site(S_PTR), ctx.ptrs_r.u32_at(i), 4, Deps::NONE);
        let p1 = m.load(Site(S_PTR), ctx.ptrs_r.u32_at(i + 1), 4, Deps::NONE);
        let bounds = Deps::on(&[p0, p1]);
        let (beg, end) = (ctx.ptrs[i] as usize, ctx.ptrs[i + 1] as usize);
        let w0 = i.saturating_sub(bw_lo);
        let w1 = (i + bw_hi + 1).min(cols);
        let mut window = Vec::new();
        if end > beg {
            let mut c = w0;
            while c < w1 {
                let n = (w1 - c).min(vl);
                window.push(m.vec_load(
                    Site(S_XSEG),
                    ctx.x_r.f64_at(c),
                    (n * 8) as u32,
                    Deps::NONE,
                ));
                c += n;
            }
        }
        let mut sum = OpId::NONE;
        let mut p = beg;
        while p < end {
            let n = (end - p).min(vl);
            let dv = m.vec_load(Site(S_IDX), ctx.idxs_r.u32_at(p), (n * 4) as u32, bounds);
            let vv = m.vec_load(Site(S_VAL), ctx.vals_r.f64_at(p), (n * 8) as u32, bounds);
            // delta + (row - bw_lo): one vector add decodes the chunk.
            m.int_op(Deps::from(dv));
            // The chunk consumes the window chunk its first coordinate
            // falls in (in-register once the undependent window loads land).
            let wslot = window[(ctx.cols[p] as usize - w0) / vl];
            let mut parts = vec![dv, vv, wslot];
            if sum.is_some() {
                parts.push(sum);
            }
            let deps = fold_deps(m, &parts);
            sum = m.vec_op((2 * n) as u32, deps);
            p += n;
            m.branch(Site(S_BR_I), p < end, bounds);
        }
        m.store(Site(S_STORE), ctx.y_r.f64_at(i), 8, Deps::from(sum));
        m.branch(Site(S_BR_O), i + 1 < rows.1, Deps::NONE);
    }
}

/// BCSR: whole-tile charge per stored block — tile vector loads, one `x`
/// stripe, `2·BR·BC` FLOPs — over block rows (`ctx.ptrs` is the block
/// pointer array; `rows` ranges over block rows).
fn emit_bcsr<M: Machine + ?Sized>(
    m: &mut M,
    ctx: &Ctx,
    b: &BcsrMatrix,
    grs: (usize, usize),
    vl: usize,
) {
    let (br, bc) = b.block_shape();
    for gr in grs.0..grs.1 {
        let q0 = m.load(Site(S_PTR), ctx.ptrs_r.u32_at(gr), 4, Deps::NONE);
        let q1 = m.load(Site(S_PTR), ctx.ptrs_r.u32_at(gr + 1), 4, Deps::NONE);
        let bounds = Deps::on(&[q0, q1]);
        let (b0, b1) = b.block_row_range(gr);
        for blk in b0..b1 {
            let bi = m.load(Site(S_ROWIDX), ctx.idxs_r.u32_at(blk), 4, bounds);
            let mut parts = vec![bi];
            let mut s = 0;
            while s < br * bc {
                let n = (br * bc - s).min(vl);
                parts.push(m.vec_load(
                    Site(S_TILE),
                    ctx.vals_r.f64_at(blk * br * bc + s),
                    (n * 8) as u32,
                    bounds,
                ));
                s += n;
            }
            parts.push(m.vec_load(
                Site(S_XSEG),
                ctx.x_r.f64_at(b.block_col(blk) as usize * bc),
                (bc * 8) as u32,
                Deps::from(bi),
            ));
            let deps = fold_deps(m, &parts);
            m.vec_op((2 * br * bc) as u32, deps);
            m.branch(Site(S_BR_I), blk + 1 < b1, bounds);
        }
        let lo = gr * br;
        let hi = ((gr + 1) * br).min(b.rows());
        m.store(
            Site(S_STORE),
            ctx.y_r.f64_at(lo),
            ((hi - lo) * 8) as u32,
            Deps::NONE,
        );
        m.branch(Site(S_BR_O), gr + 1 < grs.1, Deps::NONE);
    }
}

/// Replays `kind`'s SpMV op stream for `a` through `cfg`'s cores. `None`
/// for [`FormatKind::Hashed`]: hash order admits no row-streamed SpMV
/// (see the module docs).
pub fn run_spmv(kind: FormatKind, a: &CsrMatrix, cfg: SystemConfig) -> Option<RunStats> {
    let vl = cfg.core.sve_lanes();
    let cores = cfg.cores();
    let mut map = AddressMap::new();
    let build_ctx = |map: &mut AddressMap, ptrs: Vec<u32>, cols: Vec<u32>, val_n: usize| {
        let ptrs = Arc::new(ptrs);
        let idx_n = cols.len();
        Ctx {
            ptrs_r: map.alloc_elems("f.ptrs", ptrs.len(), 4),
            idxs_r: map.alloc_elems("f.idxs", idx_n.max(1), 4),
            vals_r: map.alloc_elems("f.vals", val_n.max(1), 8),
            x_r: map.alloc_elems("f.x", a.cols().max(1), 8),
            y_r: map.alloc_elems("f.y", a.rows().max(1), 8),
            ptrs,
            cols: Arc::new(cols),
        }
    };
    let mut sys = System::new(cfg);
    let stats = match kind {
        FormatKind::Hashed => return None,
        FormatKind::Csr => {
            let ctx = Arc::new(build_ctx(
                &mut map,
                a.row_ptrs().to_vec(),
                a.col_idxs().to_vec(),
                a.nnz(),
            ));
            let shards = partition_rows(&ctx.ptrs, cores);
            sys.run(
                shards
                    .into_iter()
                    .map(|range| {
                        let ctx = Arc::clone(&ctx);
                        move |m: &mut ChannelMachine| emit_csr(m, &ctx, range, vl)
                    })
                    .collect(),
            )
        }
        FormatKind::Dcsr => {
            let d = DcsrMatrix::from_csr(a);
            let row_idxs_r = map.alloc_elems("f.row_idxs", d.num_stored_rows().max(1), 4);
            let ctx = Arc::new(build_ctx(
                &mut map,
                d.row_ptrs().to_vec(),
                d.col_idxs().to_vec(),
                a.nnz(),
            ));
            let shards = partition_rows(&ctx.ptrs, cores);
            sys.run(
                shards
                    .into_iter()
                    .map(|range| {
                        let ctx = Arc::clone(&ctx);
                        move |m: &mut ChannelMachine| emit_dcsr(m, &ctx, row_idxs_r, range, vl)
                    })
                    .collect(),
            )
        }
        FormatKind::Banded => {
            let b = BandedMatrix::from_csr(a);
            let coords: Vec<u32> = (0..b.rows())
                .flat_map(|r| {
                    let (p0, p1) = b.row_range(r);
                    (p0..p1).map(move |p| (r, p))
                })
                .map(|(r, p)| b.coord(r, p))
                .collect();
            let band = (b.bw_lo() as usize, b.bw_hi() as usize, a.cols());
            let ctx = Arc::new(build_ctx(&mut map, b.ptrs().to_vec(), coords, b.nnz()));
            let shards = partition_rows(&ctx.ptrs, cores);
            sys.run(
                shards
                    .into_iter()
                    .map(|range| {
                        let ctx = Arc::clone(&ctx);
                        move |m: &mut ChannelMachine| emit_banded(m, &ctx, band, range, vl)
                    })
                    .collect(),
            )
        }
        FormatKind::Bcsr => {
            let b = Arc::new(BcsrMatrix::from_csr(a, BLOCK_ROWS, BLOCK_COLS));
            let tile_elems = (b.num_blocks() * BLOCK_ROWS * BLOCK_COLS).max(1);
            let block_cols: Vec<u32> = (0..b.num_blocks()).map(|blk| b.block_col(blk)).collect();
            let ctx = Arc::new(build_ctx(
                &mut map,
                b.ptrs().to_vec(),
                block_cols,
                tile_elems,
            ));
            let shards = partition_rows(&ctx.ptrs, cores);
            sys.run(
                shards
                    .into_iter()
                    .map(|grs| {
                        let ctx = Arc::clone(&ctx);
                        let b = Arc::clone(&b);
                        move |m: &mut ChannelMachine| emit_bcsr(m, &ctx, &b, grs, vl)
                    })
                    .collect(),
            )
        }
    };
    Some(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tmu_kernels::spmv::Spmv;
    use tmu_sim::{CoreConfig, MemSysConfig};
    use tmu_tensor::gen;

    fn small_cfg(cores: usize) -> SystemConfig {
        SystemConfig {
            core: CoreConfig::neoverse_n1_like(),
            mem: MemSysConfig::table5(cores),
        }
    }

    #[test]
    fn every_format_matches_the_kernel_reference_bitwise() {
        for (a, name) in [
            (gen::uniform(193, 160, 5, 17), "uniform"),
            (gen::banded(128, 12, 6, 7), "banded"),
            (gen::road(96, 2, 3), "road"),
        ] {
            let reference = Spmv::new(&a);
            for kind in FormatKind::ALL {
                let got = spmv_values(kind, &a);
                assert_eq!(got.len(), reference.reference().len());
                for (i, (g, r)) in got.iter().zip(reference.reference()).enumerate() {
                    assert_eq!(
                        g.to_bits(),
                        r.to_bits(),
                        "{kind} on {name}, row {i}: {g} vs {r}"
                    );
                }
            }
        }
    }

    #[test]
    fn streamed_formats_report_cycles_and_hashed_declines() {
        let a = gen::uniform(256, 256, 5, 11);
        for kind in [
            FormatKind::Csr,
            FormatKind::Dcsr,
            FormatKind::Bcsr,
            FormatKind::Banded,
        ] {
            let stats = run_spmv(kind, &a, small_cfg(2)).expect("streamed format runs");
            assert!(stats.cycles > 0, "{kind}");
        }
        assert!(run_spmv(FormatKind::Hashed, &a, small_cfg(2)).is_none());
    }

    #[test]
    fn banded_model_beats_csr_on_a_banded_input() {
        let a = gen::banded(2048, 24, 8, 5);
        let csr = run_spmv(FormatKind::Csr, &a, small_cfg(2)).expect("runs");
        let banded = run_spmv(FormatKind::Banded, &a, small_cfg(2)).expect("runs");
        assert!(
            banded.cycles < csr.cycles,
            "banded {} vs csr {}",
            banded.cycles,
            csr.cycles
        );
    }

    #[test]
    fn csr_model_charges_the_reference_flop_count() {
        let a = gen::uniform(128, 128, 4, 9);
        let stats = run_spmv(FormatKind::Csr, &a, small_cfg(1)).expect("runs");
        assert_eq!(stats.total().flops as usize, 2 * a.nnz());
    }
}
