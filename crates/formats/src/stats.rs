//! Fiber statistics: the measurements the format autotuner decides on.
//!
//! One cheap pass over a CSR input produces the per-row population
//! moments (mean and coefficient of variation of nnz/row, empty-row
//! fraction), the band geometry (lower/upper bandwidth and how densely
//! the band is filled), and the register-tiling geometry (4×8 tile count
//! and mean occupancy). Each statistic maps onto one format's sweet spot:
//! high empty-row fraction favours DCSR, a narrow well-filled band
//! favours the banded level, high tile occupancy favours BCSR, and a
//! skewed row distribution (high CoV) is what the TMU's lockstep lanes
//! tolerate but blocked tiling does not.

use tmu_tensor::{BcsrMatrix, CsrMatrix};

use crate::{BLOCK_COLS, BLOCK_ROWS};

/// Fiber statistics of one matrix (all measured, no estimates).
#[derive(Debug, Clone, PartialEq)]
pub struct FiberStats {
    /// Rows.
    pub rows: usize,
    /// Columns.
    pub cols: usize,
    /// Stored entries.
    pub nnz: usize,
    /// Mean stored entries per row.
    pub row_mean: f64,
    /// Coefficient of variation (σ/µ) of entries per row; `0` when the
    /// matrix is empty.
    pub row_cov: f64,
    /// Fraction of rows with no stored entries.
    pub empty_row_frac: f64,
    /// Lower bandwidth: largest `row − col` over stored entries.
    pub bw_lo: u32,
    /// Upper bandwidth: largest `col − row` over stored entries.
    pub bw_hi: u32,
    /// Fraction of the in-band slots that hold a stored entry (`0` when
    /// empty; capped at 1).
    pub band_fill: f64,
    /// Stored 4×8 tiles of the BCSR tiling.
    pub tiles: usize,
    /// Mean occupied fraction of those tiles (`0` when empty).
    pub tile_occupancy: f64,
}

impl FiberStats {
    /// Measures `a` in one pass (plus the BCSR tiling pass).
    pub fn measure(a: &CsrMatrix) -> Self {
        let rows = a.rows();
        let nnz = a.nnz();
        let mut bw_lo = 0i64;
        let mut bw_hi = 0i64;
        let mut empty = 0usize;
        let mut sum_sq = 0.0f64;
        for r in 0..rows {
            let (b, e) = a.row_range(r);
            let len = e - b;
            if len == 0 {
                empty += 1;
            }
            sum_sq += (len * len) as f64;
            for (c, _) in a.row(r) {
                bw_lo = bw_lo.max(r as i64 - i64::from(c));
                bw_hi = bw_hi.max(i64::from(c) - r as i64);
            }
        }
        let row_mean = if rows == 0 {
            0.0
        } else {
            nnz as f64 / rows as f64
        };
        let var = if rows == 0 {
            0.0
        } else {
            (sum_sq / rows as f64 - row_mean * row_mean).max(0.0)
        };
        let row_cov = if row_mean > 0.0 {
            var.sqrt() / row_mean
        } else {
            0.0
        };
        let bandwidth = if nnz == 0 {
            0
        } else {
            (bw_lo + bw_hi + 1) as u64
        };
        let band_fill = if bandwidth == 0 {
            0.0
        } else {
            (nnz as f64 / (rows as f64 * bandwidth as f64)).min(1.0)
        };
        let bcsr = BcsrMatrix::from_csr(a, BLOCK_ROWS, BLOCK_COLS);
        Self {
            rows,
            cols: a.cols(),
            nnz,
            row_mean,
            row_cov,
            empty_row_frac: if rows == 0 {
                0.0
            } else {
                empty as f64 / rows as f64
            },
            bw_lo: bw_lo as u32,
            bw_hi: bw_hi as u32,
            band_fill,
            tiles: bcsr.num_blocks(),
            tile_occupancy: bcsr.occupancy(),
        }
    }

    /// Total band width in columns (`0` for an empty matrix).
    pub fn bandwidth(&self) -> u64 {
        if self.nnz == 0 {
            0
        } else {
            u64::from(self.bw_lo) + u64::from(self.bw_hi) + 1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tmu_tensor::gen;

    #[test]
    fn banded_input_measures_a_narrow_full_band() {
        let s = FiberStats::measure(&gen::banded(256, 16, 7, 5));
        assert!(s.bandwidth() <= 33, "bandwidth {}", s.bandwidth());
        assert!(s.band_fill > 0.15, "band fill {}", s.band_fill);
        assert!(s.empty_row_frac < 0.01);
    }

    #[test]
    fn uniform_input_measures_a_wide_empty_band() {
        let s = FiberStats::measure(&gen::uniform(128, 4096, 4, 7));
        assert!(s.bandwidth() > 1000);
        assert!(s.band_fill < 0.05, "band fill {}", s.band_fill);
        assert!((s.row_mean - 4.0).abs() < 1.0);
    }

    #[test]
    fn road_input_matches_the_banded_encoder_measurement() {
        let a = gen::road(256, 2, 9);
        let s = FiberStats::measure(&a);
        let b = crate::BandedMatrix::from_csr(&a);
        assert_eq!(s.bw_lo, b.bw_lo());
        assert_eq!(s.bw_hi, b.bw_hi());
        assert_eq!(s.bandwidth(), u64::from(b.bandwidth()));
        assert!(s.nnz > 0);
    }

    #[test]
    fn empty_matrix_measures_zeroes() {
        let a = tmu_tensor::CsrMatrix::from_parts(4, 4, vec![0; 5], vec![], vec![]).expect("valid");
        let s = FiberStats::measure(&a);
        assert_eq!(s.bandwidth(), 0);
        assert_eq!(s.row_cov, 0.0);
        assert_eq!(s.empty_row_frac, 1.0);
        assert_eq!(s.tiles, 0);
    }
}
