//! Fault-injection coverage for a generated conversion program: the
//! csr→banded conversion runs as an ordinary TMU traversal program, so
//! it must inherit the §5.6 resilience story wholesale — a page fault,
//! transient retry, preemption, or outQ stall anywhere in the schedule
//! may change timing but never the marshaled stream. The outQ entries
//! carry raw operand bits, so equality here is bit-identity.

use std::sync::Arc;

use tmu::{
    CallbackHandler, FaultEvent, FaultKind, FaultPlan, FaultSpec, OutQEntry, TmuAccelerator,
    TmuConfig,
};
use tmu_formats::CsrToBandedTmu;
use tmu_sim::{Accelerator, Deps, Machine, MemSys, MemSysConfig, OpId, OpKind, VecMachine};
use tmu_tensor::{gen, CsrMatrix};

/// Handler that records the marshaled stream verbatim instead of
/// rebuilding the destination arrays: the stream *is* the conversion's
/// output contract, so it is what must survive faults bit-identically.
#[derive(Debug, Default)]
struct Recorder {
    entries: Vec<OutQEntry>,
}

impl CallbackHandler for Recorder {
    fn handle(&mut self, entry: &OutQEntry, entry_load: OpId, m: &mut VecMachine) {
        self.entries.push(entry.clone());
        m.int_op(Deps::from(entry_load));
    }
}

fn fixture() -> CsrMatrix {
    gen::banded(48, 10, 4, 11)
}

fn recorder_accel(conv: &CsrToBandedTmu, a: &CsrMatrix) -> TmuAccelerator<Recorder> {
    let prog = Arc::new(conv.build_program((0, a.rows()), 4));
    TmuAccelerator::new(
        TmuConfig::paper(),
        prog,
        conv.image_handle(),
        Recorder::default(),
        conv.outq_base(0),
    )
}

/// Drives the engine standalone against a private memory system (the
/// infinitely fast core of the timing suite), returning the recorded
/// stream and the cycle count.
fn drive(accel: &mut TmuAccelerator<Recorder>) -> (Vec<OutQEntry>, u64) {
    let mut mem = MemSys::new(MemSysConfig::table5(1));
    let mut now = 0u64;
    let mut sink = Vec::new();
    while !accel.done() {
        accel.tick(now, 0, &mut mem);
        accel.drain_ops(&mut sink);
        for op in &sink {
            if let OpKind::ChunkEnd { chunk } = op.kind {
                accel.ack_chunk(chunk, now);
            }
        }
        sink.clear();
        now += 1;
        assert!(now < 5_000_000, "conversion engine must terminate");
    }
    (accel.handler().entries.clone(), now)
}

#[test]
fn csr_to_banded_stream_is_bit_identical_under_the_fault_grid() {
    let a = fixture();
    let conv = CsrToBandedTmu::new(&a);

    // Probe run: the fault-free stream, cycle count, and issued-load
    // count, so injection points can be spread over the real schedule.
    let mut probe = recorder_accel(&conv, &a);
    probe.inject_fault_plan(FaultPlan::with_events(FaultSpec::with_rate(0, 0), vec![]));
    let (clean, clean_cycles) = drive(&mut probe);
    assert!(!clean.is_empty(), "fixture must marshal entries");
    let total_loads = probe.fault_plan().expect("plan attached").loads_seen();
    assert!(total_loads > 4, "fixture must issue loads");

    for kind in FaultKind::ALL {
        for frac in 0u64..4 {
            let mut accel = recorder_accel(&conv, &a);
            let ev = match kind {
                FaultKind::Preempt | FaultKind::OutQStall => {
                    FaultEvent::at_cycle((clean_cycles - 1) * frac / 3, kind)
                }
                _ => FaultEvent::at_load((total_loads - 1) * frac / 3, kind),
            };
            accel.inject_fault_plan(FaultPlan::with_events(FaultSpec::with_rate(0, 0), vec![ev]));
            let (entries, _) = drive(&mut accel);
            assert_eq!(
                entries, clean,
                "{kind:?} at fraction {frac}/3 perturbed the marshaled stream"
            );
            let st = accel.fault_stats();
            assert!(st.injected >= 1, "{kind:?} at {frac}/3 never injected");
            if kind == FaultKind::PageFault || kind == FaultKind::Preempt {
                assert!(st.traps >= 1, "{kind:?} must take a precise trap");
                assert_eq!(st.traps, st.restores, "every trap must restore");
            }
        }
    }
}

#[test]
fn rate_based_faults_preserve_the_converted_matrix() {
    let a = fixture();
    let conv = CsrToBandedTmu::new(&a);
    let mut probe = recorder_accel(&conv, &a);
    probe.inject_fault_plan(FaultPlan::with_events(FaultSpec::with_rate(0, 0), vec![]));
    let (clean, _) = drive(&mut probe);

    for seed in [3u64, 17, 91] {
        let mut accel = recorder_accel(&conv, &a);
        accel.inject_fault_plan(
            FaultPlan::from_spec(FaultSpec::with_rate(seed, 10_000), 0).expect("active spec"),
        );
        let (entries, _) = drive(&mut accel);
        assert!(accel.fault_stats().injected > 0, "seed {seed} was a no-op");
        assert_eq!(entries, clean, "seed {seed} perturbed the stream");
    }

    // And the functional rebuild still matches the software reference.
    let got = conv.convert();
    assert_eq!(got.ptrs(), conv.reference().ptrs());
    assert_eq!(got.deltas(), conv.reference().deltas());
    let bits: Vec<u64> = got.vals().iter().map(|v| v.to_bits()).collect();
    let want: Vec<u64> = conv
        .reference()
        .vals()
        .iter()
        .map(|v| v.to_bits())
        .collect();
    assert_eq!(bits, want);
}
