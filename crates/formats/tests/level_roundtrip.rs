//! Property tests for the banded and hashed level layouts: encoding a
//! CSR matrix and decoding it back is the identity, and each layout's
//! structural invariants hold on arbitrary sparsity patterns — the
//! format-level mirror of the tensor crate's BCSR round-trip suite.

use proptest::prelude::*;

use tmu_formats::{BandedMatrix, FormatKind, FormatMatrix, HashedMatrix};
use tmu_tensor::{CooMatrix, CsrMatrix};

const ROWS: usize = 37;
const COLS: usize = 41;

fn triplets() -> impl Strategy<Value = Vec<(u32, u32, f64)>> {
    proptest::collection::btree_map((0u32..ROWS as u32, 0u32..COLS as u32), 0.25f64..4.0, 0..200)
        .prop_map(|m| m.into_iter().map(|((r, c), v)| (r, c, v)).collect())
}

fn csr_of(ts: Vec<(u32, u32, f64)>) -> CsrMatrix {
    CsrMatrix::from_coo(&CooMatrix::from_triplets(ROWS, COLS, ts).expect("in range"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn banded_roundtrips_csr_exactly(ts in triplets()) {
        let csr = csr_of(ts);
        let banded = BandedMatrix::from_csr(&csr);
        prop_assert_eq!(banded.nnz(), csr.nnz());
        // Exact structural round-trip: pointers, indexes, and values —
        // stored zeros included — come back verbatim.
        prop_assert_eq!(banded.to_csr(), csr);
    }

    #[test]
    fn banded_coords_stay_inside_the_measured_band(ts in triplets()) {
        let csr = csr_of(ts);
        let banded = BandedMatrix::from_csr(&csr);
        let (lo, hi) = (banded.bw_lo() as i64, banded.bw_hi() as i64);
        prop_assert!(lo + hi + 1 == i64::from(banded.bandwidth()) || csr.nnz() == 0);
        for r in 0..banded.rows() {
            for (c, _) in banded.row(r) {
                let off = i64::from(c) - r as i64;
                prop_assert!((-lo..=hi).contains(&off), "row {r} col {c} outside band");
            }
        }
    }

    #[test]
    fn hashed_roundtrips_csr_exactly(ts in triplets()) {
        let csr = csr_of(ts);
        let hashed = HashedMatrix::from_csr(&csr);
        prop_assert_eq!(hashed.nnz(), csr.nnz());
        // `row_sorted` restores coordinate order, so the decode is exact
        // even though the slot tables store hash order.
        prop_assert_eq!(hashed.to_csr(), csr);
    }

    #[test]
    fn hashed_slots_are_injective_and_probe_exact(ts in triplets()) {
        let csr = csr_of(ts);
        let hashed = HashedMatrix::from_csr(&csr);
        let mut seen = std::collections::BTreeSet::new();
        for r in 0..csr.rows() {
            for (c, v) in csr.row(r) {
                let slot = hashed.slot_index(r, c).expect("stored entry probes to a slot");
                prop_assert!(seen.insert(slot), "slot {slot} assigned twice");
                prop_assert_eq!(hashed.get(r, c).map(f64::to_bits), Some(v.to_bits()));
            }
        }
        prop_assert!(hashed.load_factor() <= 1.0);
    }

    #[test]
    fn every_format_kind_roundtrips(ts in triplets()) {
        let csr = csr_of(ts);
        for kind in FormatKind::ALL {
            let back = FormatMatrix::encode(kind, &csr).decode();
            prop_assert_eq!(back.row_ptrs(), csr.row_ptrs(), "{}", kind);
            prop_assert_eq!(back.col_idxs(), csr.col_idxs(), "{}", kind);
            let bits: Vec<u64> = back.vals().iter().map(|v| v.to_bits()).collect();
            let want: Vec<u64> = csr.vals().iter().map(|v| v.to_bits()).collect();
            prop_assert_eq!(bits, want, "{}", kind);
        }
    }
}
