//! Typed AST of einsum expressions with format annotations.

use tmu_tensor::level::FormatDescriptor;

/// A byte range into the source expression.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// First byte.
    pub start: usize,
    /// One past the last byte.
    pub end: usize,
}

impl Span {
    /// Builds a span.
    pub fn new(start: usize, end: usize) -> Self {
        Self { start, end }
    }

    /// A zero-width span at `at`.
    pub fn point(at: usize) -> Self {
        Self { start: at, end: at }
    }
}

/// One index slot of an access: the variable name plus an optional
/// format annotation (`j:csr`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Index {
    /// Index variable name.
    pub name: String,
    /// Annotation as written, if any.
    pub annotation: Option<String>,
    /// Source range of the slot.
    pub span: Span,
}

/// A tensor access `A(i,j:csr)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Access {
    /// Tensor name.
    pub tensor: String,
    /// Index slots in storage order.
    pub indices: Vec<Index>,
    /// Resolved whole-tensor format (annotation or per-rank default).
    pub format: FormatDescriptor,
    /// Source range of the whole access.
    pub span: Span,
}

impl Access {
    /// Tensor order of the access.
    pub fn rank(&self) -> usize {
        self.indices.len()
    }

    /// Index variable names in storage order.
    pub fn index_names(&self) -> Vec<&str> {
        self.indices.iter().map(|i| i.name.as_str()).collect()
    }

    /// Whether level `l` has data-dependent (compressed) traversal.
    pub fn level_is_sparse(&self, l: usize) -> bool {
        self.format.levels()[l].is_data_dependent()
    }

    /// Position of index variable `var` in this access, if present.
    pub fn level_of(&self, var: &str) -> Option<usize> {
        self.indices.iter().position(|i| i.name == var)
    }
}

/// A parsed, validated expression: `output = Σ_terms Π_factors access`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Expr {
    /// Left-hand-side access (the result).
    pub output: Access,
    /// Sum of products: each term is a non-empty list of factors.
    pub terms: Vec<Vec<Access>>,
    /// The source text.
    pub text: String,
}

impl Expr {
    /// All right-hand-side accesses, term-major.
    pub fn rhs_accesses(&self) -> impl Iterator<Item = &Access> {
        self.terms.iter().flatten()
    }

    /// Index variables reduced away (bound on the right, absent on the
    /// left), in first-appearance order.
    pub fn reduction_indices(&self) -> Vec<String> {
        let out: Vec<&str> = self.output.index_names();
        let mut red = Vec::new();
        for a in self.rhs_accesses() {
            for ix in &a.indices {
                if !out.contains(&ix.name.as_str()) && !red.contains(&ix.name) {
                    red.push(ix.name.clone());
                }
            }
        }
        red
    }
}
