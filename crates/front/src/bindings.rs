//! Binding concrete tensor storage to expression accesses.
//!
//! A [`TensorData`] is the front-end's format-agnostic view of one bound
//! tensor: a stack of per-level arrays (mirroring
//! `tmu_tensor::level::FormatDescriptor`) plus the value array, each with
//! both host data and its simulated region. The interpreter walks the
//! host arrays; the code generator emits streams over the regions.

use std::collections::BTreeMap;
use std::sync::Arc;

use tmu::MemImage;
use tmu_formats::{FormatKind, FormatMatrix};
use tmu_kernels::data::{CsfOnSim, CsrOnSim, DcsrOnSim, DenseOnSim};
use tmu_sim::{AddressMap, Region};
use tmu_tensor::level::LevelFormat;
use tmu_tensor::{gen, CooMatrix, CsfTensor, CsrMatrix, DcsrMatrix};

use crate::ast::Expr;
use crate::{ErrorKind, FrontError, Span};

/// One level of a bound tensor.
#[derive(Debug, Clone)]
pub enum LevelData {
    /// A dense dimension of `size` coordinates (nothing stored).
    Dense {
        /// Dimension size.
        size: usize,
    },
    /// A compressed level: stored coordinates, delimited by the parent's
    /// pointer pair when non-root (`ptrs` is `None` at the root, where
    /// the single fiber spans all stored nodes).
    Compressed {
        /// Pointer array and its region (absent at the root level).
        ptrs: Option<(Arc<Vec<u32>>, Region)>,
        /// Coordinate array and its region.
        idxs: (Arc<Vec<u32>>, Region),
    },
}

/// A tensor bound for both functional interpretation and TMU lowering.
#[derive(Debug, Clone)]
pub struct TensorData {
    /// Name the expression refers to it by.
    pub name: String,
    /// Per-dimension level data, root first.
    pub levels: Vec<LevelData>,
    /// Values and their region.
    pub vals: (Arc<Vec<f64>>, Region),
    /// Logical dimension sizes.
    pub dims: Vec<usize>,
}

impl TensorData {
    /// Wraps a bound CSR matrix (dense rows ∘ compressed columns).
    pub fn from_csr(name: &str, s: &CsrOnSim) -> Self {
        Self {
            name: name.to_owned(),
            levels: vec![
                LevelData::Dense { size: s.rows },
                LevelData::Compressed {
                    ptrs: Some((Arc::clone(&s.ptrs), s.ptrs_r)),
                    idxs: (Arc::clone(&s.idxs), s.idxs_r),
                },
            ],
            vals: (Arc::clone(&s.vals), s.vals_r),
            dims: vec![s.rows, s.cols],
        }
    }

    /// Wraps a bound DCSR matrix (both dimensions compressed).
    pub fn from_dcsr(name: &str, s: &DcsrOnSim) -> Self {
        Self {
            name: name.to_owned(),
            levels: vec![
                LevelData::Compressed {
                    ptrs: None,
                    idxs: (Arc::clone(&s.row_idxs), s.row_idxs_r),
                },
                LevelData::Compressed {
                    ptrs: Some((Arc::clone(&s.row_ptrs), s.row_ptrs_r)),
                    idxs: (Arc::clone(&s.idxs), s.idxs_r),
                },
            ],
            vals: (Arc::clone(&s.vals), s.vals_r),
            dims: vec![s.rows, s.cols],
        }
    }

    /// Wraps a bound CSF tensor (all levels compressed).
    pub fn from_csf(name: &str, s: &CsfOnSim) -> Self {
        let order = s.dims.len();
        let levels = (0..order)
            .map(|l| LevelData::Compressed {
                ptrs: (l > 0).then(|| (Arc::clone(&s.ptrs[l - 1]), s.ptrs_r[l - 1])),
                idxs: (Arc::clone(&s.idxs[l]), s.idxs_r[l]),
            })
            .collect();
        Self {
            name: name.to_owned(),
            levels,
            vals: (Arc::clone(&s.vals), s.vals_r),
            dims: s.dims.clone(),
        }
    }

    /// Wraps a bound dense vector.
    pub fn dense_vec(name: &str, s: &DenseOnSim) -> Self {
        Self {
            name: name.to_owned(),
            levels: vec![LevelData::Dense { size: s.len() }],
            vals: (Arc::clone(&s.data), s.region),
            dims: vec![s.len()],
        }
    }

    /// Wraps a bound sparse vector (one compressed level).
    pub fn sparse_vec(
        name: &str,
        dim: usize,
        idxs: (Arc<Vec<u32>>, Region),
        vals: (Arc<Vec<f64>>, Region),
    ) -> Self {
        Self {
            name: name.to_owned(),
            levels: vec![LevelData::Compressed { ptrs: None, idxs }],
            vals,
            dims: vec![dim],
        }
    }

    /// Tensor order.
    pub fn order(&self) -> usize {
        self.levels.len()
    }

    /// Whether level `l` is compressed.
    pub fn is_compressed(&self, l: usize) -> bool {
        matches!(self.levels[l], LevelData::Compressed { .. })
    }

    /// Position range of the fiber hanging off parent position `parent`
    /// at level `l`. Dense levels span their full dimension; compressed
    /// roots span all stored nodes.
    pub fn fiber(&self, l: usize, parent: usize) -> (usize, usize) {
        match &self.levels[l] {
            LevelData::Dense { size } => (0, *size),
            LevelData::Compressed { ptrs: None, idxs } => (0, idxs.0.len()),
            LevelData::Compressed {
                ptrs: Some((p, _)), ..
            } => (p[parent] as usize, p[parent + 1] as usize),
        }
    }

    /// Coordinate of position `pos` at compressed level `l` (`pos` itself
    /// offset-adjusted for dense levels by the caller).
    pub fn coord(&self, l: usize, pos: usize) -> u32 {
        match &self.levels[l] {
            LevelData::Dense { .. } => pos as u32,
            LevelData::Compressed { idxs, .. } => idxs.0[pos],
        }
    }

    /// Value at leaf position `pos`.
    pub fn value(&self, pos: usize) -> f64 {
        self.vals.0[pos]
    }
}

/// All tensors bound to an expression, by name.
#[derive(Debug, Clone, Default)]
pub struct Bindings {
    tensors: BTreeMap<String, TensorData>,
}

impl Bindings {
    /// An empty binding set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds (or replaces) a tensor.
    pub fn insert(&mut self, t: TensorData) {
        self.tensors.insert(t.name.clone(), t);
    }

    /// Looks up a tensor, reporting a spanned error against `span`.
    pub fn get(&self, name: &str, span: Span) -> Result<&TensorData, FrontError> {
        self.tensors.get(name).ok_or_else(|| {
            FrontError::new(
                ErrorKind::Binding,
                span,
                format!("no tensor bound for {name:?}"),
            )
        })
    }

    /// Size of index variable `var`, from the first bound access that
    /// binds it.
    pub fn dim_of(&self, expr: &Expr, var: &str) -> Result<usize, FrontError> {
        for a in expr.rhs_accesses() {
            if let Some(l) = a.level_of(var) {
                let t = self.get(&a.tensor, a.span)?;
                if t.order() != a.rank() {
                    return Err(FrontError::new(
                        ErrorKind::Binding,
                        a.span,
                        format!(
                            "{} is bound with order {} but accessed with rank {}",
                            a.tensor,
                            t.order(),
                            a.rank()
                        ),
                    ));
                }
                return Ok(t.dims[l]);
            }
        }
        Err(FrontError::new(
            ErrorKind::Binding,
            Span::point(0),
            format!("index {var:?} appears in no bound access"),
        ))
    }
}

/// The result of [`auto_bind`]: bindings plus the address map and memory
/// image they live in (callers allocate output regions from the same map).
#[derive(Debug)]
pub struct AutoBound {
    /// Bound tensors.
    pub binds: Bindings,
    /// The address map holding every region.
    pub map: AddressMap,
    /// The memory image the TMU's functional engine reads.
    pub image: MemImage,
}

fn name_seed(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Deterministically binds every tensor of `expr`, deriving all operands
/// from `base`:
///
/// * the first distinct rank-2 tensor is `base` itself, the second its
///   transpose, later ones deterministic uniform matrices;
/// * a K-term sum of single DCSR accesses splits `base`'s rows cyclically
///   over the terms (row `i` of term `t` is row `i·K + t` of `base`,
///   the SpKAdd construction);
/// * rank-3 CSF tensors are deterministic random tensors;
/// * rank-1 operands use the deterministic generator formulas of the
///   hand-written kernels (dense `0.5 + (j mod 97)/97`, sparse stride 5
///   with `0.5 + (j mod 67)/67`);
/// * unresolved dimensions default to 32.
pub fn auto_bind(expr: &Expr, base: &CsrMatrix) -> Result<AutoBound, FrontError> {
    let mut map = AddressMap::new();
    let mut image = MemImage::new();
    let mut binds = Bindings::new();
    let mut var_dims: BTreeMap<String, usize> = BTreeMap::new();

    // The K-way DCSR split applies when every term is a single DCSR
    // access over the same index variables.
    let k_split = expr.terms.len() > 1
        && expr.terms.iter().all(|t| {
            t.len() == 1
                && t[0].rank() == 2
                && t[0].level_is_sparse(0)
                && t[0].index_names() == expr.terms[0][0].index_names()
        });
    let k = expr.terms.len();
    let split_rows = base.rows() / k.max(1);
    if k_split && split_rows == 0 {
        return Err(FrontError::new(
            ErrorKind::Binding,
            expr.output.span,
            format!("base matrix has fewer than {k} rows to split"),
        ));
    }

    // Pass 1: pin dimensions from rank-2 accesses against `base`.
    let mut rank2_seen = 0usize;
    for a in expr.rhs_accesses() {
        if a.rank() == 2 {
            let (d0, d1) = if k_split {
                (split_rows, base.cols())
            } else if rank2_seen == 1 {
                (base.cols(), base.rows())
            } else {
                (base.rows(), base.cols())
            };
            var_dims.entry(a.indices[0].name.clone()).or_insert(d0);
            var_dims.entry(a.indices[1].name.clone()).or_insert(d1);
            rank2_seen += 1;
        }
    }
    let dim = |var_dims: &mut BTreeMap<String, usize>, name: &str| -> usize {
        *var_dims.entry(name.to_owned()).or_insert(32)
    };

    let mut rank2_bound = 0usize;
    for (t, term) in expr.terms.iter().enumerate() {
        for a in term {
            if binds.get(&a.tensor, a.span).is_ok() {
                continue;
            }
            let dims: Vec<usize> = a
                .indices
                .iter()
                .map(|ix| dim(&mut var_dims, &ix.name))
                .collect();
            let data = match a.rank() {
                1 if a.level_is_sparse(0) => {
                    let n = dims[0];
                    let idx: Vec<u32> = (0..n).step_by(5).map(|j| j as u32).collect();
                    let val: Vec<f64> = idx.iter().map(|&j| 0.5 + (j % 67) as f64 / 67.0).collect();
                    let idx = Arc::new(idx);
                    let val = Arc::new(val);
                    let idx_r = map.alloc_elems(&format!("{}.idxs", a.tensor), idx.len().max(1), 4);
                    let val_r = map.alloc_elems(&format!("{}.vals", a.tensor), val.len().max(1), 8);
                    image.bind_u32(idx_r, Arc::clone(&idx));
                    image.bind_f64(val_r, Arc::clone(&val));
                    TensorData::sparse_vec(&a.tensor, n, (idx, idx_r), (val, val_r))
                }
                1 => {
                    let n = dims[0];
                    let data: Vec<f64> = (0..n).map(|j| 0.5 + (j % 97) as f64 / 97.0).collect();
                    let s = DenseOnSim::bind(&mut map, &mut image, &a.tensor, data);
                    TensorData::dense_vec(&a.tensor, &s)
                }
                2 if k_split => {
                    let mut triplets = Vec::new();
                    for i in 0..split_rows {
                        for (c, v) in base.row(i * k + t) {
                            triplets.push((i as u32, c, v));
                        }
                    }
                    let coo = CooMatrix::from_triplets(split_rows, base.cols(), triplets)
                        .expect("rows in range");
                    let m = DcsrMatrix::from_coo(&coo);
                    let s = DcsrOnSim::bind(&mut map, &mut image, &a.tensor, &m);
                    TensorData::from_dcsr(&a.tensor, &s)
                }
                2 => {
                    let m = match rank2_bound {
                        0 => base.clone(),
                        1 => base.transpose(),
                        _ => gen::uniform(dims[0], dims[1], 4, name_seed(&a.tensor)),
                    };
                    if m.rows() != dims[0] || m.cols() != dims[1] {
                        return Err(FrontError::new(
                            ErrorKind::Binding,
                            a.span,
                            format!(
                                "{} needs shape {}×{} but the derived matrix is {}×{}",
                                a.tensor,
                                dims[0],
                                dims[1],
                                m.rows(),
                                m.cols()
                            ),
                        ));
                    }
                    rank2_bound += 1;
                    // Physical level layouts (banded/hashed/blocked) reach
                    // the lowerer through the canonical-stream seam: the
                    // derived matrix is encoded into the annotated layout,
                    // then decoded back to canonical CSR (exact by the
                    // formats crate's round-trip guarantee) and streamed as
                    // CSR. The encode/decode pair is what the generated
                    // conversion routines charge for in the bench ablation.
                    let physical = match a.format.levels()[1] {
                        LevelFormat::Banded => Some(FormatKind::Banded),
                        LevelFormat::Hashed => Some(FormatKind::Hashed),
                        LevelFormat::Blocked => Some(FormatKind::Bcsr),
                        _ => None,
                    };
                    if let Some(kind) = physical {
                        let canonical = FormatMatrix::encode(kind, &m).decode();
                        let s = CsrOnSim::bind(&mut map, &mut image, &a.tensor, &canonical);
                        TensorData::from_csr(&a.tensor, &s)
                    } else if a.level_is_sparse(0) {
                        let d = DcsrMatrix::from_csr(&m);
                        let s = DcsrOnSim::bind(&mut map, &mut image, &a.tensor, &d);
                        TensorData::from_dcsr(&a.tensor, &s)
                    } else {
                        let s = CsrOnSim::bind(&mut map, &mut image, &a.tensor, &m);
                        TensorData::from_csr(&a.tensor, &s)
                    }
                }
                3 => {
                    let nnz = (dims.iter().product::<usize>() / 8).clamp(64, 4096);
                    let coo = gen::random_tensor(&dims, nnz, name_seed(&a.tensor));
                    let csf = CsfTensor::from_coo(&coo);
                    let s = CsfOnSim::bind(&mut map, &mut image, &a.tensor, &csf);
                    TensorData::from_csf(&a.tensor, &s)
                }
                r => {
                    return Err(FrontError::new(
                        ErrorKind::Unsupported,
                        a.span,
                        format!("auto-binding rank-{r} tensors is not supported"),
                    ));
                }
            };
            binds.insert(data);
        }
    }

    Ok(AutoBound { binds, map, image })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse;

    #[test]
    fn auto_bind_spmv_shapes() {
        let e = parse("y(i) = A(i,j:csr) * x(j)").expect("valid");
        let base = gen::uniform(64, 48, 4, 1);
        let b = auto_bind(&e, &base).expect("binds");
        let a = b.binds.get("A", Span::point(0)).expect("A bound");
        assert_eq!(a.dims, vec![64, 48]);
        assert!(!a.is_compressed(0));
        assert!(a.is_compressed(1));
        let x = b.binds.get("x", Span::point(0)).expect("x bound");
        assert_eq!(x.dims, vec![48]);
        assert_eq!(b.binds.dim_of(&e, "j").expect("dim"), 48);
    }

    #[test]
    fn auto_bind_splits_sums() {
        let e = parse("Z(i,j) = A(i,j:dcsr) + B(i,j:dcsr) + C(i,j:dcsr)").expect("valid");
        let base = gen::uniform(96, 32, 4, 2);
        let b = auto_bind(&e, &base).expect("binds");
        for name in ["A", "B", "C"] {
            let t = b.binds.get(name, Span::point(0)).expect("bound");
            assert_eq!(t.dims, vec![32, 32]);
            assert!(t.is_compressed(0) && t.is_compressed(1));
        }
        // The split preserves every non-zero of the base rows it covers.
        let total: usize = ["A", "B", "C"]
            .iter()
            .map(|n| b.binds.get(n, Span::point(0)).expect("bound").vals.0.len())
            .sum();
        let want: usize = (0..96).map(|i| base.row(i).count()).sum();
        assert_eq!(total, want);
    }

    #[test]
    fn auto_bind_transposes_second_matrix() {
        let e = parse("Z(i,j) = A(i,k:csr) * B(k,j:csr)").expect("valid");
        let base = gen::uniform(40, 24, 3, 3);
        let b = auto_bind(&e, &base).expect("binds");
        assert_eq!(
            b.binds.get("A", Span::point(0)).expect("A").dims,
            vec![40, 24]
        );
        assert_eq!(
            b.binds.get("B", Span::point(0)).expect("B").dims,
            vec![24, 40]
        );
    }

    #[test]
    fn fiber_navigation_matches_csr() {
        let m = gen::uniform(16, 16, 3, 4);
        let mut map = AddressMap::new();
        let mut image = MemImage::new();
        let s = CsrOnSim::bind(&mut map, &mut image, "a", &m);
        let t = TensorData::from_csr("a", &s);
        assert_eq!(t.fiber(0, 0), (0, 16));
        for r in 0..16 {
            assert_eq!(t.fiber(1, r), s.row_range(r));
        }
        let (b, e) = t.fiber(1, 3);
        for p in b..e {
            assert_eq!(t.coord(1, p), s.idxs[p]);
            assert_eq!(t.value(p), s.vals[p]);
        }
    }
}
