//! Iteration graph + merge lattice construction.
//!
//! For each index variable the pass decides which operand fibers
//! co-iterate and how they merge, following the `tmu_tensor::merge`
//! semantics: products of compressed fibers intersect (conjunctive, ×),
//! sums union (disjunctive, +), and a single compressed fiber against
//! dense operands walks alone (lockstep with gathers). The loop order is
//! the topological order induced by each access's storage order.

use std::fmt;

use crate::ast::Expr;
use crate::{ErrorKind, FrontError, Span};

/// How one index variable's loop iterates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoopKind {
    /// No compressed fiber binds the variable: a counted dense loop.
    Dense,
    /// Exactly one compressed fiber drives the loop; dense operands are
    /// gathered at its coordinates.
    Walk,
    /// As [`LoopKind::Walk`], but the loop is innermost and non-root, so
    /// it is lane-split and runs lockstep across TUs.
    WalkVec,
    /// Two or more compressed fibers in the same product term: iterate
    /// their sorted intersection (conjunctive merge).
    Conj,
    /// Compressed fibers from different sum terms: iterate their sorted
    /// union (disjunctive merge).
    Disj,
}

impl LoopKind {
    /// The lattice symbol used in diagnostics (`×` conjunctive, `+`
    /// disjunctive, `∥` lockstep walks, `·` dense).
    pub fn symbol(self) -> &'static str {
        match self {
            LoopKind::Dense => "·",
            LoopKind::Walk | LoopKind::WalkVec => "∥",
            LoopKind::Conj => "×",
            LoopKind::Disj => "+",
        }
    }
}

/// One compressed fiber that participates in a loop's merge: the access
/// is `expr.terms[term][factor]` and the fiber is its level `level`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Driver {
    /// Sum-term index into `Expr::terms`.
    pub term: usize,
    /// Factor index within the term.
    pub factor: usize,
    /// Level of that access bound to the loop's variable.
    pub level: usize,
}

/// One loop of the iteration graph, outermost first.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndexLoop {
    /// The index variable.
    pub var: String,
    /// Merge-lattice decision for the loop.
    pub kind: LoopKind,
    /// Compressed fibers co-iterated by the loop (empty for dense loops).
    pub drivers: Vec<Driver>,
    /// Position of the variable in the output access, `None` when it is
    /// reduced away.
    pub output_pos: Option<usize>,
}

/// The ordered iteration graph of an expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IterationGraph {
    /// Loops, outermost first.
    pub loops: Vec<IndexLoop>,
}

impl IterationGraph {
    /// Builds the iteration graph: topologically orders the index
    /// variables under every access's storage-order constraints (ties
    /// broken by first appearance in the expression), then classifies
    /// each loop's merge.
    pub fn build(expr: &Expr) -> Result<Self, FrontError> {
        // Variables in first-appearance order across the rhs.
        let mut vars: Vec<String> = Vec::new();
        for a in expr.rhs_accesses() {
            for ix in &a.indices {
                if !vars.contains(&ix.name) {
                    vars.push(ix.name.clone());
                }
            }
        }

        // Storage-order edges: within each access, index n must enclose
        // index n+1.
        let n = vars.len();
        let pos = |name: &str| vars.iter().position(|v| v == name).expect("collected");
        let mut edges = vec![vec![false; n]; n];
        let mut indeg = vec![0usize; n];
        for a in expr.rhs_accesses() {
            for w in a.indices.windows(2) {
                let (from, to) = (pos(&w[0].name), pos(&w[1].name));
                if !edges[from][to] {
                    edges[from][to] = true;
                    indeg[to] += 1;
                }
            }
        }

        // Stable Kahn: among ready variables pick the earliest-appearing.
        let mut order = Vec::with_capacity(n);
        let mut done = vec![false; n];
        while order.len() < n {
            let Some(next) = (0..n).find(|&v| !done[v] && indeg[v] == 0) else {
                return Err(FrontError::new(
                    ErrorKind::Unsupported,
                    Span::new(0, expr.text.len()),
                    "the accesses impose contradictory index nesting orders (cycle)",
                ));
            };
            done[next] = true;
            order.push(next);
            for to in 0..n {
                if edges[next][to] {
                    indeg[to] -= 1;
                }
            }
        }

        // Classify each loop.
        let out_names = expr.output.index_names();
        let mut loops = Vec::with_capacity(n);
        for &v in &order {
            let var = &vars[v];
            let mut drivers = Vec::new();
            for (t, term) in expr.terms.iter().enumerate() {
                for (f, a) in term.iter().enumerate() {
                    if let Some(l) = a.level_of(var) {
                        if a.level_is_sparse(l) {
                            drivers.push(Driver {
                                term: t,
                                factor: f,
                                level: l,
                            });
                        }
                    }
                }
            }
            let terms_with: usize = {
                let mut ts: Vec<usize> = drivers.iter().map(|d| d.term).collect();
                ts.dedup();
                ts.len()
            };
            let kind = if drivers.is_empty() {
                LoopKind::Dense
            } else if terms_with > 1 {
                LoopKind::Disj
            } else if drivers.len() > 1 {
                LoopKind::Conj
            } else {
                LoopKind::Walk
            };
            loops.push(IndexLoop {
                var: var.clone(),
                kind,
                drivers,
                output_pos: out_names.iter().position(|o| *o == var.as_str()),
            });
        }

        // A lone compressed walk at the innermost, non-root level is
        // lane-split (the Figure 8 LockStep pattern).
        if let Some(last) = loops.last_mut() {
            if last.kind == LoopKind::Walk && last.drivers[0].level > 0 {
                last.kind = LoopKind::WalkVec;
            }
        }

        Ok(Self { loops })
    }

    /// The loop variables, outermost first.
    pub fn order(&self) -> Vec<&str> {
        self.loops.iter().map(|l| l.var.as_str()).collect()
    }

    /// The loop for `var`, if any.
    pub fn loop_of(&self, var: &str) -> Option<&IndexLoop> {
        self.loops.iter().find(|l| l.var == var)
    }
}

impl fmt::Display for IterationGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (depth, l) in self.loops.iter().enumerate() {
            let role = match l.output_pos {
                Some(p) => format!("output[{p}]"),
                None => "reduction".to_owned(),
            };
            write!(
                f,
                "{:indent$}for {} {:?} {} ({role}",
                "",
                l.var,
                l.kind,
                l.kind.symbol(),
                indent = depth * 2
            )?;
            if l.drivers.is_empty() {
                write!(f, ", dense loop)")?;
            } else {
                let list: Vec<String> = l
                    .drivers
                    .iter()
                    .map(|d| format!("t{}.f{}.l{}", d.term, d.factor, d.level))
                    .collect();
                write!(f, ", drivers {})", list.join(" "))?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse;

    fn kinds(src: &str) -> Vec<(String, LoopKind)> {
        let e = parse(src).expect("valid");
        let g = IterationGraph::build(&e).expect("acyclic");
        g.loops.into_iter().map(|l| (l.var, l.kind)).collect()
    }

    #[test]
    fn spmv_lattice() {
        assert_eq!(
            kinds("y(i) = A(i,j:csr) * x(j)"),
            vec![
                ("i".to_owned(), LoopKind::Dense),
                ("j".to_owned(), LoopKind::WalkVec),
            ]
        );
    }

    #[test]
    fn spmspv_lattice_is_conjunctive() {
        assert_eq!(
            kinds("y(i) = A(i,j:csr) * x(j:sparse)"),
            vec![
                ("i".to_owned(), LoopKind::Dense),
                ("j".to_owned(), LoopKind::Conj),
            ]
        );
    }

    #[test]
    fn spkadd_lattice_is_disjunctive() {
        assert_eq!(
            kinds("Z(i,j) = A(i,j:dcsr) + B(i,j:dcsr)"),
            vec![
                ("i".to_owned(), LoopKind::Disj),
                ("j".to_owned(), LoopKind::Disj),
            ]
        );
    }

    #[test]
    fn spmspm_orders_k_between_i_and_j() {
        assert_eq!(
            kinds("Z(i,j) = A(i,k:csr) * B(k,j:csr)"),
            vec![
                ("i".to_owned(), LoopKind::Dense),
                ("k".to_owned(), LoopKind::Walk),
                ("j".to_owned(), LoopKind::WalkVec),
            ]
        );
    }

    #[test]
    fn csf_contraction_mixes_kinds() {
        assert_eq!(
            kinds("y(i) = A(i,j:csr) * T(j,k,l:csf) * x(l:dense)"),
            vec![
                ("i".to_owned(), LoopKind::Dense),
                ("j".to_owned(), LoopKind::Conj),
                ("k".to_owned(), LoopKind::Walk),
                ("l".to_owned(), LoopKind::WalkVec),
            ]
        );
    }

    #[test]
    fn root_walk_stays_single() {
        // SpTTV: the root compressed level walks without lane-splitting.
        assert_eq!(
            kinds("Z(i,j) = T(i,j,k) * c(k)"),
            vec![
                ("i".to_owned(), LoopKind::Walk),
                ("j".to_owned(), LoopKind::Walk),
                ("k".to_owned(), LoopKind::WalkVec),
            ]
        );
    }

    #[test]
    fn cyclic_order_is_rejected() {
        let e = parse("Z(i,j) = A(i,j:dcsr) + B(j,i:dcsr)").expect("parses");
        let err = IterationGraph::build(&e).expect_err("cycle");
        assert_eq!(err.kind, ErrorKind::Unsupported);
    }

    #[test]
    fn display_shows_lattice() {
        let e = parse("y(i) = A(i,j:csr) * x(j:sparse)").expect("valid");
        let g = IterationGraph::build(&e).expect("acyclic");
        let s = g.to_string();
        assert!(s.contains("for j Conj ×"), "{s}");
        assert!(s.contains("reduction"), "{s}");
    }
}
