//! Reference interpreter: executes the iteration graph directly against
//! bound tensor storage.
//!
//! Every term is evaluated by a recursive co-iteration in the graph's
//! loop order — compressed fibers of the same term intersect
//! conjunctively (sorted two-pointer style), dense operands are gathered
//! at the merged coordinates — and terms accumulate disjunctively into a
//! coordinate-keyed output map. This is the oracle the TMU code
//! generator is differentially tested against.

use std::collections::BTreeMap;

use crate::ast::Expr;
use crate::bindings::{Bindings, LevelData, TensorData};
use crate::graph::IterationGraph;
use crate::{ErrorKind, FrontError};

/// One factor's participation in a loop.
#[derive(Debug, Clone, Copy)]
struct Part {
    factor: usize,
    level: usize,
    sparse: bool,
}

struct TermEval<'a> {
    datas: Vec<&'a TensorData>,
    /// Participants per graph loop (empty when the term skips the var).
    parts: Vec<Vec<Part>>,
    out_pos: Vec<Option<usize>>,
}

/// Evaluates `expr` against `binds`, returning the output as a map from
/// output coordinates (in output index order) to values.
pub fn evaluate(
    expr: &Expr,
    graph: &IterationGraph,
    binds: &Bindings,
) -> Result<BTreeMap<Vec<u32>, f64>, FrontError> {
    let mut out = BTreeMap::new();
    for term in &expr.terms {
        // Bind and validate the term's factors.
        let mut datas = Vec::with_capacity(term.len());
        for a in term {
            let d = binds.get(&a.tensor, a.span)?;
            if d.order() != a.rank() {
                return Err(FrontError::new(
                    ErrorKind::Binding,
                    a.span,
                    format!(
                        "{} is bound with order {} but accessed with rank {}",
                        a.tensor,
                        d.order(),
                        a.rank()
                    ),
                ));
            }
            for (l, ix) in a.indices.iter().enumerate() {
                if a.level_is_sparse(l) != d.is_compressed(l) {
                    return Err(FrontError::new(
                        ErrorKind::Binding,
                        ix.span,
                        format!(
                            "{} level {l} is annotated {} but bound {}",
                            a.tensor,
                            if a.level_is_sparse(l) {
                                "compressed"
                            } else {
                                "dense"
                            },
                            if d.is_compressed(l) {
                                "compressed"
                            } else {
                                "dense"
                            },
                        ),
                    ));
                }
            }
            datas.push(d);
        }
        // Participants per loop, plus dimension agreement per variable.
        let mut parts = Vec::with_capacity(graph.loops.len());
        for l in &graph.loops {
            let mut ps = Vec::new();
            let mut dim: Option<usize> = None;
            for (f, a) in term.iter().enumerate() {
                if let Some(lv) = a.level_of(&l.var) {
                    let d = datas[f].dims[lv];
                    if let Some(prev) = dim {
                        if prev != d {
                            return Err(FrontError::new(
                                ErrorKind::Binding,
                                a.indices[lv].span,
                                format!(
                                    "index {:?} spans {d} in {} but {prev} elsewhere",
                                    l.var, a.tensor
                                ),
                            ));
                        }
                    }
                    dim = Some(d);
                    ps.push(Part {
                        factor: f,
                        level: lv,
                        sparse: a.level_is_sparse(lv),
                    });
                }
            }
            parts.push(ps);
        }
        let ev = TermEval {
            datas,
            parts,
            out_pos: graph.loops.iter().map(|l| l.output_pos).collect(),
        };
        let mut pos = vec![0usize; term.len()];
        let mut key = vec![0u32; expr.output.rank()];
        walk(&ev, 0, &mut pos, &mut key, &mut out);
    }
    Ok(out)
}

fn walk(
    ev: &TermEval<'_>,
    depth: usize,
    pos: &mut Vec<usize>,
    key: &mut Vec<u32>,
    out: &mut BTreeMap<Vec<u32>, f64>,
) {
    if depth == ev.parts.len() {
        let v = ev
            .datas
            .iter()
            .zip(pos.iter())
            .fold(1.0f64, |acc, (d, &p)| acc * d.value(p));
        match out.entry(key.clone()) {
            std::collections::btree_map::Entry::Vacant(e) => {
                e.insert(v);
            }
            std::collections::btree_map::Entry::Occupied(mut e) => {
                *e.get_mut() += v;
            }
        }
        return;
    }
    let ps = &ev.parts[depth];
    if ps.is_empty() {
        // The term does not bind this variable (another term's loop).
        walk(ev, depth + 1, pos, key, out);
        return;
    }
    let saved: Vec<usize> = ps.iter().map(|p| pos[p.factor]).collect();
    let drivers: Vec<&Part> = ps.iter().filter(|p| p.sparse).collect();

    let emit = |c: u32,
                driver_pos: &[(usize, usize)],
                pos: &mut Vec<usize>,
                key: &mut Vec<u32>,
                out: &mut BTreeMap<Vec<u32>, f64>| {
        for &(f, p) in driver_pos {
            pos[f] = p;
        }
        for part in ps.iter().filter(|p| !p.sparse) {
            let size = match &ev.datas[part.factor].levels[part.level] {
                LevelData::Dense { size } => *size,
                LevelData::Compressed { .. } => unreachable!("dense participant"),
            };
            pos[part.factor] = saved[ps
                .iter()
                .position(|q| q.factor == part.factor)
                .expect("present")]
                * size
                + c as usize;
        }
        if let Some(op) = ev.out_pos[depth] {
            key[op] = c;
        }
        walk(ev, depth + 1, pos, key, out);
    };

    match drivers.len() {
        0 => {
            let size = match &ev.datas[ps[0].factor].levels[ps[0].level] {
                LevelData::Dense { size } => *size,
                LevelData::Compressed { .. } => unreachable!("no drivers"),
            };
            for c in 0..size {
                emit(c as u32, &[], pos, key, out);
            }
        }
        1 => {
            let d = drivers[0];
            let data = ev.datas[d.factor];
            let (b, e) = data.fiber(
                d.level,
                saved[ps
                    .iter()
                    .position(|q| q.factor == d.factor)
                    .expect("present")],
            );
            for p in b..e {
                emit(data.coord(d.level, p), &[(d.factor, p)], pos, key, out);
            }
        }
        _ => {
            // Conjunctive merge: sorted intersection of all driver fibers.
            let fibers: Vec<(usize, usize)> = drivers
                .iter()
                .map(|d| {
                    ev.datas[d.factor].fiber(
                        d.level,
                        saved[ps
                            .iter()
                            .position(|q| q.factor == d.factor)
                            .expect("present")],
                    )
                })
                .collect();
            let mut heads: Vec<usize> = fibers.iter().map(|&(b, _)| b).collect();
            'merge: loop {
                // Current maximum head coordinate across drivers.
                let mut target = 0u32;
                for (i, d) in drivers.iter().enumerate() {
                    if heads[i] >= fibers[i].1 {
                        break 'merge;
                    }
                    target = target.max(ev.datas[d.factor].coord(d.level, heads[i]));
                }
                // Advance everyone to the target; restart if any overshoots.
                let mut matched = true;
                for (i, d) in drivers.iter().enumerate() {
                    let data = ev.datas[d.factor];
                    while heads[i] < fibers[i].1 && data.coord(d.level, heads[i]) < target {
                        heads[i] += 1;
                    }
                    if heads[i] >= fibers[i].1 {
                        break 'merge;
                    }
                    if data.coord(d.level, heads[i]) != target {
                        matched = false;
                    }
                }
                if matched {
                    let dp: Vec<(usize, usize)> = drivers
                        .iter()
                        .enumerate()
                        .map(|(i, d)| (d.factor, heads[i]))
                        .collect();
                    emit(target, &dp, pos, key, out);
                    for h in heads.iter_mut() {
                        *h += 1;
                    }
                }
            }
        }
    }
    // Restore parent positions for the caller's next coordinate.
    for (p, &s) in ps.iter().zip(&saved) {
        pos[p.factor] = s;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bindings::auto_bind;
    use crate::parse::parse;
    use tmu_tensor::gen;

    fn run(src: &str, base: &tmu_tensor::CsrMatrix) -> BTreeMap<Vec<u32>, f64> {
        let e = parse(src).expect("valid");
        let g = IterationGraph::build(&e).expect("acyclic");
        let b = auto_bind(&e, base).expect("binds");
        evaluate(&e, &g, &b.binds).expect("evaluates")
    }

    #[test]
    fn spmv_matches_dense_oracle() {
        let a = gen::uniform(32, 24, 3, 7);
        let out = run("y(i) = A(i,j:csr) * x(j)", &a);
        let x: Vec<f64> = (0..24).map(|j| 0.5 + (j % 97) as f64 / 97.0).collect();
        for i in 0..32usize {
            let want: f64 = a.row(i).map(|(c, v)| v * x[c as usize]).sum();
            let got = out.get(&vec![i as u32]).copied().unwrap_or(0.0);
            assert!((got - want).abs() < 1e-9, "row {i}: {got} vs {want}");
        }
    }

    #[test]
    fn conjunctive_merge_matches() {
        let a = gen::uniform(24, 40, 4, 9);
        let out = run("y(i) = A(i,j:csr) * x(j:sparse)", &a);
        // Reconstruct the sparse vector exactly as auto_bind does.
        let xi: Vec<u32> = (0..40).step_by(5).map(|j| j as u32).collect();
        let xv: Vec<f64> = xi.iter().map(|&j| 0.5 + (j % 67) as f64 / 67.0).collect();
        for i in 0..24usize {
            let want: f64 = a
                .row(i)
                .filter_map(|(c, v)| xi.binary_search(&c).ok().map(|k| v * xv[k]))
                .sum();
            let got = out.get(&vec![i as u32]).copied().unwrap_or(0.0);
            assert!((got - want).abs() < 1e-9, "row {i}");
        }
    }

    #[test]
    fn disjunctive_sum_matches() {
        let base = gen::uniform(64, 32, 3, 11);
        let out = run("Z(i,j) = A(i,j:dcsr) + B(i,j:dcsr)", &base);
        // Term t covers base rows i*2 + t.
        for (key, v) in &out {
            let (i, j) = (key[0] as usize, key[1]);
            let want: f64 = (0..2)
                .flat_map(|t| base.row(i * 2 + t).filter(move |&(c, _)| c == j))
                .map(|(_, v)| v)
                .sum();
            assert!((v - want).abs() < 1e-9, "({i},{j})");
        }
        let nnz: usize = (0..64).map(|i| base.row(i).count()).sum();
        assert!(out.len() <= nnz);
        assert!(!out.is_empty());
    }

    #[test]
    fn three_level_contraction_runs() {
        let base = gen::uniform(24, 16, 3, 13);
        let out = run("y(i) = A(i,j:csr) * T(j,k,l:csf) * x(l:dense)", &base);
        assert!(!out.is_empty());
        // Spot-check against a brute-force contraction.
        let e = parse("y(i) = A(i,j:csr) * T(j,k,l:csf) * x(l:dense)").expect("valid");
        let b = auto_bind(&e, &base).expect("binds");
        let t = b.binds.get("T", crate::Span::point(0)).expect("T");
        let x = b.binds.get("x", crate::Span::point(0)).expect("x");
        // Dense T for the oracle.
        let mut dense_t = vec![vec![vec![0.0f64; t.dims[2]]; t.dims[1]]; t.dims[0]];
        let (jb, je) = t.fiber(0, 0);
        for jp in jb..je {
            let j = t.coord(0, jp) as usize;
            let (kb, ke) = t.fiber(1, jp);
            for kp in kb..ke {
                let k = t.coord(1, kp) as usize;
                let (lb, le) = t.fiber(2, kp);
                for lp in lb..le {
                    dense_t[j][k][t.coord(2, lp) as usize] = t.value(lp);
                }
            }
        }
        for i in 0..24usize {
            let mut want = 0.0;
            for (j, av) in base.row(i) {
                for fiber in &dense_t[j as usize] {
                    for (l, tv) in fiber.iter().enumerate() {
                        want += av * tv * x.value(l);
                    }
                }
            }
            let got = out.get(&vec![i as u32]).copied().unwrap_or(0.0);
            assert!((got - want).abs() < 1e-9, "row {i}: {got} vs {want}");
        }
    }
}
