//! Einsum front-end for the TMU reproduction.
//!
//! The paper programs the TMU by hand, one Figure 8 configuration per
//! kernel; this crate makes the engine *programmable*: it parses
//! einsum-style expressions with format annotations —
//!
//! ```text
//! y(i) = A(i,j:csr) * x(j)
//! Z(i,j) = A(i,j:dcsr) + B(i,j:dcsr) + C(i,j:dcsr)
//! ```
//!
//! — builds an iteration graph with a merge lattice per index variable
//! (conjunctive for products, disjunctive for sums, lockstep for
//! vectorized scans: the semantics pinned in `tmu_tensor::merge`), and
//! lowers it through two backends:
//!
//! 1. [`interp::evaluate`] — a reference interpreter executing the
//!    iteration graph directly against the bound tensor storage;
//! 2. [`lower::lower`] — a code generator emitting a [`tmu::Program`]
//!    via the existing `ProgramBuilder`, one layer per loop level, with a
//!    generic [`lower::ExprHandler`] carrying the host-side compute.
//!
//! Malformed input never panics: every failure is a [`FrontError`] with a
//! byte span into the source text.

#![warn(missing_docs)]

pub mod ast;
pub mod bindings;
pub mod graph;
pub mod interp;
pub mod lower;
pub mod parse;
pub mod workload;

use std::error::Error;
use std::fmt;

pub use ast::{Access, Expr, Span};
pub use bindings::{Bindings, TensorData};
pub use graph::{IterationGraph, LoopKind};
pub use lower::{ExprHandler, Lowered};
pub use workload::ExprWorkload;

/// What went wrong, coarsely (the message carries the detail).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// The text does not match the expression grammar.
    Parse,
    /// The right-hand side is missing entirely.
    EmptyRhs,
    /// A format annotation names no known format.
    UnknownFormat,
    /// A format annotation (or reuse of a tensor) contradicts the rank.
    RankMismatch,
    /// An output index is not bound by every right-hand-side term.
    UnboundIndex,
    /// An index repeats within a single access.
    DuplicateIndex,
    /// The expression is valid but outside what a backend can lower.
    Unsupported,
    /// Tensor data bound to the expression does not fit it.
    Binding,
}

/// A spanned front-end error. `span` is a byte range into the source
/// expression (`start == end` marks a point, e.g. unexpected end of
/// input).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrontError {
    /// Error category.
    pub kind: ErrorKind,
    /// Human-readable description.
    pub msg: String,
    /// Byte range of the offending text.
    pub span: Span,
}

impl FrontError {
    /// Builds an error.
    pub fn new(kind: ErrorKind, span: Span, msg: impl Into<String>) -> Self {
        Self {
            kind,
            msg: msg.into(),
            span,
        }
    }

    /// Renders the error with a caret line under the offending span.
    pub fn render(&self, src: &str) -> String {
        let start = self.span.start.min(src.len());
        let end = self.span.end.clamp(start, src.len());
        let mut caret = String::new();
        for _ in 0..start {
            caret.push(' ');
        }
        for _ in start..end.max(start + 1) {
            caret.push('^');
        }
        format!("error: {}\n  {}\n  {}", self.msg, src, caret)
    }
}

impl fmt::Display for FrontError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:?} error at {}..{}: {}",
            self.kind, self.span.start, self.span.end, self.msg
        )
    }
}

impl Error for FrontError {}
