//! Lowering the iteration graph to a TMU [`Program`] plus a host-side
//! callback plan.
//!
//! Each loop of the graph becomes one TMU layer; per loop, every
//! compressed driver fiber gets a traversal unit (dense roots via
//! `DnsFbrT`, nested levels via `RngFbrT` with a parent-layer pointer
//! pair), dense operands ride the driving TU as chained gathers, and the
//! merge lattice picks the inter-layer mode (`Single`, `LockStep`,
//! `ConjMrg`, `DisjMrg`). The innermost loop registers the body callback
//! (id [`CB_BODY`]); reductions add a commit callback (id [`CB_COMMIT`])
//! on the fiber-end event, and outer disjunctive layers latch their
//! merged coordinate through slot callbacks (ids from [`CB_SLOT_BASE`]).
//!
//! The companion [`ExprHandler`] consumes the outQ entries exactly the
//! way the hand-written kernel handlers do, so lowered programs are
//! bit-identical to their hand-written counterparts on the same data.

use std::collections::btree_map::Entry;
use std::collections::BTreeMap;

use tmu::{
    CallbackHandler, Event, LayerId, LayerMode, OperandId, OutQEntry, Program, ProgramBuilder,
    StreamRef, StreamTy, TuId,
};
use tmu_sim::{Deps, Machine, OpId, Region, Site, VecMachine};

use crate::ast::{Access, Expr};
use crate::bindings::{Bindings, LevelData, TensorData};
use crate::graph::{IterationGraph, LoopKind};
use crate::{ErrorKind, FrontError, Span};

/// Callback id of the innermost (body) `Ite` event.
pub const CB_BODY: u32 = 0;
/// Callback id of the reduction commit (innermost `End` event).
pub const CB_COMMIT: u32 = 1;
/// First callback id used to latch outer disjunctive coordinates.
pub const CB_SLOT_BASE: u32 = 16;

const S_COMMIT: u16 = 400;

/// Where one factor's value arrives in the body callback entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FactorSrc {
    /// Operand at this position is a per-lane vector.
    Vec(usize),
    /// Operand at this position is a scalar.
    Scalar(usize),
}

/// How one output coordinate is recovered on the host.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoordSrc {
    /// Scalar operand at this position of the carrying entry (the body
    /// entry for scatters, the commit entry for reductions).
    Operand(usize),
    /// Latched by the coordinate callback `CB_SLOT_BASE + slot`.
    Slot(usize),
    /// The per-lane key operand of a lockstep scatter body.
    Lane,
    /// The first-active-lane key of a merged scatter body.
    Merged,
}

/// The host-side computation shape of the body callback.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BodyKind {
    /// Multiply factors lane-wise, sum the lanes, and accumulate;
    /// committed (and reset) by the `End` callback.
    Reduce {
        /// Factor sources in expression order.
        factors: Vec<FactorSrc>,
    },
    /// One output element per active lane of the body entry.
    ScatterLanes {
        /// Position of the per-lane coordinate (key) vector operand.
        keys: usize,
        /// Factor sources in expression order.
        factors: Vec<FactorSrc>,
    },
    /// One output element per merged step: the coordinate comes from the
    /// first active lane, the value is the zero-padded lane sum.
    ScatterMerged {
        /// Position of the per-term key vector operand.
        keys: usize,
        /// Position of the per-term value vector operand.
        vals: usize,
    },
    /// One output element per body step at scalar coordinates.
    ScatterPoint {
        /// Factor sources in expression order.
        factors: Vec<FactorSrc>,
    },
}

/// Everything [`ExprHandler`] needs to turn outQ entries into results.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HandlerPlan {
    /// Output coordinate sources, in output index order.
    pub out_coords: Vec<CoordSrc>,
    /// Body computation shape.
    pub body: BodyKind,
    /// Number of coordinate slots latched by outer disjunctive layers.
    pub slots: usize,
}

/// A lowered expression: the TMU program plus its host callback plan.
#[derive(Debug, Clone)]
pub struct Lowered {
    /// The validated TMU program (single shard, full input range).
    pub program: Program,
    /// Host-side plan for interpreting the outQ entries.
    pub plan: HandlerPlan,
}

/// Value stream(s) of one factor once its leaf level is bound.
#[derive(Debug, Clone)]
enum ValS {
    /// One stream, plus the lane (within its layer) it lives on.
    One(StreamRef, usize),
    /// One stream per lockstep lane.
    PerLane(Vec<StreamRef>),
}

/// Per-factor lowering state between loops: the pointer pair delimiting
/// the factor's next compressed level (and the layer/lane it lives on),
/// and the factor's value stream(s) once the leaf is reached.
#[derive(Debug, Clone, Default)]
struct Cursor {
    /// `(beg, end, layer, lane)` of the pending child-level bounds.
    bounds: Option<(StreamRef, StreamRef, usize, usize)>,
    /// `(streams, layer)` of the leaf values.
    val: Option<(ValS, usize)>,
}

/// How a loop's merged coordinate is obtained.
#[derive(Debug, Clone)]
enum CoordHandle {
    Scalar(StreamRef),
    Slot(usize),
    Lanes(Vec<StreamRef>),
    MergedKeys(Vec<StreamRef>),
}

fn unsup(span: Span, msg: impl Into<String>) -> FrontError {
    FrontError::new(ErrorKind::Unsupported, span, msg)
}

/// The coordinate-array region of a compressed level.
fn idxs_region(data: &TensorData, level: usize) -> Region {
    match &data.levels[level] {
        LevelData::Compressed { idxs, .. } => idxs.1,
        LevelData::Dense { .. } => unreachable!("caller checked the level is compressed"),
    }
}

/// The pointer-array region delimiting fibers of level `level`, required
/// to exist (i.e. the level is compressed and non-root).
fn child_ptrs_region(data: &TensorData, level: usize, a: &Access) -> Result<Region, FrontError> {
    match &data.levels[level] {
        LevelData::Compressed {
            ptrs: Some((_, r)), ..
        } => Ok(*r),
        LevelData::Compressed { ptrs: None, .. } => Err(FrontError::new(
            ErrorKind::Binding,
            a.span,
            format!(
                "{} level {level} is compressed but has no pointer array",
                a.tensor
            ),
        )),
        LevelData::Dense { .. } => Err(unsup(
            a.indices[level].span,
            format!(
                "a dense level below a compressed level of {} is not lowerable",
                a.tensor
            ),
        )),
    }
}

/// Lowers `expr` to a TMU program over the regions recorded in `binds`.
///
/// The generated program covers the full input range in a single shard;
/// `lanes` sets the lockstep width of the innermost loop when the merge
/// lattice lane-splits it.
///
/// # Errors
///
/// Returns a spanned [`FrontError`] when a binding is missing or
/// inconsistent, or when the expression's shape falls outside the
/// supported lowering patterns (`ErrorKind::Unsupported`).
pub fn lower(
    expr: &Expr,
    graph: &IterationGraph,
    binds: &Bindings,
    lanes: usize,
) -> Result<Lowered, FrontError> {
    let lanes = lanes.clamp(1, 64);
    let nloops = graph.loops.len();
    let whole = Span::new(0, expr.text.len());
    if nloops == 0 {
        return Err(unsup(
            whole,
            "expressions with no index variables are not lowerable",
        ));
    }

    // Bind and validate every factor up front.
    let mut datas: Vec<Vec<&TensorData>> = Vec::with_capacity(expr.terms.len());
    for term in &expr.terms {
        let mut ds = Vec::with_capacity(term.len());
        for a in term {
            let d = binds.get(&a.tensor, a.span)?;
            if d.order() != a.rank() {
                return Err(FrontError::new(
                    ErrorKind::Binding,
                    a.span,
                    format!(
                        "{} is bound with order {} but accessed with rank {}",
                        a.tensor,
                        d.order(),
                        a.rank()
                    ),
                ));
            }
            for (l, ix) in a.indices.iter().enumerate() {
                if a.level_is_sparse(l) != d.is_compressed(l) {
                    return Err(FrontError::new(
                        ErrorKind::Binding,
                        ix.span,
                        format!(
                            "{} level {l} annotation disagrees with its binding",
                            a.tensor
                        ),
                    ));
                }
            }
            ds.push(d);
        }
        datas.push(ds);
    }

    // Restrictions on sums: single-access terms, no reductions, and every
    // variable stored the same way (compressed in every term or dense in
    // every term) — that is what maps onto a disjunctive merge per layer.
    let multi = expr.terms.len() > 1;
    if multi {
        for term in &expr.terms {
            if term.len() != 1 {
                return Err(unsup(
                    term[0].span,
                    "sum terms must each be a single access to lower to a disjunctive merge",
                ));
            }
        }
        if !expr.reduction_indices().is_empty() {
            return Err(unsup(
                whole,
                "sums with reduction indices are not lowerable",
            ));
        }
        for l in &graph.loops {
            if !l.drivers.is_empty() && l.drivers.len() != expr.terms.len() {
                return Err(unsup(
                    whole,
                    format!(
                        "index {:?} must be stored the same way (all compressed or all \
                         dense) in every sum term",
                        l.var
                    ),
                ));
            }
        }
    }

    let mut b = ProgramBuilder::new();
    let mut layer_ids: Vec<LayerId> = Vec::with_capacity(nloops);
    let mut cursors: Vec<Vec<Cursor>> = expr
        .terms
        .iter()
        .map(|t| vec![Cursor::default(); t.len()])
        .collect();
    let mut coords: Vec<CoordHandle> = Vec::with_capacity(nloops);
    let mut slots = 0usize;
    // Body-layer TUs and their parent lanes, for forwarding decisions.
    let mut body_tus: Vec<(TuId, usize)> = Vec::new();

    for (li, lp) in graph.loops.iter().enumerate() {
        let is_body = li + 1 == nloops;
        let mode = match lp.kind {
            LoopKind::Dense | LoopKind::Walk => LayerMode::Single,
            LoopKind::WalkVec => LayerMode::LockStep,
            LoopKind::Conj => LayerMode::ConjMrg,
            LoopKind::Disj => LayerMode::DisjMrg,
        };
        let lid = b.layer(mode);
        layer_ids.push(lid);
        let merge = matches!(lp.kind, LoopKind::Conj | LoopKind::Disj);

        // Participants: every access binding this loop's variable,
        // term-major (the same order the graph records drivers in).
        struct P {
            term: usize,
            factor: usize,
            level: usize,
            sparse: bool,
        }
        let mut parts: Vec<P> = Vec::new();
        for (t, term) in expr.terms.iter().enumerate() {
            for (f, a) in term.iter().enumerate() {
                if let Some(l) = a.level_of(&lp.var) {
                    parts.push(P {
                        term: t,
                        factor: f,
                        level: l,
                        sparse: a.level_is_sparse(l),
                    });
                }
            }
        }

        // Pass A: one TU (or one per lockstep lane) per compressed driver.
        let mut next_lane = 0usize; // TU lanes are allocated in creation order
        let mut anchor: Option<(TuId, StreamRef, usize)> = None;
        let mut lane_tus: Vec<TuId> = Vec::new();
        let mut lane_coords: Vec<StreamRef> = Vec::new();
        let mut merged_keys: Vec<StreamRef> = Vec::new();
        let mut layer_tus: Vec<(TuId, usize)> = Vec::new();
        for p in parts.iter().filter(|p| p.sparse) {
            let a = &expr.terms[p.term][p.factor];
            let data = datas[p.term][p.factor];
            let cur = &mut cursors[p.term][p.factor];
            let width = if lp.kind == LoopKind::WalkVec {
                lanes
            } else {
                1
            };
            let (tus, parent_lane) = if p.level == 0 {
                if li > 0 && graph.loops[li - 1].kind == LoopKind::Disj {
                    return Err(unsup(
                        a.span,
                        "cannot start a new fiber tree below a disjunctive merge",
                    ));
                }
                if width != 1 {
                    return Err(unsup(a.span, "a root fiber cannot be lane-split"));
                }
                let stored = data.fiber(0, 0).1 as i64;
                (vec![b.dns_fbrt(lid, 0, stored, 1)], 0usize)
            } else {
                let Some((bb, ee, blayer, blane)) = cur.bounds else {
                    return Err(unsup(
                        a.indices[p.level].span,
                        format!(
                            "no pointer bounds reach level {} of {}; its levels must \
                             occupy consecutive loops",
                            p.level, a.tensor
                        ),
                    ));
                };
                if blayer + 1 != li {
                    return Err(unsup(
                        a.indices[p.level].span,
                        format!(
                            "{}'s levels must occupy consecutive loops (bounds are {} \
                             layers up)",
                            a.tensor,
                            li - blayer
                        ),
                    ));
                }
                let tus = (0..width)
                    .map(|lane| b.rng_fbrt(lid, bb, ee, lane as i64, width as i64))
                    .collect();
                (tus, blane)
            };
            cur.bounds = None;
            let first_lane = next_lane;
            next_lane += tus.len();
            let is_leaf = p.level + 1 == data.order();
            let idxs_r = idxs_region(data, p.level);
            let mut cks = Vec::with_capacity(tus.len());
            let mut vals = Vec::with_capacity(tus.len());
            for &tu in &tus {
                let ck = b.mem_stream(tu, idxs_r.base, 4, StreamTy::Index);
                if merge {
                    b.set_key(tu, ck);
                }
                cks.push(ck);
                if is_leaf {
                    vals.push(b.mem_stream(tu, data.vals.1.base, 8, StreamTy::Value));
                }
            }
            if is_leaf {
                cur.val = Some((
                    if width == 1 {
                        ValS::One(vals[0], first_lane)
                    } else {
                        ValS::PerLane(vals)
                    },
                    li,
                ));
            } else {
                if width != 1 {
                    return Err(unsup(a.span, "a lane-split fiber cannot have child levels"));
                }
                let ptrs = child_ptrs_region(data, p.level + 1, a)?;
                cur.bounds = Some((
                    b.mem_stream(tus[0], ptrs.base, 4, StreamTy::Index),
                    b.mem_stream(tus[0], ptrs.base + 4, 4, StreamTy::Index),
                    li,
                    first_lane,
                ));
            }
            if anchor.is_none() {
                anchor = Some((tus[0], cks[0], first_lane));
            }
            if width != 1 {
                lane_tus = tus.clone();
                lane_coords = cks.clone();
            }
            merged_keys.push(cks[0]);
            for &tu in &tus {
                layer_tus.push((tu, parent_lane));
            }
        }

        // Pass B: dense participants — a shared counted TU for dense
        // loops, chained gathers off the driving TU otherwise.
        let mut dense_tu: Option<(TuId, usize)> = None;
        let mut dense_dim: Option<usize> = None;
        for p in parts.iter().filter(|p| !p.sparse) {
            let a = &expr.terms[p.term][p.factor];
            let data = datas[p.term][p.factor];
            if p.level != 0 {
                return Err(unsup(
                    a.indices[p.level].span,
                    format!(
                        "a dense level below the root of {} is not lowerable; use a \
                         compressed annotation",
                        a.tensor
                    ),
                ));
            }
            let dim = data.dims[0];
            let is_leaf = data.order() == 1;
            match lp.kind {
                LoopKind::Dense => {
                    if let Some(d) = dense_dim {
                        if d != dim {
                            return Err(FrontError::new(
                                ErrorKind::Binding,
                                a.span,
                                format!(
                                    "index {:?} spans {dim} in {} but {d} elsewhere",
                                    lp.var, a.tensor
                                ),
                            ));
                        }
                    }
                    dense_dim = Some(dim);
                    let (dtu, dlane) = *dense_tu.get_or_insert_with(|| {
                        let tu = b.dns_fbrt(lid, 0, dim as i64, 1);
                        let lane = next_lane;
                        next_lane += 1;
                        layer_tus.push((tu, 0));
                        (tu, lane)
                    });
                    let cur = &mut cursors[p.term][p.factor];
                    if is_leaf {
                        cur.val = Some((
                            ValS::One(
                                b.mem_stream(dtu, data.vals.1.base, 8, StreamTy::Value),
                                dlane,
                            ),
                            li,
                        ));
                    } else {
                        let ptrs = child_ptrs_region(data, 1, a)?;
                        cur.bounds = Some((
                            b.mem_stream(dtu, ptrs.base, 4, StreamTy::Index),
                            b.mem_stream(dtu, ptrs.base + 4, 4, StreamTy::Index),
                            li,
                            dlane,
                        ));
                    }
                }
                LoopKind::Walk | LoopKind::Conj => {
                    let (atu, ack, alane) = anchor.expect("walk/conj loops have a driver");
                    let cur = &mut cursors[p.term][p.factor];
                    if is_leaf {
                        cur.val = Some((
                            ValS::One(
                                b.mem_stream_indexed(
                                    atu,
                                    data.vals.1.base,
                                    8,
                                    StreamTy::Value,
                                    ack,
                                ),
                                alane,
                            ),
                            li,
                        ));
                    } else {
                        let ptrs = child_ptrs_region(data, 1, a)?;
                        cur.bounds = Some((
                            b.mem_stream_indexed(atu, ptrs.base, 4, StreamTy::Index, ack),
                            b.mem_stream_indexed(atu, ptrs.base + 4, 4, StreamTy::Index, ack),
                            li,
                            alane,
                        ));
                    }
                }
                LoopKind::WalkVec => {
                    if !is_leaf {
                        return Err(unsup(
                            a.span,
                            "gathers below the lane-split loop are not lowerable",
                        ));
                    }
                    let gathered: Vec<StreamRef> = lane_tus
                        .iter()
                        .zip(&lane_coords)
                        .map(|(&tu, &ck)| {
                            b.mem_stream_indexed(tu, data.vals.1.base, 8, StreamTy::Value, ck)
                        })
                        .collect();
                    cursors[p.term][p.factor].val = Some((ValS::PerLane(gathered), li));
                }
                LoopKind::Disj => {
                    return Err(unsup(
                        a.span,
                        "dense operands cannot join a disjunctive merge",
                    ));
                }
            }
        }

        // The loop's coordinate handle.
        let handle = match lp.kind {
            LoopKind::Dense => CoordHandle::Scalar(b.ite(dense_tu.expect("dense loop has a TU").0)),
            LoopKind::Walk | LoopKind::Conj => {
                CoordHandle::Scalar(anchor.expect("driver exists").1)
            }
            LoopKind::WalkVec => CoordHandle::Lanes(lane_coords.clone()),
            LoopKind::Disj => {
                if is_body {
                    CoordHandle::MergedKeys(merged_keys.clone())
                } else if lp.output_pos.is_some() {
                    let op = b.vec_operand(lid, &merged_keys);
                    b.callback(lid, Event::Ite, CB_SLOT_BASE + slots as u32, &[op]);
                    slots += 1;
                    CoordHandle::Slot(slots - 1)
                } else {
                    return Err(unsup(
                        whole,
                        format!("reduced disjunctive index {:?} is not lowerable", lp.var),
                    ));
                }
            }
        };
        coords.push(handle);
        if is_body {
            body_tus = layer_tus;
        }
    }

    // Body assembly.
    let body_loop = graph.loops.last().expect("nloops > 0");
    let body_li = nloops - 1;
    let body_lid = layer_ids[body_li];
    let out_rank = expr.output.rank();
    let out_names = expr.output.index_names();
    let mut out_coords = vec![CoordSrc::Operand(usize::MAX); out_rank];

    let plan = if multi {
        // Sums: the body must be a disjunctive merge over single-factor
        // terms whose value leaves sit in the body layer.
        let CoordHandle::MergedKeys(keys) = &coords[body_li] else {
            return Err(unsup(
                whole,
                "sums must merge compressed fibers at the innermost loop",
            ));
        };
        let mut vals = Vec::with_capacity(expr.terms.len());
        for (t, term) in expr.terms.iter().enumerate() {
            let Some((ValS::One(v, _), vl)) = cursors[t][0].val.clone() else {
                return Err(unsup(term[0].span, "sum term never reaches its value leaf"));
            };
            if vl != body_li {
                return Err(unsup(
                    term[0].span,
                    "sum terms must store their values at the innermost loop",
                ));
            }
            vals.push(v);
        }
        let keys_op = b.vec_operand(body_lid, keys);
        let vals_op = b.vec_operand(body_lid, &vals);
        let mut ops = vec![keys_op, vals_op];
        fill_outer_coords(
            &mut b,
            body_lid,
            graph,
            &coords,
            &out_names,
            &mut out_coords,
            &mut ops,
        );
        out_coords[body_loop.output_pos.expect("sums have no reductions")] = CoordSrc::Merged;
        b.callback(body_lid, Event::Ite, CB_BODY, &ops);
        HandlerPlan {
            out_coords,
            body: BodyKind::ScatterMerged { keys: 0, vals: 1 },
            slots,
        }
    } else {
        // Single product term.
        let term = &expr.terms[0];
        let scatter_lanes = body_loop.output_pos.is_some() && body_loop.kind == LoopKind::WalkVec;
        let mut ops: Vec<OperandId> = Vec::new();
        let keys_pos = if scatter_lanes {
            let CoordHandle::Lanes(keys) = &coords[body_li] else {
                unreachable!("lockstep loops carry lane coordinates")
            };
            ops.push(b.vec_operand(body_lid, keys));
            Some(0)
        } else {
            None
        };
        let mut factors = Vec::with_capacity(term.len());
        for (f, a) in term.iter().enumerate() {
            let Some((vs, vl)) = cursors[0][f].val.clone() else {
                return Err(unsup(a.span, "factor never reaches its value leaf"));
            };
            match vs {
                ValS::PerLane(streams) => {
                    factors.push(FactorSrc::Vec(ops.len()));
                    ops.push(b.vec_operand(body_lid, &streams));
                }
                ValS::One(s, slane) => {
                    let src = if vl + 1 == body_li
                        && !body_tus.is_empty()
                        && body_tus.iter().all(|&(_, parent)| parent == slane)
                    {
                        // Forward through the body TUs (the SpMSpM shape):
                        // every lane replicates the parent value.
                        let fwds: Vec<StreamRef> = body_tus
                            .iter()
                            .map(|&(tu, _)| b.fwd_stream(tu, s))
                            .collect();
                        fwds[0]
                    } else {
                        s
                    };
                    factors.push(FactorSrc::Scalar(ops.len()));
                    ops.push(b.scalar_operand(body_lid, src));
                }
            }
        }

        if let Some(bp) = body_loop.output_pos {
            fill_outer_coords(
                &mut b,
                body_lid,
                graph,
                &coords,
                &out_names,
                &mut out_coords,
                &mut ops,
            );
            let body = if let Some(k) = keys_pos {
                out_coords[bp] = CoordSrc::Lane;
                BodyKind::ScatterLanes { keys: k, factors }
            } else {
                // Scalar-coordinate scatter: the body coordinate is one
                // more scalar operand.
                let CoordHandle::Scalar(ck) = &coords[body_li] else {
                    return Err(unsup(
                        whole,
                        "the innermost loop's coordinate is not addressable",
                    ));
                };
                out_coords[bp] = CoordSrc::Operand(ops.len());
                ops.push(b.scalar_operand(body_lid, *ck));
                BodyKind::ScatterPoint { factors }
            };
            b.callback(body_lid, Event::Ite, CB_BODY, &ops);
            HandlerPlan {
                out_coords,
                body,
                slots,
            }
        } else {
            // Reduction: body accumulates, End commits at outer coords.
            b.callback(body_lid, Event::Ite, CB_BODY, &ops);
            let mut commit_ops = Vec::new();
            fill_outer_coords(
                &mut b,
                body_lid,
                graph,
                &coords,
                &out_names,
                &mut out_coords,
                &mut commit_ops,
            );
            b.callback(body_lid, Event::End, CB_COMMIT, &commit_ops);
            HandlerPlan {
                out_coords,
                body: BodyKind::Reduce { factors },
                slots,
            }
        }
    };

    let program = b
        .build()
        .map_err(|e| unsup(whole, format!("lowering produced an invalid program: {e}")))?;
    Ok(Lowered { program, plan })
}

/// Registers scalar-coordinate operands for every *outer* output index
/// and records each coordinate's source in `out_coords`.
fn fill_outer_coords(
    b: &mut ProgramBuilder,
    body_lid: LayerId,
    graph: &IterationGraph,
    coords: &[CoordHandle],
    out_names: &[&str],
    out_coords: &mut [CoordSrc],
    ops: &mut Vec<OperandId>,
) {
    let body_li = graph.loops.len() - 1;
    for (p, name) in out_names.iter().enumerate() {
        let li = graph
            .loops
            .iter()
            .position(|l| l.var == *name)
            .expect("parser guarantees every output index is bound");
        if li == body_li {
            continue; // handled by the body kind
        }
        match &coords[li] {
            CoordHandle::Scalar(s) => {
                out_coords[p] = CoordSrc::Operand(ops.len());
                ops.push(b.scalar_operand(body_lid, *s));
            }
            CoordHandle::Slot(k) => out_coords[p] = CoordSrc::Slot(*k),
            CoordHandle::Lanes(_) | CoordHandle::MergedKeys(_) => {
                unreachable!("lane/merged coordinates only occur at the body loop")
            }
        }
    }
}

fn entry_add(out: &mut BTreeMap<Vec<u32>, f64>, key: Vec<u32>, v: f64) {
    match out.entry(key) {
        Entry::Vacant(e) => {
            e.insert(v);
        }
        Entry::Occupied(mut e) => {
            *e.get_mut() += v;
        }
    }
}

/// Materialized factor values of one body entry.
enum FVal {
    V(Vec<f64>),
    S(f64),
}

fn factor_vals(factors: &[FactorSrc], entry: &OutQEntry) -> Vec<FVal> {
    factors
        .iter()
        .map(|f| match f {
            FactorSrc::Vec(i) => FVal::V(entry.operands[*i].as_f64s()),
            FactorSrc::Scalar(i) => FVal::S(entry.operands[*i].as_f64()),
        })
        .collect()
}

fn lane_product(fv: &[FVal], lane: usize) -> f64 {
    let mut it = fv.iter();
    let first = it.next().expect("at least one factor");
    let mut p = match first {
        FVal::V(v) => v[lane],
        FVal::S(s) => *s,
    };
    for f in it {
        p *= match f {
            FVal::V(v) => v[lane],
            FVal::S(s) => *s,
        };
    }
    p
}

/// Host-side callback handler for lowered expressions.
///
/// Executes the [`HandlerPlan`] with the same arithmetic shapes as the
/// hand-written kernel handlers (lane-wise multiply, left-fold sums,
/// entry-order accumulation), collecting results keyed by output
/// coordinates.
#[derive(Debug)]
pub struct ExprHandler {
    plan: HandlerPlan,
    slots: Vec<i64>,
    acc: f64,
    acc_dep: OpId,
    z_r: Region,
    z_cap: usize,
    written: usize,
    /// Accumulated output, keyed by output coordinates in output order.
    pub out: BTreeMap<Vec<u32>, f64>,
}

impl ExprHandler {
    /// Creates a handler that stores (for timing) into `z_r`, wrapping
    /// after `z_cap` elements.
    pub fn new(plan: HandlerPlan, z_r: Region, z_cap: usize) -> Self {
        let slots = vec![0i64; plan.slots];
        Self {
            plan,
            slots,
            acc: 0.0,
            acc_dep: OpId::NONE,
            z_r,
            z_cap: z_cap.max(1),
            written: 0,
            out: BTreeMap::new(),
        }
    }

    /// Consumes the handler, returning the accumulated output map.
    pub fn into_out(self) -> BTreeMap<Vec<u32>, f64> {
        self.out
    }

    fn coord(&self, spec: CoordSrc, entry: &OutQEntry, special: i64) -> u32 {
        match spec {
            CoordSrc::Operand(i) => entry.operands[i].as_index() as u32,
            CoordSrc::Slot(k) => self.slots[k] as u32,
            CoordSrc::Lane | CoordSrc::Merged => special as u32,
        }
    }

    fn key_for(&self, entry: &OutQEntry, special: i64) -> Vec<u32> {
        self.plan
            .out_coords
            .iter()
            .map(|&c| self.coord(c, entry, special))
            .collect()
    }

    fn store(&mut self, m: &mut VecMachine, dep: OpId) {
        m.store(
            Site(S_COMMIT),
            self.z_r.f64_at(self.written % self.z_cap),
            8,
            Deps::from(dep),
        );
        self.written += 1;
    }
}

impl CallbackHandler for ExprHandler {
    fn handle(&mut self, entry: &OutQEntry, entry_load: OpId, m: &mut VecMachine) {
        if entry.callback >= CB_SLOT_BASE {
            let k = (entry.callback - CB_SLOT_BASE) as usize;
            let keys = entry.operands[0].as_indexes();
            self.slots[k] = keys[entry.mask.trailing_zeros() as usize];
            return;
        }
        match entry.callback {
            CB_BODY => {
                let active = entry.mask.count_ones();
                match self.plan.body.clone() {
                    BodyKind::Reduce { factors } => {
                        let fv = factor_vals(&factors, entry);
                        let width = fv
                            .iter()
                            .filter_map(|f| match f {
                                FVal::V(v) => Some(v.len()),
                                FVal::S(_) => None,
                            })
                            .max()
                            .unwrap_or(1);
                        let mut chunk = 0.0f64;
                        for lane in 0..width {
                            chunk += lane_product(&fv, lane);
                        }
                        self.acc += chunk;
                        let mul = m.vec_op(active, Deps::from(entry_load));
                        self.acc_dep = m.vec_op(active, Deps::on(&[mul, self.acc_dep]));
                    }
                    BodyKind::ScatterLanes { keys, factors } => {
                        let keyv = entry.operands[keys].as_indexes();
                        let fv = factor_vals(&factors, entry);
                        let mul = m.vec_op(active, Deps::from(entry_load));
                        for (lane, &k) in keyv.iter().enumerate() {
                            if entry.mask & (1 << lane) == 0 {
                                continue;
                            }
                            let key = self.key_for(entry, k);
                            entry_add(&mut self.out, key, lane_product(&fv, lane));
                        }
                        self.store(m, mul);
                    }
                    BodyKind::ScatterMerged { keys, vals } => {
                        let keyv = entry.operands[keys].as_indexes();
                        let sum: f64 = entry.operands[vals].as_f64s().iter().sum();
                        let first = entry.mask.trailing_zeros() as usize;
                        let key = self.key_for(entry, keyv[first]);
                        entry_add(&mut self.out, key, sum);
                        let add = m.vec_op(active, Deps::from(entry_load));
                        self.store(m, add);
                    }
                    BodyKind::ScatterPoint { factors } => {
                        let fv = factor_vals(&factors, entry);
                        let key = self.key_for(entry, 0);
                        entry_add(&mut self.out, key, lane_product(&fv, 0));
                        let mul = m.vec_op(active, Deps::from(entry_load));
                        self.store(m, mul);
                    }
                }
            }
            CB_COMMIT => {
                let key = self.key_for(entry, 0);
                let v = self.acc;
                self.acc = 0.0;
                entry_add(&mut self.out, key, v);
                let dep = self.acc_dep;
                self.acc_dep = OpId::NONE;
                self.store(m, dep);
            }
            other => panic!("expression handler: unexpected callback {other}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bindings::auto_bind;
    use crate::graph::IterationGraph;
    use crate::parse::parse;
    use tmu_kernels::mapping::features;
    use tmu_tensor::gen;

    fn lowered(src: &str, base: &tmu_tensor::CsrMatrix) -> Lowered {
        let e = parse(src).expect("valid");
        let g = IterationGraph::build(&e).expect("acyclic");
        let ab = auto_bind(&e, base).expect("binds");
        lower(&e, &g, &ab.binds, 8).expect("lowers")
    }

    #[test]
    fn spmv_features_match_handwritten() {
        let a = gen::uniform(64, 48, 4, 3);
        let l = lowered("y(i) = A(i,j:csr) * x(j)", &a);
        let hand = tmu_kernels::spmv::Spmv::new(&a);
        assert_eq!(
            features(&l.program),
            features(&hand.build_program((0, 64), 8))
        );
        assert!(matches!(l.plan.body, BodyKind::Reduce { .. }));
    }

    #[test]
    fn conj_merge_lowering_builds() {
        let a = gen::uniform(32, 40, 4, 5);
        let l = lowered("y(i) = A(i,j:csr) * x(j:sparse)", &a);
        let f = features(&l.program);
        assert!(f.mem && f.dns && f.rng);
        assert!(f.modes.contains(&LayerMode::ConjMrg));
    }

    #[test]
    fn disjunctive_sum_lowering_builds() {
        let base = gen::uniform(64, 32, 3, 7);
        let l = lowered("Z(i,j) = A(i,j:dcsr) + B(i,j:dcsr)", &base);
        let f = features(&l.program);
        assert_eq!(f.modes, vec![LayerMode::DisjMrg]);
        assert!(matches!(l.plan.body, BodyKind::ScatterMerged { .. }));
        assert_eq!(l.plan.slots, 1);
    }

    #[test]
    fn spmspm_forwards_the_outer_value() {
        let a = gen::uniform(48, 48, 3, 9);
        let l = lowered("Z(i,j) = A(i,k:csr) * B(k,j:csr)", &a);
        let f = features(&l.program);
        assert!(f.fwd, "outer factor should forward through the body lanes");
        assert!(f.chained_mem, "B's pointer pair is a chained gather");
        assert!(matches!(l.plan.body, BodyKind::ScatterLanes { .. }));
    }

    #[test]
    fn unsupported_shapes_error_cleanly() {
        let base = gen::uniform(16, 16, 2, 1);
        let e = parse("Z(i,j) = A(i,j:dcsr) + B(i,j:dense)").expect("parses");
        if let Ok(g) = IterationGraph::build(&e) {
            if let Ok(ab) = auto_bind(&e, &base) {
                let err = lower(&e, &g, &ab.binds, 8).expect_err("must not lower");
                assert!(
                    matches!(err.kind, ErrorKind::Unsupported | ErrorKind::Binding),
                    "{err}"
                );
            }
        }
    }
}
