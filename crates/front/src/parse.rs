//! Parser for einsum expressions with format annotations.
//!
//! Grammar (whitespace-insensitive):
//!
//! ```text
//! expr    := access '=' sum
//! sum     := product ('+' product)*
//! product := access ('*' access)*
//! access  := ident '(' index (',' index)* ')'
//! index   := ident (':' ident)?
//! ```
//!
//! Parsing never panics: every failure is a spanned [`FrontError`].
//! Beyond the grammar, [`parse`] validates the expression semantically —
//! annotations must name known formats of the right rank, a tensor reused
//! across accesses must keep one rank and format, output indices must not
//! repeat and must be bound by every term.

use tmu_tensor::level::{FormatDescriptor, KNOWN_ANNOTATIONS};

use crate::ast::{Access, Expr, Index, Span};
use crate::{ErrorKind, FrontError};

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Ident(String),
    Eq,
    LParen,
    RParen,
    Comma,
    Colon,
    Plus,
    Star,
}

#[derive(Debug, Clone)]
struct Token {
    tok: Tok,
    span: Span,
}

fn lex(src: &str) -> Result<Vec<Token>, FrontError> {
    let bytes = src.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        let single = match c {
            '=' => Some(Tok::Eq),
            '(' => Some(Tok::LParen),
            ')' => Some(Tok::RParen),
            ',' => Some(Tok::Comma),
            ':' => Some(Tok::Colon),
            '+' => Some(Tok::Plus),
            '*' => Some(Tok::Star),
            _ => None,
        };
        if let Some(tok) = single {
            toks.push(Token {
                tok,
                span: Span::new(i, i + 1),
            });
            i += 1;
            continue;
        }
        if c.is_ascii_alphabetic() || c == '_' {
            let start = i;
            while i < bytes.len() {
                let c = bytes[i] as char;
                if c.is_ascii_alphanumeric() || c == '_' {
                    i += 1;
                } else {
                    break;
                }
            }
            toks.push(Token {
                tok: Tok::Ident(src[start..i].to_owned()),
                span: Span::new(start, i),
            });
            continue;
        }
        return Err(FrontError::new(
            ErrorKind::Parse,
            Span::new(i, i + 1),
            format!("unexpected character {c:?}"),
        ));
    }
    Ok(toks)
}

struct Parser<'a> {
    toks: &'a [Token],
    pos: usize,
    end: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<&'a Tok> {
        self.toks.get(self.pos).map(|t| &t.tok)
    }

    fn span_here(&self) -> Span {
        self.toks
            .get(self.pos)
            .map(|t| t.span)
            .unwrap_or(Span::point(self.end))
    }

    fn bump(&mut self) -> Option<&'a Token> {
        let t = self.toks.get(self.pos);
        self.pos += 1;
        t
    }

    fn expect(&mut self, want: &Tok, what: &str) -> Result<Span, FrontError> {
        match self.toks.get(self.pos) {
            Some(t) if t.tok == *want => {
                self.pos += 1;
                Ok(t.span)
            }
            _ => Err(FrontError::new(
                ErrorKind::Parse,
                self.span_here(),
                format!("expected {what}"),
            )),
        }
    }

    fn ident(&mut self, what: &str) -> Result<(String, Span), FrontError> {
        match self.toks.get(self.pos) {
            Some(Token {
                tok: Tok::Ident(s),
                span,
            }) => {
                self.pos += 1;
                Ok((s.clone(), *span))
            }
            _ => Err(FrontError::new(
                ErrorKind::Parse,
                self.span_here(),
                format!("expected {what}"),
            )),
        }
    }

    /// `access := ident '(' index (',' index)* ')'`, format unresolved.
    fn access(&mut self) -> Result<(String, Vec<Index>, Span), FrontError> {
        let (tensor, tspan) = self.ident("a tensor name")?;
        self.expect(&Tok::LParen, "'(' after the tensor name")?;
        let mut indices = Vec::new();
        loop {
            let (name, ispan) = self.ident("an index variable")?;
            let mut span = ispan;
            let mut annotation = None;
            if self.peek() == Some(&Tok::Colon) {
                self.bump();
                let (fmt, fspan) = self.ident("a format annotation after ':'")?;
                span = Span::new(ispan.start, fspan.end);
                annotation = Some((fmt, fspan));
            }
            indices.push((name, annotation, span));
            match self.peek() {
                Some(Tok::Comma) => {
                    self.bump();
                }
                _ => break,
            }
        }
        let close = self.expect(&Tok::RParen, "')' closing the index list")?;
        let span = Span::new(tspan.start, close.end);
        let indices = indices
            .into_iter()
            .map(|(name, ann, span)| Index {
                name,
                annotation: ann.map(|(f, _)| f),
                span,
            })
            .collect();
        Ok((tensor, indices, span))
    }
}

/// Resolves the format of one rhs access from its annotations.
fn resolve_format(
    tensor: &str,
    indices: &[Index],
    spans: &[Span],
) -> Result<FormatDescriptor, FrontError> {
    let rank = indices.len();
    let mut chosen: Option<(&str, Span)> = None;
    for (ix, &span) in indices.iter().zip(spans) {
        if let Some(ann) = &ix.annotation {
            match chosen {
                Some((prev, _)) if prev != ann.as_str() => {
                    return Err(FrontError::new(
                        ErrorKind::Parse,
                        span,
                        format!("conflicting format annotations {prev:?} and {ann:?} on {tensor}"),
                    ));
                }
                _ => chosen = Some((ann.as_str(), span)),
            }
        }
    }
    match chosen {
        None => FormatDescriptor::default_for_rank(rank).ok_or_else(|| {
            FrontError::new(
                ErrorKind::RankMismatch,
                spans.first().copied().unwrap_or(Span::point(0)),
                format!("{tensor} has no indices"),
            )
        }),
        Some((name, span)) => {
            // Annotation names are case-insensitive (the whole-format
            // names share one parser contract with the CLI format names,
            // see `tmu_formats::FormatKind::parse`).
            let folded = name.to_ascii_lowercase();
            if !KNOWN_ANNOTATIONS.contains(&folded.as_str()) {
                return Err(FrontError::new(
                    ErrorKind::UnknownFormat,
                    span,
                    format!("unknown format {name:?} (known: {KNOWN_ANNOTATIONS:?})"),
                ));
            }
            FormatDescriptor::from_annotation(name, rank).ok_or_else(|| {
                FrontError::new(
                    ErrorKind::RankMismatch,
                    span,
                    format!("format {name:?} cannot describe a rank-{rank} tensor"),
                )
            })
        }
    }
}

/// Parses and validates `src` into an [`Expr`].
///
/// # Errors
///
/// Returns a spanned [`FrontError`] on any malformed input; this function
/// never panics.
pub fn parse(src: &str) -> Result<Expr, FrontError> {
    let toks = lex(src)?;
    let mut p = Parser {
        toks: &toks,
        pos: 0,
        end: src.len(),
    };

    // Output access.
    let (out_tensor, out_indices, out_span) = p.access()?;
    for ix in &out_indices {
        if let Some(ann) = &ix.annotation {
            return Err(FrontError::new(
                ErrorKind::Unsupported,
                ix.span,
                format!("format annotation {ann:?} on the output is not supported (the result is always a dense coordinate map)"),
            ));
        }
    }
    // Duplicate output index.
    for (n, ix) in out_indices.iter().enumerate() {
        if out_indices[..n].iter().any(|o| o.name == ix.name) {
            return Err(FrontError::new(
                ErrorKind::DuplicateIndex,
                ix.span,
                format!("output index {:?} repeats", ix.name),
            ));
        }
    }
    let eq_span = p.expect(&Tok::Eq, "'=' after the output access")?;
    if p.peek().is_none() {
        return Err(FrontError::new(
            ErrorKind::EmptyRhs,
            Span::new(eq_span.start, src.len()),
            "the right-hand side is empty",
        ));
    }

    // Sum of products.
    let mut terms: Vec<Vec<Access>> = Vec::new();
    loop {
        let mut factors = Vec::new();
        loop {
            let (tensor, indices, span) = p.access()?;
            for (n, ix) in indices.iter().enumerate() {
                if indices[..n].iter().any(|o| o.name == ix.name) {
                    return Err(FrontError::new(
                        ErrorKind::DuplicateIndex,
                        ix.span,
                        format!("index {:?} repeats within {tensor}", ix.name),
                    ));
                }
            }
            let spans: Vec<Span> = indices.iter().map(|i| i.span).collect();
            let format = resolve_format(&tensor, &indices, &spans)?;
            factors.push(Access {
                tensor,
                indices,
                format,
                span,
            });
            match p.peek() {
                Some(Tok::Star) => {
                    p.bump();
                }
                _ => break,
            }
        }
        terms.push(factors);
        match p.peek() {
            Some(Tok::Plus) => {
                p.bump();
            }
            None => break,
            Some(_) => {
                return Err(FrontError::new(
                    ErrorKind::Parse,
                    p.span_here(),
                    "expected '+', '*', or end of expression",
                ));
            }
        }
    }

    // Tensor reuse must keep rank and format (the output name may also
    // appear on the rhs with a different shape only as an error).
    let all: Vec<&Access> = terms.iter().flatten().collect();
    for (n, a) in all.iter().enumerate() {
        for b in &all[..n] {
            if a.tensor == b.tensor {
                if a.rank() != b.rank() {
                    return Err(FrontError::new(
                        ErrorKind::RankMismatch,
                        a.span,
                        format!(
                            "{} used with rank {} here but rank {} earlier",
                            a.tensor,
                            a.rank(),
                            b.rank()
                        ),
                    ));
                }
                if a.format != b.format {
                    return Err(FrontError::new(
                        ErrorKind::Parse,
                        a.span,
                        format!("{} used with two different formats", a.tensor),
                    ));
                }
            }
        }
    }

    // Every output index must be bound by every term (no broadcasting).
    for ix in &out_indices {
        for term in &terms {
            let bound = term.iter().any(|a| a.level_of(&ix.name).is_some());
            if !bound {
                return Err(FrontError::new(
                    ErrorKind::UnboundIndex,
                    ix.span,
                    format!("output index {:?} is not bound by every term", ix.name),
                ));
            }
        }
    }

    let output = Access {
        format: FormatDescriptor::dense(&vec![0; out_indices.len()]),
        tensor: out_tensor,
        indices: out_indices,
        span: out_span,
    };
    Ok(Expr {
        output,
        terms,
        text: src.to_owned(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spmv_parses() {
        let e = parse("y(i) = A(i,j:csr) * x(j)").expect("valid");
        assert_eq!(e.output.tensor, "y");
        assert_eq!(e.terms.len(), 1);
        assert_eq!(e.terms[0].len(), 2);
        assert_eq!(e.terms[0][0].index_names(), vec!["i", "j"]);
        assert!(e.terms[0][0].level_is_sparse(1));
        assert!(!e.terms[0][0].level_is_sparse(0));
        assert!(!e.terms[0][1].level_is_sparse(0));
        assert_eq!(e.reduction_indices(), vec!["j".to_owned()]);
    }

    #[test]
    fn sum_of_products_parses() {
        let e = parse("Z(i,j) = A(i,j:dcsr) + B(i,j:dcsr) + C(i,j:dcsr)").expect("valid");
        assert_eq!(e.terms.len(), 3);
        assert!(e.terms.iter().all(|t| t.len() == 1));
        assert!(e.reduction_indices().is_empty());
    }

    #[test]
    fn defaults_follow_rank() {
        let e = parse("y(i) = A(i,j) * x(j)").expect("valid");
        assert!(e.terms[0][0].level_is_sparse(1), "rank-2 defaults to csr");
        assert!(
            !e.terms[0][1].level_is_sparse(0),
            "rank-1 defaults to dense"
        );
        let t = parse("Z(i,j) = T(i,j,k) * x(k)").expect("valid");
        assert!(t.terms[0][0].level_is_sparse(0), "rank-3 defaults to csf");
    }

    #[test]
    fn errors_are_spanned() {
        let cases: [(&str, ErrorKind); 8] = [
            ("y(i) =", ErrorKind::EmptyRhs),
            ("y(i) = A(i,j:blocked) * x(j)", ErrorKind::UnknownFormat),
            ("y(i) = A(i:csr) * x(i)", ErrorKind::RankMismatch),
            ("y(i,i) = A(i,j) * x(j)", ErrorKind::DuplicateIndex),
            ("y(i,k) = A(i,j) * x(j)", ErrorKind::UnboundIndex),
            ("y(i) = A(i,j * x(j)", ErrorKind::Parse),
            ("y(i) 3 = x(i)", ErrorKind::Parse),
            ("y(i:dense) = x(i)", ErrorKind::Unsupported),
        ];
        for (src, kind) in cases {
            let err = parse(src).expect_err(src);
            assert_eq!(err.kind, kind, "{src}: {err}");
            assert!(err.span.end <= src.len(), "{src}: span {:?}", err.span);
            assert!(err.span.start <= err.span.end, "{src}");
        }
    }
}
