//! [`Workload`] adapter for compiled expressions.
//!
//! Wraps a parsed, bound, and lowered expression behind the same
//! [`tmu_kernels::Workload`] trait the hand-written kernels implement, so
//! the benchmark harness can sweep arbitrary einsum expressions next to
//! the Table 4 kernels. The software baseline is an approximate
//! TACO-style traversal (pointer loads, index/value vector loads, and
//! per-leaf FMA chains per factor); the TMU side runs the lowered
//! program through a [`tmu::TmuAccelerator`] with the plan-driven
//! [`ExprHandler`].

use std::collections::BTreeMap;
use std::sync::Arc;

use tmu::{CallbackHandler, MemImage, TmuAccelerator, TmuConfig};
use tmu_kernels::workload::{KernelKind, TmuRun, Workload};
use tmu_sim::{
    Accelerator, ChannelMachine, Deps, Machine, OpId, Region, RunStats, Site, System, SystemConfig,
    VecMachine,
};
use tmu_tensor::CsrMatrix;

use crate::ast::Expr;
use crate::bindings::{auto_bind, Bindings, LevelData, TensorData};
use crate::graph::{IterationGraph, LoopKind};
use crate::interp::evaluate;
use crate::lower::{lower, ExprHandler, Lowered};
use crate::FrontError;

const S_PTR: u16 = 410;
const S_IDX: u16 = 411;
const S_VAL: u16 = 412;
const S_STORE: u16 = 413;
const S_BR: u16 = 414;

/// A compiled-expression workload: parse → graph → bind → lower, behind
/// the same harness interface as the hand-written kernels.
#[derive(Debug)]
pub struct ExprWorkload {
    expr: Expr,
    graph: IterationGraph,
    binds: Bindings,
    image: Arc<MemImage>,
    z_r: Region,
    z_cap: usize,
    outq_r: Region,
    kind: KernelKind,
    oracle: BTreeMap<Vec<u32>, f64>,
}

impl ExprWorkload {
    /// Compiles `src` against tensors derived from `base` (see
    /// [`auto_bind`]) and validates that it lowers.
    ///
    /// # Errors
    ///
    /// Propagates parse, graph, binding, and lowering errors.
    pub fn new(src: &str, base: &CsrMatrix) -> Result<Self, FrontError> {
        let expr = crate::parse::parse(src)?;
        let graph = IterationGraph::build(&expr)?;
        let mut ab = auto_bind(&expr, base)?;
        // Validate lowering early so the harness entry points can't fail.
        lower(&expr, &graph, &ab.binds, 8)?;
        let oracle = evaluate(&expr, &graph, &ab.binds)?;
        let z_cap = oracle.len().max(1);
        let z_r = ab.map.alloc_elems("z_expr", z_cap, 8);
        let outq_r = ab.map.alloc("outq_expr", 1 << 20);
        let kind = if graph.loops.iter().any(|l| l.kind == LoopKind::Disj) {
            KernelKind::MergeIntensive
        } else if graph.loops.len() >= 3 {
            KernelKind::ComputeIntensive
        } else {
            KernelKind::MemoryIntensive
        };
        Ok(Self {
            expr,
            graph,
            binds: ab.binds,
            image: Arc::new(ab.image),
            z_r,
            z_cap,
            outq_r,
            kind,
            oracle,
        })
    }

    /// The parsed expression.
    pub fn expr(&self) -> &Expr {
        &self.expr
    }

    /// The iteration graph (merge lattice) of the expression.
    pub fn graph(&self) -> &IterationGraph {
        &self.graph
    }

    /// The interpreter's result, keyed by output coordinates.
    pub fn oracle(&self) -> &BTreeMap<Vec<u32>, f64> {
        &self.oracle
    }

    /// The bound tensors (alternative backends recompile the expression
    /// against the exact storage the oracle was evaluated on).
    pub fn bindings(&self) -> &Bindings {
        &self.binds
    }

    /// Shared memory image (for standalone engine experiments).
    pub fn image_handle(&self) -> Arc<MemImage> {
        Arc::clone(&self.image)
    }

    /// outQ base address of this expression's engine.
    pub fn outq_base(&self) -> u64 {
        self.outq_r.base
    }

    /// Output region (for standalone handlers).
    pub fn z_region(&self) -> (Region, usize) {
        (self.z_r, self.z_cap)
    }

    /// Lowers the expression with `lanes` lockstep lanes.
    ///
    /// # Errors
    ///
    /// Propagates lowering errors (shapes are pre-validated in [`Self::new`],
    /// so this only fails for lane counts outside what the shape allows).
    pub fn lowered(&self, lanes: usize) -> Result<Lowered, FrontError> {
        lower(&self.expr, &self.graph, &self.binds, lanes)
    }

    /// Functionally executes the lowered program, returning the result map.
    ///
    /// # Errors
    ///
    /// Propagates lowering errors.
    pub fn run_functional(&self, lanes: usize) -> Result<BTreeMap<Vec<u32>, f64>, FrontError> {
        let lowered = self.lowered(lanes)?;
        let prog = Arc::new(lowered.program);
        let mut handler = ExprHandler::new(lowered.plan, self.z_r, self.z_cap);
        let mut vm = VecMachine::new();
        tmu::for_each_entry(&prog, &self.image, |e| {
            handler.handle(e, OpId::NONE, &mut vm);
        });
        Ok(handler.into_out())
    }
}

/// Emits the approximate TACO-style baseline for one factor's fiber tree.
fn walk_factor<M: Machine + ?Sized>(
    m: &mut M,
    d: &TensorData,
    level: usize,
    pos: usize,
    vl: usize,
) {
    let is_leaf = level + 1 == d.order();
    match &d.levels[level] {
        LevelData::Dense { size } => {
            if is_leaf {
                let mut c = 0;
                while c < *size {
                    let n = (*size - c).min(vl);
                    let v = m.vec_load(
                        Site(S_VAL),
                        d.vals.1.f64_at(pos * size + c),
                        (n * 8) as u32,
                        Deps::NONE,
                    );
                    m.vec_op(n as u32, Deps::from(v));
                    c += n;
                    m.branch(Site(S_BR), c < *size, Deps::NONE);
                }
            } else {
                for c in 0..*size {
                    walk_factor(m, d, level + 1, pos * size + c, vl);
                    m.branch(Site(S_BR), c + 1 < *size, Deps::NONE);
                }
            }
        }
        LevelData::Compressed { ptrs, idxs } => {
            let (beg, end) = d.fiber(level, pos);
            let bounds = if let Some((_, r)) = ptrs {
                let b0 = m.load(Site(S_PTR), r.u32_at(pos), 4, Deps::NONE);
                let b1 = m.load(Site(S_PTR), r.u32_at(pos + 1), 4, Deps::NONE);
                Deps::on(&[b0, b1])
            } else {
                Deps::NONE
            };
            if is_leaf {
                let mut p = beg;
                while p < end {
                    let n = (end - p).min(vl);
                    let iv = m.vec_load(Site(S_IDX), idxs.1.u32_at(p), (n * 4) as u32, bounds);
                    let vv = m.vec_load(Site(S_VAL), d.vals.1.f64_at(p), (n * 8) as u32, bounds);
                    m.vec_op((2 * n) as u32, Deps::on(&[iv, vv]));
                    p += n;
                    m.branch(Site(S_BR), p < end, bounds);
                }
            } else {
                for p in beg..end {
                    m.load(Site(S_IDX), idxs.1.u32_at(p), 4, bounds);
                    walk_factor(m, d, level + 1, p, vl);
                    m.branch(Site(S_BR), p + 1 < end, bounds);
                }
            }
        }
    }
}

impl Workload for ExprWorkload {
    fn name(&self) -> &'static str {
        "Expr"
    }

    fn kind(&self) -> KernelKind {
        self.kind
    }

    fn run_baseline(&self, cfg: SystemConfig) -> RunStats {
        let vl = cfg.core.sve_lanes();
        let factors: Vec<TensorData> = self
            .expr
            .rhs_accesses()
            .map(|a| {
                self.binds
                    .get(&a.tensor, a.span)
                    .expect("bindings validated in new")
                    .clone()
            })
            .collect();
        let stores = self.oracle.len();
        let z_r = self.z_r;
        let z_cap = self.z_cap;
        let mut sys = System::new(cfg);
        sys.run(vec![move |m: &mut ChannelMachine| {
            for d in &factors {
                walk_factor(m, d, 0, 0, vl);
            }
            for i in 0..stores {
                m.store(Site(S_STORE), z_r.f64_at(i % z_cap), 8, Deps::NONE);
            }
        }])
    }

    fn run_tmu(&self, cfg: SystemConfig, tmu: TmuConfig) -> TmuRun {
        let lowered = self.lowered(tmu.lanes).expect("lowering validated in new");
        let prog = Arc::new(lowered.program);
        let handler = ExprHandler::new(lowered.plan, self.z_r, self.z_cap);
        let acc = TmuAccelerator::new(
            tmu,
            prog,
            Arc::clone(&self.image),
            handler,
            self.outq_r.base,
        );
        let handle = acc.stats_handle();
        let mut sys = System::new(cfg);
        let stats = sys.run_accelerated(vec![Box::new(acc) as Box<dyn Accelerator>]);
        let outq = vec![handle.lock().expect("stats").clone()];
        TmuRun { stats, outq }
    }

    fn verify(&self) -> Result<(), String> {
        let got = self.run_functional(8).map_err(|e| e.to_string())?;
        compare_maps("Expr", &got, &self.oracle, 1e-9)
    }
}

/// Compares two coordinate-keyed result maps, treating missing entries as
/// explicit zeros (compiled programs emit 0.0 rows for empty fibers).
///
/// # Errors
///
/// Returns a description of the first mismatch.
pub fn compare_maps(
    what: &str,
    got: &BTreeMap<Vec<u32>, f64>,
    want: &BTreeMap<Vec<u32>, f64>,
    tol: f64,
) -> Result<(), String> {
    let keys: std::collections::BTreeSet<&Vec<u32>> = got.keys().chain(want.keys()).collect();
    for k in keys {
        let g = got.get(k).copied().unwrap_or(0.0);
        let w = want.get(k).copied().unwrap_or(0.0);
        let scale = w.abs().max(1e-30);
        if (g - w).abs() / scale > tol {
            return Err(format!("{what}: mismatch at {k:?}: got {g}, want {w}"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use tmu_sim::{CoreConfig, MemSysConfig};
    use tmu_tensor::gen;

    fn small_cfg(cores: usize) -> SystemConfig {
        SystemConfig {
            core: CoreConfig::neoverse_n1_like(),
            mem: MemSysConfig::table5(cores),
        }
    }

    #[test]
    fn spmv_expression_verifies_end_to_end() {
        let w = ExprWorkload::new("y(i) = A(i,j:csr) * x(j)", &gen::uniform(128, 96, 5, 21))
            .expect("compiles");
        w.verify().expect("compiled SpMV matches the interpreter");
        assert_eq!(w.kind(), KernelKind::MemoryIntensive);
    }

    #[test]
    fn sum_expression_is_merge_intensive_and_runs() {
        let w = ExprWorkload::new(
            "Z(i,j) = A(i,j:dcsr) + B(i,j:dcsr)",
            &gen::uniform(64, 48, 4, 5),
        )
        .expect("compiles");
        assert_eq!(w.kind(), KernelKind::MergeIntensive);
        w.verify().expect("compiled sum matches the interpreter");
        let run = w.run_tmu(small_cfg(1), TmuConfig::paper());
        assert!(run.stats.cycles > 0);
        assert!(run.outq.iter().any(|o| o.entries > 0));
    }

    #[test]
    fn baseline_emits_work() {
        let w = ExprWorkload::new("y(i) = A(i,j:csr) * x(j)", &gen::uniform(64, 64, 4, 9))
            .expect("compiles");
        let stats = w.run_baseline(small_cfg(1));
        assert!(stats.cycles > 0);
        assert!(stats.total().loads > 0);
    }
}
