//! Differential tests: the expression front-end against the hand-written
//! Table 4 kernels.
//!
//! For each kernel with an expressible einsum the suite checks, across a
//! generator grid (uniform, RMAT, banded, fixed-nnz):
//!
//! 1. **Feature equality** — the generated program reports the same
//!    [`tmu_kernels::mapping::ProgramFeatures`] as the hand-written one
//!    (pinned per kernel);
//! 2. **Bit-identical results** — functional execution of the generated
//!    program through `tmu::for_each_entry` produces exactly the bits the
//!    hand-written handler produces;
//! 3. **Interpreter cross-check** — the reference interpreter matches the
//!    kernel's software oracle at 1e-9.
//!
//! Two expressions with no hand-written counterpart (a 3-operand
//! disjunctive add and a mixed CSR×CSF×dense contraction) close the loop
//! through both backends.

use std::collections::BTreeMap;
use std::sync::Arc;

use tmu::CallbackHandler;
use tmu_front::bindings::{Bindings, TensorData};
use tmu_front::graph::IterationGraph;
use tmu_front::lower::{lower, ExprHandler};
use tmu_front::parse::parse;
use tmu_front::workload::compare_maps;
use tmu_front::ExprWorkload;
use tmu_kernels::data::{CsfOnSim, DenseOnSim};
use tmu_kernels::mapping::{features, ProgramFeatures};
use tmu_kernels::{spkadd, spmspm, spmspv, spmv, spttv, Workload};
use tmu_sim::{AddressMap, OpId, VecMachine};
use tmu_tensor::{gen, CooTensor, CsfTensor, CsrMatrix};

/// The matrix grid every matrix kernel is differenced on.
fn matrix_grid() -> Vec<(&'static str, CsrMatrix)> {
    vec![
        ("uniform", gen::uniform(128, 96, 5, 21)),
        ("rmat", gen::rmat(6, 500, 3)),
        ("banded", gen::banded(96, 12, 4, 7)),
        ("fixed_row", gen::fixed_row(64, 4, 9)),
    ]
}

fn assert_bits(what: &str, got: f64, want: f64) {
    assert!(
        got.to_bits() == want.to_bits(),
        "{what}: {got} (0x{:016x}) != {want} (0x{:016x})",
        got.to_bits(),
        want.to_bits()
    );
}

// ---------------------------------------------------------------- SpMV --

#[test]
fn spmv_features_and_bits_match_across_grid() {
    for (name, a) in matrix_grid() {
        let hand = spmv::Spmv::new(&a);
        let w = ExprWorkload::new("y(i) = A(i,j:csr) * x(j)", &a).expect("compiles");
        let hf = features(&hand.build_program((0, a.rows()), 8));
        let gf = features(&w.lowered(8).expect("lowers").program);
        assert_eq!(hf, gf, "SpMV/{name} features diverge");
        assert!(gf.chained_mem && gf.rng && gf.dns, "SpMV/{name}");

        let want = hand.functional();
        let got = w.run_functional(8).expect("runs");
        for (i, &w_i) in want.iter().enumerate() {
            let g = got.get(&vec![i as u32]).copied().unwrap_or(0.0);
            assert_bits(&format!("SpMV/{name} row {i}"), g, w_i);
        }
    }
}

#[test]
fn spmv_interpreter_matches_kernel_reference() {
    for (name, a) in matrix_grid() {
        let hand = spmv::Spmv::new(&a);
        let w = ExprWorkload::new("y(i) = A(i,j:csr) * x(j)", &a).expect("compiles");
        for (i, &want) in hand.reference().iter().enumerate() {
            let got = w.oracle().get(&vec![i as u32]).copied().unwrap_or(0.0);
            assert!(
                (got - want).abs() <= 1e-9 * want.abs().max(1.0),
                "SpMV/{name} row {i}: {got} vs {want}"
            );
        }
    }
}

// -------------------------------------------------------------- SpMSpV --

#[test]
fn spmspv_features_and_bits_match_across_grid() {
    for (name, a) in matrix_grid() {
        // Density 0.2 == the auto-bound stride-5 sparse vector.
        let hand = spmspv::Spmspv::new(&a, 0.2);
        let w = ExprWorkload::new("y(i) = A(i,j:csr) * x(j:sparse)", &a).expect("compiles");
        let hf = features(&hand.build_program((0, a.rows())));
        let gf = features(&w.lowered(8).expect("lowers").program);
        assert_eq!(hf, gf, "SpMSpV/{name} features diverge");
        assert!(
            gf.modes.contains(&tmu::LayerMode::ConjMrg),
            "SpMSpV/{name} must merge conjunctively"
        );

        let want = hand.functional();
        let got = w.run_functional(8).expect("runs");
        for (i, &w_i) in want.iter().enumerate() {
            let g = got.get(&vec![i as u32]).copied().unwrap_or(0.0);
            assert_bits(&format!("SpMSpV/{name} row {i}"), g, w_i);
        }
    }
}

#[test]
fn spmspv_interpreter_matches_kernel_reference() {
    for (name, a) in matrix_grid() {
        let hand = spmspv::Spmspv::new(&a, 0.2);
        let w = ExprWorkload::new("y(i) = A(i,j:csr) * x(j:sparse)", &a).expect("compiles");
        for (i, &want) in hand.reference().iter().enumerate() {
            let got = w.oracle().get(&vec![i as u32]).copied().unwrap_or(0.0);
            assert!(
                (got - want).abs() <= 1e-9 * want.abs().max(1.0),
                "SpMSpV/{name} row {i}: {got} vs {want}"
            );
        }
    }
}

// -------------------------------------------------------------- SpMSpM --

#[test]
fn spmspm_features_and_bits_match_across_grid() {
    for (name, a) in [
        ("uniform", gen::uniform(64, 64, 4, 11)),
        ("rmat", gen::rmat(5, 300, 5)),
        ("banded", gen::banded(64, 10, 3, 13)),
    ] {
        let hand = spmspm::Spmspm::new(&a);
        // auto_bind makes the second distinct rank-2 tensor the transpose
        // of the first: exactly the kernel's B = Aᵀ.
        let w = ExprWorkload::new("Z(i,j) = A(i,k:csr) * B(k,j:csr)", &a).expect("compiles");
        let hf = features(&hand.build_program((0, a.rows()), 8));
        let gf = features(&w.lowered(8).expect("lowers").program);
        assert_eq!(hf, gf, "SpMSpM/{name} features diverge");
        assert!(gf.fwd && gf.chained_mem, "SpMSpM/{name} scan-and-lookup");

        let (z_cols, z) = hand.functional();
        let got = w.run_functional(8).expect("runs");
        // Kernel output is row-major / column-sorted; so is the map.
        let ptrs = hand.reference().row_ptrs().to_vec();
        let mut flat = Vec::new();
        for i in 0..hand.reference().rows() {
            for p in ptrs[i] as usize..ptrs[i + 1] as usize {
                flat.push((vec![i as u32, z_cols[p]], z[p]));
            }
        }
        assert_eq!(got.len(), flat.len(), "SpMSpM/{name} nnz count");
        for ((gk, gv), (wk, wv)) in got.iter().zip(&flat) {
            assert_eq!(gk, wk, "SpMSpM/{name} structure");
            assert_bits(&format!("SpMSpM/{name} at {wk:?}"), *gv, *wv);
        }
    }
}

#[test]
fn spmspm_interpreter_matches_kernel_reference() {
    let a = gen::uniform(48, 48, 4, 17);
    let hand = spmspm::Spmspm::new(&a);
    let w = ExprWorkload::new("Z(i,j) = A(i,k:csr) * B(k,j:csr)", &a).expect("compiles");
    let mut want = BTreeMap::new();
    for i in 0..hand.reference().rows() {
        for (c, v) in hand.reference().row(i) {
            want.insert(vec![i as u32, c], v);
        }
    }
    compare_maps("SpMSpM interp", w.oracle(), &want, 1e-9).expect("interpreter matches");
}

// -------------------------------------------------------------- SpKAdd --

const SPKADD_EXPR: &str = "Z(i,j) = A0(i,j:dcsr) + A1(i,j:dcsr) + A2(i,j:dcsr) \
    + A3(i,j:dcsr) + A4(i,j:dcsr) + A5(i,j:dcsr) + A6(i,j:dcsr) + A7(i,j:dcsr)";

#[test]
fn spkadd_features_and_bits_match_across_grid() {
    for (name, a) in [
        ("uniform", gen::uniform(256, 64, 4, 21)),
        ("rmat", gen::rmat(7, 600, 9)),
        ("fixed_row", gen::fixed_row(64, 4, 9)),
    ] {
        let hand = spkadd::Spkadd::new(&a);
        // An 8-term sum: auto_bind splits the base rows cyclically over
        // the terms, the same construction the kernel uses (K = 8).
        let w = ExprWorkload::new(SPKADD_EXPR, &a).expect("compiles");
        let out_rows = a.rows() / spkadd::K;
        let hf = features(&hand.build_program((0, out_rows), 8));
        let gf = features(&w.lowered(8).expect("lowers").program);
        assert_eq!(hf, gf, "SpKAdd/{name} features diverge");
        assert_eq!(gf.modes, vec![tmu::LayerMode::DisjMrg], "SpKAdd/{name}");
        assert_eq!(gf.lanes, 8, "SpKAdd/{name} merges 8 matrices");

        let want = hand.functional();
        let got = w.run_functional(8).expect("runs");
        assert_eq!(got.len(), want.len(), "SpKAdd/{name} nnz count");
        for ((gk, gv), (r, c, wv)) in got.iter().zip(&want) {
            assert_eq!(gk, &vec![*r, *c], "SpKAdd/{name} structure");
            assert_bits(&format!("SpKAdd/{name} at ({r},{c})"), *gv, *wv);
        }
    }
}

#[test]
fn spkadd_interpreter_matches_kernel_reference() {
    let a = gen::uniform(128, 48, 4, 33);
    let hand = spkadd::Spkadd::new(&a);
    let w = ExprWorkload::new(SPKADD_EXPR, &a).expect("compiles");
    let mut want = BTreeMap::new();
    for i in 0..hand.reference().rows() {
        for (c, v) in hand.reference().row(i) {
            want.insert(vec![i as u32, c], v);
        }
    }
    compare_maps("SpKAdd interp", w.oracle(), &want, 1e-9).expect("interpreter matches");
}

// --------------------------------------------------------------- SpTTV --

/// Binds the same CSF tensor and `0.5 + (k mod 71)/71` vector the kernel
/// binds, so values (not just structure) coincide bit for bit.
fn spttv_bindings(coo: &CooTensor) -> (Bindings, AddressMap, tmu::MemImage) {
    let csf = CsfTensor::from_coo(coo);
    let dim_k = coo.dims()[2];
    let b_vals: Vec<f64> = (0..dim_k).map(|x| 0.5 + (x % 71) as f64 / 71.0).collect();
    let mut map = AddressMap::new();
    let mut image = tmu::MemImage::new();
    let t = CsfOnSim::bind(&mut map, &mut image, "T", &csf);
    let c = DenseOnSim::bind(&mut map, &mut image, "c", b_vals);
    let mut binds = Bindings::new();
    binds.insert(TensorData::from_csf("T", &t));
    binds.insert(TensorData::dense_vec("c", &c));
    (binds, map, image)
}

#[test]
fn spttv_features_and_bits_match_across_grid() {
    for (name, coo) in [
        ("t1", gen::random_tensor(&[24, 16, 18], 500, 41)),
        ("t2", gen::random_tensor(&[40, 12, 20], 800, 7)),
    ] {
        let hand = spttv::Spttv::new(&coo);
        let csf = CsfTensor::from_coo(&coo);
        let expr = parse("Z(i,j) = T(i,j,k:csf) * c(k)").expect("parses");
        let graph = IterationGraph::build(&expr).expect("acyclic");
        let (binds, mut map, image) = spttv_bindings(&coo);
        let lowered = lower(&expr, &graph, &binds, 8).expect("lowers");

        let hf = features(&hand.build_program((0, csf.num_nodes(0)), 8));
        let gf = features(&lowered.program);
        // The generated program additionally streams the root/fiber
        // coordinates (it reconstructs output keys); everything else —
        // traversals, modes, chaining, lanes — must coincide.
        assert_eq!(hf.modes, gf.modes, "SpTTV/{name} modes");
        assert_eq!(hf.layers, gf.layers, "SpTTV/{name} layers");
        assert_eq!(hf.lanes, gf.lanes, "SpTTV/{name} lanes");
        assert_eq!(
            (hf.dns, hf.rng, hf.idx, hf.chained_mem, hf.fwd),
            (gf.dns, gf.rng, gf.idx, gf.chained_mem, gf.fwd),
            "SpTTV/{name} primitives"
        );

        let z_cap = csf.num_nodes(1).max(1);
        let z_r = map.alloc_elems("z_expr", z_cap, 8);
        let mut handler = ExprHandler::new(lowered.plan, z_r, z_cap);
        let prog = Arc::new(lowered.program);
        let image = Arc::new(image);
        let mut vm = VecMachine::new();
        tmu::for_each_entry(&prog, &image, |e| {
            handler.handle(e, OpId::NONE, &mut vm);
        });
        let got = handler.into_out();

        // Kernel output is one sum per (i, j) fiber in CSF (sorted) fiber
        // order; the map iterates in the same lexicographic order.
        let want = hand.functional();
        assert_eq!(got.len(), want.len(), "SpTTV/{name} fiber count");
        for ((k, gv), wv) in got.iter().zip(&want) {
            assert_bits(&format!("SpTTV/{name} at {k:?}"), *gv, *wv);
        }
    }
}

#[test]
fn spttv_interpreter_matches_kernel_reference() {
    let coo = gen::random_tensor(&[24, 16, 18], 500, 41);
    let hand = spttv::Spttv::new(&coo);
    let expr = parse("Z(i,j) = T(i,j,k:csf) * c(k)").expect("parses");
    let graph = IterationGraph::build(&expr).expect("acyclic");
    let (binds, _map, _image) = spttv_bindings(&coo);
    let got = tmu_front::interp::evaluate(&expr, &graph, &binds).expect("evaluates");
    let want = hand.reference();
    assert_eq!(got.len(), want.len(), "fiber count");
    for ((k, gv), wv) in got.iter().zip(want) {
        assert!(
            (gv - wv).abs() <= 1e-9 * wv.abs().max(1.0),
            "SpTTV interp at {k:?}: {gv} vs {wv}"
        );
    }
}

// -------------------------------------- expressions with no counterpart --

#[test]
fn three_operand_disjunctive_add_runs_both_backends() {
    // E1: no hand-written kernel sums three matrices.
    let w = ExprWorkload::new(
        "Z(i,j) = A(i,j:dcsr) + B(i,j:dcsr) + C(i,j:dcsr)",
        &gen::uniform(96, 48, 4, 5),
    )
    .expect("compiles");
    assert_eq!(w.graph().loops.len(), 2);
    // verify() is exactly "compiled backend == interpreter backend".
    w.verify().expect("both backends agree");
    assert!(!w.oracle().is_empty());
}

#[test]
fn mixed_format_contraction_runs_both_backends() {
    // E2: CSR × CSF × dense, three storage formats in one product.
    let w = ExprWorkload::new(
        "y(i) = A(i,j:csr) * T(j,k,l:csf) * x(l:dense)",
        &gen::uniform(48, 24, 3, 13),
    )
    .expect("compiles");
    assert_eq!(w.graph().order(), vec!["i", "j", "k", "l"]);
    w.verify().expect("both backends agree");
    assert!(!w.oracle().is_empty());
}

// ----------------------------------------------- pinned feature tables --

#[test]
fn generated_programs_pin_their_feature_rows() {
    let a = gen::uniform(64, 64, 4, 1);
    let rows: Vec<(&str, &str, ProgramFeatures)> = vec![
        (
            "SpMV",
            "y(i) = A(i,j:csr) * x(j)",
            ProgramFeatures {
                dns: true,
                rng: true,
                mem: true,
                chained_mem: true,
                modes: vec![tmu::LayerMode::Single, tmu::LayerMode::LockStep],
                layers: 2,
                lanes: 8,
                ..Default::default()
            },
        ),
        (
            "SpMSpV",
            "y(i) = A(i,j:csr) * x(j:sparse)",
            ProgramFeatures {
                dns: true,
                rng: true,
                mem: true,
                modes: vec![tmu::LayerMode::Single, tmu::LayerMode::ConjMrg],
                layers: 2,
                lanes: 2,
                ..Default::default()
            },
        ),
        (
            "SpMSpM",
            "Z(i,j) = A(i,k:csr) * B(k,j:csr)",
            ProgramFeatures {
                dns: true,
                rng: true,
                mem: true,
                chained_mem: true,
                fwd: true,
                modes: vec![tmu::LayerMode::Single, tmu::LayerMode::LockStep],
                layers: 3,
                lanes: 8,
                ..Default::default()
            },
        ),
    ];
    for (name, src, want) in rows {
        let w = ExprWorkload::new(src, &a).expect("compiles");
        let got = features(&w.lowered(8).expect("lowers").program);
        assert_eq!(got, want, "{name} generated feature row drifted");
    }
}
