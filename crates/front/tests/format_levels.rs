//! Differential tests for the physical level formats (tentpole layer 1).
//!
//! An expression annotated `:banded`, `:hashed`, or `:bcsr` reaches the
//! lowerer through the canonical-stream seam: the bound matrix is encoded
//! into the physical layout and decoded back to canonical CSR, which the
//! exact round-trip guarantee of `tmu-formats` makes bit-preserving. The
//! suite pins that guarantee end to end — every physical annotation must
//! produce *bit-identical* functional results to the `:csr` expression on
//! the same input, for SpMV and SpMSpM shapes, across the generator grid.

use tmu_front::ExprWorkload;
use tmu_kernels::Workload;
use tmu_tensor::{gen, CsrMatrix};

const PHYSICAL: [&str; 3] = ["banded", "hashed", "bcsr"];

fn matrix_grid() -> Vec<(&'static str, CsrMatrix)> {
    vec![
        ("uniform", gen::uniform(128, 96, 5, 21)),
        ("rmat", gen::rmat(6, 500, 3)),
        ("banded", gen::banded(96, 12, 4, 7)),
        ("fixed_row", gen::fixed_row(64, 4, 9)),
    ]
}

/// Runs `src` functionally and returns its sorted (key, bits) rows.
fn run_bits(src: &str, a: &CsrMatrix) -> Vec<(Vec<u32>, u64)> {
    let w = ExprWorkload::new(src, a).expect("compiles");
    w.run_functional(8)
        .expect("runs")
        .into_iter()
        .map(|(k, v)| (k, v.to_bits()))
        .collect()
}

#[test]
fn spmv_physical_formats_match_csr_bit_for_bit() {
    for (name, a) in matrix_grid() {
        let want = run_bits("y(i) = A(i,j:csr) * x(j)", &a);
        for fmt in PHYSICAL {
            let got = run_bits(&format!("y(i) = A(i,j:{fmt}) * x(j)"), &a);
            assert_eq!(got, want, "SpMV/{name} via :{fmt} diverged from :csr");
        }
    }
}

#[test]
fn spmspm_physical_formats_match_csr_bit_for_bit() {
    for (name, a) in [
        ("uniform", gen::uniform(64, 64, 4, 11)),
        ("banded", gen::banded(64, 10, 3, 13)),
    ] {
        let want = run_bits("Z(i,j) = A(i,k:csr) * B(k,j:csr)", &a);
        for fmt in PHYSICAL {
            let got = run_bits(&format!("Z(i,j) = A(i,k:{fmt}) * B(k,j:{fmt})"), &a);
            assert_eq!(got, want, "SpMSpM/{name} via :{fmt} diverged from :csr");
        }
    }
}

#[test]
fn physical_formats_verify_against_the_interpreter() {
    // `verify()` is "compiled backend == interpreter backend": the
    // reference interpreter walks the same decoded canonical arrays, so
    // it must agree for every physical annotation too.
    let a = gen::banded(96, 12, 4, 7);
    for fmt in PHYSICAL {
        let w = ExprWorkload::new(&format!("y(i) = A(i,j:{fmt}) * x(j)"), &a).expect("compiles");
        w.verify().expect("both backends agree");
        assert!(!w.oracle().is_empty());
    }
}

#[test]
fn annotations_parse_case_insensitively() {
    // Satellite: format names are resolved case-insensitively everywhere.
    let a = gen::uniform(48, 48, 4, 5);
    let want = run_bits("y(i) = A(i,j:banded) * x(j)", &a);
    for spelled in ["BANDED", "Banded", "bAnDeD"] {
        let got = run_bits(&format!("y(i) = A(i,j:{spelled}) * x(j)"), &a);
        assert_eq!(got, want, "annotation {spelled:?} resolved differently");
    }
}
