//! Parser robustness: malformed input must come back as a spanned
//! [`FrontError`] — never a panic — and the span must stay inside the
//! source text so diagnostics can always be rendered.

use proptest::prelude::*;
use tmu_front::graph::IterationGraph;
use tmu_front::parse::parse;
use tmu_front::{ErrorKind, FrontError};

/// Valid seeds the fuzzers mutate.
const VALID: &[&str] = &[
    "y(i) = A(i,j:csr) * x(j)",
    "y(i) = A(i,j:csr) * x(j:sparse)",
    "Z(i,j) = A(i,k:csr) * B(k,j:csr)",
    "Z(i,j) = A(i,j:dcsr) + B(i,j:dcsr) + C(i,j:dcsr)",
    "Z(i,j) = T(i,j,k:csf) * c(k)",
    "y(i) = A(i,j:csr) * T(j,k,l:csf) * x(l:dense)",
    "z(i) = a(i:sparse) + b(i:sparse)",
];

/// Characters mutations draw from: grammar atoms plus noise. All ASCII,
/// so byte positions are always char boundaries.
const CHARSET: &[u8] = b"abcijkxyzABT0123456789(),:=*+ .;-_[]!#csrdenf";

fn assert_well_formed(src: &str, err: &FrontError) {
    assert!(
        err.span.start <= err.span.end && err.span.end <= src.len(),
        "span {:?} escapes source of length {} ({src:?})",
        err.span,
        src.len()
    );
    // Rendering the diagnostic must always succeed too.
    let rendered = err.render(src);
    assert!(!rendered.is_empty());
}

/// Drives the whole front half (parse + iteration graph); returns any
/// spanned error for span checking. A panic anywhere fails the test.
fn front_half(src: &str) -> Option<FrontError> {
    match parse(src) {
        Err(e) => Some(e),
        Ok(expr) => IterationGraph::build(&expr).err(),
    }
}

#[test]
fn malformed_corpus_yields_spanned_errors() {
    let corpus: &[(&str, ErrorKind)] = &[
        // Unbound output index: k never appears on the right.
        ("y(i,k) = A(i,j:csr) * x(j)", ErrorKind::UnboundIndex),
        ("z(q) = a(i:sparse) + b(i:sparse)", ErrorKind::UnboundIndex),
        // Rank mismatch: annotation arity or reuse contradicts the access.
        ("y(i) = A(i:csr) * x(i)", ErrorKind::RankMismatch),
        ("y(i) = A(i,j,k:csr) * x(k)", ErrorKind::RankMismatch),
        // Unknown storage format. Annotation names fold case ("CSR"
        // parses as "csr"), so the probes must be genuinely unknown in
        // any case.
        ("y(i) = A(i,j:blocked) * x(j)", ErrorKind::UnknownFormat),
        ("y(i) = A(i,j:xsr) * x(j)", ErrorKind::UnknownFormat),
        ("y(i) = A(i,j:BaNd) * x(j)", ErrorKind::UnknownFormat),
        // Empty right-hand side.
        ("y(i) =", ErrorKind::EmptyRhs),
        ("y(i) =   ", ErrorKind::EmptyRhs),
        // Duplicate output index.
        ("y(i,i) = A(i,j:csr) * x(j)", ErrorKind::DuplicateIndex),
        ("Z(i,j,i) = T(i,j,k:csf) * c(k)", ErrorKind::DuplicateIndex),
        // Plain grammar breakage.
        ("", ErrorKind::Parse),
        ("y(i = x(i)", ErrorKind::Parse),
        ("y(i) = A(i,j:csr * x(j)", ErrorKind::Parse),
        ("= x(i)", ErrorKind::Parse),
        ("y(i) == x(i)", ErrorKind::Parse),
        ("y(i) = A(i,j:csr) & x(j)", ErrorKind::Parse),
    ];
    for &(src, kind) in corpus {
        let err = parse(src).expect_err(src);
        assert_eq!(err.kind, kind, "{src:?}");
        assert_well_formed(src, &err);
    }
}

#[test]
fn valid_seeds_still_compile() {
    for src in VALID {
        let expr = parse(src).expect(src);
        IterationGraph::build(&expr).expect(src);
    }
}

fn mutate(base: &str, edits: &[(u8, usize, usize)]) -> String {
    let mut s: Vec<u8> = base.as_bytes().to_vec();
    for &(op, pos, ch) in edits {
        let c = CHARSET[ch % CHARSET.len()];
        match op % 4 {
            0 if !s.is_empty() => {
                let at = pos % s.len(); // replace
                s[at] = c;
            }
            1 => s.insert(pos % (s.len() + 1), c), // insert
            2 if !s.is_empty() => {
                s.remove(pos % s.len()); // delete
            }
            3 => s.truncate(pos % (s.len() + 1)), // truncate
            _ => {}
        }
    }
    String::from_utf8(s).expect("charset is ASCII")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(768))]

    #[test]
    fn mutated_valid_expressions_never_panic(
        base in 0usize..VALID.len(),
        edits in proptest::collection::vec((0u8..4, 0usize..96, 0usize..CHARSET.len()), 1..6),
    ) {
        let src = mutate(VALID[base], &edits);
        if let Some(err) = front_half(&src) {
            assert_well_formed(&src, &err);
        }
    }

    #[test]
    fn random_character_soup_never_panics(
        chars in proptest::collection::vec(0usize..CHARSET.len(), 0..48),
    ) {
        let src: String = chars.iter().map(|&i| CHARSET[i] as char).collect();
        if let Some(err) = front_half(&src) {
            assert_well_formed(&src, &err);
        }
    }
}
