//! CP-ALS: canonical polyadic tensor decomposition by alternating least
//! squares (GenTen), the paper's end-to-end application for COO tensors.
//!
//! One ALS sweep updates every factor matrix: for each mode, an MTTKRP
//! against the other factors followed by a small dense solve (Gram matrix
//! inverse, `RANK × RANK`) and column normalization. The MTTKRPs dominate
//! and are TMU-accelerated; the dense solve/normalization runs on the
//! core in both versions — the paper highlights exactly this need to
//! "evaluate partial results at each iteration" as the reason a
//! near-core design beats standalone accelerators (§8).
//!
//! Within a sweep all modes use the sweep's starting factors
//! (Jacobi-style update): traversal behaviour and cost are identical to
//! the Gauss-Seidel variant while keeping the bound memory image static.

use tmu::TmuConfig;
use tmu_sim::{ChannelMachine, Deps, Machine, RunStats, Site, System, SystemConfig};
use tmu_tensor::{CooTensor, Idx};

use crate::data::partition_flat;
use crate::mttkrp::{Mttkrp, MttkrpVariant, RANK};
use crate::workload::{KernelKind, TmuRun, Workload};

const S_GRAM_LD: u16 = 330;
const S_GRAM_ST: u16 = 331;
const S_SOLVE_BR: u16 = 332;

/// A CP-ALS workload: one ALS sweep over all three modes.
#[derive(Debug)]
pub struct CpAls {
    modes: Vec<Mttkrp>,
    dims: Vec<usize>,
}

impl CpAls {
    /// Binds `tensor` (order 3) for one ALS sweep.
    pub fn new(tensor: &CooTensor) -> Self {
        assert_eq!(tensor.order(), 3, "CP-ALS fixture uses order-3 tensors");
        let dims = tensor.dims().to_vec();
        // Mode-m MTTKRP needs the tensor sorted with mode m first.
        let modes = (0..3)
            .map(|m| {
                let perm: Vec<usize> = match m {
                    0 => vec![0, 1, 2],
                    1 => vec![1, 0, 2],
                    _ => vec![2, 0, 1],
                };
                let entries: Vec<(Vec<Idx>, f64)> = tensor
                    .iter()
                    .map(|(c, v)| (perm.iter().map(|&d| c[d]).collect(), v))
                    .collect();
                let permuted_dims: Vec<usize> = perm.iter().map(|&d| dims[d]).collect();
                let t = CooTensor::from_entries(permuted_dims, entries)
                    .expect("permutation stays in bounds");
                Mttkrp::new(&t, MttkrpVariant::Mp)
            })
            .collect();
        Self { modes, dims }
    }

    /// The per-mode MTTKRP sub-workloads.
    pub fn modes(&self) -> &[Mttkrp] {
        &self.modes
    }

    /// Dense solve + normalization phase for mode `m` (core-side in both
    /// versions): Gram assembly over the factor rows and a rank-sized
    /// triangular solve per output row.
    fn run_solve_phase(&self, cfg: SystemConfig, mode: usize) -> RunStats {
        let dim = self.dims[mode];
        let shards = partition_flat(dim, cfg.cores());
        let vl = cfg.core.sve_lanes();
        let mut sys = System::new(cfg);
        sys.run(
            shards
                .into_iter()
                .map(|(r0, r1)| {
                    move |m: &mut ChannelMachine| {
                        for _row in r0..r1 {
                            // Per row: RANK-length load, R²/vl FMAs against
                            // the inverted Gram, store back.
                            let mut r = 0;
                            while r < RANK {
                                let n = (RANK - r).min(vl);
                                let ld = m.vec_load(
                                    Site(S_GRAM_LD),
                                    0x10_000 + (r * 8) as u64,
                                    (n * 8) as u32,
                                    Deps::NONE,
                                );
                                let mut acc = ld;
                                for _ in 0..RANK / n.max(1) {
                                    acc = m.vec_op((2 * n) as u32, Deps::from(acc));
                                }
                                m.store(
                                    Site(S_GRAM_ST),
                                    0x20_000 + (r * 8) as u64,
                                    (n * 8) as u32,
                                    Deps::from(acc),
                                );
                                r += n;
                                m.branch(Site(S_SOLVE_BR), r < RANK, Deps::NONE);
                            }
                        }
                    }
                })
                .collect(),
        )
    }
}

impl Workload for CpAls {
    fn name(&self) -> &'static str {
        "CP-ALS"
    }

    fn kind(&self) -> KernelKind {
        KernelKind::MemoryIntensive
    }

    fn run_baseline(&self, cfg: SystemConfig) -> RunStats {
        let mut total: Option<RunStats> = None;
        for (mode, mt) in self.modes.iter().enumerate() {
            let mttkrp = mt.run_baseline(cfg);
            let solve = self.run_solve_phase(cfg, mode);
            total = Some(match total {
                None => accumulate(mttkrp, &solve),
                Some(acc) => accumulate(accumulate(acc, &mttkrp), &solve),
            });
        }
        total.expect("three modes")
    }

    fn run_tmu(&self, cfg: SystemConfig, tmu: TmuConfig) -> TmuRun {
        let mut stats: Option<RunStats> = None;
        let mut outq = Vec::new();
        for (mode, mt) in self.modes.iter().enumerate() {
            let run = mt.run_tmu(cfg, tmu);
            let solve = self.run_solve_phase(cfg, mode);
            outq.extend(run.outq);
            stats = Some(match stats {
                None => accumulate(run.stats, &solve),
                Some(acc) => accumulate(accumulate(acc, &run.stats), &solve),
            });
        }
        TmuRun {
            stats: stats.expect("three modes"),
            outq,
        }
    }

    fn verify(&self) -> Result<(), String> {
        for mt in &self.modes {
            mt.verify()?;
        }
        Ok(())
    }
}

/// Adds a sequential phase's cycles and traffic into an accumulator.
fn accumulate(mut acc: RunStats, phase: &RunStats) -> RunStats {
    acc.cycles += phase.cycles;
    acc.dram_bytes += phase.dram_bytes;
    if acc.cores.len() == phase.cores.len() {
        for (a, p) in acc.cores.iter_mut().zip(&phase.cores) {
            a.merge(p);
        }
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use tmu_sim::{CoreConfig, MemSysConfig};
    use tmu_tensor::gen;

    #[test]
    fn verify_all_modes() {
        CpAls::new(&gen::random_tensor(&[24, 16, 12], 600, 91))
            .verify()
            .expect("all three mode MTTKRPs must verify");
    }

    #[test]
    fn sweep_runs_both_versions() {
        let w = CpAls::new(&gen::random_tensor(&[24, 16, 12], 600, 91));
        let cfg = SystemConfig {
            core: CoreConfig::neoverse_n1_like(),
            mem: MemSysConfig::table5(2),
        };
        let base = w.run_baseline(cfg);
        let run = w.run_tmu(cfg, TmuConfig::paper());
        assert!(base.cycles > 0 && run.stats.cycles > 0);
        // Three MTTKRPs worth of outQ streams.
        assert_eq!(run.outq.len(), 3 * 2);
    }
}
