//! Simulation bindings for tensor data.
//!
//! A kernel needs its arrays in three places at once: the real values (for
//! functional computation), virtual addresses (for the simulated memory
//! hierarchy), and [`tmu::MemImage`] bindings (for the TMU's functional
//! engine). The `*OnSim` types package all three.

use std::sync::Arc;

use tmu::MemImage;
use tmu_sim::{AddressMap, Region};
use tmu_tensor::{CooTensor, CsfTensor, CsrMatrix, DcsrMatrix};

/// A CSR matrix bound into the simulated address space.
#[derive(Debug, Clone)]
pub struct CsrOnSim {
    /// Number of rows.
    pub rows: usize,
    /// Number of columns.
    pub cols: usize,
    /// Row pointers (`rows + 1`).
    pub ptrs: Arc<Vec<u32>>,
    /// Column indexes.
    pub idxs: Arc<Vec<u32>>,
    /// Values.
    pub vals: Arc<Vec<f64>>,
    /// Region of `ptrs`.
    pub ptrs_r: Region,
    /// Region of `idxs`.
    pub idxs_r: Region,
    /// Region of `vals`.
    pub vals_r: Region,
}

impl CsrOnSim {
    /// Allocates regions for `csr` and binds them in `image`.
    pub fn bind(map: &mut AddressMap, image: &mut MemImage, name: &str, csr: &CsrMatrix) -> Self {
        let ptrs = Arc::new(csr.row_ptrs().to_vec());
        let idxs = Arc::new(csr.col_idxs().to_vec());
        let vals = Arc::new(csr.vals().to_vec());
        let ptrs_r = map.alloc_elems(&format!("{name}.ptrs"), ptrs.len(), 4);
        let idxs_r = map.alloc_elems(&format!("{name}.idxs"), idxs.len().max(1), 4);
        let vals_r = map.alloc_elems(&format!("{name}.vals"), vals.len().max(1), 8);
        image.bind_u32(ptrs_r, Arc::clone(&ptrs));
        image.bind_u32(idxs_r, Arc::clone(&idxs));
        image.bind_f64(vals_r, Arc::clone(&vals));
        Self {
            rows: csr.rows(),
            cols: csr.cols(),
            ptrs,
            idxs,
            vals,
            ptrs_r,
            idxs_r,
            vals_r,
        }
    }

    /// Number of stored non-zeros.
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// `(start, end)` positions of row `r`.
    pub fn row_range(&self, r: usize) -> (usize, usize) {
        (self.ptrs[r] as usize, self.ptrs[r + 1] as usize)
    }
}

/// A DCSR matrix bound into the simulated address space.
#[derive(Debug, Clone)]
pub struct DcsrOnSim {
    /// Logical rows.
    pub rows: usize,
    /// Columns.
    pub cols: usize,
    /// Indexes of non-empty rows.
    pub row_idxs: Arc<Vec<u32>>,
    /// Row pointers over stored rows.
    pub row_ptrs: Arc<Vec<u32>>,
    /// Column indexes.
    pub idxs: Arc<Vec<u32>>,
    /// Values.
    pub vals: Arc<Vec<f64>>,
    /// Region of `row_idxs`.
    pub row_idxs_r: Region,
    /// Region of `row_ptrs`.
    pub row_ptrs_r: Region,
    /// Region of `idxs`.
    pub idxs_r: Region,
    /// Region of `vals`.
    pub vals_r: Region,
}

impl DcsrOnSim {
    /// Allocates regions for `m` and binds them in `image`.
    pub fn bind(map: &mut AddressMap, image: &mut MemImage, name: &str, m: &DcsrMatrix) -> Self {
        let row_idxs = Arc::new(m.row_idxs().to_vec());
        let row_ptrs = Arc::new(m.row_ptrs().to_vec());
        let idxs = Arc::new(m.col_idxs().to_vec());
        let vals = Arc::new(m.vals().to_vec());
        let row_idxs_r = map.alloc_elems(&format!("{name}.row_idxs"), row_idxs.len().max(1), 4);
        let row_ptrs_r = map.alloc_elems(&format!("{name}.row_ptrs"), row_ptrs.len(), 4);
        let idxs_r = map.alloc_elems(&format!("{name}.idxs"), idxs.len().max(1), 4);
        let vals_r = map.alloc_elems(&format!("{name}.vals"), vals.len().max(1), 8);
        image.bind_u32(row_idxs_r, Arc::clone(&row_idxs));
        image.bind_u32(row_ptrs_r, Arc::clone(&row_ptrs));
        image.bind_u32(idxs_r, Arc::clone(&idxs));
        image.bind_f64(vals_r, Arc::clone(&vals));
        Self {
            rows: m.rows(),
            cols: m.cols(),
            row_idxs,
            row_ptrs,
            idxs,
            vals,
            row_idxs_r,
            row_ptrs_r,
            idxs_r,
            vals_r,
        }
    }

    /// Stored (non-empty) row count.
    pub fn stored_rows(&self) -> usize {
        self.row_idxs.len()
    }
}

/// A dense f64 array bound into the simulated address space.
#[derive(Debug, Clone)]
pub struct DenseOnSim {
    /// Values.
    pub data: Arc<Vec<f64>>,
    /// Region of the array.
    pub region: Region,
}

impl DenseOnSim {
    /// Allocates a region for `data` and binds it in `image`.
    pub fn bind(map: &mut AddressMap, image: &mut MemImage, name: &str, data: Vec<f64>) -> Self {
        let data = Arc::new(data);
        let region = map.alloc_elems(name, data.len().max(1), 8);
        image.bind_f64(region, Arc::clone(&data));
        Self { data, region }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the array is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

/// A COO tensor bound into the simulated address space (one index array
/// per mode plus values).
#[derive(Debug, Clone)]
pub struct CooOnSim {
    /// Dimensions.
    pub dims: Vec<usize>,
    /// Per-mode coordinate arrays.
    pub idxs: Vec<Arc<Vec<u32>>>,
    /// Values.
    pub vals: Arc<Vec<f64>>,
    /// Regions of the coordinate arrays.
    pub idxs_r: Vec<Region>,
    /// Region of the values.
    pub vals_r: Region,
}

impl CooOnSim {
    /// Allocates regions for `t` and binds them in `image`.
    pub fn bind(map: &mut AddressMap, image: &mut MemImage, name: &str, t: &CooTensor) -> Self {
        let order = t.order();
        let mut idxs = Vec::with_capacity(order);
        let mut idxs_r = Vec::with_capacity(order);
        for d in 0..order {
            let arr = Arc::new(t.mode_idxs(d).to_vec());
            let r = map.alloc_elems(&format!("{name}.idx{d}"), arr.len().max(1), 4);
            image.bind_u32(r, Arc::clone(&arr));
            idxs.push(arr);
            idxs_r.push(r);
        }
        let vals = Arc::new(t.vals().to_vec());
        let vals_r = map.alloc_elems(&format!("{name}.vals"), vals.len().max(1), 8);
        image.bind_f64(vals_r, Arc::clone(&vals));
        Self {
            dims: t.dims().to_vec(),
            idxs,
            vals,
            idxs_r,
            vals_r,
        }
    }

    /// Number of stored non-zeros.
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }
}

/// A CSF tensor bound into the simulated address space.
#[derive(Debug, Clone)]
pub struct CsfOnSim {
    /// Dimensions.
    pub dims: Vec<usize>,
    /// Per-level pointer arrays (`order - 1`).
    pub ptrs: Vec<Arc<Vec<u32>>>,
    /// Per-level coordinate arrays (`order`).
    pub idxs: Vec<Arc<Vec<u32>>>,
    /// Values.
    pub vals: Arc<Vec<f64>>,
    /// Regions of the pointer arrays.
    pub ptrs_r: Vec<Region>,
    /// Regions of the coordinate arrays.
    pub idxs_r: Vec<Region>,
    /// Region of the values.
    pub vals_r: Region,
}

impl CsfOnSim {
    /// Allocates regions for `t` and binds them in `image`.
    pub fn bind(map: &mut AddressMap, image: &mut MemImage, name: &str, t: &CsfTensor) -> Self {
        let order = t.order();
        let mut ptrs = Vec::new();
        let mut ptrs_r = Vec::new();
        for l in 0..order.saturating_sub(1) {
            let arr = Arc::new(t.ptrs(l).to_vec());
            let r = map.alloc_elems(&format!("{name}.ptr{l}"), arr.len().max(1), 4);
            image.bind_u32(r, Arc::clone(&arr));
            ptrs.push(arr);
            ptrs_r.push(r);
        }
        let mut idxs = Vec::new();
        let mut idxs_r = Vec::new();
        for l in 0..order {
            let arr = Arc::new(t.idxs(l).to_vec());
            let r = map.alloc_elems(&format!("{name}.idx{l}"), arr.len().max(1), 4);
            image.bind_u32(r, Arc::clone(&arr));
            idxs.push(arr);
            idxs_r.push(r);
        }
        let vals = Arc::new(t.vals().to_vec());
        let vals_r = map.alloc_elems(&format!("{name}.vals"), vals.len().max(1), 8);
        image.bind_f64(vals_r, Arc::clone(&vals));
        Self {
            dims: t.dims().to_vec(),
            ptrs,
            idxs,
            vals,
            ptrs_r,
            idxs_r,
            vals_r,
        }
    }

    /// Number of stored non-zeros.
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }
}

/// A banded-level matrix bound into the simulated address space. The
/// kernels crate stays layout-agnostic: the bind takes the raw encoded
/// arrays (row pointers, coordinate deltas, values) so the formats crate
/// can marshal its banded storage without a dependency cycle.
#[derive(Debug, Clone)]
pub struct BandedOnSim {
    /// Row pointers (`rows + 1`).
    pub ptrs: Arc<Vec<u32>>,
    /// Coordinate deltas (one per stored entry).
    pub deltas: Arc<Vec<u32>>,
    /// Values.
    pub vals: Arc<Vec<f64>>,
    /// Region of `ptrs`.
    pub ptrs_r: Region,
    /// Region of `deltas`.
    pub deltas_r: Region,
    /// Region of `vals`.
    pub vals_r: Region,
}

impl BandedOnSim {
    /// Allocates regions for the encoded arrays and binds them in `image`.
    pub fn bind(
        map: &mut AddressMap,
        image: &mut MemImage,
        name: &str,
        ptrs: &[u32],
        deltas: &[u32],
        vals: &[f64],
    ) -> Self {
        let ptrs = Arc::new(ptrs.to_vec());
        let deltas = Arc::new(deltas.to_vec());
        let vals = Arc::new(vals.to_vec());
        let ptrs_r = map.alloc_elems(&format!("{name}.ptrs"), ptrs.len(), 4);
        let deltas_r = map.alloc_elems(&format!("{name}.deltas"), deltas.len().max(1), 4);
        let vals_r = map.alloc_elems(&format!("{name}.vals"), vals.len().max(1), 8);
        image.bind_u32(ptrs_r, Arc::clone(&ptrs));
        image.bind_u32(deltas_r, Arc::clone(&deltas));
        image.bind_f64(vals_r, Arc::clone(&vals));
        Self {
            ptrs,
            deltas,
            vals,
            ptrs_r,
            deltas_r,
            vals_r,
        }
    }
}

/// A hashed-level matrix bound into the simulated address space: per-row
/// slot-offset pointers plus the slot coordinate/value tables (raw
/// arrays, for the same layering reason as [`BandedOnSim`]).
#[derive(Debug, Clone)]
pub struct HashedOnSim {
    /// Slot offsets per row (`rows + 1`).
    pub row_base: Arc<Vec<u32>>,
    /// Slot coordinates (sentinel-marked when unoccupied).
    pub slots: Arc<Vec<u32>>,
    /// Slot values.
    pub svals: Arc<Vec<f64>>,
    /// Region of `row_base`.
    pub row_base_r: Region,
    /// Region of `slots`.
    pub slots_r: Region,
    /// Region of `svals`.
    pub svals_r: Region,
}

impl HashedOnSim {
    /// Allocates regions for the slot tables and binds them in `image`.
    pub fn bind(
        map: &mut AddressMap,
        image: &mut MemImage,
        name: &str,
        row_base: &[u32],
        slots: &[u32],
        svals: &[f64],
    ) -> Self {
        let row_base = Arc::new(row_base.to_vec());
        let slots = Arc::new(slots.to_vec());
        let svals = Arc::new(svals.to_vec());
        let row_base_r = map.alloc_elems(&format!("{name}.row_base"), row_base.len(), 4);
        let slots_r = map.alloc_elems(&format!("{name}.slots"), slots.len().max(1), 4);
        let svals_r = map.alloc_elems(&format!("{name}.svals"), svals.len().max(1), 8);
        image.bind_u32(row_base_r, Arc::clone(&row_base));
        image.bind_u32(slots_r, Arc::clone(&slots));
        image.bind_f64(svals_r, Arc::clone(&svals));
        Self {
            row_base,
            slots,
            svals,
            row_base_r,
            slots_r,
            svals_r,
        }
    }
}

/// Splits `rows` into `shards` contiguous ranges with balanced nnz counts
/// (static scheduling as used by the paper's multithreaded baselines).
pub fn partition_rows(ptrs: &[u32], shards: usize) -> Vec<(usize, usize)> {
    let rows = ptrs.len() - 1;
    let nnz = *ptrs.last().expect("ptrs non-empty") as usize;
    let target = nnz.div_ceil(shards.max(1));
    let mut ranges = Vec::with_capacity(shards);
    let mut start = 0usize;
    for s in 0..shards {
        let goal = ((s + 1) * target).min(nnz) as u32;
        let mut end = start;
        while end < rows && ptrs[end] < goal {
            end += 1;
        }
        if s == shards - 1 {
            end = rows;
        }
        ranges.push((start, end));
        start = end;
    }
    ranges
}

/// Splits `n` items into `shards` contiguous equal ranges.
pub fn partition_flat(n: usize, shards: usize) -> Vec<(usize, usize)> {
    let per = n.div_ceil(shards.max(1));
    (0..shards)
        .map(|s| ((s * per).min(n), ((s + 1) * per).min(n)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tmu_tensor::gen;

    #[test]
    fn csr_binding_roundtrips() {
        let m = gen::uniform(32, 32, 4, 1);
        let mut map = AddressMap::new();
        let mut image = MemImage::new();
        let sim = CsrOnSim::bind(&mut map, &mut image, "a", &m);
        assert_eq!(sim.nnz(), m.nnz());
        // The image must read back the same values.
        assert_eq!(
            image.read_index(sim.ptrs_r.u32_at(1)),
            m.row_ptrs()[1] as i64
        );
        let v = f64::from_bits(image.read_bits(sim.vals_r.f64_at(0)));
        assert_eq!(v, m.vals()[0]);
    }

    #[test]
    fn partition_rows_balances_nnz() {
        let m = gen::rmat(10, 8192, 3);
        let parts = partition_rows(m.row_ptrs(), 8);
        assert_eq!(parts.len(), 8);
        assert_eq!(parts[0].0, 0);
        assert_eq!(parts[7].1, m.rows());
        // Contiguous and complete.
        for w in parts.windows(2) {
            assert_eq!(w[0].1, w[1].0);
        }
        // Reasonably balanced in nnz (within 3× of ideal for skewed input).
        let nnz_of = |(a, b): (usize, usize)| (m.row_ptrs()[b] - m.row_ptrs()[a]) as usize;
        let ideal = m.nnz() / 8;
        let max = parts.iter().map(|&p| nnz_of(p)).max().expect("non-empty");
        assert!(max < 3 * ideal + 64, "max shard {max} vs ideal {ideal}");
    }

    #[test]
    fn partition_flat_covers_everything() {
        let parts = partition_flat(100, 8);
        assert_eq!(parts[0], (0, 13));
        assert_eq!(parts.last(), Some(&(91, 100)));
        let total: usize = parts.iter().map(|(a, b)| b - a).sum();
        assert_eq!(total, 100);
    }

    #[test]
    fn csf_binding_matches_tensor() {
        let t = gen::random_tensor(&[16, 8, 8], 64, 2);
        let csf = CsfTensor::from_coo(&t);
        let mut map = AddressMap::new();
        let mut image = MemImage::new();
        let sim = CsfOnSim::bind(&mut map, &mut image, "t", &csf);
        assert_eq!(sim.nnz(), 64);
        assert_eq!(sim.ptrs.len(), 2);
        assert_eq!(sim.idxs.len(), 3);
    }

    #[test]
    fn raw_level_bindings_roundtrip_through_the_image() {
        let mut map = AddressMap::new();
        let mut image = MemImage::new();
        let b = BandedOnSim::bind(
            &mut map,
            &mut image,
            "b",
            &[0, 2, 3],
            &[1, 2, 0],
            &[1.5, 2.5, 3.5],
        );
        assert_eq!(image.read_index(b.deltas_r.u32_at(1)), 2);
        assert_eq!(f64::from_bits(image.read_bits(b.vals_r.f64_at(2))), 3.5);
        let h = HashedOnSim::bind(
            &mut map,
            &mut image,
            "h",
            &[0, 4],
            &[u32::MAX, 7, u32::MAX, 3],
            &[0.0, 1.25, 0.0, 2.25],
        );
        assert_eq!(image.read_index(h.slots_r.u32_at(1)), 7);
        assert_eq!(f64::from_bits(image.read_bits(h.svals_r.f64_at(3))), 2.25);
    }

    #[test]
    fn dcsr_binding_matches() {
        let m = gen::road(128, 2, 7);
        let d = DcsrMatrix::from_csr(&m);
        let mut map = AddressMap::new();
        let mut image = MemImage::new();
        let sim = DcsrOnSim::bind(&mut map, &mut image, "d", &d);
        assert_eq!(sim.stored_rows(), d.num_stored_rows());
    }
}
