//! Sparse tensor algebra workloads for the TMU reproduction.
//!
//! Every kernel evaluated in the paper (§6, Table 4) exists here in three
//! coupled forms:
//!
//! 1. a **reference** implementation (plain Rust) used as correctness
//!    oracle;
//! 2. a **software baseline** written against [`tmu_sim::Machine`],
//!    following the TACO/GenTen/GAP loop structures and vectorized
//!    SVE-style (vector loads, element-cracked gathers, data-dependent
//!    loop branches);
//! 3. a **TMU mapping** — a [`tmu::Program`] per Table 4 plus a
//!    [`tmu::CallbackHandler`] carrying the host-side compute of §4.3.
//!
//! All workloads implement [`workload::Workload`], which the benchmark
//! harness (`tmu-bench`) sweeps to regenerate the paper's figures.

#![warn(missing_docs)]

pub mod cpals;
pub mod data;
pub mod mapping;
pub mod mttkrp;
pub mod pagerank;
pub mod sddmm;
pub mod spkadd;
pub mod spmm;
pub mod spmspm;
pub mod spmspv;
pub mod spmv;
pub mod sptc;
pub mod spttm;
pub mod spttv;
pub mod trianglecount;
pub mod util;
pub mod workload;

pub use workload::{KernelKind, TmuRun, Workload};
