//! The Table 4 kernel→TMU mapping, as machine-checkable metadata.
//!
//! Each row records how a kernel maps onto the engine: which traversal
//! primitives (Table 1), data streams (Table 2), and inter-layer modes
//! (Table 3) its program uses. Tests assert that the programs actually
//! built by this crate exercise the claimed features, and that across the
//! suite every primitive, stream type, and mode is used — the paper's
//! functional-completeness argument (§4.4) made executable.

use tmu::{IndexSrc, LayerMode, Program, StreamDef, TraversalDef};

/// Features of a TMU program, extracted for Table 4 comparison.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ProgramFeatures {
    /// Uses `DnsFbrT`.
    pub dns: bool,
    /// Uses `RngFbrT`.
    pub rng: bool,
    /// Uses `IdxFbrT`.
    pub idx: bool,
    /// Uses `lin` streams.
    pub lin: bool,
    /// Uses `map` streams.
    pub map: bool,
    /// Uses `mem` streams.
    pub mem: bool,
    /// Uses `ldr` streams.
    pub ldr: bool,
    /// Uses `fwd` streams.
    pub fwd: bool,
    /// Uses chained (indirect) `mem` streams.
    pub chained_mem: bool,
    /// Layer modes used.
    pub modes: Vec<LayerMode>,
    /// Number of layers.
    pub layers: usize,
    /// Maximum lanes in any layer.
    pub lanes: usize,
}

/// Extracts the feature set of a built program.
pub fn features(p: &Program) -> ProgramFeatures {
    let mut f = ProgramFeatures {
        layers: p.layers().len(),
        ..Default::default()
    };
    for layer in p.layers() {
        if !f.modes.contains(&layer.mode) {
            f.modes.push(layer.mode);
        }
        f.lanes = f.lanes.max(layer.tus.len());
        for tu in &layer.tus {
            match tu.traversal {
                TraversalDef::Dns { .. } => f.dns = true,
                TraversalDef::Rng { .. } => f.rng = true,
                TraversalDef::Idx { .. } => f.idx = true,
            }
            for s in &tu.streams {
                match s {
                    StreamDef::Ite => {}
                    StreamDef::Mem { index, .. } => {
                        f.mem = true;
                        if matches!(index, IndexSrc::Stream(_)) {
                            f.chained_mem = true;
                        }
                    }
                    StreamDef::Lin { .. } => f.lin = true,
                    StreamDef::Map { .. } => f.map = true,
                    StreamDef::Ldr { .. } => f.ldr = true,
                    StreamDef::Fwd { .. } => f.fwd = true,
                }
            }
        }
    }
    f
}

/// One row of Table 4 (claimed mapping).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Table4Row {
    /// Kernel name as printed in the paper.
    pub algorithm: &'static str,
    /// Einsum expression.
    pub einsum: &'static str,
    /// Sparse input formats.
    pub formats: &'static str,
    /// Whether this repository implements the row's TMU program.
    pub implemented: bool,
}

/// The sixteen rows of Table 4.
pub const TABLE4: [Table4Row; 16] = [
    Table4Row {
        algorithm: "SpMV P0",
        einsum: "Z_i = A_ij B_j",
        formats: "A=CSR",
        implemented: true,
    },
    Table4Row {
        algorithm: "SpMV P1",
        einsum: "Z_i = A_ij B_j",
        formats: "A=CSR",
        implemented: true,
    },
    Table4Row {
        algorithm: "SpMSpV",
        einsum: "Z_i = A_ij B_j",
        formats: "A,B=CSR",
        implemented: true,
    },
    Table4Row {
        algorithm: "SpMM P0",
        einsum: "Z_ij = A_ik B_kj",
        formats: "A=CSR",
        implemented: true,
    },
    Table4Row {
        algorithm: "SpMM P1",
        einsum: "Z_ij = A_ik B_kj",
        formats: "A=CSR",
        implemented: true,
    },
    Table4Row {
        algorithm: "SpMM P2",
        einsum: "Z_ij = A_ik B_kj",
        formats: "A=CSR",
        implemented: true,
    },
    Table4Row {
        algorithm: "SpMSpM P0",
        einsum: "Z_ij = A_ik B_kj",
        formats: "A,B,X=CSR",
        implemented: true,
    },
    Table4Row {
        algorithm: "SpMSpM P2",
        einsum: "Z_ij = A_ik B_kj",
        formats: "A,B,X=CSR",
        implemented: true,
    },
    Table4Row {
        algorithm: "SpKAdd",
        einsum: "Z_ij = Σ_k A^k_ij",
        formats: "A^k,X=DCSR",
        implemented: true,
    },
    Table4Row {
        algorithm: "PageRank",
        einsum: "Z_i = A_ij X_j Y_i",
        formats: "A=CSR",
        implemented: true,
    },
    Table4Row {
        algorithm: "TriangleCount",
        einsum: "c = L_ik L^T_ki L_ij",
        formats: "L=CSR",
        implemented: true,
    },
    Table4Row {
        algorithm: "MTTKRP P1",
        einsum: "Z_ij = A_ikl B_kj C_lj",
        formats: "A=COO",
        implemented: true,
    },
    Table4Row {
        algorithm: "MTTKRP P2",
        einsum: "Z_ij = A_ikl B_kj C_lj",
        formats: "A=COO",
        implemented: true,
    },
    Table4Row {
        algorithm: "SpTC",
        einsum: "Z_ij = A_ikl B_lkj",
        formats: "A,B=CSF",
        implemented: true,
    },
    Table4Row {
        algorithm: "SpTTV",
        einsum: "Z_ij = A_ijk B_k",
        formats: "A=CSF",
        implemented: true,
    },
    Table4Row {
        algorithm: "SpTTM",
        einsum: "Z_ijl = A_ijl B_lk",
        formats: "A=CSF",
        implemented: true,
    },
];

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{mttkrp, spkadd, spmm, spmspm, spmspv, spmv, sptc, spttm, spttv, trianglecount};
    use tmu_tensor::gen;

    /// Builds one representative program per kernel family.
    fn all_programs() -> Vec<(&'static str, Program)> {
        let a = gen::uniform(64, 64, 4, 1);
        let t3 = gen::random_tensor(&[16, 8, 8], 200, 2);
        let b3 = gen::random_tensor(&[8, 8, 12], 200, 3);
        vec![
            ("SpMV", spmv::Spmv::new(&a).build_program((0, 64), 8)),
            (
                "SpMSpV",
                spmspv::Spmspv::new(&a, 0.2).build_program((0, 64)),
            ),
            ("SpMM", spmm::Spmm::new(&a).build_program((0, 64), 8)),
            ("SpMSpM", spmspm::Spmspm::new(&a).build_program((0, 64), 8)),
            (
                "SpKAdd",
                spkadd::Spkadd::new(&gen::uniform(64, 32, 3, 4)).build_program((0, 8), 8),
            ),
            (
                "PageRank",
                crate::pagerank::PageRank::new(&a).build_program((0, 64), 8),
            ),
            (
                "TC",
                trianglecount::TriangleCount::new(&a).build_program((0, 64)),
            ),
            (
                "MTTKRP_MP",
                mttkrp::Mttkrp::new(&t3, mttkrp::MttkrpVariant::Mp).build_program((0, 200), 8),
            ),
            (
                "MTTKRP_CP",
                mttkrp::Mttkrp::new(&t3, mttkrp::MttkrpVariant::Cp).build_program((0, 200), 8),
            ),
            ("SpTC", sptc::Sptc::new(&t3, &b3).build_program((0, 4))),
            ("SpTTV", spttv::Spttv::new(&t3).build_program((0, 4), 8)),
            ("SpTTM", spttm::Spttm::new(&t3).build_program((0, 4), 8)),
        ]
    }

    #[test]
    fn every_table4_row_is_implemented() {
        assert!(TABLE4.iter().all(|r| r.implemented));
        assert_eq!(TABLE4.len(), 16);
    }

    #[test]
    fn suite_covers_all_traversal_primitives() {
        let progs = all_programs();
        let fs: Vec<ProgramFeatures> = progs.iter().map(|(_, p)| features(p)).collect();
        assert!(fs.iter().any(|f| f.dns), "DnsFbrT used somewhere");
        assert!(fs.iter().any(|f| f.rng), "RngFbrT used somewhere");
        assert!(fs.iter().any(|f| f.idx), "IdxFbrT used somewhere");
    }

    #[test]
    fn suite_covers_all_stream_types() {
        let progs = all_programs();
        let fs: Vec<ProgramFeatures> = progs.iter().map(|(_, p)| features(p)).collect();
        assert!(fs.iter().any(|f| f.mem));
        assert!(fs.iter().any(|f| f.chained_mem), "scan-and-lookup chaining");
        assert!(fs.iter().any(|f| f.lin));
        assert!(fs.iter().any(|f| f.fwd));
    }

    #[test]
    fn suite_covers_all_layer_modes() {
        let progs = all_programs();
        let mut modes = Vec::new();
        for (_, p) in &progs {
            for mode in features(p).modes {
                if !modes.contains(&mode) {
                    modes.push(mode);
                }
            }
        }
        for needed in [
            LayerMode::Single,
            LayerMode::LockStep,
            LayerMode::DisjMrg,
            LayerMode::ConjMrg,
        ] {
            assert!(modes.contains(&needed), "{needed:?} must be exercised");
        }
    }

    #[test]
    fn deep_nests_are_supported() {
        let progs = all_programs();
        let max_layers = progs.iter().map(|(_, p)| features(p).layers).max().unwrap();
        assert!(
            max_layers >= 5,
            "SpTC uses a 5-layer nest, got {max_layers}"
        );
    }

    #[test]
    fn merge_kernels_use_full_lane_groups() {
        let progs = all_programs();
        let spkadd = progs.iter().find(|(n, _)| *n == "SpKAdd").unwrap();
        assert_eq!(features(&spkadd.1).lanes, 8, "SpKAdd merges 8 matrices");
    }
}
