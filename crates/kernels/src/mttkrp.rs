//! Matricized Tensor Times Khatri-Rao Product on a COO tensor:
//! `Z_{ir} = Σ_{kl} T_{ikl} · B_{kr} · C_{lr}`.
//!
//! Follows the GenTen formulation with the permutation optimization of
//! Phipps & Kolda: the tensor is sorted by the output mode, so partial
//! rows accumulate in registers until the output coordinate changes.
//! Higher-order tensors contract their trailing modes pairwise into the
//! same loop structure.
//!
//! Two TMU parallelization schemes are modeled (§6 evaluates both):
//!
//! * **MP (mode-level, "P1")** — the nnz loop stays on one lane group;
//!   lockstep lanes split the *rank* dimension, each fetching its stripe
//!   of the `B[k,·]` and `C[l,·]` rows so the core receives ready
//!   vector operands and only performs FMAs.
//! * **CP (coordinate-level, "P2")** — lockstep lanes load eight nnzs'
//!   coordinates and values at once; the core performs the (regular,
//!   prefetch-friendly) factor-row arithmetic itself.

use std::sync::{Arc, Mutex};

use tmu::{
    CallbackHandler, Event, LayerMode, MemImage, OutQEntry, Program, ProgramBuilder, StreamTy,
    TmuAccelerator, TmuConfig,
};
use tmu_sim::{
    Accelerator, AddressMap, ChannelMachine, Deps, Machine, OpId, Region, RunStats, Site, System,
    SystemConfig, VecMachine,
};
use tmu_tensor::CooTensor;

use crate::data::{partition_flat, CooOnSim, DenseOnSim};
use crate::util::check_close;
use crate::workload::{KernelKind, TmuRun, Workload};

/// Factor-matrix rank (GenTen-style small dense rank).
pub const RANK: usize = 16;

const S_COORD: u16 = 200;
const S_VAL: u16 = 201;
const S_BROW: u16 = 202;
const S_CROW: u16 = 203;
const S_ZSTORE: u16 = 204;
const S_R_BR: u16 = 205;
const S_P_BR: u16 = 206;

const CB_RANK: u32 = 0;
const CB_NNZ_END: u32 = 1;
const CB_COORDS: u32 = 2;

/// Which TMU parallelization scheme to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MttkrpVariant {
    /// Mode-level parallelism: TMU fetches factor-row stripes.
    Mp,
    /// Coordinate-level parallelism: TMU marshals nnz coordinate vectors.
    Cp,
}

#[derive(Debug, Clone)]
struct Ctx {
    idx_i: Arc<Vec<u32>>,
    idx_k: Arc<Vec<u32>>,
    idx_l: Arc<Vec<u32>>,
    idx_i_r: Region,
    idx_k_r: Region,
    idx_l_r: Region,
    vals_r: Region,
    b_r: Region,
    c_r: Region,
    z_r: Region,
}

/// An MTTKRP workload bound to the simulator.
#[derive(Debug)]
pub struct Mttkrp {
    t: CooOnSim,
    /// Contracted second-mode coordinates (mode 1, or fused modes 1..).
    k_of: Arc<Vec<u32>>,
    /// Contracted third-mode coordinates (last mode, or fused).
    l_of: Arc<Vec<u32>>,
    b: DenseOnSim,
    c: DenseOnSim,
    z_r: Region,
    outq_r: Vec<Region>,
    image: Arc<MemImage>,
    variant: MttkrpVariant,
    reference: Vec<f64>,
    dim_i: usize,
}

impl Mttkrp {
    /// Binds tensor `t` (order ≥ 3; trailing modes beyond the third are
    /// fused into the third) with deterministic dense factors.
    pub fn new(tensor: &CooTensor, variant: MttkrpVariant) -> Self {
        assert!(tensor.order() >= 3, "MTTKRP needs an order-3+ tensor");
        let nnz = tensor.nnz();
        let dim_i = tensor.dims()[0];
        let dim_k = tensor.dims()[1];
        // Fuse modes 2.. into a single "l" mode, compacted to the dense
        // range of *occupied* fused coordinates (so the Khatri-Rao factor
        // has one row per distinct fused coordinate rather than the full
        // cross product — the factor sizes real MTTKRP codes allocate).
        let mut fused_raw = Vec::with_capacity(nnz);
        for p in 0..nnz {
            let mut l = 0usize;
            for (d, &size) in tensor.dims()[2..].iter().enumerate() {
                l = l * size + tensor.mode_idxs(d + 2)[p] as usize;
            }
            fused_raw.push(l as u64);
        }
        let mut distinct: Vec<u64> = fused_raw.clone();
        distinct.sort_unstable();
        distinct.dedup();
        let remap: std::collections::HashMap<u64, u32> = distinct
            .iter()
            .enumerate()
            .map(|(i, &v)| (v, i as u32))
            .collect();
        let fused_dim = distinct.len().max(1);
        let l_of: Vec<u32> = fused_raw.iter().map(|v| remap[v]).collect();
        let k_of: Vec<u32> = tensor.mode_idxs(1).to_vec();

        let b_vals: Vec<f64> = (0..dim_k * RANK)
            .map(|x| 0.5 + (x % 89) as f64 / 89.0)
            .collect();
        let c_vals: Vec<f64> = (0..fused_dim * RANK)
            .map(|x| 0.5 + (x % 83) as f64 / 83.0)
            .collect();

        // Reference.
        let mut reference = vec![0.0f64; dim_i * RANK];
        for p in 0..nnz {
            let i = tensor.mode_idxs(0)[p] as usize;
            let k = k_of[p] as usize;
            let l = l_of[p] as usize;
            let v = tensor.vals()[p];
            for r in 0..RANK {
                reference[i * RANK + r] += v * b_vals[k * RANK + r] * c_vals[l * RANK + r];
            }
        }

        let mut map = AddressMap::new();
        let mut image = MemImage::new();
        let t = CooOnSim::bind(&mut map, &mut image, "t", tensor);
        let k_arc = Arc::new(k_of);
        let l_arc = Arc::new(l_of);
        // Bind the fused l coordinates as their own array.
        let l_r = map.alloc_elems("t.lfused", nnz.max(1), 4);
        image.bind_u32(l_r, Arc::clone(&l_arc));
        let b = DenseOnSim::bind(&mut map, &mut image, "B", b_vals);
        let c = DenseOnSim::bind(&mut map, &mut image, "C", c_vals);
        let z_r = map.alloc_elems("Z", dim_i * RANK, 8);
        let outq_r = (0..8)
            .map(|cix| map.alloc(&format!("outq{cix}"), 1 << 20))
            .collect();
        let mut t2 = t;
        t2.idxs_r[2] = l_r; // fused l replaces the raw third mode
        Self {
            t: t2,
            k_of: k_arc,
            l_of: l_arc,
            b,
            c,
            z_r,
            outq_r,
            image: Arc::new(image),
            variant,
            reference,
            dim_i,
        }
    }

    /// The reference output (row-major `dim_i × RANK`).
    pub fn reference(&self) -> &[f64] {
        &self.reference
    }

    fn ctx(&self) -> Ctx {
        Ctx {
            idx_i: Arc::clone(&self.t.idxs[0]),
            idx_k: Arc::clone(&self.k_of),
            idx_l: Arc::clone(&self.l_of),
            idx_i_r: self.t.idxs_r[0],
            idx_k_r: self.t.idxs_r[1],
            idx_l_r: self.t.idxs_r[2],
            vals_r: self.t.vals_r,
            b_r: self.b.region,
            c_r: self.c.region,
            z_r: self.z_r,
        }
    }

    /// nnz shards aligned to output-coordinate boundaries (the permutation
    /// optimization keeps same-`i` runs on one core).
    fn shards(&self, cores: usize) -> Vec<(usize, usize)> {
        let nnz = self.t.nnz();
        let mut parts = partition_flat(nnz, cores);
        let i_of = &self.t.idxs[0];
        for w in 1..parts.len() {
            let mut cut = parts[w].0;
            while cut > 0 && cut < nnz && i_of[cut] == i_of[cut - 1] {
                cut += 1;
            }
            let cut = cut.min(nnz);
            parts[w - 1].1 = cut;
            parts[w].0 = cut;
        }
        parts
    }

    /// Builds the TMU program for an nnz range.
    pub fn build_program(&self, range: (usize, usize), lanes: usize) -> Program {
        match self.variant {
            MttkrpVariant::Mp => self.build_mp(range, lanes),
            MttkrpVariant::Cp => self.build_cp(range, lanes),
        }
    }

    fn build_mp(&self, (p0, p1): (usize, usize), lanes: usize) -> Program {
        let mut bld = ProgramBuilder::new();
        let l0 = bld.layer(LayerMode::Single);
        let ptu = bld.dns_fbrt(l0, p0 as i64, p1 as i64, 1);
        let i = bld.mem_stream(ptu, self.t.idxs_r[0].base, 4, StreamTy::Index);
        let k = bld.mem_stream(ptu, self.t.idxs_r[1].base, 4, StreamTy::Index);
        let l = bld.mem_stream(ptu, self.t.idxs_r[2].base, 4, StreamTy::Index);
        let v = bld.mem_stream(ptu, self.t.vals_r.base, 8, StreamTy::Value);
        let k_row = bld.lin_stream(ptu, RANK as i64, 0, k);
        let l_row = bld.lin_stream(ptu, RANK as i64, 0, l);

        let l1 = bld.layer(LayerMode::LockStep);
        let mut bs = Vec::new();
        let mut cs = Vec::new();
        let mut v_fwd0 = None;
        let mut i_fwd0 = None;
        for lane in 0..lanes.min(RANK) as i64 {
            let rtu = bld.idx_fbrt(l1, k_row, RANK as i64, lane, lanes.min(RANK) as i64);
            let lrow_f = bld.fwd_stream(rtu, l_row);
            bs.push(bld.mem_stream(rtu, self.b.region.base, 8, StreamTy::Value));
            cs.push(bld.mem_stream_rel(rtu, self.c.region.base, 8, StreamTy::Value, lrow_f));
            let vf = bld.fwd_stream(rtu, v);
            let ifw = bld.fwd_stream(rtu, i);
            if lane == 0 {
                v_fwd0 = Some(vf);
                i_fwd0 = Some(ifw);
            }
        }
        bld.set_weight(l0, 1.0);
        bld.set_weight(l1, RANK as f64 / lanes.min(RANK) as f64 * 2.0);
        let b_op = bld.vec_operand(l1, &bs);
        let c_op = bld.vec_operand(l1, &cs);
        let v_op = bld.scalar_operand(l1, v_fwd0.expect("lane 0 exists"));
        let i_op = bld.scalar_operand(l1, i_fwd0.expect("lane 0 exists"));
        bld.callback(l1, Event::Ite, CB_RANK, &[b_op, c_op, v_op, i_op]);
        bld.callback(l1, Event::End, CB_NNZ_END, &[]);
        bld.build().expect("MTTKRP MP program is well-formed")
    }

    fn build_cp(&self, (p0, p1): (usize, usize), lanes: usize) -> Program {
        let mut bld = ProgramBuilder::new();
        let l0 = bld.layer(LayerMode::LockStep);
        let mut is = Vec::new();
        let mut ks = Vec::new();
        let mut ls = Vec::new();
        let mut vs = Vec::new();
        for lane in 0..lanes as i64 {
            let ptu = bld.dns_fbrt(l0, p0 as i64 + lane, p1 as i64, lanes as i64);
            is.push(bld.mem_stream(ptu, self.t.idxs_r[0].base, 4, StreamTy::Index));
            ks.push(bld.mem_stream(ptu, self.t.idxs_r[1].base, 4, StreamTy::Index));
            ls.push(bld.mem_stream(ptu, self.t.idxs_r[2].base, 4, StreamTy::Index));
            vs.push(bld.mem_stream(ptu, self.t.vals_r.base, 8, StreamTy::Value));
        }
        bld.set_weight(l0, 1.0);
        let i_op = bld.vec_operand(l0, &is);
        let k_op = bld.vec_operand(l0, &ks);
        let l_op = bld.vec_operand(l0, &ls);
        let v_op = bld.vec_operand(l0, &vs);
        bld.callback(l0, Event::Ite, CB_COORDS, &[i_op, k_op, l_op, v_op]);
        bld.build().expect("MTTKRP CP program is well-formed")
    }
}

/// Emits the vectorized GenTen-style baseline for an nnz range.
fn emit_baseline<M: Machine + ?Sized>(m: &mut M, ctx: &Ctx, (p0, p1): (usize, usize), vl: usize) {
    let mut cur_i: Option<u32> = None;
    for p in p0..p1 {
        let ild = m.load(Site(S_COORD), ctx.idx_i_r.u32_at(p), 4, Deps::NONE);
        let kld = m.load(Site(S_COORD), ctx.idx_k_r.u32_at(p), 4, Deps::NONE);
        let lld = m.load(Site(S_COORD), ctx.idx_l_r.u32_at(p), 4, Deps::NONE);
        let vld = m.load(Site(S_VAL), ctx.vals_r.f64_at(p), 8, Deps::NONE);
        let i = ctx.idx_i[p];
        let k = ctx.idx_k[p] as usize;
        let l = ctx.idx_l[p] as usize;
        // Flush the accumulated output row when `i` changes.
        if let Some(iprev) = cur_i.filter(|&prev| prev != i) {
            let iprev = iprev as usize;
            let mut r = 0;
            while r < RANK {
                let n = (RANK - r).min(vl);
                m.store(
                    Site(S_ZSTORE),
                    ctx.z_r.f64_at(iprev * RANK + r),
                    (n * 8) as u32,
                    Deps::NONE,
                );
                r += n;
            }
        }
        cur_i = Some(i);
        let mut r = 0;
        while r < RANK {
            let n = (RANK - r).min(vl);
            let bl = m.vec_load(
                Site(S_BROW),
                ctx.b_r.f64_at(k * RANK + r),
                (n * 8) as u32,
                Deps::from(kld),
            );
            let cl = m.vec_load(
                Site(S_CROW),
                ctx.c_r.f64_at(l * RANK + r),
                (n * 8) as u32,
                Deps::from(lld),
            );
            // acc[r..] += v · B · C : two vector FMAs (3 flops/element).
            let mul = m.vec_op((2 * n) as u32, Deps::on(&[bl, cl, vld]));
            m.vec_op(n as u32, Deps::on(&[mul, ild]));
            r += n;
            m.branch(Site(S_R_BR), r < RANK, Deps::NONE);
        }
        m.branch(Site(S_P_BR), p + 1 < p1, Deps::NONE);
    }
    if let Some(i) = cur_i {
        let mut r = 0;
        while r < RANK {
            let n = (RANK - r).min(vl);
            m.store(
                Site(S_ZSTORE),
                ctx.z_r.f64_at(i as usize * RANK + r),
                (n * 8) as u32,
                Deps::NONE,
            );
            r += n;
        }
    }
}

/// Host callbacks for both MTTKRP variants.
#[derive(Debug)]
pub struct MttkrpHandler {
    #[allow(dead_code)] // recorded for debugging dumps
    variant: MttkrpVariant,
    z_r: Region,
    b_r: Region,
    c_r: Region,
    b: Arc<Vec<f64>>,
    c: Arc<Vec<f64>>,
    cur_i: Option<u32>,
    acc: Vec<f64>,
    rank_step: usize,
    lanes: usize,
    /// Functional output rows `(i, values)`.
    pub rows: Vec<(u32, Vec<f64>)>,
}

impl MttkrpHandler {
    fn new(w: &Mttkrp, lanes: usize) -> Self {
        Self {
            variant: w.variant,
            z_r: w.z_r,
            b_r: w.b.region,
            c_r: w.c.region,
            b: Arc::clone(&w.b.data),
            c: Arc::clone(&w.c.data),
            cur_i: None,
            acc: vec![0.0; RANK],
            rank_step: 0,
            lanes: lanes.min(RANK),
            rows: Vec::new(),
        }
    }

    fn flush(&mut self, m: &mut VecMachine) {
        if let Some(i) = self.cur_i.take() {
            let mut r = 0;
            while r < RANK {
                let n = (RANK - r).min(8);
                m.store(
                    Site(S_ZSTORE),
                    self.z_r.f64_at(i as usize * RANK + r),
                    (n * 8) as u32,
                    Deps::NONE,
                );
                r += n;
            }
            self.rows
                .push((i, std::mem::replace(&mut self.acc, vec![0.0; RANK])));
        }
    }
}

impl CallbackHandler for MttkrpHandler {
    fn handle(&mut self, entry: &OutQEntry, entry_load: OpId, m: &mut VecMachine) {
        match entry.callback {
            CB_RANK => {
                // MP: lanes carry B and C stripes for rank positions
                // `lane + rank_step·lanes`.
                let bsv = entry.operands[0].as_f64s();
                let csv = entry.operands[1].as_f64s();
                let v = entry.operands[2].as_f64();
                let i = entry.operands[3].as_index() as u32;
                if self.cur_i != Some(i) {
                    self.flush(m);
                    self.cur_i = Some(i);
                    self.rank_step = 0;
                }
                for (lane, (&bv, &cv)) in bsv.iter().zip(&csv).enumerate() {
                    if entry.mask & (1 << lane) != 0 {
                        let r = lane + self.rank_step * self.lanes;
                        self.acc[r] += v * bv * cv;
                    }
                }
                self.rank_step += 1;
                let active = entry.mask.count_ones();
                let mul = m.vec_op(2 * active, Deps::from(entry_load));
                m.vec_op(active, Deps::from(mul));
            }
            CB_NNZ_END => {
                self.rank_step = 0;
            }
            CB_COORDS => {
                // CP: the core fetches the factor rows itself.
                let is = entry.operands[0].as_indexes();
                let ks = entry.operands[1].as_indexes();
                let ls = entry.operands[2].as_indexes();
                let vs = entry.operands[3].as_f64s();
                for lane in 0..is.len() {
                    if entry.mask & (1 << lane) == 0 {
                        continue;
                    }
                    let (i, k, l, v) = (
                        is[lane] as u32,
                        ks[lane] as usize,
                        ls[lane] as usize,
                        vs[lane],
                    );
                    if self.cur_i != Some(i) {
                        self.flush(m);
                        self.cur_i = Some(i);
                    }
                    let mut r = 0;
                    while r < RANK {
                        let n = (RANK - r).min(8);
                        let bl = m.vec_load(
                            Site(S_BROW),
                            self.b_r.f64_at(k * RANK + r),
                            (n * 8) as u32,
                            Deps::from(entry_load),
                        );
                        let cl = m.vec_load(
                            Site(S_CROW),
                            self.c_r.f64_at(l * RANK + r),
                            (n * 8) as u32,
                            Deps::from(entry_load),
                        );
                        let mul = m.vec_op((2 * n) as u32, Deps::on(&[bl, cl]));
                        m.vec_op(n as u32, Deps::from(mul));
                        for rr in r..r + n {
                            self.acc[rr] += v * self.b[k * RANK + rr] * self.c[l * RANK + rr];
                        }
                        r += n;
                    }
                }
            }
            other => panic!("MTTKRP: unexpected callback {other}"),
        }
    }
}

impl Workload for Mttkrp {
    fn name(&self) -> &'static str {
        match self.variant {
            MttkrpVariant::Mp => "MTTKRP_MP",
            MttkrpVariant::Cp => "MTTKRP_CP",
        }
    }

    fn kind(&self) -> KernelKind {
        KernelKind::MemoryIntensive
    }

    fn run_baseline(&self, cfg: SystemConfig) -> RunStats {
        let shards = self.shards(cfg.cores());
        let vl = cfg.core.sve_lanes();
        let ctx = self.ctx();
        let mut sys = System::new(cfg);
        sys.run(
            shards
                .into_iter()
                .map(|range| {
                    let ctx = ctx.clone();
                    move |m: &mut ChannelMachine| emit_baseline(m, &ctx, range, vl)
                })
                .collect(),
        )
    }

    fn run_tmu(&self, cfg: SystemConfig, tmu: TmuConfig) -> TmuRun {
        let shards = self.shards(cfg.cores());
        let mut handles = Vec::new();
        let accels: Vec<Box<dyn Accelerator>> = shards
            .iter()
            .enumerate()
            .map(|(cix, &range)| {
                let prog = Arc::new(self.build_program(range, tmu.lanes));
                let handler = MttkrpHandler::new(self, tmu.lanes);
                let acc = TmuAccelerator::new(
                    tmu,
                    prog,
                    Arc::clone(&self.image),
                    handler,
                    self.outq_r[cix].base,
                );
                handles.push(acc.stats_handle());
                Box::new(acc) as Box<dyn Accelerator>
            })
            .collect();
        let mut sys = System::new(cfg);
        let stats = sys.run_accelerated(accels);
        TmuRun {
            stats,
            outq: handles
                .iter()
                .map(|h: &Arc<Mutex<tmu::OutQStats>>| h.lock().expect("stats").clone())
                .collect(),
        }
    }

    fn verify(&self) -> Result<(), String> {
        let mut got = vec![0.0f64; self.dim_i * RANK];
        for &range in &self.shards(8) {
            let prog = Arc::new(self.build_program(range, 8));
            let mut handler = MttkrpHandler::new(self, 8);
            let mut vm = VecMachine::new();
            tmu::for_each_entry(&prog, &self.image, |e| {
                handler.handle(e, OpId::NONE, &mut vm);
            });
            handler.flush(&mut vm);
            for (i, row) in handler.rows {
                for (r, v) in row.into_iter().enumerate() {
                    got[i as usize * RANK + r] += v;
                }
            }
        }
        check_close(self.name(), &got, &self.reference, 1e-9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tmu_sim::{CoreConfig, MemSysConfig};
    use tmu_tensor::gen;

    fn small_cfg(cores: usize) -> SystemConfig {
        SystemConfig {
            core: CoreConfig::neoverse_n1_like(),
            mem: MemSysConfig::table5(cores),
        }
    }

    fn tensor() -> CooTensor {
        gen::random_tensor(&[64, 32, 16], 1500, 33)
    }

    #[test]
    fn verify_mp_variant() {
        Mttkrp::new(&tensor(), MttkrpVariant::Mp)
            .verify()
            .expect("MP must match reference");
    }

    #[test]
    fn verify_cp_variant() {
        Mttkrp::new(&tensor(), MttkrpVariant::Cp)
            .verify()
            .expect("CP must match reference");
    }

    #[test]
    fn order4_tensors_are_fused() {
        let t = gen::random_tensor(&[32, 16, 8, 6], 800, 9);
        Mttkrp::new(&t, MttkrpVariant::Mp)
            .verify()
            .expect("order-4 MTTKRP via mode fusion");
    }

    #[test]
    fn baseline_and_tmu_run() {
        let w = Mttkrp::new(&tensor(), MttkrpVariant::Mp);
        let base = w.run_baseline(small_cfg(2));
        let run = w.run_tmu(small_cfg(2), TmuConfig::paper());
        assert!(base.cycles > 0 && run.stats.cycles > 0);
        assert!(base.total().flops > 0);
    }

    #[test]
    fn shards_respect_row_boundaries() {
        let w = Mttkrp::new(&tensor(), MttkrpVariant::Mp);
        let shards = w.shards(4);
        for win in shards.windows(2) {
            let cut = win[0].1;
            if cut > 0 && cut < w.t.nnz() {
                assert_ne!(
                    w.t.idxs[0][cut - 1],
                    w.t.idxs[0][cut],
                    "no i-run may span two shards"
                );
            }
        }
    }
}
