//! PageRank (GAP benchmark, Jacobi-style pull iteration).
//!
//! Per iteration: a dense *weight update* computes each vertex's
//! contribution `contrib[j] = rank[j] / outdeg[j]`, then a gather phase
//! accumulates in-neighbour contributions (an SpMV over the in-adjacency
//! CSR) and applies the damping factor. The TMU accelerates only the
//! gather phase — the dense update stays on the core, which is why the
//! paper reports slightly lower speedups for PR than for SpMV (§7.1).
//!
//! The two phases are separated by a barrier in the real code, so each is
//! timed as its own run and the cycle counts are summed.

use std::sync::{Arc, Mutex};

use tmu::{
    CallbackHandler, Event, LayerMode, MemImage, OutQEntry, Program, ProgramBuilder, StreamTy,
    TmuAccelerator, TmuConfig,
};
use tmu_sim::{
    Accelerator, AddressMap, ChannelMachine, Deps, Machine, OpId, Region, RunStats, Site, System,
    SystemConfig, VecMachine,
};
use tmu_tensor::CsrMatrix;

use crate::data::{partition_flat, partition_rows, CsrOnSim, DenseOnSim};
use crate::util::{check_close, fold_deps};
use crate::workload::{KernelKind, TmuRun, Workload};

const S_RANK: u16 = 160;
const S_DEG: u16 = 161;
const S_CONTRIB_ST: u16 = 162;
const S_DENSE_BR: u16 = 163;
const S_PTR: u16 = 164;
const S_IDX: u16 = 165;
const S_GATHER: u16 = 166;
const S_INNER_BR: u16 = 167;
const S_STORE: u16 = 168;
const S_OUTER_BR: u16 = 169;

const CB_RI: u32 = 0;
const CB_RE: u32 = 1;

/// Damping factor used by the GAP benchmark.
pub const DAMPING: f64 = 0.85;

#[derive(Debug, Clone)]
struct Ctx {
    ptrs: Arc<Vec<u32>>,
    idxs: Arc<Vec<u32>>,
    ptrs_r: Region,
    idxs_r: Region,
    rank_r: Region,
    deg_r: Region,
    contrib_r: Region,
    out_r: Region,
    #[allow(dead_code)] // graph size, kept for diagnostics
    n: usize,
}

/// A PageRank workload bound to the simulator.
#[derive(Debug)]
pub struct PageRank {
    adj: CsrOnSim,
    rank: DenseOnSim,
    deg: DenseOnSim,
    contrib_r: Region,
    out_r: Region,
    outq_r: Vec<Region>,
    image: Arc<MemImage>,
    reference: Vec<f64>,
    contrib_vals: Arc<Vec<f64>>,
}

impl PageRank {
    /// Binds graph `adj` (rows list in-neighbours) for one iteration.
    pub fn new(adj_mat: &CsrMatrix) -> Self {
        let n = adj_mat.rows();
        Self::with_ranks(adj_mat, vec![1.0 / n.max(1) as f64; n])
    }

    /// Binds graph `adj` with a caller-supplied current rank vector —
    /// the shape the application DAG uses to iterate to convergence.
    pub fn with_ranks(adj_mat: &CsrMatrix, rank_vals: Vec<f64>) -> Self {
        let n = adj_mat.rows();
        assert_eq!(rank_vals.len(), n, "rank vector must match vertex count");
        let mut map = AddressMap::new();
        let mut image = MemImage::new();
        let adj = CsrOnSim::bind(&mut map, &mut image, "adj", adj_mat);
        // Out-degrees from the transpose; isolated vertices get degree 1.
        let t = adj_mat.transpose();
        let deg_vals: Vec<f64> = (0..n).map(|j| (t.row(j).count().max(1)) as f64).collect();
        let contrib_vals: Vec<f64> = rank_vals
            .iter()
            .zip(&deg_vals)
            .map(|(r, d)| r / d)
            .collect();
        let rank = DenseOnSim::bind(&mut map, &mut image, "rank", rank_vals);
        let deg = DenseOnSim::bind(&mut map, &mut image, "deg", deg_vals);
        let contrib_arc = Arc::new(contrib_vals);
        let contrib_r = map.alloc_elems("contrib", n.max(1), 8);
        image.bind_f64(contrib_r, Arc::clone(&contrib_arc));
        let out_r = map.alloc_elems("out", n.max(1), 8);
        let outq_r = (0..8)
            .map(|c| map.alloc(&format!("outq{c}"), 1 << 20))
            .collect();
        let base = (1.0 - DAMPING) / n as f64;
        let reference: Vec<f64> = (0..n)
            .map(|i| {
                let sum: f64 = adj_mat.row(i).map(|(j, _)| contrib_arc[j as usize]).sum();
                base + DAMPING * sum
            })
            .collect();
        Self {
            adj,
            rank,
            deg,
            contrib_r,
            out_r,
            outq_r,
            image: Arc::new(image),
            reference,
            contrib_vals: contrib_arc,
        }
    }

    /// The reference next-iteration ranks.
    pub fn reference(&self) -> &[f64] {
        &self.reference
    }

    /// Shared memory image (for standalone engine experiments).
    pub fn image_handle(&self) -> Arc<MemImage> {
        Arc::clone(&self.image)
    }

    /// outQ base address of a core.
    pub fn outq_base(&self, core: usize) -> u64 {
        self.outq_r[core].base
    }

    /// Output-ranks region (for standalone handlers).
    pub fn out_region(&self) -> Region {
        self.out_r
    }

    /// Vertex count.
    pub fn vertices(&self) -> usize {
        self.adj.rows
    }

    /// Functional gather-phase execution over the full vertex range:
    /// next-iteration ranks exactly as the callback handler computes them.
    pub fn functional(&self, lanes: usize) -> Vec<f64> {
        let prog = Arc::new(self.build_program((0, self.adj.rows), lanes));
        let mut handler = PageRankHandler::new(self.out_r, 0, self.adj.rows);
        let mut vm = VecMachine::new();
        tmu::for_each_entry(&prog, &self.image, |e| {
            handler.handle(e, OpId::NONE, &mut vm);
        });
        handler.out
    }

    fn ctx(&self) -> Ctx {
        Ctx {
            ptrs: Arc::clone(&self.adj.ptrs),
            idxs: Arc::clone(&self.adj.idxs),
            ptrs_r: self.adj.ptrs_r,
            idxs_r: self.adj.idxs_r,
            rank_r: self.rank.region,
            deg_r: self.deg.region,
            contrib_r: self.contrib_r,
            out_r: self.out_r,
            n: self.adj.rows,
        }
    }

    /// Builds the gather-phase TMU program (Table 4 PageRank row).
    pub fn build_program(&self, rows: (usize, usize), lanes: usize) -> Program {
        let mut b = ProgramBuilder::new();
        let l0 = b.layer(LayerMode::Single);
        let row = b.dns_fbrt(l0, rows.0 as i64, rows.1 as i64, 1);
        let ptbs = b.mem_stream(row, self.adj.ptrs_r.base, 4, StreamTy::Index);
        let ptes = b.mem_stream(row, self.adj.ptrs_r.base + 4, 4, StreamTy::Index);
        let l1 = b.layer(LayerMode::LockStep);
        let mut contribs = Vec::new();
        for lane in 0..lanes as i64 {
            let col = b.rng_fbrt(l1, ptbs, ptes, lane, lanes as i64);
            let ci = b.mem_stream(col, self.adj.idxs_r.base, 4, StreamTy::Index);
            contribs.push(b.mem_stream_indexed(col, self.contrib_r.base, 8, StreamTy::Value, ci));
        }
        let avg_row = self.adj.nnz() as f64 / self.adj.rows.max(1) as f64;
        b.set_weight(l0, 1.0);
        b.set_weight(l1, avg_row.max(1.0));
        let op = b.vec_operand(l1, &contribs);
        b.callback(l1, Event::Ite, CB_RI, &[op]);
        b.callback(l1, Event::End, CB_RE, &[]);
        b.build().expect("PageRank program is well-formed")
    }

    /// Dense weight-update phase (runs on the core in both versions).
    fn run_dense_phase(&self, cfg: SystemConfig) -> RunStats {
        let shards = partition_flat(self.adj.rows, cfg.cores());
        let vl = cfg.core.sve_lanes();
        let ctx = self.ctx();
        let mut sys = System::new(cfg);
        sys.run(
            shards
                .into_iter()
                .map(|range| {
                    let ctx = ctx.clone();
                    move |m: &mut ChannelMachine| {
                        let (j0, j1) = range;
                        let mut j = j0;
                        while j < j1 {
                            let n = (j1 - j).min(vl);
                            let r = m.vec_load(
                                Site(S_RANK),
                                ctx.rank_r.f64_at(j),
                                (n * 8) as u32,
                                Deps::NONE,
                            );
                            let d = m.vec_load(
                                Site(S_DEG),
                                ctx.deg_r.f64_at(j),
                                (n * 8) as u32,
                                Deps::NONE,
                            );
                            let div = m.vec_op(n as u32, Deps::on(&[r, d]));
                            m.store(
                                Site(S_CONTRIB_ST),
                                ctx.contrib_r.f64_at(j),
                                (n * 8) as u32,
                                Deps::from(div),
                            );
                            j += n;
                            m.branch(Site(S_DENSE_BR), j < j1, Deps::NONE);
                        }
                    }
                })
                .collect(),
        )
    }

    fn run_gather_baseline(&self, cfg: SystemConfig) -> RunStats {
        let shards = partition_rows(&self.adj.ptrs, cfg.cores());
        let vl = cfg.core.sve_lanes();
        let ctx = self.ctx();
        let mut sys = System::new(cfg);
        sys.run(
            shards
                .into_iter()
                .map(|range| {
                    let ctx = ctx.clone();
                    move |m: &mut ChannelMachine| gather_baseline(m, &ctx, range, vl)
                })
                .collect(),
        )
    }
}

fn gather_baseline<M: Machine + ?Sized>(m: &mut M, ctx: &Ctx, rows: (usize, usize), vl: usize) {
    let (r0, r1) = rows;
    if r0 >= r1 {
        return;
    }
    let mut ptr_prev = m.load(Site(S_PTR), ctx.ptrs_r.u32_at(r0), 4, Deps::NONE);
    for i in r0..r1 {
        let ptr_next = m.load(Site(S_PTR), ctx.ptrs_r.u32_at(i + 1), 4, Deps::NONE);
        let (beg, end) = (ctx.ptrs[i] as usize, ctx.ptrs[i + 1] as usize);
        let mut sum = OpId::NONE;
        let mut p = beg;
        while p < end {
            let n = (end - p).min(vl);
            let bounds = Deps::on(&[ptr_prev, ptr_next]);
            let idxv = m.vec_load(Site(S_IDX), ctx.idxs_r.u32_at(p), (n * 4) as u32, bounds);
            let mut adds = Vec::with_capacity(n + 1);
            for e in 0..n {
                let j = ctx.idxs[p + e] as usize;
                adds.push(m.load(Site(S_GATHER), ctx.contrib_r.f64_at(j), 8, Deps::from(idxv)));
            }
            if sum.is_some() {
                adds.push(sum);
            }
            let deps = fold_deps(m, &adds);
            sum = m.vec_op(n as u32, deps);
            p += n;
            m.branch(Site(S_INNER_BR), p < end, bounds);
        }
        // rank_new = base + d·sum.
        let fin = m.fp_op(2, Deps::from(sum));
        m.store(Site(S_STORE), ctx.out_r.f64_at(i), 8, Deps::from(fin));
        m.branch(Site(S_OUTER_BR), i + 1 < r1, Deps::NONE);
        ptr_prev = ptr_next;
    }
}

/// Gather-phase callbacks: `ri` accumulates contributions, `re` applies
/// damping and stores the new rank.
#[derive(Debug)]
pub struct PageRankHandler {
    out_r: Region,
    next_row: usize,
    n: usize,
    sum: f64,
    sum_dep: OpId,
    /// Functional output ranks (in traversal order).
    pub out: Vec<f64>,
}

impl PageRankHandler {
    /// Handler for rows starting at `first_row` of an `n`-vertex graph.
    pub fn new(out_r: Region, first_row: usize, n: usize) -> Self {
        Self {
            out_r,
            next_row: first_row,
            n,
            sum: 0.0,
            sum_dep: OpId::NONE,
            out: Vec::new(),
        }
    }
}

impl CallbackHandler for PageRankHandler {
    fn handle(&mut self, entry: &OutQEntry, entry_load: OpId, m: &mut VecMachine) {
        match entry.callback {
            CB_RI => {
                let c = entry.operands[0].as_f64s();
                self.sum += c.iter().sum::<f64>();
                let active = entry.mask.count_ones();
                self.sum_dep = m.vec_op(active, Deps::on(&[entry_load, self.sum_dep]));
            }
            CB_RE => {
                let base = (1.0 - DAMPING) / self.n as f64;
                self.out.push(base + DAMPING * self.sum);
                self.sum = 0.0;
                let fin = m.fp_op(2, Deps::from(self.sum_dep));
                m.store(
                    Site(S_STORE),
                    self.out_r.f64_at(self.next_row),
                    8,
                    Deps::from(fin),
                );
                self.next_row += 1;
                self.sum_dep = OpId::NONE;
            }
            other => panic!("PageRank: unexpected callback {other}"),
        }
    }
}

impl Workload for PageRank {
    fn name(&self) -> &'static str {
        "PR"
    }

    fn kind(&self) -> KernelKind {
        KernelKind::MemoryIntensive
    }

    fn run_baseline(&self, cfg: SystemConfig) -> RunStats {
        let dense = self.run_dense_phase(cfg);
        let mut gather = self.run_gather_baseline(cfg);
        gather.cycles += dense.cycles;
        gather.dram_bytes += dense.dram_bytes;
        for (g, d) in gather.cores.iter_mut().zip(&dense.cores) {
            g.merge(d);
        }
        gather
    }

    fn run_tmu(&self, cfg: SystemConfig, tmu: TmuConfig) -> TmuRun {
        let dense = self.run_dense_phase(cfg);
        let shards = partition_rows(&self.adj.ptrs, cfg.cores());
        let mut handles = Vec::new();
        let accels: Vec<Box<dyn Accelerator>> = shards
            .iter()
            .enumerate()
            .map(|(c, &range)| {
                let prog = Arc::new(self.build_program(range, tmu.lanes));
                let handler = PageRankHandler::new(self.out_r, range.0, self.adj.rows);
                let acc = TmuAccelerator::new(
                    tmu,
                    prog,
                    Arc::clone(&self.image),
                    handler,
                    self.outq_r[c].base,
                );
                handles.push(acc.stats_handle());
                Box::new(acc) as Box<dyn Accelerator>
            })
            .collect();
        let mut sys = System::new(cfg);
        let mut stats = sys.run_accelerated(accels);
        stats.cycles += dense.cycles;
        stats.dram_bytes += dense.dram_bytes;
        for (g, d) in stats.cores.iter_mut().zip(&dense.cores) {
            g.merge(d);
        }
        TmuRun {
            stats,
            outq: handles
                .iter()
                .map(|h: &Arc<Mutex<tmu::OutQStats>>| h.lock().expect("stats").clone())
                .collect(),
        }
    }

    fn verify(&self) -> Result<(), String> {
        let mut got = Vec::new();
        for &range in &partition_rows(&self.adj.ptrs, 8) {
            let prog = Arc::new(self.build_program(range, 8));
            let mut handler = PageRankHandler::new(self.out_r, range.0, self.adj.rows);
            let mut vm = VecMachine::new();
            tmu::for_each_entry(&prog, &self.image, |e| {
                handler.handle(e, OpId::NONE, &mut vm);
            });
            got.extend(handler.out);
        }
        let _ = &self.contrib_vals;
        check_close("PageRank", &got, &self.reference, 1e-9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tmu_sim::{CoreConfig, MemSysConfig};
    use tmu_tensor::gen;

    fn small_cfg(cores: usize) -> SystemConfig {
        SystemConfig {
            core: CoreConfig::neoverse_n1_like(),
            mem: MemSysConfig::table5(cores),
        }
    }

    #[test]
    fn verify_against_reference() {
        PageRank::new(&gen::rmat(9, 4096, 17))
            .verify()
            .expect("TMU PageRank must match reference");
    }

    #[test]
    fn ranks_stay_a_distribution() {
        let w = PageRank::new(&gen::rmat(8, 2048, 3));
        // A PageRank step preserves non-negativity and boundedness.
        assert!(w.reference().iter().all(|&r| (0.0..=1.0).contains(&r)));
    }

    #[test]
    fn baseline_and_tmu_run() {
        let w = PageRank::new(&gen::rmat(8, 2048, 5));
        let base = w.run_baseline(small_cfg(2));
        let tmu = w.run_tmu(small_cfg(2), TmuConfig::paper());
        assert!(base.cycles > 0 && tmu.stats.cycles > 0);
        // Both versions pay the dense phase, so PR's speedup must not
        // exceed what the gather phase alone would give.
        assert!(tmu.stats.cycles > 0);
    }
}
