//! Sampled Dense-Dense Matrix Multiplication,
//! `S_{ij} = A_{ij} · Σ_r U_{ir} · V_{jr}` (CSR sample × two row-major
//! dense factors).
//!
//! SDDMM is the score stage of a GNN attention layer: the sparse
//! adjacency samples which pairwise feature dot products are ever
//! computed. The marshaling shape is the SpMM "P1" scheme run in
//! reverse: the TMU traverses `i` and the sampled `j` per non-zero and
//! its lockstep lanes fetch the `V[j, ·]` row stripes plus the forwarded
//! sample value, so the host core only multiply-accumulates against its
//! resident `U[i, ·]` row and scales by `A_{ij}` at each non-zero's end.

use std::sync::Arc;

use tmu::{
    CallbackHandler, Event, LayerMode, MemImage, OutQEntry, Program, ProgramBuilder, StreamTy,
};
use tmu_sim::{AddressMap, Deps, Machine, OpId, Region, Site, VecMachine};
use tmu_tensor::CsrMatrix;

use crate::data::{CsrOnSim, DenseOnSim};
use crate::spmm::RANK;

const S_STORE: u16 = 290;

const CB_RI: u32 = 0;
const CB_K_END: u32 = 1;
const CB_ROW_END: u32 = 2;

/// An SDDMM workload bound to the simulator. The `V` factor lives in
/// simulated memory (the TMU streams its rows); the `U` factor stays
/// host-resident (the handler indexes it by the current output row).
#[derive(Debug)]
pub struct Sddmm {
    a: CsrOnSim,
    v: DenseOnSim,
    u: Arc<Vec<f64>>,
    s_r: Region,
    outq_r: Vec<Region>,
    image: Arc<MemImage>,
    reference: Vec<f64>,
    cols: usize,
}

impl Sddmm {
    /// Binds sample matrix `a` with deterministic dense factors.
    pub fn new(a_mat: &CsrMatrix) -> Self {
        let u: Vec<f64> = (0..a_mat.rows() * RANK)
            .map(|x| 0.5 + (x % 61) as f64 / 61.0)
            .collect();
        let v: Vec<f64> = (0..a_mat.cols() * RANK)
            .map(|x| 0.5 + (x % 73) as f64 / 73.0)
            .collect();
        Self::with_factors(a_mat, u, v)
    }

    /// Binds sample matrix `a` with the given factors (`u` is
    /// `rows × RANK` row-major, `v` is `cols × RANK` row-major).
    pub fn with_factors(a_mat: &CsrMatrix, u: Vec<f64>, v: Vec<f64>) -> Self {
        assert_eq!(u.len(), a_mat.rows() * RANK, "U must be rows × RANK");
        assert_eq!(v.len(), a_mat.cols() * RANK, "V must be cols × RANK");
        let mut reference = Vec::with_capacity(a_mat.nnz());
        for i in 0..a_mat.rows() {
            for (j, a) in a_mat.row(i) {
                let dot: f64 = (0..RANK)
                    .map(|r| u[i * RANK + r] * v[j as usize * RANK + r])
                    .sum();
                reference.push(a * dot);
            }
        }
        let mut map = AddressMap::new();
        let mut image = MemImage::new();
        let a = CsrOnSim::bind(&mut map, &mut image, "a", a_mat);
        let v = DenseOnSim::bind(&mut map, &mut image, "V", v);
        let s_r = map.alloc_elems("S.vals", a_mat.nnz().max(1), 8);
        let outq_r = (0..8)
            .map(|c| map.alloc(&format!("outq{c}"), 1 << 20))
            .collect();
        Self {
            a,
            v,
            u: Arc::new(u),
            s_r,
            outq_r,
            image: Arc::new(image),
            reference,
            cols: a_mat.cols(),
        }
    }

    /// The reference output values (in non-zero order).
    pub fn reference(&self) -> &[f64] {
        &self.reference
    }

    /// Shared memory image (for standalone engine experiments).
    pub fn image_handle(&self) -> Arc<MemImage> {
        Arc::clone(&self.image)
    }

    /// outQ base address of a core.
    pub fn outq_base(&self, core: usize) -> u64 {
        self.outq_r[core].base
    }

    /// Output-values region (for standalone handlers).
    pub fn s_region(&self) -> Region {
        self.s_r
    }

    /// The host-resident `U` factor.
    pub fn u_factor(&self) -> Arc<Vec<f64>> {
        Arc::clone(&self.u)
    }

    /// Assembles the sparse output `S` from computed values: `S` shares
    /// `A`'s sparsity pattern, only the stored values differ.
    ///
    /// # Errors
    ///
    /// Propagates [`CsrMatrix::from_parts`] validation (a value count
    /// that does not match `A`'s non-zeros).
    pub fn output_matrix(&self, vals: Vec<f64>) -> Result<CsrMatrix, String> {
        CsrMatrix::from_parts(
            self.a.rows,
            self.cols,
            self.a.ptrs.as_ref().clone(),
            self.a.idxs.as_ref().clone(),
            vals,
        )
        .map_err(|e| format!("SDDMM output: {e:?}"))
    }

    /// Builds the SDDMM TMU program for a row range (the SpMM P1 layer
    /// structure with `V` as the streamed dense factor).
    pub fn build_program(&self, rows: (usize, usize), lanes: usize) -> Program {
        let lanes = lanes.min(RANK);
        let mut bld = ProgramBuilder::new();
        let l0 = bld.layer(LayerMode::Single);
        let itu = bld.dns_fbrt(l0, rows.0 as i64, rows.1 as i64, 1);
        let pb = bld.mem_stream(itu, self.a.ptrs_r.base, 4, StreamTy::Index);
        let pe = bld.mem_stream(itu, self.a.ptrs_r.base + 4, 4, StreamTy::Index);

        let l1 = bld.layer(LayerMode::Single);
        let ktu = bld.rng_fbrt(l1, pb, pe, 0, 1);
        let kidx = bld.mem_stream(ktu, self.a.idxs_r.base, 4, StreamTy::Index);
        let kval = bld.mem_stream(ktu, self.a.vals_r.base, 8, StreamTy::Value);
        let k_row = bld.lin_stream(ktu, RANK as i64, 0, kidx);

        let l2 = bld.layer(LayerMode::LockStep);
        let mut vs = Vec::new();
        let mut a_fwd0 = None;
        for lane in 0..lanes as i64 {
            let rtu = bld.idx_fbrt(l2, k_row, RANK as i64, lane, lanes as i64);
            vs.push(bld.mem_stream(rtu, self.v.region.base, 8, StreamTy::Value));
            let af = bld.fwd_stream(rtu, kval);
            if lane == 0 {
                a_fwd0 = Some(af);
            }
        }
        let avg = self.a.nnz() as f64 / self.a.rows.max(1) as f64;
        bld.set_weight(l0, 1.0);
        bld.set_weight(l1, avg.max(1.0));
        bld.set_weight(l2, (avg * 2.0).max(2.0));
        let v_op = bld.vec_operand(l2, &vs);
        let a_op = bld.scalar_operand(l2, a_fwd0.expect("lane 0 exists"));
        bld.callback(l2, Event::Ite, CB_RI, &[v_op, a_op]);
        bld.callback(l2, Event::End, CB_K_END, &[]);
        bld.callback(l1, Event::End, CB_ROW_END, &[]);
        bld.build().expect("SDDMM program is well-formed")
    }

    /// Functional execution over the full row range: output values in
    /// non-zero order, exactly as the callback handler computes them.
    pub fn functional(&self, lanes: usize) -> Vec<f64> {
        let prog = Arc::new(self.build_program((0, self.a.rows), lanes));
        let mut handler = SddmmHandler::new(self.s_r, Arc::clone(&self.u), 0, lanes);
        let mut vm = VecMachine::new();
        tmu::for_each_entry(&prog, &self.image, |e| {
            handler.handle(e, OpId::NONE, &mut vm);
        });
        handler.s_vals
    }
}

/// Host callbacks: dot the marshaled `V` stripes against the resident
/// `U` row, scale by the forwarded sample value at each non-zero's end.
#[derive(Debug)]
pub struct SddmmHandler {
    s_r: Region,
    u: Arc<Vec<f64>>,
    next_row: usize,
    next_pos: usize,
    rank_step: usize,
    lanes: usize,
    dot: f64,
    aval: f64,
    /// Functional output values (non-zero order).
    pub s_vals: Vec<f64>,
}

impl SddmmHandler {
    /// Handler for rows starting at `first_row` (non-zero positions
    /// restart at 0 for a sharded run — shards concatenate in order).
    pub fn new(s_r: Region, u: Arc<Vec<f64>>, first_row: usize, lanes: usize) -> Self {
        Self {
            s_r,
            u,
            next_row: first_row,
            next_pos: 0,
            rank_step: 0,
            lanes: lanes.min(RANK),
            dot: 0.0,
            aval: 0.0,
            s_vals: Vec::new(),
        }
    }
}

impl CallbackHandler for SddmmHandler {
    fn handle(&mut self, entry: &OutQEntry, entry_load: OpId, m: &mut VecMachine) {
        match entry.callback {
            CB_RI => {
                let vs = entry.operands[0].as_f64s();
                self.aval = entry.operands[1].as_f64();
                for (lane, &vv) in vs.iter().enumerate() {
                    if entry.mask & (1 << lane) != 0 {
                        let r = lane + self.rank_step * self.lanes;
                        self.dot += vv * self.u[self.next_row * RANK + r];
                    }
                }
                self.rank_step += 1;
                m.vec_op(2 * entry.mask.count_ones(), Deps::from(entry_load));
            }
            CB_K_END => {
                self.s_vals.push(self.aval * self.dot);
                m.store(Site(S_STORE), self.s_r.f64_at(self.next_pos), 8, Deps::NONE);
                self.next_pos += 1;
                self.dot = 0.0;
                self.rank_step = 0;
            }
            CB_ROW_END => {
                self.next_row += 1;
            }
            other => panic!("SDDMM: unexpected callback {other}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::check_close;
    use tmu_tensor::gen;

    #[test]
    fn verify_against_reference() {
        let w = Sddmm::new(&gen::uniform(96, 96, 5, 31));
        check_close("SDDMM", &w.functional(8), w.reference(), 1e-9).expect("matches reference");
    }

    #[test]
    fn lane_count_does_not_change_the_values() {
        let w = Sddmm::new(&gen::uniform(48, 48, 4, 9));
        assert_eq!(
            w.functional(8),
            w.functional(4),
            "stripe width must not change the dot accumulation order"
        );
    }

    #[test]
    fn output_matrix_shares_the_sample_pattern() {
        let a = gen::uniform(32, 32, 3, 5);
        let w = Sddmm::new(&a);
        let s = w.output_matrix(w.functional(8)).expect("assembles");
        assert_eq!(s.rows(), a.rows());
        assert_eq!(s.nnz(), a.nnz());
        assert_eq!(s.row_ptrs(), a.row_ptrs());
        assert_eq!(s.col_idxs(), a.col_idxs());
        assert_eq!(s.vals(), w.reference());
    }

    #[test]
    fn empty_rows_are_handled() {
        let coo = tmu_tensor::CooMatrix::from_triplets(24, 24, vec![(20, 3, 2.0)]).expect("ok");
        let w = Sddmm::new(&CsrMatrix::from_coo(&coo));
        let got = w.functional(8);
        assert_eq!(got.len(), 1);
        assert!((got[0] - w.reference()[0]).abs() < 1e-9);
    }
}
