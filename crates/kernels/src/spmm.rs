//! Sparse Matrix times dense Matrix, `Z_{ij} = Σ_k A_{ik} · B_{kj}`
//! (CSR × row-major dense).
//!
//! Table 4 rows SpMM P0/P1/P2. The implementation here is the "P1" scheme
//! the paper uses for dense-output kernels: the TMU traverses `i` and `k`
//! and its lockstep lanes fetch the `B[k, ·]` row stripes (`IdxFbrT` over
//! the dense row), so the host core receives ready vector operands and
//! performs only the scaled accumulation.

use std::sync::{Arc, Mutex};

use tmu::{
    CallbackHandler, Event, LayerMode, MemImage, OutQEntry, Program, ProgramBuilder, StreamTy,
    TmuAccelerator, TmuConfig,
};
use tmu_sim::{
    Accelerator, AddressMap, ChannelMachine, Deps, Machine, OpId, Region, RunStats, Site, System,
    SystemConfig, VecMachine,
};
use tmu_tensor::CsrMatrix;

use crate::data::{partition_rows, CsrOnSim, DenseOnSim};
use crate::util::check_close;
use crate::workload::{KernelKind, TmuRun, Workload};

/// Dense matrix columns (the SpMM rank).
pub const RANK: usize = 16;

const S_PTR: u16 = 260;
const S_KIDX: u16 = 261;
const S_KVAL: u16 = 262;
const S_BROW: u16 = 263;
const S_STORE: u16 = 264;
const S_R_BR: u16 = 265;
const S_K_BR: u16 = 266;
const S_I_BR: u16 = 267;

const CB_RI: u32 = 0;
const CB_K_END: u32 = 1;
const CB_ROW_END: u32 = 2;

#[derive(Debug, Clone)]
struct Ctx {
    ptrs: Arc<Vec<u32>>,
    idxs: Arc<Vec<u32>>,
    ptrs_r: Region,
    idxs_r: Region,
    vals_r: Region,
    b_r: Region,
    z_r: Region,
}

/// An SpMM workload bound to the simulator.
#[derive(Debug)]
pub struct Spmm {
    a: CsrOnSim,
    b: DenseOnSim,
    z_r: Region,
    outq_r: Vec<Region>,
    image: Arc<MemImage>,
    reference: Vec<f64>,
}

impl Spmm {
    /// Binds matrix `a` with a deterministic dense right-hand side.
    pub fn new(a_mat: &CsrMatrix) -> Self {
        let b_vals: Vec<f64> = (0..a_mat.cols() * RANK)
            .map(|x| 0.5 + (x % 73) as f64 / 73.0)
            .collect();
        let mut reference = vec![0.0f64; a_mat.rows() * RANK];
        for i in 0..a_mat.rows() {
            for (k, v) in a_mat.row(i) {
                for r in 0..RANK {
                    reference[i * RANK + r] += v * b_vals[k as usize * RANK + r];
                }
            }
        }
        let mut map = AddressMap::new();
        let mut image = MemImage::new();
        let a = CsrOnSim::bind(&mut map, &mut image, "a", a_mat);
        let b = DenseOnSim::bind(&mut map, &mut image, "B", b_vals);
        let z_r = map.alloc_elems("Z", (a_mat.rows() * RANK).max(1), 8);
        let outq_r = (0..8)
            .map(|c| map.alloc(&format!("outq{c}"), 1 << 20))
            .collect();
        Self {
            a,
            b,
            z_r,
            outq_r,
            image: Arc::new(image),
            reference,
        }
    }

    /// The reference product (row-major `rows × RANK`).
    pub fn reference(&self) -> &[f64] {
        &self.reference
    }

    /// Shared memory image (for standalone engine experiments).
    pub fn image_handle(&self) -> Arc<MemImage> {
        Arc::clone(&self.image)
    }

    /// outQ base address of a core.
    pub fn outq_base(&self, core: usize) -> u64 {
        self.outq_r[core].base
    }

    /// Output region (for standalone handlers).
    pub fn z_region(&self) -> Region {
        self.z_r
    }

    /// Functional execution over the full row range: the product rows
    /// (row-major) exactly as the callback handler computes them.
    pub fn functional(&self, lanes: usize) -> Vec<f64> {
        let prog = Arc::new(self.build_program((0, self.a.rows), lanes));
        let mut handler = SpmmHandler::new(self.z_r, 0, lanes);
        let mut vm = VecMachine::new();
        tmu::for_each_entry(&prog, &self.image, |e| {
            handler.handle(e, OpId::NONE, &mut vm);
        });
        handler.z
    }

    fn ctx(&self) -> Ctx {
        Ctx {
            ptrs: Arc::clone(&self.a.ptrs),
            idxs: Arc::clone(&self.a.idxs),
            ptrs_r: self.a.ptrs_r,
            idxs_r: self.a.idxs_r,
            vals_r: self.a.vals_r,
            b_r: self.b.region,
            z_r: self.z_r,
        }
    }

    /// Builds the Table 4 "SpMM P1" TMU program for a row range.
    pub fn build_program(&self, rows: (usize, usize), lanes: usize) -> Program {
        let lanes = lanes.min(RANK);
        let mut bld = ProgramBuilder::new();
        let l0 = bld.layer(LayerMode::Single);
        let itu = bld.dns_fbrt(l0, rows.0 as i64, rows.1 as i64, 1);
        let pb = bld.mem_stream(itu, self.a.ptrs_r.base, 4, StreamTy::Index);
        let pe = bld.mem_stream(itu, self.a.ptrs_r.base + 4, 4, StreamTy::Index);

        let l1 = bld.layer(LayerMode::Single);
        let ktu = bld.rng_fbrt(l1, pb, pe, 0, 1);
        let kidx = bld.mem_stream(ktu, self.a.idxs_r.base, 4, StreamTy::Index);
        let kval = bld.mem_stream(ktu, self.a.vals_r.base, 8, StreamTy::Value);
        let k_row = bld.lin_stream(ktu, RANK as i64, 0, kidx);

        let l2 = bld.layer(LayerMode::LockStep);
        let mut bs = Vec::new();
        let mut v_fwd0 = None;
        for lane in 0..lanes as i64 {
            let rtu = bld.idx_fbrt(l2, k_row, RANK as i64, lane, lanes as i64);
            bs.push(bld.mem_stream(rtu, self.b.region.base, 8, StreamTy::Value));
            let vf = bld.fwd_stream(rtu, kval);
            if lane == 0 {
                v_fwd0 = Some(vf);
            }
        }
        let avg = self.a.nnz() as f64 / self.a.rows.max(1) as f64;
        bld.set_weight(l0, 1.0);
        bld.set_weight(l1, avg.max(1.0));
        bld.set_weight(l2, (avg * 2.0).max(2.0));
        let b_op = bld.vec_operand(l2, &bs);
        let v_op = bld.scalar_operand(l2, v_fwd0.expect("lane 0 exists"));
        bld.callback(l2, Event::Ite, CB_RI, &[b_op, v_op]);
        bld.callback(l2, Event::End, CB_K_END, &[]);
        bld.callback(l1, Event::End, CB_ROW_END, &[]);
        bld.build().expect("SpMM program is well-formed")
    }
}

fn emit_baseline<M: Machine + ?Sized>(m: &mut M, ctx: &Ctx, rows: (usize, usize), vl: usize) {
    let (r0, r1) = rows;
    for i in r0..r1 {
        let p0 = m.load(Site(S_PTR), ctx.ptrs_r.u32_at(i), 4, Deps::NONE);
        let p1 = m.load(Site(S_PTR), ctx.ptrs_r.u32_at(i + 1), 4, Deps::NONE);
        let (kb, ke) = (ctx.ptrs[i] as usize, ctx.ptrs[i + 1] as usize);
        for p in kb..ke {
            let bounds = Deps::on(&[p0, p1]);
            let kld = m.load(Site(S_KIDX), ctx.idxs_r.u32_at(p), 4, bounds);
            let vld = m.load(Site(S_KVAL), ctx.vals_r.f64_at(p), 8, bounds);
            let k = ctx.idxs[p] as usize;
            let mut r = 0;
            while r < RANK {
                let n = (RANK - r).min(vl);
                let bl = m.vec_load(
                    Site(S_BROW),
                    ctx.b_r.f64_at(k * RANK + r),
                    (n * 8) as u32,
                    Deps::from(kld),
                );
                m.vec_op((2 * n) as u32, Deps::on(&[bl, vld]));
                r += n;
                m.branch(Site(S_R_BR), r < RANK, Deps::NONE);
            }
            m.branch(Site(S_K_BR), p + 1 < ke, Deps::NONE);
        }
        let mut r = 0;
        while r < RANK {
            let n = (RANK - r).min(vl);
            m.store(
                Site(S_STORE),
                ctx.z_r.f64_at(i * RANK + r),
                (n * 8) as u32,
                Deps::NONE,
            );
            r += n;
        }
        m.branch(Site(S_I_BR), i + 1 < r1, Deps::NONE);
    }
}

/// Host callbacks: FMA the marshaled B stripes, store rows at row end.
#[derive(Debug)]
pub struct SpmmHandler {
    z_r: Region,
    next_row: usize,
    acc: Vec<f64>,
    rank_step: usize,
    lanes: usize,
    /// Functional output rows (row-major).
    pub z: Vec<f64>,
}

impl SpmmHandler {
    /// Handler for rows starting at `first_row`.
    pub fn new(z_r: Region, first_row: usize, lanes: usize) -> Self {
        Self {
            z_r,
            next_row: first_row,
            acc: vec![0.0; RANK],
            rank_step: 0,
            lanes: lanes.min(RANK),
            z: Vec::new(),
        }
    }
}

impl CallbackHandler for SpmmHandler {
    fn handle(&mut self, entry: &OutQEntry, entry_load: OpId, m: &mut VecMachine) {
        match entry.callback {
            CB_RI => {
                let bs = entry.operands[0].as_f64s();
                let v = entry.operands[1].as_f64();
                for (lane, &bv) in bs.iter().enumerate() {
                    if entry.mask & (1 << lane) != 0 {
                        let r = lane + self.rank_step * self.lanes;
                        self.acc[r] += v * bv;
                    }
                }
                self.rank_step += 1;
                m.vec_op(2 * entry.mask.count_ones(), Deps::from(entry_load));
            }
            CB_K_END => {
                self.rank_step = 0;
            }
            CB_ROW_END => {
                let mut r = 0;
                while r < RANK {
                    let n = (RANK - r).min(8);
                    m.store(
                        Site(S_STORE),
                        self.z_r.f64_at(self.next_row * RANK + r),
                        (n * 8) as u32,
                        Deps::NONE,
                    );
                    r += n;
                }
                self.z
                    .extend(std::mem::replace(&mut self.acc, vec![0.0; RANK]));
                self.next_row += 1;
            }
            other => panic!("SpMM: unexpected callback {other}"),
        }
    }
}

impl Workload for Spmm {
    fn name(&self) -> &'static str {
        "SpMM"
    }

    fn kind(&self) -> KernelKind {
        KernelKind::MemoryIntensive
    }

    fn run_baseline(&self, cfg: SystemConfig) -> RunStats {
        let shards = partition_rows(&self.a.ptrs, cfg.cores());
        let vl = cfg.core.sve_lanes();
        let ctx = self.ctx();
        let mut sys = System::new(cfg);
        sys.run(
            shards
                .into_iter()
                .map(|range| {
                    let ctx = ctx.clone();
                    move |m: &mut ChannelMachine| emit_baseline(m, &ctx, range, vl)
                })
                .collect(),
        )
    }

    fn run_tmu(&self, cfg: SystemConfig, tmu: TmuConfig) -> TmuRun {
        let shards = partition_rows(&self.a.ptrs, cfg.cores());
        let mut handles = Vec::new();
        let accels: Vec<Box<dyn Accelerator>> = shards
            .iter()
            .enumerate()
            .map(|(c, &range)| {
                let prog = Arc::new(self.build_program(range, tmu.lanes));
                let handler = SpmmHandler::new(self.z_r, range.0, tmu.lanes);
                let acc = TmuAccelerator::new(
                    tmu,
                    prog,
                    Arc::clone(&self.image),
                    handler,
                    self.outq_r[c].base,
                );
                handles.push(acc.stats_handle());
                Box::new(acc) as Box<dyn Accelerator>
            })
            .collect();
        let mut sys = System::new(cfg);
        let stats = sys.run_accelerated(accels);
        TmuRun {
            stats,
            outq: handles
                .iter()
                .map(|h: &Arc<Mutex<tmu::OutQStats>>| h.lock().expect("stats").clone())
                .collect(),
        }
    }

    fn verify(&self) -> Result<(), String> {
        let mut got = Vec::new();
        for &range in &partition_rows(&self.a.ptrs, 8) {
            let prog = Arc::new(self.build_program(range, 8));
            let mut handler = SpmmHandler::new(self.z_r, range.0, 8);
            let mut vm = VecMachine::new();
            tmu::for_each_entry(&prog, &self.image, |e| {
                handler.handle(e, OpId::NONE, &mut vm);
            });
            got.extend(handler.z);
        }
        check_close("SpMM", &got, &self.reference, 1e-9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tmu_sim::{CoreConfig, MemSysConfig};
    use tmu_tensor::gen;

    #[test]
    fn verify_against_reference() {
        Spmm::new(&gen::uniform(128, 128, 5, 61))
            .verify()
            .expect("TMU SpMM must match reference");
    }

    #[test]
    fn empty_rows_produce_zero_output_rows() {
        let coo = tmu_tensor::CooMatrix::from_triplets(32, 32, vec![(5, 3, 2.0)]).expect("ok");
        let w = Spmm::new(&CsrMatrix::from_coo(&coo));
        w.verify().expect("single-nnz SpMM verifies");
        assert!(w.reference()[5 * RANK] > 0.0);
        assert_eq!(w.reference()[0], 0.0);
    }

    #[test]
    fn baseline_and_tmu_run() {
        let w = Spmm::new(&gen::uniform(128, 128, 5, 61));
        let cfg = SystemConfig {
            core: CoreConfig::neoverse_n1_like(),
            mem: MemSysConfig::table5(2),
        };
        assert!(w.run_baseline(cfg).cycles > 0);
        assert!(w.run_tmu(cfg, TmuConfig::paper()).stats.cycles > 0);
    }
}
