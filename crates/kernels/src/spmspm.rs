//! Sparse Matrix–Sparse Matrix multiplication, `Z = A·Aᵀ` (Gustavson).
//!
//! The paper's compute-stage proxy (§3): the `ikj` schedule scans each row
//! of `A`, looks up the matching row of `B = Aᵀ`, and reduces scaled rows
//! into a dense accumulator workspace (TACO's workspace lowering). The
//! scan-and-lookup has higher spatial locality than SpMV (whole rows), and
//! the reduction keeps the core busy — inputs with heavy rows are
//! commit-bound (Amdahl-limited for the TMU, §7.1).
//!
//! TMU mapping ("P2", Table 4): `i` dense layer → `k` compressed layer
//! (loading `a_val` and the chained `bptr[k]`/`bptr[k+1]` bounds) → `j`
//! lockstep lanes over the `B` row. The core performs the multiply and the
//! scatter-accumulate into its cached workspace, then drains the occupied
//! entries at each row end.

use std::sync::{Arc, Mutex};

use tmu::{
    CallbackHandler, Event, LayerMode, MemImage, OutQEntry, Program, ProgramBuilder, StreamTy,
    TmuAccelerator, TmuConfig,
};
use tmu_sim::{
    Accelerator, AddressMap, ChannelMachine, Deps, Machine, OpId, Region, RunStats, Site, System,
    SystemConfig, VecMachine,
};
use tmu_tensor::CsrMatrix;

use crate::data::{partition_rows, CsrOnSim};
use crate::util::check_close;
use crate::workload::{KernelKind, TmuRun, Workload};

const S_APTR: u16 = 120;
const S_AIDX: u16 = 121;
const S_AVAL: u16 = 122;
const S_BPTR: u16 = 123;
const S_BIDX: u16 = 124;
const S_BVAL: u16 = 125;
const S_ACC_LD: u16 = 126;
const S_ACC_ST: u16 = 127;
const S_J_BR: u16 = 128;
const S_K_BR: u16 = 129;
const S_FLUSH_LD: u16 = 130;
const S_FLUSH_ST: u16 = 131;
const S_FLUSH_BR: u16 = 132;
const S_I_BR: u16 = 133;

const CB_JI: u32 = 0;
const CB_ROW_END: u32 = 1;

#[derive(Debug, Clone)]
struct Ctx {
    a_ptrs: Arc<Vec<u32>>,
    a_idxs: Arc<Vec<u32>>,
    b_ptrs: Arc<Vec<u32>>,
    b_idxs: Arc<Vec<u32>>,
    a_ptrs_r: Region,
    a_idxs_r: Region,
    a_vals_r: Region,
    b_ptrs_r: Region,
    b_idxs_r: Region,
    b_vals_r: Region,
    acc_r: Region,
    z_r: Region,
    cols: usize,
    z_offsets: Arc<Vec<u32>>,
}

/// A Gustavson SpMSpM workload (`Z = A·Aᵀ`) bound to the simulator.
#[derive(Debug)]
pub struct Spmspm {
    a: CsrOnSim,
    b: CsrOnSim,
    acc_r: Region,
    z_r: Region,
    outq_r: Vec<Region>,
    image: Arc<MemImage>,
    /// Reference output.
    reference: CsrMatrix,
    z_offsets: Arc<Vec<u32>>,
}

impl Spmspm {
    /// Binds `A` (and computes `B = Aᵀ`) for simulation.
    pub fn new(a_mat: &CsrMatrix) -> Self {
        let b_mat = a_mat.transpose();
        let reference = reference(a_mat, &b_mat);
        let mut map = AddressMap::new();
        let mut image = MemImage::new();
        let a = CsrOnSim::bind(&mut map, &mut image, "a", a_mat);
        let b = CsrOnSim::bind(&mut map, &mut image, "b", &b_mat);
        // One accumulator workspace per core (8 cores max).
        let acc_r = map.alloc_elems("acc", 8 * a_mat.cols().max(1), 8);
        let z_r = map.alloc_elems("z", reference.nnz().max(1), 8);
        let outq_r = (0..8)
            .map(|c| map.alloc(&format!("outq{c}"), 1 << 20))
            .collect();
        let z_offsets = Arc::new(reference.row_ptrs().to_vec());
        Self {
            a,
            b,
            acc_r,
            z_r,
            outq_r,
            image: Arc::new(image),
            reference,
            z_offsets,
        }
    }

    /// The reference product.
    pub fn reference(&self) -> &CsrMatrix {
        &self.reference
    }

    /// Shared memory image (for standalone engine experiments).
    pub fn image_handle(&self) -> Arc<MemImage> {
        Arc::clone(&self.image)
    }

    /// outQ base address of a core.
    pub fn outq_base(&self, core: usize) -> u64 {
        self.outq_r[core].base
    }

    /// Functional TMU execution (8 shards, 8 lanes): output column indexes
    /// and values in row-major, column-sorted order, exactly as the
    /// callback handler computes them.
    pub fn functional(&self) -> (Vec<u32>, Vec<f64>) {
        let mut z = Vec::new();
        let mut z_cols = Vec::new();
        for &range in &self.shards(8) {
            let prog = Arc::new(self.build_program(range, 8));
            let mut handler = SpmspmHandler::new(
                self.acc_r,
                self.z_r,
                Arc::clone(&self.z_offsets),
                range.0,
                self.a.cols,
            );
            let mut vm = VecMachine::new();
            tmu::for_each_entry(&prog, &self.image, |e| {
                handler.handle(e, OpId::NONE, &mut vm);
            });
            z.extend(handler.z);
            z_cols.extend(handler.z_cols);
        }
        (z_cols, z)
    }

    fn ctx(&self) -> Ctx {
        Ctx {
            a_ptrs: Arc::clone(&self.a.ptrs),
            a_idxs: Arc::clone(&self.a.idxs),
            b_ptrs: Arc::clone(&self.b.ptrs),
            b_idxs: Arc::clone(&self.b.idxs),
            a_ptrs_r: self.a.ptrs_r,
            a_idxs_r: self.a.idxs_r,
            a_vals_r: self.a.vals_r,
            b_ptrs_r: self.b.ptrs_r,
            b_idxs_r: self.b.idxs_r,
            b_vals_r: self.b.vals_r,
            acc_r: self.acc_r,
            z_r: self.z_r,
            cols: self.a.cols,
            z_offsets: Arc::clone(&self.z_offsets),
        }
    }

    fn shards(&self, cores: usize) -> Vec<(usize, usize)> {
        partition_rows(&self.a.ptrs, cores)
    }

    /// Builds the Table 4 "SpMSpM P2" TMU program for a row range.
    pub fn build_program(&self, rows: (usize, usize), lanes: usize) -> Program {
        let mut bld = ProgramBuilder::new();
        let l0 = bld.layer(LayerMode::Single);
        let row = bld.dns_fbrt(l0, rows.0 as i64, rows.1 as i64, 1);
        let ap_b = bld.mem_stream(row, self.a.ptrs_r.base, 4, StreamTy::Index);
        let ap_e = bld.mem_stream(row, self.a.ptrs_r.base + 4, 4, StreamTy::Index);

        let l1 = bld.layer(LayerMode::Single);
        let ktu = bld.rng_fbrt(l1, ap_b, ap_e, 0, 1);
        let k = bld.mem_stream(ktu, self.a.idxs_r.base, 4, StreamTy::Index);
        let a_val = bld.mem_stream(ktu, self.a.vals_r.base, 8, StreamTy::Value);
        let bp_b = bld.mem_stream_indexed(ktu, self.b.ptrs_r.base, 4, StreamTy::Index, k);
        let bp_e = bld.mem_stream_indexed(ktu, self.b.ptrs_r.base + 4, 4, StreamTy::Index, k);
        let _ = a_val;

        let l2 = bld.layer(LayerMode::LockStep);
        let mut b_idx = Vec::new();
        let mut b_val = Vec::new();
        let mut a_fwd = Vec::new();
        for lane in 0..lanes as i64 {
            let jtu = bld.rng_fbrt(l2, bp_b, bp_e, lane, lanes as i64);
            b_idx.push(bld.mem_stream(jtu, self.b.idxs_r.base, 4, StreamTy::Index));
            b_val.push(bld.mem_stream(jtu, self.b.vals_r.base, 8, StreamTy::Value));
            a_fwd.push(bld.fwd_stream(jtu, a_val));
        }
        let ra = self.a.nnz() as f64 / self.a.rows.max(1) as f64;
        let rb = self.b.nnz() as f64 / self.b.rows.max(1) as f64;
        bld.set_weight(l0, 1.0);
        bld.set_weight(l1, ra.max(1.0));
        bld.set_weight(l2, (ra * rb).max(2.0));
        let idx_op = bld.vec_operand(l2, &b_idx);
        let val_op = bld.vec_operand(l2, &b_val);
        let a_op = bld.scalar_operand(l2, a_fwd[0]);
        bld.callback(l2, Event::Ite, CB_JI, &[idx_op, val_op, a_op]);
        bld.callback(l1, Event::End, CB_ROW_END, &[]);
        bld.build().expect("SpMSpM program is well-formed")
    }
}

/// Emits the vectorized Gustavson baseline for a row shard.
fn emit_baseline<M: Machine + ?Sized>(m: &mut M, ctx: &Ctx, rows: (usize, usize), vl: usize) {
    let (r0, r1) = rows;
    if r0 >= r1 {
        return;
    }
    // Per-shard dense accumulator state (functional side).
    let mut acc = vec![0.0f64; ctx.cols];
    let mut occ: Vec<u32> = Vec::new();
    let mut aptr_prev = m.load(Site(S_APTR), ctx.a_ptrs_r.u32_at(r0), 4, Deps::NONE);
    for i in r0..r1 {
        let aptr_next = m.load(Site(S_APTR), ctx.a_ptrs_r.u32_at(i + 1), 4, Deps::NONE);
        let (abeg, aend) = (ctx.a_ptrs[i] as usize, ctx.a_ptrs[i + 1] as usize);
        for p in abeg..aend {
            let bounds = Deps::on(&[aptr_prev, aptr_next]);
            let kld = m.load(Site(S_AIDX), ctx.a_idxs_r.u32_at(p), 4, bounds);
            let avld = m.load(Site(S_AVAL), ctx.a_vals_r.f64_at(p), 8, bounds);
            let kk = ctx.a_idxs[p] as usize;
            let bp0 = m.load(Site(S_BPTR), ctx.b_ptrs_r.u32_at(kk), 4, Deps::from(kld));
            let bp1 = m.load(
                Site(S_BPTR),
                ctx.b_ptrs_r.u32_at(kk + 1),
                4,
                Deps::from(kld),
            );
            let (bbeg, bend) = (ctx.b_ptrs[kk] as usize, ctx.b_ptrs[kk + 1] as usize);
            let mut q = bbeg;
            while q < bend {
                let n = (bend - q).min(vl);
                let bb = Deps::on(&[bp0, bp1]);
                let bidxv = m.vec_load(Site(S_BIDX), ctx.b_idxs_r.u32_at(q), (n * 4) as u32, bb);
                let bvalv = m.vec_load(Site(S_BVAL), ctx.b_vals_r.f64_at(q), (n * 8) as u32, bb);
                let mul = m.vec_op(n as u32, Deps::on(&[bvalv, avld]));
                // Scatter-accumulate into the workspace.
                for e in 0..n {
                    let j = ctx.b_idxs[q + e] as usize;
                    // Functional update.
                    if acc[j] == 0.0 {
                        occ.push(j as u32);
                    }
                    // NOTE: products are strictly positive by construction
                    // of the generators, so 0.0 marks "unoccupied".
                    let addr = ctx.acc_r.f64_at(j);
                    let old = m.load(Site(S_ACC_LD), addr, 8, Deps::on(&[bidxv, mul]));
                    let add = m.fp_op(1, Deps::from(old));
                    m.store(Site(S_ACC_ST), addr, 8, Deps::from(add));
                }
                q += n;
                m.branch(Site(S_J_BR), q < bend, bb);
            }
            m.branch(Site(S_K_BR), p + 1 < aend, Deps::NONE);
        }
        // Functional accumulate (kept exact, outside the op stream).
        for p in abeg..aend {
            let kk = ctx.a_idxs[p] as usize;
            // values looked up functionally below in flush; recompute here:
            let _ = kk;
        }
        // Flush occupied entries to the output row.
        occ.sort_unstable();
        let zoff = ctx.z_offsets[i] as usize;
        let mut f = 0usize;
        while f < occ.len() {
            let n = (occ.len() - f).min(vl);
            let ld = m.vec_load(
                Site(S_FLUSH_LD),
                ctx.acc_r.f64_at(occ[f] as usize),
                (n * 8) as u32,
                Deps::NONE,
            );
            m.store(
                Site(S_FLUSH_ST),
                ctx.z_r.f64_at(zoff + f),
                (n * 8) as u32,
                Deps::from(ld),
            );
            f += n;
            m.branch(Site(S_FLUSH_BR), f < occ.len(), Deps::NONE);
        }
        for &j in &occ {
            acc[j as usize] = 0.0;
        }
        occ.clear();
        m.branch(Site(S_I_BR), i + 1 < r1, Deps::NONE);
        aptr_prev = aptr_next;
    }
}

/// Host callbacks: `ji` multiplies and scatter-accumulates the marshaled
/// B-row segment; `row_end` drains the workspace into the output row.
#[derive(Debug)]
pub struct SpmspmHandler {
    acc_r: Region,
    z_r: Region,
    z_offsets: Arc<Vec<u32>>,
    next_row: usize,
    acc: Vec<f64>,
    occ: Vec<u32>,
    /// Functional output values in row-major, column-sorted order.
    pub z: Vec<f64>,
    /// Functional output column indexes.
    pub z_cols: Vec<u32>,
}

impl SpmspmHandler {
    /// Handler for rows starting at `first_row`, with `cols` workspace
    /// columns.
    pub fn new(
        acc_r: Region,
        z_r: Region,
        z_offsets: Arc<Vec<u32>>,
        first_row: usize,
        cols: usize,
    ) -> Self {
        Self {
            acc_r,
            z_r,
            z_offsets,
            next_row: first_row,
            acc: vec![0.0; cols],
            occ: Vec::new(),
            z: Vec::new(),
            z_cols: Vec::new(),
        }
    }
}

impl CallbackHandler for SpmspmHandler {
    fn handle(&mut self, entry: &OutQEntry, entry_load: OpId, m: &mut VecMachine) {
        match entry.callback {
            CB_JI => {
                let idxs = entry.operands[0].as_indexes();
                let vals = entry.operands[1].as_f64s();
                let a_val = entry.operands[2].as_f64();
                let active = entry.mask.count_ones();
                let mul = m.vec_op(active, Deps::from(entry_load));
                for (lane, (&j, &bv)) in idxs.iter().zip(&vals).enumerate() {
                    if entry.mask & (1 << lane) == 0 {
                        continue;
                    }
                    let j = j as usize;
                    if self.acc[j] == 0.0 {
                        self.occ.push(j as u32);
                    }
                    self.acc[j] += a_val * bv;
                    let addr = self.acc_r.f64_at(j);
                    let old = m.load(Site(S_ACC_LD), addr, 8, Deps::from(mul));
                    let add = m.fp_op(1, Deps::from(old));
                    m.store(Site(S_ACC_ST), addr, 8, Deps::from(add));
                }
            }
            CB_ROW_END => {
                self.occ.sort_unstable();
                let zoff = self.z_offsets[self.next_row] as usize;
                let mut f = 0;
                while f < self.occ.len() {
                    let n = (self.occ.len() - f).min(8);
                    let ld = m.vec_load(
                        Site(S_FLUSH_LD),
                        self.acc_r.f64_at(self.occ[f] as usize),
                        (n * 8) as u32,
                        Deps::NONE,
                    );
                    m.store(
                        Site(S_FLUSH_ST),
                        self.z_r.f64_at(zoff + f),
                        (n * 8) as u32,
                        Deps::from(ld),
                    );
                    f += n;
                }
                for &j in &self.occ {
                    self.z_cols.push(j);
                    self.z.push(self.acc[j as usize]);
                    self.acc[j as usize] = 0.0;
                }
                self.occ.clear();
                self.next_row += 1;
            }
            other => panic!("SpMSpM: unexpected callback {other}"),
        }
    }
}

fn reference(a: &CsrMatrix, b: &CsrMatrix) -> CsrMatrix {
    let mut triplets = Vec::new();
    let mut acc = vec![0.0f64; b.cols()];
    let mut occ: Vec<u32> = Vec::new();
    for i in 0..a.rows() {
        for (k, av) in a.row(i) {
            for (j, bv) in b.row(k as usize) {
                if acc[j as usize] == 0.0 {
                    occ.push(j);
                }
                acc[j as usize] += av * bv;
            }
        }
        occ.sort_unstable();
        for &j in &occ {
            triplets.push((i as u32, j, acc[j as usize]));
            acc[j as usize] = 0.0;
        }
        occ.clear();
    }
    let coo = tmu_tensor::CooMatrix::from_triplets(a.rows(), b.cols(), triplets)
        .expect("product fits declared shape");
    CsrMatrix::from_coo(&coo)
}

impl Workload for Spmspm {
    fn name(&self) -> &'static str {
        "SpMSpM"
    }

    fn kind(&self) -> KernelKind {
        KernelKind::ComputeIntensive
    }

    fn run_baseline(&self, cfg: SystemConfig) -> RunStats {
        let shards = self.shards(cfg.cores());
        let vl = cfg.core.sve_lanes();
        let ctx = self.ctx();
        let mut sys = System::new(cfg);
        sys.run(
            shards
                .into_iter()
                .map(|range| {
                    let ctx = ctx.clone();
                    move |m: &mut ChannelMachine| emit_baseline(m, &ctx, range, vl)
                })
                .collect(),
        )
    }

    fn run_baseline_imp(&self, cfg: SystemConfig) -> Option<RunStats> {
        let shards = self.shards(cfg.cores());
        let vl = cfg.core.sve_lanes();
        let ctx = self.ctx();
        let mut sys = System::new(cfg);
        Some(
            sys.run_with_imp(
                shards
                    .into_iter()
                    .map(|range| {
                        let ctx = ctx.clone();
                        move |m: &mut ChannelMachine| emit_baseline(m, &ctx, range, vl)
                    })
                    .collect(),
            ),
        )
    }

    fn run_tmu(&self, cfg: SystemConfig, tmu: TmuConfig) -> TmuRun {
        let shards = self.shards(cfg.cores());
        let mut handles = Vec::new();
        let accels: Vec<Box<dyn Accelerator>> = shards
            .iter()
            .enumerate()
            .map(|(c, &range)| {
                let prog = Arc::new(self.build_program(range, tmu.lanes));
                let handler = SpmspmHandler::new(
                    self.acc_r,
                    self.z_r,
                    Arc::clone(&self.z_offsets),
                    range.0,
                    self.a.cols,
                );
                let acc = TmuAccelerator::new(
                    tmu,
                    prog,
                    Arc::clone(&self.image),
                    handler,
                    self.outq_r[c].base,
                );
                handles.push(acc.stats_handle());
                Box::new(acc) as Box<dyn Accelerator>
            })
            .collect();
        let mut sys = System::new(cfg);
        let stats = sys.run_accelerated(accels);
        TmuRun {
            stats,
            outq: handles
                .iter()
                .map(|h: &Arc<Mutex<tmu::OutQStats>>| h.lock().expect("stats").clone())
                .collect(),
        }
    }

    fn verify(&self) -> Result<(), String> {
        let (z_cols, z) = self.functional();
        if z_cols != self.reference.col_idxs().to_vec() {
            return Err("SpMSpM: output structure mismatch".to_owned());
        }
        check_close("SpMSpM", &z, self.reference.vals(), 1e-9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tmu_sim::{CoreConfig, MemSysConfig};
    use tmu_tensor::gen;

    fn small_cfg(cores: usize) -> SystemConfig {
        SystemConfig {
            core: CoreConfig::neoverse_n1_like(),
            mem: MemSysConfig::table5(cores),
        }
    }

    fn workload() -> Spmspm {
        Spmspm::new(&gen::uniform(96, 96, 4, 11))
    }

    #[test]
    fn reference_matches_dense_oracle() {
        let a = gen::uniform(24, 24, 3, 5);
        let b = a.transpose();
        let z = reference(&a, &b);
        // Dense check.
        let ad = a.to_coo().to_dense();
        let mut want = vec![vec![0.0; 24]; 24];
        for (i, row) in ad.iter().enumerate() {
            for (k, &av) in row.iter().enumerate() {
                if av != 0.0 {
                    for j in 0..24 {
                        want[i][j] += av * ad[j][k];
                    }
                }
            }
        }
        let zd = z.to_coo().to_dense();
        for i in 0..24 {
            for j in 0..24 {
                assert!((zd[i][j] - want[i][j]).abs() < 1e-9, "({i},{j})");
            }
        }
    }

    #[test]
    fn verify_against_reference() {
        workload()
            .verify()
            .expect("TMU SpMSpM must match reference");
    }

    #[test]
    fn baseline_runs() {
        let w = workload();
        let stats = w.run_baseline(small_cfg(2));
        assert!(stats.cycles > 0);
        assert!(stats.total().flops > 0);
        let _ = &w;
    }

    #[test]
    fn tmu_runs() {
        let w = workload();
        let run = w.run_tmu(small_cfg(2), TmuConfig::paper());
        assert!(run.stats.cycles > 0);
        assert!(run.outq.iter().any(|o| o.entries > 0));
    }

    #[test]
    fn compute_share_exceeds_spmv() {
        // SpMSpM must be more commit-bound than SpMV on the same input
        // (the §3 characterization).
        let a = gen::uniform(256, 256, 8, 3);
        let mm = Spmspm::new(&a);
        let mv = crate::spmv::Spmv::new(&a);
        let s_mm = mm.run_baseline(small_cfg(1));
        let s_mv = mv.run_baseline(small_cfg(1));
        let (c_mm, _, _) = s_mm.breakdown();
        let (c_mv, _, _) = s_mv.breakdown();
        assert!(
            c_mm > c_mv,
            "SpMSpM committing share {c_mm:.2} must exceed SpMV {c_mv:.2}"
        );
    }
}
