//! Sparse Matrix–Sparse Vector multiplication, `Z_i = Σ_j A_ij · B_j`
//! with both operands compressed (Table 4 row "SpMSpV").
//!
//! Every matrix row is *conjunctively* merged with the sparse vector: a
//! value contributes only where both coordinates are present. The baseline
//! re-intersects the vector with each row using a two-pointer scan; the
//! TMU restarts its vector lane per row and intersects in hardware
//! (`ConjMrg`), handing the core only the matching value pairs.

use std::sync::{Arc, Mutex};

use tmu::{
    CallbackHandler, Event, LayerMode, MemImage, OutQEntry, Program, ProgramBuilder, StreamTy,
    TmuAccelerator, TmuConfig,
};
use tmu_sim::{
    Accelerator, AddressMap, ChannelMachine, Deps, Machine, OpId, Region, RunStats, Site, System,
    SystemConfig, VecMachine,
};
use tmu_tensor::CsrMatrix;

use crate::data::{partition_rows, CsrOnSim};
use crate::util::check_close;
use crate::workload::{KernelKind, TmuRun, Workload};

const S_PTR: u16 = 280;
const S_AHEAD: u16 = 281;
const S_BHEAD: u16 = 282;
const S_AVAL: u16 = 283;
const S_BVAL: u16 = 284;
const S_CMP: u16 = 285;
const S_STORE: u16 = 286;
const S_I_BR: u16 = 287;

const CB_MATCH: u32 = 0;
const CB_ROW_END: u32 = 1;

#[derive(Debug, Clone)]
struct Ctx {
    ptrs: Arc<Vec<u32>>,
    a_idxs: Arc<Vec<u32>>,
    b_idxs: Arc<Vec<u32>>,
    ptrs_r: Region,
    a_idxs_r: Region,
    a_vals_r: Region,
    b_idxs_r: Region,
    b_vals_r: Region,
    z_r: Region,
}

/// An SpMSpV workload bound to the simulator.
#[derive(Debug)]
pub struct Spmspv {
    a: CsrOnSim,
    b_idxs: Arc<Vec<u32>>,
    b_vals: Arc<Vec<f64>>,
    b_idxs_r: Region,
    b_vals_r: Region,
    z_r: Region,
    outq_r: Vec<Region>,
    image: Arc<MemImage>,
    reference: Vec<f64>,
}

impl Spmspv {
    /// Binds matrix `a` with a deterministic sparse vector of density
    /// `density` (fraction of non-zero positions).
    pub fn new(a_mat: &CsrMatrix, density: f64) -> Self {
        let cols = a_mat.cols();
        let stride = (1.0 / density.clamp(0.001, 1.0)) as usize;
        let b_idx: Vec<u32> = (0..cols).step_by(stride.max(1)).map(|j| j as u32).collect();
        let b_val: Vec<f64> = b_idx
            .iter()
            .map(|&j| 0.5 + (j % 67) as f64 / 67.0)
            .collect();
        let dense_b: std::collections::HashMap<u32, f64> =
            b_idx.iter().copied().zip(b_val.iter().copied()).collect();
        let reference: Vec<f64> = (0..a_mat.rows())
            .map(|i| {
                a_mat
                    .row(i)
                    .filter_map(|(c, v)| dense_b.get(&c).map(|bv| v * bv))
                    .sum()
            })
            .collect();
        let mut map = AddressMap::new();
        let mut image = MemImage::new();
        let a = CsrOnSim::bind(&mut map, &mut image, "a", a_mat);
        let b_idxs = Arc::new(b_idx);
        let b_vals = Arc::new(b_val);
        let b_idxs_r = map.alloc_elems("b.idxs", b_idxs.len().max(1), 4);
        let b_vals_r = map.alloc_elems("b.vals", b_vals.len().max(1), 8);
        image.bind_u32(b_idxs_r, Arc::clone(&b_idxs));
        image.bind_f64(b_vals_r, Arc::clone(&b_vals));
        let z_r = map.alloc_elems("z", a_mat.rows().max(1), 8);
        let outq_r = (0..8)
            .map(|c| map.alloc(&format!("outq{c}"), 1 << 20))
            .collect();
        Self {
            a,
            b_idxs,
            b_vals,
            b_idxs_r,
            b_vals_r,
            z_r,
            outq_r,
            image: Arc::new(image),
            reference,
        }
    }

    /// The reference result.
    pub fn reference(&self) -> &[f64] {
        &self.reference
    }

    /// Shared memory image (for standalone engine experiments).
    pub fn image_handle(&self) -> Arc<MemImage> {
        Arc::clone(&self.image)
    }

    /// outQ base address of a core.
    pub fn outq_base(&self, core: usize) -> u64 {
        self.outq_r[core].base
    }

    /// Functional TMU execution (8 shards): per-row results in row order,
    /// exactly as the callback handler computes them.
    pub fn functional(&self) -> Vec<f64> {
        let mut got = Vec::new();
        for &range in &partition_rows(&self.a.ptrs, 8) {
            let prog = Arc::new(self.build_program(range));
            let mut handler = SpmspvHandler::new(self.z_r, range.0);
            let mut vm = VecMachine::new();
            tmu::for_each_entry(&prog, &self.image, |e| {
                handler.handle(e, OpId::NONE, &mut vm);
            });
            got.extend(handler.z);
        }
        got
    }

    fn ctx(&self) -> Ctx {
        Ctx {
            ptrs: Arc::clone(&self.a.ptrs),
            a_idxs: Arc::clone(&self.a.idxs),
            b_idxs: Arc::clone(&self.b_idxs),
            ptrs_r: self.a.ptrs_r,
            a_idxs_r: self.a.idxs_r,
            a_vals_r: self.a.vals_r,
            b_idxs_r: self.b_idxs_r,
            b_vals_r: self.b_vals_r,
            z_r: self.z_r,
        }
    }

    /// Builds the Table 4 SpMSpV TMU program for a row range.
    pub fn build_program(&self, rows: (usize, usize)) -> Program {
        let mut bld = ProgramBuilder::new();
        let l0 = bld.layer(LayerMode::Single);
        let itu = bld.dns_fbrt(l0, rows.0 as i64, rows.1 as i64, 1);
        let pb = bld.mem_stream(itu, self.a.ptrs_r.base, 4, StreamTy::Index);
        let pe = bld.mem_stream(itu, self.a.ptrs_r.base + 4, 4, StreamTy::Index);

        let l1 = bld.layer(LayerMode::ConjMrg);
        let a_tu = bld.rng_fbrt(l1, pb, pe, 0, 1);
        let ak = bld.mem_stream(a_tu, self.a.idxs_r.base, 4, StreamTy::Index);
        let av = bld.mem_stream(a_tu, self.a.vals_r.base, 8, StreamTy::Value);
        bld.set_key(a_tu, ak);
        // The vector lane restarts its full traversal for every row.
        let b_tu = bld.dns_fbrt(l1, 0, self.b_idxs.len() as i64, 1);
        bld.bind_parent(b_tu, 0);
        let bk = bld.mem_stream(b_tu, self.b_idxs_r.base, 4, StreamTy::Index);
        let bv = bld.mem_stream(b_tu, self.b_vals_r.base, 8, StreamTy::Value);
        bld.set_key(b_tu, bk);

        let avg = self.a.nnz() as f64 / self.a.rows.max(1) as f64;
        bld.set_weight(l0, 1.0);
        bld.set_weight(l1, (avg + self.b_idxs.len() as f64).max(2.0));
        let vals = bld.vec_operand(l1, &[av, bv]);
        bld.callback(l1, Event::Ite, CB_MATCH, &[vals]);
        bld.callback(l1, Event::End, CB_ROW_END, &[]);
        bld.build().expect("SpMSpV program is well-formed")
    }
}

fn emit_baseline<M: Machine + ?Sized>(m: &mut M, ctx: &Ctx, rows: (usize, usize)) {
    let (r0, r1) = rows;
    for i in r0..r1 {
        let p0 = m.load(Site(S_PTR), ctx.ptrs_r.u32_at(i), 4, Deps::NONE);
        let p1 = m.load(Site(S_PTR), ctx.ptrs_r.u32_at(i + 1), 4, Deps::NONE);
        let (mut a, enda) = (ctx.ptrs[i] as usize, ctx.ptrs[i + 1] as usize);
        let mut b = 0usize;
        let endb = ctx.b_idxs.len();
        let mut sum = OpId::NONE;
        while a < enda && b < endb {
            let ha = m.load(
                Site(S_AHEAD),
                ctx.a_idxs_r.u32_at(a),
                4,
                Deps::on(&[p0, p1]),
            );
            let hb = m.load(Site(S_BHEAD), ctx.b_idxs_r.u32_at(b), 4, Deps::NONE);
            let ka = ctx.a_idxs[a];
            let kb = ctx.b_idxs[b];
            m.branch(Site(S_CMP), ka < kb, Deps::on(&[ha, hb]));
            m.branch(Site(S_CMP), ka > kb, Deps::on(&[ha, hb]));
            if ka == kb {
                let av = m.load(Site(S_AVAL), ctx.a_vals_r.f64_at(a), 8, Deps::NONE);
                let bv = m.load(Site(S_BVAL), ctx.b_vals_r.f64_at(b), 8, Deps::NONE);
                sum = m.fp_op(2, Deps::on(&[av, bv, sum]));
                a += 1;
                b += 1;
            } else if ka < kb {
                a += 1;
            } else {
                b += 1;
            }
        }
        m.store(Site(S_STORE), ctx.z_r.f64_at(i), 8, Deps::from(sum));
        m.branch(Site(S_I_BR), i + 1 < r1, Deps::NONE);
    }
}

/// Host callbacks: multiply on match, store at row end.
#[derive(Debug)]
pub struct SpmspvHandler {
    z_r: Region,
    next_row: usize,
    sum: f64,
    sum_dep: OpId,
    /// Functional per-row results.
    pub z: Vec<f64>,
}

impl SpmspvHandler {
    /// Handler for rows starting at `first_row`.
    pub fn new(z_r: Region, first_row: usize) -> Self {
        Self {
            z_r,
            next_row: first_row,
            sum: 0.0,
            sum_dep: OpId::NONE,
            z: Vec::new(),
        }
    }
}

impl CallbackHandler for SpmspvHandler {
    fn handle(&mut self, entry: &OutQEntry, entry_load: OpId, m: &mut VecMachine) {
        match entry.callback {
            CB_MATCH => {
                let vals = entry.operands[0].as_f64s();
                self.sum += vals[0] * vals[1];
                self.sum_dep = m.fp_op(2, Deps::on(&[entry_load, self.sum_dep]));
            }
            CB_ROW_END => {
                self.z.push(self.sum);
                self.sum = 0.0;
                m.store(
                    Site(S_STORE),
                    self.z_r.f64_at(self.next_row),
                    8,
                    Deps::from(self.sum_dep),
                );
                self.next_row += 1;
                self.sum_dep = OpId::NONE;
            }
            other => panic!("SpMSpV: unexpected callback {other}"),
        }
    }
}

impl Workload for Spmspv {
    fn name(&self) -> &'static str {
        "SpMSpV"
    }

    fn kind(&self) -> KernelKind {
        KernelKind::MergeIntensive
    }

    fn run_baseline(&self, cfg: SystemConfig) -> RunStats {
        let shards = partition_rows(&self.a.ptrs, cfg.cores());
        let ctx = self.ctx();
        let mut sys = System::new(cfg);
        sys.run(
            shards
                .into_iter()
                .map(|range| {
                    let ctx = ctx.clone();
                    move |m: &mut ChannelMachine| emit_baseline(m, &ctx, range)
                })
                .collect(),
        )
    }

    fn run_tmu(&self, cfg: SystemConfig, tmu: TmuConfig) -> TmuRun {
        let shards = partition_rows(&self.a.ptrs, cfg.cores());
        let mut handles = Vec::new();
        let accels: Vec<Box<dyn Accelerator>> = shards
            .iter()
            .enumerate()
            .map(|(c, &range)| {
                let prog = Arc::new(self.build_program(range));
                let handler = SpmspvHandler::new(self.z_r, range.0);
                let acc = TmuAccelerator::new(
                    tmu,
                    prog,
                    Arc::clone(&self.image),
                    handler,
                    self.outq_r[c].base,
                );
                handles.push(acc.stats_handle());
                Box::new(acc) as Box<dyn Accelerator>
            })
            .collect();
        let mut sys = System::new(cfg);
        let stats = sys.run_accelerated(accels);
        TmuRun {
            stats,
            outq: handles
                .iter()
                .map(|h: &Arc<Mutex<tmu::OutQStats>>| h.lock().expect("stats").clone())
                .collect(),
        }
    }

    fn verify(&self) -> Result<(), String> {
        let _ = &self.b_vals;
        check_close("SpMSpV", &self.functional(), &self.reference, 1e-9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tmu_sim::{CoreConfig, MemSysConfig};
    use tmu_tensor::gen;

    #[test]
    fn verify_against_reference() {
        Spmspv::new(&gen::uniform(128, 256, 6, 71), 0.1)
            .verify()
            .expect("TMU SpMSpV must match reference");
    }

    #[test]
    fn dense_vector_degenerates_to_spmv() {
        // Density 1.0: every matrix nnz matches.
        let a = gen::uniform(32, 64, 4, 5);
        let w = Spmspv::new(&a, 1.0);
        let nonzero_rows = w.reference().iter().filter(|&&v| v != 0.0).count();
        assert_eq!(
            nonzero_rows,
            (0..32).filter(|&i| a.row(i).count() > 0).count()
        );
        w.verify().expect("dense-vector case verifies");
    }

    #[test]
    fn baseline_and_tmu_run() {
        let w = Spmspv::new(&gen::uniform(128, 256, 6, 71), 0.1);
        let cfg = SystemConfig {
            core: CoreConfig::neoverse_n1_like(),
            mem: MemSysConfig::table5(2),
        };
        assert!(w.run_baseline(cfg).cycles > 0);
        assert!(w.run_tmu(cfg, TmuConfig::paper()).stats.cycles > 0);
    }
}
