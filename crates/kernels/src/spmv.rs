//! Sparse Matrix–Vector multiplication, `Z_i = A_ij · B_j` (CSR).
//!
//! The paper's traversal-stage proxy (§3). The baseline is the TACO loop
//! structure of Figure 4, vectorized SVE-style: per row, vector loads of
//! column indexes and values, a gather of `b[idxs[p]]` (modeled as
//! per-element loads — SVE gathers crack into element µops), an FMA chain,
//! and the data-dependent row-length branches that bound each row.
//!
//! The TMU version is the Figure 8 program (inner-loop vectorization,
//! "P1"): a dense row traversal broadcasting row pointers to a lockstep
//! group of lanes, each loading every `lanes`-th non-zero plus the chained
//! `b[idx]` lookup; the Figure 6 `ri`/`re` callbacks multiply-accumulate
//! and store on the core.

use std::sync::{Arc, Mutex};

use tmu::{
    CallbackHandler, Event, LayerMode, MemImage, OutQEntry, Program, ProgramBuilder, StreamTy,
    TmuAccelerator, TmuConfig,
};
use tmu_sim::{
    Accelerator, AddressMap, ChannelMachine, Deps, Machine, OpId, Region, RunStats, Site, System,
    SystemConfig, VecMachine,
};
use tmu_tensor::CsrMatrix;

use crate::data::{partition_rows, CsrOnSim, DenseOnSim};
use crate::util::{check_close, fold_deps};
use crate::workload::{KernelKind, TmuRun, Workload};

const S_PTR: u16 = 100;
const S_IDX: u16 = 101;
const S_VAL: u16 = 102;
const S_GATHER: u16 = 103;
const S_INNER_BR: u16 = 104;
const S_STORE: u16 = 105;
const S_OUTER_BR: u16 = 106;

/// Callback ids of the Figure 6 program.
const CB_RI: u32 = 0;
const CB_RE: u32 = 1;

/// Shareable slice of the input bindings captured by shard closures.
#[derive(Debug, Clone)]
struct Ctx {
    ptrs: Arc<Vec<u32>>,
    idxs: Arc<Vec<u32>>,
    ptrs_r: Region,
    idxs_r: Region,
    vals_r: Region,
    b_r: Region,
    x_r: Region,
}

/// An SpMV workload instance bound to the simulator.
#[derive(Debug)]
pub struct Spmv {
    sim: CsrOnSim,
    b: DenseOnSim,
    x_r: Region,
    outq_r: Vec<Region>,
    image: Arc<MemImage>,
    reference: Vec<f64>,
}

impl Spmv {
    /// Binds matrix `a` (with a deterministic dense vector) for simulation.
    pub fn new(a: &CsrMatrix) -> Self {
        let bvec: Vec<f64> = (0..a.cols())
            .map(|j| 0.5 + (j % 97) as f64 / 97.0)
            .collect();
        Self::with_vector(a, bvec)
    }

    /// Binds matrix `a` with a caller-supplied dense vector (`cols`
    /// entries) — the shape application pipelines use to thread an
    /// iterate through repeated SpMV stages.
    pub fn with_vector(a: &CsrMatrix, bvec: Vec<f64>) -> Self {
        assert_eq!(bvec.len(), a.cols(), "vector length must match cols");
        let mut map = AddressMap::new();
        let mut image = MemImage::new();
        let sim = CsrOnSim::bind(&mut map, &mut image, "a", a);
        let b = DenseOnSim::bind(&mut map, &mut image, "b", bvec);
        let x_r = map.alloc_elems("x", a.rows().max(1), 8);
        let outq_r = (0..8)
            .map(|c| map.alloc(&format!("outq{c}"), 1 << 20))
            .collect();
        let reference = reference(a, &b.data);
        Self {
            sim,
            b,
            x_r,
            outq_r,
            image: Arc::new(image),
            reference,
        }
    }

    /// The reference result.
    pub fn reference(&self) -> &[f64] {
        &self.reference
    }

    /// Shared memory image (for standalone engine experiments).
    pub fn image_handle(&self) -> Arc<MemImage> {
        Arc::clone(&self.image)
    }

    /// outQ base address of a core.
    pub fn outq_base(&self, core: usize) -> u64 {
        self.outq_r[core].base
    }

    /// Output region (for standalone handlers).
    pub fn x_region(&self) -> Region {
        self.x_r
    }

    /// Functional TMU execution (8 shards, 8 lanes): per-row results in
    /// row order, exactly as the callback handler computes them.
    pub fn functional(&self) -> Vec<f64> {
        let mut got = Vec::new();
        for &range in &self.shards(8) {
            let prog = Arc::new(self.build_program(range, 8));
            let mut handler = SpmvHandler::new(self.x_r, range.0);
            let mut vm = VecMachine::new();
            tmu::for_each_entry(&prog, &self.image, |e| {
                handler.handle(e, OpId::NONE, &mut vm);
            });
            got.extend(handler.x);
        }
        got
    }

    fn ctx(&self) -> Ctx {
        Ctx {
            ptrs: Arc::clone(&self.sim.ptrs),
            idxs: Arc::clone(&self.sim.idxs),
            ptrs_r: self.sim.ptrs_r,
            idxs_r: self.sim.idxs_r,
            vals_r: self.sim.vals_r,
            b_r: self.b.region,
            x_r: self.x_r,
        }
    }

    fn shards(&self, cores: usize) -> Vec<(usize, usize)> {
        partition_rows(&self.sim.ptrs, cores)
    }

    /// Builds the Figure 8 TMU program for a row range.
    pub fn build_program(&self, rows: (usize, usize), lanes: usize) -> Program {
        let mut b = ProgramBuilder::new();
        let l0 = b.layer(LayerMode::Single);
        let row = b.dns_fbrt(l0, rows.0 as i64, rows.1 as i64, 1);
        let ptbs = b.mem_stream(row, self.sim.ptrs_r.base, 4, StreamTy::Index);
        let ptes = b.mem_stream(row, self.sim.ptrs_r.base + 4, 4, StreamTy::Index);
        let l1 = b.layer(LayerMode::LockStep);
        let mut nnz = Vec::new();
        let mut vecv = Vec::new();
        for lane in 0..lanes as i64 {
            let col = b.rng_fbrt(l1, ptbs, ptes, lane, lanes as i64);
            let ci = b.mem_stream(col, self.sim.idxs_r.base, 4, StreamTy::Index);
            nnz.push(b.mem_stream(col, self.sim.vals_r.base, 8, StreamTy::Value));
            vecv.push(b.mem_stream_indexed(col, self.b.region.base, 8, StreamTy::Value, ci));
        }
        let avg_row = self.sim.nnz() as f64 / self.sim.rows.max(1) as f64;
        b.set_weight(l0, 1.0);
        b.set_weight(l1, avg_row.max(1.0));
        let nnz_op = b.vec_operand(l1, &nnz);
        let vec_op = b.vec_operand(l1, &vecv);
        b.callback(l1, Event::Ite, CB_RI, &[nnz_op, vec_op]);
        b.callback(l1, Event::End, CB_RE, &[]);
        b.build().expect("SpMV program is well-formed")
    }
}

impl Spmv {
    /// Builds the Table 4 "SpMV P0" program: *outer-loop* vectorization.
    /// Both layers run in lockstep — each lane owns every `lanes`-th row,
    /// so one vector operand carries elements of eight different fibers
    /// (the higher-dimensional parallelization scheme of §4.2).
    pub fn build_program_p0(&self, rows: (usize, usize), lanes: usize) -> Program {
        let mut b = ProgramBuilder::new();
        let l0 = b.layer(LayerMode::LockStep);
        let mut ptbs = Vec::new();
        let mut ptes = Vec::new();
        for lane in 0..lanes as i64 {
            let row = b.dns_fbrt(l0, rows.0 as i64 + lane, rows.1 as i64, lanes as i64);
            ptbs.push(b.mem_stream(row, self.sim.ptrs_r.base, 4, StreamTy::Index));
            ptes.push(b.mem_stream(row, self.sim.ptrs_r.base + 4, 4, StreamTy::Index));
        }
        let l1 = b.layer(LayerMode::LockStep);
        let mut nnz = Vec::new();
        let mut vecv = Vec::new();
        for lane in 0..lanes {
            let col = b.rng_fbrt(l1, ptbs[lane], ptes[lane], 0, 1);
            b.bind_parent(col, lane);
            let ci = b.mem_stream(col, self.sim.idxs_r.base, 4, StreamTy::Index);
            nnz.push(b.mem_stream(col, self.sim.vals_r.base, 8, StreamTy::Value));
            vecv.push(b.mem_stream_indexed(col, self.b.region.base, 8, StreamTy::Value, ci));
        }
        let avg_row = self.sim.nnz() as f64 / self.sim.rows.max(1) as f64;
        b.set_weight(l0, 1.0);
        b.set_weight(l1, avg_row.max(1.0));
        let nnz_op = b.vec_operand(l1, &nnz);
        let vec_op = b.vec_operand(l1, &vecv);
        b.callback(l1, Event::Ite, CB_RI, &[nnz_op, vec_op]);
        b.callback(l1, Event::End, CB_RE, &[]);
        b.build().expect("SpMV P0 program is well-formed")
    }
}

/// Host callbacks for the P0 (outer-loop parallel) scheme: each lane keeps
/// its own row accumulator; a row *group* of `lanes` rows finishes at each
/// layer-1 end event.
#[derive(Debug)]
pub struct SpmvP0Handler {
    x_r: Region,
    first_row: usize,
    last_row: usize,
    lanes: usize,
    group: usize,
    sums: Vec<f64>,
    dep: OpId,
    /// Functional output in row order (`first_row..last_row`).
    pub x: Vec<f64>,
}

impl SpmvP0Handler {
    /// Handler for rows `[first_row, last_row)` with `lanes` lanes.
    pub fn new(x_r: Region, rows: (usize, usize), lanes: usize) -> Self {
        Self {
            x_r,
            first_row: rows.0,
            last_row: rows.1,
            lanes,
            group: 0,
            sums: vec![0.0; lanes],
            dep: OpId::NONE,
            x: vec![0.0; rows.1.saturating_sub(rows.0)],
        }
    }
}

impl CallbackHandler for SpmvP0Handler {
    fn handle(&mut self, entry: &OutQEntry, entry_load: OpId, m: &mut VecMachine) {
        match entry.callback {
            CB_RI => {
                let nnz = entry.operands[0].as_f64s();
                let vecv = entry.operands[1].as_f64s();
                for lane in 0..self.lanes.min(nnz.len()) {
                    if entry.mask & (1 << lane) != 0 {
                        self.sums[lane] += nnz[lane] * vecv[lane];
                    }
                }
                // Per-lane FMA into a vector accumulator: no cross-lane
                // reduction needed in this scheme.
                self.dep = m.vec_op(
                    2 * entry.mask.count_ones(),
                    Deps::on(&[entry_load, self.dep]),
                );
            }
            CB_RE => {
                // The group of `lanes` rows is complete: store them all.
                for lane in 0..self.lanes {
                    let row = self.first_row + self.group * self.lanes + lane;
                    if row < self.last_row {
                        self.x[row - self.first_row] = self.sums[lane];
                    }
                }
                m.store(
                    Site(S_STORE),
                    self.x_r.f64_at(self.first_row + self.group * self.lanes),
                    (self.lanes * 8) as u32,
                    Deps::from(self.dep),
                );
                self.sums.iter_mut().for_each(|s| *s = 0.0);
                self.group += 1;
                self.dep = OpId::NONE;
            }
            other => panic!("SpMV P0: unexpected callback {other}"),
        }
    }
}

/// Emits the vectorized baseline for a row shard.
fn emit_baseline<M: Machine + ?Sized>(m: &mut M, ctx: &Ctx, rows: (usize, usize), vl: usize) {
    let (r0, r1) = rows;
    if r0 >= r1 {
        return;
    }
    let mut ptr_prev = m.load(Site(S_PTR), ctx.ptrs_r.u32_at(r0), 4, Deps::NONE);
    for i in r0..r1 {
        let ptr_next = m.load(Site(S_PTR), ctx.ptrs_r.u32_at(i + 1), 4, Deps::NONE);
        let beg = ctx.ptrs[i] as usize;
        let end = ctx.ptrs[i + 1] as usize;
        let mut sum = OpId::NONE;
        let mut p = beg;
        while p < end {
            let n = (end - p).min(vl);
            let bounds = Deps::on(&[ptr_prev, ptr_next]);
            let idxv = m.vec_load(Site(S_IDX), ctx.idxs_r.u32_at(p), (n * 4) as u32, bounds);
            let valv = m.vec_load(Site(S_VAL), ctx.vals_r.f64_at(p), (n * 8) as u32, bounds);
            let mut prods = Vec::with_capacity(n + 2);
            for e in 0..n {
                let col = ctx.idxs[p + e] as usize;
                prods.push(m.load(Site(S_GATHER), ctx.b_r.f64_at(col), 8, Deps::from(idxv)));
            }
            prods.push(valv);
            if sum.is_some() {
                prods.push(sum);
            }
            let deps = fold_deps(m, &prods);
            sum = m.vec_op((2 * n) as u32, deps);
            p += n;
            m.branch(Site(S_INNER_BR), p < end, Deps::on(&[ptr_prev, ptr_next]));
        }
        m.store(Site(S_STORE), ctx.x_r.f64_at(i), 8, Deps::from(sum));
        m.branch(Site(S_OUTER_BR), i + 1 < r1, Deps::NONE);
        ptr_prev = ptr_next;
    }
}

/// Host callbacks of Figure 6: `ri` multiply-accumulates the marshaled
/// vectors, `re` stores the finished row.
#[derive(Debug)]
pub struct SpmvHandler {
    x_r: Region,
    next_row: usize,
    sum: f64,
    sum_dep: OpId,
    /// Functional output (row values in traversal order).
    pub x: Vec<f64>,
}

impl SpmvHandler {
    /// Handler for rows starting at `first_row`.
    pub fn new(x_r: Region, first_row: usize) -> Self {
        Self {
            x_r,
            next_row: first_row,
            sum: 0.0,
            sum_dep: OpId::NONE,
            x: Vec::new(),
        }
    }
}

impl CallbackHandler for SpmvHandler {
    fn handle(&mut self, entry: &OutQEntry, entry_load: OpId, m: &mut VecMachine) {
        match entry.callback {
            CB_RI => {
                let nnz = entry.operands[0].as_f64s();
                let vecv = entry.operands[1].as_f64s();
                self.sum += nnz.iter().zip(&vecv).map(|(a, b)| a * b).sum::<f64>();
                let active = entry.mask.count_ones();
                let mul = m.vec_op(active, Deps::from(entry_load));
                self.sum_dep = m.vec_op(active, Deps::on(&[mul, self.sum_dep]));
            }
            CB_RE => {
                self.x.push(self.sum);
                self.sum = 0.0;
                m.store(
                    Site(S_STORE),
                    self.x_r.f64_at(self.next_row),
                    8,
                    Deps::from(self.sum_dep),
                );
                self.next_row += 1;
                self.sum_dep = OpId::NONE;
            }
            other => panic!("SpMV: unexpected callback {other}"),
        }
    }
}

fn reference(a: &CsrMatrix, b: &[f64]) -> Vec<f64> {
    (0..a.rows())
        .map(|i| a.row(i).map(|(c, v)| v * b[c as usize]).sum())
        .collect()
}

impl Workload for Spmv {
    fn name(&self) -> &'static str {
        "SpMV"
    }

    fn kind(&self) -> KernelKind {
        KernelKind::MemoryIntensive
    }

    fn run_baseline(&self, cfg: SystemConfig) -> RunStats {
        let shards = self.shards(cfg.cores());
        let vl = cfg.core.sve_lanes();
        let ctx = self.ctx();
        let mut sys = System::new(cfg);
        sys.run(
            shards
                .into_iter()
                .map(|range| {
                    let ctx = ctx.clone();
                    move |m: &mut ChannelMachine| emit_baseline(m, &ctx, range, vl)
                })
                .collect(),
        )
    }

    fn run_baseline_imp(&self, cfg: SystemConfig) -> Option<RunStats> {
        let shards = self.shards(cfg.cores());
        let vl = cfg.core.sve_lanes();
        let ctx = self.ctx();
        let mut sys = System::new(cfg);
        Some(
            sys.run_with_imp(
                shards
                    .into_iter()
                    .map(|range| {
                        let ctx = ctx.clone();
                        move |m: &mut ChannelMachine| emit_baseline(m, &ctx, range, vl)
                    })
                    .collect(),
            ),
        )
    }

    fn run_tmu(&self, cfg: SystemConfig, tmu: TmuConfig) -> TmuRun {
        let shards = self.shards(cfg.cores());
        let mut handles = Vec::new();
        let accels: Vec<Box<dyn Accelerator>> = shards
            .iter()
            .enumerate()
            .map(|(c, &range)| {
                let prog = Arc::new(self.build_program(range, tmu.lanes));
                let handler = SpmvHandler::new(self.x_r, range.0);
                let acc = TmuAccelerator::new(
                    tmu,
                    prog,
                    Arc::clone(&self.image),
                    handler,
                    self.outq_r[c].base,
                );
                handles.push(acc.stats_handle());
                Box::new(acc) as Box<dyn Accelerator>
            })
            .collect();
        let mut sys = System::new(cfg);
        let stats = sys.run_accelerated(accels);
        TmuRun {
            stats,
            outq: handles
                .iter()
                .map(|h: &Arc<Mutex<tmu::OutQStats>>| h.lock().expect("stats").clone())
                .collect(),
        }
    }

    fn verify(&self) -> Result<(), String> {
        check_close("SpMV", &self.functional(), &self.reference, 1e-9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tmu_sim::{CoreConfig, CountingMachine, MemSysConfig};
    use tmu_tensor::gen;

    fn small_cfg(cores: usize) -> SystemConfig {
        SystemConfig {
            core: CoreConfig::neoverse_n1_like(),
            mem: MemSysConfig::table5(cores),
        }
    }

    fn workload() -> Spmv {
        Spmv::new(&gen::uniform(512, 512, 8, 42))
    }

    #[test]
    fn verify_against_reference() {
        workload().verify().expect("TMU SpMV must match reference");
    }

    #[test]
    fn baseline_op_mix_is_sane() {
        let w = workload();
        let mut m = CountingMachine::new();
        emit_baseline(&mut m, &w.ctx(), (0, 512), 8);
        // ≈ 8 nnz/row: per row ≥ 1 chunk (idx+val vec loads + 8 gathers).
        assert!(m.loads as usize >= w.sim.nnz() + 512);
        assert_eq!(m.stores, 512);
        assert!(m.branches >= 1024);
        assert_eq!(m.flops as usize, 2 * w.sim.nnz());
    }

    #[test]
    fn baseline_runs_multicore() {
        let w = workload();
        let stats = w.run_baseline(small_cfg(2));
        assert!(stats.cycles > 0);
        assert_eq!(stats.total().flops as usize, 2 * w.sim.nnz());
    }

    #[test]
    fn tmu_runs_and_reports_outq() {
        let w = workload();
        let run = w.run_tmu(small_cfg(2), TmuConfig::paper());
        assert!(run.stats.cycles > 0);
        assert!(run.outq.iter().any(|o| o.entries > 0));
        assert!(run.read_to_write_ratio() >= 0.0);
    }

    #[test]
    fn tmu_beats_baseline_on_scattered_input() {
        // A scattered matrix (poor locality) is where the TMU's MLP pays.
        let w = Spmv::new(&gen::uniform(2048, 65_536, 8, 7));
        let base = w.run_baseline(small_cfg(2));
        let tmu = w.run_tmu(small_cfg(2), TmuConfig::paper());
        let speedup = base.cycles as f64 / tmu.stats.cycles as f64;
        assert!(
            speedup > 1.2,
            "TMU should beat the baseline, got {speedup:.2}×"
        );
    }

    #[test]
    fn imp_baseline_runs() {
        let w = workload();
        let stats = w.run_baseline_imp(small_cfg(2)).expect("SpMV supports IMP");
        assert!(stats.cycles > 0);
    }

    #[test]
    fn p0_outer_loop_scheme_matches_reference() {
        let w = workload();
        let lanes = 8;
        let prog = std::sync::Arc::new(w.build_program_p0((0, 512), lanes));
        let mut handler = SpmvP0Handler::new(w.x_region(), (0, 512), lanes);
        let mut vm = VecMachine::new();
        tmu::for_each_entry(&prog, &w.image_handle(), |e| {
            handler.handle(e, OpId::NONE, &mut vm);
        });
        for (g, r) in handler.x.iter().zip(w.reference()) {
            assert!((g - r).abs() < 1e-9, "{g} vs {r}");
        }
    }

    #[test]
    fn p0_handles_row_counts_not_divisible_by_lanes() {
        let w = Spmv::new(&gen::uniform(61, 64, 5, 3));
        let prog = std::sync::Arc::new(w.build_program_p0((0, 61), 8));
        let mut handler = SpmvP0Handler::new(w.x_region(), (0, 61), 8);
        let mut vm = VecMachine::new();
        tmu::for_each_entry(&prog, &w.image_handle(), |e| {
            handler.handle(e, OpId::NONE, &mut vm);
        });
        for (g, r) in handler.x.iter().zip(w.reference()) {
            assert!((g - r).abs() < 1e-9);
        }
    }

    #[test]
    fn empty_rows_are_handled() {
        let coo = tmu_tensor::CooMatrix::from_triplets(64, 64, vec![(63, 5, 1.0)]).expect("ok");
        let w = Spmv::new(&CsrMatrix::from_coo(&coo));
        w.verify().expect("mostly-empty matrix verifies");
        let stats = w.run_baseline(small_cfg(1));
        assert!(stats.cycles > 0);
    }
}
