//! Sparse Tensor Contraction, `Z_{ij} = Σ_{kl} A_{ikl} · B_{lkj}`
//! (CSF × CSF, symbolic phase).
//!
//! Follows the Sparta element-wise formulation the paper evaluates: for
//! every non-zero `A(i,k,l)` the matching `B(l,k,·)` fiber is probed and
//! its `j` coordinates inserted into the output row's structure. As in the
//! paper, only the **symbolic phase** is executed (counting the distinct
//! output coordinates), "to limit simulation time".
//!
//! `B` is stored with a dense `l` root level (pointer-indexable) over
//! compressed `k` and `j` levels. Probing `k` inside `B`'s fiber is a
//! merge: the baseline scans with data-dependent branches; the TMU
//! intersects a single-element fiber (`IdxFbrT(beg=k, size=1)`) with the
//! `B(l,·)` k-fiber in a conjunctive-merge layer (the Table 4 SpTC row).

use std::sync::{Arc, Mutex};

use tmu::{
    CallbackHandler, Event, LayerMode, MemImage, OutQEntry, Program, ProgramBuilder, StreamTy,
    TmuAccelerator, TmuConfig,
};
use tmu_sim::{
    Accelerator, AddressMap, ChannelMachine, Deps, Machine, OpId, Region, RunStats, Site, System,
    SystemConfig, VecMachine,
};
use tmu_tensor::{CooTensor, CsfTensor};

use crate::data::{partition_flat, CsfOnSim};
use crate::workload::{KernelKind, TmuRun, Workload};

const S_APTR: u16 = 300;
const S_AKIDX: u16 = 301;
const S_ALIDX: u16 = 302;
const S_BLPTR: u16 = 303;
const S_BKIDX: u16 = 304;
const S_BKPTR: u16 = 305;
const S_BJIDX: u16 = 306;
const S_SCAN_BR: u16 = 307;
const S_BIT_LD: u16 = 308;
const S_BIT_ST: u16 = 309;
const S_J_BR: u16 = 310;
const S_WALK_BR: u16 = 311;

const CB_I: u32 = 0;
const CB_J: u32 = 1;

#[derive(Debug, Clone)]
struct Ctx {
    a_ptr0: Arc<Vec<u32>>,
    a_ptr1: Arc<Vec<u32>>,
    a_idx1: Arc<Vec<u32>>,
    a_idx2: Arc<Vec<u32>>,
    b_lptr: Arc<Vec<u32>>,
    b_kidx: Arc<Vec<u32>>,
    b_kptr: Arc<Vec<u32>>,
    b_jidx: Arc<Vec<u32>>,
    a_ptr0_r: Region,
    a_ptr1_r: Region,
    a_idx1_r: Region,
    a_idx2_r: Region,
    b_lptr_r: Region,
    b_kidx_r: Region,
    b_kptr_r: Region,
    b_jidx_r: Region,
    bitmap_r: Region,
    dim_j: usize,
}

/// An SpTC (symbolic) workload bound to the simulator.
#[derive(Debug)]
pub struct Sptc {
    a: CsfOnSim,
    b_lptr: Arc<Vec<u32>>,
    b_kidx: Arc<Vec<u32>>,
    b_kptr: Arc<Vec<u32>>,
    b_jidx: Arc<Vec<u32>>,
    b_lptr_r: Region,
    b_kidx_r: Region,
    b_kptr_r: Region,
    b_jidx_r: Region,
    bitmap_r: Region,
    outq_r: Vec<Region>,
    image: Arc<MemImage>,
    dim_j: usize,
    reference: u64,
}

impl Sptc {
    /// Binds tensors `a` (i,k,l) and `b` (l,k,j) for the symbolic phase.
    pub fn new(a_t: &CooTensor, b_t: &CooTensor) -> Self {
        assert_eq!(a_t.order(), 3, "SpTC contracts order-3 tensors");
        assert_eq!(b_t.order(), 3, "SpTC contracts order-3 tensors");
        assert_eq!(a_t.dims()[2], b_t.dims()[0], "l dimensions must agree");
        assert_eq!(a_t.dims()[1], b_t.dims()[1], "k dimensions must agree");
        let a_csf = CsfTensor::from_coo(a_t);
        let dim_l = b_t.dims()[0];
        let dim_j = b_t.dims()[2];

        // Dense-root B structure: lptr[l..l+1] → k nodes; kptr → j leaves.
        let b_csf = CsfTensor::from_coo(b_t);
        let mut b_lptr = vec![0u32; dim_l + 1];
        let mut b_kidx = Vec::new();
        let mut b_kptr = vec![0u32];
        let mut b_jidx = Vec::new();
        {
            // Walk the CSF of B (root = l) and re-emit with a dense root.
            let mut per_l: Vec<Vec<(u32, Vec<u32>)>> = vec![Vec::new(); dim_l];
            for ln in 0..b_csf.num_nodes(0) {
                let l = b_csf.idxs(0)[ln] as usize;
                let (kb, ke) = b_csf.child_range(0, ln);
                for kn in kb..ke {
                    let k = b_csf.idxs(1)[kn];
                    let (jb, je) = b_csf.child_range(1, kn);
                    per_l[l].push((k, b_csf.idxs(2)[jb..je].to_vec()));
                }
            }
            for l in 0..dim_l {
                for (k, js) in &per_l[l] {
                    b_kidx.push(*k);
                    b_jidx.extend_from_slice(js);
                    b_kptr.push(b_jidx.len() as u32);
                }
                b_lptr[l + 1] = b_kidx.len() as u32;
            }
        }

        // Reference symbolic count: distinct (i, j) pairs.
        let mut pairs = std::collections::HashSet::new();
        for (coord, _) in a_t.iter() {
            let (i, k, l) = (coord[0], coord[1], coord[2] as usize);
            let (kb, ke) = (b_lptr[l] as usize, b_lptr[l + 1] as usize);
            for kn in kb..ke {
                if b_kidx[kn] == k {
                    let (jb, je) = (b_kptr[kn] as usize, b_kptr[kn + 1] as usize);
                    for &j in &b_jidx[jb..je] {
                        pairs.insert((i, j));
                    }
                }
            }
        }
        let reference = pairs.len() as u64;

        let mut map = AddressMap::new();
        let mut image = MemImage::new();
        let a = CsfOnSim::bind(&mut map, &mut image, "A", &a_csf);
        let b_lptr = Arc::new(b_lptr);
        let b_kidx = Arc::new(b_kidx);
        let b_kptr = Arc::new(b_kptr);
        let b_jidx = Arc::new(b_jidx);
        let b_lptr_r = map.alloc_elems("B.lptr", b_lptr.len(), 4);
        let b_kidx_r = map.alloc_elems("B.kidx", b_kidx.len().max(1), 4);
        let b_kptr_r = map.alloc_elems("B.kptr", b_kptr.len(), 4);
        let b_jidx_r = map.alloc_elems("B.jidx", b_jidx.len().max(1), 4);
        image.bind_u32(b_lptr_r, Arc::clone(&b_lptr));
        image.bind_u32(b_kidx_r, Arc::clone(&b_kidx));
        image.bind_u32(b_kptr_r, Arc::clone(&b_kptr));
        image.bind_u32(b_jidx_r, Arc::clone(&b_jidx));
        // Per-core output bitmaps (one row's worth of u64 words each).
        let bitmap_r = map.alloc_elems("bitmap", 8 * dim_j.div_ceil(64).max(1), 8);
        let outq_r = (0..8)
            .map(|c| map.alloc(&format!("outq{c}"), 1 << 20))
            .collect();
        Self {
            a,
            b_lptr,
            b_kidx,
            b_kptr,
            b_jidx,
            b_lptr_r,
            b_kidx_r,
            b_kptr_r,
            b_jidx_r,
            bitmap_r,
            outq_r,
            image: Arc::new(image),
            dim_j,
            reference,
        }
    }

    /// The reference symbolic output size (distinct `(i,j)` pairs).
    pub fn reference(&self) -> u64 {
        self.reference
    }

    fn ctx(&self) -> Ctx {
        Ctx {
            a_ptr0: Arc::clone(&self.a.ptrs[0]),
            a_ptr1: Arc::clone(&self.a.ptrs[1]),
            a_idx1: Arc::clone(&self.a.idxs[1]),
            a_idx2: Arc::clone(&self.a.idxs[2]),
            b_lptr: Arc::clone(&self.b_lptr),
            b_kidx: Arc::clone(&self.b_kidx),
            b_kptr: Arc::clone(&self.b_kptr),
            b_jidx: Arc::clone(&self.b_jidx),
            a_ptr0_r: self.a.ptrs_r[0],
            a_ptr1_r: self.a.ptrs_r[1],
            a_idx1_r: self.a.idxs_r[1],
            a_idx2_r: self.a.idxs_r[2],
            b_lptr_r: self.b_lptr_r,
            b_kidx_r: self.b_kidx_r,
            b_kptr_r: self.b_kptr_r,
            b_jidx_r: self.b_jidx_r,
            bitmap_r: self.bitmap_r,
            dim_j: self.dim_j,
        }
    }

    fn shards(&self, cores: usize) -> Vec<(usize, usize)> {
        partition_flat(self.a.idxs[0].len(), cores)
    }

    /// Builds the Table 4 SpTC TMU program for a root-node range.
    pub fn build_program(&self, roots: (usize, usize)) -> Program {
        let mut bld = ProgramBuilder::new();
        // Layer 0: A's i root.
        let l0 = bld.layer(LayerMode::Single);
        let itu = bld.dns_fbrt(l0, roots.0 as i64, roots.1 as i64, 1);
        let i_idx = bld.mem_stream(itu, self.a.idxs_r[0].base, 4, StreamTy::Index);
        let ap0b = bld.mem_stream(itu, self.a.ptrs_r[0].base, 4, StreamTy::Index);
        let ap0e = bld.mem_stream(itu, self.a.ptrs_r[0].base + 4, 4, StreamTy::Index);

        // Layer 1: A's k fibers.
        let l1 = bld.layer(LayerMode::Single);
        let ktu = bld.rng_fbrt(l1, ap0b, ap0e, 0, 1);
        let k_idx = bld.mem_stream(ktu, self.a.idxs_r[1].base, 4, StreamTy::Index);
        let ap1b = bld.mem_stream(ktu, self.a.ptrs_r[1].base, 4, StreamTy::Index);
        let ap1e = bld.mem_stream(ktu, self.a.ptrs_r[1].base + 4, 4, StreamTy::Index);

        // Layer 2: A's l leaves + the chained B(l) bounds.
        let l2 = bld.layer(LayerMode::Single);
        let ltu = bld.rng_fbrt(l2, ap1b, ap1e, 0, 1);
        let l_idx = bld.mem_stream(ltu, self.a.idxs_r[2].base, 4, StreamTy::Index);
        let blb = bld.mem_stream_indexed(ltu, self.b_lptr_r.base, 4, StreamTy::Index, l_idx);
        let ble = bld.mem_stream_indexed(ltu, self.b_lptr_r.base + 4, 4, StreamTy::Index, l_idx);
        let k_fwd = bld.fwd_stream(ltu, k_idx);

        // Layer 3: conjunctive probe of B(l)'s k fiber against {k}.
        let l3 = bld.layer(LayerMode::ConjMrg);
        let probe = bld.idx_fbrt(l3, k_fwd, 1, 0, 1); // the 1-element fiber {k}
        let _ = probe; // key defaults to its ite stream, whose value is k
        let bk_tu = bld.rng_fbrt(l3, blb, ble, 0, 1);
        bld.bind_parent(bk_tu, 0);
        let bk = bld.mem_stream(bk_tu, self.b_kidx_r.base, 4, StreamTy::Index);
        let bq_b = bld.mem_stream(bk_tu, self.b_kptr_r.base, 4, StreamTy::Index);
        let bq_e = bld.mem_stream(bk_tu, self.b_kptr_r.base + 4, 4, StreamTy::Index);
        bld.set_key(bk_tu, bk);

        // Layer 4: B's j leaves of the matched fiber.
        let l4 = bld.layer(LayerMode::Single);
        let jtu = bld.rng_fbrt(l4, bq_b, bq_e, 0, 1);
        bld.bind_parent(jtu, 1);
        let j_idx = bld.mem_stream(jtu, self.b_jidx_r.base, 4, StreamTy::Index);

        let nnz = self.a.nnz() as f64;
        let roots_n = self.a.idxs[0].len().max(1) as f64;
        bld.set_weight(l0, 1.0);
        bld.set_weight(l1, (self.a.idxs[1].len() as f64 / roots_n).max(1.0));
        bld.set_weight(l2, (nnz / roots_n).max(1.0));
        bld.set_weight(l3, (nnz / roots_n * 2.0).max(2.0));
        bld.set_weight(l4, (nnz / roots_n * 2.0).max(2.0));

        let i_op = bld.scalar_operand(l0, i_idx);
        bld.callback(l0, Event::Ite, CB_I, &[i_op]);
        let j_op = bld.scalar_operand(l4, j_idx);
        bld.callback(l4, Event::Ite, CB_J, &[j_op]);
        bld.build().expect("SpTC program is well-formed")
    }
}

fn emit_baseline<M: Machine + ?Sized>(m: &mut M, ctx: &Ctx, roots: (usize, usize), core: usize) {
    let words = ctx.dim_j.div_ceil(64);
    let mut bitmap = vec![0u64; words];
    let bitmap_base = core * words;
    let (n0, n1) = roots;
    for n in n0..n1 {
        // New output row: reset the bitmap (cost amortized: one store per
        // word touched in the previous row, already counted at set time).
        bitmap.iter_mut().for_each(|w| *w = 0);
        let r0 = m.load(Site(S_APTR), ctx.a_ptr0_r.u32_at(n), 4, Deps::NONE);
        let r1 = m.load(Site(S_APTR), ctx.a_ptr0_r.u32_at(n + 1), 4, Deps::NONE);
        let (kb, ke) = (ctx.a_ptr0[n] as usize, ctx.a_ptr0[n + 1] as usize);
        for kn in kb..ke {
            let kld = m.load(
                Site(S_AKIDX),
                ctx.a_idx1_r.u32_at(kn),
                4,
                Deps::on(&[r0, r1]),
            );
            let q0 = m.load(
                Site(S_APTR),
                ctx.a_ptr1_r.u32_at(kn),
                4,
                Deps::on(&[r0, r1]),
            );
            let q1 = m.load(
                Site(S_APTR),
                ctx.a_ptr1_r.u32_at(kn + 1),
                4,
                Deps::on(&[r0, r1]),
            );
            let k = ctx.a_idx1[kn];
            let (lb, le) = (ctx.a_ptr1[kn] as usize, ctx.a_ptr1[kn + 1] as usize);
            for ln in lb..le {
                let lld = m.load(
                    Site(S_ALIDX),
                    ctx.a_idx2_r.u32_at(ln),
                    4,
                    Deps::on(&[q0, q1]),
                );
                let l = ctx.a_idx2[ln] as usize;
                let bl0 = m.load(Site(S_BLPTR), ctx.b_lptr_r.u32_at(l), 4, Deps::from(lld));
                let bl1 = m.load(
                    Site(S_BLPTR),
                    ctx.b_lptr_r.u32_at(l + 1),
                    4,
                    Deps::from(lld),
                );
                // Scan B(l)'s k fiber for k (merge-style, branch per step).
                let (mut s, se) = (ctx.b_lptr[l] as usize, ctx.b_lptr[l + 1] as usize);
                let mut matched = None;
                while s < se {
                    let bkld = m.load(
                        Site(S_BKIDX),
                        ctx.b_kidx_r.u32_at(s),
                        4,
                        Deps::on(&[bl0, bl1]),
                    );
                    let bk = ctx.b_kidx[s];
                    m.branch(Site(S_SCAN_BR), bk < k, Deps::on(&[bkld, kld]));
                    if bk == k {
                        matched = Some(s);
                        break;
                    }
                    if bk > k {
                        break;
                    }
                    s += 1;
                }
                if let Some(kn_b) = matched {
                    let j0 = m.load(Site(S_BKPTR), ctx.b_kptr_r.u32_at(kn_b), 4, Deps::NONE);
                    let j1 = m.load(Site(S_BKPTR), ctx.b_kptr_r.u32_at(kn_b + 1), 4, Deps::NONE);
                    let (jb, je) = (ctx.b_kptr[kn_b] as usize, ctx.b_kptr[kn_b + 1] as usize);
                    for jp in jb..je {
                        let jld = m.load(
                            Site(S_BJIDX),
                            ctx.b_jidx_r.u32_at(jp),
                            4,
                            Deps::on(&[j0, j1]),
                        );
                        let j = ctx.b_jidx[jp] as usize;
                        let word = j / 64;
                        // Bitmap insert: load word, or, store.
                        let w = m.load(
                            Site(S_BIT_LD),
                            ctx.bitmap_r.f64_at(bitmap_base + word),
                            8,
                            Deps::from(jld),
                        );
                        let orop = m.int_op(Deps::from(w));
                        m.store(
                            Site(S_BIT_ST),
                            ctx.bitmap_r.f64_at(bitmap_base + word),
                            8,
                            Deps::from(orop),
                        );
                        bitmap[word] |= 1 << (j % 64);
                        m.branch(Site(S_J_BR), jp + 1 < je, Deps::NONE);
                    }
                }
                m.branch(Site(S_WALK_BR), ln + 1 < le, Deps::NONE);
            }
            m.branch(Site(S_WALK_BR), kn + 1 < ke, Deps::NONE);
        }
    }
}

/// Symbolic-phase callbacks: track the current output row, insert `j`s.
#[derive(Debug)]
pub struct SptcHandler {
    bitmap_r: Region,
    bitmap_base: usize,
    bitmap: Vec<u64>,
    /// Distinct output coordinates counted.
    pub count: u64,
}

impl SptcHandler {
    /// Handler using core `core`'s bitmap slice for `dim_j` columns.
    pub fn new(bitmap_r: Region, core: usize, dim_j: usize) -> Self {
        let words = dim_j.div_ceil(64);
        Self {
            bitmap_r,
            bitmap_base: core * words,
            bitmap: vec![0; words],
            count: 0,
        }
    }
}

impl CallbackHandler for SptcHandler {
    fn handle(&mut self, entry: &OutQEntry, entry_load: OpId, m: &mut VecMachine) {
        match entry.callback {
            CB_I => {
                self.bitmap.iter_mut().for_each(|w| *w = 0);
            }
            CB_J => {
                let j = entry.operands[0].as_index() as usize;
                let word = j / 64;
                let bit = 1u64 << (j % 64);
                let w = m.load(
                    Site(S_BIT_LD),
                    self.bitmap_r.f64_at(self.bitmap_base + word),
                    8,
                    Deps::from(entry_load),
                );
                let orop = m.int_op(Deps::from(w));
                m.store(
                    Site(S_BIT_ST),
                    self.bitmap_r.f64_at(self.bitmap_base + word),
                    8,
                    Deps::from(orop),
                );
                if self.bitmap[word] & bit == 0 {
                    self.bitmap[word] |= bit;
                    self.count += 1;
                }
            }
            other => panic!("SpTC: unexpected callback {other}"),
        }
    }
}

impl Workload for Sptc {
    fn name(&self) -> &'static str {
        "SpTC"
    }

    fn kind(&self) -> KernelKind {
        KernelKind::MergeIntensive
    }

    fn run_baseline(&self, cfg: SystemConfig) -> RunStats {
        let shards = self.shards(cfg.cores());
        let ctx = self.ctx();
        let mut sys = System::new(cfg);
        sys.run(
            shards
                .into_iter()
                .enumerate()
                .map(|(core, range)| {
                    let ctx = ctx.clone();
                    move |m: &mut ChannelMachine| emit_baseline(m, &ctx, range, core)
                })
                .collect(),
        )
    }

    fn run_tmu(&self, cfg: SystemConfig, tmu: TmuConfig) -> TmuRun {
        let shards = self.shards(cfg.cores());
        let mut handles = Vec::new();
        let accels: Vec<Box<dyn Accelerator>> = shards
            .iter()
            .enumerate()
            .map(|(c, &range)| {
                let prog = Arc::new(self.build_program(range));
                let handler = SptcHandler::new(self.bitmap_r, c, self.dim_j);
                let acc = TmuAccelerator::new(
                    tmu,
                    prog,
                    Arc::clone(&self.image),
                    handler,
                    self.outq_r[c].base,
                );
                handles.push(acc.stats_handle());
                Box::new(acc) as Box<dyn Accelerator>
            })
            .collect();
        let mut sys = System::new(cfg);
        let stats = sys.run_accelerated(accels);
        TmuRun {
            stats,
            outq: handles
                .iter()
                .map(|h: &Arc<Mutex<tmu::OutQStats>>| h.lock().expect("stats").clone())
                .collect(),
        }
    }

    fn verify(&self) -> Result<(), String> {
        let mut count = 0u64;
        for (c, &range) in self.shards(8).iter().enumerate() {
            let prog = Arc::new(self.build_program(range));
            let mut handler = SptcHandler::new(self.bitmap_r, c, self.dim_j);
            let mut vm = VecMachine::new();
            tmu::for_each_entry(&prog, &self.image, |e| {
                handler.handle(e, OpId::NONE, &mut vm);
            });
            count += handler.count;
        }
        if count == self.reference {
            Ok(())
        } else {
            Err(format!("SpTC: got {count}, want {}", self.reference))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tmu_sim::{CoreConfig, MemSysConfig};
    use tmu_tensor::gen;

    fn workload() -> Sptc {
        let a = gen::random_tensor(&[24, 12, 16], 600, 81);
        let b = gen::random_tensor(&[16, 12, 20], 700, 82);
        Sptc::new(&a, &b)
    }

    #[test]
    fn verify_against_reference() {
        let w = workload();
        assert!(w.reference() > 0, "fixture must produce output");
        w.verify().expect("TMU SpTC must match reference");
    }

    #[test]
    fn disjoint_tensors_produce_empty_output() {
        // A uses only l ∈ {0}, B only l ∈ {1}: no contraction matches.
        let a = CooTensor::from_entries(
            vec![2, 2, 2],
            vec![(vec![0, 0, 0], 1.0), (vec![1, 1, 0], 2.0)],
        )
        .expect("ok");
        let b = CooTensor::from_entries(vec![2, 2, 3], vec![(vec![1, 0, 2], 1.0)]).expect("ok");
        let w = Sptc::new(&a, &b);
        assert_eq!(w.reference(), 0);
        w.verify().expect("empty intersection verifies");
    }

    #[test]
    fn baseline_and_tmu_run() {
        let w = workload();
        let cfg = SystemConfig {
            core: CoreConfig::neoverse_n1_like(),
            mem: MemSysConfig::table5(2),
        };
        let base = w.run_baseline(cfg);
        let run = w.run_tmu(cfg, TmuConfig::paper());
        assert!(base.cycles > 0 && run.stats.cycles > 0);
    }
}
