//! Sparse Tensor Times Matrix, `Z_{ijk} = Σ_l A_{ijl} · B_{lk}` (CSF).
//!
//! Per `(i, j)` fiber the l leaves scale rows of the dense factor `B`
//! into a rank-length accumulator, stored at fiber end. Table 4 row
//! "SpTTM": the rank loop (`k`) is lockstep vectorized across lanes; the
//! `l` level supplies the row base through a `lin` stream.

use std::sync::{Arc, Mutex};

use tmu::{
    CallbackHandler, Event, LayerMode, MemImage, OutQEntry, Program, ProgramBuilder, StreamTy,
    TmuAccelerator, TmuConfig,
};
use tmu_sim::{
    Accelerator, AddressMap, ChannelMachine, Deps, Machine, OpId, Region, RunStats, Site, System,
    SystemConfig, VecMachine,
};
use tmu_tensor::{CooTensor, CsfTensor};

use crate::data::{partition_flat, CsfOnSim, DenseOnSim};
use crate::util::check_close;
use crate::workload::{KernelKind, TmuRun, Workload};

/// Columns of the dense factor (the paper's SpTTM rank).
pub const RANK: usize = 16;

const S_ROOT: u16 = 240;
const S_JPTR: u16 = 241;
const S_LIDX: u16 = 242;
const S_LVAL: u16 = 243;
const S_BROW: u16 = 244;
const S_STORE: u16 = 245;
const S_R_BR: u16 = 246;
const S_L_BR: u16 = 247;
const S_FIB_BR: u16 = 248;

const CB_RI: u32 = 0;
const CB_L_END: u32 = 1;
const CB_FIB_END: u32 = 2;

#[derive(Debug, Clone)]
struct Ctx {
    ptr0: Arc<Vec<u32>>,
    ptr1: Arc<Vec<u32>>,
    idx2: Arc<Vec<u32>>,
    ptr0_r: Region,
    ptr1_r: Region,
    idx2_r: Region,
    vals_r: Region,
    b_r: Region,
    z_r: Region,
}

/// An SpTTM workload bound to the simulator.
#[derive(Debug)]
pub struct Spttm {
    t: CsfOnSim,
    b: DenseOnSim,
    z_r: Region,
    outq_r: Vec<Region>,
    image: Arc<MemImage>,
    reference: Vec<f64>,
}

impl Spttm {
    /// Binds order-3 tensor `t` (as CSF) with a deterministic factor.
    pub fn new(tensor: &CooTensor) -> Self {
        assert_eq!(tensor.order(), 3, "SpTTM needs an order-3 tensor");
        let csf = CsfTensor::from_coo(tensor);
        let dim_l = tensor.dims()[2];
        let b_vals: Vec<f64> = (0..dim_l * RANK)
            .map(|x| 0.5 + (x % 79) as f64 / 79.0)
            .collect();
        // Reference: RANK values per (i, j) fiber, in fiber order.
        let mut reference = Vec::with_capacity(csf.num_nodes(1) * RANK);
        for jn in 0..csf.num_nodes(1) {
            let (lb, le) = csf.child_range(1, jn);
            for r in 0..RANK {
                reference.push(
                    (lb..le)
                        .map(|p| csf.vals()[p] * b_vals[csf.idxs(2)[p] as usize * RANK + r])
                        .sum(),
                );
            }
        }
        let mut map = AddressMap::new();
        let mut image = MemImage::new();
        let t = CsfOnSim::bind(&mut map, &mut image, "t", &csf);
        let b = DenseOnSim::bind(&mut map, &mut image, "B", b_vals);
        let z_r = map.alloc_elems("z", (csf.num_nodes(1) * RANK).max(1), 8);
        let outq_r = (0..8)
            .map(|c| map.alloc(&format!("outq{c}"), 1 << 20))
            .collect();
        Self {
            t,
            b,
            z_r,
            outq_r,
            image: Arc::new(image),
            reference,
        }
    }

    /// The reference output (RANK values per fiber).
    pub fn reference(&self) -> &[f64] {
        &self.reference
    }

    fn ctx(&self) -> Ctx {
        Ctx {
            ptr0: Arc::clone(&self.t.ptrs[0]),
            ptr1: Arc::clone(&self.t.ptrs[1]),
            idx2: Arc::clone(&self.t.idxs[2]),
            ptr0_r: self.t.ptrs_r[0],
            ptr1_r: self.t.ptrs_r[1],
            idx2_r: self.t.idxs_r[2],
            vals_r: self.t.vals_r,
            b_r: self.b.region,
            z_r: self.z_r,
        }
    }

    fn shards(&self, cores: usize) -> Vec<(usize, usize)> {
        partition_flat(self.t.idxs[0].len(), cores)
    }

    /// Builds the Table 4 SpTTM TMU program for a root-node range.
    pub fn build_program(&self, roots: (usize, usize), lanes: usize) -> Program {
        let lanes = lanes.min(RANK);
        let mut bld = ProgramBuilder::new();
        let l0 = bld.layer(LayerMode::Single);
        let itu = bld.dns_fbrt(l0, roots.0 as i64, roots.1 as i64, 1);
        let p0b = bld.mem_stream(itu, self.t.ptrs_r[0].base, 4, StreamTy::Index);
        let p0e = bld.mem_stream(itu, self.t.ptrs_r[0].base + 4, 4, StreamTy::Index);

        let l1 = bld.layer(LayerMode::Single);
        let jtu = bld.rng_fbrt(l1, p0b, p0e, 0, 1);
        let p1b = bld.mem_stream(jtu, self.t.ptrs_r[1].base, 4, StreamTy::Index);
        let p1e = bld.mem_stream(jtu, self.t.ptrs_r[1].base + 4, 4, StreamTy::Index);

        let l2 = bld.layer(LayerMode::Single);
        let ltu = bld.rng_fbrt(l2, p1b, p1e, 0, 1);
        let lidx = bld.mem_stream(ltu, self.t.idxs_r[2].base, 4, StreamTy::Index);
        let lval = bld.mem_stream(ltu, self.t.vals_r.base, 8, StreamTy::Value);
        let l_row = bld.lin_stream(ltu, RANK as i64, 0, lidx);

        let l3 = bld.layer(LayerMode::LockStep);
        let mut bs = Vec::new();
        let mut v_fwd0 = None;
        for lane in 0..lanes as i64 {
            let rtu = bld.idx_fbrt(l3, l_row, RANK as i64, lane, lanes as i64);
            bs.push(bld.mem_stream(rtu, self.b.region.base, 8, StreamTy::Value));
            let vf = bld.fwd_stream(rtu, lval);
            if lane == 0 {
                v_fwd0 = Some(vf);
            }
        }
        let fan1 = self.t.idxs[1].len() as f64 / self.t.idxs[0].len().max(1) as f64;
        let fan2 = self.t.nnz() as f64 / self.t.idxs[1].len().max(1) as f64;
        bld.set_weight(l0, 1.0);
        bld.set_weight(l1, fan1.max(1.0));
        bld.set_weight(l2, (fan1 * fan2).max(1.0));
        bld.set_weight(l3, (fan1 * fan2 * 2.0).max(2.0));
        let b_op = bld.vec_operand(l3, &bs);
        let v_op = bld.scalar_operand(l3, v_fwd0.expect("lane 0 exists"));
        bld.callback(l3, Event::Ite, CB_RI, &[b_op, v_op]);
        bld.callback(l3, Event::End, CB_L_END, &[]);
        bld.callback(l2, Event::End, CB_FIB_END, &[]);
        bld.build().expect("SpTTM program is well-formed")
    }
}

fn emit_baseline<M: Machine + ?Sized>(m: &mut M, ctx: &Ctx, roots: (usize, usize), vl: usize) {
    let (n0, n1) = roots;
    for n in n0..n1 {
        let r0 = m.load(Site(S_ROOT), ctx.ptr0_r.u32_at(n), 4, Deps::NONE);
        let r1 = m.load(Site(S_ROOT), ctx.ptr0_r.u32_at(n + 1), 4, Deps::NONE);
        let (jb, je) = (ctx.ptr0[n] as usize, ctx.ptr0[n + 1] as usize);
        for jn in jb..je {
            let q0 = m.load(Site(S_JPTR), ctx.ptr1_r.u32_at(jn), 4, Deps::on(&[r0, r1]));
            let q1 = m.load(
                Site(S_JPTR),
                ctx.ptr1_r.u32_at(jn + 1),
                4,
                Deps::on(&[r0, r1]),
            );
            let (lb, le) = (ctx.ptr1[jn] as usize, ctx.ptr1[jn + 1] as usize);
            for p in lb..le {
                let bounds = Deps::on(&[q0, q1]);
                let lld = m.load(Site(S_LIDX), ctx.idx2_r.u32_at(p), 4, bounds);
                let vld = m.load(Site(S_LVAL), ctx.vals_r.f64_at(p), 8, bounds);
                let l = ctx.idx2[p] as usize;
                let mut r = 0;
                while r < RANK {
                    let nn = (RANK - r).min(vl);
                    let bl = m.vec_load(
                        Site(S_BROW),
                        ctx.b_r.f64_at(l * RANK + r),
                        (nn * 8) as u32,
                        Deps::from(lld),
                    );
                    m.vec_op((2 * nn) as u32, Deps::on(&[bl, vld]));
                    r += nn;
                    m.branch(Site(S_R_BR), r < RANK, Deps::NONE);
                }
                m.branch(Site(S_L_BR), p + 1 < le, Deps::NONE);
            }
            // Store the fiber's RANK accumulator values.
            let mut r = 0;
            while r < RANK {
                let nn = (RANK - r).min(vl);
                m.store(
                    Site(S_STORE),
                    ctx.z_r.f64_at(jn * RANK + r),
                    (nn * 8) as u32,
                    Deps::NONE,
                );
                r += nn;
            }
            m.branch(Site(S_FIB_BR), jn + 1 < je, Deps::NONE);
        }
    }
}

/// Host callbacks: FMA the marshaled B stripes, store at fiber end.
#[derive(Debug)]
pub struct SpttmHandler {
    z_r: Region,
    next_fiber: usize,
    acc: Vec<f64>,
    rank_step: usize,
    lanes: usize,
    /// Functional output (RANK values per fiber).
    pub z: Vec<f64>,
}

impl SpttmHandler {
    /// Handler for fibers starting at `first_fiber`.
    pub fn new(z_r: Region, first_fiber: usize, lanes: usize) -> Self {
        Self {
            z_r,
            next_fiber: first_fiber,
            acc: vec![0.0; RANK],
            rank_step: 0,
            lanes: lanes.min(RANK),
            z: Vec::new(),
        }
    }
}

impl CallbackHandler for SpttmHandler {
    fn handle(&mut self, entry: &OutQEntry, entry_load: OpId, m: &mut VecMachine) {
        match entry.callback {
            CB_RI => {
                let bs = entry.operands[0].as_f64s();
                let v = entry.operands[1].as_f64();
                for (lane, &bv) in bs.iter().enumerate() {
                    if entry.mask & (1 << lane) != 0 {
                        let r = lane + self.rank_step * self.lanes;
                        self.acc[r] += v * bv;
                    }
                }
                self.rank_step += 1;
                m.vec_op(2 * entry.mask.count_ones(), Deps::from(entry_load));
            }
            CB_L_END => {
                self.rank_step = 0;
            }
            CB_FIB_END => {
                let mut r = 0;
                while r < RANK {
                    let n = (RANK - r).min(8);
                    m.store(
                        Site(S_STORE),
                        self.z_r.f64_at(self.next_fiber * RANK + r),
                        (n * 8) as u32,
                        Deps::NONE,
                    );
                    r += n;
                }
                self.z
                    .extend(std::mem::replace(&mut self.acc, vec![0.0; RANK]));
                self.next_fiber += 1;
            }
            other => panic!("SpTTM: unexpected callback {other}"),
        }
    }
}

impl Workload for Spttm {
    fn name(&self) -> &'static str {
        "SpTTM"
    }

    fn kind(&self) -> KernelKind {
        KernelKind::MemoryIntensive
    }

    fn run_baseline(&self, cfg: SystemConfig) -> RunStats {
        let shards = self.shards(cfg.cores());
        let vl = cfg.core.sve_lanes();
        let ctx = self.ctx();
        let mut sys = System::new(cfg);
        sys.run(
            shards
                .into_iter()
                .map(|range| {
                    let ctx = ctx.clone();
                    move |m: &mut ChannelMachine| emit_baseline(m, &ctx, range, vl)
                })
                .collect(),
        )
    }

    fn run_tmu(&self, cfg: SystemConfig, tmu: TmuConfig) -> TmuRun {
        let shards = self.shards(cfg.cores());
        let mut handles = Vec::new();
        let accels: Vec<Box<dyn Accelerator>> = shards
            .iter()
            .enumerate()
            .map(|(c, &range)| {
                let prog = Arc::new(self.build_program(range, tmu.lanes));
                let first_fiber = self.t.ptrs[0][range.0] as usize;
                let handler = SpttmHandler::new(self.z_r, first_fiber, tmu.lanes);
                let acc = TmuAccelerator::new(
                    tmu,
                    prog,
                    Arc::clone(&self.image),
                    handler,
                    self.outq_r[c].base,
                );
                handles.push(acc.stats_handle());
                Box::new(acc) as Box<dyn Accelerator>
            })
            .collect();
        let mut sys = System::new(cfg);
        let stats = sys.run_accelerated(accels);
        TmuRun {
            stats,
            outq: handles
                .iter()
                .map(|h: &Arc<Mutex<tmu::OutQStats>>| h.lock().expect("stats").clone())
                .collect(),
        }
    }

    fn verify(&self) -> Result<(), String> {
        let mut got = Vec::new();
        for &range in &self.shards(8) {
            let prog = Arc::new(self.build_program(range, 8));
            let first_fiber = self.t.ptrs[0][range.0] as usize;
            let mut handler = SpttmHandler::new(self.z_r, first_fiber, 8);
            let mut vm = VecMachine::new();
            tmu::for_each_entry(&prog, &self.image, |e| {
                handler.handle(e, OpId::NONE, &mut vm);
            });
            got.extend(handler.z);
        }
        check_close("SpTTM", &got, &self.reference, 1e-9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tmu_sim::{CoreConfig, MemSysConfig};
    use tmu_tensor::gen;

    #[test]
    fn verify_against_reference() {
        Spttm::new(&gen::random_tensor(&[32, 16, 24], 900, 51))
            .verify()
            .expect("TMU SpTTM must match reference");
    }

    #[test]
    fn baseline_and_tmu_run() {
        let w = Spttm::new(&gen::random_tensor(&[32, 16, 24], 900, 51));
        let cfg = SystemConfig {
            core: CoreConfig::neoverse_n1_like(),
            mem: MemSysConfig::table5(2),
        };
        assert!(w.run_baseline(cfg).cycles > 0);
        assert!(w.run_tmu(cfg, TmuConfig::paper()).stats.cycles > 0);
    }
}
