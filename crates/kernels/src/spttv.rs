//! Sparse Tensor Times Vector, `Z_ij = Σ_k A_ijk · B_k` (CSF).
//!
//! A three-deep compressed traversal (CSF root → j fibers → k leaves) with
//! an SpMV-style scan-and-lookup at the innermost level. One output value
//! per `(i, j)` fiber. Table 4 row "SpTTV": the k level is lockstep
//! vectorized across lanes.

use std::sync::{Arc, Mutex};

use tmu::{
    CallbackHandler, Event, LayerMode, MemImage, OutQEntry, Program, ProgramBuilder, StreamTy,
    TmuAccelerator, TmuConfig,
};
use tmu_sim::{
    Accelerator, AddressMap, ChannelMachine, Deps, Machine, OpId, Region, RunStats, Site, System,
    SystemConfig, VecMachine,
};
use tmu_tensor::{CooTensor, CsfTensor};

use crate::data::{partition_flat, CsfOnSim, DenseOnSim};
use crate::util::{check_close, fold_deps};
use crate::workload::{KernelKind, TmuRun, Workload};

const S_ROOT: u16 = 220;
const S_JPTR: u16 = 221;
const S_KIDX: u16 = 222;
const S_KVAL: u16 = 223;
const S_GATHER: u16 = 224;
const S_STORE: u16 = 225;
const S_K_BR: u16 = 226;
const S_J_BR: u16 = 227;
const S_I_BR: u16 = 228;

const CB_KI: u32 = 0;
const CB_FIB_END: u32 = 1;

#[derive(Debug, Clone)]
struct Ctx {
    ptr0: Arc<Vec<u32>>,
    ptr1: Arc<Vec<u32>>,
    idx2: Arc<Vec<u32>>,
    ptr0_r: Region,
    ptr1_r: Region,
    idx2_r: Region,
    vals_r: Region,
    b_r: Region,
    z_r: Region,
}

/// An SpTTV workload bound to the simulator.
#[derive(Debug)]
pub struct Spttv {
    t: CsfOnSim,
    b: DenseOnSim,
    z_r: Region,
    outq_r: Vec<Region>,
    image: Arc<MemImage>,
    reference: Vec<f64>,
}

impl Spttv {
    /// Binds order-3 tensor `t` (as CSF) with a deterministic vector.
    pub fn new(tensor: &CooTensor) -> Self {
        assert_eq!(tensor.order(), 3, "SpTTV needs an order-3 tensor");
        let csf = CsfTensor::from_coo(tensor);
        let dim_k = tensor.dims()[2];
        let b_vals: Vec<f64> = (0..dim_k).map(|x| 0.5 + (x % 71) as f64 / 71.0).collect();
        // Reference: one sum per (i, j) fiber, in CSF fiber order.
        let mut reference = Vec::with_capacity(csf.num_nodes(1));
        for jn in 0..csf.num_nodes(1) {
            let (kb, ke) = csf.child_range(1, jn);
            reference.push(
                (kb..ke)
                    .map(|p| csf.vals()[p] * b_vals[csf.idxs(2)[p] as usize])
                    .sum(),
            );
        }
        let mut map = AddressMap::new();
        let mut image = MemImage::new();
        let t = CsfOnSim::bind(&mut map, &mut image, "t", &csf);
        let b = DenseOnSim::bind(&mut map, &mut image, "b", b_vals);
        let z_r = map.alloc_elems("z", csf.num_nodes(1).max(1), 8);
        let outq_r = (0..8)
            .map(|c| map.alloc(&format!("outq{c}"), 1 << 20))
            .collect();
        Self {
            t,
            b,
            z_r,
            outq_r,
            image: Arc::new(image),
            reference,
        }
    }

    /// The reference per-fiber sums.
    pub fn reference(&self) -> &[f64] {
        &self.reference
    }

    /// Shared memory image (for standalone engine experiments).
    pub fn image_handle(&self) -> Arc<MemImage> {
        Arc::clone(&self.image)
    }

    /// outQ base address of a core.
    pub fn outq_base(&self, core: usize) -> u64 {
        self.outq_r[core].base
    }

    /// Number of root (mode-0) fibers in the CSF tensor.
    pub fn roots(&self) -> usize {
        self.t.idxs[0].len()
    }

    /// Functional TMU execution (8 shards, 8 lanes): per-fiber sums in
    /// CSF fiber order, exactly as the callback handler computes them.
    pub fn functional(&self) -> Vec<f64> {
        let mut got = Vec::new();
        for &range in &self.shards(8) {
            let prog = Arc::new(self.build_program(range, 8));
            let first_fiber = self.t.ptrs[0][range.0] as usize;
            let mut handler = SpttvHandler::new(self.z_r, first_fiber);
            let mut vm = VecMachine::new();
            tmu::for_each_entry(&prog, &self.image, |e| {
                handler.handle(e, OpId::NONE, &mut vm);
            });
            got.extend(handler.z);
        }
        got
    }

    fn ctx(&self) -> Ctx {
        Ctx {
            ptr0: Arc::clone(&self.t.ptrs[0]),
            ptr1: Arc::clone(&self.t.ptrs[1]),
            idx2: Arc::clone(&self.t.idxs[2]),
            ptr0_r: self.t.ptrs_r[0],
            ptr1_r: self.t.ptrs_r[1],
            idx2_r: self.t.idxs_r[2],
            vals_r: self.t.vals_r,
            b_r: self.b.region,
            z_r: self.z_r,
        }
    }

    fn shards(&self, cores: usize) -> Vec<(usize, usize)> {
        partition_flat(self.t.idxs[0].len(), cores)
    }

    /// Builds the Table 4 SpTTV TMU program for a root-node range.
    pub fn build_program(&self, roots: (usize, usize), lanes: usize) -> Program {
        let mut bld = ProgramBuilder::new();
        let l0 = bld.layer(LayerMode::Single);
        let itu = bld.dns_fbrt(l0, roots.0 as i64, roots.1 as i64, 1);
        let p0b = bld.mem_stream(itu, self.t.ptrs_r[0].base, 4, StreamTy::Index);
        let p0e = bld.mem_stream(itu, self.t.ptrs_r[0].base + 4, 4, StreamTy::Index);

        let l1 = bld.layer(LayerMode::Single);
        let jtu = bld.rng_fbrt(l1, p0b, p0e, 0, 1);
        let p1b = bld.mem_stream(jtu, self.t.ptrs_r[1].base, 4, StreamTy::Index);
        let p1e = bld.mem_stream(jtu, self.t.ptrs_r[1].base + 4, 4, StreamTy::Index);

        let l2 = bld.layer(LayerMode::LockStep);
        let mut vals = Vec::new();
        let mut bs = Vec::new();
        for lane in 0..lanes as i64 {
            let ktu = bld.rng_fbrt(l2, p1b, p1e, lane, lanes as i64);
            let kidx = bld.mem_stream(ktu, self.t.idxs_r[2].base, 4, StreamTy::Index);
            vals.push(bld.mem_stream(ktu, self.t.vals_r.base, 8, StreamTy::Value));
            bs.push(bld.mem_stream_indexed(ktu, self.b.region.base, 8, StreamTy::Value, kidx));
        }
        let fanout1 = self.t.idxs[1].len() as f64 / self.t.idxs[0].len().max(1) as f64;
        let fanout2 = self.t.nnz() as f64 / self.t.idxs[1].len().max(1) as f64;
        bld.set_weight(l0, 1.0);
        bld.set_weight(l1, fanout1.max(1.0));
        bld.set_weight(l2, (fanout1 * fanout2).max(2.0));
        let v_op = bld.vec_operand(l2, &vals);
        let b_op = bld.vec_operand(l2, &bs);
        bld.callback(l2, Event::Ite, CB_KI, &[v_op, b_op]);
        bld.callback(l2, Event::End, CB_FIB_END, &[]);
        bld.build().expect("SpTTV program is well-formed")
    }
}

fn emit_baseline<M: Machine + ?Sized>(m: &mut M, ctx: &Ctx, roots: (usize, usize), vl: usize) {
    let (n0, n1) = roots;
    for n in n0..n1 {
        let r0 = m.load(Site(S_ROOT), ctx.ptr0_r.u32_at(n), 4, Deps::NONE);
        let r1 = m.load(Site(S_ROOT), ctx.ptr0_r.u32_at(n + 1), 4, Deps::NONE);
        let (jb, je) = (ctx.ptr0[n] as usize, ctx.ptr0[n + 1] as usize);
        for jn in jb..je {
            let q0 = m.load(Site(S_JPTR), ctx.ptr1_r.u32_at(jn), 4, Deps::on(&[r0, r1]));
            let q1 = m.load(
                Site(S_JPTR),
                ctx.ptr1_r.u32_at(jn + 1),
                4,
                Deps::on(&[r0, r1]),
            );
            let (kb, ke) = (ctx.ptr1[jn] as usize, ctx.ptr1[jn + 1] as usize);
            let mut sum = OpId::NONE;
            let mut p = kb;
            while p < ke {
                let nn = (ke - p).min(vl);
                let bounds = Deps::on(&[q0, q1]);
                let kv = m.vec_load(Site(S_KIDX), ctx.idx2_r.u32_at(p), (nn * 4) as u32, bounds);
                let vv = m.vec_load(Site(S_KVAL), ctx.vals_r.f64_at(p), (nn * 8) as u32, bounds);
                let mut prods = Vec::with_capacity(nn + 2);
                for e in 0..nn {
                    let k = ctx.idx2[p + e] as usize;
                    prods.push(m.load(Site(S_GATHER), ctx.b_r.f64_at(k), 8, Deps::from(kv)));
                }
                prods.push(vv);
                if sum.is_some() {
                    prods.push(sum);
                }
                let deps = fold_deps(m, &prods);
                sum = m.vec_op((2 * nn) as u32, deps);
                p += nn;
                m.branch(Site(S_K_BR), p < ke, bounds);
            }
            m.store(Site(S_STORE), ctx.z_r.f64_at(jn), 8, Deps::from(sum));
            m.branch(Site(S_J_BR), jn + 1 < je, Deps::NONE);
        }
        m.branch(Site(S_I_BR), n + 1 < n1, Deps::NONE);
    }
}

/// Host callbacks: accumulate per fiber, store at fiber end.
#[derive(Debug)]
pub struct SpttvHandler {
    z_r: Region,
    next_fiber: usize,
    sum: f64,
    sum_dep: OpId,
    /// Functional per-fiber sums.
    pub z: Vec<f64>,
}

impl SpttvHandler {
    /// Handler for fibers starting at `first_fiber`.
    pub fn new(z_r: Region, first_fiber: usize) -> Self {
        Self {
            z_r,
            next_fiber: first_fiber,
            sum: 0.0,
            sum_dep: OpId::NONE,
            z: Vec::new(),
        }
    }
}

impl CallbackHandler for SpttvHandler {
    fn handle(&mut self, entry: &OutQEntry, entry_load: OpId, m: &mut VecMachine) {
        match entry.callback {
            CB_KI => {
                let vals = entry.operands[0].as_f64s();
                let bs = entry.operands[1].as_f64s();
                self.sum += vals.iter().zip(&bs).map(|(a, b)| a * b).sum::<f64>();
                let active = entry.mask.count_ones();
                let mul = m.vec_op(active, Deps::from(entry_load));
                self.sum_dep = m.vec_op(active, Deps::on(&[mul, self.sum_dep]));
            }
            CB_FIB_END => {
                self.z.push(self.sum);
                self.sum = 0.0;
                m.store(
                    Site(S_STORE),
                    self.z_r.f64_at(self.next_fiber),
                    8,
                    Deps::from(self.sum_dep),
                );
                self.next_fiber += 1;
                self.sum_dep = OpId::NONE;
            }
            other => panic!("SpTTV: unexpected callback {other}"),
        }
    }
}

impl Workload for Spttv {
    fn name(&self) -> &'static str {
        "SpTTV"
    }

    fn kind(&self) -> KernelKind {
        KernelKind::MemoryIntensive
    }

    fn run_baseline(&self, cfg: SystemConfig) -> RunStats {
        let shards = self.shards(cfg.cores());
        let vl = cfg.core.sve_lanes();
        let ctx = self.ctx();
        let mut sys = System::new(cfg);
        sys.run(
            shards
                .into_iter()
                .map(|range| {
                    let ctx = ctx.clone();
                    move |m: &mut ChannelMachine| emit_baseline(m, &ctx, range, vl)
                })
                .collect(),
        )
    }

    fn run_tmu(&self, cfg: SystemConfig, tmu: TmuConfig) -> TmuRun {
        let shards = self.shards(cfg.cores());
        let mut handles = Vec::new();
        let accels: Vec<Box<dyn Accelerator>> = shards
            .iter()
            .enumerate()
            .map(|(c, &range)| {
                let prog = Arc::new(self.build_program(range, tmu.lanes));
                let first_fiber = self.t.ptrs[0][range.0] as usize;
                let handler = SpttvHandler::new(self.z_r, first_fiber);
                let acc = TmuAccelerator::new(
                    tmu,
                    prog,
                    Arc::clone(&self.image),
                    handler,
                    self.outq_r[c].base,
                );
                handles.push(acc.stats_handle());
                Box::new(acc) as Box<dyn Accelerator>
            })
            .collect();
        let mut sys = System::new(cfg);
        let stats = sys.run_accelerated(accels);
        TmuRun {
            stats,
            outq: handles
                .iter()
                .map(|h: &Arc<Mutex<tmu::OutQStats>>| h.lock().expect("stats").clone())
                .collect(),
        }
    }

    fn verify(&self) -> Result<(), String> {
        check_close("SpTTV", &self.functional(), &self.reference, 1e-9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tmu_sim::{CoreConfig, MemSysConfig};
    use tmu_tensor::gen;

    #[test]
    fn verify_against_reference() {
        Spttv::new(&gen::random_tensor(&[48, 24, 32], 1200, 41))
            .verify()
            .expect("TMU SpTTV must match reference");
    }

    #[test]
    fn baseline_and_tmu_run() {
        let w = Spttv::new(&gen::random_tensor(&[48, 24, 32], 1200, 41));
        let cfg = SystemConfig {
            core: CoreConfig::neoverse_n1_like(),
            mem: MemSysConfig::table5(2),
        };
        let base = w.run_baseline(cfg);
        let run = w.run_tmu(cfg, TmuConfig::paper());
        assert!(base.cycles > 0 && run.stats.cycles > 0);
        assert!(run.outq.iter().map(|o| o.entries).sum::<u64>() as usize >= w.reference.len());
    }
}
