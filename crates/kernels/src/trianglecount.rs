//! Triangle counting via masked sparse multiplication on the lower
//! triangle (the fused GraphBLAS formulation the paper evaluates).
//!
//! `count = Σ_i Σ_{j ∈ L[i]} |L[i] ∩ L[j]|` where `L` is the strictly
//! lower triangle of the symmetrized adjacency matrix. The baseline
//! intersects `L[i]` and `L[j]` with a two-pointer merge whose three-way
//! comparisons are maximally data-dependent — the frontend-stall-heavy
//! profile of §3. The TMU offloads the whole intersection: a conjunctive
//! merge layer emits only the matches, so the core merely counts (§7.1:
//! "the TMU … drastically reduce[s] the amount of compute to perform by
//! the core related to merging operations").
//!
//! TriangleCount computes in integer arithmetic, so it is excluded from
//! the Figure 12 rooflines, as in the paper.

use std::sync::{Arc, Mutex};

use tmu::{
    CallbackHandler, Event, LayerMode, MemImage, OutQEntry, Program, ProgramBuilder, StreamTy,
    TmuAccelerator, TmuConfig,
};
use tmu_sim::{
    Accelerator, AddressMap, ChannelMachine, Deps, Machine, OpId, Region, RunStats, Site, System,
    SystemConfig, VecMachine,
};
use tmu_tensor::{CooMatrix, CsrMatrix};

use crate::data::{partition_rows, CsrOnSim};
use crate::workload::{KernelKind, TmuRun, Workload};

const S_PTR: u16 = 180;
const S_JIDX: u16 = 181;
const S_JPTR: u16 = 182;
const S_AHEAD: u16 = 183;
const S_BHEAD: u16 = 184;
const S_CMP: u16 = 185;
const S_K_BR: u16 = 186;
const S_I_BR: u16 = 187;

const CB_MATCH: u32 = 0;

#[derive(Debug, Clone)]
struct Ctx {
    ptrs: Arc<Vec<u32>>,
    idxs: Arc<Vec<u32>>,
    ptrs_r: Region,
    idxs_r: Region,
}

/// A triangle-counting workload bound to the simulator.
#[derive(Debug)]
pub struct TriangleCount {
    l: CsrOnSim,
    outq_r: Vec<Region>,
    image: Arc<MemImage>,
    reference: u64,
}

impl TriangleCount {
    /// Binds graph `adj` (symmetrized, lower triangle extracted).
    pub fn new(adj: &CsrMatrix) -> Self {
        // Symmetrize the structure, then take the strict lower triangle.
        let mut triplets = Vec::new();
        for i in 0..adj.rows() {
            for (j, _) in adj.row(i) {
                let (a, b) = (i as u32, j);
                if a != b {
                    triplets.push((a.max(b), a.min(b), 1.0));
                }
            }
        }
        let l_mat = CsrMatrix::from_coo(
            &CooMatrix::from_triplets(adj.rows(), adj.rows(), triplets).expect("in range"),
        );
        let reference = reference(&l_mat);
        let mut map = AddressMap::new();
        let mut image = MemImage::new();
        let l = CsrOnSim::bind(&mut map, &mut image, "L", &l_mat);
        let outq_r = (0..8)
            .map(|c| map.alloc(&format!("outq{c}"), 1 << 20))
            .collect();
        Self {
            l,
            outq_r,
            image: Arc::new(image),
            reference,
        }
    }

    /// The reference triangle count.
    pub fn reference(&self) -> u64 {
        self.reference
    }

    fn ctx(&self) -> Ctx {
        Ctx {
            ptrs: Arc::clone(&self.l.ptrs),
            idxs: Arc::clone(&self.l.idxs),
            ptrs_r: self.l.ptrs_r,
            idxs_r: self.l.idxs_r,
        }
    }

    /// Builds the Table 4 TriangleCount TMU program for a row range.
    pub fn build_program(&self, rows: (usize, usize)) -> Program {
        let mut b = ProgramBuilder::new();
        let l0 = b.layer(LayerMode::Single);
        let itu = b.dns_fbrt(l0, rows.0 as i64, rows.1 as i64, 1);
        let lp_b = b.mem_stream(itu, self.l.ptrs_r.base, 4, StreamTy::Index);
        let lp_e = b.mem_stream(itu, self.l.ptrs_r.base + 4, 4, StreamTy::Index);

        let l1 = b.layer(LayerMode::Single);
        let jtu = b.rng_fbrt(l1, lp_b, lp_e, 0, 1);
        let j = b.mem_stream(jtu, self.l.idxs_r.base, 4, StreamTy::Index);
        let jp_b = b.mem_stream_indexed(jtu, self.l.ptrs_r.base, 4, StreamTy::Index, j);
        let jp_e = b.mem_stream_indexed(jtu, self.l.ptrs_r.base + 4, 4, StreamTy::Index, j);
        // fwd: carry L[i]'s bounds rightward (the Table 4 `fwd` entry).
        let ip_b = b.fwd_stream(jtu, lp_b);
        let ip_e = b.fwd_stream(jtu, lp_e);

        let l2 = b.layer(LayerMode::ConjMrg);
        let a_tu = b.rng_fbrt(l2, ip_b, ip_e, 0, 1);
        let ka = b.mem_stream(a_tu, self.l.idxs_r.base, 4, StreamTy::Index);
        b.set_key(a_tu, ka);
        let b_tu = b.rng_fbrt(l2, jp_b, jp_e, 0, 1);
        let kb = b.mem_stream(b_tu, self.l.idxs_r.base, 4, StreamTy::Index);
        b.set_key(b_tu, kb);

        let avg = self.l.nnz() as f64 / self.l.rows.max(1) as f64;
        b.set_weight(l0, 1.0);
        b.set_weight(l1, avg.max(1.0));
        b.set_weight(l2, (avg * avg).max(2.0));
        let keys = b.vec_operand(l2, &[ka, kb]);
        b.callback(l2, Event::Ite, CB_MATCH, &[keys]);
        b.build().expect("TriangleCount program is well-formed")
    }
}

/// Two-pointer intersection baseline for a row shard.
fn emit_baseline<M: Machine + ?Sized>(m: &mut M, ctx: &Ctx, rows: (usize, usize)) {
    let (r0, r1) = rows;
    for i in r0..r1 {
        let ip0 = m.load(Site(S_PTR), ctx.ptrs_r.u32_at(i), 4, Deps::NONE);
        let ip1 = m.load(Site(S_PTR), ctx.ptrs_r.u32_at(i + 1), 4, Deps::NONE);
        let (ibeg, iend) = (ctx.ptrs[i] as usize, ctx.ptrs[i + 1] as usize);
        for p in ibeg..iend {
            let jld = m.load(Site(S_JIDX), ctx.idxs_r.u32_at(p), 4, Deps::on(&[ip0, ip1]));
            let j = ctx.idxs[p] as usize;
            let jp0 = m.load(Site(S_JPTR), ctx.ptrs_r.u32_at(j), 4, Deps::from(jld));
            let jp1 = m.load(Site(S_JPTR), ctx.ptrs_r.u32_at(j + 1), 4, Deps::from(jld));
            let (mut a, enda) = (ibeg, iend);
            let (mut bq, endb) = (ctx.ptrs[j] as usize, ctx.ptrs[j + 1] as usize);
            // Two-pointer merge: each step loads both heads and takes two
            // data-dependent branches.
            while a < enda && bq < endb {
                let ha = m.load(Site(S_AHEAD), ctx.idxs_r.u32_at(a), 4, Deps::NONE);
                let hb = m.load(
                    Site(S_BHEAD),
                    ctx.idxs_r.u32_at(bq),
                    4,
                    Deps::on(&[jp0, jp1]),
                );
                let ka = ctx.idxs[a];
                let kb = ctx.idxs[bq];
                m.branch(Site(S_CMP), ka < kb, Deps::on(&[ha, hb]));
                m.branch(Site(S_CMP), ka > kb, Deps::on(&[ha, hb]));
                if ka == kb {
                    m.int_op(Deps::on(&[ha, hb])); // count++
                    a += 1;
                    bq += 1;
                } else if ka < kb {
                    a += 1;
                } else {
                    bq += 1;
                }
            }
            m.branch(Site(S_K_BR), p + 1 < iend, Deps::NONE);
        }
        m.branch(Site(S_I_BR), i + 1 < r1, Deps::NONE);
    }
}

/// Match callback: one counter increment per emitted intersection.
#[derive(Debug, Default)]
pub struct TcHandler {
    /// Triangles counted.
    pub count: u64,
}

impl CallbackHandler for TcHandler {
    fn handle(&mut self, entry: &OutQEntry, entry_load: OpId, m: &mut VecMachine) {
        assert_eq!(entry.callback, CB_MATCH);
        self.count += 1;
        m.int_op(Deps::from(entry_load));
    }
}

fn reference(l: &CsrMatrix) -> u64 {
    let mut count = 0u64;
    for i in 0..l.rows() {
        let row_i: Vec<u32> = l.row(i).map(|(c, _)| c).collect();
        for &j in &row_i {
            let row_j: Vec<u32> = l.row(j as usize).map(|(c, _)| c).collect();
            let (mut a, mut b) = (0usize, 0usize);
            while a < row_i.len() && b < row_j.len() {
                match row_i[a].cmp(&row_j[b]) {
                    std::cmp::Ordering::Equal => {
                        count += 1;
                        a += 1;
                        b += 1;
                    }
                    std::cmp::Ordering::Less => a += 1,
                    std::cmp::Ordering::Greater => b += 1,
                }
            }
        }
    }
    count
}

impl Workload for TriangleCount {
    fn name(&self) -> &'static str {
        "TC"
    }

    fn kind(&self) -> KernelKind {
        KernelKind::MergeIntensive
    }

    fn run_baseline(&self, cfg: SystemConfig) -> RunStats {
        let shards = partition_rows(&self.l.ptrs, cfg.cores());
        let ctx = self.ctx();
        let mut sys = System::new(cfg);
        sys.run(
            shards
                .into_iter()
                .map(|range| {
                    let ctx = ctx.clone();
                    move |m: &mut ChannelMachine| emit_baseline(m, &ctx, range)
                })
                .collect(),
        )
    }

    fn run_tmu(&self, cfg: SystemConfig, tmu: TmuConfig) -> TmuRun {
        let shards = partition_rows(&self.l.ptrs, cfg.cores());
        let mut handles = Vec::new();
        let accels: Vec<Box<dyn Accelerator>> = shards
            .iter()
            .enumerate()
            .map(|(c, &range)| {
                let prog = Arc::new(self.build_program(range));
                let acc = TmuAccelerator::new(
                    tmu,
                    prog,
                    Arc::clone(&self.image),
                    TcHandler::default(),
                    self.outq_r[c].base,
                );
                handles.push(acc.stats_handle());
                Box::new(acc) as Box<dyn Accelerator>
            })
            .collect();
        let mut sys = System::new(cfg);
        let stats = sys.run_accelerated(accels);
        TmuRun {
            stats,
            outq: handles
                .iter()
                .map(|h: &Arc<Mutex<tmu::OutQStats>>| h.lock().expect("stats").clone())
                .collect(),
        }
    }

    fn verify(&self) -> Result<(), String> {
        let mut count = 0u64;
        for &range in &partition_rows(&self.l.ptrs, 8) {
            let prog = Arc::new(self.build_program(range));
            let mut handler = TcHandler::default();
            let mut vm = VecMachine::new();
            tmu::for_each_entry(&prog, &self.image, |e| {
                handler.handle(e, OpId::NONE, &mut vm);
            });
            count += handler.count;
        }
        if count == self.reference {
            Ok(())
        } else {
            Err(format!(
                "TriangleCount: got {count}, want {}",
                self.reference
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tmu_sim::{CoreConfig, MemSysConfig};
    use tmu_tensor::gen;

    fn small_cfg(cores: usize) -> SystemConfig {
        SystemConfig {
            core: CoreConfig::neoverse_n1_like(),
            mem: MemSysConfig::table5(cores),
        }
    }

    #[test]
    fn known_small_graph() {
        // A 4-clique has C(4,3) = 4 triangles.
        let mut triplets = Vec::new();
        for i in 0..4u32 {
            for j in 0..4u32 {
                if i != j {
                    triplets.push((i, j, 1.0));
                }
            }
        }
        let adj = CsrMatrix::from_coo(&CooMatrix::from_triplets(4, 4, triplets).expect("in range"));
        let w = TriangleCount::new(&adj);
        assert_eq!(w.reference(), 4);
        w.verify().expect("clique verifies");
    }

    #[test]
    fn verify_on_powerlaw_graph() {
        TriangleCount::new(&gen::rmat(9, 4096, 13))
            .verify()
            .expect("TMU TC must match reference");
    }

    #[test]
    fn baseline_is_branch_dominated() {
        let w = TriangleCount::new(&gen::rmat(9, 4096, 13));
        let stats = w.run_baseline(small_cfg(2));
        let t = stats.total();
        assert!(
            t.branches * 5 > t.committed * 2,
            "TC baseline must be branch-dominated: {} of {}",
            t.branches,
            t.committed
        );
    }

    #[test]
    fn tmu_offloads_merging() {
        let w = TriangleCount::new(&gen::rmat(9, 4096, 13));
        let base = w.run_baseline(small_cfg(2));
        let run = w.run_tmu(small_cfg(2), TmuConfig::paper());
        // The core's committed op count must collapse: it only counts.
        assert!(
            run.stats.total().committed * 3 < base.total().committed,
            "TMU core work {} vs baseline {}",
            run.stats.total().committed,
            base.total().committed
        );
    }
}
