//! Shared helpers for kernel implementations.

use tmu_sim::{Deps, Machine, OpId};

/// Folds an arbitrary number of producer ops into at most three
/// dependencies, inserting pairwise combine ops where needed.
///
/// Vector gathers are modeled as per-element loads; a consumer of the
/// gathered register depends on all of them. Real SVE gathers crack into
/// per-element µops plus merge µops — the combine ops inserted here model
/// that merge cost.
pub fn fold_deps<M: Machine + ?Sized>(m: &mut M, ids: &[OpId]) -> Deps {
    if ids.len() <= 3 {
        return Deps::on(ids);
    }
    let mut level: Vec<OpId> = ids.to_vec();
    while level.len() > 3 {
        let mut next = Vec::with_capacity(level.len().div_ceil(2));
        for pair in level.chunks(2) {
            if pair.len() == 2 {
                next.push(m.int_op(Deps::on(pair)));
            } else {
                next.push(pair[0]);
            }
        }
        level = next;
    }
    Deps::on(&level)
}

/// Maximum relative error between two result vectors.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn max_rel_err(got: &[f64], want: &[f64]) -> f64 {
    assert_eq!(got.len(), want.len(), "result length mismatch");
    got.iter()
        .zip(want)
        .map(|(g, w)| {
            let scale = w.abs().max(1e-30);
            (g - w).abs() / scale
        })
        .fold(0.0, f64::max)
}

/// Verifies two result vectors agree to `tol` relative error.
///
/// # Errors
///
/// Returns a description of the first mismatch.
pub fn check_close(what: &str, got: &[f64], want: &[f64], tol: f64) -> Result<(), String> {
    if got.len() != want.len() {
        return Err(format!(
            "{what}: length mismatch ({} vs {})",
            got.len(),
            want.len()
        ));
    }
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        let scale = w.abs().max(1e-30);
        if (g - w).abs() / scale > tol {
            return Err(format!("{what}: mismatch at {i}: got {g}, want {w}"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use tmu_sim::{CountingMachine, VecMachine};

    #[test]
    fn fold_deps_small_is_direct() {
        let mut m = CountingMachine::new();
        let a = m.int_op(Deps::NONE);
        let b = m.int_op(Deps::NONE);
        let before = m.ops;
        let d = fold_deps(&mut m, &[a, b]);
        assert_eq!(m.ops, before, "no combine ops for ≤3 producers");
        assert_eq!(d.iter().count(), 2);
    }

    #[test]
    fn fold_deps_large_builds_tree() {
        let mut m = VecMachine::new();
        let ids: Vec<OpId> = (0..8).map(|_| m.int_op(Deps::NONE)).collect();
        let before = m.ops.len();
        let d = fold_deps(&mut m, &ids);
        // 8 → 4 (4 combines) → 2 (2 combines): exactly 6 extra ops.
        assert_eq!(m.ops.len() - before, 6);
        assert!(d.iter().count() <= 3);
    }

    #[test]
    fn check_close_detects_mismatch() {
        assert!(check_close("x", &[1.0], &[1.0 + 1e-12], 1e-9).is_ok());
        assert!(check_close("x", &[1.0], &[2.0], 1e-9).is_err());
        assert!(check_close("x", &[1.0, 2.0], &[1.0], 1e-9).is_err());
    }

    #[test]
    fn max_rel_err_is_relative() {
        assert!(max_rel_err(&[1000.0], &[1000.1]) < 1e-3);
        assert!(max_rel_err(&[0.0], &[0.0]) == 0.0);
    }
}
