//! The [`Workload`] abstraction used by the benchmark harness.
//!
//! Every evaluated kernel packages its input data, its vectorized software
//! baseline (the TACO-style implementations of §6), and its TMU mapping
//! (Table 4) behind this trait so the figure harnesses can sweep
//! kernels × inputs × configurations uniformly.

use tmu::{OutQStats, TmuConfig};
use tmu_sim::{RunStats, SystemConfig};

/// The paper's workload categories (§7.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum KernelKind {
    /// Traversal-dominated (SpMV, PR, MTTKRP, CP-ALS).
    MemoryIntensive,
    /// Computation-dominated (SpMSpM).
    ComputeIntensive,
    /// Merging-dominated (SpKAdd, TC, SpTC).
    MergeIntensive,
}

/// Result of a TMU-accelerated run.
#[derive(Debug, Clone)]
pub struct TmuRun {
    /// System-level statistics.
    pub stats: RunStats,
    /// Per-core outQ statistics (Figure 13).
    pub outq: Vec<OutQStats>,
}

impl TmuRun {
    /// Mean read-to-write ratio across cores with activity.
    pub fn read_to_write_ratio(&self) -> f64 {
        let ratios: Vec<f64> = self
            .outq
            .iter()
            .map(OutQStats::read_to_write_ratio)
            .filter(|r| *r > 0.0)
            .collect();
        if ratios.is_empty() {
            0.0
        } else {
            ratios.iter().sum::<f64>() / ratios.len() as f64
        }
    }
}

/// A benchmarkable kernel instance (kernel + bound input).
pub trait Workload: Send + Sync {
    /// Kernel name as used in the paper's figures.
    fn name(&self) -> &'static str;

    /// Workload category.
    fn kind(&self) -> KernelKind;

    /// Runs the vectorized software baseline on a fresh system.
    fn run_baseline(&self, sys: SystemConfig) -> RunStats;

    /// Runs the TMU-accelerated version on a fresh system.
    fn run_tmu(&self, sys: SystemConfig, tmu: TmuConfig) -> TmuRun;

    /// Runs the baseline with the IMP prefetcher attached (§7.3);
    /// `None` when the kernel is not part of the Figure 15 comparison.
    fn run_baseline_imp(&self, _sys: SystemConfig) -> Option<RunStats> {
        None
    }

    /// Checks the TMU functional results against the reference
    /// implementation.
    ///
    /// # Errors
    ///
    /// Returns a description of the first mismatch.
    fn verify(&self) -> Result<(), String>;
}
