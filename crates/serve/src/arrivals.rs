//! Synthetic open-loop arrival traces.
//!
//! "Open loop" means arrival times are fixed by the trace, independent of
//! how fast the service drains — exactly how a load generator stresses a
//! serving system, and the regime where queueing delay actually shows up.
//! The generator is a small self-contained SplitMix64 stream, so a trace
//! is a pure function of its [`TraceConfig`]: same config, same jobs,
//! regardless of host, thread count, or `TMU_JOBS`.

use crate::job::{JobKind, JobSpec, KernelKind};

/// Parameters of a synthetic trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct TraceConfig {
    /// Number of tenants (ids `0..tenants`).
    pub tenants: u32,
    /// Total jobs across all tenants.
    pub jobs: u32,
    /// Mean inter-arrival gap in cycles (gaps are uniform in
    /// `0..2*mean_gap`, so this is the mean of the offered load).
    pub mean_gap: u64,
    /// RNG seed; every derived choice flows from it.
    pub seed: u64,
    /// Include einsum-expression jobs in the mix (alongside kernels).
    pub with_exprs: bool,
    /// Deadline slack in cycles: every job's deadline is its arrival
    /// plus this. 0 generates no deadlines (the default — traces stay
    /// identical to the pre-deadline generator).
    pub deadline_slack: u64,
}

impl Default for TraceConfig {
    fn default() -> Self {
        Self {
            tenants: 2,
            jobs: 16,
            mean_gap: 30_000,
            seed: 0xC0FFEE,
            with_exprs: true,
            deadline_slack: 0,
        }
    }
}

/// Deterministic SplitMix64, private to the trace generator so traces
/// never depend on an external RNG's evolution.
struct Mix(u64);

impl Mix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            self.next() % bound
        }
    }
}

/// The scheduling weight of a tenant: tenant 0 is the heavy tenant
/// (weight 4), everyone else weight 1 — a mix that makes the two
/// policies visibly diverge.
pub fn tenant_weight(tenant: u32) -> u32 {
    if tenant == 0 {
        4
    } else {
        1
    }
}

/// Generates the arrival trace for `cfg`: jobs sorted by arrival cycle,
/// ids dense in `0..cfg.jobs`.
pub fn synthesize(cfg: &TraceConfig) -> Vec<JobSpec> {
    let tenants = cfg.tenants.max(1);
    let mut rng = Mix(cfg.seed ^ 0x5E41_1E5E_0000_0001);
    // A small set of shapes (not one per job) so the build cache batches.
    let shapes = shape_pool(cfg.with_exprs);
    let mut jobs = Vec::with_capacity(cfg.jobs as usize);
    let mut clock = 0u64;
    for id in 0..cfg.jobs {
        clock += rng.below(2 * cfg.mean_gap.max(1));
        let tenant = (rng.next() % u64::from(tenants)) as u32;
        let kind = shapes[rng.below(shapes.len() as u64) as usize].clone();
        jobs.push(JobSpec {
            id,
            tenant,
            arrival: clock,
            weight: tenant_weight(tenant),
            deadline: (cfg.deadline_slack > 0).then(|| clock + cfg.deadline_slack),
            kind,
        });
    }
    jobs
}

fn shape_pool(with_exprs: bool) -> Vec<JobKind> {
    let mut shapes: Vec<JobKind> = [
        (KernelKind::Spmv, 96, 4),
        (KernelKind::Spmspv, 96, 4),
        (KernelKind::Spmspm, 48, 3),
        (KernelKind::Spkadd, 64, 3),
        (KernelKind::Spttv, 12, 4),
        (KernelKind::Spmv, 64, 6),
    ]
    .into_iter()
    .map(|(kind, rows, nnz_per_row)| JobKind::Kernel {
        kind,
        rows,
        nnz_per_row,
        seed: 21,
    })
    .collect();
    if with_exprs {
        shapes.push(JobKind::Expr {
            src: "y(i) = A(i,j:csr) * x(j)".into(),
            rows: 48,
            nnz_per_row: 3,
            seed: 22,
        });
        shapes.push(JobKind::Expr {
            src: "Z(i,j) = A(i,j:dcsr) + B(i,j:dcsr)".into(),
            rows: 48,
            nnz_per_row: 3,
            seed: 22,
        });
    }
    shapes
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traces_are_deterministic_and_sorted() {
        let cfg = TraceConfig::default();
        let a = synthesize(&cfg);
        let b = synthesize(&cfg);
        assert_eq!(a, b, "same config must yield the same trace");
        assert_eq!(a.len(), cfg.jobs as usize);
        assert!(a.windows(2).all(|w| w[0].arrival <= w[1].arrival));
        assert!(a.iter().all(|j| j.tenant < cfg.tenants));
        let distinct: std::collections::HashSet<_> = a.iter().map(|j| &j.kind).collect();
        assert!(
            distinct.len() < a.len(),
            "the shape pool must be smaller than the job count so batching pays"
        );

        let other = synthesize(&TraceConfig { seed: 999, ..cfg });
        assert_ne!(a, other, "seed must matter");

        // Deadlines: off by default, arrival + slack when requested.
        assert!(a.iter().all(|j| j.deadline.is_none()));
        let slacked = synthesize(&TraceConfig {
            deadline_slack: 100_000,
            ..cfg
        });
        assert!(slacked
            .iter()
            .all(|j| j.deadline == Some(j.arrival + 100_000)));
    }
}
