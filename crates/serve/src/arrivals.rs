//! Synthetic open-loop arrival traces.
//!
//! "Open loop" means arrival times are fixed by the trace, independent of
//! how fast the service drains — exactly how a load generator stresses a
//! serving system, and the regime where queueing delay actually shows up.
//! The generator is a small self-contained SplitMix64 stream, so a trace
//! is a pure function of its [`TraceConfig`]: same config, same jobs,
//! regardless of host, thread count, or `TMU_JOBS`.

use tmu_apps::AppKind;

use crate::job::{JobKind, JobSpec, KernelKind};

/// The inter-arrival gap distribution of a synthetic trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum ArrivalKind {
    /// Gaps uniform in `0..2*mean_gap` (the historical generator).
    Uniform,
    /// Exponential gaps with mean `mean_gap` — a Poisson arrival
    /// process, the classic open-loop load model. Sampled by inverse
    /// transform with a self-contained `ln`, so traces stay a pure
    /// function of the config on every host.
    Poisson,
}

/// Parameters of a synthetic trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct TraceConfig {
    /// Number of tenants (ids `0..tenants`).
    pub tenants: u32,
    /// Total jobs across all tenants.
    pub jobs: u32,
    /// Mean inter-arrival gap in cycles (the mean of the offered load
    /// under either arrival distribution).
    pub mean_gap: u64,
    /// RNG seed; every derived choice flows from it.
    pub seed: u64,
    /// Include einsum-expression jobs in the mix (alongside kernels).
    pub with_exprs: bool,
    /// Include application-pipeline jobs (GNN / CG / PageRank) in the
    /// mix. Off by default so pre-app traces stay byte-identical.
    pub with_apps: bool,
    /// Inter-arrival distribution ([`ArrivalKind::Uniform`] by default —
    /// the pre-Poisson traces stay byte-identical).
    pub arrivals: ArrivalKind,
    /// Deadline slack in cycles: every job's deadline is its arrival
    /// plus this. 0 generates no deadlines (the default — traces stay
    /// identical to the pre-deadline generator).
    pub deadline_slack: u64,
}

impl Default for TraceConfig {
    fn default() -> Self {
        Self {
            tenants: 2,
            jobs: 16,
            mean_gap: 30_000,
            seed: 0xC0FFEE,
            with_exprs: true,
            with_apps: false,
            arrivals: ArrivalKind::Uniform,
            deadline_slack: 0,
        }
    }
}

/// Deterministic SplitMix64, private to the trace generator so traces
/// never depend on an external RNG's evolution.
struct Mix(u64);

impl Mix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            self.next() % bound
        }
    }

    /// A uniform draw in `(0, 1]` — the open end at 0 keeps the
    /// exponential sampler's `ln` argument strictly positive.
    fn unit(&mut self) -> f64 {
        ((self.next() >> 11) + 1) as f64 / (1u64 << 53) as f64
    }

    /// One exponential gap with the given mean, by inverse transform:
    /// `gap = mean * (-ln u)`.
    fn exp_gap(&mut self, mean: u64) -> u64 {
        (mean as f64 * -ln_unit(self.unit())).round() as u64
    }
}

/// `ln x` for `x` in `(0, 1]`, self-contained so traces never depend on
/// the host libm. Decomposes `x = m * 2^e` with `m` in `[1, 2)` from the
/// IEEE-754 bits, then sums the atanh series for `ln m` — with
/// `s = (m-1)/(m+1)` at most 1/3, twelve odd terms are below one ulp.
fn ln_unit(x: f64) -> f64 {
    debug_assert!(x > 0.0 && x <= 1.0);
    const LN_2: f64 = core::f64::consts::LN_2;
    let bits = x.to_bits();
    let e = ((bits >> 52) & 0x7FF) as i64 - 1023;
    let m = f64::from_bits((bits & 0x000F_FFFF_FFFF_FFFF) | (1023u64 << 52));
    let s = (m - 1.0) / (m + 1.0);
    let s2 = s * s;
    let mut term = s;
    let mut sum = 0.0;
    for k in 0..12u32 {
        sum += term / f64::from(2 * k + 1);
        term *= s2;
    }
    e as f64 * LN_2 + 2.0 * sum
}

/// The scheduling weight of a tenant: tenant 0 is the heavy tenant
/// (weight 4), everyone else weight 1 — a mix that makes the two
/// policies visibly diverge.
pub fn tenant_weight(tenant: u32) -> u32 {
    if tenant == 0 {
        4
    } else {
        1
    }
}

/// Generates the arrival trace for `cfg`: jobs sorted by arrival cycle,
/// ids dense in `0..cfg.jobs`.
pub fn synthesize(cfg: &TraceConfig) -> Vec<JobSpec> {
    let tenants = cfg.tenants.max(1);
    let mut rng = Mix(cfg.seed ^ 0x5E41_1E5E_0000_0001);
    // A small set of shapes (not one per job) so the build cache batches.
    let shapes = shape_pool(cfg.with_exprs, cfg.with_apps);
    let mut jobs = Vec::with_capacity(cfg.jobs as usize);
    let mut clock = 0u64;
    for id in 0..cfg.jobs {
        clock += match cfg.arrivals {
            ArrivalKind::Uniform => rng.below(2 * cfg.mean_gap.max(1)),
            ArrivalKind::Poisson => rng.exp_gap(cfg.mean_gap.max(1)),
        };
        let tenant = (rng.next() % u64::from(tenants)) as u32;
        let kind = shapes[rng.below(shapes.len() as u64) as usize].clone();
        jobs.push(JobSpec {
            id,
            tenant,
            arrival: clock,
            weight: tenant_weight(tenant),
            deadline: (cfg.deadline_slack > 0).then(|| clock + cfg.deadline_slack),
            kind,
        });
    }
    jobs
}

fn shape_pool(with_exprs: bool, with_apps: bool) -> Vec<JobKind> {
    let mut shapes: Vec<JobKind> = [
        (KernelKind::Spmv, 96, 4),
        (KernelKind::Spmspv, 96, 4),
        (KernelKind::Spmspm, 48, 3),
        (KernelKind::Spkadd, 64, 3),
        (KernelKind::Spttv, 12, 4),
        (KernelKind::Spmv, 64, 6),
    ]
    .into_iter()
    .map(|(kind, rows, nnz_per_row)| JobKind::Kernel {
        kind,
        rows,
        nnz_per_row,
        seed: 21,
    })
    .collect();
    if with_exprs {
        shapes.push(JobKind::Expr {
            src: "y(i) = A(i,j:csr) * x(j)".into(),
            rows: 48,
            nnz_per_row: 3,
            seed: 22,
        });
        shapes.push(JobKind::Expr {
            src: "Z(i,j) = A(i,j:dcsr) + B(i,j:dcsr)".into(),
            rows: 48,
            nnz_per_row: 3,
            seed: 22,
        });
    }
    if with_apps {
        shapes.push(JobKind::App {
            app: AppKind::Gnn,
            rows: 48,
            nnz_per_row: 3,
            seed: 23,
            max_iters: 1,
        });
        shapes.push(JobKind::App {
            app: AppKind::Cg,
            rows: 64,
            nnz_per_row: 4,
            seed: 23,
            max_iters: 6,
        });
        shapes.push(JobKind::App {
            app: AppKind::PageRank,
            rows: 64,
            nnz_per_row: 4,
            seed: 23,
            max_iters: 5,
        });
    }
    shapes
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traces_are_deterministic_and_sorted() {
        let cfg = TraceConfig::default();
        let a = synthesize(&cfg);
        let b = synthesize(&cfg);
        assert_eq!(a, b, "same config must yield the same trace");
        assert_eq!(a.len(), cfg.jobs as usize);
        assert!(a.windows(2).all(|w| w[0].arrival <= w[1].arrival));
        assert!(a.iter().all(|j| j.tenant < cfg.tenants));
        let distinct: std::collections::HashSet<_> = a.iter().map(|j| &j.kind).collect();
        assert!(
            distinct.len() < a.len(),
            "the shape pool must be smaller than the job count so batching pays"
        );

        let other = synthesize(&TraceConfig { seed: 999, ..cfg });
        assert_ne!(a, other, "seed must matter");

        // Deadlines: off by default, arrival + slack when requested.
        assert!(a.iter().all(|j| j.deadline.is_none()));
        let slacked = synthesize(&TraceConfig {
            deadline_slack: 100_000,
            ..cfg
        });
        assert!(slacked
            .iter()
            .all(|j| j.deadline == Some(j.arrival + 100_000)));
    }

    #[test]
    fn poisson_arrivals_are_deterministic_with_the_right_mean() {
        let cfg = TraceConfig {
            jobs: 512,
            arrivals: ArrivalKind::Poisson,
            ..TraceConfig::default()
        };
        let a = synthesize(&cfg);
        let b = synthesize(&cfg);
        assert_eq!(a, b, "Poisson traces must be reproducible");
        assert!(a.windows(2).all(|w| w[0].arrival <= w[1].arrival));

        // Exponential gaps are bursty: the empirical mean should land
        // near mean_gap, and some gaps must exceed 2*mean_gap (which the
        // uniform generator can never produce).
        let gaps: Vec<u64> = std::iter::once(a[0].arrival)
            .chain(a.windows(2).map(|w| w[1].arrival - w[0].arrival))
            .collect();
        let mean = gaps.iter().sum::<u64>() as f64 / gaps.len() as f64;
        let target = cfg.mean_gap as f64;
        assert!(
            (mean - target).abs() < 0.2 * target,
            "empirical mean {mean} strays from {target}"
        );
        assert!(
            gaps.iter().any(|&g| g > 2 * cfg.mean_gap),
            "an exponential tail must cross the uniform generator's cap"
        );

        // Same jobs, different clocks: the shape/tenant stream is shared
        // with the uniform generator, only the arrival times move.
        let uniform = synthesize(&TraceConfig {
            arrivals: ArrivalKind::Uniform,
            ..cfg
        });
        assert_ne!(a, uniform);
    }

    #[test]
    fn app_shapes_join_the_pool_only_on_request() {
        let base = TraceConfig {
            jobs: 64,
            ..TraceConfig::default()
        };
        let without = synthesize(&base);
        assert!(without
            .iter()
            .all(|j| !matches!(j.kind, JobKind::App { .. })));
        let with = synthesize(&TraceConfig {
            with_apps: true,
            ..base
        });
        assert!(
            with.iter().any(|j| matches!(j.kind, JobKind::App { .. })),
            "64 draws over a 10-shape pool must hit an app shape"
        );
    }

    #[test]
    fn self_contained_ln_matches_libm() {
        let mut rng = Mix(99);
        for _ in 0..1000 {
            let u = rng.unit();
            let got = ln_unit(u);
            let want = u.ln();
            assert!(
                (got - want).abs() <= 1e-12 * want.abs().max(1.0),
                "ln({u}) = {got}, libm says {want}"
            );
        }
        assert_eq!(ln_unit(1.0), 0.0);
    }
}
