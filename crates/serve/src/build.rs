//! Memoized job builds: the same-shape batching optimization.
//!
//! Building a job is expensive relative to serving it — generating the
//! synthetic tensor, laying out the memory image, and compiling (or
//! lowering, for expressions) the TMU program. Jobs with equal
//! [`JobKind`]s are identical up to their tenant and outQ window, so the
//! server batches them: the first build is memoized and later arrivals
//! share the `Arc`. Sharing is sound because the [`MemImage`] is
//! read-only to the engine and every serving slot owns a private memory
//! hierarchy; only the outQ window is per-job (salted by job id).

use std::collections::HashMap;
use std::sync::Arc;

use tmu::{MemImage, Program};
use tmu_apps::StageCaches;
use tmu_front::ExprWorkload;
use tmu_kernels::spkadd::Spkadd;
use tmu_kernels::spmspm::Spmspm;
use tmu_kernels::spmspv::Spmspv;
use tmu_kernels::spmv::Spmv;
use tmu_kernels::spttv::Spttv;
use tmu_tensor::gen;

use crate::job::{JobKind, KernelKind};

/// Lanes every served program is built for (the paper configuration).
pub const SERVE_LANES: usize = 8;

/// One memoized build: everything jobs of a shape share.
#[derive(Debug)]
pub struct BuiltJob {
    /// The compiled TMU program.
    pub program: Arc<Program>,
    /// The read-only memory image the program traverses.
    pub image: Arc<MemImage>,
    /// Base of the shape's outQ window; each job offsets this by its id.
    pub outq_base: u64,
    /// Report label (kernel name or `"expr"`).
    pub label: String,
}

/// Shape-keyed build memo with hit/miss/evict counters, bounded by the
/// `TMU_BUILD_CACHE_CAP` knob (0 = unbounded, the historical behavior),
/// and carrying the application pipelines' two-level [`StageCaches`]
/// under the same capacity. Counters are mirrored into the stats
/// registry (`serve.build_cache.*`) whenever a tracer is installed.
#[derive(Debug)]
pub struct BuildCache {
    map: HashMap<JobKind, Arc<BuiltJob>>,
    /// Keys in least-recently-used-first order.
    lru: Vec<JobKind>,
    cap: usize,
    hits: u64,
    misses: u64,
    evictions: u64,
    stages: StageCaches,
}

impl Default for BuildCache {
    fn default() -> Self {
        Self::new()
    }
}

impl BuildCache {
    /// An empty cache, capacity from `TMU_BUILD_CACHE_CAP` (0/unset =
    /// unbounded).
    pub fn new() -> Self {
        let cap = std::env::var("TMU_BUILD_CACHE_CAP")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(0);
        Self::with_cap(cap)
    }

    /// An empty cache holding at most `cap` job builds — and at most
    /// `cap` entries per stage-cache level (0 = unbounded).
    pub fn with_cap(cap: usize) -> Self {
        Self {
            map: HashMap::new(),
            lru: Vec::new(),
            cap,
            hits: 0,
            misses: 0,
            evictions: 0,
            stages: StageCaches::new(cap),
        }
    }

    /// Builds shared against the memo (batched jobs).
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Distinct shapes actually built.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Memoized builds evicted under the capacity bound.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// The application pipelines' two-level stage cache.
    pub fn stages(&self) -> &StageCaches {
        &self.stages
    }

    /// Mutable access to the stage cache (the DAG executor needs it).
    pub fn stages_mut(&mut self) -> &mut StageCaches {
        &mut self.stages
    }

    /// Returns the build for `kind`, constructing and memoizing it on
    /// first use. Errors are build-time failures (e.g. an expression that
    /// does not lower), reported as strings.
    pub fn get(&mut self, kind: &JobKind) -> Result<Arc<BuiltJob>, String> {
        if let Some(built) = self.map.get(kind) {
            self.hits += 1;
            // Touch: move to most-recently-used.
            if let Some(i) = self.lru.iter().position(|k| k == kind) {
                let k = self.lru.remove(i);
                self.lru.push(k);
            }
            let built = Arc::clone(built);
            self.publish();
            return Ok(built);
        }
        let built = Arc::new(build(kind)?);
        self.misses += 1;
        self.map.insert(kind.clone(), Arc::clone(&built));
        self.lru.push(kind.clone());
        while self.cap > 0 && self.lru.len() > self.cap {
            let victim = self.lru.remove(0);
            self.map.remove(&victim);
            self.evictions += 1;
        }
        self.publish();
        Ok(built)
    }

    /// Mirrors the counters into the stats registry when tracing.
    fn publish(&self) {
        tmu_trace::with(|t| {
            let r = t.registry_mut();
            r.set_counter("serve.build_cache.hits", self.hits);
            r.set_counter("serve.build_cache.misses", self.misses);
            r.set_counter("serve.build_cache.evictions", self.evictions);
        });
    }
}

fn build(kind: &JobKind) -> Result<BuiltJob, String> {
    match kind {
        JobKind::Kernel {
            kind,
            rows,
            nnz_per_row,
            seed,
        } => build_kernel(*kind, *rows as usize, *nnz_per_row as usize, *seed),
        JobKind::Expr {
            src,
            rows,
            nnz_per_row,
            seed,
        } => {
            let base = gen::uniform(*rows as usize, *rows as usize, *nnz_per_row as usize, *seed);
            let w = ExprWorkload::new(src, &base).map_err(|e| format!("expr parse: {e}"))?;
            let lowered = w
                .lowered(SERVE_LANES)
                .map_err(|e| format!("expr lower: {e}"))?;
            Ok(BuiltJob {
                program: Arc::new(lowered.program),
                image: w.image_handle(),
                outq_base: w.outq_base(),
                label: "expr".into(),
            })
        }
        // App jobs never land in the shape memo: their builds live one
        // level down, in the stage cache, keyed per tensor and program.
        JobKind::App { .. } => Err("app jobs build through the stage cache".into()),
    }
}

fn build_kernel(
    kind: KernelKind,
    rows: usize,
    nnz_per_row: usize,
    seed: u64,
) -> Result<BuiltJob, String> {
    let (program, image, outq_base) = match kind {
        KernelKind::Spmv => {
            let w = Spmv::new(&gen::uniform(rows, rows, nnz_per_row, seed));
            (
                w.build_program((0, rows), SERVE_LANES),
                w.image_handle(),
                w.outq_base(0),
            )
        }
        KernelKind::Spmspv => {
            let w = Spmspv::new(&gen::uniform(rows, rows, nnz_per_row, seed), 0.25);
            (w.build_program((0, rows)), w.image_handle(), w.outq_base(0))
        }
        KernelKind::Spmspm => {
            let w = Spmspm::new(&gen::uniform(rows, rows, nnz_per_row, seed));
            (
                w.build_program((0, rows), SERVE_LANES),
                w.image_handle(),
                w.outq_base(0),
            )
        }
        KernelKind::Spkadd => {
            let w = Spkadd::new(&gen::uniform(rows, rows, nnz_per_row, seed));
            let n = w.reference().rows();
            (
                w.build_program((0, n), SERVE_LANES),
                w.image_handle(),
                w.outq_base(0),
            )
        }
        KernelKind::Spttv => {
            // Interpret `rows` as the cube dimension; keep it small so a
            // 3-d fixture stays serving-sized.
            let d = rows.clamp(4, 32);
            let w = Spttv::new(&gen::random_tensor(&[d, d, d], d * nnz_per_row, seed));
            (
                w.build_program((0, w.roots()), SERVE_LANES),
                w.image_handle(),
                w.outq_base(0),
            )
        }
    };
    Ok(BuiltJob {
        program: Arc::new(program),
        image,
        outq_base,
        label: kind.name().into(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_shape_jobs_share_one_build() {
        let mut cache = BuildCache::new();
        let shape = JobKind::Kernel {
            kind: KernelKind::Spmv,
            rows: 32,
            nnz_per_row: 3,
            seed: 1,
        };
        let a = cache.get(&shape).expect("builds");
        let b = cache.get(&shape).expect("memoized");
        assert!(Arc::ptr_eq(&a, &b), "equal shapes must share the build");
        assert_eq!((cache.hits(), cache.misses()), (1, 1));

        let other = JobKind::Kernel {
            kind: KernelKind::Spmv,
            rows: 32,
            nnz_per_row: 3,
            seed: 2,
        };
        let c = cache.get(&other).expect("builds");
        assert!(!Arc::ptr_eq(&a, &c), "different seed, different build");
        assert_eq!((cache.hits(), cache.misses()), (1, 2));
    }

    #[test]
    fn capacity_bound_evicts_least_recently_used_builds() {
        let mut cache = BuildCache::with_cap(2);
        let shape = |seed: u64| JobKind::Kernel {
            kind: KernelKind::Spmv,
            rows: 32,
            nnz_per_row: 3,
            seed,
        };
        cache.get(&shape(1)).expect("build 1");
        cache.get(&shape(2)).expect("build 2");
        cache.get(&shape(1)).expect("hit 1; 2 is now LRU");
        cache.get(&shape(3)).expect("build 3 evicts 2");
        assert_eq!(cache.evictions(), 1);
        let a = cache.get(&shape(1)).expect("1 survived");
        let b = cache.get(&shape(1)).expect("still shared");
        assert!(Arc::ptr_eq(&a, &b));
        cache.get(&shape(2)).expect("2 was evicted, rebuilds");
        assert_eq!((cache.hits(), cache.misses()), (3, 4));
        assert_eq!(cache.evictions(), 2, "rebuilding 2 evicted 3");
    }

    #[test]
    fn bad_expression_reports_a_build_error() {
        let mut cache = BuildCache::new();
        let bad = JobKind::Expr {
            src: "this is not einsum".into(),
            rows: 16,
            nnz_per_row: 2,
            seed: 3,
        };
        assert!(cache.get(&bad).is_err());
    }
}
