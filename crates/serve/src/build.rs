//! Memoized job builds: the same-shape batching optimization.
//!
//! Building a job is expensive relative to serving it — generating the
//! synthetic tensor, laying out the memory image, and compiling (or
//! lowering, for expressions) the TMU program. Jobs with equal
//! [`JobKind`]s are identical up to their tenant and outQ window, so the
//! server batches them: the first build is memoized and later arrivals
//! share the `Arc`. Sharing is sound because the [`MemImage`] is
//! read-only to the engine and every serving slot owns a private memory
//! hierarchy; only the outQ window is per-job (salted by job id).

use std::collections::HashMap;
use std::sync::Arc;

use tmu::{MemImage, Program};
use tmu_front::ExprWorkload;
use tmu_kernels::spkadd::Spkadd;
use tmu_kernels::spmspm::Spmspm;
use tmu_kernels::spmspv::Spmspv;
use tmu_kernels::spmv::Spmv;
use tmu_kernels::spttv::Spttv;
use tmu_tensor::gen;

use crate::job::{JobKind, KernelKind};

/// Lanes every served program is built for (the paper configuration).
pub const SERVE_LANES: usize = 8;

/// One memoized build: everything jobs of a shape share.
#[derive(Debug)]
pub struct BuiltJob {
    /// The compiled TMU program.
    pub program: Arc<Program>,
    /// The read-only memory image the program traverses.
    pub image: Arc<MemImage>,
    /// Base of the shape's outQ window; each job offsets this by its id.
    pub outq_base: u64,
    /// Report label (kernel name or `"expr"`).
    pub label: String,
}

/// Shape-keyed build memo with hit/miss counters.
#[derive(Debug, Default)]
pub struct BuildCache {
    map: HashMap<JobKind, Arc<BuiltJob>>,
    hits: u64,
    misses: u64,
}

impl BuildCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds shared against the memo (batched jobs).
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Distinct shapes actually built.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Returns the build for `kind`, constructing and memoizing it on
    /// first use. Errors are build-time failures (e.g. an expression that
    /// does not lower), reported as strings.
    pub fn get(&mut self, kind: &JobKind) -> Result<Arc<BuiltJob>, String> {
        if let Some(built) = self.map.get(kind) {
            self.hits += 1;
            return Ok(Arc::clone(built));
        }
        let built = Arc::new(build(kind)?);
        self.misses += 1;
        self.map.insert(kind.clone(), Arc::clone(&built));
        Ok(built)
    }
}

fn build(kind: &JobKind) -> Result<BuiltJob, String> {
    match kind {
        JobKind::Kernel {
            kind,
            rows,
            nnz_per_row,
            seed,
        } => build_kernel(*kind, *rows as usize, *nnz_per_row as usize, *seed),
        JobKind::Expr {
            src,
            rows,
            nnz_per_row,
            seed,
        } => {
            let base = gen::uniform(*rows as usize, *rows as usize, *nnz_per_row as usize, *seed);
            let w = ExprWorkload::new(src, &base).map_err(|e| format!("expr parse: {e}"))?;
            let lowered = w
                .lowered(SERVE_LANES)
                .map_err(|e| format!("expr lower: {e}"))?;
            Ok(BuiltJob {
                program: Arc::new(lowered.program),
                image: w.image_handle(),
                outq_base: w.outq_base(),
                label: "expr".into(),
            })
        }
    }
}

fn build_kernel(
    kind: KernelKind,
    rows: usize,
    nnz_per_row: usize,
    seed: u64,
) -> Result<BuiltJob, String> {
    let (program, image, outq_base) = match kind {
        KernelKind::Spmv => {
            let w = Spmv::new(&gen::uniform(rows, rows, nnz_per_row, seed));
            (
                w.build_program((0, rows), SERVE_LANES),
                w.image_handle(),
                w.outq_base(0),
            )
        }
        KernelKind::Spmspv => {
            let w = Spmspv::new(&gen::uniform(rows, rows, nnz_per_row, seed), 0.25);
            (w.build_program((0, rows)), w.image_handle(), w.outq_base(0))
        }
        KernelKind::Spmspm => {
            let w = Spmspm::new(&gen::uniform(rows, rows, nnz_per_row, seed));
            (
                w.build_program((0, rows), SERVE_LANES),
                w.image_handle(),
                w.outq_base(0),
            )
        }
        KernelKind::Spkadd => {
            let w = Spkadd::new(&gen::uniform(rows, rows, nnz_per_row, seed));
            let n = w.reference().rows();
            (
                w.build_program((0, n), SERVE_LANES),
                w.image_handle(),
                w.outq_base(0),
            )
        }
        KernelKind::Spttv => {
            // Interpret `rows` as the cube dimension; keep it small so a
            // 3-d fixture stays serving-sized.
            let d = rows.clamp(4, 32);
            let w = Spttv::new(&gen::random_tensor(&[d, d, d], d * nnz_per_row, seed));
            (
                w.build_program((0, w.roots()), SERVE_LANES),
                w.image_handle(),
                w.outq_base(0),
            )
        }
    };
    Ok(BuiltJob {
        program: Arc::new(program),
        image,
        outq_base,
        label: kind.name().into(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_shape_jobs_share_one_build() {
        let mut cache = BuildCache::new();
        let shape = JobKind::Kernel {
            kind: KernelKind::Spmv,
            rows: 32,
            nnz_per_row: 3,
            seed: 1,
        };
        let a = cache.get(&shape).expect("builds");
        let b = cache.get(&shape).expect("memoized");
        assert!(Arc::ptr_eq(&a, &b), "equal shapes must share the build");
        assert_eq!((cache.hits(), cache.misses()), (1, 1));

        let other = JobKind::Kernel {
            kind: KernelKind::Spmv,
            rows: 32,
            nnz_per_row: 3,
            seed: 2,
        };
        let c = cache.get(&other).expect("builds");
        assert!(!Arc::ptr_eq(&a, &c), "different seed, different build");
        assert_eq!((cache.hits(), cache.misses()), (1, 2));
    }

    #[test]
    fn bad_expression_reports_a_build_error() {
        let mut cache = BuildCache::new();
        let bad = JobKind::Expr {
            src: "this is not einsum".into(),
            rows: 16,
            nnz_per_row: 2,
            seed: 3,
        };
        assert!(cache.get(&bad).is_err());
    }
}
