//! Order-sensitive digest of a job's marshaled outQ entry stream.
//!
//! The serving layer's correctness anchor is bit-identity: under any
//! preemption schedule, a tenant's entry stream must equal its solo
//! fault-free run. Recording every entry of every job would dominate
//! memory at serving scale, so jobs carry a [`DigestHandler`] instead — a
//! running FNV-1a hash over the exact bytes an entry marshals (callback
//! id, lane mask, operand words and types, in order) plus an entry count.
//! Two equal digests over equal counts pin equal streams for all
//! practical purposes; the differential tests compare them.

use tmu::{CallbackHandler, Operand, OutQEntry, StreamTy};
use tmu_sim::{Deps, Machine, OpId, VecMachine};

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// The final digest of one job's entry stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct EntryDigest {
    /// FNV-1a over the marshaled entry bytes, in marshal order.
    pub hash: u64,
    /// Entries absorbed.
    pub count: u64,
}

/// A [`CallbackHandler`] that digests the entry stream and emits one
/// vector op per entry, so the serving slot's core still executes
/// callback work with realistic dependencies.
#[derive(Debug, Clone)]
pub struct DigestHandler {
    hash: u64,
    count: u64,
}

impl Default for DigestHandler {
    fn default() -> Self {
        Self::new()
    }
}

impl DigestHandler {
    /// A fresh digest (FNV offset basis, zero entries).
    pub fn new() -> Self {
        Self {
            hash: FNV_OFFSET,
            count: 0,
        }
    }

    /// The digest accumulated so far.
    pub fn digest(&self) -> EntryDigest {
        EntryDigest {
            hash: self.hash,
            count: self.count,
        }
    }

    #[inline]
    fn byte(&mut self, b: u8) {
        self.hash = (self.hash ^ u64::from(b)).wrapping_mul(FNV_PRIME);
    }

    fn word(&mut self, w: u64) {
        for b in w.to_le_bytes() {
            self.byte(b);
        }
    }

    fn absorb(&mut self, entry: &OutQEntry) {
        self.word(u64::from(entry.callback));
        self.word(entry.mask);
        for op in &entry.operands {
            match op {
                Operand::Vec { vals, ty } => {
                    self.byte(0);
                    self.byte(ty_tag(*ty));
                    for &v in vals {
                        self.word(v);
                    }
                }
                Operand::Mask(m) => {
                    self.byte(1);
                    self.word(*m);
                }
                Operand::Scalar { val, ty } => {
                    self.byte(2);
                    self.byte(ty_tag(*ty));
                    self.word(*val);
                }
            }
        }
        self.count += 1;
    }
}

fn ty_tag(ty: StreamTy) -> u8 {
    match ty {
        StreamTy::Index => 0,
        StreamTy::Value => 1,
    }
}

impl CallbackHandler for DigestHandler {
    fn handle(&mut self, entry: &OutQEntry, entry_load: OpId, m: &mut VecMachine) {
        self.absorb(entry);
        // One vector op per entry, dependent on the outQ read: the host
        // core pays a callback cost proportional to the active lanes.
        let lanes = entry.mask.count_ones().max(1);
        m.vec_op(lanes, Deps::from(entry_load));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(callback: u32, mask: u64, vals: &[u64]) -> OutQEntry {
        OutQEntry {
            callback,
            mask,
            operands: vec![Operand::Vec {
                vals: vals.to_vec(),
                ty: StreamTy::Value,
            }],
        }
    }

    #[test]
    fn digest_is_order_and_content_sensitive() {
        let mut m = VecMachine::new();
        let a = entry(0, 0b11, &[1, 2]);
        let b = entry(1, 0b01, &[3]);

        let mut ab = DigestHandler::new();
        ab.handle(&a, OpId::NONE, &mut m);
        ab.handle(&b, OpId::NONE, &mut m);
        let mut ba = DigestHandler::new();
        ba.handle(&b, OpId::NONE, &mut m);
        ba.handle(&a, OpId::NONE, &mut m);
        assert_ne!(ab.digest().hash, ba.digest().hash, "order must matter");
        assert_eq!(ab.digest().count, 2);

        let mut ab2 = DigestHandler::new();
        ab2.handle(&a, OpId::NONE, &mut m);
        ab2.handle(&b, OpId::NONE, &mut m);
        assert_eq!(ab.digest(), ab2.digest(), "digest must be deterministic");

        let mut tweaked = DigestHandler::new();
        tweaked.handle(&entry(0, 0b11, &[1, 3]), OpId::NONE, &mut m);
        tweaked.handle(&b, OpId::NONE, &mut m);
        assert_ne!(ab.digest(), tweaked.digest(), "content must matter");
    }
}
