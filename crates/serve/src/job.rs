//! Job specifications: what a tenant asks the service to run.

use tmu_apps::{AppKind, AppSpec};

use crate::build::SERVE_LANES;

/// Which Table 4 kernel a [`JobKind::Kernel`] job runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum KernelKind {
    /// Sparse matrix × dense vector.
    Spmv,
    /// Sparse matrix × sparse vector.
    Spmspv,
    /// Sparse matrix × sparse matrix (symbolic+numeric co-iteration).
    Spmspm,
    /// K-way sparse matrix addition.
    Spkadd,
    /// Sparse tensor (3-d) × dense vector.
    Spttv,
}

impl KernelKind {
    /// Stable display name, used in reports and bench rows.
    pub fn name(self) -> &'static str {
        match self {
            KernelKind::Spmv => "spmv",
            KernelKind::Spmspv => "spmspv",
            KernelKind::Spmspm => "spmspm",
            KernelKind::Spkadd => "spkadd",
            KernelKind::Spttv => "spttv",
        }
    }
}

/// The work a job performs. Doubles as the build-cache key: two jobs
/// with equal `JobKind`s share one memoized tensor build, program, and
/// memory image (the batching optimization).
#[derive(Debug, Clone, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum JobKind {
    /// A Table 4 kernel over a synthetic uniform input.
    Kernel {
        /// Which kernel.
        kind: KernelKind,
        /// Rows of the input matrix (for SpTTV: the cube dimension).
        rows: u32,
        /// Nonzeros per row (for SpTTV: nnz = rows × this).
        nnz_per_row: u32,
        /// Generator seed — jobs differing only here do *not* batch.
        seed: u64,
    },
    /// A `tmu-front` einsum expression over a synthetic base matrix.
    Expr {
        /// Expression source, e.g. `"y(i) = A(i,j:csr) * x(j)"`.
        src: String,
        /// Rows/cols of the square base matrix.
        rows: u32,
        /// Nonzeros per row of the base matrix.
        nnz_per_row: u32,
        /// Generator seed.
        seed: u64,
    },
    /// A multi-stage application pipeline (`tmu-apps` DAG). App jobs
    /// share builds through the two-level stage cache rather than this
    /// enum's memo, so equal `App` kinds still batch their tensors and
    /// programs — just one level down.
    App {
        /// Which application.
        app: AppKind,
        /// Rows (= cols) of the synthetic square input.
        rows: u32,
        /// Nonzeros per row of the synthetic input.
        nnz_per_row: u32,
        /// Generator seed.
        seed: u64,
        /// Iteration cap for the iterative apps.
        max_iters: u32,
    },
}

impl JobKind {
    /// Short label for reports (kernel name, `"expr"`, or the app name).
    pub fn label(&self) -> &str {
        match self {
            JobKind::Kernel { kind, .. } => kind.name(),
            JobKind::Expr { .. } => "expr",
            JobKind::App { app, .. } => app.name(),
        }
    }

    /// The full application spec (with the serving lane count) if this
    /// is an [`JobKind::App`] job.
    pub fn app_spec(&self) -> Option<AppSpec> {
        match self {
            JobKind::App {
                app,
                rows,
                nnz_per_row,
                seed,
                max_iters,
            } => Some(AppSpec {
                app: *app,
                rows: *rows as usize,
                nnz_per_row: *nnz_per_row as usize,
                seed: *seed,
                max_iters: *max_iters,
                lanes: SERVE_LANES,
            }),
            _ => None,
        }
    }
}

/// One job in the arrival trace.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct JobSpec {
    /// Unique job id (also salts the job's private outQ window).
    pub id: u32,
    /// Owning tenant.
    pub tenant: u32,
    /// Arrival cycle (open-loop: fixed by the trace, not by service).
    pub arrival: u64,
    /// Scheduling weight under the weighted-fair policy (≥ 1).
    pub weight: u32,
    /// Completion deadline in cycles, if the job has an SLO. The EDF
    /// policy orders dispatch by it; a job finishing past its deadline
    /// still completes but is counted as a deadline miss.
    pub deadline: Option<u64>,
    /// What to run.
    pub kind: JobKind,
}
