//! Job specifications: what a tenant asks the service to run.

/// Which Table 4 kernel a [`JobKind::Kernel`] job runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum KernelKind {
    /// Sparse matrix × dense vector.
    Spmv,
    /// Sparse matrix × sparse vector.
    Spmspv,
    /// Sparse matrix × sparse matrix (symbolic+numeric co-iteration).
    Spmspm,
    /// K-way sparse matrix addition.
    Spkadd,
    /// Sparse tensor (3-d) × dense vector.
    Spttv,
}

impl KernelKind {
    /// Stable display name, used in reports and bench rows.
    pub fn name(self) -> &'static str {
        match self {
            KernelKind::Spmv => "spmv",
            KernelKind::Spmspv => "spmspv",
            KernelKind::Spmspm => "spmspm",
            KernelKind::Spkadd => "spkadd",
            KernelKind::Spttv => "spttv",
        }
    }
}

/// The work a job performs. Doubles as the build-cache key: two jobs
/// with equal `JobKind`s share one memoized tensor build, program, and
/// memory image (the batching optimization).
#[derive(Debug, Clone, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum JobKind {
    /// A Table 4 kernel over a synthetic uniform input.
    Kernel {
        /// Which kernel.
        kind: KernelKind,
        /// Rows of the input matrix (for SpTTV: the cube dimension).
        rows: u32,
        /// Nonzeros per row (for SpTTV: nnz = rows × this).
        nnz_per_row: u32,
        /// Generator seed — jobs differing only here do *not* batch.
        seed: u64,
    },
    /// A `tmu-front` einsum expression over a synthetic base matrix.
    Expr {
        /// Expression source, e.g. `"y(i) = A(i,j:csr) * x(j)"`.
        src: String,
        /// Rows/cols of the square base matrix.
        rows: u32,
        /// Nonzeros per row of the base matrix.
        nnz_per_row: u32,
        /// Generator seed.
        seed: u64,
    },
}

impl JobKind {
    /// Short label for reports (kernel name or `"expr"`).
    pub fn label(&self) -> &str {
        match self {
            JobKind::Kernel { kind, .. } => kind.name(),
            JobKind::Expr { .. } => "expr",
        }
    }
}

/// One job in the arrival trace.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct JobSpec {
    /// Unique job id (also salts the job's private outQ window).
    pub id: u32,
    /// Owning tenant.
    pub tenant: u32,
    /// Arrival cycle (open-loop: fixed by the trace, not by service).
    pub arrival: u64,
    /// Scheduling weight under the weighted-fair policy (≥ 1).
    pub weight: u32,
    /// Completion deadline in cycles, if the job has an SLO. The EDF
    /// policy orders dispatch by it; a job finishing past its deadline
    /// still completes but is counted as a deadline miss.
    pub deadline: Option<u64>,
    /// What to run.
    pub kind: JobKind,
}
