//! `tmu-serve`: multi-tenant scheduling and serving with preemptive TMU
//! virtualization.
//!
//! The paper's TMU is a per-core engine with an architectural context
//! small enough to save and restore precisely (§5.6). This crate builds
//! the system that exploits that property: a workload service that
//! accepts a mix of jobs — Table 4 kernels and `tmu-front` einsum
//! expressions, each tagged with a tenant, an arrival time, and a
//! scheduling weight — admits them through bounded per-tenant queues,
//! and time-shares a pool of simulated cores between them by quiescing
//! and resuming TMU contexts at traversal-group-step boundaries.
//!
//! The load-bearing guarantee, pinned by this crate's differential
//! tests: under *any* preemption schedule, each job's marshaled outQ
//! entry stream is bit-identical to its solo fault-free run. Preemption
//! changes *when* entries are produced, never *what* is produced.
//!
//! The resilience layer ([`ResilienceConfig`]) extends that guarantee
//! under failure: each slot is a fault domain (crash / watchdog-caught
//! hang / TMU degrade), jobs checkpoint periodically and restart from
//! their last checkpoint with a bounded retry budget, and the chaos
//! differential tests pin that every admitted job either completes with
//! its solo digest or lands in a typed terminal state — admitted =
//! completed + shed + failed, exactly.
//!
//! # Quick start
//!
//! ```
//! use tmu_serve::{serve, Policy, ServeConfig, TraceConfig};
//!
//! let trace = tmu_serve::synthesize(&TraceConfig {
//!     tenants: 2,
//!     jobs: 4,
//!     mean_gap: 20_000,
//!     seed: 7,
//!     with_exprs: false,
//!     ..TraceConfig::default()
//! });
//! let out = serve(
//!     ServeConfig {
//!         policy: Policy::RoundRobin,
//!         quantum: 10_000,
//!         ..ServeConfig::default()
//!     },
//!     trace,
//! )
//! .expect("serves");
//! assert_eq!(out.outcomes.len(), 4);
//! ```

#![warn(missing_docs)]
#![warn(clippy::unwrap_used)]

mod arrivals;
mod build;
mod digest;
mod job;
mod metrics;
mod policy;
mod resilience;
mod server;

pub use arrivals::{synthesize, tenant_weight, ArrivalKind, TraceConfig};
pub use build::{BuildCache, BuiltJob, SERVE_LANES};
pub use digest::{DigestHandler, EntryDigest};
pub use job::{JobKind, JobSpec, KernelKind};
pub use metrics::{percentile, tenant_reports, JobOutcome, LatencySummary, TenantReport};
pub use policy::{Policy, PolicyState};
pub use resilience::{
    CircuitBreaker, FailReason, FailedJob, JobFault, ResilienceConfig, ShedCounts, SlotFaultEvent,
    SlotFaultKind, SlotFaultPlan, SlotFaultSpec, SlotFaultStats,
};
pub use server::{
    serve, solo_app, solo_digest, AppSoloRun, ServeConfig, ServeError, ServeOutcome, Server,
};
